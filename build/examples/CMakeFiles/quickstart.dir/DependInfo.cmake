
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lockdown_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lockdown_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/lockdown_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/classify/CMakeFiles/lockdown_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lockdown_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/lockdown_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/lockdown_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/lockdown_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcp/CMakeFiles/lockdown_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/lockdown_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/lockdown_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/lockdown_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
