file(REMOVE_RECURSE
  "CMakeFiles/pcap_workflow.dir/pcap_workflow.cpp.o"
  "CMakeFiles/pcap_workflow.dir/pcap_workflow.cpp.o.d"
  "pcap_workflow"
  "pcap_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcap_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
