file(REMOVE_RECURSE
  "CMakeFiles/device_census.dir/device_census.cpp.o"
  "CMakeFiles/device_census.dir/device_census.cpp.o.d"
  "device_census"
  "device_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
