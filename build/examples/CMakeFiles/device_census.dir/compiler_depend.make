# Empty compiler generated dependencies file for device_census.
# This may be replaced when dependencies are built.
