# Empty dependencies file for pandemic_study.
# This may be replaced when dependencies are built.
