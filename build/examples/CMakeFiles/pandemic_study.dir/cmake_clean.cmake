file(REMOVE_RECURSE
  "CMakeFiles/pandemic_study.dir/pandemic_study.cpp.o"
  "CMakeFiles/pandemic_study.dir/pandemic_study.cpp.o.d"
  "pandemic_study"
  "pandemic_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pandemic_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
