# Empty compiler generated dependencies file for population_split.
# This may be replaced when dependencies are built.
