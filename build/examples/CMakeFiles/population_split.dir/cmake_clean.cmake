file(REMOVE_RECURSE
  "CMakeFiles/population_split.dir/population_split.cpp.o"
  "CMakeFiles/population_split.dir/population_split.cpp.o.d"
  "population_split"
  "population_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/population_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
