# Empty compiler generated dependencies file for lockdown_dhcp.
# This may be replaced when dependencies are built.
