file(REMOVE_RECURSE
  "liblockdown_dhcp.a"
)
