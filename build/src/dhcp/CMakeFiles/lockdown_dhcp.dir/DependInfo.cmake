
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dhcp/normalizer.cc" "src/dhcp/CMakeFiles/lockdown_dhcp.dir/normalizer.cc.o" "gcc" "src/dhcp/CMakeFiles/lockdown_dhcp.dir/normalizer.cc.o.d"
  "/root/repo/src/dhcp/server.cc" "src/dhcp/CMakeFiles/lockdown_dhcp.dir/server.cc.o" "gcc" "src/dhcp/CMakeFiles/lockdown_dhcp.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
