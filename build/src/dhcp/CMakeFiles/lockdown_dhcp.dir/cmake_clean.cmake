file(REMOVE_RECURSE
  "CMakeFiles/lockdown_dhcp.dir/normalizer.cc.o"
  "CMakeFiles/lockdown_dhcp.dir/normalizer.cc.o.d"
  "CMakeFiles/lockdown_dhcp.dir/server.cc.o"
  "CMakeFiles/lockdown_dhcp.dir/server.cc.o.d"
  "liblockdown_dhcp.a"
  "liblockdown_dhcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_dhcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
