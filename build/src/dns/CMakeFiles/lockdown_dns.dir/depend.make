# Empty dependencies file for lockdown_dns.
# This may be replaced when dependencies are built.
