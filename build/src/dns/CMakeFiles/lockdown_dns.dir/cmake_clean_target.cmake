file(REMOVE_RECURSE
  "liblockdown_dns.a"
)
