file(REMOVE_RECURSE
  "CMakeFiles/lockdown_dns.dir/mapper.cc.o"
  "CMakeFiles/lockdown_dns.dir/mapper.cc.o.d"
  "CMakeFiles/lockdown_dns.dir/resolver.cc.o"
  "CMakeFiles/lockdown_dns.dir/resolver.cc.o.d"
  "liblockdown_dns.a"
  "liblockdown_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
