file(REMOVE_RECURSE
  "CMakeFiles/lockdown_net.dir/allocator.cc.o"
  "CMakeFiles/lockdown_net.dir/allocator.cc.o.d"
  "CMakeFiles/lockdown_net.dir/ipv4.cc.o"
  "CMakeFiles/lockdown_net.dir/ipv4.cc.o.d"
  "CMakeFiles/lockdown_net.dir/mac.cc.o"
  "CMakeFiles/lockdown_net.dir/mac.cc.o.d"
  "liblockdown_net.a"
  "liblockdown_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
