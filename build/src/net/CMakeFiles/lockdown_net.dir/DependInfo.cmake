
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/allocator.cc" "src/net/CMakeFiles/lockdown_net.dir/allocator.cc.o" "gcc" "src/net/CMakeFiles/lockdown_net.dir/allocator.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/lockdown_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/lockdown_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/mac.cc" "src/net/CMakeFiles/lockdown_net.dir/mac.cc.o" "gcc" "src/net/CMakeFiles/lockdown_net.dir/mac.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
