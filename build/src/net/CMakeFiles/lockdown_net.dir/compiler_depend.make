# Empty compiler generated dependencies file for lockdown_net.
# This may be replaced when dependencies are built.
