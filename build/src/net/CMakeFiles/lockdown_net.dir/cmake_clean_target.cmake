file(REMOVE_RECURSE
  "liblockdown_net.a"
)
