# Empty compiler generated dependencies file for lockdown_classify.
# This may be replaced when dependencies are built.
