file(REMOVE_RECURSE
  "CMakeFiles/lockdown_classify.dir/accuracy.cc.o"
  "CMakeFiles/lockdown_classify.dir/accuracy.cc.o.d"
  "CMakeFiles/lockdown_classify.dir/classifier.cc.o"
  "CMakeFiles/lockdown_classify.dir/classifier.cc.o.d"
  "CMakeFiles/lockdown_classify.dir/iot.cc.o"
  "CMakeFiles/lockdown_classify.dir/iot.cc.o.d"
  "CMakeFiles/lockdown_classify.dir/switch_detect.cc.o"
  "CMakeFiles/lockdown_classify.dir/switch_detect.cc.o.d"
  "CMakeFiles/lockdown_classify.dir/user_agent.cc.o"
  "CMakeFiles/lockdown_classify.dir/user_agent.cc.o.d"
  "liblockdown_classify.a"
  "liblockdown_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
