
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/accuracy.cc" "src/classify/CMakeFiles/lockdown_classify.dir/accuracy.cc.o" "gcc" "src/classify/CMakeFiles/lockdown_classify.dir/accuracy.cc.o.d"
  "/root/repo/src/classify/classifier.cc" "src/classify/CMakeFiles/lockdown_classify.dir/classifier.cc.o" "gcc" "src/classify/CMakeFiles/lockdown_classify.dir/classifier.cc.o.d"
  "/root/repo/src/classify/iot.cc" "src/classify/CMakeFiles/lockdown_classify.dir/iot.cc.o" "gcc" "src/classify/CMakeFiles/lockdown_classify.dir/iot.cc.o.d"
  "/root/repo/src/classify/switch_detect.cc" "src/classify/CMakeFiles/lockdown_classify.dir/switch_detect.cc.o" "gcc" "src/classify/CMakeFiles/lockdown_classify.dir/switch_detect.cc.o.d"
  "/root/repo/src/classify/user_agent.cc" "src/classify/CMakeFiles/lockdown_classify.dir/user_agent.cc.o" "gcc" "src/classify/CMakeFiles/lockdown_classify.dir/user_agent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/world/CMakeFiles/lockdown_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
