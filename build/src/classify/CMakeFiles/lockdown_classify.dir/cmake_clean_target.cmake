file(REMOVE_RECURSE
  "liblockdown_classify.a"
)
