# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("net")
subdirs("dhcp")
subdirs("dns")
subdirs("privacy")
subdirs("world")
subdirs("flow")
subdirs("logs")
subdirs("pcapio")
subdirs("sim")
subdirs("classify")
subdirs("geo")
subdirs("apps")
subdirs("analysis")
subdirs("core")
