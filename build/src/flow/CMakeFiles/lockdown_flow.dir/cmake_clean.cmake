file(REMOVE_RECURSE
  "CMakeFiles/lockdown_flow.dir/assembler.cc.o"
  "CMakeFiles/lockdown_flow.dir/assembler.cc.o.d"
  "CMakeFiles/lockdown_flow.dir/conn_log.cc.o"
  "CMakeFiles/lockdown_flow.dir/conn_log.cc.o.d"
  "liblockdown_flow.a"
  "liblockdown_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
