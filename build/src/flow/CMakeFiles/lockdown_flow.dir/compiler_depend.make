# Empty compiler generated dependencies file for lockdown_flow.
# This may be replaced when dependencies are built.
