file(REMOVE_RECURSE
  "liblockdown_flow.a"
)
