# Empty compiler generated dependencies file for lockdown_apps.
# This may be replaced when dependencies are built.
