
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/nintendo.cc" "src/apps/CMakeFiles/lockdown_apps.dir/nintendo.cc.o" "gcc" "src/apps/CMakeFiles/lockdown_apps.dir/nintendo.cc.o.d"
  "/root/repo/src/apps/sessionizer.cc" "src/apps/CMakeFiles/lockdown_apps.dir/sessionizer.cc.o" "gcc" "src/apps/CMakeFiles/lockdown_apps.dir/sessionizer.cc.o.d"
  "/root/repo/src/apps/signature.cc" "src/apps/CMakeFiles/lockdown_apps.dir/signature.cc.o" "gcc" "src/apps/CMakeFiles/lockdown_apps.dir/signature.cc.o.d"
  "/root/repo/src/apps/social.cc" "src/apps/CMakeFiles/lockdown_apps.dir/social.cc.o" "gcc" "src/apps/CMakeFiles/lockdown_apps.dir/social.cc.o.d"
  "/root/repo/src/apps/steam.cc" "src/apps/CMakeFiles/lockdown_apps.dir/steam.cc.o" "gcc" "src/apps/CMakeFiles/lockdown_apps.dir/steam.cc.o.d"
  "/root/repo/src/apps/zoom.cc" "src/apps/CMakeFiles/lockdown_apps.dir/zoom.cc.o" "gcc" "src/apps/CMakeFiles/lockdown_apps.dir/zoom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/world/CMakeFiles/lockdown_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
