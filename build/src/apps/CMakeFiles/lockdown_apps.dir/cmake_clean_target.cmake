file(REMOVE_RECURSE
  "liblockdown_apps.a"
)
