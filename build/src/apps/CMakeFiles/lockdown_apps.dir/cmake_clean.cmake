file(REMOVE_RECURSE
  "CMakeFiles/lockdown_apps.dir/nintendo.cc.o"
  "CMakeFiles/lockdown_apps.dir/nintendo.cc.o.d"
  "CMakeFiles/lockdown_apps.dir/sessionizer.cc.o"
  "CMakeFiles/lockdown_apps.dir/sessionizer.cc.o.d"
  "CMakeFiles/lockdown_apps.dir/signature.cc.o"
  "CMakeFiles/lockdown_apps.dir/signature.cc.o.d"
  "CMakeFiles/lockdown_apps.dir/social.cc.o"
  "CMakeFiles/lockdown_apps.dir/social.cc.o.d"
  "CMakeFiles/lockdown_apps.dir/steam.cc.o"
  "CMakeFiles/lockdown_apps.dir/steam.cc.o.d"
  "CMakeFiles/lockdown_apps.dir/zoom.cc.o"
  "CMakeFiles/lockdown_apps.dir/zoom.cc.o.d"
  "liblockdown_apps.a"
  "liblockdown_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
