# Empty compiler generated dependencies file for lockdown_privacy.
# This may be replaced when dependencies are built.
