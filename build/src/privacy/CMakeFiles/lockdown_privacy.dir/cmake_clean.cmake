file(REMOVE_RECURSE
  "CMakeFiles/lockdown_privacy.dir/visitor_filter.cc.o"
  "CMakeFiles/lockdown_privacy.dir/visitor_filter.cc.o.d"
  "liblockdown_privacy.a"
  "liblockdown_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
