file(REMOVE_RECURSE
  "liblockdown_privacy.a"
)
