# Empty dependencies file for lockdown_privacy.
# This may be replaced when dependencies are built.
