file(REMOVE_RECURSE
  "CMakeFiles/lockdown_core.dir/dataset.cc.o"
  "CMakeFiles/lockdown_core.dir/dataset.cc.o.d"
  "CMakeFiles/lockdown_core.dir/offline.cc.o"
  "CMakeFiles/lockdown_core.dir/offline.cc.o.d"
  "CMakeFiles/lockdown_core.dir/pipeline.cc.o"
  "CMakeFiles/lockdown_core.dir/pipeline.cc.o.d"
  "CMakeFiles/lockdown_core.dir/study.cc.o"
  "CMakeFiles/lockdown_core.dir/study.cc.o.d"
  "liblockdown_core.a"
  "liblockdown_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
