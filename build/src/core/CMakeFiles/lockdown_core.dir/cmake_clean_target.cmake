file(REMOVE_RECURSE
  "liblockdown_core.a"
)
