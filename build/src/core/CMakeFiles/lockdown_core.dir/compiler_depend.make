# Empty compiler generated dependencies file for lockdown_core.
# This may be replaced when dependencies are built.
