file(REMOVE_RECURSE
  "CMakeFiles/lockdown_world.dir/catalog.cc.o"
  "CMakeFiles/lockdown_world.dir/catalog.cc.o.d"
  "CMakeFiles/lockdown_world.dir/geo_db.cc.o"
  "CMakeFiles/lockdown_world.dir/geo_db.cc.o.d"
  "CMakeFiles/lockdown_world.dir/oui_db.cc.o"
  "CMakeFiles/lockdown_world.dir/oui_db.cc.o.d"
  "CMakeFiles/lockdown_world.dir/user_agents.cc.o"
  "CMakeFiles/lockdown_world.dir/user_agents.cc.o.d"
  "liblockdown_world.a"
  "liblockdown_world.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_world.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
