file(REMOVE_RECURSE
  "liblockdown_world.a"
)
