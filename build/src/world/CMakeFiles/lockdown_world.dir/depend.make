# Empty dependencies file for lockdown_world.
# This may be replaced when dependencies are built.
