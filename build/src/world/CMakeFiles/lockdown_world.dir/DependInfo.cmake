
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/world/catalog.cc" "src/world/CMakeFiles/lockdown_world.dir/catalog.cc.o" "gcc" "src/world/CMakeFiles/lockdown_world.dir/catalog.cc.o.d"
  "/root/repo/src/world/geo_db.cc" "src/world/CMakeFiles/lockdown_world.dir/geo_db.cc.o" "gcc" "src/world/CMakeFiles/lockdown_world.dir/geo_db.cc.o.d"
  "/root/repo/src/world/oui_db.cc" "src/world/CMakeFiles/lockdown_world.dir/oui_db.cc.o" "gcc" "src/world/CMakeFiles/lockdown_world.dir/oui_db.cc.o.d"
  "/root/repo/src/world/user_agents.cc" "src/world/CMakeFiles/lockdown_world.dir/user_agents.cc.o" "gcc" "src/world/CMakeFiles/lockdown_world.dir/user_agents.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
