file(REMOVE_RECURSE
  "CMakeFiles/lockdown_util.dir/csv.cc.o"
  "CMakeFiles/lockdown_util.dir/csv.cc.o.d"
  "CMakeFiles/lockdown_util.dir/hash.cc.o"
  "CMakeFiles/lockdown_util.dir/hash.cc.o.d"
  "CMakeFiles/lockdown_util.dir/rng.cc.o"
  "CMakeFiles/lockdown_util.dir/rng.cc.o.d"
  "CMakeFiles/lockdown_util.dir/strings.cc.o"
  "CMakeFiles/lockdown_util.dir/strings.cc.o.d"
  "CMakeFiles/lockdown_util.dir/table.cc.o"
  "CMakeFiles/lockdown_util.dir/table.cc.o.d"
  "CMakeFiles/lockdown_util.dir/time.cc.o"
  "CMakeFiles/lockdown_util.dir/time.cc.o.d"
  "liblockdown_util.a"
  "liblockdown_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
