# Empty compiler generated dependencies file for lockdown_util.
# This may be replaced when dependencies are built.
