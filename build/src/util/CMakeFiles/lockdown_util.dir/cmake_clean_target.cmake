file(REMOVE_RECURSE
  "liblockdown_util.a"
)
