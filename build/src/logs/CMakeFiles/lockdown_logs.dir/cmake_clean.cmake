file(REMOVE_RECURSE
  "CMakeFiles/lockdown_logs.dir/dhcp_log.cc.o"
  "CMakeFiles/lockdown_logs.dir/dhcp_log.cc.o.d"
  "CMakeFiles/lockdown_logs.dir/dns_log.cc.o"
  "CMakeFiles/lockdown_logs.dir/dns_log.cc.o.d"
  "CMakeFiles/lockdown_logs.dir/ua_log.cc.o"
  "CMakeFiles/lockdown_logs.dir/ua_log.cc.o.d"
  "liblockdown_logs.a"
  "liblockdown_logs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_logs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
