# Empty compiler generated dependencies file for lockdown_logs.
# This may be replaced when dependencies are built.
