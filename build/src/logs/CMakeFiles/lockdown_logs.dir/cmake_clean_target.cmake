file(REMOVE_RECURSE
  "liblockdown_logs.a"
)
