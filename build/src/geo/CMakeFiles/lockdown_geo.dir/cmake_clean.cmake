file(REMOVE_RECURSE
  "CMakeFiles/lockdown_geo.dir/border.cc.o"
  "CMakeFiles/lockdown_geo.dir/border.cc.o.d"
  "CMakeFiles/lockdown_geo.dir/geodesy.cc.o"
  "CMakeFiles/lockdown_geo.dir/geodesy.cc.o.d"
  "CMakeFiles/lockdown_geo.dir/intl.cc.o"
  "CMakeFiles/lockdown_geo.dir/intl.cc.o.d"
  "liblockdown_geo.a"
  "liblockdown_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
