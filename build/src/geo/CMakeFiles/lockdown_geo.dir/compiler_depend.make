# Empty compiler generated dependencies file for lockdown_geo.
# This may be replaced when dependencies are built.
