file(REMOVE_RECURSE
  "liblockdown_geo.a"
)
