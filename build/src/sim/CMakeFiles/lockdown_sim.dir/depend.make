# Empty dependencies file for lockdown_sim.
# This may be replaced when dependencies are built.
