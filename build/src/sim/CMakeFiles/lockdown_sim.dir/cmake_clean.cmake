file(REMOVE_RECURSE
  "CMakeFiles/lockdown_sim.dir/activity.cc.o"
  "CMakeFiles/lockdown_sim.dir/activity.cc.o.d"
  "CMakeFiles/lockdown_sim.dir/generator.cc.o"
  "CMakeFiles/lockdown_sim.dir/generator.cc.o.d"
  "CMakeFiles/lockdown_sim.dir/population.cc.o"
  "CMakeFiles/lockdown_sim.dir/population.cc.o.d"
  "CMakeFiles/lockdown_sim.dir/timeline.cc.o"
  "CMakeFiles/lockdown_sim.dir/timeline.cc.o.d"
  "liblockdown_sim.a"
  "liblockdown_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
