
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/activity.cc" "src/sim/CMakeFiles/lockdown_sim.dir/activity.cc.o" "gcc" "src/sim/CMakeFiles/lockdown_sim.dir/activity.cc.o.d"
  "/root/repo/src/sim/generator.cc" "src/sim/CMakeFiles/lockdown_sim.dir/generator.cc.o" "gcc" "src/sim/CMakeFiles/lockdown_sim.dir/generator.cc.o.d"
  "/root/repo/src/sim/population.cc" "src/sim/CMakeFiles/lockdown_sim.dir/population.cc.o" "gcc" "src/sim/CMakeFiles/lockdown_sim.dir/population.cc.o.d"
  "/root/repo/src/sim/timeline.cc" "src/sim/CMakeFiles/lockdown_sim.dir/timeline.cc.o" "gcc" "src/sim/CMakeFiles/lockdown_sim.dir/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/world/CMakeFiles/lockdown_world.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcp/CMakeFiles/lockdown_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/lockdown_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/lockdown_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
