file(REMOVE_RECURSE
  "liblockdown_sim.a"
)
