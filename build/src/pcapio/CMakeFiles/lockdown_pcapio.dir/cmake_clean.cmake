file(REMOVE_RECURSE
  "CMakeFiles/lockdown_pcapio.dir/packets.cc.o"
  "CMakeFiles/lockdown_pcapio.dir/packets.cc.o.d"
  "CMakeFiles/lockdown_pcapio.dir/pcap.cc.o"
  "CMakeFiles/lockdown_pcapio.dir/pcap.cc.o.d"
  "CMakeFiles/lockdown_pcapio.dir/tap_pcap.cc.o"
  "CMakeFiles/lockdown_pcapio.dir/tap_pcap.cc.o.d"
  "liblockdown_pcapio.a"
  "liblockdown_pcapio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_pcapio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
