
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcapio/packets.cc" "src/pcapio/CMakeFiles/lockdown_pcapio.dir/packets.cc.o" "gcc" "src/pcapio/CMakeFiles/lockdown_pcapio.dir/packets.cc.o.d"
  "/root/repo/src/pcapio/pcap.cc" "src/pcapio/CMakeFiles/lockdown_pcapio.dir/pcap.cc.o" "gcc" "src/pcapio/CMakeFiles/lockdown_pcapio.dir/pcap.cc.o.d"
  "/root/repo/src/pcapio/tap_pcap.cc" "src/pcapio/CMakeFiles/lockdown_pcapio.dir/tap_pcap.cc.o" "gcc" "src/pcapio/CMakeFiles/lockdown_pcapio.dir/tap_pcap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/flow/CMakeFiles/lockdown_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
