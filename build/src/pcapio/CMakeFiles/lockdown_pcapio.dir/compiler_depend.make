# Empty compiler generated dependencies file for lockdown_pcapio.
# This may be replaced when dependencies are built.
