file(REMOVE_RECURSE
  "liblockdown_pcapio.a"
)
