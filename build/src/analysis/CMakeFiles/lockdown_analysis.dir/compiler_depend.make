# Empty compiler generated dependencies file for lockdown_analysis.
# This may be replaced when dependencies are built.
