file(REMOVE_RECURSE
  "liblockdown_analysis.a"
)
