file(REMOVE_RECURSE
  "CMakeFiles/lockdown_analysis.dir/stats.cc.o"
  "CMakeFiles/lockdown_analysis.dir/stats.cc.o.d"
  "CMakeFiles/lockdown_analysis.dir/timeseries.cc.o"
  "CMakeFiles/lockdown_analysis.dir/timeseries.cc.o.d"
  "liblockdown_analysis.a"
  "liblockdown_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
