
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps/nintendo_steam_test.cc" "tests/CMakeFiles/apps_test.dir/apps/nintendo_steam_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/nintendo_steam_test.cc.o.d"
  "/root/repo/tests/apps/sessionizer_test.cc" "tests/CMakeFiles/apps_test.dir/apps/sessionizer_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/sessionizer_test.cc.o.d"
  "/root/repo/tests/apps/signature_test.cc" "tests/CMakeFiles/apps_test.dir/apps/signature_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/signature_test.cc.o.d"
  "/root/repo/tests/apps/social_test.cc" "tests/CMakeFiles/apps_test.dir/apps/social_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/social_test.cc.o.d"
  "/root/repo/tests/apps/zoom_test.cc" "tests/CMakeFiles/apps_test.dir/apps/zoom_test.cc.o" "gcc" "tests/CMakeFiles/apps_test.dir/apps/zoom_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/lockdown_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/lockdown_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
