
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/activity_test.cc" "tests/CMakeFiles/sim_test.dir/sim/activity_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/activity_test.cc.o.d"
  "/root/repo/tests/sim/generator_test.cc" "tests/CMakeFiles/sim_test.dir/sim/generator_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/generator_test.cc.o.d"
  "/root/repo/tests/sim/population_test.cc" "tests/CMakeFiles/sim_test.dir/sim/population_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/population_test.cc.o.d"
  "/root/repo/tests/sim/timeline_test.cc" "tests/CMakeFiles/sim_test.dir/sim/timeline_test.cc.o" "gcc" "tests/CMakeFiles/sim_test.dir/sim/timeline_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lockdown_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/lockdown_world.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcp/CMakeFiles/lockdown_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/lockdown_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/lockdown_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
