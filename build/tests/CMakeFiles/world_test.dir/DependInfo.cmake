
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/world/catalog_test.cc" "tests/CMakeFiles/world_test.dir/world/catalog_test.cc.o" "gcc" "tests/CMakeFiles/world_test.dir/world/catalog_test.cc.o.d"
  "/root/repo/tests/world/geo_db_test.cc" "tests/CMakeFiles/world_test.dir/world/geo_db_test.cc.o" "gcc" "tests/CMakeFiles/world_test.dir/world/geo_db_test.cc.o.d"
  "/root/repo/tests/world/oui_db_test.cc" "tests/CMakeFiles/world_test.dir/world/oui_db_test.cc.o" "gcc" "tests/CMakeFiles/world_test.dir/world/oui_db_test.cc.o.d"
  "/root/repo/tests/world/user_agents_test.cc" "tests/CMakeFiles/world_test.dir/world/user_agents_test.cc.o" "gcc" "tests/CMakeFiles/world_test.dir/world/user_agents_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/world/CMakeFiles/lockdown_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
