# Empty compiler generated dependencies file for pcapio_test.
# This may be replaced when dependencies are built.
