file(REMOVE_RECURSE
  "CMakeFiles/pcapio_test.dir/pcapio/packets_test.cc.o"
  "CMakeFiles/pcapio_test.dir/pcapio/packets_test.cc.o.d"
  "CMakeFiles/pcapio_test.dir/pcapio/pcap_test.cc.o"
  "CMakeFiles/pcapio_test.dir/pcapio/pcap_test.cc.o.d"
  "CMakeFiles/pcapio_test.dir/pcapio/robustness_test.cc.o"
  "CMakeFiles/pcapio_test.dir/pcapio/robustness_test.cc.o.d"
  "CMakeFiles/pcapio_test.dir/pcapio/tap_pcap_test.cc.o"
  "CMakeFiles/pcapio_test.dir/pcapio/tap_pcap_test.cc.o.d"
  "pcapio_test"
  "pcapio_test.pdb"
  "pcapio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcapio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
