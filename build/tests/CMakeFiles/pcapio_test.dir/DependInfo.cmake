
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pcapio/packets_test.cc" "tests/CMakeFiles/pcapio_test.dir/pcapio/packets_test.cc.o" "gcc" "tests/CMakeFiles/pcapio_test.dir/pcapio/packets_test.cc.o.d"
  "/root/repo/tests/pcapio/pcap_test.cc" "tests/CMakeFiles/pcapio_test.dir/pcapio/pcap_test.cc.o" "gcc" "tests/CMakeFiles/pcapio_test.dir/pcapio/pcap_test.cc.o.d"
  "/root/repo/tests/pcapio/robustness_test.cc" "tests/CMakeFiles/pcapio_test.dir/pcapio/robustness_test.cc.o" "gcc" "tests/CMakeFiles/pcapio_test.dir/pcapio/robustness_test.cc.o.d"
  "/root/repo/tests/pcapio/tap_pcap_test.cc" "tests/CMakeFiles/pcapio_test.dir/pcapio/tap_pcap_test.cc.o" "gcc" "tests/CMakeFiles/pcapio_test.dir/pcapio/tap_pcap_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pcapio/CMakeFiles/lockdown_pcapio.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/lockdown_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/flow/CMakeFiles/lockdown_flow.dir/DependInfo.cmake"
  "/root/repo/build/src/dhcp/CMakeFiles/lockdown_dhcp.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/lockdown_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
