file(REMOVE_RECURSE
  "CMakeFiles/classify_test.dir/classify/accuracy_test.cc.o"
  "CMakeFiles/classify_test.dir/classify/accuracy_test.cc.o.d"
  "CMakeFiles/classify_test.dir/classify/classifier_test.cc.o"
  "CMakeFiles/classify_test.dir/classify/classifier_test.cc.o.d"
  "CMakeFiles/classify_test.dir/classify/iot_test.cc.o"
  "CMakeFiles/classify_test.dir/classify/iot_test.cc.o.d"
  "CMakeFiles/classify_test.dir/classify/switch_detect_test.cc.o"
  "CMakeFiles/classify_test.dir/classify/switch_detect_test.cc.o.d"
  "CMakeFiles/classify_test.dir/classify/user_agent_test.cc.o"
  "CMakeFiles/classify_test.dir/classify/user_agent_test.cc.o.d"
  "classify_test"
  "classify_test.pdb"
  "classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
