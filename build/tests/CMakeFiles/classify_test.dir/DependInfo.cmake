
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/classify/accuracy_test.cc" "tests/CMakeFiles/classify_test.dir/classify/accuracy_test.cc.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/accuracy_test.cc.o.d"
  "/root/repo/tests/classify/classifier_test.cc" "tests/CMakeFiles/classify_test.dir/classify/classifier_test.cc.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/classifier_test.cc.o.d"
  "/root/repo/tests/classify/iot_test.cc" "tests/CMakeFiles/classify_test.dir/classify/iot_test.cc.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/iot_test.cc.o.d"
  "/root/repo/tests/classify/switch_detect_test.cc" "tests/CMakeFiles/classify_test.dir/classify/switch_detect_test.cc.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/switch_detect_test.cc.o.d"
  "/root/repo/tests/classify/user_agent_test.cc" "tests/CMakeFiles/classify_test.dir/classify/user_agent_test.cc.o" "gcc" "tests/CMakeFiles/classify_test.dir/classify/user_agent_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/classify/CMakeFiles/lockdown_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/world/CMakeFiles/lockdown_world.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/lockdown_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lockdown_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
