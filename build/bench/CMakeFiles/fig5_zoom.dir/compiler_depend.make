# Empty compiler generated dependencies file for fig5_zoom.
# This may be replaced when dependencies are built.
