file(REMOVE_RECURSE
  "CMakeFiles/fig5_zoom.dir/fig5_zoom.cc.o"
  "CMakeFiles/fig5_zoom.dir/fig5_zoom.cc.o.d"
  "fig5_zoom"
  "fig5_zoom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_zoom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
