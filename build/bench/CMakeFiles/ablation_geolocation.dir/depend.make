# Empty dependencies file for ablation_geolocation.
# This may be replaced when dependencies are built.
