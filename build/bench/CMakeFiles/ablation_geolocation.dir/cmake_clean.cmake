file(REMOVE_RECURSE
  "CMakeFiles/ablation_geolocation.dir/ablation_geolocation.cc.o"
  "CMakeFiles/ablation_geolocation.dir/ablation_geolocation.cc.o.d"
  "ablation_geolocation"
  "ablation_geolocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_geolocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
