file(REMOVE_RECURSE
  "CMakeFiles/ext_category_volumes.dir/ext_category_volumes.cc.o"
  "CMakeFiles/ext_category_volumes.dir/ext_category_volumes.cc.o.d"
  "ext_category_volumes"
  "ext_category_volumes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_category_volumes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
