# Empty compiler generated dependencies file for ext_category_volumes.
# This may be replaced when dependencies are built.
