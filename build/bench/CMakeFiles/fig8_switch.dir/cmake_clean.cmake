file(REMOVE_RECURSE
  "CMakeFiles/fig8_switch.dir/fig8_switch.cc.o"
  "CMakeFiles/fig8_switch.dir/fig8_switch.cc.o.d"
  "fig8_switch"
  "fig8_switch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_switch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
