# Empty compiler generated dependencies file for fig8_switch.
# This may be replaced when dependencies are built.
