file(REMOVE_RECURSE
  "CMakeFiles/fig2_bytes_per_device.dir/fig2_bytes_per_device.cc.o"
  "CMakeFiles/fig2_bytes_per_device.dir/fig2_bytes_per_device.cc.o.d"
  "fig2_bytes_per_device"
  "fig2_bytes_per_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_bytes_per_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
