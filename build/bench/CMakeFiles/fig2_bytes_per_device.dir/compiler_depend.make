# Empty compiler generated dependencies file for fig2_bytes_per_device.
# This may be replaced when dependencies are built.
