# Empty compiler generated dependencies file for fig6_social_media.
# This may be replaced when dependencies are built.
