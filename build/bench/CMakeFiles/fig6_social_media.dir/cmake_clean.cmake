file(REMOVE_RECURSE
  "CMakeFiles/fig6_social_media.dir/fig6_social_media.cc.o"
  "CMakeFiles/fig6_social_media.dir/fig6_social_media.cc.o.d"
  "fig6_social_media"
  "fig6_social_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_social_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
