# Empty compiler generated dependencies file for fig1_active_devices.
# This may be replaced when dependencies are built.
