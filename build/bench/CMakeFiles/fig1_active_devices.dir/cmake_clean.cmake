file(REMOVE_RECURSE
  "CMakeFiles/fig1_active_devices.dir/fig1_active_devices.cc.o"
  "CMakeFiles/fig1_active_devices.dir/fig1_active_devices.cc.o.d"
  "fig1_active_devices"
  "fig1_active_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_active_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
