file(REMOVE_RECURSE
  "CMakeFiles/fig3_hour_of_week.dir/fig3_hour_of_week.cc.o"
  "CMakeFiles/fig3_hour_of_week.dir/fig3_hour_of_week.cc.o.d"
  "fig3_hour_of_week"
  "fig3_hour_of_week.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_hour_of_week.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
