# Empty compiler generated dependencies file for fig3_hour_of_week.
# This may be replaced when dependencies are built.
