file(REMOVE_RECURSE
  "CMakeFiles/fig7_steam.dir/fig7_steam.cc.o"
  "CMakeFiles/fig7_steam.dir/fig7_steam.cc.o.d"
  "fig7_steam"
  "fig7_steam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_steam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
