# Empty compiler generated dependencies file for fig7_steam.
# This may be replaced when dependencies are built.
