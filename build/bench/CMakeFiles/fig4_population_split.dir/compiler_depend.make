# Empty compiler generated dependencies file for fig4_population_split.
# This may be replaced when dependencies are built.
