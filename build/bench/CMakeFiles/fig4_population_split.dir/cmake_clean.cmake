file(REMOVE_RECURSE
  "CMakeFiles/fig4_population_split.dir/fig4_population_split.cc.o"
  "CMakeFiles/fig4_population_split.dir/fig4_population_split.cc.o.d"
  "fig4_population_split"
  "fig4_population_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_population_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
