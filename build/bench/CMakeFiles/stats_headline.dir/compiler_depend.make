# Empty compiler generated dependencies file for stats_headline.
# This may be replaced when dependencies are built.
