file(REMOVE_RECURSE
  "CMakeFiles/stats_headline.dir/stats_headline.cc.o"
  "CMakeFiles/stats_headline.dir/stats_headline.cc.o.d"
  "stats_headline"
  "stats_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
