# Empty dependencies file for stats_classifier_accuracy.
# This may be replaced when dependencies are built.
