file(REMOVE_RECURSE
  "CMakeFiles/stats_classifier_accuracy.dir/stats_classifier_accuracy.cc.o"
  "CMakeFiles/stats_classifier_accuracy.dir/stats_classifier_accuracy.cc.o.d"
  "stats_classifier_accuracy"
  "stats_classifier_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_classifier_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
