# Empty dependencies file for ext_diurnal_comparison.
# This may be replaced when dependencies are built.
