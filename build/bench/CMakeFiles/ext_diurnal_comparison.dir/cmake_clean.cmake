file(REMOVE_RECURSE
  "CMakeFiles/ext_diurnal_comparison.dir/ext_diurnal_comparison.cc.o"
  "CMakeFiles/ext_diurnal_comparison.dir/ext_diurnal_comparison.cc.o.d"
  "ext_diurnal_comparison"
  "ext_diurnal_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_diurnal_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
