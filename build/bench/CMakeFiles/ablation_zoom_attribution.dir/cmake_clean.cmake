file(REMOVE_RECURSE
  "CMakeFiles/ablation_zoom_attribution.dir/ablation_zoom_attribution.cc.o"
  "CMakeFiles/ablation_zoom_attribution.dir/ablation_zoom_attribution.cc.o.d"
  "ablation_zoom_attribution"
  "ablation_zoom_attribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_zoom_attribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
