# Empty dependencies file for ablation_zoom_attribution.
# This may be replaced when dependencies are built.
