file(REMOVE_RECURSE
  "CMakeFiles/ablation_visitor_filter.dir/ablation_visitor_filter.cc.o"
  "CMakeFiles/ablation_visitor_filter.dir/ablation_visitor_filter.cc.o.d"
  "ablation_visitor_filter"
  "ablation_visitor_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_visitor_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
