# Empty dependencies file for ablation_visitor_filter.
# This may be replaced when dependencies are built.
