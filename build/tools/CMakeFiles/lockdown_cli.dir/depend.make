# Empty dependencies file for lockdown_cli.
# This may be replaced when dependencies are built.
