file(REMOVE_RECURSE
  "CMakeFiles/lockdown_cli.dir/lockdown_cli.cc.o"
  "CMakeFiles/lockdown_cli.dir/lockdown_cli.cc.o.d"
  "lockdown_cli"
  "lockdown_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lockdown_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
