// Quickstart: simulate a small campus through the full measurement pipeline
// and print the study's headline numbers.
//
//   $ ./quickstart [num_students]
//
// ~10 lines of API: configure, collect, analyze.
#include <cstdlib>
#include <iostream>

#include "core/pipeline.h"
#include "core/study.h"

int main(int argc, char** argv) {
  using namespace lockdown;

  core::StudyConfig config = core::StudyConfig::Small(/*num_students=*/200);
  if (argc > 1) config.generator.population.num_students = std::atoi(argv[1]);

  std::cout << "Simulating " << config.generator.population.num_students
            << " students, 2020-02-01 .. 2020-05-31...\n";
  const core::CollectionResult collection =
      core::MeasurementPipeline::Collect(config);
  std::cout << "Collected " << collection.dataset.num_flows() << " flows from "
            << collection.dataset.num_devices() << " devices ("
            << collection.stats.tap_excluded << " tap-excluded events, "
            << collection.stats.devices_observed -
                   collection.stats.devices_retained
            << " visitor devices dropped).\n\n";

  const core::LockdownStudy study(collection.dataset,
                                  world::ServiceCatalog::Default());
  const auto headline = study.HeadlineStats();
  std::cout << "Peak active devices/day:  " << headline.peak_active_devices << "\n"
            << "Post-shutdown users:      " << headline.post_shutdown_users << "\n"
            << "Traffic change Feb->Apr/May (post-shutdown cohort): "
            << static_cast<int>(100 * headline.traffic_increase) << "%\n"
            << "Distinct-site change:     "
            << static_cast<int>(100 * headline.distinct_sites_increase) << "%\n"
            << "International devices:    " << headline.international_devices
            << " (" << static_cast<int>(100 * headline.international_share)
            << "% of post-shutdown users)\n";

  const auto zoom = study.ZoomDailyBytes();
  const int apr15 = util::StudyCalendar::DayIndex(util::CivilDate{2020, 4, 15});
  std::cout << "Zoom on Wednesday 4/15:   " << zoom.at(apr15) / 1e9 << " GB\n";
  return 0;
}
