// Packet-level workflow: simulate a short window of campus traffic, render
// it as a real .pcap file (tcpdump/wireshark-compatible), then re-ingest the
// pcap through the flow assembler and print a conn.log — the path an adopter
// with their own captures would take.
//
//   $ ./pcap_workflow [pcap_path]
#include <fstream>
#include <iostream>

#include "flow/assembler.h"
#include "flow/conn_log.h"
#include "pcapio/tap_pcap.h"
#include "sim/generator.h"

int main(int argc, char** argv) {
  using namespace lockdown;
  const char* pcap_path = argc > 1 ? argv[1] : "campus_sample.pcap";

  // One pre-pandemic day of a very small dorm.
  sim::GeneratorConfig config;
  config.population.num_students = 6;
  config.first_day = 10;
  config.last_day = 11;
  sim::TrafficGenerator generator(config);
  std::vector<flow::TapEvent> events;
  generator.Run([&events](const flow::TapEvent& ev) { events.push_back(ev); });
  std::cout << "simulated " << events.size() << " tap events\n";

  // Render as packets and write a real pcap file.
  const auto document = pcapio::SynthesizePcap(events);
  {
    std::ofstream out(pcap_path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(document.data()),
              static_cast<std::streamsize>(document.size()));
  }
  std::cout << "wrote " << pcap_path << " (" << document.size() / 1024
            << " KiB; open it in wireshark)\n";

  // Re-ingest the pcap as if it were a foreign capture.
  std::vector<flow::FlowRecord> flows;
  flow::Assembler assembler(flow::AssemblerConfig{},
                            [&flows](const flow::FlowRecord& r) {
                              flows.push_back(r);
                            });
  const auto stats = pcapio::IngestPcap(
      document,
      [&config](net::Ipv4Address ip) { return config.client_pool.Contains(ip); },
      [&assembler](const flow::TapEvent& ev) { assembler.Ingest(ev); });
  assembler.Finish();
  if (!stats) {
    std::cerr << "pcap ingest failed\n";
    return 1;
  }
  std::cout << "ingested " << stats->packets << " packets ("
            << stats->ignored << " ignored) -> " << flows.size()
            << " flows\n\nfirst lines of the extracted conn.log:\n";
  std::vector<flow::FlowRecord> head(flows.begin(),
                                     flows.begin() + std::min<std::size_t>(
                                                         flows.size(), 10));
  flow::WriteConnLog(std::cout, head);
  return 0;
}
