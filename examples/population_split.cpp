// Population segmentation walkthrough (paper §4.2): geolocate every
// post-shutdown device's February destinations, compute the bytes-weighted
// midpoint, and label devices whose midpoint falls outside the US as
// international. Prints midpoints, the label split, and per-application
// contrasts between the two groups.
//
//   $ ./population_split [num_students]
#include <cstdlib>
#include <iostream>

#include "core/pipeline.h"
#include "core/study.h"
#include "geo/intl.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lockdown;

  core::StudyConfig config = core::StudyConfig::Small(400);
  if (argc > 1) config.generator.population.num_students = std::atoi(argv[1]);

  const auto collection = core::MeasurementPipeline::Collect(config);
  const auto& ds = collection.dataset;
  const auto& catalog = world::ServiceCatalog::Default();
  const core::LockdownStudy study(ds, catalog);

  // Re-run the geolocation step explicitly to show midpoints.
  const world::GeoDatabase geo(catalog);
  geo::InternationalClassifier classifier(geo);
  for (const auto& flow : ds.flows()) {
    classifier.Observe(privacy::DeviceId{flow.device}, flow.server_ip,
                       flow.total_bytes(), core::Dataset::StartOf(flow));
  }

  std::cout << "sample midpoints (post-shutdown devices):\n";
  util::TablePrinter table({"device", "lat", "lon", "label"});
  int shown = 0;
  for (const core::DeviceIndex dev : study.PostShutdownDevices()) {
    const auto result = classifier.Classify(privacy::DeviceId{dev});
    if (!result || shown >= 14) continue;
    ++shown;
    table.AddRow({std::to_string(dev), util::FormatDouble(result->midpoint.lat, 1),
                  util::FormatDouble(result->midpoint.lon, 1),
                  result->international ? "international" : "domestic"});
  }
  table.Print(std::cout);

  const auto& split = study.Split();
  std::cout << "\nlabel split: " << split.num_international << " international / "
            << study.PostShutdownDevices().size() - split.num_international
            << " domestic (" << split.num_with_geo
            << " devices had usable February traffic)\n";

  // The paper's two behavioural contrasts.
  const auto fb_feb = study.SocialDurations(apps::SocialApp::kFacebook, 2);
  const auto fb_may = study.SocialDurations(apps::SocialApp::kFacebook, 5);
  const auto steam_mar = study.SteamUsage(3);
  std::cout << "\nFacebook median hours, Feb (dom vs intl):  "
            << util::FormatDouble(fb_feb.domestic.median, 1) << " vs "
            << util::FormatDouble(fb_feb.international.median, 1) << "\n"
            << "Facebook median hours, May (dom vs intl):  "
            << util::FormatDouble(fb_may.domestic.median, 1) << " vs "
            << util::FormatDouble(fb_may.international.median, 1) << "\n"
            << "Steam March median MB (dom vs intl):       "
            << util::FormatDouble(steam_mar.dom_bytes.median / 1e6, 0) << " vs "
            << util::FormatDouble(steam_mar.intl_bytes.median / 1e6, 0) << "\n"
            << "\n\"international students spend less time on US-based social\n"
            << " media applications than their domestic counterparts, but\n"
            << " spend more time on Steam\" (paper, §1)\n";
  return 0;
}
