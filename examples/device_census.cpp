// Device census: runs the classifier over a simulated campus and prints a
// per-class census with the evidence that decided each classification —
// User-Agent strings, OUIs, Saidi-style IoT signatures, and the
// Nintendo-traffic rule.
//
//   $ ./device_census [num_students]
#include <array>
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/pipeline.h"
#include "core/study.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace lockdown;

  core::StudyConfig config = core::StudyConfig::Small(300);
  if (argc > 1) config.generator.population.num_students = std::atoi(argv[1]);

  const auto collection = core::MeasurementPipeline::Collect(config);
  const core::LockdownStudy study(collection.dataset,
                                  world::ServiceCatalog::Default());
  const auto& ds = collection.dataset;

  // Census: class x evidence.
  std::map<std::pair<std::string, std::string>, int> census;
  for (core::DeviceIndex i = 0; i < ds.num_devices(); ++i) {
    const auto& c = study.classifications()[i];
    ++census[{classify::ToString(c.device_class), std::string(c.evidence)}];
  }
  util::TablePrinter table({"class", "evidence", "devices"});
  for (const auto& [key, count] : census) {
    table.AddRow({key.first, key.second, std::to_string(count)});
  }
  std::cout << "DEVICE CENSUS over " << ds.num_devices() << " retained devices\n";
  table.Print(std::cout);

  // Show a few concrete devices with their observations.
  std::cout << "\nsample devices:\n";
  int shown = 0;
  for (core::DeviceIndex i = 0; i < ds.num_devices() && shown < 6; i += 37) {
    const auto& obs = ds.device(i).observations;
    const auto& c = study.classifications()[i];
    std::cout << "  device " << i << ": " << classify::ToString(c.device_class)
              << " (evidence: " << c.evidence << ")\n"
              << "    flows=" << obs.flow_count << " bytes=" << obs.total_bytes
              << " domains=" << obs.bytes_by_domain.size()
              << (obs.locally_administered ? " randomized-mac" : "") << "\n";
    if (!obs.user_agents.empty()) {
      std::cout << "    ua: " << obs.user_agents.front().substr(0, 70) << "...\n";
    }
    ++shown;
  }

  // IoT platform breakdown via the Saidi-style detector.
  const classify::IotDetector iot(world::ServiceCatalog::Default());
  std::map<std::string, int> platforms;
  for (core::DeviceIndex i = 0; i < ds.num_devices(); ++i) {
    if (const auto match = iot.Detect(ds.device(i).observations)) {
      ++platforms[std::string(match->platform)];
    }
  }
  std::cout << "\nIoT platforms detected (signature threshold "
            << iot.threshold() << "):\n";
  for (const auto& [platform, count] : platforms) {
    std::cout << "  " << platform << ": " << count << "\n";
  }
  return 0;
}
