// Full reproduction driver: runs every analysis from the paper and writes
// the series behind each figure as TSV files, ready for plotting.
//
//   $ ./pandemic_study [output_dir] [num_students]
//
// Produces fig1.tsv .. fig8.tsv plus headline.tsv in output_dir (default
// "./study_output").
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/pipeline.h"
#include "core/study.h"
#include "util/csv.h"
#include "util/strings.h"

namespace {

using namespace lockdown;

std::ofstream Open(const std::filesystem::path& dir, const char* name) {
  std::ofstream out(dir / name);
  if (!out) {
    std::cerr << "cannot write " << (dir / name) << "\n";
    std::exit(1);
  }
  return out;
}

std::string D(double v, int p = 2) { return util::FormatDouble(v, p); }

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path out_dir = argc > 1 ? argv[1] : "study_output";
  std::filesystem::create_directories(out_dir);

  core::StudyConfig config = core::StudyConfig::Small(600);
  if (argc > 2) config.generator.population.num_students = std::atoi(argv[2]);

  std::cout << "Simulating " << config.generator.population.num_students
            << " students...\n";
  const auto collection = core::MeasurementPipeline::Collect(config);
  const core::LockdownStudy study(collection.dataset,
                                  world::ServiceCatalog::Default());
  std::cout << "Dataset: " << collection.dataset.num_flows() << " flows, "
            << collection.dataset.num_devices() << " devices. Writing "
            << out_dir << "/fig*.tsv\n";

  {  // Figure 1 + Figure 2 share the daily axis.
    auto f1 = Open(out_dir, "fig1_active_devices.tsv");
    util::DelimitedWriter w1(f1);
    w1.WriteHeader({"date", "mobile", "laptop_desktop", "iot", "unclassified", "total"});
    for (const auto& row : study.ActiveDevicesPerDay()) {
      w1.WriteRow({util::FormatDate(util::StudyCalendar::DateAt(row.day)),
                   std::to_string(row.by_class[0]), std::to_string(row.by_class[1]),
                   std::to_string(row.by_class[2]), std::to_string(row.by_class[3]),
                   std::to_string(row.total)});
    }
    auto f2 = Open(out_dir, "fig2_bytes_per_device.tsv");
    util::DelimitedWriter w2(f2);
    w2.WriteHeader({"date", "mean_mobile", "med_mobile", "mean_laptop", "med_laptop",
                    "mean_iot", "med_iot", "mean_unclassified", "med_unclassified"});
    for (const auto& row : study.BytesPerDevicePerDay()) {
      std::vector<std::string> cells = {
          util::FormatDate(util::StudyCalendar::DateAt(row.day))};
      for (int c = 0; c < core::kNumReportClasses; ++c) {
        cells.push_back(D(row.mean[static_cast<std::size_t>(c)], 0));
        cells.push_back(D(row.median[static_cast<std::size_t>(c)], 0));
      }
      w2.WriteRow(cells);
    }
  }

  {  // Figure 3.
    auto f = Open(out_dir, "fig3_hour_of_week.tsv");
    util::DelimitedWriter w(f);
    w.WriteHeader({"hour_of_week", "wk_0220", "wk_0319", "wk_0409", "wk_0514"});
    const auto how = study.HourOfWeekVolume();
    for (int h = 0; h < analysis::HourOfWeekSeries::kHours; ++h) {
      w.WriteRow({std::to_string(h), D(how.weeks[0].at(h)), D(how.weeks[1].at(h)),
                  D(how.weeks[2].at(h)), D(how.weeks[3].at(h))});
    }
  }

  {  // Figure 4.
    auto f = Open(out_dir, "fig4_population_split.tsv");
    util::DelimitedWriter w(f);
    w.WriteHeader({"date", "intl_mobile_desktop", "dom_mobile_desktop",
                   "intl_unclassified", "dom_unclassified"});
    for (const auto& row : study.MedianBytesExcludingZoom()) {
      w.WriteRow({util::FormatDate(util::StudyCalendar::DateAt(row.day)),
                  D(row.intl_mobile_desktop, 0), D(row.dom_mobile_desktop, 0),
                  D(row.intl_unclassified, 0), D(row.dom_unclassified, 0)});
    }
  }

  {  // Figure 5.
    auto f = Open(out_dir, "fig5_zoom.tsv");
    util::DelimitedWriter w(f);
    w.WriteHeader({"date", "zoom_bytes"});
    const auto zoom = study.ZoomDailyBytes();
    for (int day = 0; day < zoom.num_days(); ++day) {
      w.WriteRow({util::FormatDate(util::StudyCalendar::DateAt(day)),
                  D(zoom.at(day), 0)});
    }
  }

  {  // Figure 6 (a, b, c).
    auto f = Open(out_dir, "fig6_social_durations.tsv");
    util::DelimitedWriter w(f);
    w.WriteHeader({"app", "month", "group", "n", "p1", "q1", "median", "q3", "p95",
                   "p99"});
    for (const auto app : {apps::SocialApp::kFacebook, apps::SocialApp::kInstagram,
                           apps::SocialApp::kTikTok}) {
      for (int month = 2; month <= 5; ++month) {
        const auto box = study.SocialDurations(app, month);
        const auto emit = [&](const char* group, const analysis::BoxStats& b) {
          w.WriteRow({apps::ToString(app), std::to_string(month), group,
                      std::to_string(b.n), D(b.p1), D(b.q1), D(b.median), D(b.q3),
                      D(b.p95), D(b.p99)});
        };
        emit("domestic", box.domestic);
        emit("international", box.international);
      }
    }
  }

  {  // Figure 7 (a, b).
    auto f = Open(out_dir, "fig7_steam.tsv");
    util::DelimitedWriter w(f);
    w.WriteHeader({"month", "group", "metric", "n", "p1", "q1", "median", "q3",
                   "p95"});
    for (int month = 2; month <= 5; ++month) {
      const auto box = study.SteamUsage(month);
      const auto emit = [&](const char* group, const char* metric,
                            const analysis::BoxStats& b) {
        w.WriteRow({std::to_string(month), group, metric, std::to_string(b.n),
                    D(b.p1, 0), D(b.q1, 0), D(b.median, 0), D(b.q3, 0),
                    D(b.p95, 0)});
      };
      emit("domestic", "bytes", box.dom_bytes);
      emit("international", "bytes", box.intl_bytes);
      emit("domestic", "connections", box.dom_conns);
      emit("international", "connections", box.intl_conns);
    }
  }

  {  // Figure 8.
    auto f = Open(out_dir, "fig8_switch_gameplay.tsv");
    util::DelimitedWriter w(f);
    w.WriteHeader({"date", "gameplay_bytes_3day_ma"});
    const auto series = study.SwitchGameplayDaily(3);
    for (int day = 0; day < series.num_days(); ++day) {
      w.WriteRow({util::FormatDate(util::StudyCalendar::DateAt(day)),
                  D(series.at(day), 0)});
    }
  }

  {  // Headline stats.
    auto f = Open(out_dir, "headline.tsv");
    util::DelimitedWriter w(f);
    w.WriteHeader({"statistic", "value"});
    const auto h = study.HeadlineStats();
    const auto sw = study.CountSwitches();
    w.WriteRow({"peak_active_devices", std::to_string(h.peak_active_devices)});
    w.WriteRow({"trough_active_devices", std::to_string(h.trough_active_devices)});
    w.WriteRow({"post_shutdown_users", std::to_string(h.post_shutdown_users)});
    w.WriteRow({"traffic_increase", D(h.traffic_increase)});
    w.WriteRow({"distinct_sites_increase", D(h.distinct_sites_increase)});
    w.WriteRow({"international_devices", std::to_string(h.international_devices)});
    w.WriteRow({"switches_february", std::to_string(sw.active_february)});
    w.WriteRow({"switches_post_shutdown", std::to_string(sw.active_post_shutdown)});
    w.WriteRow({"switches_new_apr_may", std::to_string(sw.new_in_april_may)});
  }

  std::cout << "Done. Every figure's series is in " << out_dir << ".\n";
  return 0;
}
