// Ablation: how much Zoom traffic does each attribution tier catch?
//
// The paper's §5.1 method has three tiers: zoom.us domains, the published
// relay IP list, and IP ranges recovered from the Wayback Machine after Zoom
// removed them from the support page. This bench quantifies each tier
// against simulator ground truth (every flow whose server truly belongs to a
// Zoom service) — i.e., why the wayback step was worth the effort.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& collection = bench::SharedCollection();
  const auto& ds = collection.dataset;
  const auto& catalog = world::ServiceCatalog::Default();
  const apps::ZoomMatcher matcher(catalog);

  const auto zoom = catalog.FindByName("zoom");
  const auto media = catalog.FindByName("zoom-media");
  const auto legacy = catalog.FindByName("zoom-media-legacy");

  std::uint64_t truth_bytes = 0;
  std::uint64_t by_domain = 0, by_current_ip = 0, by_historical_ip = 0;
  for (const core::Flow& f : ds.flows()) {
    const auto svc = catalog.FindByIp(f.server_ip);
    const bool is_zoom = svc == zoom || svc == media || svc == legacy;
    if (!is_zoom) continue;
    truth_bytes += f.total_bytes();
    const std::string_view host = ds.DomainName(f.domain);
    if (!host.empty() && matcher.MatchesDomain(host)) {
      by_domain += f.total_bytes();
    } else if (matcher.MatchesCurrentIp(f.server_ip)) {
      by_current_ip += f.total_bytes();
    } else if (matcher.MatchesHistoricalIp(f.server_ip)) {
      by_historical_ip += f.total_bytes();
    }
  }

  const auto pct = [truth_bytes](std::uint64_t v) {
    return util::FormatDouble(100.0 * static_cast<double>(v) /
                                  static_cast<double>(truth_bytes), 1) + "%";
  };
  util::TablePrinter table({"attribution tier", "zoom bytes", "share of truth",
                            "cumulative"});
  std::uint64_t cumulative = by_domain;
  table.AddRow({"zoom.us domains (DNS-mapped)", bench::Gb(by_domain) + " GB",
                pct(by_domain), pct(cumulative)});
  cumulative += by_current_ip;
  table.AddRow({"+ published relay IP list", bench::Gb(by_current_ip) + " GB",
                pct(by_current_ip), pct(cumulative)});
  cumulative += by_historical_ip;
  table.AddRow({"+ wayback-recovered IP ranges", bench::Gb(by_historical_ip) + " GB",
                pct(by_historical_ip), pct(cumulative)});

  std::cout << "ABLATION — Zoom attribution tiers (ground truth: "
            << bench::Gb(truth_bytes) << " GB of true Zoom traffic)\n";
  table.Print(std::cout);
  std::cout << "\nDomain matching alone misses the raw-IP media relays that "
               "carry most of the bytes;\nwithout the wayback ranges, traffic "
               "to retired relays would go unattributed (§5.1).\n";
  return 0;
}
