// §3's classifier validation: "we manually reviewed 100 random devices in
// our dataset and verified that 84 were correctly classified... two devices
// ... were affirmatively misclassified ... the dominant source of error (14
// devices) was omission."
//
// The reproduction scores the classifier against the simulator's ground
// truth — the only analysis allowed to peek behind the anonymization veil,
// exactly as a manual review would.
#include <iostream>
#include <unordered_map>

#include "bench/common.h"
#include "classify/accuracy.h"
#include "sim/population.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto cfg = bench::DefaultConfig();
  const auto& collection = bench::SharedCollection();
  const auto& study = bench::SharedStudy();

  // Link ground truth through the (simulation-only) anonymizer.
  const auto anonymizer = core::MeasurementPipeline::MakeAnonymizer(cfg);
  sim::Population population(cfg.generator.population);
  std::unordered_map<std::uint64_t, sim::TrueClass> truth_by_id;
  for (const auto& dev : population.devices()) {
    truth_by_id.emplace(anonymizer.AnonymizeMac(dev.mac).value, dev.true_class);
  }

  const auto to_predicted = [](sim::TrueClass t) {
    switch (t) {
      case sim::TrueClass::kMobile: return classify::DeviceClass::kMobile;
      case sim::TrueClass::kLaptopDesktop:
        return classify::DeviceClass::kLaptopDesktop;
      case sim::TrueClass::kIot: return classify::DeviceClass::kIot;
      case sim::TrueClass::kGameConsole:
        return classify::DeviceClass::kGameConsole;
    }
    return classify::DeviceClass::kUnknown;
  };

  std::vector<classify::LabelledDevice> labelled;
  const auto& ds = collection.dataset;
  for (core::DeviceIndex i = 0; i < ds.num_devices(); ++i) {
    const auto it = truth_by_id.find(ds.device(i).id.value);
    if (it == truth_by_id.end()) continue;
    labelled.push_back(classify::LabelledDevice{
        study.classifications()[i].device_class, to_predicted(it->second)});
  }

  std::cout << "CLASSIFIER ACCURACY — simulated manual review (paper §3)\n\n";
  util::TablePrinter table({"sample", "correct", "misclassified",
                            "unknown omissions", "accuracy"});
  // The paper's single 100-device review, then larger samples to show the
  // estimate's stability.
  for (const int sample : {100, 250, 1000}) {
    const auto report =
        classify::EstimateAccuracy(labelled, sample, cfg.generator.population.seed);
    table.AddRow({std::to_string(report.sampled), std::to_string(report.correct),
                  std::to_string(report.misclassified),
                  std::to_string(report.unknown_omissions),
                  util::FormatDouble(100.0 * report.accuracy(), 1) + "%"});
  }
  table.Print(std::cout);
  std::cout << "\npaper: 100 sampled, 84 correct, 2 misclassified, 14 unknown "
               "omissions\n"
            << "note: this review scores against omniscient simulator ground\n"
            << "truth, so every unknown label counts as an omission. The\n"
            << "paper's human reviewers could not identify many unknown\n"
            << "devices either and judged those labels correct, which lifts\n"
            << "their accuracy. The structural claim reproduces: omissions\n"
            << "dominate errors (paper: 14 of 16; here: >95% of errors).\n";

  // Full confusion summary by predicted class.
  std::unordered_map<int, int> by_class;
  for (const auto& l : labelled) {
    ++by_class[static_cast<int>(l.predicted)];
  }
  std::cout << "\npredicted class counts over " << labelled.size()
            << " devices:\n";
  for (const auto cls :
       {classify::DeviceClass::kMobile, classify::DeviceClass::kLaptopDesktop,
        classify::DeviceClass::kIot, classify::DeviceClass::kGameConsole,
        classify::DeviceClass::kUnknown}) {
    std::cout << "  " << classify::ToString(cls) << ": "
              << by_class[static_cast<int>(cls)] << "\n";
  }
  return 0;
}
