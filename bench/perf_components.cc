// Performance ablations for the pipeline's design choices (DESIGN.md §5):
//  - interval-indexed DHCP normalization vs. naive log scan
//  - indexed signature matching vs. linear scan
//  - flow-assembler and sessionizer throughput
//  - geolocation midpoint accumulation and keyed anonymization
//  - LDS snapshot store: load (mmap zero-copy / portable copy) vs. a full
//    pipeline collection of the same dataset
//  - parallel processing + study at 1/2/4/8 threads vs. serial
//
// With LOCKDOWN_BENCH_JSON set, the process additionally runs one obs-
// instrumented end-to-end pass (export -> ingest -> process -> batch study ->
// snapshot save/verify/load -> streaming study) and folds the merged metrics
// snapshot into the JSON document — the per-stage breakdown checked in as
// BENCH_components.json. Pass --benchmark_filter=NONE to run only that.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "apps/sessionizer.h"
#include "bench/common.h"
#include "core/offline.h"
#include "core/pipeline.h"
#include "core/study.h"
#include "store/snapshot.h"
#include "apps/signature.h"
#include "dhcp/normalizer.h"
#include "dhcp/server.h"
#include "dns/resolver.h"
#include "flow/assembler.h"
#include "geo/geodesy.h"
#include "obs/obs.h"
#include "pcapio/tap_pcap.h"
#include "privacy/anonymizer.h"
#include "stream/streaming_study.h"
#include "util/memstats.h"
#include "util/rng.h"
#include "world/catalog.h"

namespace {

using namespace lockdown;

// --- DHCP normalization -------------------------------------------------------

std::vector<dhcp::Lease> ChurnedLog(int devices, int days) {
  dhcp::ServerConfig cfg;
  cfg.lease_lifetime = 6 * util::kSecondsPerHour;
  cfg.renew_same_ip_prob = 0.8;
  dhcp::Server server({net::Cidr(net::Ipv4Address(10, 0, 0, 0), 16)}, cfg,
                      util::Pcg32(1));
  util::Pcg32 rng(2);
  for (int day = 0; day < days; ++day) {
    for (int m = 1; m <= devices; ++m) {
      if (rng.Bernoulli(0.7)) {
        server.Acquire(net::MacAddress(static_cast<std::uint64_t>(m)),
                       day * util::kSecondsPerDay +
                           rng.UniformInt(0, util::kSecondsPerDay - 1));
      }
    }
  }
  return server.log();
}

void BM_DhcpNormalizerIndexed(benchmark::State& state) {
  const auto log = ChurnedLog(500, 60);
  const dhcp::IpToMacNormalizer normalizer(log);
  util::Pcg32 rng(3);
  for (auto _ : state) {
    const net::Ipv4Address ip(10, 0, static_cast<std::uint8_t>(rng.NextBounded(4)),
                              static_cast<std::uint8_t>(rng.NextBounded(256)));
    benchmark::DoNotOptimize(
        normalizer.Lookup(ip, rng.UniformInt(0, 60 * util::kSecondsPerDay)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DhcpNormalizerIndexed);

void BM_DhcpNormalizerLinearScan(benchmark::State& state) {
  const auto log = ChurnedLog(500, 60);
  util::Pcg32 rng(3);
  for (auto _ : state) {
    const net::Ipv4Address ip(10, 0, static_cast<std::uint8_t>(rng.NextBounded(4)),
                              static_cast<std::uint8_t>(rng.NextBounded(256)));
    benchmark::DoNotOptimize(dhcp::IpToMacNormalizer::LookupLinear(
        log, ip, rng.UniformInt(0, 60 * util::kSecondsPerDay)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DhcpNormalizerLinearScan);

// --- Signature matching --------------------------------------------------------

apps::SignatureRegistry FullRegistry() {
  apps::SignatureRegistry reg;
  for (const world::Service& svc : world::ServiceCatalog::Default().services()) {
    if (svc.hosts.empty()) continue;
    reg.Add(apps::DomainSignature(svc.name, svc.hosts));
  }
  return reg;
}

std::vector<std::string> SampleHosts(int n) {
  const auto& catalog = world::ServiceCatalog::Default();
  util::Pcg32 rng(7);
  std::vector<std::string> hosts;
  for (int i = 0; i < n; ++i) {
    const auto& svc = catalog.Get(static_cast<world::ServiceId>(
        rng.NextBounded(static_cast<std::uint32_t>(catalog.size()))));
    if (svc.hosts.empty()) {
      hosts.push_back("unknown.example");
    } else {
      hosts.push_back("edge42." + svc.hosts[0]);
    }
  }
  return hosts;
}

void BM_SignatureMatchIndexed(benchmark::State& state) {
  const auto reg = FullRegistry();
  const auto hosts = SampleHosts(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.Match(hosts[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SignatureMatchIndexed);

void BM_SignatureMatchLinear(benchmark::State& state) {
  const auto reg = FullRegistry();
  const auto hosts = SampleHosts(4096);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reg.MatchLinear(hosts[i++ & 4095]));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SignatureMatchLinear);

// --- Flow assembly ---------------------------------------------------------------

void BM_FlowAssembler(benchmark::State& state) {
  // Pre-generate a realistic event mix: opens/data/closes across 4k tuples.
  std::vector<flow::TapEvent> events;
  util::Pcg32 rng(11);
  util::Timestamp ts = 0;
  for (int i = 0; i < 30000; ++i) {
    ts += rng.NextBounded(3);
    net::FiveTuple t;
    t.src_ip = net::Ipv4Address(0x0A000000 + rng.NextBounded(1000));
    t.dst_ip = net::Ipv4Address(0x40000000 + rng.NextBounded(1000));
    t.src_port = static_cast<net::Port>(32768 + rng.NextBounded(4096));
    t.dst_port = 443;
    const auto kind = static_cast<flow::EventKind>(rng.NextBounded(3));
    events.push_back(flow::TapEvent{ts, kind, t, rng.NextBounded(1000),
                                    rng.NextBounded(100000)});
  }
  for (auto _ : state) {
    std::uint64_t sink = 0;
    flow::Assembler assembler(flow::AssemblerConfig{},
                              [&sink](const flow::FlowRecord& r) {
                                sink += r.bytes_down;
                              });
    for (const auto& ev : events) assembler.Ingest(ev);
    assembler.Finish();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_FlowAssembler);

// --- Sessionizer -----------------------------------------------------------------

void BM_Sessionizer(benchmark::State& state) {
  util::Pcg32 rng(13);
  std::vector<apps::FlowInterval> flows;
  for (int i = 0; i < 2000; ++i) {
    const util::Timestamp s = rng.UniformInt(0, 1000000);
    flows.push_back(
        apps::FlowInterval{s, s + rng.UniformInt(10, 3000), rng.NextBounded(6), 100});
  }
  for (auto _ : state) {
    auto copy = flows;
    benchmark::DoNotOptimize(apps::MergeSessions(std::move(copy)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_Sessionizer);

// --- Geodesy + anonymization --------------------------------------------------------

void BM_MidpointAccumulate(benchmark::State& state) {
  util::Pcg32 rng(17);
  std::vector<std::pair<world::GeoPoint, double>> points;
  for (int i = 0; i < 1024; ++i) {
    points.emplace_back(world::GeoPoint{rng.Uniform(-60, 60), rng.Uniform(-180, 180)},
                        rng.Uniform(1, 1e6));
  }
  for (auto _ : state) {
    geo::MidpointAccumulator acc;
    for (const auto& [p, w] : points) acc.Add(p, w);
    benchmark::DoNotOptimize(acc.Midpoint());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_MidpointAccumulate);

void BM_AnonymizeMac(benchmark::State& state) {
  const privacy::Anonymizer anonymizer(util::SipHashKey{123, 456});
  std::uint64_t mac = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(anonymizer.AnonymizeMac(net::MacAddress(++mac)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AnonymizeMac);

// --- DNS resolver -----------------------------------------------------------------

void BM_ResolverCacheHit(benchmark::State& state) {
  const auto& catalog = world::ServiceCatalog::Default();
  dns::Resolver resolver(
      [&catalog](std::string_view q) { return catalog.ResolveHost(q); },
      dns::ResolverConfig{3600, 0}, util::Pcg32(19));
  (void)resolver.Resolve(net::MacAddress(1), "zoom.us", 0);
  util::Timestamp ts = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.Resolve(net::MacAddress(1), "zoom.us", ts));
    ts = (ts + 1) % 3000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolverCacheHit);

// --- Packet synthesis / parsing -----------------------------------------------

void BM_PacketSynthesize(benchmark::State& state) {
  pcapio::PacketInfo info;
  info.tuple = net::FiveTuple{net::Ipv4Address(10, 0, 0, 1),
                              net::Ipv4Address(64, 0, 0, 1), 40000, 443,
                              net::Protocol::kTcp};
  info.payload_len = 1448;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcapio::SynthesizePacket(info));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketSynthesize);

void BM_PacketParse(benchmark::State& state) {
  pcapio::PacketInfo info;
  info.tuple = net::FiveTuple{net::Ipv4Address(10, 0, 0, 1),
                              net::Ipv4Address(64, 0, 0, 1), 40000, 443,
                              net::Protocol::kTcp};
  info.payload_len = 1448;
  const auto pkt = pcapio::SynthesizePacket(info);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pcapio::ParsePacket(pkt));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketParse);

// --- LDS snapshot store ---------------------------------------------------------
// The write-once/analyze-many claim in numbers: collecting the default bench
// dataset (1200 students unless LOCKDOWN_STUDENTS overrides) vs. loading the
// snapshot of that same dataset. Acceptance floor is a 10x win for the load.

const std::string& SnapshotFixture() {
  static const std::string path = [] {
    const auto file =
        std::filesystem::temp_directory_path() / "lockdown_perf_snapshot.lds";
    const core::StudyConfig cfg = bench::DefaultConfig();
    const auto result = core::MeasurementPipeline::Collect(cfg);
    store::SaveSnapshot(
        file, result,
        store::SnapshotMeta{
            static_cast<std::uint64_t>(cfg.generator.population.num_students),
            cfg.generator.population.seed});
    return file.string();
  }();
  return path;
}

void BM_PipelineCollect(benchmark::State& state) {
  const core::StudyConfig cfg = bench::DefaultConfig();
  for (auto _ : state) {
    const auto result = core::MeasurementPipeline::Collect(cfg);
    benchmark::DoNotOptimize(result.dataset.num_flows());
  }
}
BENCHMARK(BM_PipelineCollect)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SnapshotLoadMmap(benchmark::State& state) {
  const std::string& path = SnapshotFixture();
  for (auto _ : state) {
    const auto snap =
        store::LoadSnapshot(path, {store::LoadMode::kMmap, true});
    benchmark::DoNotOptimize(snap.collection.dataset.num_flows());
  }
}
BENCHMARK(BM_SnapshotLoadMmap)->Unit(benchmark::kMillisecond);

void BM_SnapshotLoadCopy(benchmark::State& state) {
  const std::string& path = SnapshotFixture();
  for (auto _ : state) {
    const auto snap =
        store::LoadSnapshot(path, {store::LoadMode::kCopy, true});
    benchmark::DoNotOptimize(snap.collection.dataset.num_flows());
  }
}
BENCHMARK(BM_SnapshotLoadCopy)->Unit(benchmark::kMillisecond);

void BM_SnapshotSave(benchmark::State& state) {
  const auto loaded = store::LoadSnapshot(SnapshotFixture());
  const auto out =
      std::filesystem::temp_directory_path() / "lockdown_perf_resave.lds";
  for (auto _ : state) {
    store::SaveSnapshot(out, loaded.collection, {});
  }
  std::filesystem::remove(out);
}
BENCHMARK(BM_SnapshotSave)->Unit(benchmark::kMillisecond);

void BM_SnapshotVerify(benchmark::State& state) {
  const std::string& path = SnapshotFixture();
  for (auto _ : state) {
    store::VerifySnapshot(path);
  }
}
BENCHMARK(BM_SnapshotVerify)->Unit(benchmark::kMillisecond);

// --- Parallel processing + study -----------------------------------------------
// Process (attribution, anonymization, visitor filter, dataset build) plus
// the full study construction and Figure 1-8 methods at a fixed thread
// count, over one cached set of raw collection inputs. The generator stays
// serial — it stands in for the tap, which the paper's pipeline consumes,
// not produces. Outputs are byte-identical at every thread count (chunk-
// ordered reduction, util/thread_pool.h), so this isolates pure speedup;
// threads=1 runs the serial fallback. Measured wins are hardware-dependent:
// on a single-core host all arguments collapse to the serial path.

const core::RawInputs& SharedRawInputs() {
  static const core::RawInputs inputs = [] {
    const auto dir =
        std::filesystem::temp_directory_path() / "lockdown_perf_rawlogs";
    core::ExportLogs(bench::DefaultConfig(), dir);
    core::RawInputs raw = core::ReadRawInputs(dir);
    std::filesystem::remove_all(dir);
    return raw;
  }();
  return inputs;
}

void BM_ProcessStudyThreads(benchmark::State& state) {
  const core::StudyConfig cfg = bench::DefaultConfig();
  const auto anonymizer = core::MeasurementPipeline::MakeAnonymizer(cfg);
  const core::RawInputs& raw = SharedRawInputs();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto result = core::MeasurementPipeline::Process(
        raw, anonymizer, cfg.visitor_min_days, threads);
    const core::LockdownStudy study(result.dataset,
                                    world::ServiceCatalog::Default(), threads);
    benchmark::DoNotOptimize(study.ActiveDevicesPerDay());
    benchmark::DoNotOptimize(study.BytesPerDevicePerDay());
    benchmark::DoNotOptimize(study.HourOfWeekVolume());
    benchmark::DoNotOptimize(study.MedianBytesExcludingZoom());
    benchmark::DoNotOptimize(study.ZoomDailyBytes());
    benchmark::DoNotOptimize(study.SwitchGameplayDaily());
    benchmark::DoNotOptimize(study.CategoryVolumes());
    benchmark::DoNotOptimize(study.HeadlineStats());
  }
  state.SetLabel(threads == 1 ? "serial" : std::to_string(threads) + " threads");
}
BENCHMARK(BM_ProcessStudyThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// --- Per-stage component breakdown (src/obs) -----------------------------------
// One end-to-end run with the obs metrics registry enabled: every duration
// histogram the instrumentation fills ("us" spans across pipeline, ingest,
// study, store, stream, thread_pool) lands in the bench JSON as
// <name>_total_ms; counters and gauges pass through verbatim. This is how
// BENCH_components.json gets a per-stage perf trajectory instead of a single
// end-to-end number.

void EmitComponentBreakdown() {
  namespace fs = std::filesystem;
  obs::SetMetricsEnabled(true);
  obs::ResetMetrics();
  const core::StudyConfig cfg = bench::DefaultConfig();

  const fs::path dir = fs::temp_directory_path() / "lockdown_perf_obs_logs";
  core::ExportLogs(cfg, dir);
  core::IngestSummary summary;
  const core::CollectionResult collection = core::CollectFromLogs(
      dir.string(), cfg, ingest::IngestOptions{}, &summary);
  fs::remove_all(dir);

  const core::LockdownStudy study(collection.dataset,
                                  world::ServiceCatalog::Default(), cfg.threads);
  benchmark::DoNotOptimize(study.ActiveDevicesPerDay());
  benchmark::DoNotOptimize(study.BytesPerDevicePerDay());
  benchmark::DoNotOptimize(study.HourOfWeekVolume());
  benchmark::DoNotOptimize(study.MedianBytesExcludingZoom());
  benchmark::DoNotOptimize(study.ZoomDailyBytes());
  benchmark::DoNotOptimize(study.SocialDurations(apps::SocialApp::kFacebook, 4));
  benchmark::DoNotOptimize(study.SteamUsage(4));
  benchmark::DoNotOptimize(study.SwitchGameplayDaily());
  benchmark::DoNotOptimize(study.CountSwitches());
  benchmark::DoNotOptimize(study.CategoryVolumes());
  benchmark::DoNotOptimize(study.DiurnalShape(0, 28));
  benchmark::DoNotOptimize(study.HeadlineStats());

  const fs::path file = fs::temp_directory_path() / "lockdown_perf_obs.lds";
  store::SaveSnapshot(file, collection, {});
  store::VerifySnapshot(file.string());
  const auto snap = store::LoadSnapshot(file.string());
  benchmark::DoNotOptimize(snap.collection.dataset.num_flows());
  fs::remove(file);

  stream::StreamingOptions streaming_opts;
  streaming_opts.threads = cfg.threads;
  const stream::StreamingStudy streaming(
      collection.dataset, world::ServiceCatalog::Default(), streaming_opts);
  benchmark::DoNotOptimize(streaming.HeadlineStats());
  benchmark::DoNotOptimize(streaming.Accuracy());

  util::PublishRssGauges();

  const obs::MetricsSnapshot snapshot = obs::SnapshotMetrics();
  for (const auto& c : snapshot.counters) {
    bench::Metric(c.name, static_cast<double>(c.value), c.unit);
  }
  for (const auto& g : snapshot.gauges) {
    bench::Metric(g.name, g.value, g.unit);
  }
  for (const auto& h : snapshot.histograms) {
    if (h.unit == "us") {
      bench::Metric(h.name + "_total_ms", static_cast<double>(h.sum) / 1000.0,
                    "ms");
    }
  }
  obs::SetMetricsEnabled(false);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchName("perf_components");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const char* json = std::getenv("LOCKDOWN_BENCH_JSON");
  if (json != nullptr && *json != '\0') EmitComponentBreakdown();
  return 0;
}
