// Figure 6: box-and-whiskers of monthly mobile session duration for
// (a) Facebook, (b) Instagram, (c) TikTok — domestic vs. international
// post-shutdown users. Sessions come from overlapping-flow merging with the
// Instagram-only-domain disambiguation heuristic.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();

  static constexpr const char* kMonths[] = {"February", "March", "April", "May"};
  for (const apps::SocialApp app :
       {apps::SocialApp::kFacebook, apps::SocialApp::kInstagram,
        apps::SocialApp::kTikTok}) {
    std::cout << "FIG 6" << (app == apps::SocialApp::kFacebook ? "a"
                             : app == apps::SocialApp::kInstagram ? "b" : "c")
              << " — " << apps::ToString(app)
              << " mobile duration per device (hours/month)\n";
    util::TablePrinter table({"month", "group", "n", "p1", "q1", "median", "q3",
                              "p95", "p99"});
    for (int month = 2; month <= 5; ++month) {
      const auto box = study.SocialDurations(app, month);
      const auto add = [&table, month](const char* group,
                                       const analysis::BoxStats& b) {
        table.AddRow({kMonths[month - 2], group, std::to_string(b.n),
                      util::FormatDouble(b.p1, 2), util::FormatDouble(b.q1, 2),
                      util::FormatDouble(b.median, 2), util::FormatDouble(b.q3, 2),
                      util::FormatDouble(b.p95, 2), util::FormatDouble(b.p99, 2)});
      };
      add("domestic", box.domestic);
      add("international", box.international);
    }
    table.Print(std::cout);
    std::cout << "\n";
  }

  const auto fb2 = study.SocialDurations(apps::SocialApp::kFacebook, 2);
  const auto fb5 = study.SocialDurations(apps::SocialApp::kFacebook, 5);
  const auto tt2 = study.SocialDurations(apps::SocialApp::kTikTok, 2);
  const auto tt5 = study.SocialDurations(apps::SocialApp::kTikTok, 5);
  std::cout << "paper claims vs. measured:\n"
            << "  FB domestic May/Feb median:    "
            << util::FormatDouble(fb5.domestic.median / fb2.domestic.median, 2)
            << "x (paper: decreases)\n"
            << "  FB international May/Feb:      "
            << util::FormatDouble(
                   fb5.international.median / std::max(fb2.international.median, 1e-9), 2)
            << "x (paper: increases)\n"
            << "  TikTok domestic q3 May/Feb:    "
            << util::FormatDouble(tt5.domestic.q3 / std::max(tt2.domestic.q3, 1e-9), 2)
            << "x (paper: upper tail grows)\n";
  return 0;
}
