// Extension (not a paper figure): daily traffic of the post-shutdown cohort
// decomposed into work vs. leisure categories — the quantitative version of
// the paper's framing ("how work and leisure changed ... at an application
// level").
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();
  const auto rows = study.CategoryVolumes();

  util::TablePrinter table({"date", "educ", "vidconf", "stream", "social",
                            "gaming", "msg", "other", "(GB)"});
  for (const auto& row : rows) {
    if (row.day % 3 != 0) continue;
    table.AddRow({bench::DateOfDay(row.day), bench::Gb(row.education, 1),
                  bench::Gb(row.video_conferencing, 1), bench::Gb(row.streaming, 1),
                  bench::Gb(row.social_media, 1), bench::Gb(row.gaming, 1),
                  bench::Gb(row.messaging, 1), bench::Gb(row.other, 1),
                  bench::EventMarker(row.day)});
  }
  std::cout << "EXTENSION — daily bytes by category, post-shutdown cohort\n";
  table.Print(std::cout);

  // Month-over-month summary.
  auto month_sum = [&rows](int month, auto member) {
    double s = 0;
    for (const auto& row : rows) {
      if (util::StudyCalendar::DateAt(row.day).month == month) s += row.*member;
    }
    return s;
  };
  using R = core::LockdownStudy::CategoryVolumeRow;
  util::TablePrinter summary({"category", "Feb GB", "Mar GB", "Apr GB", "May GB",
                              "Apr/Feb"});
  const auto add = [&](const char* name, auto member) {
    const double feb = month_sum(2, member);
    const double apr = month_sum(4, member);
    summary.AddRow({name, bench::Gb(feb, 0), bench::Gb(month_sum(3, member), 0),
                    bench::Gb(apr, 0), bench::Gb(month_sum(5, member), 0),
                    util::FormatDouble(feb > 0 ? apr / feb : 0.0, 1) + "x"});
  };
  add("education", &R::education);
  add("video conferencing", &R::video_conferencing);
  add("streaming", &R::streaming);
  add("social media", &R::social_media);
  add("gaming", &R::gaming);
  add("messaging", &R::messaging);
  std::cout << "\n";
  summary.Print(std::cout);
  std::cout << "\nVideo conferencing explodes with online classes; streaming "
               "and gaming climb\n(\"entertainment usage increased\", §6); "
               "messaging stays roughly flat.\n";
  return 0;
}
