// Ablation: the geolocation population split (§4.2), scored against
// simulator ground truth.
//
//  1. precision/recall of the bytes-weighted-midpoint labelling — the paper
//     could only argue its method is "conservative"; ground truth lets us
//     measure how conservative;
//  2. what happens if CDNs are NOT excluded (the paper's stated reason for
//     excluding them);
//  3. connection-count weighting instead of byte weighting.
#include <iostream>
#include <unordered_map>

#include "bench/common.h"
#include "core/offline.h"
#include "geo/intl.h"
#include "sim/population.h"
#include "util/table.h"

namespace {

using namespace lockdown;

struct Score {
  std::size_t tp = 0, fp = 0, fn = 0, tn = 0;
  [[nodiscard]] double precision() const {
    return tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  [[nodiscard]] double recall() const {
    return tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
};

}  // namespace

int main() {
  using core::DeviceIndex;
  const auto cfg = bench::DefaultConfig();
  const auto& collection = bench::SharedCollection();
  const auto& study = bench::SharedStudy();
  const auto& ds = collection.dataset;
  const auto& catalog = world::ServiceCatalog::Default();

  // Ground truth residency per dataset device.
  const auto anonymizer = core::MeasurementPipeline::MakeAnonymizer(cfg);
  sim::Population population(cfg.generator.population);
  std::unordered_map<std::uint64_t, bool> intl_by_id;
  for (const auto& dev : population.devices()) {
    intl_by_id.emplace(anonymizer.AnonymizeMac(dev.mac).value,
                       population.student_of(dev).residency ==
                           sim::Residency::kInternational);
  }

  // A geo database variant with CDNs "un-flagged", to ablate the exclusion.
  const world::GeoDatabase geo_with_cdn_flag(catalog);

  struct Variant {
    const char* name;
    bool exclude_cdn;
    bool weight_by_bytes;
  };
  const Variant variants[] = {
      {"paper method (bytes-weighted, CDNs excluded)", true, true},
      {"CDNs included", false, true},
      {"connection-count weighted", true, false},
  };

  util::TablePrinter table({"variant", "labeled intl", "precision", "recall"});
  for (const Variant& v : variants) {
    // Accumulate midpoints manually so the variants can bend the rules.
    std::unordered_map<DeviceIndex, geo::MidpointAccumulator> acc;
    const auto feb_end = util::TimestampOf(util::CivilDate{2020, 3, 1});
    for (const core::Flow& f : ds.flows()) {
      const auto ts = core::Dataset::StartOf(f);
      if (ts >= feb_end) continue;
      const auto info = geo_with_cdn_flag.Lookup(f.server_ip);
      if (!info) continue;
      if (v.exclude_cdn && info->is_cdn) continue;
      const double w =
          v.weight_by_bytes ? static_cast<double>(f.total_bytes()) : 1.0;
      acc[f.device].Add(info->location, w);
    }
    Score score;
    std::size_t labeled = 0;
    for (const DeviceIndex dev : study.PostShutdownDevices()) {
      const auto truth_it = intl_by_id.find(ds.device(dev).id.value);
      if (truth_it == intl_by_id.end()) continue;
      const bool truth = truth_it->second;
      bool predicted = false;
      const auto it = acc.find(dev);
      if (it != acc.end() && !it->second.empty()) {
        predicted = !geo::UsBorder::Contains(it->second.Midpoint());
      }
      labeled += predicted;
      if (predicted && truth) ++score.tp;
      if (predicted && !truth) ++score.fp;
      if (!predicted && truth) ++score.fn;
      if (!predicted && !truth) ++score.tn;
    }
    table.AddRow({v.name, std::to_string(labeled),
                  util::FormatDouble(100.0 * score.precision(), 1) + "%",
                  util::FormatDouble(100.0 * score.recall(), 1) + "%"});
  }

  std::cout << "ABLATION — international-student labelling (§4.2) vs ground truth\n";
  table.Print(std::cout);
  std::cout
      << "\nThe paper argues its labelling is conservative (high precision, "
         "modest recall)\nand that CDN exclusion is necessary because edges "
         "serve from next to campus\n— including them drags midpoints into "
         "the US and recall drops.\n";
  return 0;
}
