// The paper's headline text statistics (§4, §4.1, §4.2, §5.3.2), paper value
// vs. measured value at the simulated scale.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& collection = bench::SharedCollection();
  const auto& study = bench::SharedStudy();
  const auto h = study.HeadlineStats();
  const auto sw = study.CountSwitches();

  util::TablePrinter table({"statistic", "paper", "measured", "note"});
  table.AddRow({"peak active devices", "32,019", std::to_string(h.peak_active_devices),
                "absolute counts scale with population"});
  table.AddRow({"trough active devices", "4,973",
                std::to_string(h.trough_active_devices), ""});
  table.AddRow({"trough/peak", "15.5%",
                util::FormatDouble(100.0 * h.trough_active_devices /
                                       h.peak_active_devices, 1) + "%",
                "shape-comparable"});
  table.AddRow({"post-shutdown users", "6,522",
                std::to_string(h.post_shutdown_users), ""});
  table.AddRow({"traffic increase Feb->Apr/May", "+58%",
                "+" + util::FormatDouble(100.0 * h.traffic_increase, 0) + "%",
                "post-shutdown users, daily mean"});
  table.AddRow({"distinct sites increase", "+34%",
                "+" + util::FormatDouble(100.0 * h.distinct_sites_increase, 0) + "%",
                "per device per month"});
  table.AddRow({"international devices", "1,022",
                std::to_string(h.international_devices), "geolocation-labeled"});
  table.AddRow({"international share", "~16-18%",
                util::FormatDouble(100.0 * h.international_share, 1) + "%", ""});
  table.AddRow({"Switches in February", "1,097",
                std::to_string(sw.active_february), ""});
  table.AddRow({"Switches post-shutdown", "267",
                std::to_string(sw.active_post_shutdown), ""});
  table.AddRow({"new Switches Apr/May", "40",
                std::to_string(sw.new_in_april_may), ""});

  std::cout << "HEADLINE STATISTICS — paper vs. reproduction\n";
  table.Print(std::cout);

  const auto& st = collection.stats;
  std::cout << "\ncollection pipeline:\n"
            << "  raw flows assembled:      " << st.raw_flows << "\n"
            << "  tap-excluded events:      " << st.tap_excluded << "\n"
            << "  unattributed (DHCP gaps): " << st.unattributed << "\n"
            << "  visitor-filtered flows:   " << st.visitor_flows << "\n"
            << "  devices observed/kept:    " << st.devices_observed << " / "
            << st.devices_retained << "\n"
            << "  UA sightings:             " << st.ua_sightings << "\n";
  return 0;
}
