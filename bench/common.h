// Shared scaffolding for the figure benches: one collected dataset per
// process, scale configurable via LOCKDOWN_STUDENTS (default 800).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/pipeline.h"
#include "core/study.h"
#include "util/strings.h"

namespace lockdown::bench {

inline core::StudyConfig DefaultConfig() {
  core::StudyConfig cfg;
  cfg.generator.population.num_students = 1200;
  cfg.generator.population.seed = 2020;
  if (const char* env = std::getenv("LOCKDOWN_STUDENTS")) {
    const int n = std::atoi(env);
    if (n > 0) cfg.generator.population.num_students = n;
  }
  if (const char* env = std::getenv("LOCKDOWN_SEED")) {
    cfg.generator.population.seed = static_cast<std::uint64_t>(std::atoll(env));
  }
  return cfg;
}

/// Collects once per process; every figure in a binary reuses the dataset.
inline const core::CollectionResult& SharedCollection() {
  static const core::CollectionResult result = [] {
    const core::StudyConfig cfg = DefaultConfig();
    std::fprintf(stderr, "[bench] simulating %d students (seed %llu)...\n",
                 cfg.generator.population.num_students,
                 static_cast<unsigned long long>(cfg.generator.population.seed));
    return core::MeasurementPipeline::Collect(cfg);
  }();
  return result;
}

inline const core::LockdownStudy& SharedStudy() {
  static const core::LockdownStudy study(SharedCollection().dataset,
                                         world::ServiceCatalog::Default());
  return study;
}

inline std::string Gb(double bytes, int precision = 2) {
  return util::FormatDouble(bytes / 1e9, precision);
}

inline std::string Mb(double bytes, int precision = 1) {
  return util::FormatDouble(bytes / 1e6, precision);
}

inline std::string DateOfDay(int day) {
  return util::FormatDate(util::StudyCalendar::DateAt(day));
}

/// Marks the paper's event dates in daily tables.
inline std::string EventMarker(int day) {
  using SC = util::StudyCalendar;
  const util::CivilDate d = SC::DateAt(day);
  if (d == SC::kStateOfEmergency) return "<- state of emergency";
  if (d == SC::kWhoPandemic) return "<- WHO declares pandemic";
  if (d == SC::kStayAtHome) return "<- stay-at-home order";
  if (d == SC::kBreakStart) return "<- academic break starts";
  if (d == SC::kBreakEnd) return "<- classes resume online";
  return "";
}

}  // namespace lockdown::bench
