// Shared scaffolding for the figure benches: one collected dataset per
// process, scale configurable via LOCKDOWN_STUDENTS (default 1200), seed via
// LOCKDOWN_SEED, processing/study parallelism via LOCKDOWN_THREADS (default
// 0 = all hardware threads; 1 = serial; results are identical either way).
//
// Snapshot cache: when LOCKDOWN_SNAPSHOT=<file.lds> is set, the first bench
// run collects once and writes an LDS snapshot there; every later run (any
// of the figure binaries) mmaps it back in milliseconds instead of
// re-simulating the campus. See src/store and README "snapshot workflow".
//
// Machine-readable results: when LOCKDOWN_BENCH_JSON=<file> is set, every
// bench::Metric() call is collected and the process writes one JSON document
// to <file> at exit ({bench, config, metrics:[{name, value, unit}]}).
// tools/check.sh uses this to regenerate BENCH_baseline.json; the human
// tables on stdout are unaffected.
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/study.h"
#include "obs/obs.h"
#include "store/snapshot.h"
#include "util/strings.h"

namespace lockdown::bench {

namespace internal {

/// Strict integer env parsing: the entire value must be a base-10 integer in
/// [min_value, max_value]; anything else (garbage, trailing text, negatives
/// where disallowed, overflow) aborts loudly rather than running the whole
/// study on whatever atoi guessed.
template <typename T>
T EnvIntOr(const char* name, T fallback, T min_value, T max_value) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  T value{};
  const char* end = env + std::strlen(env);
  const auto [ptr, ec] = std::from_chars(env, end, value);
  if (ec != std::errc() || ptr != end || value < min_value || value > max_value) {
    std::fprintf(stderr, "[bench] invalid %s='%s' (expected an integer in [%s, %s])\n",
                 name, env, std::to_string(min_value).c_str(),
                 std::to_string(max_value).c_str());
    std::exit(2);
  }
  return value;
}

}  // namespace internal

inline core::StudyConfig DefaultConfig() {
  // Every bench funnels through here, so this is the one place the env-var
  // observability hookup (LOCKDOWN_METRICS / LOCKDOWN_TRACE) needs to live.
  obs::ConfigureFromEnv();
  core::StudyConfig cfg;
  cfg.generator.population.num_students =
      internal::EnvIntOr<int>("LOCKDOWN_STUDENTS", 1200, 1, 10'000'000);
  cfg.generator.population.seed = internal::EnvIntOr<std::uint64_t>(
      "LOCKDOWN_SEED", 2020, 0, std::numeric_limits<std::uint64_t>::max());
  // util::ResolveThreadCount would read LOCKDOWN_THREADS itself, but going
  // through EnvIntOr keeps the bench contract: malformed env aborts loudly
  // instead of silently running serial.
  cfg.threads = internal::EnvIntOr<int>("LOCKDOWN_THREADS", 0, 0, 4096);
  return cfg;
}

/// Collects once per process; every figure in a binary reuses the dataset.
/// With LOCKDOWN_SNAPSHOT set, the dataset round-trips through the LDS store
/// instead: collect+save on first use, zero-copy mmap load afterwards.
inline const core::CollectionResult& SharedCollection() {
  static const core::CollectionResult result = [] {
    const core::StudyConfig cfg = DefaultConfig();
    const auto students =
        static_cast<std::uint64_t>(cfg.generator.population.num_students);
    const std::uint64_t seed = cfg.generator.population.seed;
    const char* snapshot = std::getenv("LOCKDOWN_SNAPSHOT");
    if (snapshot != nullptr && *snapshot != '\0' &&
        std::filesystem::exists(snapshot)) {
      store::LoadedSnapshot snap = store::LoadSnapshot(snapshot);
      if (snap.info.meta.num_students != 0 &&
          (snap.info.meta.num_students != students ||
           snap.info.meta.seed != seed)) {
        std::fprintf(stderr,
                     "[bench] warning: %s holds %llu students (seed %llu); "
                     "LOCKDOWN_STUDENTS/LOCKDOWN_SEED are ignored\n",
                     snapshot,
                     static_cast<unsigned long long>(snap.info.meta.num_students),
                     static_cast<unsigned long long>(snap.info.meta.seed));
      }
      std::fprintf(stderr, "[bench] loaded snapshot %s (%llu flows, %s)\n",
                   snapshot,
                   static_cast<unsigned long long>(snap.info.num_flows),
                   snap.zero_copy ? "zero-copy mmap" : "portable copy");
      return std::move(snap.collection);
    }
    std::fprintf(stderr, "[bench] simulating %d students (seed %llu)...\n",
                 cfg.generator.population.num_students,
                 static_cast<unsigned long long>(seed));
    core::CollectionResult fresh = core::MeasurementPipeline::Collect(cfg);
    if (snapshot != nullptr && *snapshot != '\0') {
      store::SaveSnapshot(snapshot, fresh,
                          store::SnapshotMeta{students, seed});
      std::fprintf(stderr, "[bench] wrote snapshot %s (%ju bytes)\n", snapshot,
                   static_cast<std::uintmax_t>(std::filesystem::file_size(snapshot)));
    }
    return fresh;
  }();
  return result;
}

inline const core::LockdownStudy& SharedStudy() {
  static const core::LockdownStudy study(SharedCollection().dataset,
                                         world::ServiceCatalog::Default(),
                                         DefaultConfig().threads);
  return study;
}

/// Collects named metrics and writes them as one JSON document at process
/// exit when LOCKDOWN_BENCH_JSON names a file. Without the env var the
/// collector is inert, so benches can always report.
class JsonReport {
 public:
  JsonReport() = default;

  static JsonReport& Get() {
    static JsonReport report;
    return report;
  }

  void SetBenchName(std::string name) { bench_ = std::move(name); }

  void Metric(std::string name, double value, std::string unit) {
    metrics_.push_back({std::move(name), value, std::move(unit)});
  }

  /// JSON string-escapes quotes, backslashes and control characters; metric
  /// names come from code today, but one stray quote must not corrupt the
  /// whole baseline file.
  static std::string JsonEscape(std::string_view s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  /// %.17g round-trips doubles, but prints non-finite values as nan/inf —
  /// which is not JSON. Map those to null (JSON's only honest spelling).
  static std::string JsonNumber(double value) {
    if (!std::isfinite(value)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
  }

  /// The full document as a string; the exit-time writer and tests share it.
  [[nodiscard]] std::string Render() const {
    const core::StudyConfig cfg = DefaultConfig();
    std::string doc = "{\n  \"bench\": \"" + JsonEscape(bench_) + "\",\n";
    doc += "  \"config\": {\"students\": " +
           std::to_string(cfg.generator.population.num_students) +
           ", \"seed\": " + std::to_string(cfg.generator.population.seed) +
           ", \"threads\": " + std::to_string(cfg.threads) + "},\n";
    doc += "  \"metrics\": [\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Entry& m = metrics_[i];
      doc += "    {\"name\": \"" + JsonEscape(m.name) +
             "\", \"value\": " + JsonNumber(m.value) + ", \"unit\": \"" +
             JsonEscape(m.unit) + "\"}";
      doc += i + 1 < metrics_.size() ? ",\n" : "\n";
    }
    doc += "  ]\n}\n";
    return doc;
  }

  ~JsonReport() {
    const char* path = std::getenv("LOCKDOWN_BENCH_JSON");
    if (path == nullptr || *path == '\0' || metrics_.empty()) return;
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "[bench] cannot write LOCKDOWN_BENCH_JSON=%s\n", path);
      return;
    }
    const std::string doc = Render();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
  }

 private:
  struct Entry {
    std::string name;
    double value;
    std::string unit;
  };
  std::string bench_ = "unnamed";
  std::vector<Entry> metrics_;
};

/// `Metric("streaming_flows_per_s", 1.1e6, "flows/s")` — record one result.
inline void Metric(std::string name, double value, std::string unit) {
  JsonReport::Get().Metric(std::move(name), value, std::move(unit));
}

/// Names the document written at exit; call once near the top of main().
inline void BenchName(std::string name) {
  JsonReport::Get().SetBenchName(std::move(name));
}

inline std::string Gb(double bytes, int precision = 2) {
  return util::FormatDouble(bytes / 1e9, precision);
}

inline std::string Mb(double bytes, int precision = 1) {
  return util::FormatDouble(bytes / 1e6, precision);
}

inline std::string DateOfDay(int day) {
  return util::FormatDate(util::StudyCalendar::DateAt(day));
}

/// Marks the paper's event dates in daily tables.
inline std::string EventMarker(int day) {
  using SC = util::StudyCalendar;
  const util::CivilDate d = SC::DateAt(day);
  if (d == SC::kStateOfEmergency) return "<- state of emergency";
  if (d == SC::kWhoPandemic) return "<- WHO declares pandemic";
  if (d == SC::kStayAtHome) return "<- stay-at-home order";
  if (d == SC::kBreakStart) return "<- academic break starts";
  if (d == SC::kBreakEnd) return "<- classes resume online";
  return "";
}

}  // namespace lockdown::bench
