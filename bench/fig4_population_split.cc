// Figure 4: "Median bytes per device, excluding Zoom traffic, for
// international and domestic post-shutdown users. We consider mobile and
// desktop devices separately from unclassified devices, and exclude IoT
// devices here."
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();
  const auto rows = study.MedianBytesExcludingZoom();
  const auto& split = study.Split();

  util::TablePrinter table({"date", "intl mob/desk", "dom mob/desk",
                            "intl unclass", "dom unclass", "(GB/day)"});
  for (const auto& row : rows) {
    table.AddRow({bench::DateOfDay(row.day), bench::Gb(row.intl_mobile_desktop),
                  bench::Gb(row.dom_mobile_desktop), bench::Gb(row.intl_unclassified),
                  bench::Gb(row.dom_unclassified), bench::EventMarker(row.day)});
  }
  std::cout << "FIG 4 — median daily bytes per post-shutdown device, Zoom excluded\n";
  table.Print(std::cout);

  // Break-week behaviour, the figure's headline contrast.
  auto avg = [&rows](auto member, int from, int to) {
    double s = 0;
    for (int d = from; d <= to; ++d) s += rows[static_cast<std::size_t>(d)].*member;
    return s / (to - from + 1);
  };
  using R = core::LockdownStudy::Fig4Row;
  const int b0 = util::StudyCalendar::DayIndex(util::StudyCalendar::kBreakStart);
  const int b1 = util::StudyCalendar::DayIndex(util::StudyCalendar::kBreakEnd) - 1;
  std::cout << "\nlabeled international devices: " << split.num_international
            << " of " << study.PostShutdownDevices().size()
            << " post-shutdown users ("
            << util::FormatDouble(100.0 * split.num_international /
                                      study.PostShutdownDevices().size(), 1)
            << "%; paper: 1,022 of 6,522)\n"
            << "break-week median vs mid-February, international mob/desk: "
            << util::FormatDouble(avg(&R::intl_mobile_desktop, b0, b1) /
                                      avg(&R::intl_mobile_desktop, 16, 21), 2)
            << "x (paper: rises)\n"
            << "break-week median vs mid-February, domestic mob/desk:      "
            << util::FormatDouble(avg(&R::dom_mobile_desktop, b0, b1) /
                                      avg(&R::dom_mobile_desktop, 16, 21), 2)
            << "x (paper: stable)\n";
  return 0;
}
