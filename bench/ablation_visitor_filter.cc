// Ablation: the 14-day visitor filter (§3).
//
// Sweeps the minimum-distinct-active-days threshold and reports how many
// devices (and how much traffic) survive, plus the effect on the
// post-shutdown population — showing the filter removes a long tail of
// brief visitors without biting into residents.
#include <iostream>
#include <unordered_map>

#include "bench/common.h"
#include "sim/timeline.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  // Collect with the filter effectively off so the sweep sees everything.
  core::StudyConfig cfg = bench::DefaultConfig();
  cfg.visitor_min_days = 1;
  std::fprintf(stderr, "[bench] simulating %d students (visitor filter off)...\n",
               cfg.generator.population.num_students);
  const auto collection = core::MeasurementPipeline::Collect(cfg);
  const auto& ds = collection.dataset;

  // Distinct active days, flow count, bytes, and post-shutdown membership
  // per device.
  struct PerDevice {
    std::unordered_map<int, bool> days;
    std::uint64_t flows = 0;
    std::uint64_t bytes = 0;
    bool post_shutdown = false;
  };
  std::vector<PerDevice> devices(ds.num_devices());
  const int online_day =
      util::StudyCalendar::DayIndex(util::StudyCalendar::kBreakEnd);
  for (const core::Flow& f : ds.flows()) {
    PerDevice& d = devices[f.device];
    d.days[core::Dataset::DayOf(f)] = true;
    d.flows += 1;
    d.bytes += f.total_bytes();
    d.post_shutdown |= core::Dataset::DayOf(f) >= online_day;
  }

  util::TablePrinter table({"min days", "devices kept", "% devices", "% flows",
                            "% bytes", "post-shutdown kept"});
  std::uint64_t total_flows = 0, total_bytes = 0;
  for (const PerDevice& d : devices) {
    total_flows += d.flows;
    total_bytes += d.bytes;
  }
  for (const int threshold : {1, 3, 7, 10, 14, 21, 28}) {
    std::size_t kept = 0, post_kept = 0;
    std::uint64_t flows = 0, bytes = 0;
    for (const PerDevice& d : devices) {
      if (static_cast<int>(d.days.size()) < threshold) continue;
      ++kept;
      post_kept += d.post_shutdown;
      flows += d.flows;
      bytes += d.bytes;
    }
    table.AddRow(
        {std::to_string(threshold), std::to_string(kept),
         util::FormatDouble(100.0 * kept / devices.size(), 1) + "%",
         util::FormatDouble(100.0 * static_cast<double>(flows) / total_flows, 1) + "%",
         util::FormatDouble(100.0 * static_cast<double>(bytes) / total_bytes, 1) + "%",
         std::to_string(post_kept)});
  }

  std::cout << "ABLATION — visitor-filter threshold sweep (paper uses 14 days)\n";
  table.Print(std::cout);
  std::cout << "\nThe filter's cost is concentrated in devices, not traffic: "
               "brief visitors\ncarry a tiny byte share, so the analyses are "
               "insensitive to the exact\nthreshold — supporting the paper's "
               "choice.\n";
  return 0;
}
