// Figure 1: "The number of active devices per day, broken down by device
// type." Reproduces the series behind the plot: weekday/weekend oscillation,
// the mid-March collapse, and the post-shutdown dominance of unclassified
// devices.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();
  const auto rows = study.ActiveDevicesPerDay();

  util::TablePrinter table(
      {"date", "mobile", "laptop+desktop", "iot", "unclassified", "total", ""});
  int peak = 0, trough = 1 << 30;
  const int shutdown = util::StudyCalendar::DayIndex(util::StudyCalendar::kStayAtHome);
  for (const auto& row : rows) {
    peak = std::max(peak, row.total);
    if (row.day >= shutdown) trough = std::min(trough, row.total);
    table.AddRow({bench::DateOfDay(row.day),
                  std::to_string(row.by_class[0]), std::to_string(row.by_class[1]),
                  std::to_string(row.by_class[2]), std::to_string(row.by_class[3]),
                  std::to_string(row.total), bench::EventMarker(row.day)});
  }
  std::cout << "FIG 1 — active devices per day by device type\n";
  table.Print(std::cout);
  std::cout << "\npeak active devices:   " << peak
            << "   (paper: 32,019 at full campus scale)\n"
            << "trough after shutdown: " << trough << "   (paper: 4,973)\n"
            << "trough/peak ratio:     "
            << util::FormatDouble(100.0 * trough / peak, 1)
            << "%   (paper: 15.5%)\n";
  return 0;
}
