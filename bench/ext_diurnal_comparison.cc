// Extension: diurnal-pattern comparison with Feldmann et al. (IMC '20).
//
// The paper notes: "Some of their overall findings — such as the convergence
// of diurnal patterns to that of pre-pandemic weekends — are not apparent in
// our population." Residential ISP weekdays started looking like weekends;
// dorm weekdays did not, because online classes re-imposed a weekday
// structure. This bench computes the similarity matrix that tests the claim.
#include <cmath>
#include <iostream>

#include "analysis/stats.h"
#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();

  // Pre-pandemic: all of February. Shutdown: April (fully online term).
  const int feb_first = 0;
  const int feb_last = util::StudyCalendar::DayIndex(util::CivilDate{2020, 2, 29});
  const int apr_first = util::StudyCalendar::DayIndex(util::CivilDate{2020, 4, 1});
  const int apr_last = util::StudyCalendar::DayIndex(util::CivilDate{2020, 4, 30});
  const auto pre = study.DiurnalShape(feb_first, feb_last);
  const auto shut = study.DiurnalShape(apr_first, apr_last);

  util::TablePrinter profile({"hour", "pre weekday", "pre weekend",
                              "shutdown weekday", "shutdown weekend", "(%)"});
  for (int h = 0; h < 24; ++h) {
    profile.AddRow({std::to_string(h),
                    util::FormatDouble(100 * pre.weekday[static_cast<std::size_t>(h)], 1),
                    util::FormatDouble(100 * pre.weekend[static_cast<std::size_t>(h)], 1),
                    util::FormatDouble(100 * shut.weekday[static_cast<std::size_t>(h)], 1),
                    util::FormatDouble(100 * shut.weekend[static_cast<std::size_t>(h)], 1)});
  }
  std::cout << "EXTENSION — normalized hour-of-day volume profiles\n";
  profile.Print(std::cout);

  // Feldmann et al.'s convergence claim, made testable: did the weekday
  // shape move TOWARD the pre-pandemic weekend shape? Compare L1 distances
  // between normalized profiles (cosine saturates: every diurnal curve
  // shares the gross day/night swing).
  const auto l1 = [](const std::array<double, 24>& a,
                     const std::array<double, 24>& b) {
    double d = 0.0;
    for (std::size_t h = 0; h < 24; ++h) d += std::abs(a[h] - b[h]);
    return d;
  };
  const double baseline_gap = l1(pre.weekday, pre.weekend);
  const double shutdown_gap = l1(shut.weekday, pre.weekend);
  const double self_change = l1(shut.weekday, pre.weekday);
  std::cout << "\nL1 distances between normalized profiles:\n"
            << "  pre weekday     vs pre weekend: "
            << util::FormatDouble(baseline_gap, 3) << "  (the pre-pandemic gap)\n"
            << "  shutdown weekday vs pre weekend: "
            << util::FormatDouble(shutdown_gap, 3) << "\n"
            << "  shutdown weekday vs pre weekday: "
            << util::FormatDouble(self_change, 3) << "  (how much weekdays moved)\n\n";
  if (shutdown_gap >= baseline_gap * 0.85) {
    std::cout << "Weekdays changed, but did NOT converge onto the weekend "
                 "shape — the paper's\ncontrast with Feldmann et al. "
                 "reproduces (online classes re-impose weekday\nstructure in "
                 "a dorm population).\n";
  } else {
    std::cout << "NOTE: shutdown weekdays drifted toward the weekend shape "
                 "(Feldmann-style\nconvergence) — not the paper's finding for "
                 "this population.\n";
  }
  return 0;
}
