// Per-kernel scalar-vs-SIMD throughput for the columnar query kernels
// (src/query/kernels.h). Synthetic columns shaped like the real LDS data —
// sorted u32 timestamps over the 107-day study window, u64 byte counts,
// 0/1-ish masks, dense domain ids against a ByteLut — each kernel timed
// min-of-N against both tables, with the scalar and SIMD checksums required
// to match (the bench doubles as a coarse differential smoke test; the real
// proof lives in tests/query).
//
// The two scatter kernels (day_sums_u64 / mark_days_u8 and the masked
// variant) share the scalar implementation in both tables by design, so they
// are not benchmarked: their "speedup" would only measure timer noise.
//
// Knobs: LOCKDOWN_KERNEL_ELEMS (default 8Mi elements), LOCKDOWN_KERNEL_REPS
// (default 9). With LOCKDOWN_BENCH_JSON set, emits one metric triple per
// kernel — <kernel>_scalar_gbps, <kernel>_simd_gbps, <kernel>_speedup —
// checked in as BENCH_kernels.json.
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <limits>
#include <random>
#include <vector>

#include "bench/common.h"
#include "query/kernels.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using Clock = std::chrono::steady_clock;

template <typename Fn>
double MinSeconds(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    fn();
    const auto t1 = Clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

}  // namespace

int main() {
  using namespace lockdown;
  bench::BenchName("kernel_microbench");

  const auto n = static_cast<std::size_t>(bench::internal::EnvIntOr<long long>(
      "LOCKDOWN_KERNEL_ELEMS", 8ll << 20, 1, 1ll << 30));
  const int reps =
      bench::internal::EnvIntOr<int>("LOCKDOWN_KERNEL_REPS", 9, 1, 1000);

  // Synthetic columns, fixed seed: identical data every run.
  constexpr std::uint32_t kDaySeconds = 86400;
  constexpr std::uint32_t kDays = 107;
  constexpr std::size_t kNumDomains = 4096;
  std::mt19937_64 rng(20200316);
  std::vector<std::uint32_t> ts(n);
  std::uniform_int_distribution<std::uint32_t> ts_dist(0, kDays * kDaySeconds - 1);
  for (auto& t : ts) t = ts_dist(rng);
  std::sort(ts.begin(), ts.end());
  std::vector<std::uint64_t> bytes(n);
  std::uniform_int_distribution<std::uint64_t> byte_dist(0, 1u << 20);
  for (auto& b : bytes) b = byte_dist(rng);
  std::vector<std::uint8_t> mask(n);
  for (auto& m : mask) m = (rng() & 1) ? static_cast<std::uint8_t>(1 + rng() % 255)
                                       : std::uint8_t{0};
  std::vector<std::uint32_t> ids(n);
  std::uniform_int_distribution<std::uint32_t> id_dist(
      0, static_cast<std::uint32_t>(kNumDomains - 1));
  for (auto& id : ids) id = id_dist(rng);
  const query::ByteLut lut(kNumDomains, [](std::size_t i) { return i % 7 == 0; });
  std::vector<std::uint8_t> out(n);

  const std::uint32_t lo = 30 * kDaySeconds;
  const std::uint32_t hi = 75 * kDaySeconds;

  const query::KernelTable& scalar = query::Scalar();
  const query::KernelTable* simd = query::Simd();
  if (simd == nullptr) {
    std::cout << "kernel microbench: no SIMD table on this build/CPU; "
                 "scalar-only numbers below\n";
  }

  util::TablePrinter table(
      {"kernel", "scalar GB/s", "simd GB/s", "speedup"});
  double best_speedup = 0.0;

  // Times one kernel against both tables. `run` must return a checksum that
  // is a pure function of the data so the calls cannot be dead-code
  // eliminated and scalar/SIMD disagreement is caught on the spot.
  std::uint64_t sink = 0;
  const auto bench_kernel = [&](const char* name, double bytes_per_call,
                                auto&& run) {
    std::uint64_t scalar_sum = run(scalar);  // warm the data, pin the answer
    const double scalar_s = MinSeconds(reps, [&] { sink += run(scalar); });
    const double scalar_gbps = bytes_per_call / scalar_s / 1e9;
    bench::Metric(std::string(name) + "_scalar_gbps", scalar_gbps, "GB/s");
    double simd_gbps = 0.0;
    double speedup = 0.0;
    if (simd != nullptr) {
      const std::uint64_t simd_sum = run(*simd);
      if (simd_sum != scalar_sum) {
        std::cerr << "kernel " << name << ": scalar/SIMD checksum mismatch ("
                  << scalar_sum << " vs " << simd_sum << ")\n";
        std::exit(1);
      }
      const double simd_s = MinSeconds(reps, [&] { sink += run(*simd); });
      simd_gbps = bytes_per_call / simd_s / 1e9;
      speedup = scalar_s / simd_s;
      best_speedup = std::max(best_speedup, speedup);
      bench::Metric(std::string(name) + "_simd_gbps", simd_gbps, "GB/s");
      bench::Metric(std::string(name) + "_speedup", speedup, "x");
    }
    table.AddRow({name, util::FormatDouble(scalar_gbps, 2),
                  simd != nullptr ? util::FormatDouble(simd_gbps, 2) : "-",
                  simd != nullptr ? util::FormatDouble(speedup, 2) : "-"});
  };

  bench::Metric("elements", static_cast<double>(n), "elements");

  // Three bounds per call: early, mid, late window edges — the shape the
  // figure passes use for [lo, hi) rank pairs over sorted starts.
  bench_kernel("count_less_u32", 3.0 * static_cast<double>(n) * 4,
               [&](const query::KernelTable& k) {
                 return static_cast<std::uint64_t>(
                     k.count_less_u32(ts.data(), n, lo) +
                     k.count_less_u32(ts.data(), n, hi) +
                     k.count_less_u32(ts.data(), n, kDays * kDaySeconds));
               });
  bench_kernel("sum_u64", static_cast<double>(n) * 8,
               [&](const query::KernelTable& k) {
                 return k.sum_u64(bytes.data(), n);
               });
  bench_kernel("masked_sum_u64", static_cast<double>(n) * 9,
               [&](const query::KernelTable& k) {
                 return k.masked_sum_u64(bytes.data(), mask.data(), n);
               });
  bench_kernel("masked_range_sum_u64", static_cast<double>(n) * 13,
               [&](const query::KernelTable& k) {
                 return k.masked_range_sum_u64(ts.data(), bytes.data(),
                                               mask.data(), n, lo, hi);
               });
  bench_kernel("count_nonzero_u8", static_cast<double>(n),
               [&](const query::KernelTable& k) {
                 return static_cast<std::uint64_t>(
                     k.count_nonzero_u8(mask.data(), n));
               });
  // flag_mask writes a mask instead of returning a reduction, so its
  // scalar/SIMD agreement is verified once here, outside the timed region;
  // the timed lambda is the bare kernel call (opaque through the function
  // pointer, so it cannot be elided).
  {
    std::vector<std::uint8_t> simd_out(n);
    scalar.flag_mask_u8(ids.data(), n, lut.data(), lut.size(), out.data());
    if (simd != nullptr) {
      simd->flag_mask_u8(ids.data(), n, lut.data(), lut.size(),
                         simd_out.data());
      if (out != simd_out) {
        std::cerr << "kernel flag_mask_u8: scalar/SIMD output mismatch\n";
        return 1;
      }
    }
  }
  bench_kernel("flag_mask_u8", static_cast<double>(n) * 5,
               [&](const query::KernelTable& k) {
                 k.flag_mask_u8(ids.data(), n, lut.data(), lut.size(),
                                out.data());
                 return std::uint64_t{0};
               });

  if (simd != nullptr) {
    bench::Metric("best_speedup", best_speedup, "x");
  }

  std::cout << "kernel microbench — " << n << " elements, min of " << reps
            << " reps per cell\n";
  table.Print(std::cout);
  if (simd != nullptr) {
    std::cout << "\nbest speedup: " << util::FormatDouble(best_speedup, 2)
              << "x (" << query::ToString(query::DispatchKind::kSimd)
              << " table)\n";
  }
  // The sink keeps the timed calls observable; print it so the optimizer
  // cannot argue otherwise.
  std::cerr << "[bench] checksum " << sink << "\n";
  return 0;
}
