// Figure 5: "Daily aggregate Zoom traffic for post-shutdown users from
// February through May 2020." Matched by zoom.us domains plus the published
// (and wayback-recovered) relay IP ranges.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();
  const auto series = study.ZoomDailyBytes();

  double max_value = 1.0;
  for (int day = 0; day < series.num_days(); ++day) {
    max_value = std::max(max_value, series.at(day));
  }
  util::TablePrinter table({"date", "weekday", "zoom GB", "", ""});
  for (int day = 0; day < series.num_days(); ++day) {
    const auto date = util::StudyCalendar::DateAt(day);
    const int gb_bar = static_cast<int>(series.at(day) / max_value * 60.0);
    table.AddRow({bench::DateOfDay(day), util::ToString(util::WeekdayOf(date)),
                  bench::Gb(series.at(day)),
                  std::string(static_cast<std::size_t>(gb_bar), '#'),
                  bench::EventMarker(day)});
  }
  std::cout << "FIG 5 — daily aggregate Zoom traffic (post-shutdown users)\n";
  table.Print(std::cout);

  auto day_of = [](int m, int d) {
    return util::StudyCalendar::DayIndex(util::CivilDate{2020, m, d});
  };
  const double feb_daily = series.SumRange(day_of(2, 3), day_of(2, 28)) / 26.0;
  const double apr_weekdays = (series.at(day_of(4, 14)) + series.at(day_of(4, 15))) / 2;
  const double apr_weekend = (series.at(day_of(4, 18)) + series.at(day_of(4, 19))) / 2;
  std::cout << "\nFebruary daily average:      " << bench::Gb(feb_daily)
            << " GB (paper: near zero)\n"
            << "April weekday (4/14, 4/15):  " << bench::Gb(apr_weekdays)
            << " GB (paper: ~600-700 GB at full scale)\n"
            << "April weekend (4/18, 4/19):  " << bench::Gb(apr_weekend)
            << " GB (paper: pronounced weekend dips)\n"
            << "weekday/weekend ratio:       "
            << util::FormatDouble(apr_weekdays / apr_weekend, 1) << "x\n";
  return 0;
}
