// Batch study vs streaming study head-to-head: wall time to answer every
// figure, flow throughput, the streaming engine's tracked sketch state
// against its budget, and the process peak RSS. With LOCKDOWN_BENCH_JSON
// set, the numbers land in a machine-readable document (BENCH_baseline.json
// is a checked-in run of this bench; tools/check.sh regenerates it).
//
// LOCKDOWN_MEMORY_BUDGET (bytes, default 32 MiB) sizes the streaming engine.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/common.h"
#include "stream/streaming_study.h"
#include "util/memstats.h"
#include "util/table.h"

namespace {

using namespace lockdown;

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Touch every figure so neither mode gets away with lazy evaluation.
template <typename Study>
double DrainFigures(const Study& study) {
  double sink = 0.0;
  for (const auto& row : study.ActiveDevicesPerDay()) sink += row.total;
  for (const auto& row : study.BytesPerDevicePerDay()) sink += row.mean[0];
  sink += study.HourOfWeekVolume().normalization;
  for (const auto& row : study.MedianBytesExcludingZoom()) {
    sink += row.intl_mobile_desktop;
  }
  sink += study.ZoomDailyBytes().at(0);
  sink += study.SocialDurations(apps::SocialApp::kFacebook, 4).domestic.median;
  sink += study.SteamUsage(4).dom_bytes.median;
  sink += study.SwitchGameplayDaily().at(0);
  for (const auto& row : study.CategoryVolumes()) sink += row.streaming;
  sink += study.DiurnalShape(0, 28).weekday[12];
  sink += study.HeadlineStats().traffic_increase;
  return sink;
}

}  // namespace

int main() {
  bench::BenchName("stream_vs_batch");
  const core::CollectionResult& collection = bench::SharedCollection();
  const auto num_flows = static_cast<double>(collection.dataset.num_flows());
  const int threads = bench::DefaultConfig().threads;

  const auto t_batch = std::chrono::steady_clock::now();
  const core::LockdownStudy batch(collection.dataset,
                                  world::ServiceCatalog::Default(), threads);
  double sink = DrainFigures(batch);
  const double batch_ms = MsSince(t_batch);

  stream::StreamingOptions options;
  options.threads = threads;
  options.memory_budget_bytes = bench::internal::EnvIntOr<std::size_t>(
      "LOCKDOWN_MEMORY_BUDGET", options.memory_budget_bytes, std::size_t{2} << 20,
      std::size_t{1} << 40);
  const auto t_stream = std::chrono::steady_clock::now();
  const stream::StreamingStudy streaming(collection.dataset,
                                         world::ServiceCatalog::Default(),
                                         options);
  sink += DrainFigures(streaming);
  const double stream_ms = MsSince(t_stream);

  const auto report = streaming.Accuracy();
  const double peak_rss = static_cast<double>(util::PeakRssBytes());

  util::TablePrinter table({"mode", "time", "throughput", "analysis state"});
  table.AddRow({"batch", util::FormatDouble(batch_ms, 1) + " ms",
                bench::Mb(num_flows / (batch_ms / 1e3) * 40) + " MB/s",
                "unbounded (full dataset resident)"});
  table.AddRow({"streaming", util::FormatDouble(stream_ms, 1) + " ms",
                bench::Mb(num_flows / (stream_ms / 1e3) * 40) + " MB/s",
                util::FormatByteSize(report.state_bytes) + " of " +
                    util::FormatByteSize(report.budget_bytes) + " budget"});
  table.Print(std::cout);
  std::printf("peak RSS %s (both modes, whole process)  [sink %.3g]\n",
              util::FormatByteSize(static_cast<std::size_t>(peak_rss)).c_str(),
              sink);

  bench::Metric("flows", num_flows, "flows");
  bench::Metric("batch_study_ms", batch_ms, "ms");
  bench::Metric("batch_flows_per_s", num_flows / (batch_ms / 1e3), "flows/s");
  bench::Metric("streaming_study_ms", stream_ms, "ms");
  bench::Metric("streaming_flows_per_s", num_flows / (stream_ms / 1e3),
                "flows/s");
  bench::Metric("streaming_state_bytes",
                static_cast<double>(report.state_bytes), "bytes");
  bench::Metric("streaming_budget_bytes",
                static_cast<double>(report.budget_bytes), "bytes");
  bench::Metric("peak_rss_bytes", peak_rss, "bytes");
  return 0;
}
