// Figure 7: box plots of Steam (a) total bytes and (b) connection counts per
// device per month, domestic vs. international post-shutdown users.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();
  static constexpr const char* kMonths[] = {"February", "March", "April", "May"};

  std::cout << "FIG 7a — Steam bytes per device per month (MB)\n";
  util::TablePrinter bytes_table(
      {"month", "group", "n", "p1", "q1", "median", "q3", "p95"});
  std::cout.flush();
  for (int month = 2; month <= 5; ++month) {
    const auto box = study.SteamUsage(month);
    const auto add = [&bytes_table, month](const char* group,
                                           const analysis::BoxStats& b) {
      bytes_table.AddRow({kMonths[month - 2], group, std::to_string(b.n),
                          bench::Mb(b.p1), bench::Mb(b.q1), bench::Mb(b.median),
                          bench::Mb(b.q3), bench::Mb(b.p95)});
    };
    add("domestic", box.dom_bytes);
    add("international", box.intl_bytes);
  }
  bytes_table.Print(std::cout);

  std::cout << "\nFIG 7b — Steam connections per device per month\n";
  util::TablePrinter conns_table(
      {"month", "group", "n", "p1", "q1", "median", "q3", "p95"});
  for (int month = 2; month <= 5; ++month) {
    const auto box = study.SteamUsage(month);
    const auto add = [&conns_table, month](const char* group,
                                           const analysis::BoxStats& b) {
      conns_table.AddRow({kMonths[month - 2], group, std::to_string(b.n),
                          util::FormatDouble(b.p1, 0), util::FormatDouble(b.q1, 0),
                          util::FormatDouble(b.median, 0),
                          util::FormatDouble(b.q3, 0),
                          util::FormatDouble(b.p95, 0)});
    };
    add("domestic", box.dom_conns);
    add("international", box.intl_conns);
  }
  conns_table.Print(std::cout);

  const auto feb = study.SteamUsage(2);
  const auto mar = study.SteamUsage(3);
  const auto may = study.SteamUsage(5);
  std::cout << "\npaper claims vs. measured:\n"
            << "  domestic bytes Mar/Feb median:      "
            << util::FormatDouble(mar.dom_bytes.median /
                                      std::max(feb.dom_bytes.median, 1.0), 2)
            << "x (paper: increases in March)\n"
            << "  domestic bytes May/Mar median:      "
            << util::FormatDouble(may.dom_bytes.median /
                                      std::max(mar.dom_bytes.median, 1.0), 2)
            << "x (paper: falls in April and May)\n"
            << "  international bytes Mar/Feb median: "
            << util::FormatDouble(mar.intl_bytes.median /
                                      std::max(feb.intl_bytes.median, 1.0), 2)
            << "x (paper: increases even more)\n"
            << "  domestic conns May/Feb median:      "
            << util::FormatDouble(may.dom_conns.median /
                                      std::max(feb.dom_conns.median, 1.0), 2)
            << "x (paper: drops over time)\n";
  return 0;
}
