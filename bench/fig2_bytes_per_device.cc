// Figure 2: "The average and median bytes of active devices per day by
// device type." The headline property: means far exceed medians, most
// dramatically for IoT and unclassified devices.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();
  const auto rows = study.BytesPerDevicePerDay();

  util::TablePrinter table({"date", "mob avg", "mob med", "lap avg", "lap med",
                            "iot avg", "iot med", "unc avg", "unc med", "(GB)"});
  double worst_unc_ratio = 0.0;
  for (const auto& row : rows) {
    if (row.day % 2 != 0) continue;  // every other day keeps the table readable
    std::vector<std::string> cells = {bench::DateOfDay(row.day)};
    for (int c = 0; c < core::kNumReportClasses; ++c) {
      cells.push_back(bench::Gb(row.mean[static_cast<std::size_t>(c)]));
      cells.push_back(bench::Gb(row.median[static_cast<std::size_t>(c)]));
    }
    cells.push_back(bench::EventMarker(row.day));
    table.AddRow(std::move(cells));
    const double med = row.median[3];
    if (med > 0) worst_unc_ratio = std::max(worst_unc_ratio, row.mean[3] / med);
  }
  std::cout << "FIG 2 — mean and median daily bytes per active device by type\n";
  table.Print(std::cout);
  std::cout << "\nlargest unclassified mean/median ratio: "
            << util::FormatDouble(worst_unc_ratio, 1)
            << "x   (paper: \"spans several orders of magnitude\")\n";
  return 0;
}
