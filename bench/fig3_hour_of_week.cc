// Figure 3: "Normalized median volume of traffic per device per hour of week
// for four weeks of the measurement period." Thursday-anchored, normalized
// by the minimum positive hourly value across all four weeks.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();
  const auto result = study.HourOfWeekVolume();

  util::TablePrinter table({"day", "hour", "wk 2/20", "wk 3/19", "wk 4/9", "wk 5/14"});
  static constexpr const char* kDays[] = {"Thu", "Fri", "Sat", "Sun",
                                          "Mon", "Tue", "Wed"};
  for (int bin = 0; bin < analysis::HourOfWeekSeries::kHours; ++bin) {
    table.AddRow({kDays[bin / 24], std::to_string(bin % 24),
                  util::FormatDouble(result.weeks[0].at(bin), 1),
                  util::FormatDouble(result.weeks[1].at(bin), 1),
                  util::FormatDouble(result.weeks[2].at(bin), 1),
                  util::FormatDouble(result.weeks[3].at(bin), 1)});
  }
  std::cout << "FIG 3 — normalized median per-device traffic volume per hour of week\n"
            << "(normalization divisor: " << bench::Mb(result.normalization)
            << " MB)\n";
  table.Print(std::cout);

  // The two qualitative claims.
  auto day_sum = [&](int week, int day, int from_h, int to_h) {
    double s = 0;
    for (int h = from_h; h <= to_h; ++h) s += result.weeks[static_cast<std::size_t>(week)].at(day * 24 + h);
    return s;
  };
  const double pre_morning = day_sum(0, 0, 8, 12) + day_sum(0, 1, 8, 12);
  const double shut_morning = day_sum(2, 0, 8, 12) + day_sum(2, 1, 8, 12);
  double pre_weekend = 0, shut_weekend = 0;
  for (int d = 2; d <= 3; ++d) {
    pre_weekend += day_sum(0, d, 9, 23);
    shut_weekend += day_sum(2, d, 9, 23);
  }
  std::cout << "\nweekday morning volume, wk 4/9 vs wk 2/20: "
            << util::FormatDouble(shut_morning / pre_morning, 2)
            << "x   (paper: spikes earlier and higher during shutdown)\n"
            << "weekend daytime volume, wk 4/9 vs wk 2/20: "
            << util::FormatDouble(shut_weekend / pre_weekend, 2)
            << "x   (paper: weekends relatively unchanged)\n";
  return 0;
}
