// Figure 8: "Moving average of gameplay traffic from Nintendo Switch devices
// per day" — Switches active in both February and May, gameplay domains
// only, 3-day moving average. Plus §5.3.2's device counts.
#include <iostream>

#include "bench/common.h"
#include "util/table.h"

int main() {
  using namespace lockdown;
  const auto& study = bench::SharedStudy();
  const auto series = study.SwitchGameplayDaily(3);
  const auto counts = study.CountSwitches();

  double max_value = 1.0;
  for (int day = 0; day < series.num_days(); ++day) {
    max_value = std::max(max_value, series.at(day));
  }
  util::TablePrinter table({"date", "gameplay MB (3-day MA)", "", ""});
  for (int day = 0; day < series.num_days(); ++day) {
    const int bar = static_cast<int>(series.at(day) / max_value * 60.0);
    table.AddRow({bench::DateOfDay(day), bench::Mb(series.at(day)),
                  std::string(static_cast<std::size_t>(std::min(bar, 60)), '#'),
                  bench::EventMarker(day)});
  }
  std::cout << "FIG 8 — Nintendo Switch gameplay traffic per day "
               "(Feb-and-May-active Switches)\n";
  table.Print(std::cout);

  auto day_of = [](int m, int d) {
    return util::StudyCalendar::DayIndex(util::CivilDate{2020, m, d});
  };
  const double pre = series.SumRange(day_of(2, 5), day_of(2, 18)) / 14.0;
  const double brk = series.SumRange(day_of(3, 22), day_of(3, 29)) / 8.0;
  const double lull = series.SumRange(day_of(4, 20), day_of(5, 3)) / 14.0;
  const double late = series.SumRange(day_of(5, 12), day_of(5, 25)) / 14.0;
  std::cout << "\nSwitch devices active in February:      " << counts.active_february
            << "  (paper: 1,097)\n"
            << "Switch devices active post-shutdown:    "
            << counts.active_post_shutdown << "  (paper: 267)\n"
            << "new Switches first seen in April/May:   " << counts.new_in_april_may
            << "  (paper: 40)\n"
            << "break-week gameplay vs early February:  "
            << util::FormatDouble(brk / pre, 2) << "x (paper: heavy spikes)\n"
            << "late-May gameplay vs late-April lull:   "
            << util::FormatDouble(late / lull, 2)
            << "x (paper: rises again as boredom kicks in)\n";
  return 0;
}
