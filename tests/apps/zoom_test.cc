#include "apps/zoom.h"

#include <gtest/gtest.h>

namespace lockdown::apps {
namespace {

ZoomMatcher ExplicitMatcher() {
  return ZoomMatcher({"zoom.us"},
                     {*net::Cidr::Parse("52.10.0.0/16")},
                     {*net::Cidr::Parse("52.20.0.0/16")});
}

TEST(ZoomMatcher, DomainMatch) {
  const auto m = ExplicitMatcher();
  EXPECT_TRUE(m.IsZoom("zoom.us", net::Ipv4Address(1, 1, 1, 1)));
  EXPECT_TRUE(m.IsZoom("us04web.zoom.us", net::Ipv4Address(1, 1, 1, 1)));
  EXPECT_FALSE(m.IsZoom("zoom.com", net::Ipv4Address(1, 1, 1, 1)));
  EXPECT_FALSE(m.IsZoom("notzoom.us", net::Ipv4Address(1, 1, 1, 1)));
}

TEST(ZoomMatcher, CurrentIpListMatchesRawTraffic) {
  const auto m = ExplicitMatcher();
  // Media relays never resolve through DNS: host is empty.
  EXPECT_TRUE(m.IsZoom("", *net::Ipv4Address::Parse("52.10.3.4")));
  EXPECT_TRUE(m.MatchesCurrentIp(*net::Ipv4Address::Parse("52.10.255.255")));
  EXPECT_FALSE(m.MatchesCurrentIp(*net::Ipv4Address::Parse("52.11.0.0")));
}

TEST(ZoomMatcher, HistoricalWaybackRangesStillMatch) {
  // "use the Internet Archive Wayback Machine to find any IP addresses that
  //  were previously listed on this page, but were subsequently removed".
  const auto m = ExplicitMatcher();
  EXPECT_TRUE(m.IsZoom("", *net::Ipv4Address::Parse("52.20.9.9")));
  EXPECT_TRUE(m.MatchesHistoricalIp(*net::Ipv4Address::Parse("52.20.9.9")));
  EXPECT_FALSE(m.MatchesCurrentIp(*net::Ipv4Address::Parse("52.20.9.9")));
}

TEST(ZoomMatcher, NonZoomTraffic) {
  const auto m = ExplicitMatcher();
  EXPECT_FALSE(m.IsZoom("netflix.com", *net::Ipv4Address::Parse("99.0.0.1")));
  EXPECT_FALSE(m.IsZoom("", *net::Ipv4Address::Parse("99.0.0.1")));
}

TEST(ZoomMatcher, CatalogConstruction) {
  const auto& cat = world::ServiceCatalog::Default();
  ZoomMatcher m(cat);
  EXPECT_TRUE(m.MatchesDomain("zoom.us"));
  const auto media = cat.Get(*cat.FindByName("zoom-media")).block;
  const auto legacy = cat.Get(*cat.FindByName("zoom-media-legacy")).block;
  EXPECT_TRUE(m.MatchesCurrentIp(media.At(42)));
  EXPECT_TRUE(m.MatchesHistoricalIp(legacy.At(42)));
  EXPECT_FALSE(m.MatchesCurrentIp(legacy.At(42)));
  // Steam traffic is not Zoom.
  const auto steam = cat.Get(*cat.FindByName("steam")).block;
  EXPECT_FALSE(m.IsZoom("steampowered.com", steam.At(1)));
}

TEST(ZoomMatcher, DomainBeatsIpCheck) {
  // A flow with a zoom.us hostname is Zoom regardless of address.
  const auto m = ExplicitMatcher();
  EXPECT_TRUE(m.IsZoom("zoom.us", *net::Ipv4Address::Parse("99.99.99.99")));
}

}  // namespace
}  // namespace lockdown::apps
