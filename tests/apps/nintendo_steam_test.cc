#include <gtest/gtest.h>

#include "apps/nintendo.h"
#include "apps/steam.h"
#include "world/catalog.h"

namespace lockdown::apps {
namespace {

TEST(SteamSignature, SupportWhitelistDomains) {
  // §5.3.1: the signature comes from Steam support's whitelist.
  SteamSignature steam;
  EXPECT_TRUE(steam.Matches("steampowered.com"));
  EXPECT_TRUE(steam.Matches("store.steampowered.com"));
  EXPECT_TRUE(steam.Matches("steamcommunity.com"));
  EXPECT_TRUE(steam.Matches("cache1-lax1.steamcontent.com"));
  EXPECT_TRUE(steam.Matches("steamusercontent.com"));
  EXPECT_TRUE(steam.Matches("cdn.steamstatic.com"));
  EXPECT_EQ(steam.domains().size(), 5u);
}

TEST(SteamSignature, NonSteamDomains) {
  SteamSignature steam;
  EXPECT_FALSE(steam.Matches("steam.com"));
  EXPECT_FALSE(steam.Matches("epicgames.com"));
  EXPECT_FALSE(steam.Matches("mysteampowered.com"));
}

TEST(NintendoSignature, GameplayVsServices) {
  NintendoSignature nintendo;
  // Gameplay endpoints.
  EXPECT_TRUE(nintendo.IsGameplay("npln.srv.nintendo.net"));
  EXPECT_TRUE(nintendo.IsGameplay("p2prel.srv.nintendo.net"));
  EXPECT_TRUE(nintendo.IsGameplay("mm.p2p.srv.nintendo.net"));
  // Update/download/account/telemetry endpoints are Nintendo but NOT
  // gameplay ("system updates, game updates and downloads, and other
  // non-gameplay traffic... filtered out", §5.3.2).
  EXPECT_TRUE(nintendo.IsNintendo("atum.hac.lp1.d4c.nintendo.net"));
  EXPECT_FALSE(nintendo.IsGameplay("atum.hac.lp1.d4c.nintendo.net"));
  EXPECT_TRUE(nintendo.IsNintendo("accounts.nintendo.com"));
  EXPECT_FALSE(nintendo.IsGameplay("accounts.nintendo.com"));
  EXPECT_TRUE(nintendo.IsNintendo("conntest.nintendowifi.net"));
  EXPECT_FALSE(nintendo.IsGameplay("conntest.nintendowifi.net"));
}

TEST(NintendoSignature, NonNintendo) {
  NintendoSignature nintendo;
  EXPECT_FALSE(nintendo.IsNintendo("nintendo-fan-site.com"));
  EXPECT_FALSE(nintendo.IsNintendo("steampowered.com"));
}

TEST(NintendoSignature, DomainListsDisjoint) {
  NintendoSignature nintendo;
  for (const auto& g : nintendo.gameplay_domains()) {
    for (const auto& n : nintendo.non_gameplay_domains()) {
      EXPECT_NE(g, n);
    }
  }
}

TEST(NintendoSignature, CatalogAgreement) {
  // The synthetic world and the analysis signature must agree, as the real
  // lists and real traffic do.
  const auto& cat = world::ServiceCatalog::Default();
  NintendoSignature nintendo;
  for (const auto& host :
       cat.Get(*cat.FindByName("nintendo-gameplay")).hosts) {
    EXPECT_TRUE(nintendo.IsGameplay(host)) << host;
  }
  for (const auto& host :
       cat.Get(*cat.FindByName("nintendo-services")).hosts) {
    EXPECT_TRUE(nintendo.IsNintendo(host)) << host;
    EXPECT_FALSE(nintendo.IsGameplay(host)) << host;
  }
}

}  // namespace
}  // namespace lockdown::apps
