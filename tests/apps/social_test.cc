#include "apps/social.h"

#include <gtest/gtest.h>

#include <map>

namespace lockdown::apps {
namespace {

class SocialTest : public ::testing::Test {
 protected:
  SocialMediaSignatures sigs_;
  std::map<std::uint32_t, std::string> tag_to_host_;

  Session MakeSession(std::initializer_list<const char*> hosts) {
    Session s;
    s.start = 0;
    s.end = 600;
    std::uint32_t tag = 1;
    for (const char* h : hosts) {
      tag_to_host_[tag] = h;
      s.domains.push_back(tag++);
    }
    return s;
  }

  SocialApp Classify(const Session& s) {
    return sigs_.ClassifySession(
        s, [this](std::uint32_t tag) { return std::string_view(tag_to_host_[tag]); });
  }
};

TEST_F(SocialTest, FacebookFamilyMembership) {
  EXPECT_TRUE(sigs_.IsFacebookFamily("facebook.com"));
  EXPECT_TRUE(sigs_.IsFacebookFamily("fbcdn.net"));
  EXPECT_TRUE(sigs_.IsFacebookFamily("scontent.fbcdn.net"));
  EXPECT_TRUE(sigs_.IsFacebookFamily("instagram.com"));
  EXPECT_TRUE(sigs_.IsFacebookFamily("cdninstagram.com"));
  EXPECT_FALSE(sigs_.IsFacebookFamily("tiktok.com"));
  EXPECT_FALSE(sigs_.IsFacebookFamily("facebook.evil.com"));
}

TEST_F(SocialTest, InstagramOnlyDomains) {
  EXPECT_TRUE(sigs_.IsInstagramOnly("instagram.com"));
  EXPECT_TRUE(sigs_.IsInstagramOnly("scontent.cdninstagram.com"));
  EXPECT_FALSE(sigs_.IsInstagramOnly("facebook.com"));
  EXPECT_FALSE(sigs_.IsInstagramOnly("fbcdn.net"));
}

TEST_F(SocialTest, TikTokDomains) {
  EXPECT_TRUE(sigs_.IsTikTok("tiktok.com"));
  EXPECT_TRUE(sigs_.IsTikTok("v16.tiktokcdn.com"));
  EXPECT_TRUE(sigs_.IsTikTok("api.tiktokv.com"));
  EXPECT_FALSE(sigs_.IsTikTok("facebook.com"));
}

TEST_F(SocialTest, PureFacebookSessionIsFacebook) {
  EXPECT_EQ(Classify(MakeSession({"facebook.com", "facebook.net", "fbcdn.net"})),
            SocialApp::kFacebook);
}

TEST_F(SocialTest, AnyInstagramDomainMakesSessionInstagram) {
  // "if any of the domains in a set of overlapping flows delivers
  //  Instagram-only content ... we mark the entire session as an Instagram
  //  session" (§5.2).
  EXPECT_EQ(Classify(MakeSession({"fbcdn.net", "instagram.com"})),
            SocialApp::kInstagram);
  EXPECT_EQ(Classify(MakeSession({"facebook.com", "fbcdn.net",
                                  "scontent.cdninstagram.com"})),
            SocialApp::kInstagram);
}

TEST_F(SocialTest, SharedCdnOnlySessionDefaultsToFacebook) {
  // The heuristic "may overstate Facebook usage and under-represent
  // Instagram" — a session with only shared domains is labelled Facebook.
  EXPECT_EQ(Classify(MakeSession({"fbcdn.net"})), SocialApp::kFacebook);
}

TEST_F(SocialTest, AppNames) {
  EXPECT_STREQ(ToString(SocialApp::kFacebook), "facebook");
  EXPECT_STREQ(ToString(SocialApp::kInstagram), "instagram");
  EXPECT_STREQ(ToString(SocialApp::kTikTok), "tiktok");
}

}  // namespace
}  // namespace lockdown::apps
