#include "apps/sessionizer.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lockdown::apps {
namespace {

FlowInterval F(util::Timestamp start, util::Timestamp end, std::uint32_t domain = 0,
               std::uint64_t bytes = 100) {
  return FlowInterval{start, end, domain, bytes};
}

TEST(Sessionizer, SingleFlow) {
  const auto sessions = MergeSessions({F(100, 200, 7)});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].start, 100);
  EXPECT_EQ(sessions[0].end, 200);
  EXPECT_EQ(sessions[0].domains, std::vector<std::uint32_t>{7});
  EXPECT_EQ(sessions[0].flow_count, 1);
}

TEST(Sessionizer, OverlappingFlowsMerge) {
  // "we find the bounds of overlapping flows from different domains
  //  belonging to the same site" (§5.2).
  const auto sessions = MergeSessions({F(100, 200, 1), F(150, 300, 2), F(250, 400, 3)});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].start, 100);
  EXPECT_EQ(sessions[0].end, 400);
  EXPECT_EQ(sessions[0].domains, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(sessions[0].bytes, 300u);
}

TEST(Sessionizer, DisjointFlowsSeparate) {
  const auto sessions = MergeSessions({F(0, 100, 1), F(200, 300, 1)});
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_DOUBLE_EQ(sessions[0].duration_s(), 100.0);
  EXPECT_DOUBLE_EQ(sessions[1].duration_s(), 100.0);
}

TEST(Sessionizer, TouchingFlowsMergeAtGapZero) {
  // start == previous end counts as overlapping (<=).
  const auto sessions = MergeSessions({F(0, 100, 1), F(100, 200, 2)});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].end, 200);
}

TEST(Sessionizer, GapParameterBridgesShortGaps) {
  const auto strict = MergeSessions({F(0, 100, 1), F(130, 200, 1)}, 0);
  EXPECT_EQ(strict.size(), 2u);
  const auto lenient = MergeSessions({F(0, 100, 1), F(130, 200, 1)}, 60);
  EXPECT_EQ(lenient.size(), 1u);
}

TEST(Sessionizer, UnsortedInput) {
  const auto sessions = MergeSessions({F(250, 400, 3), F(100, 200, 1), F(150, 300, 2)});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].start, 100);
  EXPECT_EQ(sessions[0].end, 400);
}

TEST(Sessionizer, ContainedFlowDoesNotShrinkSession) {
  const auto sessions = MergeSessions({F(0, 1000, 1), F(100, 200, 2), F(900, 950, 3)});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].end, 1000);
  EXPECT_EQ(sessions[0].flow_count, 3);
}

TEST(Sessionizer, DuplicateDomainsDeduplicated) {
  const auto sessions = MergeSessions({F(0, 100, 5), F(50, 150, 5), F(60, 160, 5)});
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].domains, std::vector<std::uint32_t>{5});
  EXPECT_EQ(sessions[0].flow_count, 3);
}

TEST(Sessionizer, EmptyInput) {
  EXPECT_TRUE(MergeSessions({}).empty());
}

TEST(Sessionizer, PropertyUnionOfIntervalsIsCovered) {
  // Invariant: every input instant is inside exactly one output session, and
  // session bounds are the union of their member flows.
  util::Pcg32 rng(13);
  std::vector<FlowInterval> flows;
  for (int i = 0; i < 300; ++i) {
    const util::Timestamp s = rng.UniformInt(0, 100000);
    flows.push_back(F(s, s + rng.UniformInt(1, 4000), rng.NextBounded(5)));
  }
  const auto sessions = MergeSessions(flows);
  ASSERT_FALSE(sessions.empty());
  // Sessions are disjoint and ordered.
  for (std::size_t i = 1; i < sessions.size(); ++i) {
    EXPECT_GT(sessions[i].start, sessions[i - 1].end);
  }
  // Each flow lies within exactly one session.
  double total_flow_count = 0;
  for (const FlowInterval& f : flows) {
    int containing = 0;
    for (const Session& s : sessions) {
      if (f.start >= s.start && f.end <= s.end) ++containing;
    }
    EXPECT_GE(containing, 1) << f.start;
  }
  for (const Session& s : sessions) total_flow_count += s.flow_count;
  EXPECT_EQ(total_flow_count, flows.size());
}

}  // namespace
}  // namespace lockdown::apps
