#include "apps/signature.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lockdown::apps {
namespace {

SignatureRegistry MakeRegistry() {
  SignatureRegistry reg;
  reg.Add(DomainSignature("zoom", {"zoom.us"}));
  reg.Add(DomainSignature("steam", {"steampowered.com", "steamcontent.com"}));
  reg.Add(DomainSignature("facebook", {"facebook.com", "fbcdn.net"}));
  return reg;
}

TEST(DomainSignature, Matching) {
  DomainSignature sig("steam", {"steampowered.com", "steamcontent.com"});
  EXPECT_TRUE(sig.Matches("steampowered.com"));
  EXPECT_TRUE(sig.Matches("store.steampowered.com"));
  EXPECT_TRUE(sig.Matches("cache1.steamcontent.com"));
  EXPECT_FALSE(sig.Matches("steam.com"));
  EXPECT_FALSE(sig.Matches("notsteampowered.com"));
  EXPECT_EQ(sig.name(), "steam");
}

TEST(SignatureRegistry, IndexedMatch) {
  const auto reg = MakeRegistry();
  EXPECT_EQ(reg.Get(*reg.Match("us04web.zoom.us")).name(), "zoom");
  EXPECT_EQ(reg.Get(*reg.Match("fbcdn.net")).name(), "facebook");
  EXPECT_FALSE(reg.Match("example.com").has_value());
  EXPECT_FALSE(reg.Match("zoom.usa").has_value());
}

TEST(SignatureRegistry, IndexAgreesWithLinearScan) {
  const auto reg = MakeRegistry();
  const char* hosts[] = {"zoom.us",          "a.b.zoom.us",
                         "steamcontent.com", "cdn.steamcontent.com",
                         "facebook.com",     "x.facebook.com",
                         "fbcdn.net",        "example.com",
                         "us",               "com",
                         "zoomsteam.net"};
  for (const char* h : hosts) {
    EXPECT_EQ(reg.Match(h), reg.MatchLinear(h)) << h;
  }
}

TEST(SignatureRegistry, PropertyIndexEqualsLinearOnRandomHosts) {
  const auto reg = MakeRegistry();
  util::Pcg32 rng(99);
  const char* labels[] = {"zoom", "us", "steampowered", "com", "a", "fbcdn",
                          "net", "x", "facebook", "steamcontent"};
  for (int i = 0; i < 2000; ++i) {
    std::string host;
    const int n = 1 + static_cast<int>(rng.NextBounded(4));
    for (int k = 0; k < n; ++k) {
      if (k) host += '.';
      host += labels[rng.NextBounded(10)];
    }
    EXPECT_EQ(reg.Match(host), reg.MatchLinear(host)) << host;
  }
}

TEST(SignatureRegistry, RejectsDuplicateDomains) {
  SignatureRegistry reg;
  reg.Add(DomainSignature("a", {"x.example"}));
  EXPECT_THROW(reg.Add(DomainSignature("b", {"x.example"})), std::invalid_argument);
}

TEST(SignatureRegistry, IdsStable) {
  SignatureRegistry reg;
  const AppId a = reg.Add(DomainSignature("a", {"a.example"}));
  const AppId b = reg.Add(DomainSignature("b", {"b.example"}));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(reg.size(), 2u);
}

}  // namespace
}  // namespace lockdown::apps
