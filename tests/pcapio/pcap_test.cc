#include "pcapio/pcap.h"

#include <gtest/gtest.h>

#include <cstring>

namespace lockdown::pcapio {
namespace {

std::vector<std::byte> Bytes(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(Pcap, RoundTrip) {
  PcapWriter writer;
  const auto p1 = Bytes({1, 2, 3, 4, 5});
  const auto p2 = Bytes({9, 8, 7});
  writer.Write(1'580'546'400'123456, p1);
  writer.Write(1'580'546'401'000000, p2);
  EXPECT_EQ(writer.packets_written(), 2u);

  const auto packets = ReadPcap(writer.buffer());
  ASSERT_TRUE(packets.has_value());
  ASSERT_EQ(packets->size(), 2u);
  EXPECT_EQ((*packets)[0].ts_us, 1'580'546'400'123456);
  EXPECT_EQ((*packets)[0].data, p1);
  EXPECT_EQ((*packets)[1].data, p2);
}

TEST(Pcap, EmptyDocumentHasHeaderOnly) {
  PcapWriter writer;
  EXPECT_EQ(writer.buffer().size(), 24u);
  const auto packets = ReadPcap(writer.buffer());
  ASSERT_TRUE(packets.has_value());
  EXPECT_TRUE(packets->empty());
}

TEST(Pcap, SnaplenTruncates) {
  PcapWriter writer(4);
  const auto big = Bytes({1, 2, 3, 4, 5, 6, 7, 8});
  writer.Write(0, big);
  const auto packets = ReadPcap(writer.buffer());
  ASSERT_TRUE(packets.has_value());
  EXPECT_EQ((*packets)[0].data.size(), 4u);
}

TEST(Pcap, RejectsBadMagic) {
  auto doc = PcapWriter().buffer();
  doc[0] = static_cast<std::byte>(0x00);
  EXPECT_FALSE(ReadPcap(doc).has_value());
}

TEST(Pcap, RejectsTruncatedRecord) {
  PcapWriter writer;
  writer.Write(0, Bytes({1, 2, 3, 4}));
  auto doc = writer.buffer();
  doc.pop_back();  // cut off the last payload byte
  EXPECT_FALSE(ReadPcap(doc).has_value());
}

TEST(Pcap, RejectsShortDocument) {
  EXPECT_FALSE(ReadPcap(Bytes({1, 2, 3})).has_value());
}

TEST(Pcap, ReadsSwappedByteOrder) {
  // Build a minimal big-endian-ish (opposite order) document by hand.
  PcapWriter writer;
  writer.Write(5'000000, Bytes({0xAA, 0xBB}));
  auto doc = writer.buffer();
  // Swap every 32/16-bit header field of the global header and the record
  // header. Easier: flip all known fields manually.
  auto swap32 = [&doc](std::size_t off) {
    std::swap(doc[off], doc[off + 3]);
    std::swap(doc[off + 1], doc[off + 2]);
  };
  auto swap16 = [&doc](std::size_t off) { std::swap(doc[off], doc[off + 1]); };
  swap32(0);            // magic
  swap16(4);            // version major
  swap16(6);            // version minor
  swap32(8);            // thiszone
  swap32(12);           // sigfigs
  swap32(16);           // snaplen
  swap32(20);           // linktype
  swap32(24);           // ts sec
  swap32(28);           // ts usec
  swap32(32);           // caplen
  swap32(36);           // origlen
  const auto packets = ReadPcap(doc);
  ASSERT_TRUE(packets.has_value());
  ASSERT_EQ(packets->size(), 1u);
  EXPECT_EQ((*packets)[0].ts_us, 5'000000);
  EXPECT_EQ((*packets)[0].data, Bytes({0xAA, 0xBB}));
}

}  // namespace
}  // namespace lockdown::pcapio
