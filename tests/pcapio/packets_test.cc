#include "pcapio/packets.h"

#include <gtest/gtest.h>

namespace lockdown::pcapio {
namespace {

PacketInfo TcpInfo() {
  PacketInfo info;
  info.src_mac = *net::MacAddress::Parse("02:00:00:00:00:01");
  info.dst_mac = *net::MacAddress::Parse("02:00:00:00:00:02");
  info.tuple.src_ip = net::Ipv4Address(10, 1, 2, 3);
  info.tuple.dst_ip = net::Ipv4Address(64, 0, 0, 9);
  info.tuple.src_port = 40000;
  info.tuple.dst_port = 443;
  info.tuple.proto = net::Protocol::kTcp;
  info.payload_len = 500;
  return info;
}

TEST(Packets, TcpRoundTrip) {
  PacketInfo in = TcpInfo();
  in.flags.syn = true;
  const auto bytes = SynthesizePacket(in);
  EXPECT_EQ(bytes.size(),
            kEthernetHeaderLen + kIpv4HeaderLen + kTcpHeaderLen + 500);
  const auto out = ParsePacket(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tuple, in.tuple);
  EXPECT_EQ(out->payload_len, 500);
  EXPECT_TRUE(out->flags.syn);
  EXPECT_FALSE(out->flags.fin);
  EXPECT_EQ(out->src_mac, in.src_mac);
  EXPECT_EQ(out->dst_mac, in.dst_mac);
}

TEST(Packets, UdpRoundTrip) {
  PacketInfo in = TcpInfo();
  in.tuple.proto = net::Protocol::kUdp;
  in.tuple.dst_port = 8801;
  in.payload_len = 1200;
  const auto bytes = SynthesizePacket(in);
  EXPECT_EQ(bytes.size(),
            kEthernetHeaderLen + kIpv4HeaderLen + kUdpHeaderLen + 1200);
  const auto out = ParsePacket(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->tuple, in.tuple);
  EXPECT_EQ(out->payload_len, 1200);
}

TEST(Packets, AllTcpFlagCombinations) {
  for (int mask = 0; mask < 16; ++mask) {
    PacketInfo in = TcpInfo();
    in.flags.fin = mask & 1;
    in.flags.syn = mask & 2;
    in.flags.rst = mask & 4;
    in.flags.ack = mask & 8;
    const auto out = ParsePacket(SynthesizePacket(in));
    ASSERT_TRUE(out.has_value()) << mask;
    EXPECT_EQ(out->flags.fin, in.flags.fin) << mask;
    EXPECT_EQ(out->flags.syn, in.flags.syn) << mask;
    EXPECT_EQ(out->flags.rst, in.flags.rst) << mask;
    EXPECT_EQ(out->flags.ack, in.flags.ack) << mask;
  }
}

TEST(Packets, Ipv4ChecksumValidAndVerified) {
  const auto bytes = SynthesizePacket(TcpInfo());
  // Checksum over the IP header must verify to zero.
  EXPECT_EQ(InternetChecksum(std::span<const std::byte>(bytes).subspan(
                kEthernetHeaderLen, kIpv4HeaderLen)),
            0);
  // Corrupt one IP header byte: parsing must reject it.
  auto corrupted = bytes;
  corrupted[kEthernetHeaderLen + 8] ^= std::byte{0xFF};  // TTL
  EXPECT_FALSE(ParsePacket(corrupted).has_value());
}

TEST(Packets, RejectsNonIpv4Ethertype) {
  auto bytes = SynthesizePacket(TcpInfo());
  bytes[12] = std::byte{0x86};  // 0x86DD = IPv6
  bytes[13] = std::byte{0xDD};
  EXPECT_FALSE(ParsePacket(bytes).has_value());
}

TEST(Packets, RejectsTruncated) {
  const auto bytes = SynthesizePacket(TcpInfo());
  EXPECT_FALSE(ParsePacket(std::span<const std::byte>(bytes).first(20)).has_value());
}

TEST(Packets, PayloadClampedToIpLimit) {
  PacketInfo in = TcpInfo();
  in.payload_len = 65535;  // would overflow IP total length
  const auto bytes = SynthesizePacket(in);
  const auto out = ParsePacket(bytes);
  ASSERT_TRUE(out.has_value());
  EXPECT_LE(out->payload_len, 65535 - kIpv4HeaderLen - kTcpHeaderLen);
}

TEST(Packets, ChecksumKnownVector) {
  // RFC 1071 style check: sum of header with its own checksum folds to zero;
  // also verify a tiny fixed vector.
  const std::byte data[] = {std::byte{0x00}, std::byte{0x01}, std::byte{0xF2},
                            std::byte{0x03}};
  // words: 0x0001 + 0xF203 = 0xF204 -> ~ = 0x0DFB
  EXPECT_EQ(InternetChecksum(data), 0x0DFB);
}

}  // namespace
}  // namespace lockdown::pcapio
