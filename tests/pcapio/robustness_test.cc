// Parser robustness: every reader in the project must reject (not crash on)
// arbitrary byte garbage and mutated valid documents. Deterministic
// pseudo-fuzz — thousands of cases per parser.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flow/conn_log.h"
#include "logs/dhcp_log.h"
#include "logs/dns_log.h"
#include "logs/ua_log.h"
#include "pcapio/packets.h"
#include "pcapio/pcap.h"
#include "util/rng.h"

namespace lockdown {
namespace {

std::vector<std::byte> RandomBytes(util::Pcg32& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::byte& b : out) b = static_cast<std::byte>(rng.NextBounded(256));
  return out;
}

std::string RandomText(util::Pcg32& rng, std::size_t n) {
  static constexpr char kAlphabet[] =
      "abc123.\t\n:/-\\\"\x01 \x7f";
  std::string out(n, ' ');
  for (char& c : out) c = kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)];
  return out;
}

TEST(Robustness, PcapReaderSurvivesGarbage) {
  util::Pcg32 rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto junk = RandomBytes(rng, rng.NextBounded(200));
    (void)pcapio::ReadPcap(junk);  // must not crash; result may be nullopt
  }
}

TEST(Robustness, PcapReaderSurvivesMutatedValidDocuments) {
  pcapio::PcapWriter writer;
  util::Pcg32 rng(2);
  for (int p = 0; p < 5; ++p) writer.Write(p, RandomBytes(rng, 40));
  const auto base = writer.buffer();
  for (int i = 0; i < 2000; ++i) {
    auto doc = base;
    // Flip a few random bytes.
    for (int k = 0; k < 3; ++k) {
      doc[rng.NextBounded(static_cast<std::uint32_t>(doc.size()))] ^=
          static_cast<std::byte>(1 + rng.NextBounded(255));
    }
    const auto result = pcapio::ReadPcap(doc);
    if (result) {
      // If it parses, the packets must stay within the document.
      std::size_t total = 24;
      for (const auto& pkt : *result) total += 16 + pkt.data.size();
      EXPECT_LE(total, doc.size() + 16);
    }
  }
}

TEST(Robustness, PacketParserSurvivesGarbage) {
  util::Pcg32 rng(3);
  for (int i = 0; i < 5000; ++i) {
    const auto junk = RandomBytes(rng, rng.NextBounded(100));
    (void)pcapio::ParsePacket(junk);
  }
}

TEST(Robustness, PacketParserSurvivesMutatedPackets) {
  pcapio::PacketInfo info;
  info.tuple = net::FiveTuple{net::Ipv4Address(10, 0, 0, 1),
                              net::Ipv4Address(64, 0, 0, 1), 40000, 443,
                              net::Protocol::kTcp};
  info.payload_len = 64;
  const auto base = pcapio::SynthesizePacket(info);
  util::Pcg32 rng(4);
  for (int i = 0; i < 5000; ++i) {
    auto pkt = base;
    pkt[rng.NextBounded(static_cast<std::uint32_t>(pkt.size()))] ^=
        static_cast<std::byte>(1 + rng.NextBounded(255));
    (void)pcapio::ParsePacket(pkt);
  }
}

TEST(Robustness, TextLogReadersSurviveGarbage) {
  util::Pcg32 rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::string junk = RandomText(rng, rng.NextBounded(300));
    (void)flow::ReadConnLog(junk);
    (void)logs::ReadDhcpLog(junk);
    (void)logs::ReadDnsLog(junk);
    (void)logs::ReadUaLog(junk);
  }
}

TEST(Robustness, TextLogReadersSurviveMutatedValidLogs) {
  // Start from a valid dhcp.log and mutate single characters.
  std::vector<dhcp::Lease> leases;
  for (int i = 1; i <= 5; ++i) {
    leases.push_back(dhcp::Lease{net::MacAddress(static_cast<std::uint64_t>(i)),
                                 net::Ipv4Address(10, 0, 0,
                                                  static_cast<std::uint8_t>(i)),
                                 i * 100, i * 100 + 50});
  }
  std::ostringstream out;
  logs::WriteDhcpLog(out, leases);
  const std::string base = out.str();
  util::Pcg32 rng(6);
  for (int i = 0; i < 2000; ++i) {
    std::string doc = base;
    doc[rng.NextBounded(static_cast<std::uint32_t>(doc.size()))] =
        static_cast<char>(rng.NextBounded(128));
    const auto result = logs::ReadDhcpLog(doc);
    if (result) {
      EXPECT_LE(result->size(), leases.size());
    }
  }
}

}  // namespace
}  // namespace lockdown
