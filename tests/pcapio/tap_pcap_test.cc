#include "pcapio/tap_pcap.h"

#include <gtest/gtest.h>

#include "flow/assembler.h"

namespace lockdown::pcapio {
namespace {

const net::Cidr kCampus(net::Ipv4Address(10, 0, 0, 0), 8);

bool IsCampus(net::Ipv4Address ip) { return kCampus.Contains(ip); }

flow::TapEvent Event(flow::EventKind kind, util::Timestamp ts, std::uint64_t up,
                     std::uint64_t down, net::Port sport = 40000,
                     net::Protocol proto = net::Protocol::kTcp) {
  flow::TapEvent ev;
  ev.ts = ts;
  ev.kind = kind;
  ev.tuple = net::FiveTuple{net::Ipv4Address(10, 1, 1, 1),
                            net::Ipv4Address(64, 2, 2, 2), sport, 443, proto};
  ev.bytes_up = up;
  ev.bytes_down = down;
  return ev;
}

TEST(TapPcap, SynthesizeProducesValidPcap) {
  const std::vector<flow::TapEvent> events = {
      Event(flow::EventKind::kOpen, 100, 0, 0),
      Event(flow::EventKind::kData, 110, 1000, 50000),
      Event(flow::EventKind::kClose, 150, 0, 2000),
  };
  const auto doc = SynthesizePcap(events);
  const auto packets = ReadPcap(doc);
  ASSERT_TRUE(packets.has_value());
  EXPECT_GT(packets->size(), 4u);
  for (const Packet& pkt : *packets) {
    EXPECT_TRUE(ParsePacket(pkt.data).has_value());
  }
}

TEST(TapPcap, RoundTripThroughAssemblerPreservesFlowShape) {
  // One TCP connection: open, data, close. After pcap round-trip + flow
  // assembly we must get exactly one flow with the right 5-tuple. Byte
  // counts survive up to the per-event packet cap.
  const std::vector<flow::TapEvent> events = {
      Event(flow::EventKind::kOpen, 100, 0, 0),
      Event(flow::EventKind::kData, 120, 2000, 14000),
      Event(flow::EventKind::kClose, 200, 0, 0),
  };
  const auto doc = SynthesizePcap(events);

  std::vector<flow::FlowRecord> flows;
  flow::Assembler assembler(flow::AssemblerConfig{},
                            [&flows](const flow::FlowRecord& r) {
                              flows.push_back(r);
                            });
  const auto stats = IngestPcap(
      doc, IsCampus, [&assembler](const flow::TapEvent& ev) { assembler.Ingest(ev); });
  assembler.Finish();

  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->ignored, 0u);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].client_ip, net::Ipv4Address(10, 1, 1, 1));
  EXPECT_EQ(flows[0].server_ip, net::Ipv4Address(64, 2, 2, 2));
  EXPECT_EQ(flows[0].server_port, 443);
  EXPECT_EQ(flows[0].bytes_up, 2000u);
  EXPECT_EQ(flows[0].bytes_down, 14000u);
  EXPECT_EQ(flows[0].start, 100);
}

TEST(TapPcap, ServerSidePacketsOrientedToClient) {
  // A capture where the first packet travels server->client must still
  // attribute the flow to the campus device.
  PacketInfo info;
  info.src_mac = net::MacAddress(1);
  info.dst_mac = net::MacAddress(2);
  info.tuple = net::FiveTuple{net::Ipv4Address(64, 2, 2, 2),
                              net::Ipv4Address(10, 1, 1, 1), 443, 40000,
                              net::Protocol::kTcp};
  info.payload_len = 999;
  info.flags.ack = true;
  PcapWriter writer;
  writer.Write(0, SynthesizePacket(info));

  std::vector<flow::TapEvent> events;
  const auto stats = IngestPcap(writer.buffer(), IsCampus,
                                [&events](const flow::TapEvent& ev) {
                                  events.push_back(ev);
                                });
  ASSERT_TRUE(stats.has_value());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tuple.src_ip, net::Ipv4Address(10, 1, 1, 1));
  EXPECT_EQ(events[0].tuple.dst_ip, net::Ipv4Address(64, 2, 2, 2));
  EXPECT_EQ(events[0].bytes_down, 999u);
  EXPECT_EQ(events[0].bytes_up, 0u);
}

TEST(TapPcap, TransitTrafficIgnored) {
  PacketInfo info;
  info.tuple = net::FiveTuple{net::Ipv4Address(64, 1, 1, 1),
                              net::Ipv4Address(64, 2, 2, 2), 1234, 443,
                              net::Protocol::kTcp};
  PcapWriter writer;
  writer.Write(0, SynthesizePacket(info));
  std::size_t delivered = 0;
  const auto stats = IngestPcap(writer.buffer(), IsCampus,
                                [&delivered](const flow::TapEvent&) {
                                  ++delivered;
                                });
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(stats->ignored, 1u);
}

TEST(TapPcap, UdpEventsRoundTrip) {
  const std::vector<flow::TapEvent> events = {
      Event(flow::EventKind::kOpen, 50, 100, 0, 50000, net::Protocol::kUdp),
      Event(flow::EventKind::kData, 60, 500, 8000, 50000, net::Protocol::kUdp),
  };
  const auto doc = SynthesizePcap(events);
  std::uint64_t up = 0, down = 0;
  const auto stats = IngestPcap(doc, IsCampus, [&](const flow::TapEvent& ev) {
    up += ev.bytes_up;
    down += ev.bytes_down;
    EXPECT_EQ(ev.tuple.proto, net::Protocol::kUdp);
  });
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(up, 600u);
  EXPECT_EQ(down, 8000u);
}

TEST(TapPcap, LargeEventsCappedNotDropped) {
  // 100 MB in one event exceeds the per-event packet cap: the synthesized
  // pcap stays small and ingest still sees the flow, just with fewer bytes.
  const std::vector<flow::TapEvent> events = {
      Event(flow::EventKind::kData, 10, 0, 100'000'000),
  };
  SynthesizeOptions opts;
  const auto doc = SynthesizePcap(events, opts);
  const auto packets = ReadPcap(doc);
  ASSERT_TRUE(packets.has_value());
  EXPECT_LE(packets->size(), opts.max_packets_per_event);
  std::uint64_t down = 0;
  (void)IngestPcap(doc, IsCampus,
                   [&down](const flow::TapEvent& ev) { down += ev.bytes_down; });
  EXPECT_GT(down, 0u);
  EXPECT_LT(down, 100'000'000u);
}

TEST(TapPcap, InvalidDocumentReturnsNullopt) {
  const std::vector<std::byte> garbage(10, std::byte{0x42});
  EXPECT_FALSE(IngestPcap(garbage, IsCampus, [](const flow::TapEvent&) {})
                   .has_value());
}

}  // namespace
}  // namespace lockdown::pcapio
