#include "privacy/anonymizer.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lockdown::privacy {
namespace {

TEST(Anonymizer, ConsistentWithinRun) {
  Anonymizer a(util::SipHashKey{1, 2});
  const net::MacAddress mac(0xA483E7123456ULL);
  EXPECT_EQ(a.AnonymizeMac(mac), a.AnonymizeMac(mac));
  const net::Ipv4Address ip(10, 0, 0, 1);
  EXPECT_EQ(a.AnonymizeIp(ip), a.AnonymizeIp(ip));
}

TEST(Anonymizer, DifferentKeysUnlinkable) {
  Anonymizer a(util::SipHashKey{1, 2});
  Anonymizer b(util::SipHashKey{1, 3});
  const net::MacAddress mac(0xA483E7123456ULL);
  EXPECT_NE(a.AnonymizeMac(mac), b.AnonymizeMac(mac));
}

TEST(Anonymizer, DistinctDevicesDistinctIds) {
  Anonymizer a(util::SipHashKey{7, 9});
  std::unordered_set<std::uint64_t> ids;
  for (std::uint64_t m = 0; m < 50000; ++m) {
    ids.insert(a.AnonymizeMac(net::MacAddress(m)).value);
  }
  EXPECT_EQ(ids.size(), 50000u);
}

TEST(Anonymizer, MacAndIpDomainsSeparated) {
  // A MAC whose 48-bit value equals an IP's 32-bit value must not collide:
  // the MAC domain is tagged before hashing.
  Anonymizer a(util::SipHashKey{3, 4});
  const std::uint32_t v = 0x0A000001;
  EXPECT_NE(a.AnonymizeMac(net::MacAddress(v)).value,
            a.AnonymizeIp(net::Ipv4Address(v)).value);
}

TEST(DeviceIdHash, UsableInHashContainers) {
  std::unordered_set<DeviceId, DeviceIdHash> set;
  set.insert(DeviceId{1});
  set.insert(DeviceId{2});
  set.insert(DeviceId{1});
  EXPECT_EQ(set.size(), 2u);
}

}  // namespace
}  // namespace lockdown::privacy
