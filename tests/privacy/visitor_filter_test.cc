#include "privacy/visitor_filter.h"

#include <gtest/gtest.h>

#include "util/time.h"

namespace lockdown::privacy {
namespace {

using util::kSecondsPerDay;

TEST(VisitorFilter, DiscardsShortLivedVisitors) {
  VisitorFilter f(14);
  const DeviceId visitor{1};
  for (int d = 0; d < 13; ++d) f.Observe(visitor, d * kSecondsPerDay);
  EXPECT_FALSE(f.Retained(visitor));
  EXPECT_EQ(f.ActiveDays(visitor), 13);
}

TEST(VisitorFilter, RetainsAtThreshold) {
  VisitorFilter f(14);
  const DeviceId resident{2};
  for (int d = 0; d < 14; ++d) f.Observe(resident, d * kSecondsPerDay);
  EXPECT_TRUE(f.Retained(resident));
}

TEST(VisitorFilter, MultipleObservationsSameDayCountOnce) {
  VisitorFilter f(14);
  const DeviceId dev{3};
  for (int i = 0; i < 100; ++i) f.Observe(dev, 1000 + i);
  EXPECT_EQ(f.ActiveDays(dev), 1);
}

TEST(VisitorFilter, NonConsecutiveDaysCount) {
  VisitorFilter f(3);
  const DeviceId dev{4};
  f.Observe(dev, 0);
  f.Observe(dev, 10 * kSecondsPerDay);
  f.Observe(dev, 50 * kSecondsPerDay);
  EXPECT_TRUE(f.Retained(dev));
}

TEST(VisitorFilter, OutOfOrderObservations) {
  VisitorFilter f(3);
  const DeviceId dev{5};
  f.Observe(dev, 5 * kSecondsPerDay);
  f.Observe(dev, 1 * kSecondsPerDay);  // earlier day arrives later
  f.Observe(dev, 5 * kSecondsPerDay);  // revisit already-counted day
  f.Observe(dev, 3 * kSecondsPerDay);
  EXPECT_EQ(f.ActiveDays(dev), 3);
  EXPECT_TRUE(f.Retained(dev));
}

TEST(VisitorFilter, UnknownDevice) {
  VisitorFilter f(14);
  EXPECT_FALSE(f.Retained(DeviceId{99}));
  EXPECT_EQ(f.ActiveDays(DeviceId{99}), 0);
}

TEST(VisitorFilter, Counts) {
  VisitorFilter f(2);
  f.Observe(DeviceId{1}, 0);
  f.Observe(DeviceId{1}, kSecondsPerDay);
  f.Observe(DeviceId{2}, 0);
  EXPECT_EQ(f.num_observed(), 2u);
  EXPECT_EQ(f.num_retained(), 1u);
}

}  // namespace
}  // namespace lockdown::privacy
