#include "dns/resolver.h"

#include <gtest/gtest.h>

namespace lockdown::dns {
namespace {

AuthorityFn TwoNameAuthority() {
  return [](std::string_view qname) -> std::vector<net::Ipv4Address> {
    if (qname == "zoom.us") {
      return {net::Ipv4Address(52, 1, 0, 1), net::Ipv4Address(52, 1, 0, 2)};
    }
    if (qname == "example.org") {
      return {net::Ipv4Address(93, 184, 216, 34)};
    }
    return {};
  };
}

Resolver MakeResolver(ResolverConfig cfg = {}) {
  return Resolver(TwoNameAuthority(), cfg, util::Pcg32(1));
}

TEST(Resolver, ResolvesKnownName) {
  Resolver r = MakeResolver();
  const auto ip = r.Resolve(net::MacAddress(1), "example.org", 0);
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(*ip, net::Ipv4Address(93, 184, 216, 34));
}

TEST(Resolver, NxDomain) {
  Resolver r = MakeResolver();
  EXPECT_FALSE(r.Resolve(net::MacAddress(1), "no-such-host.invalid", 0).has_value());
  EXPECT_TRUE(r.log().empty());
}

TEST(Resolver, AnswerComesFromAuthoritySet) {
  Resolver r = MakeResolver();
  const auto ip = r.Resolve(net::MacAddress(1), "zoom.us", 0);
  ASSERT_TRUE(ip.has_value());
  EXPECT_TRUE(*ip == net::Ipv4Address(52, 1, 0, 1) ||
              *ip == net::Ipv4Address(52, 1, 0, 2));
}

TEST(Resolver, CachesWithinTtl) {
  ResolverConfig cfg;
  cfg.default_ttl = 300;
  Resolver r = MakeResolver(cfg);
  const auto first = r.Resolve(net::MacAddress(1), "zoom.us", 1000);
  const auto second = r.Resolve(net::MacAddress(2), "zoom.us", 1200);
  EXPECT_EQ(first, second);
  EXPECT_EQ(r.cache_hits(), 1u);
  EXPECT_EQ(r.cache_misses(), 1u);
  EXPECT_EQ(r.log().size(), 1u);  // cache hits are not new log entries
}

TEST(Resolver, ReResolvesAfterTtlExpiry) {
  ResolverConfig cfg;
  cfg.default_ttl = 300;
  Resolver r = MakeResolver(cfg);
  (void)r.Resolve(net::MacAddress(1), "zoom.us", 1000);
  (void)r.Resolve(net::MacAddress(1), "zoom.us", 1300);  // TTL elapsed
  EXPECT_EQ(r.cache_misses(), 2u);
  EXPECT_EQ(r.log().size(), 2u);
}

TEST(Resolver, LogRecordsClientAndName) {
  Resolver r = MakeResolver();
  (void)r.Resolve(net::MacAddress(0xAB), "example.org", 777);
  ASSERT_EQ(r.log().size(), 1u);
  const Resolution& res = r.log()[0];
  EXPECT_EQ(res.client, net::MacAddress(0xAB));
  EXPECT_EQ(res.qname, "example.org");
  EXPECT_EQ(res.ts, 777);
  EXPECT_EQ(res.ttl, 300);
}

TEST(Resolver, LogCapRespected) {
  ResolverConfig cfg;
  cfg.default_ttl = 1;  // force a miss every call
  cfg.max_log_entries = 3;
  Resolver r = MakeResolver(cfg);
  for (int i = 0; i < 10; ++i) {
    (void)r.Resolve(net::MacAddress(1), "example.org", i * 10);
  }
  EXPECT_EQ(r.log().size(), 3u);
}

}  // namespace
}  // namespace lockdown::dns
