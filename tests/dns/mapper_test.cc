#include "dns/mapper.h"

#include <gtest/gtest.h>

namespace lockdown::dns {
namespace {

Resolution Res(util::Timestamp ts, std::string qname, net::Ipv4Address ip) {
  return Resolution{ts, net::MacAddress(1), std::move(qname), ip, 300};
}

TEST(IpToDomainMapper, BasicReverseLookup) {
  const net::Ipv4Address ip(52, 1, 0, 1);
  const std::vector<Resolution> log = {Res(100, "zoom.us", ip)};
  IpToDomainMapper m(log);
  EXPECT_EQ(m.Lookup(ip, 100), "zoom.us");
  EXPECT_EQ(m.Lookup(ip, 99999), "zoom.us");  // sticky after resolution
}

TEST(IpToDomainMapper, NothingBeforeFirstResolution) {
  const net::Ipv4Address ip(52, 1, 0, 1);
  const std::vector<Resolution> log = {Res(100, "zoom.us", ip)};
  IpToDomainMapper m(log);
  EXPECT_FALSE(m.Lookup(ip, 99).has_value());
}

TEST(IpToDomainMapper, UnknownAddress) {
  IpToDomainMapper m(std::vector<Resolution>{});
  EXPECT_FALSE(m.Lookup(net::Ipv4Address(8, 8, 8, 8), 1000).has_value());
  EXPECT_EQ(m.num_ips(), 0u);
}

TEST(IpToDomainMapper, MostRecentNameWins) {
  // A shared CDN-ish address serving different names over time: the mapper
  // must return the name contemporaneous with the flow.
  const net::Ipv4Address ip(52, 9, 9, 9);
  const std::vector<Resolution> log = {
      Res(100, "alpha.example", ip),
      Res(500, "beta.example", ip),
      Res(900, "alpha.example", ip),
  };
  IpToDomainMapper m(log);
  EXPECT_EQ(m.Lookup(ip, 300), "alpha.example");
  EXPECT_EQ(m.Lookup(ip, 500), "beta.example");
  EXPECT_EQ(m.Lookup(ip, 899), "beta.example");
  EXPECT_EQ(m.Lookup(ip, 2000), "alpha.example");
}

TEST(IpToDomainMapper, ConsecutiveDuplicatesCollapsed) {
  const net::Ipv4Address ip(52, 1, 2, 3);
  std::vector<Resolution> log;
  for (int i = 0; i < 100; ++i) log.push_back(Res(i * 300, "steamcontent.com", ip));
  IpToDomainMapper m(log);
  EXPECT_EQ(m.num_ips(), 1u);
  EXPECT_EQ(m.Lookup(ip, 15000), "steamcontent.com");
}

TEST(IpToDomainMapper, DistinctAddressesIndependent) {
  const net::Ipv4Address a(1, 1, 1, 1);
  const net::Ipv4Address b(2, 2, 2, 2);
  const std::vector<Resolution> log = {Res(0, "a.example", a), Res(0, "b.example", b)};
  IpToDomainMapper m(log);
  EXPECT_EQ(m.Lookup(a, 10), "a.example");
  EXPECT_EQ(m.Lookup(b, 10), "b.example");
  EXPECT_EQ(m.num_ips(), 2u);
}

}  // namespace
}  // namespace lockdown::dns
