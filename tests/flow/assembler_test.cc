#include "flow/assembler.h"

#include <gtest/gtest.h>

#include <vector>

namespace lockdown::flow {
namespace {

using util::kSecondsPerMinute;

net::FiveTuple Tuple(std::uint32_t src, std::uint16_t sport,
                     std::uint32_t dst = 0x08080808, std::uint16_t dport = 443) {
  return net::FiveTuple{net::Ipv4Address(src), net::Ipv4Address(dst), sport, dport,
                        net::Protocol::kTcp};
}

class AssemblerTest : public ::testing::Test {
 protected:
  std::vector<FlowRecord> records_;
  Assembler assembler_{AssemblerConfig{},
                       [this](const FlowRecord& r) { records_.push_back(r); }};
};

TEST_F(AssemblerTest, OpenCloseProducesOneFlow) {
  const auto t = Tuple(1, 40000);
  assembler_.Ingest({100, EventKind::kOpen, t, 0, 0});
  assembler_.Ingest({160, EventKind::kClose, t, 500, 9000});
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].start, 100);
  EXPECT_DOUBLE_EQ(records_[0].duration_s, 60.0);
  EXPECT_EQ(records_[0].bytes_up, 500u);
  EXPECT_EQ(records_[0].bytes_down, 9000u);
  EXPECT_EQ(records_[0].client_ip, net::Ipv4Address(1));
  EXPECT_EQ(records_[0].server_port, 443);
}

TEST_F(AssemblerTest, DataEventsAccumulate) {
  const auto t = Tuple(1, 40000);
  assembler_.Ingest({0, EventKind::kOpen, t, 0, 0});
  assembler_.Ingest({10, EventKind::kData, t, 100, 1000});
  assembler_.Ingest({20, EventKind::kData, t, 100, 2000});
  assembler_.Ingest({30, EventKind::kClose, t, 100, 3000});
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].bytes_up, 300u);
  EXPECT_EQ(records_[0].bytes_down, 6000u);
}

TEST_F(AssemblerTest, ConcurrentConnectionsKeptSeparate) {
  const auto a = Tuple(1, 40000);
  const auto b = Tuple(1, 40001);
  const auto c = Tuple(2, 40000);
  assembler_.Ingest({0, EventKind::kOpen, a, 0, 0});
  assembler_.Ingest({1, EventKind::kOpen, b, 0, 0});
  assembler_.Ingest({2, EventKind::kOpen, c, 0, 0});
  EXPECT_EQ(assembler_.table_size(), 3u);
  assembler_.Ingest({10, EventKind::kClose, b, 0, 10});
  assembler_.Ingest({20, EventKind::kClose, a, 0, 20});
  assembler_.Ingest({30, EventKind::kClose, c, 0, 30});
  ASSERT_EQ(records_.size(), 3u);
  EXPECT_EQ(records_[0].bytes_down, 10u);
  EXPECT_EQ(records_[1].bytes_down, 20u);
  EXPECT_EQ(records_[2].bytes_down, 30u);
}

TEST_F(AssemblerTest, InactivityTimeoutSplitsIdleConnection) {
  AssemblerConfig cfg;
  cfg.inactivity_timeout = 15 * kSecondsPerMinute;
  cfg.sweep_interval = kSecondsPerMinute;
  std::vector<FlowRecord> recs;
  Assembler a(cfg, [&recs](const FlowRecord& r) { recs.push_back(r); });
  const auto t = Tuple(1, 40000);
  a.Ingest({0, EventKind::kOpen, t, 0, 1000});
  // An hour of silence, then more activity on the same tuple.
  a.Ingest({3600, EventKind::kData, t, 0, 2000});
  a.Ingest({3700, EventKind::kClose, t, 0, 3000});
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].bytes_down, 1000u);  // flushed by the idle sweep
  // The reopened segment is a partial connection (its open was the sweep's
  // leftover data event).
  EXPECT_EQ(recs[1].bytes_down, 5000u);
  EXPECT_EQ(a.partial_events(), 1u);
}

TEST_F(AssemblerTest, ActiveLongFlowSurvivesSweeps) {
  AssemblerConfig cfg;
  cfg.inactivity_timeout = 15 * kSecondsPerMinute;
  cfg.sweep_interval = kSecondsPerMinute;
  std::vector<FlowRecord> recs;
  Assembler a(cfg, [&recs](const FlowRecord& r) { recs.push_back(r); });
  const auto t = Tuple(1, 40000);
  a.Ingest({0, EventKind::kOpen, t, 0, 0});
  // Data every 5 minutes for 2 hours: never idle past the timeout.
  for (int i = 1; i <= 24; ++i) {
    a.Ingest({i * 5 * kSecondsPerMinute, EventKind::kData, t, 10, 100});
  }
  a.Ingest({121 * kSecondsPerMinute, EventKind::kClose, t, 0, 0});
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].bytes_down, 2400u);
  EXPECT_NEAR(recs[0].duration_s, 121 * 60.0, 1.0);
}

TEST_F(AssemblerTest, CloseWithoutOpenIsPartial) {
  assembler_.Ingest({10, EventKind::kClose, Tuple(1, 40000), 5, 5});
  EXPECT_EQ(records_.size(), 0u);
  EXPECT_EQ(assembler_.partial_events(), 1u);
}

TEST_F(AssemblerTest, DataWithoutOpenStartsPartialConnection) {
  const auto t = Tuple(1, 40000);
  assembler_.Ingest({10, EventKind::kData, t, 5, 50});
  assembler_.Ingest({20, EventKind::kClose, t, 5, 50});
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].start, 10);
  EXPECT_EQ(records_[0].bytes_down, 100u);
  EXPECT_EQ(assembler_.partial_events(), 1u);
}

TEST_F(AssemblerTest, TupleReuseFlushesOldConnection) {
  const auto t = Tuple(1, 40000);
  assembler_.Ingest({0, EventKind::kOpen, t, 0, 100});
  assembler_.Ingest({50, EventKind::kOpen, t, 0, 200});  // reuse before close
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_EQ(records_[0].bytes_down, 100u);
  assembler_.Ingest({60, EventKind::kClose, t, 0, 0});
  ASSERT_EQ(records_.size(), 2u);
  EXPECT_EQ(records_[1].bytes_down, 200u);
}

TEST_F(AssemblerTest, FinishFlushesEverything) {
  assembler_.Ingest({0, EventKind::kOpen, Tuple(1, 1), 0, 1});
  assembler_.Ingest({0, EventKind::kOpen, Tuple(1, 2), 0, 2});
  EXPECT_EQ(records_.size(), 0u);
  assembler_.Finish();
  EXPECT_EQ(records_.size(), 2u);
  EXPECT_EQ(assembler_.table_size(), 0u);
}

TEST_F(AssemblerTest, OutOfOrderTimestampsClamped) {
  const auto t = Tuple(1, 40000);
  assembler_.Ingest({100, EventKind::kOpen, t, 0, 0});
  assembler_.Ingest({90, EventKind::kClose, t, 0, 10});  // earlier ts
  ASSERT_EQ(records_.size(), 1u);
  EXPECT_GE(records_[0].duration_s, 0.0);
}

TEST_F(AssemblerTest, CountsEmitted) {
  for (std::uint16_t i = 0; i < 50; ++i) {
    const auto t = Tuple(1, static_cast<std::uint16_t>(40000 + i));
    assembler_.Ingest({i, EventKind::kOpen, t, 0, 0});
    assembler_.Ingest({i + 100u, EventKind::kClose, t, 0, 0});
  }
  EXPECT_EQ(assembler_.records_emitted(), 50u);
}

}  // namespace
}  // namespace lockdown::flow
