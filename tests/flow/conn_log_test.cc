#include "flow/conn_log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace lockdown::flow {
namespace {

FlowRecord MakeRecord() {
  FlowRecord r;
  r.start = 1580546400;
  r.duration_s = 12.5;
  r.client_ip = net::Ipv4Address(10, 1, 2, 3);
  r.server_ip = net::Ipv4Address(64, 0, 0, 7);
  r.server_port = 443;
  r.proto = net::Protocol::kTcp;
  r.bytes_up = 1234;
  r.bytes_down = 987654;
  return r;
}

TEST(ConnLog, RoundTrip) {
  std::vector<FlowRecord> in = {MakeRecord()};
  in.push_back(MakeRecord());
  in[1].proto = net::Protocol::kUdp;
  in[1].server_port = 8801;

  std::ostringstream out;
  WriteConnLog(out, in);
  const auto parsed = ReadConnLog(out.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].start, in[0].start);
  EXPECT_DOUBLE_EQ((*parsed)[0].duration_s, in[0].duration_s);
  EXPECT_EQ((*parsed)[0].client_ip, in[0].client_ip);
  EXPECT_EQ((*parsed)[0].server_ip, in[0].server_ip);
  EXPECT_EQ((*parsed)[0].bytes_down, in[0].bytes_down);
  EXPECT_EQ((*parsed)[1].proto, net::Protocol::kUdp);
  EXPECT_EQ((*parsed)[1].server_port, 8801);
}

TEST(ConnLog, EmptyLog) {
  std::ostringstream out;
  WriteConnLog(out, {});
  const auto parsed = ReadConnLog(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(ConnLog, RejectsMissingHeader) {
  EXPECT_FALSE(ReadConnLog("1\t2\t10.0.0.1\t8.8.8.8\t443\ttcp\t1\t2\n").has_value());
}

TEST(ConnLog, RejectsMalformedRow) {
  std::ostringstream out;
  WriteConnLog(out, {MakeRecord()});
  std::string text = out.str();
  text += "not\ta\tvalid\trow\n";
  EXPECT_FALSE(ReadConnLog(text).has_value());
}

TEST(ConnLog, RejectsBadPort) {
  std::ostringstream out;
  WriteConnLog(out, {});
  std::string text = out.str();
  text += "1\t2\t10.0.0.1\t8.8.8.8\t70000\ttcp\t1\t2\n";
  EXPECT_FALSE(ReadConnLog(text).has_value());
}

TEST(ConnLog, RejectsUnknownProto) {
  std::ostringstream out;
  WriteConnLog(out, {});
  std::string text = out.str();
  text += "1\t2\t10.0.0.1\t8.8.8.8\t443\tsctp\t1\t2\n";
  EXPECT_FALSE(ReadConnLog(text).has_value());
}

TEST(ConnLog, SkipsBlankLines) {
  std::ostringstream out;
  WriteConnLog(out, {MakeRecord()});
  const std::string text = out.str() + "\n\n";
  const auto parsed = ReadConnLog(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

}  // namespace
}  // namespace lockdown::flow
