#include "dhcp/normalizer.h"

#include <gtest/gtest.h>

#include "dhcp/server.h"
#include "util/rng.h"

namespace lockdown::dhcp {
namespace {

using util::kSecondsPerHour;

TEST(IpToMacNormalizer, BasicLookup) {
  const net::Ipv4Address ip(10, 0, 0, 5);
  const std::vector<Lease> log = {
      {net::MacAddress(0xA), ip, 100, 200},
  };
  IpToMacNormalizer n(log);
  EXPECT_EQ(n.Lookup(ip, 100), net::MacAddress(0xA));
  EXPECT_EQ(n.Lookup(ip, 150), net::MacAddress(0xA));
  EXPECT_EQ(n.Lookup(ip, 199), net::MacAddress(0xA));
}

TEST(IpToMacNormalizer, IntervalBoundsAreHalfOpen) {
  const net::Ipv4Address ip(10, 0, 0, 5);
  const std::vector<Lease> log = {{net::MacAddress(0xA), ip, 100, 200}};
  IpToMacNormalizer n(log);
  EXPECT_FALSE(n.Lookup(ip, 99).has_value());
  EXPECT_FALSE(n.Lookup(ip, 200).has_value());
}

TEST(IpToMacNormalizer, UnknownIp) {
  IpToMacNormalizer n(std::vector<Lease>{});
  EXPECT_FALSE(n.Lookup(net::Ipv4Address(1, 2, 3, 4), 0).has_value());
  EXPECT_EQ(n.num_ips(), 0u);
}

TEST(IpToMacNormalizer, IpReuseAcrossDevices) {
  // The case the normalizer exists for: the same dynamic address held by
  // different MACs at different times.
  const net::Ipv4Address ip(10, 0, 0, 9);
  const std::vector<Lease> log = {
      {net::MacAddress(0xA), ip, 0, 100},
      {net::MacAddress(0xB), ip, 100, 250},
      {net::MacAddress(0xC), ip, 400, 500},
  };
  IpToMacNormalizer n(log);
  EXPECT_EQ(n.Lookup(ip, 50), net::MacAddress(0xA));
  EXPECT_EQ(n.Lookup(ip, 100), net::MacAddress(0xB));
  EXPECT_EQ(n.Lookup(ip, 249), net::MacAddress(0xB));
  EXPECT_FALSE(n.Lookup(ip, 300).has_value());  // gap between leases
  EXPECT_EQ(n.Lookup(ip, 450), net::MacAddress(0xC));
}

TEST(IpToMacNormalizer, UnsortedLogInput) {
  const net::Ipv4Address ip(10, 0, 0, 9);
  const std::vector<Lease> log = {
      {net::MacAddress(0xC), ip, 400, 500},
      {net::MacAddress(0xA), ip, 0, 100},
      {net::MacAddress(0xB), ip, 100, 250},
  };
  IpToMacNormalizer n(log);
  EXPECT_EQ(n.Lookup(ip, 50), net::MacAddress(0xA));
  EXPECT_EQ(n.Lookup(ip, 450), net::MacAddress(0xC));
}

TEST(IpToMacNormalizer, MatchesLinearReferenceOnChurnedLog) {
  // Property check: index lookups agree with the brute-force reference on a
  // realistic churned DHCP log with address recycling.
  ServerConfig cfg;
  cfg.lease_lifetime = 2 * kSecondsPerHour;
  cfg.renew_same_ip_prob = 0.6;
  Server server({net::Cidr(net::Ipv4Address(10, 0, 0, 0), 25)}, cfg,
                util::Pcg32(3));
  util::Pcg32 rng(5);
  for (util::Timestamp t = 0; t < 20 * 24 * kSecondsPerHour; t += kSecondsPerHour) {
    for (std::uint64_t m = 1; m <= 40; ++m) {
      if (rng.Bernoulli(0.25)) (void)server.Acquire(net::MacAddress(m), t);
    }
  }
  IpToMacNormalizer n(server.log());
  util::Pcg32 qrng(11);
  for (int q = 0; q < 2000; ++q) {
    const net::Ipv4Address ip(10, 0, 0,
                              static_cast<std::uint8_t>(qrng.NextBounded(128)));
    const util::Timestamp ts = qrng.UniformInt(0, 20 * 24 * kSecondsPerHour);
    EXPECT_EQ(n.Lookup(ip, ts), IpToMacNormalizer::LookupLinear(server.log(), ip, ts))
        << ip.ToString() << " @ " << ts;
  }
}

}  // namespace
}  // namespace lockdown::dhcp
