#include "dhcp/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "util/time.h"

namespace lockdown::dhcp {
namespace {

using util::kSecondsPerHour;

Server MakeServer(ServerConfig config = {}) {
  return Server({net::Cidr(net::Ipv4Address(10, 0, 0, 0), 16)}, config,
                util::Pcg32(42));
}

TEST(DhcpServer, FirstAcquireAssignsAddress) {
  Server s = MakeServer();
  const net::MacAddress mac(0x111111111111ULL);
  const net::Ipv4Address ip = s.Acquire(mac, 1000);
  EXPECT_NE(ip.value(), 0u);
  ASSERT_EQ(s.log().size(), 1u);
  EXPECT_EQ(s.log()[0].mac, mac);
  EXPECT_EQ(s.log()[0].ip, ip);
  EXPECT_EQ(s.log()[0].start, 1000);
}

TEST(DhcpServer, RenewalWithinLeaseKeepsAddressAndExtends) {
  ServerConfig cfg;
  cfg.lease_lifetime = 6 * kSecondsPerHour;
  Server s = MakeServer(cfg);
  const net::MacAddress mac(0x1ULL);
  const net::Ipv4Address ip1 = s.Acquire(mac, 0);
  const net::Ipv4Address ip2 = s.Acquire(mac, 3 * kSecondsPerHour);
  EXPECT_EQ(ip1, ip2);
  ASSERT_EQ(s.log().size(), 1u);  // extended in place, not re-logged
  EXPECT_EQ(s.log()[0].end, 9 * kSecondsPerHour);
}

TEST(DhcpServer, DistinctMacsGetDistinctLiveAddresses) {
  Server s = MakeServer();
  const net::Ipv4Address a = s.Acquire(net::MacAddress(1), 0);
  const net::Ipv4Address b = s.Acquire(net::MacAddress(2), 0);
  const net::Ipv4Address c = s.Acquire(net::MacAddress(3), 0);
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(a, c);
}

TEST(DhcpServer, ExpiredLeaseMayRebindToNewAddress) {
  ServerConfig cfg;
  cfg.lease_lifetime = kSecondsPerHour;
  cfg.renew_same_ip_prob = 0.0;  // force re-binding
  Server s = MakeServer(cfg);
  const net::MacAddress mac(0x5ULL);
  const net::Ipv4Address ip1 = s.Acquire(mac, 0);
  const net::Ipv4Address ip2 = s.Acquire(mac, 10 * kSecondsPerHour);
  EXPECT_NE(ip1, ip2);
  EXPECT_EQ(s.log().size(), 2u);
}

TEST(DhcpServer, ExpiredLeaseUsuallyKeepsAddress) {
  ServerConfig cfg;
  cfg.lease_lifetime = kSecondsPerHour;
  cfg.renew_same_ip_prob = 1.0;
  Server s = MakeServer(cfg);
  const net::MacAddress mac(0x6ULL);
  const net::Ipv4Address ip1 = s.Acquire(mac, 0);
  const net::Ipv4Address ip2 = s.Acquire(mac, 10 * kSecondsPerHour);
  EXPECT_EQ(ip1, ip2);
  // Same address but a fresh binding entry (there was a coverage gap).
  EXPECT_EQ(s.log().size(), 2u);
}

TEST(DhcpServer, RecyclesFreedAddresses) {
  ServerConfig cfg;
  cfg.lease_lifetime = kSecondsPerHour;
  cfg.renew_same_ip_prob = 0.0;
  Server s = MakeServer(cfg);
  const net::Ipv4Address first = s.Acquire(net::MacAddress(1), 0);
  // Device 1 re-binds; its old address goes on the free list.
  (void)s.Acquire(net::MacAddress(1), 10 * kSecondsPerHour);
  // A new device should pick up the recycled address.
  const net::Ipv4Address second = s.Acquire(net::MacAddress(2), 11 * kSecondsPerHour);
  EXPECT_EQ(second, first);
}

TEST(DhcpServer, LogIntervalsForSameIpNeverOverlap) {
  ServerConfig cfg;
  cfg.lease_lifetime = 2 * kSecondsPerHour;
  cfg.renew_same_ip_prob = 0.5;
  Server s(std::vector<net::Cidr>{net::Cidr(net::Ipv4Address(10, 0, 0, 0), 26)},
           cfg, util::Pcg32(7));
  util::Pcg32 rng(99);
  // Churn 30 devices over simulated days against a tiny /26 pool.
  for (util::Timestamp t = 0; t < 40 * 24 * kSecondsPerHour;
       t += kSecondsPerHour) {
    for (std::uint64_t m = 1; m <= 30; ++m) {
      if (rng.Bernoulli(0.3)) (void)s.Acquire(net::MacAddress(m), t);
    }
  }
  std::map<std::uint32_t, std::vector<Lease>> by_ip;
  for (const Lease& l : s.log()) by_ip[l.ip.value()].push_back(l);
  for (auto& [ip, leases] : by_ip) {
    std::sort(leases.begin(), leases.end(),
              [](const Lease& a, const Lease& b) { return a.start < b.start; });
    for (std::size_t i = 1; i < leases.size(); ++i) {
      EXPECT_LE(leases[i - 1].end, leases[i].start)
          << "overlap on ip " << net::Ipv4Address(ip).ToString();
    }
  }
}

TEST(DhcpServer, ThrowsWithNoPools) {
  EXPECT_THROW(Server({}, ServerConfig{}, util::Pcg32(1)), std::invalid_argument);
}

TEST(DhcpServer, CountsClients) {
  Server s = MakeServer();
  (void)s.Acquire(net::MacAddress(1), 0);
  (void)s.Acquire(net::MacAddress(2), 0);
  (void)s.Acquire(net::MacAddress(1), 10);
  EXPECT_EQ(s.num_clients(), 2u);
}

}  // namespace
}  // namespace lockdown::dhcp
