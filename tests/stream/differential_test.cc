// Differential convergence proofs: the streaming engine against the batch
// study, figure by figure, with the error taxonomy streaming_study.h states.
//
//   exact       integer-byte aggregates (fig 2 means, 5, 8, categories,
//               headline traffic increase) — EXPECT_EQ on the doubles
//   exact-if-   sampled median/box figures (2, 3, 4, 6, 7) whenever no
//   unsampled   reservoir evicted (report.reservoirs_exact) — EXPECT_EQ
//   bounded     HLL cardinalities within 4 standard errors; count-min
//               estimates one-sided and within epsilon * total for all but
//               a delta fraction of domains
//   tolerance   the diurnal shape (fractional sums in a different order)
//
// The same contract must hold on a dataset ingested through the tolerant
// path after deterministic fault injection: faults change *which* flows
// exist, never the batch/streaming agreement on them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "core/offline.h"
#include "core/pipeline.h"
#include "core/study.h"
#include "stream/streaming_study.h"
#include "util/fault.h"
#include "world/catalog.h"

namespace lockdown::stream {
namespace {

namespace fs = std::filesystem;

const core::CollectionResult& Collected() {
  static const core::CollectionResult result =
      core::MeasurementPipeline::Collect(core::StudyConfig::Small(60, 2020));
  return result;
}

void ExpectBoxEqual(const analysis::BoxStats& batch,
                    const analysis::BoxStats& streaming, const char* what) {
  EXPECT_EQ(batch.n, streaming.n) << what;
  EXPECT_EQ(batch.p1, streaming.p1) << what;
  EXPECT_EQ(batch.q1, streaming.q1) << what;
  EXPECT_EQ(batch.median, streaming.median) << what;
  EXPECT_EQ(batch.q3, streaming.q3) << what;
  EXPECT_EQ(batch.p95, streaming.p95) << what;
  EXPECT_EQ(batch.p99, streaming.p99) << what;
  EXPECT_EQ(batch.mean, streaming.mean) << what;
}

// Every figure comparison between one batch study and one streaming engine
// over the same dataset. Requires an unsampled run (reservoirs_exact) so the
// sampled figures are checked with exact equality.
void ExpectConverged(const core::LockdownStudy& batch,
                     const StreamingStudy& streaming) {
  const auto report = streaming.Accuracy();
  ASSERT_TRUE(report.reservoirs_exact)
      << "population outgrew the reservoirs; raise the test budget";
  ASSERT_LE(report.state_bytes, report.budget_bytes);

  // Figure 1: HLL estimates within 4 standard errors of the exact counts.
  const double rse = report.hll_relative_standard_error;
  const auto f1b = batch.ActiveDevicesPerDay();
  const auto f1s = streaming.ActiveDevicesPerDay();
  ASSERT_EQ(f1b.size(), f1s.size());
  for (std::size_t i = 0; i < f1b.size(); ++i) {
    for (std::size_t c = 0; c < f1b[i].by_class.size(); ++c) {
      const double exact = f1b[i].by_class[c];
      EXPECT_NEAR(f1s[i].by_class[c], exact, 4.0 * rse * exact + 1.0)
          << "fig1 day " << i << " class " << c;
    }
    EXPECT_NEAR(f1s[i].total, static_cast<double>(f1b[i].total),
                4.0 * rse * f1b[i].total + 2.0)
        << "fig1 day " << i;
  }

  // Figure 2: means exact (integer sums), medians exact (unsampled).
  const auto f2b = batch.BytesPerDevicePerDay();
  const auto f2s = streaming.BytesPerDevicePerDay();
  ASSERT_EQ(f2b.size(), f2s.size());
  for (std::size_t i = 0; i < f2b.size(); ++i) {
    EXPECT_EQ(f2b[i].mean, f2s[i].mean) << "fig2 day " << i;
    EXPECT_EQ(f2b[i].median, f2s[i].median) << "fig2 day " << i;
  }

  // Figure 3: per-device hourly volumes accumulate in flow order on both
  // sides, so the unsampled medians and the normalization match exactly.
  const auto f3b = batch.HourOfWeekVolume();
  const auto f3s = streaming.HourOfWeekVolume();
  EXPECT_EQ(f3b.normalization, f3s.normalization);
  for (std::size_t w = 0; w < 4; ++w) {
    for (int h = 0; h < analysis::HourOfWeekSeries::kHours; ++h) {
      EXPECT_EQ(f3b.weeks[w].at(h), f3s.weeks[w].at(h))
          << "fig3 week " << w << " hour " << h;
    }
  }

  // Figure 4.
  const auto f4b = batch.MedianBytesExcludingZoom();
  const auto f4s = streaming.MedianBytesExcludingZoom();
  ASSERT_EQ(f4b.size(), f4s.size());
  for (std::size_t i = 0; i < f4b.size(); ++i) {
    EXPECT_EQ(f4b[i].intl_mobile_desktop, f4s[i].intl_mobile_desktop) << i;
    EXPECT_EQ(f4b[i].dom_mobile_desktop, f4s[i].dom_mobile_desktop) << i;
    EXPECT_EQ(f4b[i].intl_unclassified, f4s[i].intl_unclassified) << i;
    EXPECT_EQ(f4b[i].dom_unclassified, f4s[i].dom_unclassified) << i;
  }

  // Figures 5 and 8: exact integer-byte daily series.
  const auto zb = batch.ZoomDailyBytes();
  const auto zs = streaming.ZoomDailyBytes();
  ASSERT_EQ(zb.num_days(), zs.num_days());
  for (int d = 0; d < zb.num_days(); ++d) {
    EXPECT_EQ(zb.at(d), zs.at(d)) << "fig5 day " << d;
  }
  const auto gb = batch.SwitchGameplayDaily();
  const auto gs = streaming.SwitchGameplayDaily();
  ASSERT_EQ(gb.num_days(), gs.num_days());
  for (int d = 0; d < gb.num_days(); ++d) {
    EXPECT_EQ(gb.at(d), gs.at(d)) << "fig8 day " << d;
  }
  const auto cb = batch.CountSwitches();
  const auto cs = streaming.CountSwitches();
  EXPECT_EQ(cb.active_february, cs.active_february);
  EXPECT_EQ(cb.active_post_shutdown, cs.active_post_shutdown);
  EXPECT_EQ(cb.new_in_april_may, cs.new_in_april_may);

  // Figures 6 and 7: box statistics over the sampled populations.
  for (int month = 2; month <= 5; ++month) {
    for (const auto app : {apps::SocialApp::kFacebook,
                           apps::SocialApp::kInstagram, apps::SocialApp::kTikTok}) {
      const auto sb = batch.SocialDurations(app, month);
      const auto ss = streaming.SocialDurations(app, month);
      ExpectBoxEqual(sb.domestic, ss.domestic, "fig6 domestic");
      ExpectBoxEqual(sb.international, ss.international, "fig6 international");
    }
    const auto tb = batch.SteamUsage(month);
    const auto ts = streaming.SteamUsage(month);
    ExpectBoxEqual(tb.dom_bytes, ts.dom_bytes, "fig7 dom bytes");
    ExpectBoxEqual(tb.intl_bytes, ts.intl_bytes, "fig7 intl bytes");
    ExpectBoxEqual(tb.dom_conns, ts.dom_conns, "fig7 dom conns");
    ExpectBoxEqual(tb.intl_conns, ts.intl_conns, "fig7 intl conns");
  }

  // Category volumes: exact.
  const auto cvb = batch.CategoryVolumes();
  const auto cvs = streaming.CategoryVolumes();
  ASSERT_EQ(cvb.size(), cvs.size());
  for (std::size_t i = 0; i < cvb.size(); ++i) {
    EXPECT_EQ(cvb[i].education, cvs[i].education) << "categories day " << i;
    EXPECT_EQ(cvb[i].video_conferencing, cvs[i].video_conferencing) << i;
    EXPECT_EQ(cvb[i].streaming, cvs[i].streaming) << i;
    EXPECT_EQ(cvb[i].social_media, cvs[i].social_media) << i;
    EXPECT_EQ(cvb[i].gaming, cvs[i].gaming) << i;
    EXPECT_EQ(cvb[i].messaging, cvs[i].messaging) << i;
    EXPECT_EQ(cvb[i].other, cvs[i].other) << i;
  }

  // Diurnal shape: same fractional contributions, different summation order.
  for (const auto& [first, last] :
       {std::pair{0, 28}, std::pair{0, util::StudyCalendar::NumDays() - 1}}) {
    const auto db = batch.DiurnalShape(first, last);
    const auto dst = streaming.DiurnalShape(first, last);
    for (std::size_t h = 0; h < 24; ++h) {
      EXPECT_NEAR(db.weekday[h], dst.weekday[h], 1e-9) << "weekday hour " << h;
      EXPECT_NEAR(db.weekend[h], dst.weekend[h], 1e-9) << "weekend hour " << h;
    }
  }

  // Headline: census and byte ratios exact; device/site counts estimated.
  const auto hb = batch.HeadlineStats();
  const auto hs = streaming.HeadlineStats();
  EXPECT_EQ(hb.post_shutdown_users, hs.post_shutdown_users);
  EXPECT_EQ(hb.international_devices, hs.international_devices);
  EXPECT_EQ(hb.international_share, hs.international_share);
  EXPECT_EQ(hb.traffic_increase, hs.traffic_increase);
  EXPECT_NEAR(hs.peak_active_devices, hb.peak_active_devices,
              4.0 * rse * hb.peak_active_devices + 4.0);
  EXPECT_NEAR(hs.trough_active_devices, hb.trough_active_devices,
              4.0 * rse * hb.trough_active_devices + 4.0);
  EXPECT_NEAR(hs.distinct_sites_increase, hb.distinct_sites_increase, 0.1);
}

// Count-min: one-sided per domain, and within epsilon * total for all but
// (at most) a small-delta fraction of the vocabulary.
void ExpectDomainBytesBounded(const core::Dataset& ds,
                              const StreamingStudy& streaming) {
  std::unordered_map<core::DomainId, std::uint64_t> exact;
  std::uint64_t total = 0;
  for (const core::Flow& f : ds.flows()) {
    if (f.domain == core::kNoDomain) continue;
    exact[f.domain] += f.total_bytes();
    total += f.total_bytes();
  }
  const auto report = streaming.Accuracy();
  EXPECT_EQ(report.cms_total_bytes, total);
  const auto bound = static_cast<std::uint64_t>(report.cms_epsilon *
                                                static_cast<double>(total));
  std::size_t violations = 0;
  for (const auto& [domain, true_bytes] : exact) {
    const std::uint64_t est = streaming.EstimateDomainBytes(domain);
    ASSERT_GE(est, true_bytes) << "count-min undercounted domain " << domain;
    violations += est > true_bytes + bound;
  }
  const double delta_budget =
      2.0 * report.cms_delta * static_cast<double>(exact.size());
  EXPECT_LE(violations, std::max<std::size_t>(
                            2, static_cast<std::size_t>(delta_budget)));
}

TEST(StreamingDifferential, ConvergesToBatchOnCleanInputs) {
  const auto& collection = Collected();
  const auto& catalog = world::ServiceCatalog::Default();
  const core::LockdownStudy batch(collection.dataset, catalog);
  StreamingOptions options;
  options.memory_budget_bytes = std::size_t{64} << 20;
  const StreamingStudy streaming(collection.dataset, catalog, options);
  ExpectConverged(batch, streaming);
  ExpectDomainBytesBounded(collection.dataset, streaming);
}

TEST(StreamingDifferential, ConvergesAcrossSketchSeeds) {
  // The convergence contract cannot depend on a lucky hash seed: the exact
  // figures must be bit-identical under any sketch seed, and the estimated
  // ones must stay in bounds.
  const auto& collection = Collected();
  const auto& catalog = world::ServiceCatalog::Default();
  const core::LockdownStudy batch(collection.dataset, catalog);
  for (const std::uint64_t seed : {1ULL, 77ULL, 20200316ULL}) {
    SCOPED_TRACE(testing::Message() << "sketch seed " << seed);
    StreamingOptions options;
    options.memory_budget_bytes = std::size_t{64} << 20;
    options.sketch_seed = seed;
    const StreamingStudy streaming(collection.dataset, catalog, options);
    ExpectConverged(batch, streaming);
  }
}

// The fault-injected path: export the logs, corrupt conn.log with the
// deterministic injector, re-ingest tolerantly, and require the identical
// batch/streaming agreement on whatever survived.
TEST(StreamingDifferential, ConvergesUnderFaultInjection) {
  const auto config = core::StudyConfig::Small(45, 909);
  const fs::path dir = fs::temp_directory_path() /
                       ("lockdown_stream_fault_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  core::ExportLogs(config, dir);

  const fs::path conn = dir / core::LogFiles::kConn;
  std::ostringstream buffer;
  buffer << std::ifstream(conn).rdbuf();
  const util::FaultInjector injector({20200316, 0.01});
  const std::string dirty =
      injector.Apply(buffer.str(), util::FaultKind::kMixed);
  std::ofstream(conn, std::ios::trunc) << dirty;

  ingest::IngestOptions tolerant;
  tolerant.mode = ingest::Mode::kTolerant;
  tolerant.max_error_rate = 1.0;
  const auto collection = core::CollectFromLogs(dir, config, tolerant);
  fs::remove_all(dir);

  const auto& catalog = world::ServiceCatalog::Default();
  const core::LockdownStudy batch(collection.dataset, catalog);
  StreamingOptions options;
  options.memory_budget_bytes = std::size_t{64} << 20;
  const StreamingStudy streaming(collection.dataset, catalog, options);
  ExpectConverged(batch, streaming);
  ExpectDomainBytesBounded(collection.dataset, streaming);
}

}  // namespace
}  // namespace lockdown::stream
