// StreamingStudy engine invariants: bit-identical output at any thread
// count, sketch state held under the configured budget on a dataset several
// times larger than it, and a truthful accuracy report.
#include "stream/streaming_study.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "world/catalog.h"

namespace lockdown::stream {
namespace {

constexpr std::size_t kMiB = std::size_t{1} << 20;

const core::CollectionResult& Collected() {
  static const core::CollectionResult result =
      core::MeasurementPipeline::Collect(core::StudyConfig::Small(60, 2020));
  return result;
}

StreamingOptions WithThreads(int threads) {
  StreamingOptions options;
  options.threads = threads;
  return options;
}

// Bit-exact comparison of every streaming output (estimates included: the
// sketches must hold identical state regardless of thread count).
void ExpectStreamingIdentical(const StreamingStudy& a, const StreamingStudy& b) {
  const auto f1a = a.ActiveDevicesPerDay();
  const auto f1b = b.ActiveDevicesPerDay();
  ASSERT_EQ(f1a.size(), f1b.size());
  for (std::size_t i = 0; i < f1a.size(); ++i) {
    ASSERT_EQ(f1a[i].by_class, f1b[i].by_class) << "fig1 day " << i;
    ASSERT_EQ(f1a[i].total, f1b[i].total) << "fig1 day " << i;
  }

  const auto f2a = a.BytesPerDevicePerDay();
  const auto f2b = b.BytesPerDevicePerDay();
  ASSERT_EQ(f2a.size(), f2b.size());
  for (std::size_t i = 0; i < f2a.size(); ++i) {
    ASSERT_EQ(f2a[i].mean, f2b[i].mean) << "fig2 day " << i;
    ASSERT_EQ(f2a[i].median, f2b[i].median) << "fig2 day " << i;
  }

  const auto f3a = a.HourOfWeekVolume();
  const auto f3b = b.HourOfWeekVolume();
  ASSERT_EQ(f3a.normalization, f3b.normalization);
  for (std::size_t w = 0; w < 4; ++w) {
    for (int h = 0; h < analysis::HourOfWeekSeries::kHours; ++h) {
      ASSERT_EQ(f3a.weeks[w].at(h), f3b.weeks[w].at(h))
          << "fig3 week " << w << " hour " << h;
    }
  }

  const auto f4a = a.MedianBytesExcludingZoom();
  const auto f4b = b.MedianBytesExcludingZoom();
  ASSERT_EQ(f4a.size(), f4b.size());
  for (std::size_t i = 0; i < f4a.size(); ++i) {
    ASSERT_EQ(f4a[i].intl_mobile_desktop, f4b[i].intl_mobile_desktop);
    ASSERT_EQ(f4a[i].dom_mobile_desktop, f4b[i].dom_mobile_desktop);
    ASSERT_EQ(f4a[i].intl_unclassified, f4b[i].intl_unclassified);
    ASSERT_EQ(f4a[i].dom_unclassified, f4b[i].dom_unclassified);
  }

  const auto zda = a.ZoomDailyBytes();
  const auto zdb = b.ZoomDailyBytes();
  for (int d = 0; d < zda.num_days(); ++d) ASSERT_EQ(zda.at(d), zdb.at(d));
  const auto swa = a.SwitchGameplayDaily();
  const auto swb = b.SwitchGameplayDaily();
  for (int d = 0; d < swa.num_days(); ++d) ASSERT_EQ(swa.at(d), swb.at(d));
  EXPECT_EQ(a.CountSwitches().active_february, b.CountSwitches().active_february);

  for (int month = 2; month <= 5; ++month) {
    for (const auto app : {apps::SocialApp::kFacebook,
                           apps::SocialApp::kInstagram, apps::SocialApp::kTikTok}) {
      const auto sa = a.SocialDurations(app, month);
      const auto sb = b.SocialDurations(app, month);
      ASSERT_EQ(sa.domestic.n, sb.domestic.n);
      ASSERT_EQ(sa.domestic.median, sb.domestic.median);
      ASSERT_EQ(sa.domestic.mean, sb.domestic.mean);
      ASSERT_EQ(sa.international.n, sb.international.n);
      ASSERT_EQ(sa.international.median, sb.international.median);
    }
    const auto sta = a.SteamUsage(month);
    const auto stb = b.SteamUsage(month);
    ASSERT_EQ(sta.dom_bytes.n, stb.dom_bytes.n);
    ASSERT_EQ(sta.dom_bytes.median, stb.dom_bytes.median);
    ASSERT_EQ(sta.intl_conns.mean, stb.intl_conns.mean);
  }

  const auto cva = a.CategoryVolumes();
  const auto cvb = b.CategoryVolumes();
  ASSERT_EQ(cva.size(), cvb.size());
  for (std::size_t i = 0; i < cva.size(); ++i) {
    ASSERT_EQ(cva[i].education, cvb[i].education) << "categories day " << i;
    ASSERT_EQ(cva[i].streaming, cvb[i].streaming) << "categories day " << i;
    ASSERT_EQ(cva[i].other, cvb[i].other) << "categories day " << i;
  }

  // Diurnal: the per-chunk fold order is fixed by the dataset size, not the
  // thread count, so even the fractional sums must match exactly.
  const auto da = a.DiurnalShape(0, util::StudyCalendar::NumDays() - 1);
  const auto db = b.DiurnalShape(0, util::StudyCalendar::NumDays() - 1);
  ASSERT_EQ(da.weekday, db.weekday);
  ASSERT_EQ(da.weekend, db.weekend);

  const auto ha = a.HeadlineStats();
  const auto hb = b.HeadlineStats();
  EXPECT_EQ(ha.peak_active_devices, hb.peak_active_devices);
  EXPECT_EQ(ha.trough_active_devices, hb.trough_active_devices);
  EXPECT_EQ(ha.traffic_increase, hb.traffic_increase);
  EXPECT_EQ(ha.distinct_sites_increase, hb.distinct_sites_increase);

  for (core::DomainId d = 0; d < a.context().dataset().num_domains(); ++d) {
    ASSERT_EQ(a.EstimateDomainBytes(d), b.EstimateDomainBytes(d))
        << "domain " << d;
  }
}

TEST(StreamingStudy, BitIdenticalAcrossThreadCounts) {
  const auto& collection = Collected();
  const auto& catalog = world::ServiceCatalog::Default();
  const StreamingStudy serial(collection.dataset, catalog, WithThreads(1));
  for (const int threads : {2, 3, 8}) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    const StreamingStudy par(collection.dataset, catalog, WithThreads(threads));
    ExpectStreamingIdentical(serial, par);
  }
}

TEST(StreamingStudy, BudgetBelowFloorThrows) {
  const auto& collection = Collected();
  StreamingOptions options;
  options.memory_budget_bytes = kMiB;  // below the ~1.5 MiB floor
  EXPECT_THROW(
      StreamingStudy(collection.dataset, world::ServiceCatalog::Default(),
                     options),
      std::invalid_argument);
}

TEST(StreamingStudy, AccuracyReportIsTruthful) {
  const auto& collection = Collected();
  const StreamingStudy study(collection.dataset,
                             world::ServiceCatalog::Default(), {});
  const auto report = study.Accuracy();
  EXPECT_EQ(report.hll_precision, study.plan().hll_precision);
  EXPECT_DOUBLE_EQ(report.hll_relative_standard_error,
                   study.plan().HllRelativeStandardError());
  EXPECT_DOUBLE_EQ(report.cms_epsilon, study.plan().CmsEpsilon());
  EXPECT_GT(report.cms_total_bytes, 0u);
  EXPECT_EQ(report.reservoir_capacity, study.plan().reservoir_capacity);
  EXPECT_EQ(report.state_bytes, study.TrackedStateBytes());
  EXPECT_EQ(report.budget_bytes, study.plan().budget_bytes);
  EXPECT_LE(report.state_bytes, report.budget_bytes);
}

// A synthetic dataset several times the budget: 600 devices x 350 flows
// (~8.4 MB of flow records) against a 2 MiB budget. The engine's tracked
// sketch state must stay under the budget — the whole point of streaming.
core::Dataset SyntheticLargeDataset() {
  core::Dataset ds;
  std::vector<core::DomainId> domains;
  for (int i = 0; i < 200; ++i) {
    domains.push_back(ds.InternDomain("svc" + std::to_string(i) + ".example"));
  }
  constexpr int kDevices = 600;
  constexpr int kFlowsPerDevice = 350;
  for (int d = 0; d < kDevices; ++d) {
    const core::DeviceIndex dev =
        ds.AddDevice(privacy::DeviceId{static_cast<std::uint64_t>(d) + 1});
    for (int i = 0; i < kFlowsPerDevice; ++i) {
      core::Flow f;
      const int day = (d + i * 7) % util::StudyCalendar::NumDays();
      f.start_offset_s = static_cast<std::uint32_t>(day) * 86400U +
                         static_cast<std::uint32_t>((i * 613) % 86000);
      f.duration_s = 30.0F + static_cast<float>(i % 900);
      f.device = dev;
      f.domain = domains[static_cast<std::size_t>((d + i) % 200)];
      f.server_ip = net::Ipv4Address{0x0A000000U + static_cast<std::uint32_t>(i)};
      f.bytes_up = 1000 + static_cast<std::uint64_t>(i) * 17;
      f.bytes_down = 50000 + static_cast<std::uint64_t>(d) * 31;
      ds.AddFlow(f);
    }
  }
  ds.Finalize();
  return ds;
}

TEST(StreamingStudy, StateStaysUnderBudgetOnDatasetFourTimesLarger) {
  const core::Dataset ds = SyntheticLargeDataset();
  constexpr std::size_t kBudget = 2 * kMiB;
  ASSERT_GE(ds.num_flows() * sizeof(core::Flow), 4 * kBudget)
      << "test dataset no longer exercises the memory bound";
  StreamingOptions options;
  options.memory_budget_bytes = kBudget;
  const StreamingStudy study(ds, world::ServiceCatalog::Default(), options);
  const auto report = study.Accuracy();
  EXPECT_LE(study.TrackedStateBytes(), kBudget);
  EXPECT_LE(report.state_bytes, report.budget_bytes);
  // The population (600 devices/day) exceeds the floor reservoir capacity,
  // so the engine must be honest about having sampled.
  EXPECT_FALSE(report.reservoirs_exact);
  // Figures still answer: estimates exist for every day with traffic.
  const auto rows = study.BytesPerDevicePerDay();
  std::size_t days_with_traffic = 0;
  for (const auto& row : rows) {
    for (double m : row.mean) days_with_traffic += m > 0.0;
  }
  EXPECT_GT(days_with_traffic, 0u);
}

}  // namespace
}  // namespace lockdown::stream
