// MemoryPlan unit tests: dial derivation, clamping, the a-priori accuracy
// formulas, and rejection of budgets below the floor configuration.
#include "stream/budget.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace lockdown::stream {
namespace {

constexpr std::size_t kMiB = std::size_t{1} << 20;

TEST(MemoryPlan, DefaultBudgetGivesUsefulDials) {
  const MemoryPlan plan = MemoryPlan::ForBudget(32 * kMiB);
  EXPECT_EQ(plan.budget_bytes, 32 * kMiB);
  EXPECT_GE(plan.hll_precision, MemoryPlan::kMinPrecision);
  EXPECT_LE(plan.hll_precision, MemoryPlan::kMaxPrecision);
  EXPECT_GE(plan.reservoir_capacity, MemoryPlan::kMinReservoirCapacity);
  EXPECT_LE(plan.reservoir_capacity, MemoryPlan::kMaxReservoirCapacity);
  EXPECT_GE(plan.cms_width, MemoryPlan::kMinCmsWidth);
  EXPECT_LE(plan.cms_width, MemoryPlan::kMaxCmsWidth);
  EXPECT_EQ(plan.cms_depth, 4u);
  EXPECT_LE(plan.EstimatedSketchBytes(), plan.budget_bytes);
}

TEST(MemoryPlan, DialsAreMonotoneInBudget) {
  MemoryPlan prev = MemoryPlan::ForBudget(2 * kMiB);
  for (const std::size_t mib : {4, 8, 16, 32, 64, 128, 256}) {
    const MemoryPlan plan = MemoryPlan::ForBudget(mib * kMiB);
    EXPECT_GE(plan.hll_precision, prev.hll_precision) << mib << " MiB";
    EXPECT_GE(plan.reservoir_capacity, prev.reservoir_capacity) << mib << " MiB";
    EXPECT_GE(plan.cms_width, prev.cms_width) << mib << " MiB";
    EXPECT_LE(plan.EstimatedSketchBytes(), plan.budget_bytes) << mib << " MiB";
    prev = plan;
  }
}

TEST(MemoryPlan, HugeBudgetHitsTheCaps) {
  const MemoryPlan plan = MemoryPlan::ForBudget(std::size_t{8} << 30);
  EXPECT_EQ(plan.hll_precision, MemoryPlan::kMaxPrecision);
  EXPECT_EQ(plan.reservoir_capacity, MemoryPlan::kMaxReservoirCapacity);
  EXPECT_EQ(plan.cms_width, MemoryPlan::kMaxCmsWidth);
}

TEST(MemoryPlan, FloorBudgetHitsTheFloors) {
  const MemoryPlan plan = MemoryPlan::ForBudget(2 * kMiB);
  EXPECT_EQ(plan.reservoir_capacity, MemoryPlan::kMinReservoirCapacity);
  EXPECT_LE(plan.EstimatedSketchBytes(), plan.budget_bytes);
}

TEST(MemoryPlan, BudgetBelowFloorThrows) {
  EXPECT_THROW((void)MemoryPlan::ForBudget(0), std::invalid_argument);
  EXPECT_THROW((void)MemoryPlan::ForBudget(kMiB), std::invalid_argument);
}

TEST(MemoryPlan, AccuracyFormulas) {
  const MemoryPlan plan = MemoryPlan::ForBudget(32 * kMiB);
  const double m = std::pow(2.0, plan.hll_precision);
  EXPECT_DOUBLE_EQ(plan.HllRelativeStandardError(), 1.04 / std::sqrt(m));
  EXPECT_DOUBLE_EQ(plan.CmsEpsilon(),
                   std::exp(1.0) / static_cast<double>(plan.cms_width));
  EXPECT_DOUBLE_EQ(plan.CmsDelta(),
                   std::exp(-static_cast<double>(plan.cms_depth)));
  // The dials buy sub-2% error at the default budget.
  EXPECT_LT(plan.HllRelativeStandardError(), 0.02);
  EXPECT_LT(plan.CmsEpsilon(), 0.001);
  EXPECT_LT(plan.CmsDelta(), 0.02);
}

}  // namespace
}  // namespace lockdown::stream
