#include <gtest/gtest.h>

#include <sstream>

#include "logs/dhcp_log.h"
#include "logs/dns_log.h"
#include "logs/ua_log.h"

namespace lockdown::logs {
namespace {

TEST(DhcpLog, RoundTrip) {
  std::vector<dhcp::Lease> leases = {
      {net::MacAddress(0xA483E7000001ULL), net::Ipv4Address(10, 0, 0, 1), 100, 200},
      {net::MacAddress(0x02DEADBEEF01ULL), net::Ipv4Address(10, 0, 3, 77), 150, 900},
  };
  std::ostringstream out;
  WriteDhcpLog(out, leases);
  const auto parsed = ReadDhcpLog(out.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], leases[0]);
  EXPECT_EQ((*parsed)[1], leases[1]);
}

TEST(DhcpLog, RejectsMalformed) {
  EXPECT_FALSE(ReadDhcpLog("no header\n").has_value());
  EXPECT_FALSE(
      ReadDhcpLog("start\tend\tmac\tip\n1\t2\tnot-a-mac\t10.0.0.1\n").has_value());
  EXPECT_FALSE(
      ReadDhcpLog("start\tend\tmac\tip\n1\t2\taa:bb:cc:dd:ee:ff\n").has_value());
}

TEST(DhcpLog, EmptyLog) {
  std::ostringstream out;
  WriteDhcpLog(out, {});
  const auto parsed = ReadDhcpLog(out.str());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->empty());
}

TEST(DnsLog, RoundTrip) {
  std::vector<dns::Resolution> log = {
      {1000, net::MacAddress(1), "zoom.us", net::Ipv4Address(64, 1, 2, 3), 3600},
      {2000, net::MacAddress(2), "www.us-site-003.net", net::Ipv4Address(64, 9, 9, 9),
       300},
  };
  std::ostringstream out;
  WriteDnsLog(out, log);
  const auto parsed = ReadDnsLog(out.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0].qname, "zoom.us");
  EXPECT_EQ((*parsed)[0].answer, log[0].answer);
  EXPECT_EQ((*parsed)[1].ttl, 300);
  EXPECT_EQ((*parsed)[1].client, net::MacAddress(2));
}

TEST(DnsLog, RejectsMalformed) {
  EXPECT_FALSE(ReadDnsLog("bogus\n").has_value());
  EXPECT_FALSE(ReadDnsLog("ts\tclient\tqname\tanswer\tttl\n"
                          "x\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60\n")
                   .has_value());
  EXPECT_FALSE(ReadDnsLog("ts\tclient\tqname\tanswer\tttl\n"
                          "1\taa:bb:cc:dd:ee:ff\t\t1.2.3.4\t60\n")
                   .has_value());
}

TEST(UaLog, RoundTrip) {
  std::vector<UaRecord> records = {
      {500, net::Ipv4Address(10, 1, 1, 1),
       "Mozilla/5.0 (iPhone; CPU iPhone OS 13_3_1 like Mac OS X)"},
  };
  std::ostringstream out;
  WriteUaLog(out, records);
  const auto parsed = ReadUaLog(out.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].ts, 500);
  EXPECT_EQ((*parsed)[0].client_ip, records[0].client_ip);
  EXPECT_EQ((*parsed)[0].user_agent, records[0].user_agent);
}

TEST(UaLog, SanitizesTabsInAgents) {
  std::vector<UaRecord> records = {
      {1, net::Ipv4Address(10, 0, 0, 1), "bad\tagent\nstring"}};
  std::ostringstream out;
  WriteUaLog(out, records);
  const auto parsed = ReadUaLog(out.str());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].user_agent, "bad agent string");
}

TEST(UaLog, RejectsMalformed) {
  EXPECT_FALSE(ReadUaLog("nope\n").has_value());
  EXPECT_FALSE(ReadUaLog("ts\tclient\tuser_agent\n1\t10.0.0.1\n").has_value());
}

}  // namespace
}  // namespace lockdown::logs
