// Property tests for the three TSV log formats (logs/{dhcp,dns,ua}_log):
// randomized round-trips over many seeds, and systematic malformed-input
// checks — truncated rows, embedded tabs (which shift the field count),
// non-numeric and out-of-range timestamps, bad addresses. The parsers'
// contract is all-or-nothing: any bad row rejects the whole document with
// nullopt, and no input may crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "logs/dhcp_log.h"
#include "logs/dns_log.h"
#include "logs/ua_log.h"
#include "util/strings.h"

namespace lockdown::logs {
namespace {

constexpr int kTrials = 25;

net::Ipv4Address RandomIp(std::mt19937_64& rng) {
  return net::Ipv4Address(static_cast<std::uint32_t>(rng()));
}

net::MacAddress RandomMac(std::mt19937_64& rng) {
  return net::MacAddress(rng() & 0xFFFFFFFFFFFFULL);
}

// Timestamps across the full int64 range, including extremes the study
// window never produces — serialization must not care.
util::Timestamp RandomTs(std::mt19937_64& rng) {
  switch (rng() % 8) {
    case 0: return 0;
    case 1: return -1;
    case 2: return std::numeric_limits<util::Timestamp>::max();
    case 3: return std::numeric_limits<util::Timestamp>::min();
    default: return static_cast<util::Timestamp>(rng());
  }
}

std::string RandomHostname(std::mt19937_64& rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789-.";
  std::string s;
  const std::size_t len = 1 + rng() % 40;
  for (std::size_t i = 0; i < len; ++i) {
    s += kAlphabet[rng() % (sizeof kAlphabet - 1)];
  }
  return s;
}

// Printable-ASCII UA string plus occasional tabs/newlines, which the writer
// is specified to flatten to spaces.
std::string RandomUserAgent(std::mt19937_64& rng, bool& had_separator) {
  std::string s;
  const std::size_t len = 1 + rng() % 60;
  for (std::size_t i = 0; i < len; ++i) {
    const auto roll = rng() % 100;
    if (roll == 0) {
      s += '\t';
      had_separator = true;
    } else if (roll == 1) {
      s += '\n';
      had_separator = true;
    } else {
      s += static_cast<char>('!' + rng() % ('~' - '!' + 1));
    }
  }
  return s;
}

std::string Sanitized(std::string s) {
  for (char& c : s) {
    if (c == '\t' || c == '\n') c = ' ';
  }
  return s;
}

// --- Round trips -------------------------------------------------------------

TEST(DhcpLogProperty, RandomLeasesRoundTrip) {
  for (int trial = 0; trial < kTrials; ++trial) {
    std::mt19937_64 rng(1000 + trial);
    std::vector<dhcp::Lease> leases(rng() % 50);
    for (auto& lease : leases) {
      lease.mac = RandomMac(rng);
      lease.ip = RandomIp(rng);
      lease.start = RandomTs(rng);
      lease.end = RandomTs(rng);
    }
    std::ostringstream out;
    WriteDhcpLog(out, leases);
    const auto back = ReadDhcpLog(out.str());
    ASSERT_TRUE(back.has_value()) << "trial " << trial;
    ASSERT_EQ(back->size(), leases.size()) << "trial " << trial;
    for (std::size_t i = 0; i < leases.size(); ++i) {
      EXPECT_EQ((*back)[i].mac, leases[i].mac);
      EXPECT_EQ((*back)[i].ip, leases[i].ip);
      EXPECT_EQ((*back)[i].start, leases[i].start);
      EXPECT_EQ((*back)[i].end, leases[i].end);
    }
  }
}

TEST(DnsLogProperty, RandomResolutionsRoundTrip) {
  for (int trial = 0; trial < kTrials; ++trial) {
    std::mt19937_64 rng(2000 + trial);
    std::vector<dns::Resolution> rows(rng() % 50);
    for (auto& r : rows) {
      r.ts = RandomTs(rng);
      r.client = RandomMac(rng);
      r.qname = RandomHostname(rng);
      r.answer = RandomIp(rng);
      r.ttl = static_cast<std::int32_t>(rng());
    }
    std::ostringstream out;
    WriteDnsLog(out, rows);
    const auto back = ReadDnsLog(out.str());
    ASSERT_TRUE(back.has_value()) << "trial " << trial;
    ASSERT_EQ(back->size(), rows.size()) << "trial " << trial;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ((*back)[i].ts, rows[i].ts);
      EXPECT_EQ((*back)[i].client, rows[i].client);
      EXPECT_EQ((*back)[i].qname, rows[i].qname);
      EXPECT_EQ((*back)[i].answer, rows[i].answer);
      EXPECT_EQ((*back)[i].ttl, rows[i].ttl);
    }
  }
}

TEST(UaLogProperty, RandomSightingsRoundTripModuloSanitization) {
  bool any_separator = false;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::mt19937_64 rng(3000 + trial);
    std::vector<UaRecord> rows(1 + rng() % 50);
    for (auto& r : rows) {
      r.ts = RandomTs(rng);
      r.client_ip = RandomIp(rng);
      r.user_agent = RandomUserAgent(rng, any_separator);
    }
    std::ostringstream out;
    WriteUaLog(out, rows);
    const auto back = ReadUaLog(out.str());
    ASSERT_TRUE(back.has_value()) << "trial " << trial;
    ASSERT_EQ(back->size(), rows.size()) << "trial " << trial;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      EXPECT_EQ((*back)[i].ts, rows[i].ts);
      EXPECT_EQ((*back)[i].client_ip, rows[i].client_ip);
      // Tabs/newlines inside the UA become spaces on disk, and the reader
      // trims the field's edges; everything else survives verbatim.
      const std::string sanitized = Sanitized(rows[i].user_agent);
      EXPECT_EQ((*back)[i].user_agent, std::string(util::Trim(sanitized)));
    }
  }
  // The generator must actually have exercised the sanitization path.
  EXPECT_TRUE(any_separator);
}

// --- Malformed documents ------------------------------------------------------

// One valid single-row document per format, used as the corruption base.
std::string ValidDhcpDoc() {
  return "start\tend\tmac\tip\n100\t200\t00:17:f2:00:00:01\t10.0.0.1\n";
}
std::string ValidDnsDoc() {
  return "ts\tclient\tqname\tanswer\tttl\n"
         "100\t00:17:f2:00:00:01\texample.com\t93.184.216.34\t300\n";
}
std::string ValidUaDoc() {
  return "ts\tclient\tuser_agent\n100\t10.0.0.1\tMozilla/5.0\n";
}

TEST(LogMalformedProperty, BasesAreValid) {
  EXPECT_TRUE(ReadDhcpLog(ValidDhcpDoc()).has_value());
  EXPECT_TRUE(ReadDnsLog(ValidDnsDoc()).has_value());
  EXPECT_TRUE(ReadUaLog(ValidUaDoc()).has_value());
}

TEST(LogMalformedProperty, MissingOrWrongHeaderRejected) {
  EXPECT_FALSE(ReadDhcpLog("").has_value());
  EXPECT_FALSE(ReadDnsLog("").has_value());
  EXPECT_FALSE(ReadUaLog("").has_value());
  EXPECT_FALSE(ReadDhcpLog("100\t200\t00:17:f2:00:00:01\t10.0.0.1\n").has_value());
  EXPECT_FALSE(ReadDnsLog(ValidUaDoc()).has_value());
  EXPECT_FALSE(ReadUaLog(ValidDhcpDoc()).has_value());
}

TEST(LogMalformedProperty, TruncatedRowsRejected) {
  // Drop the final field (and its separator) from the data row.
  EXPECT_FALSE(
      ReadDhcpLog("start\tend\tmac\tip\n100\t200\t00:17:f2:00:00:01\n").has_value());
  EXPECT_FALSE(ReadDnsLog("ts\tclient\tqname\tanswer\tttl\n"
                          "100\t00:17:f2:00:00:01\texample.com\t93.184.216.34\n")
                   .has_value());
  EXPECT_FALSE(ReadUaLog("ts\tclient\tuser_agent\n100\t10.0.0.1\n").has_value());
  // Cut mid-field: the dangling prefix must not parse either.
  const std::string dhcp = ValidDhcpDoc();
  EXPECT_FALSE(ReadDhcpLog(dhcp.substr(0, dhcp.size() - 6)).has_value());
}

TEST(LogMalformedProperty, EmbeddedTabShiftsFieldCountAndRejects) {
  // A tab smuggled into a value splits the row into too many fields.
  EXPECT_FALSE(
      ReadDhcpLog("start\tend\tmac\tip\n100\t2\t00\t00:17:f2:00:00:01\t10.0.0.1\n")
          .has_value());
  EXPECT_FALSE(ReadDnsLog("ts\tclient\tqname\tanswer\tttl\n"
                          "100\t00:17:f2:00:00:01\texa\tmple.com\t93.184.216.34\t300\n")
                   .has_value());
  EXPECT_FALSE(
      ReadUaLog("ts\tclient\tuser_agent\n100\t10.0.0.1\tMozilla\t5.0\n").has_value());
}

TEST(LogMalformedProperty, BadTimestampsRejected) {
  // Non-numeric, trailing garbage, and out-of-range (overflow consumes every
  // digit, so only the error code distinguishes it from a good parse).
  for (const char* ts : {"abc", "12x4", "", "1 00", "99999999999999999999999",
                         "-99999999999999999999999"}) {
    const std::string dhcp =
        std::string("start\tend\tmac\tip\n") + ts +
        "\t200\t00:17:f2:00:00:01\t10.0.0.1\n";
    EXPECT_FALSE(ReadDhcpLog(dhcp).has_value()) << "dhcp ts='" << ts << "'";
    const std::string dns =
        std::string("ts\tclient\tqname\tanswer\tttl\n") + ts +
        "\t00:17:f2:00:00:01\texample.com\t93.184.216.34\t300\n";
    EXPECT_FALSE(ReadDnsLog(dns).has_value()) << "dns ts='" << ts << "'";
    const std::string ua =
        std::string("ts\tclient\tuser_agent\n") + ts + "\t10.0.0.1\tMozilla/5.0\n";
    EXPECT_FALSE(ReadUaLog(ua).has_value()) << "ua ts='" << ts << "'";
  }
  // TTL overflows int32.
  EXPECT_FALSE(ReadDnsLog("ts\tclient\tqname\tanswer\tttl\n"
                          "100\t00:17:f2:00:00:01\texample.com\t93.184.216.34\t"
                          "99999999999\n")
                   .has_value());
}

TEST(LogMalformedProperty, BadAddressesRejected) {
  EXPECT_FALSE(
      ReadDhcpLog("start\tend\tmac\tip\n100\t200\tnot-a-mac\t10.0.0.1\n").has_value());
  EXPECT_FALSE(
      ReadDhcpLog("start\tend\tmac\tip\n100\t200\t00:17:f2:00:00:01\t10.0.0.256\n")
          .has_value());
  EXPECT_FALSE(ReadDnsLog("ts\tclient\tqname\tanswer\tttl\n"
                          "100\t00:17:f2:00:00:01\texample.com\t93.184.216\t300\n")
                   .has_value());
  EXPECT_FALSE(
      ReadUaLog("ts\tclient\tuser_agent\n100\t10.0.0\tMozilla/5.0\n").has_value());
}

// Randomized single-byte corruptions of valid documents: the parser may
// accept (some corruptions are harmless, e.g. inside the UA text) or reject,
// but must never crash, and whatever it accepts must re-serialize cleanly.
TEST(LogMalformedProperty, RandomCorruptionNeverCrashes) {
  std::mt19937_64 rng(4242);
  const std::string bases[] = {ValidDhcpDoc(), ValidDnsDoc(), ValidUaDoc()};
  for (int trial = 0; trial < 300; ++trial) {
    std::string doc = bases[trial % 3];
    const std::size_t pos = rng() % doc.size();
    doc[pos] = static_cast<char>(rng() % 256);
    switch (trial % 3) {
      case 0: {
        const auto parsed = ReadDhcpLog(doc);
        if (parsed) {
          std::ostringstream out;
          WriteDhcpLog(out, *parsed);
          EXPECT_TRUE(ReadDhcpLog(out.str()).has_value());
        }
        break;
      }
      case 1: {
        const auto parsed = ReadDnsLog(doc);
        if (parsed) {
          std::ostringstream out;
          WriteDnsLog(out, *parsed);
          EXPECT_TRUE(ReadDnsLog(out.str()).has_value());
        }
        break;
      }
      default: {
        const auto parsed = ReadUaLog(doc);
        if (parsed) {
          std::ostringstream out;
          WriteUaLog(out, *parsed);
          EXPECT_TRUE(ReadUaLog(out.str()).has_value());
        }
        break;
      }
    }
  }
}

}  // namespace
}  // namespace lockdown::logs
