// Tolerant-ingest unit tests: error taxonomy, accounting contract, budget
// enforcement, header semantics, truncated-tail reclassification, quarantine,
// and report aggregation — exercised through all four real log readers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "flow/conn_log.h"
#include "ingest/ingest.h"
#include "logs/dhcp_log.h"
#include "logs/dns_log.h"
#include "logs/ua_log.h"

namespace lockdown {
namespace {

constexpr std::string_view kDnsHeader = "ts\tclient\tqname\tanswer\tttl";

ingest::IngestOptions Tolerant(double budget = 1.0) {
  ingest::IngestOptions options;
  options.mode = ingest::Mode::kTolerant;
  options.max_error_rate = budget;
  return options;
}

std::string DnsDoc(std::initializer_list<std::string_view> rows) {
  std::ostringstream out;
  out << kDnsHeader << '\n';
  for (const auto row : rows) out << row << '\n';
  return out.str();
}

std::uint64_t ClassCount(const ingest::IngestReport& report,
                         ingest::ErrorClass error) {
  return report.by_class[static_cast<int>(error)];
}

TEST(TolerantIngest, CleanDocumentMatchesStrictRead) {
  const std::string doc = DnsDoc({"1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60",
                                  "2\taa:bb:cc:dd:ee:01\tnetflix.com\t5.6.7.8\t30"});
  ingest::IngestReport report;
  const auto tolerant = logs::ReadDnsLog(doc, Tolerant(), report);
  const auto strict = logs::ReadDnsLog(doc);
  ASSERT_TRUE(tolerant.has_value());
  ASSERT_TRUE(strict.has_value());
  EXPECT_EQ(tolerant->size(), strict->size());
  EXPECT_EQ(report.lines_total, 2u);
  EXPECT_EQ(report.kept, 2u);
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_TRUE(report.header_ok);
  EXPECT_EQ(report.error_rate(), 0.0);
}

TEST(TolerantIngest, SkipsAndClassifiesMalformedRows) {
  const std::string doc =
      DnsDoc({"1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60",
              "x\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60",   // bad ts
              "1\tnot-a-mac\tzoom.us\t1.2.3.4\t60",           // bad mac
              "1\taa:bb:cc:dd:ee:ff\t\t1.2.3.4\t60",          // empty qname
              "1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.999\t60", // bad ip
              "1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\tx",    // bad ttl
              "only\ttwo",                                    // field count
              "2\taa:bb:cc:dd:ee:01\tnetflix.com\t5.6.7.8\t30"});
  ingest::IngestReport report;
  const auto parsed = logs::ReadDnsLog(doc, Tolerant(), report);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
  EXPECT_EQ(report.lines_total, 8u);
  EXPECT_EQ(report.kept, 2u);
  EXPECT_EQ(report.rejected, 6u);
  EXPECT_EQ(report.kept + report.rejected, report.lines_total);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadTimestamp), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadMac), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadValue), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadIp), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadNumber), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kFieldCount), 1u);
  // The strict read rejects the same document outright.
  EXPECT_FALSE(logs::ReadDnsLog(doc).has_value());
}

TEST(TolerantIngest, SamplesRetainOffendingLines) {
  ingest::IngestOptions options = Tolerant();
  options.max_samples = 2;
  const std::string doc = DnsDoc({"bad row 1", "bad\trow\t2", "bad row 3"});
  ingest::IngestReport report;
  ASSERT_TRUE(logs::ReadDnsLog(doc, options, report).has_value());
  ASSERT_EQ(report.samples.size(), 2u);
  EXPECT_EQ(report.samples[0].line, 2u);  // 1-based; line 1 is the header
  EXPECT_EQ(report.samples[0].text, "bad row 1");
  EXPECT_EQ(report.samples[0].error, ingest::ErrorClass::kFieldCount);
  EXPECT_EQ(report.samples[1].line, 3u);
  EXPECT_EQ(report.rejected, 3u);
}

TEST(TolerantIngest, BudgetRejectsWholeDocumentWhenExceeded) {
  const std::string doc = DnsDoc({"1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60",
                                  "garbage", "more garbage", "even more"});
  ingest::IngestReport report;
  EXPECT_FALSE(logs::ReadDnsLog(doc, Tolerant(0.5), report).has_value());
  EXPECT_EQ(report.rejected, 3u);
  EXPECT_GT(report.error_rate(), 0.5);
  // A looser budget admits the same document.
  EXPECT_TRUE(logs::ReadDnsLog(doc, Tolerant(0.8), report).has_value());
}

TEST(TolerantIngest, MissingHeaderStrictRejectsTolerantRecovers) {
  const std::string doc =
      "1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60\n"
      "2\taa:bb:cc:dd:ee:01\tnetflix.com\t5.6.7.8\t30\n";
  EXPECT_FALSE(logs::ReadDnsLog(doc).has_value());
  ingest::IngestReport report;
  const auto parsed = logs::ReadDnsLog(doc, Tolerant(), report);
  ASSERT_TRUE(parsed.has_value());
  // Line 1 is counted as a kBadHeader rejection; the data rows survive.
  EXPECT_FALSE(report.header_ok);
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadHeader), 1u);
  EXPECT_EQ(report.kept + report.rejected, report.lines_total);
}

TEST(TolerantIngest, TruncatedTailIsReclassified) {
  // Valid row cut mid-field with no trailing newline: an interrupted write.
  const std::string doc = std::string(kDnsHeader) +
                          "\n1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60\n"
                          "2\taa:bb:cc:dd:ee:01\tnetfl";
  ingest::IngestReport report;
  const auto parsed = logs::ReadDnsLog(doc, Tolerant(), report);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kTruncatedLine), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kFieldCount), 0u);
  // The same bytes with a trailing newline are ordinary garbage instead.
  ingest::IngestReport complete;
  ASSERT_TRUE(logs::ReadDnsLog(doc + "\n", Tolerant(), complete).has_value());
  EXPECT_EQ(ClassCount(complete, ingest::ErrorClass::kTruncatedLine), 0u);
  EXPECT_EQ(ClassCount(complete, ingest::ErrorClass::kFieldCount), 1u);
}

TEST(TolerantIngest, QuarantineWritesRejectedLinesVerbatim) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "lockdown_ingest_quarantine_test";
  std::filesystem::remove_all(dir);
  ingest::IngestOptions options = Tolerant();
  options.quarantine_dir = dir;
  options.source = "dns.log";
  const std::string doc =
      DnsDoc({"garbage one", "1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60",
              "garbage\ttwo"});
  ingest::IngestReport report;
  ASSERT_TRUE(logs::ReadDnsLog(doc, options, report).has_value());
  ASSERT_FALSE(report.quarantine_file.empty());
  EXPECT_EQ(report.quarantine_file, dir / "dns.log.rej");
  std::ifstream in(report.quarantine_file);
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), "garbage one\ngarbage\ttwo\n");
  std::filesystem::remove_all(dir);
}

TEST(TolerantIngest, NoQuarantineFileForCleanInput) {
  const auto dir = std::filesystem::temp_directory_path() /
                   "lockdown_ingest_quarantine_clean_test";
  std::filesystem::remove_all(dir);
  ingest::IngestOptions options = Tolerant();
  options.quarantine_dir = dir;
  const std::string doc = DnsDoc({"1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60"});
  ingest::IngestReport report;
  ASSERT_TRUE(logs::ReadDnsLog(doc, options, report).has_value());
  EXPECT_TRUE(report.quarantine_file.empty());
  EXPECT_FALSE(std::filesystem::exists(dir / "input.rej"));
  std::filesystem::remove_all(dir);
}

TEST(TolerantIngest, ConnLogTaxonomy) {
  constexpr std::string_view kRows[] = {
      "100\t1.5\t10.0.0.1\t64.1.2.3\t443\ttcp\t100\t200",  // clean
      "abc\t1.5\t10.0.0.1\t64.1.2.3\t443\ttcp\t100\t200",  // bad ts
      "100\tzz\t10.0.0.1\t64.1.2.3\t443\ttcp\t100\t200",   // bad duration
      "100\t1.5\t10.0.0\t64.1.2.3\t443\ttcp\t100\t200",    // bad ip
      "100\t1.5\t10.0.0.1\t64.1.2.3\t99999\ttcp\t100\t200",  // port overflow
      "100\t1.5\t10.0.0.1\t64.1.2.3\t443\ticmp\t100\t200",   // bad proto
  };
  std::string doc =
      "ts\tduration\tid.orig_h\tid.resp_h\tid.resp_p\tproto\torig_bytes\t"
      "resp_bytes\n";
  for (const auto row : kRows) doc += std::string(row) + "\n";
  ingest::IngestReport report;
  const auto parsed = flow::ReadConnLog(doc, Tolerant(), report);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
  EXPECT_EQ(report.rejected, 5u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadTimestamp), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadNumber), 2u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadIp), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadValue), 1u);
}

TEST(TolerantIngest, DhcpAndUaTaxonomy) {
  ingest::IngestReport report;
  const auto dhcp = logs::ReadDhcpLog(
      "start\tend\tmac\tip\n"
      "100\t200\taa:bb:cc:dd:ee:ff\t10.0.0.1\n"
      "bad\t200\taa:bb:cc:dd:ee:ff\t10.0.0.1\n"
      "100\t200\tnope\t10.0.0.1\n"
      "100\t200\taa:bb:cc:dd:ee:ff\t10.0.0.256\n",
      Tolerant(), report);
  ASSERT_TRUE(dhcp.has_value());
  EXPECT_EQ(dhcp->size(), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadTimestamp), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadMac), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadIp), 1u);

  const auto ua = logs::ReadUaLog(
      "ts\tclient\tuser_agent\n"
      "100\t10.0.0.1\tMozilla/5.0\n"
      "100\tbanana\tMozilla/5.0\n"
      "100\t10.0.0.1\t\n",
      Tolerant(), report);
  ASSERT_TRUE(ua.has_value());
  EXPECT_EQ(ua->size(), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadIp), 1u);
  EXPECT_EQ(ClassCount(report, ingest::ErrorClass::kBadValue), 1u);
}

TEST(TolerantIngest, MergeAggregatesReports) {
  ingest::IngestReport a;
  ingest::IngestReport b;
  ASSERT_TRUE(logs::ReadDnsLog(
                  DnsDoc({"1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60", "junk"}),
                  Tolerant(), a)
                  .has_value());
  ASSERT_TRUE(
      logs::ReadDnsLog(DnsDoc({"more junk"}), Tolerant(), b).has_value());
  a.source = "first";
  b.source = "second";
  ingest::IngestReport total;
  total.Merge(a);
  total.Merge(b);
  EXPECT_EQ(total.lines_total, 3u);
  EXPECT_EQ(total.kept, 1u);
  EXPECT_EQ(total.rejected, 2u);
  EXPECT_EQ(ClassCount(total, ingest::ErrorClass::kFieldCount), 2u);
  EXPECT_EQ(total.source, "first+second");
  EXPECT_EQ(total.kept + total.rejected, total.lines_total);
}

TEST(TolerantIngest, SummaryNamesClasses) {
  ingest::IngestOptions options = Tolerant();
  options.source = "dns.log";
  ingest::IngestReport report;
  ASSERT_TRUE(logs::ReadDnsLog(
                  DnsDoc({"1\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60", "junk"}),
                  options, report)
                  .has_value());
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("dns.log"), std::string::npos);
  EXPECT_NE(summary.find("field_count"), std::string::npos);
}

TEST(TolerantIngest, ParseModeRoundTrip) {
  EXPECT_EQ(ingest::ParseMode("strict"), ingest::Mode::kStrict);
  EXPECT_EQ(ingest::ParseMode("tolerant"), ingest::Mode::kTolerant);
  EXPECT_FALSE(ingest::ParseMode("lenient").has_value());
}

}  // namespace
}  // namespace lockdown
