#include "classify/accuracy.h"

#include <gtest/gtest.h>

namespace lockdown::classify {
namespace {

LabelledDevice Dev(DeviceClass predicted, DeviceClass truth) {
  return LabelledDevice{predicted, truth};
}

TEST(EstimateAccuracy, PerfectClassifier) {
  std::vector<LabelledDevice> devices(50,
                                      Dev(DeviceClass::kMobile, DeviceClass::kMobile));
  const auto report = EstimateAccuracy(devices, 50, 1);
  EXPECT_EQ(report.sampled, 50);
  EXPECT_EQ(report.correct, 50);
  EXPECT_EQ(report.misclassified, 0);
  EXPECT_EQ(report.unknown_omissions, 0);
  EXPECT_DOUBLE_EQ(report.accuracy(), 1.0);
}

TEST(EstimateAccuracy, DistinguishesOmissionsFromErrors) {
  std::vector<LabelledDevice> devices;
  for (int i = 0; i < 84; ++i) devices.push_back(Dev(DeviceClass::kMobile, DeviceClass::kMobile));
  for (int i = 0; i < 14; ++i) devices.push_back(Dev(DeviceClass::kUnknown, DeviceClass::kIot));
  for (int i = 0; i < 2; ++i) devices.push_back(Dev(DeviceClass::kIot, DeviceClass::kMobile));
  const auto report = EstimateAccuracy(devices, 100, 1);
  // Sampling all 100: reproduces the paper's 84/14/2 split exactly.
  EXPECT_EQ(report.correct, 84);
  EXPECT_EQ(report.unknown_omissions, 14);
  EXPECT_EQ(report.misclassified, 2);
}

TEST(EstimateAccuracy, SampleSmallerThanPopulation) {
  std::vector<LabelledDevice> devices(1000,
                                      Dev(DeviceClass::kIot, DeviceClass::kIot));
  devices[3] = Dev(DeviceClass::kUnknown, DeviceClass::kMobile);
  const auto report = EstimateAccuracy(devices, 100, 7);
  EXPECT_EQ(report.sampled, 100);
  EXPECT_GE(report.correct, 99);
}

TEST(EstimateAccuracy, DeterministicForSeed) {
  std::vector<LabelledDevice> devices;
  for (int i = 0; i < 500; ++i) {
    devices.push_back(i % 3 == 0 ? Dev(DeviceClass::kUnknown, DeviceClass::kMobile)
                                 : Dev(DeviceClass::kMobile, DeviceClass::kMobile));
  }
  const auto a = EstimateAccuracy(devices, 100, 42);
  const auto b = EstimateAccuracy(devices, 100, 42);
  EXPECT_EQ(a.correct, b.correct);
  EXPECT_EQ(a.unknown_omissions, b.unknown_omissions);
}

TEST(EstimateAccuracy, EmptyPopulation) {
  const auto report = EstimateAccuracy({}, 100, 1);
  EXPECT_EQ(report.sampled, 0);
  EXPECT_DOUBLE_EQ(report.accuracy(), 0.0);
}

TEST(EstimateAccuracy, SampleLargerThanPopulationClamps) {
  std::vector<LabelledDevice> devices(10,
                                      Dev(DeviceClass::kMobile, DeviceClass::kMobile));
  const auto report = EstimateAccuracy(devices, 100, 1);
  EXPECT_EQ(report.sampled, 10);
}

TEST(EstimateAccuracy, UnknownPredictedUnknownTruthIsCorrect) {
  // A device that is genuinely unknowable counts as correct when labelled
  // unknown.
  std::vector<LabelledDevice> devices(5,
                                      Dev(DeviceClass::kUnknown, DeviceClass::kUnknown));
  const auto report = EstimateAccuracy(devices, 5, 1);
  EXPECT_EQ(report.correct, 5);
}

}  // namespace
}  // namespace lockdown::classify
