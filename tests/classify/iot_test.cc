#include "classify/iot.h"

#include <gtest/gtest.h>

namespace lockdown::classify {
namespace {

DeviceObservations ObsWithDomains(std::initializer_list<const char*> domains) {
  DeviceObservations obs;
  for (const char* d : domains) obs.bytes_by_domain[d] = 1000;
  return obs;
}

IotDetector MakeDetector(double threshold = 0.5) {
  std::vector<IotDetector::Signature> sigs;
  sigs.push_back({"roku", {"roku.com", "rokucdn.com", "logs.roku.com"}});
  sigs.push_back({"tplink", {"tplinkcloud.com", "tplinkra.com"}});
  return IotDetector(std::move(sigs), threshold);
}

TEST(IotDetector, FullBackendContactMatches) {
  // IotMatch::platform views the detector's signature storage, so the
  // detector must outlive the match.
  const IotDetector detector = MakeDetector();
  const auto match = detector.Detect(
      ObsWithDomains({"roku.com", "rokucdn.com", "logs.roku.com"}));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->platform, "roku");
  EXPECT_DOUBLE_EQ(match->score, 1.0);
}

TEST(IotDetector, PartialContactAboveThresholdMatches) {
  const auto match =
      MakeDetector().Detect(ObsWithDomains({"roku.com", "logs.roku.com"}));
  ASSERT_TRUE(match.has_value());
  EXPECT_NEAR(match->score, 2.0 / 3.0, 1e-9);
}

TEST(IotDetector, SingleVendorHomepageVisitDoesNotMatch) {
  // A laptop that browsed roku.com only: 1/3 < 0.5.
  EXPECT_FALSE(MakeDetector().Detect(ObsWithDomains({"roku.com"})).has_value());
}

TEST(IotDetector, SubdomainsCount) {
  const IotDetector detector = MakeDetector();
  const auto match = detector.Detect(
      ObsWithDomains({"api.roku.com", "cdn.rokucdn.com"}));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->platform, "roku");
}

TEST(IotDetector, BestPlatformWins) {
  const IotDetector detector = MakeDetector();
  const auto match = detector.Detect(ObsWithDomains(
      {"roku.com", "rokucdn.com", "logs.roku.com", "tplinkcloud.com"}));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->platform, "roku");  // 3/3 beats 1/2
}

TEST(IotDetector, ThresholdIsInclusive) {
  // tplink: 1/2 == 0.5 matches at the paper's threshold.
  const IotDetector detector = MakeDetector(0.5);
  const auto match = detector.Detect(ObsWithDomains({"tplinkcloud.com"}));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->platform, "tplink");
}

TEST(IotDetector, HigherThresholdRejects) {
  EXPECT_FALSE(MakeDetector(0.9)
                   .Detect(ObsWithDomains({"roku.com", "logs.roku.com"}))
                   .has_value());
}

TEST(IotDetector, EmptyObservations) {
  EXPECT_FALSE(MakeDetector().Detect(DeviceObservations{}).has_value());
}

TEST(IotDetector, CatalogConstructionCoversIotBackends) {
  IotDetector detector(world::ServiceCatalog::Default());
  EXPECT_GE(detector.num_signatures(), 8u);
  EXPECT_DOUBLE_EQ(detector.threshold(), 0.5);  // the paper's threshold
  const auto match = detector.Detect(
      ObsWithDomains({"wyzecam.com", "wyze.com"}));
  ASSERT_TRUE(match.has_value());
  EXPECT_EQ(match->platform, "wyze");
}

}  // namespace
}  // namespace lockdown::classify
