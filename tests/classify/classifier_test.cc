#include "classify/classifier.h"

#include <gtest/gtest.h>

namespace lockdown::classify {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  ClassifierTest()
      : classifier_(DeviceClassifier::Default(world::ServiceCatalog::Default())) {}

  static DeviceObservations WithOui(std::uint32_t oui) {
    DeviceObservations obs;
    obs.oui = oui;
    obs.bytes_by_domain["www.us-site-001.net"] = 1000;
    return obs;
  }

  DeviceClassifier classifier_;
};

TEST_F(ClassifierTest, NintendoTrafficDominanceWins) {
  DeviceObservations obs;
  obs.bytes_by_domain["npln.srv.nintendo.net"] = 90000;
  obs.bytes_by_domain["netflix.com"] = 10000;
  const auto c = classifier_.Classify(obs);
  EXPECT_EQ(c.device_class, DeviceClass::kGameConsole);
  EXPECT_EQ(c.evidence, "nintendo-traffic");
}

TEST_F(ClassifierTest, UaEvidenceBeatsOui) {
  // A phone with an Apple OUI (ambiguous) plus an iPhone UA.
  DeviceObservations obs = WithOui(0xA483E7);
  obs.AddUserAgent("Mozilla/5.0 (iPhone; CPU iPhone OS 13_3_1 like Mac OS X)");
  const auto c = classifier_.Classify(obs);
  EXPECT_EQ(c.device_class, DeviceClass::kMobile);
  EXPECT_EQ(c.evidence, "ua");
}

TEST_F(ClassifierTest, UaMajorityVote) {
  DeviceObservations obs;
  obs.AddUserAgent("Mozilla/5.0 (Windows NT 10.0; Win64; x64)");
  obs.AddUserAgent("Mozilla/5.0 (iPhone; CPU iPhone OS 13_3 like Mac OS X)");
  obs.AddUserAgent("Mozilla/5.0 (Windows NT 6.1; Win64; x64)");
  EXPECT_EQ(classifier_.Classify(obs).device_class, DeviceClass::kLaptopDesktop);
}

TEST_F(ClassifierTest, ConsoleUaWinsOutright) {
  DeviceObservations obs;
  obs.AddUserAgent("Mozilla/5.0 (Windows NT 10.0)");
  obs.AddUserAgent("Mozilla/5.0 (Nintendo Switch; WifiWebAuthApplet)");
  EXPECT_EQ(classifier_.Classify(obs).device_class, DeviceClass::kGameConsole);
}

TEST_F(ClassifierTest, OuiHintsWithoutUa) {
  EXPECT_EQ(classifier_.Classify(WithOui(0x54BF64)).device_class,
            DeviceClass::kLaptopDesktop);  // Dell
  EXPECT_EQ(classifier_.Classify(WithOui(0xE8508B)).device_class,
            DeviceClass::kMobile);  // Samsung phone
  EXPECT_EQ(classifier_.Classify(WithOui(0x50C7BF)).device_class,
            DeviceClass::kIot);  // TP-Link
  EXPECT_EQ(classifier_.Classify(WithOui(0x98B6E9)).device_class,
            DeviceClass::kGameConsole);  // Nintendo
}

TEST_F(ClassifierTest, AppleOuiAloneIsUnknown) {
  // Apple ships laptops AND phones: OUI alone must stay conservative — the
  // paper's dominant error mode is exactly such unknown omissions.
  const auto c = classifier_.Classify(WithOui(0xA483E7));
  EXPECT_EQ(c.device_class, DeviceClass::kUnknown);
}

TEST_F(ClassifierTest, RandomizedMacIgnoresOui) {
  DeviceObservations obs = WithOui(0x54BF64);  // Dell bits, but...
  obs.locally_administered = true;             // ...randomized
  EXPECT_EQ(classifier_.Classify(obs).device_class, DeviceClass::kUnknown);
}

TEST_F(ClassifierTest, IotSignatureAsFallback) {
  DeviceObservations obs;
  obs.locally_administered = true;
  obs.bytes_by_domain["wyzecam.com"] = 500;
  obs.bytes_by_domain["wyze.com"] = 500;
  const auto c = classifier_.Classify(obs);
  EXPECT_EQ(c.device_class, DeviceClass::kIot);
  EXPECT_EQ(c.evidence, "iot-signature");
}

TEST_F(ClassifierTest, NoEvidenceIsUnknown) {
  DeviceObservations obs;
  obs.locally_administered = true;
  obs.bytes_by_domain["www.us-site-004.net"] = 12345;
  const auto c = classifier_.Classify(obs);
  EXPECT_EQ(c.device_class, DeviceClass::kUnknown);
  EXPECT_EQ(c.evidence, "none");
}

TEST_F(ClassifierTest, TvUaClassifiesAsIot) {
  DeviceObservations obs;
  obs.AddUserAgent("Roku/DVP-9.10 (519.10E04111A)");
  EXPECT_EQ(classifier_.Classify(obs).device_class, DeviceClass::kIot);
}

}  // namespace
}  // namespace lockdown::classify
