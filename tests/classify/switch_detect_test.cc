#include "classify/switch_detect.h"

#include <gtest/gtest.h>

namespace lockdown::classify {
namespace {

SwitchDetector MakeDetector(double threshold = 0.5) {
  return SwitchDetector(
      {"npln.srv.nintendo.net", "atum.hac.lp1.d4c.nintendo.net",
       "conntest.nintendowifi.net"},
      threshold);
}

DeviceObservations Obs(std::uint64_t nintendo_bytes, std::uint64_t other_bytes) {
  DeviceObservations obs;
  if (nintendo_bytes > 0) {
    obs.bytes_by_domain["npln.srv.nintendo.net"] = nintendo_bytes;
  }
  if (other_bytes > 0) obs.bytes_by_domain["netflix.com"] = other_bytes;
  return obs;
}

TEST(SwitchDetector, PureNintendoTrafficIsSwitch) {
  EXPECT_TRUE(MakeDetector().IsSwitch(Obs(1000, 0)));
}

TEST(SwitchDetector, MajorityNintendoIsSwitch) {
  // "at least 50% of their traffic is to the identified Nintendo servers".
  EXPECT_TRUE(MakeDetector().IsSwitch(Obs(600, 400)));
  EXPECT_TRUE(MakeDetector().IsSwitch(Obs(500, 500)));  // exactly 50%
}

TEST(SwitchDetector, MinorityNintendoIsNotSwitch) {
  EXPECT_FALSE(MakeDetector().IsSwitch(Obs(400, 600)));
  // A laptop that downloaded one game update but mostly streams.
  EXPECT_FALSE(MakeDetector().IsSwitch(Obs(1, 1000000)));
}

TEST(SwitchDetector, NoTrafficIsNotSwitch) {
  EXPECT_FALSE(MakeDetector().IsSwitch(DeviceObservations{}));
  EXPECT_DOUBLE_EQ(MakeDetector().NintendoShare(DeviceObservations{}), 0.0);
}

TEST(SwitchDetector, ShareComputation) {
  EXPECT_NEAR(MakeDetector().NintendoShare(Obs(750, 250)), 0.75, 1e-9);
}

TEST(SwitchDetector, SubdomainsMatch) {
  DeviceObservations obs;
  obs.bytes_by_domain["east.npln.srv.nintendo.net"] = 100;
  EXPECT_TRUE(MakeDetector().IsSwitch(obs));
}

TEST(SwitchDetector, CatalogConstruction) {
  SwitchDetector detector(world::ServiceCatalog::Default());
  DeviceObservations sw;
  sw.bytes_by_domain["npln.srv.nintendo.net"] = 5000;
  sw.bytes_by_domain["conntest.nintendowifi.net"] = 100;
  EXPECT_TRUE(detector.IsSwitch(sw));
  DeviceObservations laptop;
  laptop.bytes_by_domain["netflix.com"] = 100000;
  laptop.bytes_by_domain["accounts.nintendo.com"] = 50;  // bought a gift card
  EXPECT_FALSE(detector.IsSwitch(laptop));
}

}  // namespace
}  // namespace lockdown::classify
