#include "classify/user_agent.h"

#include <gtest/gtest.h>

#include "world/user_agents.h"

namespace lockdown::classify {
namespace {

TEST(UserAgentParser, Desktop) {
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (Windows NT 10.0; Win64; x64) "
                              "AppleWebKit/537.36 Chrome/80.0"),
            UaClass::kDesktop);
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_3)"),
            UaClass::kDesktop);
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (X11; Linux x86_64)"), UaClass::kDesktop);
}

TEST(UserAgentParser, Mobile) {
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (iPhone; CPU iPhone OS 13_3_1 like "
                              "Mac OS X)"),
            UaClass::kMobile);
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (iPad; CPU OS 13_3 like Mac OS X)"),
            UaClass::kMobile);
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (Linux; Android 10; SM-G975F) "
                              "Chrome/80 Mobile Safari"),
            UaClass::kMobile);
  EXPECT_EQ(ClassifyUserAgent("TikTok 15.5.0 rv:155012 (iPhone; iOS 13.3.1; "
                              "en_US) Cronet"),
            UaClass::kMobile);
}

TEST(UserAgentParser, AndroidTabletWithoutMobileTokenIsMobile) {
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (Linux; Android 9; SM-T820) "
                              "AppleWebKit/537.36 Safari/537.36"),
            UaClass::kMobile);
}

TEST(UserAgentParser, SmartTv) {
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (SMART-TV; Linux; Tizen 5.0)"),
            UaClass::kSmartTv);
  EXPECT_EQ(ClassifyUserAgent("Roku/DVP-9.10 (519.10E04111A)"), UaClass::kSmartTv);
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (Web0S; Linux/SmartTV)"),
            UaClass::kSmartTv);
}

TEST(UserAgentParser, Consoles) {
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (Nintendo Switch; WifiWebAuthApplet)"),
            UaClass::kGameConsole);
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (PlayStation 4 7.02)"),
            UaClass::kGameConsole);
}

TEST(UserAgentParser, XboxBeatsItsEmbeddedWindowsToken) {
  EXPECT_EQ(ClassifyUserAgent("Mozilla/5.0 (Windows NT 10.0; Win64; x64; Xbox; "
                              "Xbox One) Edge/44"),
            UaClass::kGameConsole);
}

TEST(UserAgentParser, Unknown) {
  EXPECT_EQ(ClassifyUserAgent(""), UaClass::kUnknown);
  EXPECT_EQ(ClassifyUserAgent("curl/7.68.0"), UaClass::kUnknown);
  EXPECT_EQ(ClassifyUserAgent("ESP8266HTTPClient"), UaClass::kUnknown);
}

// The simulator corpus and the parser must agree on every platform: this is
// the contract that keeps classification evidence meaningful.
struct CorpusCase {
  world::UaPlatform platform;
  UaClass expected;
};

class CorpusParseTest : public ::testing::TestWithParam<CorpusCase> {};

TEST_P(CorpusParseTest, EveryCorpusStringParsesToItsPlatformClass) {
  const CorpusCase c = GetParam();
  for (std::string_view ua : world::UserAgentsFor(c.platform)) {
    EXPECT_EQ(ClassifyUserAgent(ua), c.expected) << ua;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlatforms, CorpusParseTest,
    ::testing::Values(
        CorpusCase{world::UaPlatform::kWindowsDesktop, UaClass::kDesktop},
        CorpusCase{world::UaPlatform::kMacDesktop, UaClass::kDesktop},
        CorpusCase{world::UaPlatform::kLinuxDesktop, UaClass::kDesktop},
        CorpusCase{world::UaPlatform::kIphone, UaClass::kMobile},
        CorpusCase{world::UaPlatform::kIpad, UaClass::kMobile},
        CorpusCase{world::UaPlatform::kAndroidPhone, UaClass::kMobile},
        CorpusCase{world::UaPlatform::kSmartTv, UaClass::kSmartTv},
        CorpusCase{world::UaPlatform::kGameConsole, UaClass::kGameConsole}));

}  // namespace
}  // namespace lockdown::classify
