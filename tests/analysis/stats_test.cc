#include "analysis/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lockdown::analysis {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{7}), 7.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(Median(std::vector<double>{}), 0.0);
}

TEST(Stats, PercentileInterpolation) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 12.5), 15.0);  // halfway between 10 and 20
}

TEST(Stats, PercentileClampsRange) {
  const std::vector<double> xs = {1, 2};
  EXPECT_DOUBLE_EQ(Percentile(xs, -5), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(xs, 200), 2.0);
}

TEST(Stats, PercentileDoesNotMutateInput) {
  const std::vector<double> xs = {5, 1, 4, 2, 3};
  (void)Percentile(xs, 50);
  EXPECT_EQ(xs, (std::vector<double>{5, 1, 4, 2, 3}));
}

TEST(Stats, InPlaceMatchesCopying) {
  util::Pcg32 rng(5);
  std::vector<double> xs(1001);
  for (double& x : xs) x = rng.NextDouble() * 1000;
  for (double pct : {1.0, 25.0, 50.0, 75.0, 95.0, 99.0}) {
    std::vector<double> copy = xs;
    EXPECT_DOUBLE_EQ(PercentileInPlace(copy, pct), Percentile(xs, pct)) << pct;
  }
}

TEST(Stats, BoxStatsOrdering) {
  util::Pcg32 rng(11);
  std::vector<double> xs(5000);
  for (double& x : xs) x = rng.LogNormal(2.0, 1.0);
  const BoxStats box = ComputeBoxStats(xs);
  EXPECT_EQ(box.n, 5000u);
  EXPECT_LE(box.p1, box.q1);
  EXPECT_LE(box.q1, box.median);
  EXPECT_LE(box.median, box.q3);
  EXPECT_LE(box.q3, box.p95);
  EXPECT_LE(box.p95, box.p99);
  // Log-normal: mean > median.
  EXPECT_GT(box.mean, box.median);
}

TEST(Stats, BoxStatsKnownValues) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  const BoxStats box = ComputeBoxStats(xs);
  EXPECT_NEAR(box.median, 50.5, 1e-9);
  EXPECT_NEAR(box.q1, 25.75, 1e-9);
  EXPECT_NEAR(box.q3, 75.25, 1e-9);
  EXPECT_NEAR(box.mean, 50.5, 1e-9);
}

TEST(Stats, BoxStatsEmptyAndSingle) {
  EXPECT_EQ(ComputeBoxStats({}).n, 0u);
  const BoxStats one = ComputeBoxStats({42.0});
  EXPECT_EQ(one.n, 1u);
  EXPECT_DOUBLE_EQ(one.median, 42.0);
  EXPECT_DOUBLE_EQ(one.p1, 42.0);
  EXPECT_DOUBLE_EQ(one.p99, 42.0);
}

class PercentileSweep : public ::testing::TestWithParam<double> {};

TEST_P(PercentileSweep, MatchesNaiveDefinitionOnRandomData) {
  const double pct = GetParam();
  util::Pcg32 rng(17);
  std::vector<double> xs(257);
  for (double& x : xs) x = rng.Normal(0, 10);
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  const double expected =
      lo + 1 < sorted.size()
          ? sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
          : sorted[lo];
  EXPECT_NEAR(Percentile(xs, pct), expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, PercentileSweep,
                         ::testing::Values(0.0, 1.0, 10.0, 25.0, 33.3, 50.0,
                                           66.7, 75.0, 90.0, 95.0, 99.0, 100.0));

TEST(CosineSimilarity, IdenticalVectorsScoreOne) {
  const std::vector<double> v = {1, 2, 3, 4};
  EXPECT_NEAR(CosineSimilarity(v, v), 1.0, 1e-12);
}

TEST(CosineSimilarity, ScaledVectorsScoreOne) {
  const std::vector<double> a = {1, 2, 3};
  const std::vector<double> b = {10, 20, 30};
  EXPECT_NEAR(CosineSimilarity(a, b), 1.0, 1e-12);
}

TEST(CosineSimilarity, OrthogonalVectorsScoreZero) {
  const std::vector<double> a = {1, 0};
  const std::vector<double> b = {0, 1};
  EXPECT_NEAR(CosineSimilarity(a, b), 0.0, 1e-12);
}

TEST(CosineSimilarity, OppositeVectorsScoreMinusOne) {
  const std::vector<double> a = {1, -2};
  const std::vector<double> b = {-1, 2};
  EXPECT_NEAR(CosineSimilarity(a, b), -1.0, 1e-12);
}

TEST(CosineSimilarity, DegenerateInputs) {
  const std::vector<double> v = {1, 2};
  EXPECT_DOUBLE_EQ(CosineSimilarity({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity(v, std::vector<double>{1.0}), 0.0);  // size mismatch
  EXPECT_DOUBLE_EQ(CosineSimilarity(v, std::vector<double>{0.0, 0.0}), 0.0);
}

}  // namespace
}  // namespace lockdown::analysis
