#include "analysis/timeseries.h"

#include <gtest/gtest.h>

namespace lockdown::analysis {
namespace {

using util::StudyCalendar;

TEST(DailySeries, AddByTimestamp) {
  DailySeries s;
  const auto ts = util::TimestampOf(util::CivilDateTime{{2020, 2, 3}, 10, 0, 0});
  s.Add(ts, 5.0);
  s.Add(ts + 100, 2.5);
  EXPECT_DOUBLE_EQ(s.at(StudyCalendar::DayIndex(util::CivilDate{2020, 2, 3})), 7.5);
}

TEST(DailySeries, OutOfWindowIgnored) {
  DailySeries s;
  s.Add(util::TimestampOf(util::CivilDate{2019, 12, 1}), 100.0);
  s.Add(util::TimestampOf(util::CivilDate{2020, 7, 1}), 100.0);
  s.AddDay(-1, 100.0);
  s.AddDay(500, 100.0);
  for (int d = 0; d < s.num_days(); ++d) EXPECT_DOUBLE_EQ(s.at(d), 0.0);
}

TEST(DailySeries, MovingAverageFlatSeries) {
  DailySeries s(10);
  for (int d = 0; d < 10; ++d) s.AddDay(d, 4.0);
  const DailySeries ma = s.MovingAverage(3);
  for (int d = 0; d < 10; ++d) EXPECT_DOUBLE_EQ(ma.at(d), 4.0);
}

TEST(DailySeries, MovingAverageSmoothsSpike) {
  DailySeries s(7);
  s.AddDay(3, 9.0);
  const DailySeries ma = s.MovingAverage(3);
  EXPECT_DOUBLE_EQ(ma.at(2), 3.0);
  EXPECT_DOUBLE_EQ(ma.at(3), 3.0);
  EXPECT_DOUBLE_EQ(ma.at(4), 3.0);
  EXPECT_DOUBLE_EQ(ma.at(0), 0.0);
  // Edge day 1 averages days 0..2 => 3.
  EXPECT_DOUBLE_EQ(ma.at(1), 0.0);
}

TEST(DailySeries, MovingAverageWindowOnePassthrough) {
  DailySeries s(5);
  s.AddDay(2, 7.0);
  const DailySeries ma = s.MovingAverage(1);
  EXPECT_DOUBLE_EQ(ma.at(2), 7.0);
  EXPECT_DOUBLE_EQ(ma.at(1), 0.0);
}

TEST(DailySeries, SumRangeClamped) {
  DailySeries s(10);
  for (int d = 0; d < 10; ++d) s.AddDay(d, 1.0);
  EXPECT_DOUBLE_EQ(s.SumRange(2, 4), 3.0);
  EXPECT_DOUBLE_EQ(s.SumRange(-5, 100), 10.0);
  EXPECT_DOUBLE_EQ(s.SumRange(8, 3), 0.0);
}

TEST(HourOfWeek, BinMapping) {
  // Anchor at Thursday 2020-02-20 00:00 (a Fig. 3 week).
  const auto anchor = util::TimestampOf(util::CivilDate{2020, 2, 20});
  EXPECT_EQ(HourOfWeekSeries::BinOf(anchor, anchor), 0);
  EXPECT_EQ(HourOfWeekSeries::BinOf(anchor + 3600, anchor), 1);
  EXPECT_EQ(HourOfWeekSeries::BinOf(anchor + 26 * 3600, anchor), 26);  // Friday 2am
  EXPECT_EQ(HourOfWeekSeries::BinOf(anchor + 7 * 86400 - 1, anchor), 167);
  EXPECT_FALSE(HourOfWeekSeries::BinOf(anchor - 1, anchor).has_value());
  EXPECT_FALSE(HourOfWeekSeries::BinOf(anchor + 7 * 86400, anchor).has_value());
}

TEST(HourOfWeek, AccumulateAndScale) {
  HourOfWeekSeries s;
  s.AddBin(0, 10.0);
  s.AddBin(0, 5.0);
  s.AddBin(100, 3.0);
  EXPECT_DOUBLE_EQ(s.at(0), 15.0);
  s.Scale(3.0);
  EXPECT_DOUBLE_EQ(s.at(0), 5.0);
  EXPECT_DOUBLE_EQ(s.at(100), 1.0);
}

TEST(HourOfWeek, ScaleByZeroIsNoOp) {
  HourOfWeekSeries s;
  s.AddBin(5, 2.0);
  s.Scale(0.0);
  EXPECT_DOUBLE_EQ(s.at(5), 2.0);
}

TEST(HourOfWeek, MinPositiveSkipsZeros) {
  HourOfWeekSeries s;
  EXPECT_DOUBLE_EQ(s.MinPositive(), 0.0);
  s.AddBin(10, 4.0);
  s.AddBin(20, 2.0);
  EXPECT_DOUBLE_EQ(s.MinPositive(), 2.0);
}

TEST(HourOfWeek, OutOfRangeBinsIgnored) {
  HourOfWeekSeries s;
  s.AddBin(-1, 5.0);
  s.AddBin(168, 5.0);
  EXPECT_DOUBLE_EQ(s.MinPositive(), 0.0);
}

}  // namespace
}  // namespace lockdown::analysis
