// Differential kernel suite: every kernel in the SIMD table is run against
// its scalar twin on random, adversarial, and golden-fixture inputs, and the
// results must be bit-identical — the scalar TU is compiled with the
// auto-vectorizer off, so the two sides cannot share a miscompilation.
//
// Adversarial shapes: empty inputs, every length from 1 to a few SIMD widths
// (tail handling), unaligned base pointers (the kernels promise no alignment
// requirement), all-match and none-match masks, and bound extremes (0,
// UINT32_MAX). Fixtures assert absolute expected values against BOTH tables,
// so a bug shared by some future refactor of both sides still gets caught.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "query/kernels.h"

namespace lockdown::query {
namespace {

constexpr std::uint32_t kU32Max = std::numeric_limits<std::uint32_t>::max();

/// The lengths that stress SIMD tails: empty, every size through a few
/// vector widths (AVX2 processes 8 u32 per lane-group), and larger blocks
/// that exercise the unrolled main loop with every tail residue.
std::vector<std::size_t> TailLengths() {
  std::vector<std::size_t> lens;
  for (std::size_t n = 0; n <= 40; ++n) lens.push_back(n);
  for (std::size_t n : {std::size_t{63}, std::size_t{64}, std::size_t{65},
                        std::size_t{127}, std::size_t{1000}, std::size_t{4096},
                        std::size_t{4097}}) {
    lens.push_back(n);
  }
  return lens;
}

class KernelsDiffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (Simd() == nullptr) GTEST_SKIP() << "no SIMD table on this CPU/build";
  }
  const KernelTable& scalar_ = Scalar();
  const KernelTable& simd_ = *Simd();
  std::mt19937_64 rng_{20200316};

  std::vector<std::uint32_t> RandomU32(std::size_t n, std::uint32_t max) {
    std::uniform_int_distribution<std::uint32_t> dist(0, max);
    std::vector<std::uint32_t> v(n);
    for (auto& x : v) x = dist(rng_);
    return v;
  }
  std::vector<std::uint64_t> RandomU64(std::size_t n) {
    std::uniform_int_distribution<std::uint64_t> dist;
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = dist(rng_);
    return v;
  }
  std::vector<std::uint8_t> RandomMask(std::size_t n, double p_set) {
    std::bernoulli_distribution dist(p_set);
    std::vector<std::uint8_t> m(n);
    // Nonzero means "set": use varied nonzero values, not just 1, to catch
    // implementations that test for == 1 instead of != 0.
    std::uniform_int_distribution<int> val(1, 255);
    for (auto& x : m) x = dist(rng_) ? static_cast<std::uint8_t>(val(rng_)) : 0;
    return m;
  }
};

TEST_F(KernelsDiffTest, CountLessMatchesOnRandomAndTails) {
  for (const std::size_t n : TailLengths()) {
    auto v = RandomU32(n, 1000);
    std::vector<std::uint32_t> bounds = {0, 1, 500, 999, 1000, 1001, kU32Max};
    if (n > 0) bounds.push_back(v[n / 2]);
    for (const std::uint32_t bound : bounds) {
      ASSERT_EQ(scalar_.count_less_u32(v.data(), n, bound),
                simd_.count_less_u32(v.data(), n, bound))
          << "n=" << n << " bound=" << bound;
    }
    // Unaligned base pointers (the SIMD loads must not assume alignment).
    for (std::size_t off = 1; off < std::min<std::size_t>(4, n); ++off) {
      ASSERT_EQ(scalar_.count_less_u32(v.data() + off, n - off, 500),
                simd_.count_less_u32(v.data() + off, n - off, 500))
          << "n=" << n << " off=" << off;
    }
  }
}

TEST_F(KernelsDiffTest, CountLessIsLowerBoundRankOnSortedInput) {
  // The property the figure passes rely on: on sorted data, count_less is
  // the std::lower_bound rank, so [lo, hi) windows come from two calls.
  auto v = RandomU32(4096, 100000);
  std::sort(v.begin(), v.end());
  for (const std::uint32_t bound : RandomU32(200, 110000)) {
    const auto want = static_cast<std::size_t>(
        std::lower_bound(v.begin(), v.end(), bound) - v.begin());
    ASSERT_EQ(scalar_.count_less_u32(v.data(), v.size(), bound), want);
    ASSERT_EQ(simd_.count_less_u32(v.data(), v.size(), bound), want);
  }
}

TEST_F(KernelsDiffTest, SumMatchesIncludingWraparound) {
  for (const std::size_t n : TailLengths()) {
    const auto v = RandomU64(n);  // full-range values force u64 wrap-around
    ASSERT_EQ(scalar_.sum_u64(v.data(), n), simd_.sum_u64(v.data(), n))
        << "n=" << n;
  }
}

TEST_F(KernelsDiffTest, MaskedSumMatchesOnAllMaskDensities) {
  for (const std::size_t n : TailLengths()) {
    const auto v = RandomU64(n);
    for (const double density : {0.0, 0.03, 0.5, 0.97, 1.0}) {
      const auto mask = RandomMask(n, density);
      ASSERT_EQ(scalar_.masked_sum_u64(v.data(), mask.data(), n),
                simd_.masked_sum_u64(v.data(), mask.data(), n))
          << "n=" << n << " density=" << density;
    }
  }
}

TEST_F(KernelsDiffTest, MaskedRangeSumMatchesOnWindowExtremes) {
  for (const std::size_t n : TailLengths()) {
    const auto ts = RandomU32(n, 10000);
    const auto bytes = RandomU64(n);
    const auto mask = RandomMask(n, 0.7);
    const std::uint32_t windows[][2] = {
        {0, 0},          {0, 1},      {0, kU32Max}, {5000, 5000},
        {2500, 7500},    {9999, 10001}, {kU32Max, kU32Max}, {10000, 0},
    };
    for (const auto& w : windows) {
      ASSERT_EQ(
          scalar_.masked_range_sum_u64(ts.data(), bytes.data(), mask.data(), n,
                                       w[0], w[1]),
          simd_.masked_range_sum_u64(ts.data(), bytes.data(), mask.data(), n,
                                     w[0], w[1]))
          << "n=" << n << " window=[" << w[0] << "," << w[1] << ")";
    }
  }
}

TEST_F(KernelsDiffTest, CountNonzeroMatches) {
  for (const std::size_t n : TailLengths()) {
    for (const double density : {0.0, 0.5, 1.0}) {
      const auto mask = RandomMask(n, density);
      ASSERT_EQ(scalar_.count_nonzero_u8(mask.data(), n),
                simd_.count_nonzero_u8(mask.data(), n))
          << "n=" << n << " density=" << density;
    }
  }
}

TEST_F(KernelsDiffTest, FlagMaskMatchesOnRandomIdsAndLuts) {
  for (const std::size_t n : TailLengths()) {
    for (const std::size_t lut_size :
         {std::size_t{1}, std::size_t{7}, std::size_t{256}, std::size_t{5000}}) {
      std::uniform_int_distribution<int> bit(0, 1);
      const ByteLut lut(lut_size, [&](std::size_t) { return bit(rng_) != 0; });
      const auto ids =
          RandomU32(n, static_cast<std::uint32_t>(lut_size - 1));
      std::vector<std::uint8_t> out_scalar(n, 0xAA);
      std::vector<std::uint8_t> out_simd(n, 0x55);
      scalar_.flag_mask_u8(ids.data(), n, lut.data(), lut.size(),
                           out_scalar.data());
      simd_.flag_mask_u8(ids.data(), n, lut.data(), lut.size(),
                         out_simd.data());
      ASSERT_EQ(out_scalar, out_simd) << "n=" << n << " lut=" << lut_size;
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out_scalar[i], lut.data()[ids[i]] != 0 ? 1 : 0) << i;
      }
    }
  }
}

TEST_F(KernelsDiffTest, DaySumsAndMarkDaysMatch) {
  // These stay scalar in both tables (scatter writes), but the differential
  // contract covers them anyway: a future vectorization must not change
  // results, including the drop of out-of-range days.
  constexpr std::uint32_t kDaySeconds = 86400;
  for (const std::size_t n : TailLengths()) {
    const auto ts = RandomU32(n, 40 * kDaySeconds);  // some beyond num_days
    const auto bytes = RandomU64(n);
    const auto mask = RandomMask(n, 0.6);
    for (const std::uint32_t num_days : {0u, 1u, 30u}) {
      std::vector<std::uint64_t> sums_a(num_days, 0);
      std::vector<std::uint64_t> sums_b(num_days, 0);
      scalar_.day_sums_u64(ts.data(), bytes.data(), n, kDaySeconds,
                           sums_a.data(), num_days);
      simd_.day_sums_u64(ts.data(), bytes.data(), n, kDaySeconds,
                         sums_b.data(), num_days);
      ASSERT_EQ(sums_a, sums_b) << "n=" << n << " days=" << num_days;

      std::fill(sums_a.begin(), sums_a.end(), 0);
      std::fill(sums_b.begin(), sums_b.end(), 0);
      scalar_.masked_day_sums_u64(ts.data(), bytes.data(), mask.data(), n,
                                  kDaySeconds, sums_a.data(), num_days);
      simd_.masked_day_sums_u64(ts.data(), bytes.data(), mask.data(), n,
                                kDaySeconds, sums_b.data(), num_days);
      ASSERT_EQ(sums_a, sums_b) << "n=" << n << " days=" << num_days;

      std::vector<std::uint8_t> days_a(num_days, 0);
      std::vector<std::uint8_t> days_b(num_days, 0);
      scalar_.mark_days_u8(ts.data(), n, kDaySeconds, days_a.data(), num_days);
      simd_.mark_days_u8(ts.data(), n, kDaySeconds, days_b.data(), num_days);
      ASSERT_EQ(days_a, days_b) << "n=" << n << " days=" << num_days;
    }
  }
}

// --- Golden fixtures: absolute expected values against BOTH tables ----------

TEST(KernelFixtures, CountLess) {
  const std::uint32_t v[] = {3, 1, 4, 1, 5, 9, 2, 6};
  for (const KernelTable* t : {&Scalar(), Simd()}) {
    if (t == nullptr) continue;
    EXPECT_EQ(t->count_less_u32(v, 8, 0), 0u);
    EXPECT_EQ(t->count_less_u32(v, 8, 4), 4u);   // 3,1,1,2
    EXPECT_EQ(t->count_less_u32(v, 8, 10), 8u);
    EXPECT_EQ(t->count_less_u32(v, 0, 4), 0u);
    EXPECT_EQ(t->count_less_u32(nullptr, 0, 4), 0u);
  }
}

TEST(KernelFixtures, MaskedSums) {
  const std::uint64_t v[] = {10, 20, 30, 40};
  const std::uint8_t mask[] = {1, 0, 255, 0};
  const std::uint32_t ts[] = {5, 15, 25, 35};
  for (const KernelTable* t : {&Scalar(), Simd()}) {
    if (t == nullptr) continue;
    EXPECT_EQ(t->sum_u64(v, 4), 100u);
    EXPECT_EQ(t->masked_sum_u64(v, mask, 4), 40u);
    EXPECT_EQ(t->masked_range_sum_u64(ts, v, mask, 4, 0, 26), 40u);
    EXPECT_EQ(t->masked_range_sum_u64(ts, v, mask, 4, 10, 26), 30u);
    EXPECT_EQ(t->masked_range_sum_u64(ts, v, mask, 4, 26, 10), 0u);
    EXPECT_EQ(t->count_nonzero_u8(mask, 4), 2u);
  }
}

TEST(KernelFixtures, DayScatter) {
  const std::uint32_t ts[] = {0, 9, 10, 19, 20, 29, 1000};  // day_seconds=10
  const std::uint64_t bytes[] = {1, 2, 4, 8, 16, 32, 64};
  for (const KernelTable* t : {&Scalar(), Simd()}) {
    if (t == nullptr) continue;
    std::uint64_t sums[3] = {0, 0, 0};
    t->day_sums_u64(ts, bytes, 7, 10, sums, 3);  // ts=1000 -> day 100, dropped
    EXPECT_EQ(sums[0], 3u);
    EXPECT_EQ(sums[1], 12u);
    EXPECT_EQ(sums[2], 48u);
    std::uint8_t days[3] = {0, 0, 0};
    t->mark_days_u8(ts + 4, 3, 10, days, 3);  // ts 20,29 -> day 2; 1000 dropped
    EXPECT_EQ(days[0], 0);
    EXPECT_EQ(days[1], 0);
    EXPECT_EQ(days[2], 1);
  }
}

}  // namespace
}  // namespace lockdown::query
