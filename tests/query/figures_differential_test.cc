// The tentpole proof: Figures 1-8 (plus extension analyses and headline
// stats) are bit-identical across {scalar, SIMD} dispatch x {1, 4} threads
// x {v2, v3, v3-compressed} snapshot formats — twelve configurations, one
// canonical %.17g rendering each, all compared byte-for-byte against the
// scalar/serial baseline computed straight from the pipeline.
//
// This is what licenses the vectorized query path: not "close", identical.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/study.h"
#include "query/kernels.h"
#include "store/snapshot.h"
#include "world/catalog.h"

#include "../core/figure_render.h"

namespace lockdown::query {
namespace {

constexpr int kStudents = 48;
constexpr std::uint64_t kSeed = 77;

class FiguresDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // gtest_discover_tests runs each TEST as its own process, so the suite
    // directory must be per-process or parallel ctest races remove_all.
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("lockdown_fig_diff_test_" + std::to_string(::getpid())));
    std::filesystem::remove_all(*dir_);
    std::filesystem::create_directories(*dir_);
    collection_ = new core::CollectionResult(core::MeasurementPipeline::Collect(
        core::StudyConfig::Small(kStudents, kSeed)));
    store::SaveSnapshot(*dir_ / "v2.lds", *collection_, {},
                        {.format_version = 2});
    store::SaveSnapshot(*dir_ / "v3.lds", *collection_, {},
                        {.format_version = 3});
    store::SaveSnapshot(*dir_ / "v3c.lds", *collection_, {},
                        {.format_version = 3, .compress = true});
    // The baseline every configuration must reproduce byte-for-byte:
    // scalar dispatch, serial, straight from the pipeline.
    SetDispatchForTest(DispatchKind::kScalar);
    const core::LockdownStudy study(collection_->dataset,
                                    world::ServiceCatalog::Default(), 1);
    baseline_ = new std::string(
        core::testing::RenderFigures(*collection_, study));
    ReresolveDispatchForTest();
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    delete collection_;
    delete baseline_;
    dir_ = nullptr;
    collection_ = nullptr;
    baseline_ = nullptr;
  }

  /// Renders all figures for one configuration cell.
  static std::string Render(const core::CollectionResult& collection,
                            DispatchKind dispatch, int threads) {
    SetDispatchForTest(dispatch);
    const core::LockdownStudy study(collection.dataset,
                                    world::ServiceCatalog::Default(), threads);
    std::string rendered = core::testing::RenderFigures(collection, study);
    ReresolveDispatchForTest();
    return rendered;
  }

  static void ExpectIdentical(const std::string& rendered, const char* what) {
    ASSERT_FALSE(baseline_->empty());
    if (rendered == *baseline_) return;
    // Pinpoint the first diverging line instead of dumping both blobs.
    std::size_t line = 1;
    std::size_t pos = 0;
    const std::size_t n = std::min(rendered.size(), baseline_->size());
    while (pos < n && rendered[pos] == (*baseline_)[pos]) {
      line += rendered[pos] == '\n';
      ++pos;
    }
    FAIL() << what << " diverges from the scalar/serial baseline at line "
           << line << " (byte " << pos << " of " << baseline_->size() << ")";
  }

  static std::filesystem::path* dir_;
  static core::CollectionResult* collection_;
  static std::string* baseline_;
};

std::filesystem::path* FiguresDifferentialTest::dir_ = nullptr;
core::CollectionResult* FiguresDifferentialTest::collection_ = nullptr;
std::string* FiguresDifferentialTest::baseline_ = nullptr;

TEST_F(FiguresDifferentialTest, AllTwelveConfigurationsBitIdentical) {
  const bool have_simd = Simd() != nullptr;
  if (!have_simd) {
    ADD_FAILURE() << "SIMD table unavailable; the 12-cell matrix would "
                     "silently shrink (this repo targets AVX2 hosts)";
  }
  int cells = 0;
  for (const char* file : {"v2.lds", "v3.lds", "v3c.lds"}) {
    const store::LoadedSnapshot snap = store::LoadSnapshot(*dir_ / file);
    ASSERT_TRUE(snap.warnings.empty()) << file;
    for (const DispatchKind dispatch :
         {DispatchKind::kScalar, DispatchKind::kSimd}) {
      if (dispatch == DispatchKind::kSimd && !have_simd) continue;
      for (const int threads : {1, 4}) {
        const std::string rendered =
            Render(snap.collection, dispatch, threads);
        const std::string what = std::string(file) + " / " +
                                 ToString(dispatch) + " / threads=" +
                                 std::to_string(threads);
        ExpectIdentical(rendered, what.c_str());
        ++cells;
      }
    }
  }
  EXPECT_EQ(cells, have_simd ? 12 : 6);
}

TEST_F(FiguresDifferentialTest, PipelineCollectionMatchesAcrossDispatch) {
  // Same matrix without the store round-trip: isolates study-layer dispatch
  // or threading divergence from snapshot codec bugs.
  ExpectIdentical(Render(*collection_, DispatchKind::kScalar, 4),
                  "direct / scalar / threads=4");
  if (Simd() != nullptr) {
    ExpectIdentical(Render(*collection_, DispatchKind::kSimd, 1),
                    "direct / simd / threads=1");
    ExpectIdentical(Render(*collection_, DispatchKind::kSimd, 4),
                    "direct / simd / threads=4");
  }
}

}  // namespace
}  // namespace lockdown::query
