// Runtime dispatch selection: LOCKDOWN_NO_SIMD=1 must actually select the
// scalar reference table, and the decision must be observable through the
// metrics registry as the gauge "query/kernel_dispatch" (0 = scalar,
// 1 = simd) — so a silently broken fallback cannot ship.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "query/kernels.h"

namespace lockdown::query {
namespace {

std::optional<double> DispatchGauge() {
  for (const auto& g : obs::SnapshotMetrics().gauges) {
    if (g.name == "query/kernel_dispatch") return g.value;
  }
  return std::nullopt;
}

class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* old = std::getenv("LOCKDOWN_NO_SIMD");
    if (old != nullptr) saved_env_ = old;
    obs::SetMetricsEnabled(true);
  }
  void TearDown() override {
    // Restore the environment-driven selection for the rest of the binary.
    if (saved_env_) {
      ::setenv("LOCKDOWN_NO_SIMD", saved_env_->c_str(), 1);
    } else {
      ::unsetenv("LOCKDOWN_NO_SIMD");
    }
    ReresolveDispatchForTest();
    obs::SetMetricsEnabled(false);
  }
  std::optional<std::string> saved_env_;
};

TEST_F(DispatchTest, NoSimdEnvSelectsScalarTable) {
  ASSERT_EQ(::setenv("LOCKDOWN_NO_SIMD", "1", 1), 0);
  EXPECT_EQ(ReresolveDispatchForTest(), DispatchKind::kScalar);
  EXPECT_EQ(ActiveKind(), DispatchKind::kScalar);
  // The active table is the scalar reference itself, not a copy.
  EXPECT_EQ(&Active(), &Scalar());
  const auto gauge = DispatchGauge();
  ASSERT_TRUE(gauge.has_value())
      << "dispatch did not publish query/kernel_dispatch";
  EXPECT_EQ(*gauge, 0.0);
}

TEST_F(DispatchTest, EmptyAndZeroValuesDoNotDisableSimd) {
  if (Simd() == nullptr) GTEST_SKIP() << "no SIMD table on this CPU/build";
  for (const char* v : {"", "0"}) {
    ASSERT_EQ(::setenv("LOCKDOWN_NO_SIMD", v, 1), 0);
    EXPECT_EQ(ReresolveDispatchForTest(), DispatchKind::kSimd)
        << "LOCKDOWN_NO_SIMD=\"" << v << "\" should not force scalar";
  }
}

TEST_F(DispatchTest, SimdSelectedWhenAvailableAndPublishesGauge) {
  if (Simd() == nullptr) GTEST_SKIP() << "no SIMD table on this CPU/build";
  ASSERT_EQ(::unsetenv("LOCKDOWN_NO_SIMD"), 0);
  EXPECT_EQ(ReresolveDispatchForTest(), DispatchKind::kSimd);
  EXPECT_EQ(&Active(), Simd());
  const auto gauge = DispatchGauge();
  ASSERT_TRUE(gauge.has_value());
  EXPECT_EQ(*gauge, 1.0);
}

TEST_F(DispatchTest, SetDispatchForTestForcesAndRepublishes) {
  SetDispatchForTest(DispatchKind::kScalar);
  EXPECT_EQ(ActiveKind(), DispatchKind::kScalar);
  EXPECT_EQ(DispatchGauge().value_or(-1.0), 0.0);
  if (Simd() != nullptr) {
    SetDispatchForTest(DispatchKind::kSimd);
    EXPECT_EQ(ActiveKind(), DispatchKind::kSimd);
    EXPECT_EQ(DispatchGauge().value_or(-1.0), 1.0);
  }
}

}  // namespace
}  // namespace lockdown::query
