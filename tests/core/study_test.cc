// Integration tests: the full pipeline plus every paper analysis, asserting
// the qualitative claims of the paper hold on the synthetic campus.
#include "core/study.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "sim/timeline.h"

namespace lockdown::core {
namespace {

using util::StudyCalendar;

int Day(int month, int day) {
  return StudyCalendar::DayIndex(util::CivilDate{2020, month, day});
}

class StudyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new StudyConfig(StudyConfig::Small(400, 2020));
    result_ = new CollectionResult(MeasurementPipeline::Collect(*config_));
    study_ = new LockdownStudy(result_->dataset, world::ServiceCatalog::Default());
  }
  static void TearDownTestSuite() {
    delete study_;
    delete result_;
    delete config_;
    study_ = nullptr;
    result_ = nullptr;
    config_ = nullptr;
  }

  static StudyConfig* config_;
  static CollectionResult* result_;
  static LockdownStudy* study_;
};

StudyConfig* StudyTest::config_ = nullptr;
CollectionResult* StudyTest::result_ = nullptr;
LockdownStudy* StudyTest::study_ = nullptr;

// --- Figure 1 ---------------------------------------------------------------

TEST_F(StudyTest, Fig1_DeviceCountCollapsesDuringMarch) {
  const auto rows = study_->ActiveDevicesPerDay();
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(StudyCalendar::NumDays()));
  const int feb_typical = rows[static_cast<std::size_t>(Day(2, 12))].total;
  const int late_april = rows[static_cast<std::size_t>(Day(4, 22))].total;
  EXPECT_GT(feb_typical, 3 * late_april);
}

TEST_F(StudyTest, Fig1_WeekendDips) {
  // Weekday activity beats the adjacent weekend before the pandemic.
  const auto rows = study_->ActiveDevicesPerDay();
  const int wed = rows[static_cast<std::size_t>(Day(2, 12))].total;
  const int sat = rows[static_cast<std::size_t>(Day(2, 15))].total;
  EXPECT_GT(wed, sat);
}

TEST_F(StudyTest, Fig1_UnclassifiedDominatesPostShutdown) {
  const auto rows = study_->ActiveDevicesPerDay();
  const auto& row = rows[static_cast<std::size_t>(Day(4, 22))];
  const int unclassified =
      row.by_class[static_cast<std::size_t>(ReportClass::kUnclassified)];
  EXPECT_GE(unclassified,
            row.by_class[static_cast<std::size_t>(ReportClass::kIot)]);
}

TEST_F(StudyTest, Fig1_MobileAndLaptopRoughlyOneToOnePreShutdown) {
  const auto rows = study_->ActiveDevicesPerDay();
  const auto& row = rows[static_cast<std::size_t>(Day(2, 18))];
  const double mobile = row.by_class[static_cast<std::size_t>(ReportClass::kMobile)];
  const double laptop =
      row.by_class[static_cast<std::size_t>(ReportClass::kLaptopDesktop)];
  EXPECT_GT(mobile / laptop, 0.5);
  EXPECT_LT(mobile / laptop, 2.0);
}

// --- Figure 2 ---------------------------------------------------------------

TEST_F(StudyTest, Fig2_MeansExceedMedians) {
  // "some high-volume traffic devices skew the means to be much greater than
  //  the medians" (§4).
  const auto rows = study_->BytesPerDevicePerDay();
  int mean_above = 0, total = 0;
  for (const auto& row : rows) {
    for (int c = 0; c < kNumReportClasses; ++c) {
      if (row.median[static_cast<std::size_t>(c)] <= 0) continue;
      ++total;
      mean_above += row.mean[static_cast<std::size_t>(c)] >
                    row.median[static_cast<std::size_t>(c)];
    }
  }
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(mean_above) / total, 0.95);
}

TEST_F(StudyTest, Fig2_IotAndUnclassifiedSkewSpansOrdersOfMagnitude) {
  // "especially noticeable for IoT and unclassified devices, where the
  //  difference spans several orders of magnitude". IoT mixes heartbeat-only
  //  plugs with streaming TVs and reproduces the multi-order gap; the
  //  unclassified gap is smaller here because our unclassified population is
  //  dominated by hidden phones (see EXPERIMENTS.md).
  const auto rows = study_->BytesPerDevicePerDay();
  double iot_ratio = 0;
  double unc_ratio = 0;
  for (const auto& row : rows) {
    const double iot_med = row.median[static_cast<std::size_t>(ReportClass::kIot)];
    if (iot_med > 0) {
      iot_ratio = std::max(
          iot_ratio, row.mean[static_cast<std::size_t>(ReportClass::kIot)] / iot_med);
    }
    const double unc_med =
        row.median[static_cast<std::size_t>(ReportClass::kUnclassified)];
    if (unc_med > 0) {
      unc_ratio = std::max(
          unc_ratio,
          row.mean[static_cast<std::size_t>(ReportClass::kUnclassified)] / unc_med);
    }
  }
  EXPECT_GT(iot_ratio, 100.0);  // several orders of magnitude
  EXPECT_GT(unc_ratio, 5.0);    // pronounced but smaller (calibration note)
}

// --- Figure 3 ---------------------------------------------------------------

TEST_F(StudyTest, Fig3_ShutdownWeekdaysSpikeEarlierAndHigher) {
  const auto how = study_->HourOfWeekVolume();
  ASSERT_GT(how.normalization, 0.0);
  // Weeks: [0]=2/20 (pre), [2]=4/9 (shutdown). Bins anchor on Thursday.
  const auto& pre = how.weeks[0];
  const auto& shut = how.weeks[2];
  // Morning hours (Thu 9am-noon = bins 9..11) grow substantially.
  double pre_morning = 0, shut_morning = 0;
  for (int h = 9; h <= 11; ++h) {
    pre_morning += pre.at(h);
    shut_morning += shut.at(h);
  }
  EXPECT_GT(shut_morning, pre_morning);
}

TEST_F(StudyTest, Fig3_WeekendsRelativelyUnchanged) {
  const auto how = study_->HourOfWeekVolume();
  // Saturday/Sunday are days 2-3 of the Thursday-anchored week. Compare
  // waking hours (9am-11pm): the midnight bins hold a handful of heavy
  // spill-over sessions whose medians are pure noise at this scale.
  double pre_weekend = 0, shut_weekend = 0;
  for (int day = 2; day <= 3; ++day) {
    for (int h = 9; h < 24; ++h) {
      pre_weekend += how.weeks[0].at(day * 24 + h);
      shut_weekend += how.weeks[2].at(day * 24 + h);
    }
  }
  const double ratio = shut_weekend / pre_weekend;
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

// --- §4.2 split ---------------------------------------------------------------

TEST_F(StudyTest, Split_InternationalShareNearPaper) {
  // Paper: 1,022 of 6,522 post-shutdown devices (~16-18%).
  const auto& split = study_->Split();
  const double share = static_cast<double>(split.num_international) /
                       static_cast<double>(study_->PostShutdownDevices().size());
  EXPECT_GT(share, 0.08);
  EXPECT_LT(share, 0.33);
}

TEST_F(StudyTest, Fig4_InternationalTrafficRisesDuringBreak) {
  const auto rows = study_->MedianBytesExcludingZoom();
  double intl_break = 0, intl_pre = 0, dom_break = 0, dom_pre = 0;
  for (int d = Day(3, 23); d <= Day(3, 28); ++d) {
    intl_break += rows[static_cast<std::size_t>(d)].intl_mobile_desktop;
    dom_break += rows[static_cast<std::size_t>(d)].dom_mobile_desktop;
  }
  for (int d = Day(2, 17); d <= Day(2, 22); ++d) {
    intl_pre += rows[static_cast<std::size_t>(d)].intl_mobile_desktop;
    dom_pre += rows[static_cast<std::size_t>(d)].dom_mobile_desktop;
  }
  ASSERT_GT(intl_pre, 0.0);
  ASSERT_GT(dom_pre, 0.0);
  // "the volume of traffic increases for international students but remains
  //  stable for domestic students" during break.
  EXPECT_GT(intl_break / intl_pre, dom_break / dom_pre);
}

// --- Figure 5 ---------------------------------------------------------------

TEST_F(StudyTest, Fig5_ZoomExplodesWithOnlineClasses) {
  const auto zoom = study_->ZoomDailyBytes();
  const double feb = zoom.SumRange(Day(2, 3), Day(2, 28));
  const double april = zoom.SumRange(Day(4, 1), Day(4, 26));
  EXPECT_GT(april, 10 * feb);
}

TEST_F(StudyTest, Fig5_ZoomWeekendDips) {
  // "there are periodic dips that occur during the weekends" (§5.1).
  const auto zoom = study_->ZoomDailyBytes();
  const double tue = zoom.at(Day(4, 14));
  const double wed = zoom.at(Day(4, 15));
  const double sat = zoom.at(Day(4, 18));
  const double sun = zoom.at(Day(4, 19));
  EXPECT_GT((tue + wed) / 2.0, 3.0 * (sat + sun) / 2.0);
}

TEST_F(StudyTest, Fig5_ZoomQuietDuringBreak) {
  const auto zoom = study_->ZoomDailyBytes();
  const double break_day = zoom.at(Day(3, 25));
  const double term_day = zoom.at(Day(4, 15));
  EXPECT_GT(term_day, 5 * break_day);
}

// --- Figure 6 ---------------------------------------------------------------

TEST_F(StudyTest, Fig6a_FacebookDomesticDeclinesByMay) {
  const auto feb = study_->SocialDurations(apps::SocialApp::kFacebook, 2);
  const auto may = study_->SocialDurations(apps::SocialApp::kFacebook, 5);
  ASSERT_GT(feb.domestic.n, 5u);
  ASSERT_GT(may.domestic.n, 5u);
  EXPECT_LT(may.domestic.median, feb.domestic.median);
}

TEST_F(StudyTest, Fig6a_FacebookInternationalIncreases) {
  const auto feb = study_->SocialDurations(apps::SocialApp::kFacebook, 2);
  const auto may = study_->SocialDurations(apps::SocialApp::kFacebook, 5);
  if (feb.international.n >= 5 && may.international.n >= 5) {
    EXPECT_GT(may.international.median, feb.international.median);
  }
  // February: domestic more active than international.
  EXPECT_GT(feb.domestic.median, feb.international.median);
}

TEST_F(StudyTest, Fig6b_InstagramDomesticStableThenMayDrop) {
  const auto feb = study_->SocialDurations(apps::SocialApp::kInstagram, 2);
  const auto apr = study_->SocialDurations(apps::SocialApp::kInstagram, 4);
  const auto may = study_->SocialDurations(apps::SocialApp::kInstagram, 5);
  ASSERT_GT(feb.domestic.n, 5u);
  // "relatively unchanged from February through April".
  EXPECT_LT(std::abs(apr.domestic.median - feb.domestic.median),
            0.6 * feb.domestic.median);
  // "...but decreases in May".
  EXPECT_LT(may.domestic.median, apr.domestic.median);
}

TEST_F(StudyTest, Fig6c_TikTokUpperTailGrows) {
  const auto feb = study_->SocialDurations(apps::SocialApp::kTikTok, 2);
  const auto may = study_->SocialDurations(apps::SocialApp::kTikTok, 5);
  if (feb.domestic.n >= 8 && may.domestic.n >= 8) {
    // "the third quartile and 99th percentile both increase steadily".
    EXPECT_GT(may.domestic.q3, feb.domestic.q3);
  }
}

TEST_F(StudyTest, Fig6c_TikTokInternationalLessActive) {
  const auto mar = study_->SocialDurations(apps::SocialApp::kTikTok, 3);
  // "International users were much less active on TikTok than domestic
  //  users" — their participation count is far lower.
  EXPECT_LT(mar.international.n, mar.domestic.n);
}

TEST_F(StudyTest, Fig6_AdoptionGrowsForTikTok) {
  const auto feb = study_->SocialDurations(apps::SocialApp::kTikTok, 2);
  const auto may = study_->SocialDurations(apps::SocialApp::kTikTok, 5);
  EXPECT_GE(may.domestic.n, feb.domestic.n);
}

// --- Figure 7 ---------------------------------------------------------------

TEST_F(StudyTest, Fig7a_SteamBytesRiseInMarchThenFall) {
  const auto feb = study_->SteamUsage(2);
  const auto mar = study_->SteamUsage(3);
  const auto may = study_->SteamUsage(5);
  ASSERT_GT(feb.dom_bytes.n, 10u);
  EXPECT_GT(mar.dom_bytes.median, feb.dom_bytes.median);
  EXPECT_LT(may.dom_bytes.median, mar.dom_bytes.median);
}

TEST_F(StudyTest, Fig7a_InternationalSteamHeavierDuringShutdown) {
  // "international students ... spend more time on Steam" (§1), with usage
  // still elevated in April while domestic usage has fallen.
  const auto apr = study_->SteamUsage(4);
  if (apr.intl_bytes.n >= 5) {
    EXPECT_GT(apr.intl_bytes.median, apr.dom_bytes.median);
  }
}

TEST_F(StudyTest, Fig7b_DomesticConnectionsDecline) {
  const auto feb = study_->SteamUsage(2);
  const auto may = study_->SteamUsage(5);
  EXPECT_LT(may.dom_conns.median, feb.dom_conns.median);
}

TEST_F(StudyTest, Fig7_ParticipationGrows) {
  // Fig. 7's n= grows from 681 to 1,243 domestic devices.
  const auto feb = study_->SteamUsage(2);
  const auto may = study_->SteamUsage(5);
  EXPECT_GT(may.dom_bytes.n, feb.dom_bytes.n);
}

// --- Figure 8 / Switch counts -------------------------------------------------

TEST_F(StudyTest, Fig8_GameplaySpikesDuringBreak) {
  const auto series = study_->SwitchGameplayDaily();
  const double pre = series.SumRange(Day(2, 5), Day(2, 18)) / 14.0;
  const double brk = series.SumRange(Day(3, 22), Day(3, 29)) / 8.0;
  ASSERT_GT(pre, 0.0);
  EXPECT_GT(brk, 1.4 * pre);
}

TEST_F(StudyTest, Fig8_LateMayRisesAgainAfterLull) {
  const auto series = study_->SwitchGameplayDaily();
  const double lull = series.SumRange(Day(4, 20), Day(5, 3)) / 14.0;
  const double late_may = series.SumRange(Day(5, 12), Day(5, 25)) / 14.0;
  EXPECT_GT(late_may, lull);
}

TEST_F(StudyTest, SwitchCountsFallAfterShutdown) {
  const auto counts = study_->CountSwitches();
  // Paper: 1,097 -> 267, plus 40 new Switches in April/May.
  EXPECT_GT(counts.active_february, 0u);
  EXPECT_LT(counts.active_post_shutdown, counts.active_february);
  EXPECT_GT(counts.new_in_april_may, 0u);
}

// --- Headline statistics -------------------------------------------------------

TEST_F(StudyTest, Headline_PeakTroughShape) {
  const auto h = study_->HeadlineStats();
  // Paper: 32,019 -> 4,973 (~6.4x drop); we accept a 3-9x band.
  const double drop = static_cast<double>(h.peak_active_devices) /
                      static_cast<double>(h.trough_active_devices);
  EXPECT_GT(drop, 3.0);
  EXPECT_LT(drop, 9.0);
  // Paper: 6,522 post-shutdown users > the 4,973 trough.
  EXPECT_GT(h.post_shutdown_users,
            static_cast<std::size_t>(h.trough_active_devices));
}

TEST_F(StudyTest, Headline_TrafficIncreaseNearPaper) {
  // "increases by 58% from February to April and May 2020".
  const auto h = study_->HeadlineStats();
  EXPECT_GT(h.traffic_increase, 0.30);
  EXPECT_LT(h.traffic_increase, 1.10);
}

TEST_F(StudyTest, Headline_DistinctSitesIncreaseNearPaper) {
  // "users visited 34% more distinct sites in April and May".
  const auto h = study_->HeadlineStats();
  EXPECT_GT(h.distinct_sites_increase, 0.15);
  EXPECT_LT(h.distinct_sites_increase, 0.60);
}

// --- Classification sanity ------------------------------------------------------

TEST_F(StudyTest, EveryClassRepresented) {
  std::array<int, 5> counts{};
  for (const auto& c : study_->classifications()) {
    ++counts[static_cast<std::size_t>(c.device_class)];
  }
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST_F(StudyTest, GroupingMatchesPaperLegend) {
  EXPECT_EQ(LockdownStudy::GroupOf(classify::DeviceClass::kGameConsole),
            ReportClass::kIot);
  EXPECT_EQ(LockdownStudy::GroupOf(classify::DeviceClass::kUnknown),
            ReportClass::kUnclassified);
}

}  // namespace
}  // namespace lockdown::core
