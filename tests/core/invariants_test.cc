// Cross-seed property tests: structural invariants of the pipeline that must
// hold for ANY configuration, not just the calibrated default.
#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "core/pipeline.h"
#include "core/study.h"
#include "sim/timeline.h"

namespace lockdown::core {
namespace {

class InvariantTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  // One collection per seed, shared across the suite's tests.
  static const CollectionResult& Result(std::uint64_t seed) {
    static std::map<std::uint64_t, CollectionResult> cache;
    auto it = cache.find(seed);
    if (it == cache.end()) {
      it = cache.emplace(seed, MeasurementPipeline::Collect(
                                   StudyConfig::Small(120, seed)))
               .first;
    }
    return it->second;
  }

  InvariantTest() : result_(Result(GetParam())) {}

  const CollectionResult& result_;
};

TEST_P(InvariantTest, FlowTimestampsInsideStudyWindow) {
  const auto start = util::StudyCalendar::StartTs();
  const auto end = util::StudyCalendar::EndTs() + util::kSecondsPerDay;  // spill
  for (const Flow& f : result_.dataset.flows()) {
    const auto ts = Dataset::StartOf(f);
    EXPECT_GE(ts, start);
    EXPECT_LT(ts, end);
    EXPECT_GE(f.duration_s, 0.0F);
  }
}

TEST_P(InvariantTest, NoTapExcludedServersInDataset) {
  const auto& catalog = world::ServiceCatalog::Default();
  for (const Flow& f : result_.dataset.flows()) {
    const auto svc = catalog.FindByIp(f.server_ip);
    ASSERT_TRUE(svc.has_value());
    EXPECT_FALSE(catalog.Get(*svc).tap_excluded);
  }
}

TEST_P(InvariantTest, EveryRetainedDeviceMeetsVisitorThreshold) {
  std::unordered_map<DeviceIndex, std::unordered_set<int>> days;
  for (const Flow& f : result_.dataset.flows()) {
    days[f.device].insert(Dataset::DayOf(f));
  }
  for (const auto& [dev, active_days] : days) {
    EXPECT_GE(active_days.size(), 14u) << "device " << dev;
  }
}

TEST_P(InvariantTest, DomainsConsistentWithServerAddresses) {
  // A DNS-mapped domain must belong to the service owning the address: the
  // contemporaneous join may miss (kNoDomain) but must never cross services.
  const auto& catalog = world::ServiceCatalog::Default();
  for (const Flow& f : result_.dataset.flows()) {
    if (f.domain == kNoDomain) continue;
    const auto by_ip = catalog.FindByIp(f.server_ip);
    const auto by_host = catalog.FindByHost(result_.dataset.DomainName(f.domain));
    ASSERT_TRUE(by_ip.has_value());
    ASSERT_TRUE(by_host.has_value());
    EXPECT_EQ(*by_ip, *by_host) << result_.dataset.DomainName(f.domain);
  }
}

TEST_P(InvariantTest, ObservationTotalsMatchFlows) {
  std::unordered_map<DeviceIndex, std::uint64_t> bytes;
  std::unordered_map<DeviceIndex, std::uint64_t> counts;
  for (const Flow& f : result_.dataset.flows()) {
    bytes[f.device] += f.total_bytes();
    counts[f.device] += 1;
  }
  for (DeviceIndex i = 0; i < result_.dataset.num_devices(); ++i) {
    const auto& obs = result_.dataset.device(i).observations;
    EXPECT_EQ(obs.total_bytes, bytes[i]);
    EXPECT_EQ(obs.flow_count, counts[i]);
  }
}

TEST_P(InvariantTest, StudyAnalysesAreInternallyConsistent) {
  const LockdownStudy study(result_.dataset, world::ServiceCatalog::Default());
  // Post-shutdown devices all have traffic after online-term start.
  const int online = util::StudyCalendar::DayIndex(util::StudyCalendar::kBreakEnd);
  std::unordered_set<DeviceIndex> post(study.PostShutdownDevices().begin(),
                                       study.PostShutdownDevices().end());
  std::unordered_set<DeviceIndex> with_late_traffic;
  for (const Flow& f : result_.dataset.flows()) {
    if (Dataset::DayOf(f) >= online) with_late_traffic.insert(f.device);
  }
  EXPECT_EQ(post, with_late_traffic);

  // Active-device rows never exceed the device count and class columns sum
  // to the total.
  for (const auto& row : study.ActiveDevicesPerDay()) {
    int sum = 0;
    for (int c : row.by_class) sum += c;
    EXPECT_EQ(sum, row.total);
    EXPECT_LE(row.total, static_cast<int>(result_.dataset.num_devices()));
  }

  // The split never labels more devices than exist, and labeled devices are
  // post-shutdown members.
  const auto& split = study.Split();
  EXPECT_LE(split.num_international, post.size());
  for (DeviceIndex i = 0; i < result_.dataset.num_devices(); ++i) {
    if (split.international[i]) {
      EXPECT_TRUE(post.count(i));
    }
  }
}

TEST_P(InvariantTest, CategoryVolumesSumToPostShutdownTraffic) {
  const LockdownStudy study(result_.dataset, world::ServiceCatalog::Default());
  double categorized = 0.0;
  for (const auto& row : study.CategoryVolumes()) {
    categorized += row.education + row.video_conferencing + row.streaming +
                   row.social_media + row.gaming + row.messaging + row.other;
  }
  double expected = 0.0;
  std::unordered_set<DeviceIndex> post(study.PostShutdownDevices().begin(),
                                       study.PostShutdownDevices().end());
  for (const Flow& f : result_.dataset.flows()) {
    if (post.count(f.device) && Dataset::DayOf(f) < util::StudyCalendar::NumDays()) {
      expected += static_cast<double>(f.total_bytes());
    }
  }
  EXPECT_NEAR(categorized, expected, expected * 1e-9);
}

TEST_P(InvariantTest, DiurnalShapesNormalized) {
  const LockdownStudy study(result_.dataset, world::ServiceCatalog::Default());
  const auto shape = study.DiurnalShape(0, 28);
  double wd = 0.0, we = 0.0;
  for (int h = 0; h < 24; ++h) {
    EXPECT_GE(shape.weekday[static_cast<std::size_t>(h)], 0.0);
    wd += shape.weekday[static_cast<std::size_t>(h)];
    we += shape.weekend[static_cast<std::size_t>(h)];
  }
  EXPECT_NEAR(wd, 1.0, 1e-9);
  EXPECT_NEAR(we, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantTest,
                         ::testing::Values(2020ULL, 7ULL, 90210ULL, 424242ULL));

}  // namespace
}  // namespace lockdown::core
