#include "core/dataset.h"

#include <gtest/gtest.h>

namespace lockdown::core {
namespace {

Flow MakeFlow(DeviceIndex dev, std::uint32_t start, DomainId domain = kNoDomain) {
  Flow f;
  f.device = dev;
  f.start_offset_s = start;
  f.duration_s = 10.0F;
  f.domain = domain;
  f.bytes_down = 100;
  f.bytes_up = 10;
  return f;
}

TEST(Dataset, DomainInterning) {
  Dataset ds;
  const DomainId a = ds.InternDomain("zoom.us");
  const DomainId b = ds.InternDomain("netflix.com");
  const DomainId a2 = ds.InternDomain("zoom.us");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, kNoDomain);
  EXPECT_EQ(ds.DomainName(a), "zoom.us");
  EXPECT_EQ(ds.DomainName(kNoDomain), "");
  EXPECT_EQ(ds.InternDomain(""), kNoDomain);
  EXPECT_EQ(ds.num_domains(), 3u);  // "", zoom.us, netflix.com
}

TEST(Dataset, DeviceRegistration) {
  Dataset ds;
  const DeviceIndex a = ds.AddDevice(privacy::DeviceId{111});
  const DeviceIndex b = ds.AddDevice(privacy::DeviceId{222});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(ds.device(a).id.value, 111u);
  EXPECT_EQ(ds.num_devices(), 2u);
}

TEST(Dataset, FlowsOfDeviceAfterFinalize) {
  Dataset ds;
  const DeviceIndex a = ds.AddDevice(privacy::DeviceId{1});
  const DeviceIndex b = ds.AddDevice(privacy::DeviceId{2});
  const DeviceIndex c = ds.AddDevice(privacy::DeviceId{3});
  ds.AddFlow(MakeFlow(b, 300));
  ds.AddFlow(MakeFlow(a, 200));
  ds.AddFlow(MakeFlow(b, 100));
  ds.AddFlow(MakeFlow(a, 50));
  ds.Finalize();
  const auto a_flows = ds.FlowsOfDevice(a);
  ASSERT_EQ(a_flows.size(), 2u);
  EXPECT_EQ(a_flows[0].start_offset_s, 50u);  // time-sorted per device
  EXPECT_EQ(a_flows[1].start_offset_s, 200u);
  EXPECT_EQ(ds.FlowsOfDevice(b).size(), 2u);
  EXPECT_TRUE(ds.FlowsOfDevice(c).empty());
  EXPECT_EQ(ds.num_flows(), 4u);
}

TEST(Dataset, FlowsOfDeviceThrowsBeforeFinalize) {
  Dataset ds;
  const DeviceIndex a = ds.AddDevice(privacy::DeviceId{1});
  EXPECT_THROW((void)ds.FlowsOfDevice(a), std::logic_error);
}

TEST(Dataset, FlowsOfDeviceBoundsChecked) {
  Dataset ds;
  ds.Finalize();
  EXPECT_THROW((void)ds.FlowsOfDevice(0), std::out_of_range);
}

TEST(Dataset, TimeHelpers) {
  Flow f;
  f.start_offset_s = 3 * util::kSecondsPerDay + 7 * util::kSecondsPerHour;
  EXPECT_EQ(Dataset::DayOf(f), 3);
  EXPECT_EQ(Dataset::StartOf(f),
            util::StudyCalendar::StartTs() + f.start_offset_s);
}

TEST(Dataset, ObservationsMutable) {
  Dataset ds;
  const DeviceIndex a = ds.AddDevice(privacy::DeviceId{1});
  ds.device_mutable(a).observations.total_bytes = 42;
  ds.device_mutable(a).observations.AddUserAgent("agent");
  ds.device_mutable(a).observations.AddUserAgent("agent");  // dedup
  EXPECT_EQ(ds.device(a).observations.total_bytes, 42u);
  EXPECT_EQ(ds.device(a).observations.user_agents.size(), 1u);
}

}  // namespace
}  // namespace lockdown::core
