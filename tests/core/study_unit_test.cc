// Hand-crafted-dataset unit tests for LockdownStudy: tiny datasets built
// flow by flow, so each analysis' arithmetic is checked exactly (the
// simulator-driven integration tests in study_test.cc check shapes, not
// sums).
#include <gtest/gtest.h>

#include "core/study.h"

namespace lockdown::core {
namespace {

using util::StudyCalendar;
using util::Timestamp;

constexpr std::uint32_t kSecondsAt = util::kSecondsPerDay;

int Day(int month, int day) {
  return StudyCalendar::DayIndex(util::CivilDate{2020, month, day});
}

std::uint32_t Offset(int month, int day, int hour = 12) {
  return static_cast<std::uint32_t>(Day(month, day)) * kSecondsAt +
         static_cast<std::uint32_t>(hour) * util::kSecondsPerHour;
}

net::Ipv4Address ServiceIp(const char* name, std::uint64_t index = 7) {
  const auto& cat = world::ServiceCatalog::Default();
  return cat.Get(*cat.FindByName(name)).block.At(index);
}

/// Builder for tiny datasets.
class StudyBuilder {
 public:
  DeviceIndex AddMobileDevice() {
    const DeviceIndex dev = ds_.AddDevice(privacy::DeviceId{next_id_++});
    ds_.device_mutable(dev).observations.AddUserAgent(
        "Mozilla/5.0 (iPhone; CPU iPhone OS 13_3_1 like Mac OS X)");
    return dev;
  }

  DeviceIndex AddLaptopDevice() {
    const DeviceIndex dev = ds_.AddDevice(privacy::DeviceId{next_id_++});
    ds_.device_mutable(dev).observations.AddUserAgent(
        "Mozilla/5.0 (Windows NT 10.0; Win64; x64)");
    return dev;
  }

  /// Adds a flow to `host` (DNS-mapped) or a raw address when host is null.
  void AddFlow(DeviceIndex dev, std::uint32_t start, double duration_s,
               const char* host, net::Ipv4Address server,
               std::uint64_t bytes_down, std::uint64_t bytes_up = 0) {
    Flow f;
    f.start_offset_s = start;
    f.duration_s = static_cast<float>(duration_s);
    f.device = dev;
    f.domain = host ? ds_.InternDomain(host) : kNoDomain;
    f.server_ip = server;
    f.server_port = 443;
    f.bytes_down = bytes_down;
    f.bytes_up = bytes_up;
    ds_.AddFlow(f);
    auto& obs = ds_.device_mutable(dev).observations;
    obs.total_bytes += bytes_down + bytes_up;
    obs.flow_count += 1;
    if (host) obs.bytes_by_domain[host] += bytes_down + bytes_up;
  }

  /// Marks the device post-shutdown with a token April flow.
  void MakePostShutdown(DeviceIndex dev) {
    AddFlow(dev, Offset(4, 20), 10, "www.us-site-000.net",
            ServiceIp("web-us-000"), 1000);
  }

  LockdownStudy Build() {
    ds_.Finalize();
    return LockdownStudy(ds_, world::ServiceCatalog::Default());
  }

 private:
  Dataset ds_;
  std::uint64_t next_id_ = 1;
};

TEST(StudyUnit, ZoomDailyCountsDomainAndIpListFlows) {
  StudyBuilder b;
  const DeviceIndex dev = b.AddLaptopDevice();
  b.MakePostShutdown(dev);
  // Domain-matched Zoom flow.
  b.AddFlow(dev, Offset(4, 15, 9), 3600, "us04web.zoom.us", ServiceIp("zoom"),
            100'000'000);
  // Raw-IP media relay flow (current list).
  b.AddFlow(dev, Offset(4, 15, 10), 3600, nullptr, ServiceIp("zoom-media"),
            400'000'000);
  // Raw-IP legacy relay flow (wayback list).
  b.AddFlow(dev, Offset(4, 15, 11), 3600, nullptr, ServiceIp("zoom-media-legacy"),
            200'000'000);
  // Non-Zoom flow the same day.
  b.AddFlow(dev, Offset(4, 15, 12), 600, "netflix.com", ServiceIp("netflix"),
            999'000'000);
  const auto study = b.Build();
  const auto zoom = study.ZoomDailyBytes();
  EXPECT_DOUBLE_EQ(zoom.at(Day(4, 15)), 700'000'000.0);
  EXPECT_DOUBLE_EQ(zoom.at(Day(4, 16)), 0.0);
}

TEST(StudyUnit, ZoomExcludedFromFig4Medians) {
  StudyBuilder b;
  const DeviceIndex dev = b.AddLaptopDevice();
  b.MakePostShutdown(dev);
  b.AddFlow(dev, Offset(4, 15, 9), 3600, "zoom.us", ServiceIp("zoom"), 5'000'000'000);
  b.AddFlow(dev, Offset(4, 15, 12), 600, "netflix.com", ServiceIp("netflix"),
            300'000'000);
  const auto study = b.Build();
  const auto rows = study.MedianBytesExcludingZoom();
  EXPECT_DOUBLE_EQ(rows[static_cast<std::size_t>(Day(4, 15))].dom_mobile_desktop,
                   300'000'000.0);
}

TEST(StudyUnit, SocialDurationMergesOverlappingFlows) {
  StudyBuilder b;
  const DeviceIndex dev = b.AddMobileDevice();
  b.MakePostShutdown(dev);
  // One 30-minute Facebook session made of two overlapping flows.
  b.AddFlow(dev, Offset(2, 10, 20), 1800, "facebook.com", ServiceIp("facebook"),
            10'000'000);
  b.AddFlow(dev, Offset(2, 10, 20) + 600, 1500, "fbcdn.net", ServiceIp("facebook"),
            5'000'000);
  const auto study = b.Build();
  const auto box = study.SocialDurations(apps::SocialApp::kFacebook, 2);
  ASSERT_EQ(box.domestic.n, 1u);
  // Union bounds: start .. start+600+1500 = 2100 s = 0.583 h.
  EXPECT_NEAR(box.domestic.median, 2100.0 / 3600.0, 1e-9);
}

TEST(StudyUnit, InstagramOnlyDomainStealsWholeSession) {
  StudyBuilder b;
  const DeviceIndex dev = b.AddMobileDevice();
  b.MakePostShutdown(dev);
  b.AddFlow(dev, Offset(2, 11, 20), 1200, "facebook.com", ServiceIp("facebook"),
            1'000'000);
  b.AddFlow(dev, Offset(2, 11, 20) + 60, 600, "instagram.com",
            ServiceIp("instagram"), 1'000'000);
  const auto study = b.Build();
  const auto fb = study.SocialDurations(apps::SocialApp::kFacebook, 2);
  const auto ig = study.SocialDurations(apps::SocialApp::kInstagram, 2);
  EXPECT_EQ(fb.domestic.n, 0u);  // the merged session went to Instagram
  ASSERT_EQ(ig.domestic.n, 1u);
  EXPECT_NEAR(ig.domestic.median, 1200.0 / 3600.0, 1e-9);
}

TEST(StudyUnit, DisjointSessionsSplitBetweenApps) {
  StudyBuilder b;
  const DeviceIndex dev = b.AddMobileDevice();
  b.MakePostShutdown(dev);
  b.AddFlow(dev, Offset(2, 12, 9), 600, "facebook.com", ServiceIp("facebook"),
            1'000'000);
  b.AddFlow(dev, Offset(2, 12, 21), 900, "instagram.com", ServiceIp("instagram"),
            1'000'000);
  const auto study = b.Build();
  const auto fb = study.SocialDurations(apps::SocialApp::kFacebook, 2);
  const auto ig = study.SocialDurations(apps::SocialApp::kInstagram, 2);
  ASSERT_EQ(fb.domestic.n, 1u);
  ASSERT_EQ(ig.domestic.n, 1u);
  EXPECT_NEAR(fb.domestic.median, 600.0 / 3600.0, 1e-9);
  EXPECT_NEAR(ig.domestic.median, 900.0 / 3600.0, 1e-9);
}

TEST(StudyUnit, SocialDurationsOnlyCountMobileDevices) {
  StudyBuilder b;
  const DeviceIndex laptop = b.AddLaptopDevice();
  b.MakePostShutdown(laptop);
  b.AddFlow(laptop, Offset(2, 10, 20), 1800, "facebook.com", ServiceIp("facebook"),
            10'000'000);
  const auto study = b.Build();
  EXPECT_EQ(study.SocialDurations(apps::SocialApp::kFacebook, 2).domestic.n, 0u);
}

TEST(StudyUnit, SteamUsageCountsBytesAndConnections) {
  StudyBuilder b;
  const DeviceIndex dev = b.AddLaptopDevice();
  b.MakePostShutdown(dev);
  b.AddFlow(dev, Offset(3, 5, 20), 3600, "steampowered.com", ServiceIp("steam"),
            40'000'000, 2'000'000);
  b.AddFlow(dev, Offset(3, 5, 21), 3600, "steamcontent.com", ServiceIp("steam"),
            60'000'000);
  b.AddFlow(dev, Offset(3, 6, 20), 100, "netflix.com", ServiceIp("netflix"),
            500'000'000);  // not steam
  const auto study = b.Build();
  const auto march = study.SteamUsage(3);
  ASSERT_EQ(march.dom_bytes.n, 1u);
  EXPECT_DOUBLE_EQ(march.dom_bytes.median, 102'000'000.0);
  EXPECT_DOUBLE_EQ(march.dom_conns.median, 2.0);
  EXPECT_EQ(study.SteamUsage(4).dom_bytes.n, 0u);
}

TEST(StudyUnit, SwitchGameplayRequiresFebAndMayActivity) {
  StudyBuilder b;
  // Switch A: active Feb + May; Switch B: Feb only.
  const DeviceIndex a = b.AddMobileDevice();  // UA irrelevant: traffic rule wins
  const DeviceIndex bb = b.AddMobileDevice();
  for (const DeviceIndex dev : {a, bb}) {
    b.AddFlow(dev, Offset(2, 10, 20), 3600, "npln.srv.nintendo.net",
              ServiceIp("nintendo-gameplay"), 50'000'000);
    b.AddFlow(dev, Offset(2, 11, 8), 60, "conntest.nintendowifi.net",
              ServiceIp("nintendo-services"), 2'000);
  }
  b.AddFlow(a, Offset(5, 10, 20), 3600, "npln.srv.nintendo.net",
            ServiceIp("nintendo-gameplay"), 30'000'000);
  // Non-gameplay download for A in May: must not count toward Fig. 8.
  b.AddFlow(a, Offset(5, 11, 20), 1200, "atum.hac.lp1.d4c.nintendo.net",
            ServiceIp("nintendo-services"), 2'000'000'000);
  const auto study = b.Build();
  const auto series = study.SwitchGameplayDaily(/*ma_window=*/1);
  // Only A qualifies; B's February gameplay is excluded from the series.
  EXPECT_DOUBLE_EQ(series.at(Day(2, 10)), 50'000'000.0);
  EXPECT_DOUBLE_EQ(series.at(Day(5, 10)), 30'000'000.0);
  EXPECT_DOUBLE_EQ(series.at(Day(5, 11)), 0.0);  // download filtered out
}

TEST(StudyUnit, CountSwitchesTracksFirstAppearance) {
  StudyBuilder b;
  // An April-new Switch (first seen 4/10, active through May).
  const DeviceIndex dev = b.AddMobileDevice();
  for (int d = 10; d < 30; ++d) {
    b.AddFlow(dev, Offset(4, d, 20), 1800, "npln.srv.nintendo.net",
              ServiceIp("nintendo-gameplay"), 5'000'000);
  }
  const auto study = b.Build();
  const auto counts = study.CountSwitches();
  EXPECT_EQ(counts.active_february, 0u);
  EXPECT_EQ(counts.active_post_shutdown, 1u);
  EXPECT_EQ(counts.new_in_april_may, 1u);
}

TEST(StudyUnit, InternationalSplitByFebruaryMidpoint) {
  StudyBuilder b;
  const DeviceIndex intl = b.AddMobileDevice();
  const DeviceIndex dom = b.AddMobileDevice();
  b.MakePostShutdown(intl);
  b.MakePostShutdown(dom);
  b.AddFlow(intl, Offset(2, 5, 20), 600, "bilibili.com", ServiceIp("bilibili"),
            50'000'000);
  b.AddFlow(dom, Offset(2, 5, 20), 600, "netflix.com", ServiceIp("netflix"),
            50'000'000);
  b.AddFlow(dom, Offset(2, 6, 20), 600, "facebook.com", ServiceIp("facebook"),
            50'000'000);
  const auto study = b.Build();
  const auto& split = study.Split();
  EXPECT_TRUE(split.international[intl]);
  EXPECT_FALSE(split.international[dom]);
  EXPECT_EQ(split.num_international, 1u);
}

TEST(StudyUnit, MarchTrafficDoesNotAffectSplit) {
  // The paper geolocates February traffic only.
  StudyBuilder b;
  const DeviceIndex dev = b.AddMobileDevice();
  b.MakePostShutdown(dev);
  b.AddFlow(dev, Offset(2, 5, 20), 600, "netflix.com", ServiceIp("netflix"),
            50'000'000);
  b.AddFlow(dev, Offset(2, 6, 20), 600, "facebook.com", ServiceIp("facebook"),
            50'000'000);
  b.AddFlow(dev, Offset(3, 5, 20), 600, "bilibili.com", ServiceIp("bilibili"),
            900'000'000);  // huge, but in March
  const auto study = b.Build();
  EXPECT_FALSE(study.Split().international[dev]);
}

TEST(StudyUnit, ActiveDevicesCountDistinctDays) {
  StudyBuilder b;
  const DeviceIndex dev = b.AddMobileDevice();
  b.MakePostShutdown(dev);
  b.AddFlow(dev, Offset(2, 3, 9), 60, "netflix.com", ServiceIp("netflix"), 1000);
  b.AddFlow(dev, Offset(2, 3, 21), 60, "netflix.com", ServiceIp("netflix"), 1000);
  const auto study = b.Build();
  const auto rows = study.ActiveDevicesPerDay();
  EXPECT_EQ(rows[static_cast<std::size_t>(Day(2, 3))].total, 1);
  EXPECT_EQ(rows[static_cast<std::size_t>(Day(2, 4))].total, 0);
  EXPECT_EQ(rows[static_cast<std::size_t>(Day(2, 3))]
                .by_class[static_cast<std::size_t>(ReportClass::kMobile)],
            1);
}

}  // namespace
}  // namespace lockdown::core
