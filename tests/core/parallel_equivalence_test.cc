// Differential harness for the determinism contract (util/thread_pool.h):
// collection and every figure computation must produce byte-identical output
// at any thread count, because work decomposes into fixed input-sized chunks
// that are merged in chunk order. These tests run the pipeline and the study
// serially and at several parallel widths — including a width far above this
// machine's core count — and compare every output with exact equality
// (doubles included: same additions in the same order, same bits).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "core/study.h"
#include "store/snapshot.h"
#include "world/catalog.h"

namespace lockdown::core {
namespace {

CollectionResult CollectWith(int students, std::uint64_t seed, int threads) {
  StudyConfig cfg = StudyConfig::Small(students, seed);
  cfg.threads = threads;
  return MeasurementPipeline::Collect(cfg);
}

void ExpectStatsIdentical(const CollectionStats& a, const CollectionStats& b) {
  EXPECT_EQ(a.raw_flows, b.raw_flows);
  EXPECT_EQ(a.tap_excluded, b.tap_excluded);
  EXPECT_EQ(a.unattributed, b.unattributed);
  EXPECT_EQ(a.visitor_flows, b.visitor_flows);
  EXPECT_EQ(a.devices_observed, b.devices_observed);
  EXPECT_EQ(a.devices_retained, b.devices_retained);
  EXPECT_EQ(a.ua_sightings, b.ua_sightings);
  EXPECT_EQ(a.ua_unattributed, b.ua_unattributed);
  EXPECT_EQ(a.ua_visitor_dropped, b.ua_visitor_dropped);
}

// Field-wise flow comparison (memcmp would also read padding bytes, which
// the frozen layout leaves indeterminate). Reports only the first mismatch.
void ExpectFlowsIdentical(std::span<const Flow> a, std::span<const Flow> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Flow& x = a[i];
    const Flow& y = b[i];
    const bool same = x.start_offset_s == y.start_offset_s &&
                      x.duration_s == y.duration_s && x.device == y.device &&
                      x.domain == y.domain && x.server_ip == y.server_ip &&
                      x.server_port == y.server_port && x.proto == y.proto &&
                      x.bytes_up == y.bytes_up && x.bytes_down == y.bytes_down;
    if (!same) {
      ADD_FAILURE() << "flow " << i << " differs (device " << x.device << " vs "
                    << y.device << ", start " << x.start_offset_s << " vs "
                    << y.start_offset_s << ")";
      return;
    }
  }
}

void ExpectDatasetsIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.num_devices(), b.num_devices());
  ASSERT_EQ(a.num_domains(), b.num_domains());
  ExpectFlowsIdentical(a.flows(), b.flows());
  for (DomainId d = 0; d < a.num_domains(); ++d) {
    ASSERT_EQ(a.DomainName(d), b.DomainName(d)) << "domain id " << d;
  }
  for (DeviceIndex i = 0; i < a.num_devices(); ++i) {
    const DeviceEntry& x = a.device(i);
    const DeviceEntry& y = b.device(i);
    ASSERT_EQ(x.id.value, y.id.value) << "device " << i;
    const auto& ox = x.observations;
    const auto& oy = y.observations;
    EXPECT_EQ(ox.oui, oy.oui) << "device " << i;
    EXPECT_EQ(ox.locally_administered, oy.locally_administered) << "device " << i;
    EXPECT_EQ(ox.user_agents, oy.user_agents) << "device " << i;
    EXPECT_EQ(ox.total_bytes, oy.total_bytes) << "device " << i;
    EXPECT_EQ(ox.flow_count, oy.flow_count) << "device " << i;
    ASSERT_EQ(ox.bytes_by_domain, oy.bytes_by_domain) << "device " << i;
  }
}

void ExpectBoxStatsIdentical(const analysis::BoxStats& a,
                             const analysis::BoxStats& b, const char* what) {
  EXPECT_EQ(a.n, b.n) << what;
  EXPECT_EQ(a.p1, b.p1) << what;
  EXPECT_EQ(a.q1, b.q1) << what;
  EXPECT_EQ(a.median, b.median) << what;
  EXPECT_EQ(a.q3, b.q3) << what;
  EXPECT_EQ(a.p95, b.p95) << what;
  EXPECT_EQ(a.p99, b.p99) << what;
  EXPECT_EQ(a.mean, b.mean) << what;
}

void ExpectSeriesIdentical(const analysis::DailySeries& a,
                           const analysis::DailySeries& b, const char* what) {
  ASSERT_EQ(a.num_days(), b.num_days()) << what;
  for (int d = 0; d < a.num_days(); ++d) {
    ASSERT_EQ(a.at(d), b.at(d)) << what << " day " << d;
  }
}

// Every figure and headline the study produces, compared bit for bit.
void ExpectStudiesIdentical(const LockdownStudy& a, const LockdownStudy& b) {
  // Classification + cohort membership.
  const auto ca = a.classifications();
  const auto cb = b.classifications();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    ASSERT_EQ(ca[i].device_class, cb[i].device_class) << "device " << i;
    ASSERT_EQ(ca[i].evidence, cb[i].evidence) << "device " << i;
  }
  ASSERT_EQ(a.PostShutdownDevices(), b.PostShutdownDevices());
  ASSERT_EQ(a.Split().international, b.Split().international);
  EXPECT_EQ(a.Split().num_international, b.Split().num_international);
  EXPECT_EQ(a.Split().num_with_geo, b.Split().num_with_geo);

  // Figure 1.
  const auto f1a = a.ActiveDevicesPerDay();
  const auto f1b = b.ActiveDevicesPerDay();
  ASSERT_EQ(f1a.size(), f1b.size());
  for (std::size_t i = 0; i < f1a.size(); ++i) {
    ASSERT_EQ(f1a[i].day, f1b[i].day);
    ASSERT_EQ(f1a[i].by_class, f1b[i].by_class) << "fig1 day " << f1a[i].day;
    ASSERT_EQ(f1a[i].total, f1b[i].total);
  }

  // Figure 2.
  const auto f2a = a.BytesPerDevicePerDay();
  const auto f2b = b.BytesPerDevicePerDay();
  ASSERT_EQ(f2a.size(), f2b.size());
  for (std::size_t i = 0; i < f2a.size(); ++i) {
    ASSERT_EQ(f2a[i].mean, f2b[i].mean) << "fig2 day " << f2a[i].day;
    ASSERT_EQ(f2a[i].median, f2b[i].median) << "fig2 day " << f2a[i].day;
  }

  // Figure 3.
  const auto f3a = a.HourOfWeekVolume();
  const auto f3b = b.HourOfWeekVolume();
  ASSERT_EQ(f3a.normalization, f3b.normalization);
  for (std::size_t w = 0; w < f3a.weeks.size(); ++w) {
    for (int h = 0; h < analysis::HourOfWeekSeries::kHours; ++h) {
      ASSERT_EQ(f3a.weeks[w].at(h), f3b.weeks[w].at(h))
          << "fig3 week " << w << " hour " << h;
    }
  }

  // Figure 4.
  const auto f4a = a.MedianBytesExcludingZoom();
  const auto f4b = b.MedianBytesExcludingZoom();
  ASSERT_EQ(f4a.size(), f4b.size());
  for (std::size_t i = 0; i < f4a.size(); ++i) {
    ASSERT_EQ(f4a[i].intl_mobile_desktop, f4b[i].intl_mobile_desktop);
    ASSERT_EQ(f4a[i].dom_mobile_desktop, f4b[i].dom_mobile_desktop);
    ASSERT_EQ(f4a[i].intl_unclassified, f4b[i].intl_unclassified);
    ASSERT_EQ(f4a[i].dom_unclassified, f4b[i].dom_unclassified);
  }

  // Figures 5 and 8.
  ExpectSeriesIdentical(a.ZoomDailyBytes(), b.ZoomDailyBytes(), "fig5");
  ExpectSeriesIdentical(a.SwitchGameplayDaily(), b.SwitchGameplayDaily(), "fig8");
  const auto swa = a.CountSwitches();
  const auto swb = b.CountSwitches();
  EXPECT_EQ(swa.active_february, swb.active_february);
  EXPECT_EQ(swa.active_post_shutdown, swb.active_post_shutdown);
  EXPECT_EQ(swa.new_in_april_may, swb.new_in_april_may);

  // Figures 6 and 7, every app and month the paper plots.
  for (int month = 2; month <= 5; ++month) {
    for (const auto app : {apps::SocialApp::kFacebook, apps::SocialApp::kInstagram,
                           apps::SocialApp::kTikTok}) {
      const auto sa = a.SocialDurations(app, month);
      const auto sb = b.SocialDurations(app, month);
      ExpectBoxStatsIdentical(sa.domestic, sb.domestic, "fig6 domestic");
      ExpectBoxStatsIdentical(sa.international, sb.international, "fig6 intl");
    }
    const auto sta = a.SteamUsage(month);
    const auto stb = b.SteamUsage(month);
    ExpectBoxStatsIdentical(sta.dom_bytes, stb.dom_bytes, "fig7 dom bytes");
    ExpectBoxStatsIdentical(sta.intl_bytes, stb.intl_bytes, "fig7 intl bytes");
    ExpectBoxStatsIdentical(sta.dom_conns, stb.dom_conns, "fig7 dom conns");
    ExpectBoxStatsIdentical(sta.intl_conns, stb.intl_conns, "fig7 intl conns");
  }

  // Extensions + headline.
  const auto cva = a.CategoryVolumes();
  const auto cvb = b.CategoryVolumes();
  ASSERT_EQ(cva.size(), cvb.size());
  for (std::size_t i = 0; i < cva.size(); ++i) {
    ASSERT_EQ(cva[i].education, cvb[i].education) << "categories day " << cva[i].day;
    ASSERT_EQ(cva[i].video_conferencing, cvb[i].video_conferencing);
    ASSERT_EQ(cva[i].streaming, cvb[i].streaming);
    ASSERT_EQ(cva[i].social_media, cvb[i].social_media);
    ASSERT_EQ(cva[i].gaming, cvb[i].gaming);
    ASSERT_EQ(cva[i].messaging, cvb[i].messaging);
    ASSERT_EQ(cva[i].other, cvb[i].other);
  }
  const auto da = a.DiurnalShape(0, util::StudyCalendar::NumDays() - 1);
  const auto db = b.DiurnalShape(0, util::StudyCalendar::NumDays() - 1);
  ASSERT_EQ(da.weekday, db.weekday);
  ASSERT_EQ(da.weekend, db.weekend);

  const auto ha = a.HeadlineStats();
  const auto hb = b.HeadlineStats();
  EXPECT_EQ(ha.peak_active_devices, hb.peak_active_devices);
  EXPECT_EQ(ha.trough_active_devices, hb.trough_active_devices);
  EXPECT_EQ(ha.post_shutdown_users, hb.post_shutdown_users);
  EXPECT_EQ(ha.traffic_increase, hb.traffic_increase);
  EXPECT_EQ(ha.distinct_sites_increase, hb.distinct_sites_increase);
  EXPECT_EQ(ha.international_devices, hb.international_devices);
  EXPECT_EQ(ha.international_share, hb.international_share);
}

// Widths to test against serial: even split, odd split (chunks don't divide
// evenly across lanes), and more lanes than this machine has cores.
constexpr int kWidths[] = {2, 3, 8};

TEST(ParallelEquivalence, CollectionIdenticalAcrossThreadCounts) {
  struct Case {
    int students;
    std::uint64_t seed;
  };
  for (const Case c : {Case{60, 2020}, Case{45, 909}}) {
    const CollectionResult serial = CollectWith(c.students, c.seed, 1);
    for (const int threads : kWidths) {
      SCOPED_TRACE(testing::Message() << c.students << " students, seed "
                                      << c.seed << ", " << threads << " threads");
      const CollectionResult par = CollectWith(c.students, c.seed, threads);
      ExpectStatsIdentical(serial.stats, par.stats);
      ExpectDatasetsIdentical(serial.dataset, par.dataset);
    }
  }
}

TEST(ParallelEquivalence, StudyIdenticalAcrossThreadCounts) {
  const CollectionResult collection = CollectWith(60, 2020, 1);
  const auto& catalog = world::ServiceCatalog::Default();
  const LockdownStudy serial(collection.dataset, catalog, 1);
  for (const int threads : kWidths) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    const LockdownStudy par(collection.dataset, catalog, threads);
    ExpectStudiesIdentical(serial, par);
  }
}

// A dataset loaded back from an LDS snapshot (zero-copy path included) must
// drive the parallel study to the same outputs as the in-memory original.
TEST(ParallelEquivalence, SnapshotRoundTripStudyIdentical) {
  const CollectionResult original = CollectWith(60, 2020, 1);
  const auto path =
      std::filesystem::temp_directory_path() / "lockdown_parallel_equiv.lds";
  store::SaveSnapshot(path, original, store::SnapshotMeta{60, 2020});
  store::LoadedSnapshot snap = store::LoadSnapshot(path);
  std::filesystem::remove(path);

  ExpectStatsIdentical(original.stats, snap.collection.stats);
  ExpectDatasetsIdentical(original.dataset, snap.collection.dataset);

  const auto& catalog = world::ServiceCatalog::Default();
  const LockdownStudy serial(original.dataset, catalog, 1);
  const LockdownStudy par(snap.collection.dataset, catalog, 3);
  ExpectStudiesIdentical(serial, par);
}

}  // namespace
}  // namespace lockdown::core
