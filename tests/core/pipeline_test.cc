#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "sim/generator.h"
#include "world/oui_db.h"

namespace lockdown::core {
namespace {

// One shared small collection: pipeline runs are deterministic, and several
// tests can examine the same result.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new StudyConfig(StudyConfig::Small(80, 77));
    result_ = new CollectionResult(MeasurementPipeline::Collect(*config_));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete config_;
    result_ = nullptr;
    config_ = nullptr;
  }

  static StudyConfig* config_;
  static CollectionResult* result_;
};

StudyConfig* PipelineTest::config_ = nullptr;
CollectionResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, ProducesNonTrivialDataset) {
  EXPECT_GT(result_->dataset.num_flows(), 50000u);
  EXPECT_GT(result_->dataset.num_devices(), 100u);
  EXPECT_GT(result_->dataset.num_domains(), 50u);
}

TEST_F(PipelineTest, TapExclusionDropsTraffic) {
  // iPhones sync to iCloud daily; Apple is on the exclusion list, so the
  // counter must be busy.
  EXPECT_GT(result_->stats.tap_excluded, 1000u);
  // And no excluded-service address may appear in the dataset.
  const auto& catalog = world::ServiceCatalog::Default();
  for (const Flow& f : result_->dataset.flows()) {
    const auto svc = catalog.FindByIp(f.server_ip);
    ASSERT_TRUE(svc.has_value());
    EXPECT_FALSE(catalog.Get(*svc).tap_excluded)
        << catalog.Get(*svc).name;
  }
}

TEST_F(PipelineTest, VisitorFilterApplied) {
  EXPECT_LE(result_->stats.devices_retained, result_->stats.devices_observed);
  EXPECT_EQ(result_->dataset.num_devices(), result_->stats.devices_retained);
}

TEST_F(PipelineTest, MostFlowsAttributedAndMapped) {
  const auto& st = result_->stats;
  EXPECT_LT(static_cast<double>(st.unattributed),
            0.02 * static_cast<double>(st.raw_flows));
  // Most flows should carry a DNS-mapped domain (raw-IP Zoom media being the
  // main exception).
  std::size_t with_domain = 0;
  for (const Flow& f : result_->dataset.flows()) {
    with_domain += f.domain != kNoDomain;
  }
  EXPECT_GT(static_cast<double>(with_domain),
            0.9 * static_cast<double>(result_->dataset.num_flows()));
}

TEST_F(PipelineTest, ObservationsAccumulated) {
  std::size_t with_ua = 0;
  std::size_t with_oui = 0;
  for (DeviceIndex i = 0; i < result_->dataset.num_devices(); ++i) {
    const auto& obs = result_->dataset.device(i).observations;
    EXPECT_GT(obs.flow_count, 0u);
    EXPECT_GT(obs.total_bytes, 0u);
    with_ua += !obs.user_agents.empty();
    with_oui += !obs.locally_administered && obs.oui != 0;
  }
  EXPECT_GT(with_ua, 0u);
  EXPECT_GT(with_oui, result_->dataset.num_devices() / 3);
}

TEST_F(PipelineTest, AnonymizationHidesMacs) {
  // Device ids must not be raw MAC values: check that no id matches any
  // population MAC under the trivial embedding.
  sim::Population pop(config_->generator.population);
  std::unordered_set<std::uint64_t> macs;
  for (const auto& d : pop.devices()) macs.insert(d.mac.value());
  for (DeviceIndex i = 0; i < result_->dataset.num_devices(); ++i) {
    EXPECT_FALSE(macs.count(result_->dataset.device(i).id.value));
  }
}

TEST_F(PipelineTest, AnonymizerLinksGroundTruth) {
  // The exposed anonymizer (simulation-only) must map population MACs onto
  // dataset device ids.
  const auto anon = MeasurementPipeline::MakeAnonymizer(*config_);
  sim::Population pop(config_->generator.population);
  std::unordered_set<std::uint64_t> ids;
  for (DeviceIndex i = 0; i < result_->dataset.num_devices(); ++i) {
    ids.insert(result_->dataset.device(i).id.value);
  }
  std::size_t linked = 0;
  for (const auto& d : pop.devices()) {
    linked += ids.count(anon.AnonymizeMac(d.mac).value);
  }
  EXPECT_EQ(linked, result_->dataset.num_devices());
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  const auto again = MeasurementPipeline::Collect(*config_);
  EXPECT_EQ(again.dataset.num_flows(), result_->dataset.num_flows());
  EXPECT_EQ(again.dataset.num_devices(), result_->dataset.num_devices());
  EXPECT_EQ(again.stats.tap_excluded, result_->stats.tap_excluded);
  // Spot-check flow equality.
  for (std::size_t i = 0; i < again.dataset.num_flows(); i += 1009) {
    const Flow& a = again.dataset.flows()[i];
    const Flow& b = result_->dataset.flows()[i];
    EXPECT_EQ(a.start_offset_s, b.start_offset_s);
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.bytes_down, b.bytes_down);
  }
}

TEST_F(PipelineTest, DifferentSeedsProduceDifferentPseudonyms) {
  auto cfg2 = *config_;
  cfg2.generator.population.seed = config_->generator.population.seed + 1;
  const auto anon1 = MeasurementPipeline::MakeAnonymizer(*config_);
  const auto anon2 = MeasurementPipeline::MakeAnonymizer(cfg2);
  const net::MacAddress mac(0x123456789ABCULL);
  EXPECT_NE(anon1.AnonymizeMac(mac), anon2.AnonymizeMac(mac));
}

}  // namespace
}  // namespace lockdown::core
