#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "sim/generator.h"
#include "world/oui_db.h"

namespace lockdown::core {
namespace {

// One shared small collection: pipeline runs are deterministic, and several
// tests can examine the same result.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    config_ = new StudyConfig(StudyConfig::Small(80, 77));
    result_ = new CollectionResult(MeasurementPipeline::Collect(*config_));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete config_;
    result_ = nullptr;
    config_ = nullptr;
  }

  static StudyConfig* config_;
  static CollectionResult* result_;
};

StudyConfig* PipelineTest::config_ = nullptr;
CollectionResult* PipelineTest::result_ = nullptr;

TEST_F(PipelineTest, ProducesNonTrivialDataset) {
  EXPECT_GT(result_->dataset.num_flows(), 50000u);
  EXPECT_GT(result_->dataset.num_devices(), 100u);
  EXPECT_GT(result_->dataset.num_domains(), 50u);
}

TEST_F(PipelineTest, TapExclusionDropsTraffic) {
  // iPhones sync to iCloud daily; Apple is on the exclusion list, so the
  // counter must be busy.
  EXPECT_GT(result_->stats.tap_excluded, 1000u);
  // And no excluded-service address may appear in the dataset.
  const auto& catalog = world::ServiceCatalog::Default();
  for (const Flow& f : result_->dataset.flows()) {
    const auto svc = catalog.FindByIp(f.server_ip);
    ASSERT_TRUE(svc.has_value());
    EXPECT_FALSE(catalog.Get(*svc).tap_excluded)
        << catalog.Get(*svc).name;
  }
}

TEST_F(PipelineTest, VisitorFilterApplied) {
  EXPECT_LE(result_->stats.devices_retained, result_->stats.devices_observed);
  EXPECT_EQ(result_->dataset.num_devices(), result_->stats.devices_retained);
}

TEST_F(PipelineTest, MostFlowsAttributedAndMapped) {
  const auto& st = result_->stats;
  EXPECT_LT(static_cast<double>(st.unattributed),
            0.02 * static_cast<double>(st.raw_flows));
  // Most flows should carry a DNS-mapped domain (raw-IP Zoom media being the
  // main exception).
  std::size_t with_domain = 0;
  for (const Flow& f : result_->dataset.flows()) {
    with_domain += f.domain != kNoDomain;
  }
  EXPECT_GT(static_cast<double>(with_domain),
            0.9 * static_cast<double>(result_->dataset.num_flows()));
}

TEST_F(PipelineTest, ObservationsAccumulated) {
  std::size_t with_ua = 0;
  std::size_t with_oui = 0;
  for (DeviceIndex i = 0; i < result_->dataset.num_devices(); ++i) {
    const auto& obs = result_->dataset.device(i).observations;
    EXPECT_GT(obs.flow_count, 0u);
    EXPECT_GT(obs.total_bytes, 0u);
    with_ua += !obs.user_agents.empty();
    with_oui += !obs.locally_administered && obs.oui != 0;
  }
  EXPECT_GT(with_ua, 0u);
  EXPECT_GT(with_oui, result_->dataset.num_devices() / 3);
}

TEST_F(PipelineTest, AnonymizationHidesMacs) {
  // Device ids must not be raw MAC values: check that no id matches any
  // population MAC under the trivial embedding.
  sim::Population pop(config_->generator.population);
  std::unordered_set<std::uint64_t> macs;
  for (const auto& d : pop.devices()) macs.insert(d.mac.value());
  for (DeviceIndex i = 0; i < result_->dataset.num_devices(); ++i) {
    EXPECT_FALSE(macs.count(result_->dataset.device(i).id.value));
  }
}

TEST_F(PipelineTest, AnonymizerLinksGroundTruth) {
  // The exposed anonymizer (simulation-only) must map population MACs onto
  // dataset device ids.
  const auto anon = MeasurementPipeline::MakeAnonymizer(*config_);
  sim::Population pop(config_->generator.population);
  std::unordered_set<std::uint64_t> ids;
  for (DeviceIndex i = 0; i < result_->dataset.num_devices(); ++i) {
    ids.insert(result_->dataset.device(i).id.value);
  }
  std::size_t linked = 0;
  for (const auto& d : pop.devices()) {
    linked += ids.count(anon.AnonymizeMac(d.mac).value);
  }
  EXPECT_EQ(linked, result_->dataset.num_devices());
}

TEST_F(PipelineTest, DeterministicAcrossRuns) {
  const auto again = MeasurementPipeline::Collect(*config_);
  EXPECT_EQ(again.dataset.num_flows(), result_->dataset.num_flows());
  EXPECT_EQ(again.dataset.num_devices(), result_->dataset.num_devices());
  EXPECT_EQ(again.stats.tap_excluded, result_->stats.tap_excluded);
  // Spot-check flow equality.
  for (std::size_t i = 0; i < again.dataset.num_flows(); i += 1009) {
    const Flow& a = again.dataset.flows()[i];
    const Flow& b = result_->dataset.flows()[i];
    EXPECT_EQ(a.start_offset_s, b.start_offset_s);
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.bytes_down, b.bytes_down);
  }
}

// Hand-crafted inputs exercising every arm of the UA accounting: a retained
// device, a visitor-filtered device, and a sighting from an IP no lease ever
// covered. Process must route each UA record into exactly one counter.
TEST(PipelineUaAccounting, EveryUaRecordLandsInExactlyOneCounter) {
  const util::Timestamp t0 = util::StudyCalendar::StartTs();
  const net::MacAddress resident_mac(0x0017F2000001ULL);
  const net::MacAddress visitor_mac(0x0017F2000002ULL);
  const net::Ipv4Address resident_ip(10, 16, 0, 1);
  const net::Ipv4Address visitor_ip(10, 16, 0, 2);
  const net::Ipv4Address unleased_ip(10, 16, 0, 3);
  const net::Ipv4Address server_ip(198, 51, 100, 7);

  RawInputs inputs;
  const util::Timestamp lease_end = t0 + 40 * util::kSecondsPerDay;
  inputs.dhcp_log.push_back(dhcp::Lease{resident_mac, resident_ip, t0, lease_end});
  inputs.dhcp_log.push_back(dhcp::Lease{visitor_mac, visitor_ip, t0, lease_end});

  const int min_days = 14;
  auto flow_at = [&](net::Ipv4Address client, int day) {
    flow::FlowRecord rec;
    rec.start = t0 + day * util::kSecondsPerDay + 3600;
    rec.duration_s = 10.0;
    rec.client_ip = client;
    rec.server_ip = server_ip;
    rec.server_port = 443;
    rec.bytes_up = 1000;
    rec.bytes_down = 20000;
    return rec;
  };
  // Resident: clears the 14-distinct-day retention bar. Visitor: two days.
  for (int day = 0; day < min_days + 2; ++day) {
    inputs.flows.push_back(flow_at(resident_ip, day));
    if (day < 2) inputs.flows.push_back(flow_at(visitor_ip, day));
  }

  const util::Timestamp ua_ts = t0 + 3600;
  inputs.ua_log.push_back(logs::UaRecord{ua_ts, resident_ip, "Mozilla/5.0 resident"});
  inputs.ua_log.push_back(logs::UaRecord{ua_ts, visitor_ip, "Mozilla/5.0 visitor"});
  inputs.ua_log.push_back(logs::UaRecord{ua_ts, unleased_ip, "Mozilla/5.0 stranger"});
  const std::size_t total_ua = inputs.ua_log.size();

  const privacy::Anonymizer anon(util::SipHashKey{11, 22});
  const auto result =
      MeasurementPipeline::Process(std::move(inputs), anon, min_days);

  EXPECT_EQ(result.stats.ua_sightings, 1u);
  EXPECT_EQ(result.stats.ua_visitor_dropped, 1u);
  EXPECT_EQ(result.stats.ua_unattributed, 1u);
  EXPECT_EQ(result.stats.ua_sightings + result.stats.ua_visitor_dropped +
                result.stats.ua_unattributed,
            total_ua);

  // Only the resident survives the filter, and only its UA string is kept.
  ASSERT_EQ(result.dataset.num_devices(), 1u);
  const auto& obs = result.dataset.device(0).observations;
  ASSERT_EQ(obs.user_agents.size(), 1u);
  EXPECT_EQ(obs.user_agents[0], "Mozilla/5.0 resident");
}

// The full simulated collection must satisfy the same partition invariant;
// any attributed-or-not miscount would break the equality.
TEST_F(PipelineTest, UaCountersPartitionTheLog) {
  const auto& st = result_->stats;
  EXPECT_GT(st.ua_sightings, 0u);
  // The simulator emits visitors and pre-lease sightings, so both miss
  // counters should be exercised at this population size.
  EXPECT_GT(st.ua_visitor_dropped, 0u);
  // Re-run the offline path to learn the raw UA-log size and check the sum.
  sim::TrafficGenerator generator(config_->generator,
                                  world::ServiceCatalog::Default());
  generator.Run([](const flow::TapEvent&) {});
  const std::size_t total_ua = generator.ua_sightings().size();
  EXPECT_EQ(st.ua_sightings + st.ua_unattributed + st.ua_visitor_dropped,
            total_ua);
}

TEST_F(PipelineTest, DifferentSeedsProduceDifferentPseudonyms) {
  auto cfg2 = *config_;
  cfg2.generator.population.seed = config_->generator.population.seed + 1;
  const auto anon1 = MeasurementPipeline::MakeAnonymizer(*config_);
  const auto anon2 = MeasurementPipeline::MakeAnonymizer(cfg2);
  const net::MacAddress mac(0x123456789ABCULL);
  EXPECT_NE(anon1.AnonymizeMac(mac), anon2.AnonymizeMac(mac));
}

}  // namespace
}  // namespace lockdown::core
