// Differential fault-injection suite: every reader, every fault class, seeds
// {1,2,3}. Proves the tolerant pipeline never crashes on faulted input, that
// the accounting contract (kept + rejected == lines_total) holds under every
// fault, and that degradation is bounded by the fault rate. Strict mode on
// clean input must stay byte-for-byte the historical behavior.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/offline.h"
#include "flow/conn_log.h"
#include "ingest/ingest.h"
#include "logs/dhcp_log.h"
#include "logs/dns_log.h"
#include "logs/ua_log.h"
#include "util/fault.h"

namespace lockdown::core {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 2, 3};
constexpr double kRates[] = {0.001, 0.01};

class FaultInjectionTest : public ::testing::Test {
 protected:
  // One simulated export shared by every test in the suite.
  static void SetUpTestSuite() {
    // Per-process suite directory: each TEST is its own ctest process.
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("lockdown_fault_injection_test_" + std::to_string(::getpid())));
    std::filesystem::remove_all(*dir_);
    ExportLogs(StudyConfig::Small(40, 7), *dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  static std::string ReadLog(const char* name) {
    std::ifstream in(*dir_ / name, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }

  static std::filesystem::path* dir_;
};

std::filesystem::path* FaultInjectionTest::dir_ = nullptr;

ingest::IngestOptions Tolerant(double budget) {
  ingest::IngestOptions options;
  options.mode = ingest::Mode::kTolerant;
  options.max_error_rate = budget;
  return options;
}

// Runs the matching tolerant reader over `text`; returns how many records it
// kept, asserting the accounting contract along the way.
std::uint64_t RunReader(const char* name, const std::string& text,
                        ingest::IngestReport& report) {
  const auto options = Tolerant(1.0);  // no budget: observe, don't reject
  std::uint64_t kept = 0;
  if (std::string_view(name) == LogFiles::kConn) {
    const auto r = flow::ReadConnLog(text, options, report);
    kept = r ? r->size() : 0;
  } else if (std::string_view(name) == LogFiles::kDhcp) {
    const auto r = logs::ReadDhcpLog(text, options, report);
    kept = r ? r->size() : 0;
  } else if (std::string_view(name) == LogFiles::kDns) {
    const auto r = logs::ReadDnsLog(text, options, report);
    kept = r ? r->size() : 0;
  } else {
    const auto r = logs::ReadUaLog(text, options, report);
    kept = r ? r->size() : 0;
  }
  EXPECT_EQ(report.kept + report.rejected, report.lines_total)
      << name << ": accounting contract violated";
  EXPECT_EQ(report.kept, kept) << name;
  return kept;
}

TEST_F(FaultInjectionTest, EveryReaderEveryFaultClassNeverViolatesAccounting) {
  for (const char* name : {LogFiles::kConn, LogFiles::kDhcp, LogFiles::kDns,
                           LogFiles::kUa}) {
    const std::string clean = ReadLog(name);
    ingest::IngestReport clean_report;
    const std::uint64_t clean_kept = RunReader(name, clean, clean_report);
    ASSERT_GT(clean_kept, 0u) << name;
    ASSERT_EQ(clean_report.rejected, 0u) << name;

    for (int k = 0; k < util::kNumFaultKinds; ++k) {
      const auto kind = static_cast<util::FaultKind>(k);
      for (const std::uint64_t seed : kSeeds) {
        for (const double rate : kRates) {
          const util::FaultInjector injector({seed, rate});
          const std::string dirty = injector.Apply(clean, kind);
          ingest::IngestReport report;
          const std::uint64_t kept = RunReader(name, dirty, report);
          const std::string ctx = std::string(name) + " " +
                                  util::ToString(kind) + " seed " +
                                  std::to_string(seed) + " rate " +
                                  std::to_string(rate);
          switch (kind) {
            case util::FaultKind::kTruncateTail:
              // At most the cut row is lost; everything before survives.
              EXPECT_LE(report.rejected, 1u) << ctx;
              EXPECT_GE(kept + 2, static_cast<std::uint64_t>(
                                      (1.0 - 2 * rate) * clean_kept))
                  << ctx;
              break;
            case util::FaultKind::kDropLine:
              // Dropped rows vanish silently; the rest still parse.
              EXPECT_EQ(report.rejected, 0u) << ctx;
              EXPECT_LE(kept, clean_kept) << ctx;
              break;
            case util::FaultKind::kDuplicateLine:
              EXPECT_EQ(report.rejected, 0u) << ctx;
              EXPECT_GE(kept, clean_kept) << ctx;
              break;
            case util::FaultKind::kSpliceGarbage:
              // Garbage rejects; every real row survives.
              EXPECT_EQ(kept, clean_kept) << ctx;
              break;
            case util::FaultKind::kBitFlip:
            case util::FaultKind::kMixed:
              // Bounded degradation: one fault hits at most a couple of rows
              // (a flip that lands on a newline can split one row in two).
              EXPECT_LE(report.error_rate(), 20 * rate + 0.01) << ctx;
              break;
          }
        }
      }
    }
  }
}

TEST_F(FaultInjectionTest, StrictModeFailsOnEveryMixedFault) {
  for (const std::uint64_t seed : kSeeds) {
    const util::FaultInjector injector({seed, 0.001});
    const std::string dirty =
        injector.Apply(ReadLog(LogFiles::kDns), util::FaultKind::kMixed);
    EXPECT_FALSE(logs::ReadDnsLog(dirty).has_value()) << "seed " << seed;
  }
}

TEST_F(FaultInjectionTest, StrictOnCleanInputMatchesLegacyRead) {
  const std::string clean = ReadLog(LogFiles::kConn);
  const auto legacy = flow::ReadConnLog(clean);
  ingest::IngestReport report;
  const auto strict = flow::ReadConnLog(clean, ingest::IngestOptions{}, report);
  ASSERT_TRUE(legacy.has_value());
  ASSERT_TRUE(strict.has_value());
  ASSERT_EQ(legacy->size(), strict->size());
  EXPECT_EQ(report.kept, strict->size());
  EXPECT_EQ(report.rejected, 0u);
}

TEST_F(FaultInjectionTest, TolerantPipelineCompletesOnMixedFaults) {
  const auto clean = CollectFromLogs(*dir_, StudyConfig::Small(40, 7));
  for (const std::uint64_t seed : kSeeds) {
    const auto faulted_dir =
        *dir_ / ("faulted_" + std::to_string(seed));
    std::filesystem::create_directories(faulted_dir);
    const util::FaultInjector injector({seed, 0.01});
    for (const char* name : {LogFiles::kConn, LogFiles::kDhcp, LogFiles::kDns,
                             LogFiles::kUa}) {
      std::ofstream out(faulted_dir / name, std::ios::binary);
      out << injector.Apply(ReadLog(name), util::FaultKind::kMixed);
    }

    IngestSummary summary;
    const auto result = CollectFromLogs(faulted_dir, StudyConfig::Small(40, 7),
                                        Tolerant(0.25), &summary);
    const auto total = summary.Total();
    EXPECT_EQ(total.kept + total.rejected, total.lines_total);
    EXPECT_GT(total.rejected, 0u);
    // Bounded degradation: a 1% fault rate cannot halve the dataset.
    EXPECT_GE(result.dataset.num_flows(), clean.dataset.num_flows() / 2);
    EXPECT_GE(result.dataset.num_devices(), clean.dataset.num_devices() / 2);

    // The same dirty directory is over budget for strict mode.
    EXPECT_THROW(CollectFromLogs(faulted_dir, StudyConfig::Small(40, 7),
                                 ingest::IngestOptions{}, nullptr),
                 ingest::BudgetError);
    std::filesystem::remove_all(faulted_dir);
  }
}

TEST_F(FaultInjectionTest, TolerantOnCleanLogsMatchesStrict) {
  const auto config = StudyConfig::Small(40, 7);
  const auto strict = CollectFromLogs(*dir_, config);
  IngestSummary summary;
  const auto tolerant = CollectFromLogs(*dir_, config, Tolerant(0.01), &summary);
  EXPECT_EQ(strict.dataset.num_flows(), tolerant.dataset.num_flows());
  EXPECT_EQ(strict.dataset.num_devices(), tolerant.dataset.num_devices());
  EXPECT_EQ(summary.Total().rejected, 0u);
  EXPECT_TRUE(summary.conn.header_ok);
}

TEST_F(FaultInjectionTest, MissingFileMapsToIoErrorWithErrnoDetail) {
  const auto missing = *dir_ / "does_not_exist";
  try {
    (void)ReadRawInputs(missing, ingest::IngestOptions{}, nullptr);
    FAIL() << "expected ingest::IoError";
  } catch (const ingest::IoError& e) {
    EXPECT_NE(std::string(e.what()).find("conn.log"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("open"), std::string::npos);
  }
}

}  // namespace
}  // namespace lockdown::core
