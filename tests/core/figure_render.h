// Canonical text rendering of every study output (Figures 1-8, extension
// analyses, headline stats), shared by the golden-figure regression test and
// the query-path differential tests. Doubles print with %.17g, which
// round-trips IEEE binary64 exactly, so two renderings are equal iff every
// figure is bit-identical.
#pragma once

#include <cstdio>
#include <sstream>
#include <string>
#include <utility>

#include "analysis/stats.h"
#include "core/pipeline.h"
#include "core/study.h"

namespace lockdown::core::testing {

inline std::string RenderNum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

inline void RenderBoxLine(std::ostringstream& out, const std::string& tag,
                          const analysis::BoxStats& b) {
  out << tag << '\t' << b.n << '\t' << RenderNum(b.p1) << '\t'
      << RenderNum(b.q1) << '\t' << RenderNum(b.median) << '\t'
      << RenderNum(b.q3) << '\t' << RenderNum(b.p95) << '\t'
      << RenderNum(b.p99) << '\t' << RenderNum(b.mean) << '\n';
}

/// Renders every figure the given study computes over the given collection.
inline std::string RenderFigures(const CollectionResult& collection,
                                 const LockdownStudy& study) {
  const auto Num = RenderNum;
  std::ostringstream out;
  const auto& st = collection.stats;
  out << "stats\t" << st.raw_flows << '\t' << st.tap_excluded << '\t'
      << st.unattributed << '\t' << st.visitor_flows << '\t'
      << st.devices_observed << '\t' << st.devices_retained << '\t'
      << st.ua_sightings << '\t' << st.ua_unattributed << '\t'
      << st.ua_visitor_dropped << '\n';

  for (const auto& row : study.ActiveDevicesPerDay()) {
    out << "fig1\t" << row.day;
    for (const int v : row.by_class) out << '\t' << v;
    out << '\t' << row.total << '\n';
  }
  for (const auto& row : study.BytesPerDevicePerDay()) {
    out << "fig2\t" << row.day;
    for (const double v : row.mean) out << '\t' << Num(v);
    for (const double v : row.median) out << '\t' << Num(v);
    out << '\n';
  }
  const auto f3 = study.HourOfWeekVolume();
  out << "fig3.norm\t" << Num(f3.normalization) << '\n';
  for (std::size_t w = 0; w < f3.weeks.size(); ++w) {
    out << "fig3.week" << w;
    for (int h = 0; h < analysis::HourOfWeekSeries::kHours; ++h) {
      out << '\t' << Num(f3.weeks[w].at(h));
    }
    out << '\n';
  }
  for (const auto& row : study.MedianBytesExcludingZoom()) {
    out << "fig4\t" << row.day << '\t' << Num(row.intl_mobile_desktop) << '\t'
        << Num(row.dom_mobile_desktop) << '\t' << Num(row.intl_unclassified)
        << '\t' << Num(row.dom_unclassified) << '\n';
  }
  const auto f5 = study.ZoomDailyBytes();
  for (int d = 0; d < f5.num_days(); ++d) {
    out << "fig5\t" << d << '\t' << Num(f5.at(d)) << '\n';
  }
  for (int month = 2; month <= 5; ++month) {
    for (const auto& [app, name] :
         {std::pair{apps::SocialApp::kFacebook, "facebook"},
          std::pair{apps::SocialApp::kInstagram, "instagram"},
          std::pair{apps::SocialApp::kTikTok, "tiktok"}}) {
      const auto box = study.SocialDurations(app, month);
      const std::string tag =
          "fig6." + std::string(name) + ".m" + std::to_string(month);
      RenderBoxLine(out, tag + ".dom", box.domestic);
      RenderBoxLine(out, tag + ".intl", box.international);
    }
    const auto steam = study.SteamUsage(month);
    const std::string tag = "fig7.m" + std::to_string(month);
    RenderBoxLine(out, tag + ".dom_bytes", steam.dom_bytes);
    RenderBoxLine(out, tag + ".intl_bytes", steam.intl_bytes);
    RenderBoxLine(out, tag + ".dom_conns", steam.dom_conns);
    RenderBoxLine(out, tag + ".intl_conns", steam.intl_conns);
  }
  const auto f8 = study.SwitchGameplayDaily();
  for (int d = 0; d < f8.num_days(); ++d) {
    out << "fig8\t" << d << '\t' << Num(f8.at(d)) << '\n';
  }
  const auto sw = study.CountSwitches();
  out << "fig8.counts\t" << sw.active_february << '\t'
      << sw.active_post_shutdown << '\t' << sw.new_in_april_may << '\n';
  for (const auto& row : study.CategoryVolumes()) {
    out << "categories\t" << row.day << '\t' << Num(row.education) << '\t'
        << Num(row.video_conferencing) << '\t' << Num(row.streaming) << '\t'
        << Num(row.social_media) << '\t' << Num(row.gaming) << '\t'
        << Num(row.messaging) << '\t' << Num(row.other) << '\n';
  }
  const auto diurnal = study.DiurnalShape(0, util::StudyCalendar::NumDays() - 1);
  out << "diurnal.weekday";
  for (const double v : diurnal.weekday) out << '\t' << Num(v);
  out << "\ndiurnal.weekend";
  for (const double v : diurnal.weekend) out << '\t' << Num(v);
  out << '\n';
  const auto h = study.HeadlineStats();
  out << "headline\t" << h.peak_active_devices << '\t'
      << h.trough_active_devices << '\t' << h.post_shutdown_users << '\t'
      << Num(h.traffic_increase) << '\t' << Num(h.distinct_sites_increase)
      << '\t' << h.international_devices << '\t'
      << Num(h.international_share) << '\n';
  return out.str();
}

}  // namespace lockdown::core::testing
