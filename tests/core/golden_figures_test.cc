// Golden-figure regression test: renders every Figure 1-8 output (plus the
// extension analyses and headline stats) for a fixed small campus into a
// canonical TSV and diffs it against the checked-in fixture. Catches any
// unintended numeric drift in the pipeline or study — including drift that
// the determinism (parallel-vs-serial) tests cannot see because both sides
// would move together.
//
// Doubles are printed with %.17g, which round-trips IEEE binary64 exactly, so
// a one-ulp change anywhere fails the diff. To regenerate after an intended
// change (and review the diff in git):
//
//   LOCKDOWN_REGEN_GOLDEN=1 ./tests/core_test --gtest_filter='GoldenFigures.*'
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "core/study.h"
#include "figure_render.h"
#include "world/catalog.h"

namespace lockdown::core {
namespace {

constexpr int kStudents = 60;
constexpr std::uint64_t kSeed = 2020;

/// One canonical text rendering of everything the study computes (the
/// renderer itself is shared with tests/query/figures_differential_test.cc).
std::string RenderFigures() {
  const StudyConfig cfg = StudyConfig::Small(kStudents, kSeed);
  const CollectionResult collection = MeasurementPipeline::Collect(cfg);
  const LockdownStudy study(collection.dataset,
                            world::ServiceCatalog::Default());
  return testing::RenderFigures(collection, study);
}

std::string GoldenPath() {
  return std::string(LOCKDOWN_GOLDEN_DIR) + "/figures_s" +
         std::to_string(kStudents) + "_seed" + std::to_string(kSeed) + ".tsv";
}

TEST(GoldenFigures, MatchesCheckedInFixture) {
  const std::string rendered = RenderFigures();
  const std::string path = GoldenPath();

  if (std::getenv("LOCKDOWN_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path << " (" << rendered.size()
                 << " bytes); review the diff and re-run without "
                    "LOCKDOWN_REGEN_GOLDEN";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden fixture " << path
                  << " — run with LOCKDOWN_REGEN_GOLDEN=1 to create it";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  if (rendered == golden) return;

  // Pinpoint the first differing line; dumping both blobs is unreadable.
  std::istringstream ra(rendered);
  std::istringstream rb(golden);
  std::string la;
  std::string lb;
  int line = 0;
  while (true) {
    ++line;
    const bool more_a = static_cast<bool>(std::getline(ra, la));
    const bool more_b = static_cast<bool>(std::getline(rb, lb));
    if (!more_a && !more_b) break;
    if (la != lb || more_a != more_b) {
      FAIL() << "figure output diverges from " << path << " at line " << line
             << "\n  golden:   " << (more_b ? lb : "<eof>")
             << "\n  computed: " << (more_a ? la : "<eof>")
             << "\nIf the change is intended, regenerate with "
                "LOCKDOWN_REGEN_GOLDEN=1 and commit the diff.";
    }
  }
  FAIL() << "outputs differ but line scan found no mismatch (check trailing "
            "bytes)";
}

}  // namespace
}  // namespace lockdown::core
