// Golden-figure regression test: renders every Figure 1-8 output (plus the
// extension analyses and headline stats) for a fixed small campus into a
// canonical TSV and diffs it against the checked-in fixture. Catches any
// unintended numeric drift in the pipeline or study — including drift that
// the determinism (parallel-vs-serial) tests cannot see because both sides
// would move together.
//
// Doubles are printed with %.17g, which round-trips IEEE binary64 exactly, so
// a one-ulp change anywhere fails the diff. To regenerate after an intended
// change (and review the diff in git):
//
//   LOCKDOWN_REGEN_GOLDEN=1 ./tests/core_test --gtest_filter='GoldenFigures.*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/study.h"
#include "world/catalog.h"

namespace lockdown::core {
namespace {

constexpr int kStudents = 60;
constexpr std::uint64_t kSeed = 2020;

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void BoxLine(std::ostringstream& out, const std::string& tag,
             const analysis::BoxStats& b) {
  out << tag << '\t' << b.n << '\t' << Num(b.p1) << '\t' << Num(b.q1) << '\t'
      << Num(b.median) << '\t' << Num(b.q3) << '\t' << Num(b.p95) << '\t'
      << Num(b.p99) << '\t' << Num(b.mean) << '\n';
}

/// One canonical text rendering of everything the study computes.
std::string RenderFigures() {
  const StudyConfig cfg = StudyConfig::Small(kStudents, kSeed);
  const CollectionResult collection = MeasurementPipeline::Collect(cfg);
  const LockdownStudy study(collection.dataset,
                            world::ServiceCatalog::Default());

  std::ostringstream out;
  const auto& st = collection.stats;
  out << "stats\t" << st.raw_flows << '\t' << st.tap_excluded << '\t'
      << st.unattributed << '\t' << st.visitor_flows << '\t'
      << st.devices_observed << '\t' << st.devices_retained << '\t'
      << st.ua_sightings << '\t' << st.ua_unattributed << '\t'
      << st.ua_visitor_dropped << '\n';

  for (const auto& row : study.ActiveDevicesPerDay()) {
    out << "fig1\t" << row.day;
    for (const int v : row.by_class) out << '\t' << v;
    out << '\t' << row.total << '\n';
  }
  for (const auto& row : study.BytesPerDevicePerDay()) {
    out << "fig2\t" << row.day;
    for (const double v : row.mean) out << '\t' << Num(v);
    for (const double v : row.median) out << '\t' << Num(v);
    out << '\n';
  }
  const auto f3 = study.HourOfWeekVolume();
  out << "fig3.norm\t" << Num(f3.normalization) << '\n';
  for (std::size_t w = 0; w < f3.weeks.size(); ++w) {
    out << "fig3.week" << w;
    for (int h = 0; h < analysis::HourOfWeekSeries::kHours; ++h) {
      out << '\t' << Num(f3.weeks[w].at(h));
    }
    out << '\n';
  }
  for (const auto& row : study.MedianBytesExcludingZoom()) {
    out << "fig4\t" << row.day << '\t' << Num(row.intl_mobile_desktop) << '\t'
        << Num(row.dom_mobile_desktop) << '\t' << Num(row.intl_unclassified)
        << '\t' << Num(row.dom_unclassified) << '\n';
  }
  const auto f5 = study.ZoomDailyBytes();
  for (int d = 0; d < f5.num_days(); ++d) {
    out << "fig5\t" << d << '\t' << Num(f5.at(d)) << '\n';
  }
  for (int month = 2; month <= 5; ++month) {
    for (const auto& [app, name] :
         {std::pair{apps::SocialApp::kFacebook, "facebook"},
          std::pair{apps::SocialApp::kInstagram, "instagram"},
          std::pair{apps::SocialApp::kTikTok, "tiktok"}}) {
      const auto box = study.SocialDurations(app, month);
      const std::string tag =
          "fig6." + std::string(name) + ".m" + std::to_string(month);
      BoxLine(out, tag + ".dom", box.domestic);
      BoxLine(out, tag + ".intl", box.international);
    }
    const auto steam = study.SteamUsage(month);
    const std::string tag = "fig7.m" + std::to_string(month);
    BoxLine(out, tag + ".dom_bytes", steam.dom_bytes);
    BoxLine(out, tag + ".intl_bytes", steam.intl_bytes);
    BoxLine(out, tag + ".dom_conns", steam.dom_conns);
    BoxLine(out, tag + ".intl_conns", steam.intl_conns);
  }
  const auto f8 = study.SwitchGameplayDaily();
  for (int d = 0; d < f8.num_days(); ++d) {
    out << "fig8\t" << d << '\t' << Num(f8.at(d)) << '\n';
  }
  const auto sw = study.CountSwitches();
  out << "fig8.counts\t" << sw.active_february << '\t'
      << sw.active_post_shutdown << '\t' << sw.new_in_april_may << '\n';
  for (const auto& row : study.CategoryVolumes()) {
    out << "categories\t" << row.day << '\t' << Num(row.education) << '\t'
        << Num(row.video_conferencing) << '\t' << Num(row.streaming) << '\t'
        << Num(row.social_media) << '\t' << Num(row.gaming) << '\t'
        << Num(row.messaging) << '\t' << Num(row.other) << '\n';
  }
  const auto diurnal = study.DiurnalShape(0, util::StudyCalendar::NumDays() - 1);
  out << "diurnal.weekday";
  for (const double v : diurnal.weekday) out << '\t' << Num(v);
  out << "\ndiurnal.weekend";
  for (const double v : diurnal.weekend) out << '\t' << Num(v);
  out << '\n';
  const auto h = study.HeadlineStats();
  out << "headline\t" << h.peak_active_devices << '\t'
      << h.trough_active_devices << '\t' << h.post_shutdown_users << '\t'
      << Num(h.traffic_increase) << '\t' << Num(h.distinct_sites_increase)
      << '\t' << h.international_devices << '\t'
      << Num(h.international_share) << '\n';
  return out.str();
}

std::string GoldenPath() {
  return std::string(LOCKDOWN_GOLDEN_DIR) + "/figures_s" +
         std::to_string(kStudents) + "_seed" + std::to_string(kSeed) + ".tsv";
}

TEST(GoldenFigures, MatchesCheckedInFixture) {
  const std::string rendered = RenderFigures();
  const std::string path = GoldenPath();

  if (std::getenv("LOCKDOWN_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path << " (" << rendered.size()
                 << " bytes); review the diff and re-run without "
                    "LOCKDOWN_REGEN_GOLDEN";
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden fixture " << path
                  << " — run with LOCKDOWN_REGEN_GOLDEN=1 to create it";
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string golden = buf.str();

  if (rendered == golden) return;

  // Pinpoint the first differing line; dumping both blobs is unreadable.
  std::istringstream ra(rendered);
  std::istringstream rb(golden);
  std::string la;
  std::string lb;
  int line = 0;
  while (true) {
    ++line;
    const bool more_a = static_cast<bool>(std::getline(ra, la));
    const bool more_b = static_cast<bool>(std::getline(rb, lb));
    if (!more_a && !more_b) break;
    if (la != lb || more_a != more_b) {
      FAIL() << "figure output diverges from " << path << " at line " << line
             << "\n  golden:   " << (more_b ? lb : "<eof>")
             << "\n  computed: " << (more_a ? la : "<eof>")
             << "\nIf the change is intended, regenerate with "
                "LOCKDOWN_REGEN_GOLDEN=1 and commit the diff.";
    }
  }
  FAIL() << "outputs differ but line scan found no mismatch (check trailing "
            "bytes)";
}

}  // namespace
}  // namespace lockdown::core
