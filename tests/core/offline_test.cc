// The offline (two-phase) pipeline must be equivalent to live collection:
// export the logs, re-ingest them, and obtain the identical dataset.
#include "core/offline.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

namespace lockdown::core {
namespace {

namespace fs = std::filesystem;

class OfflineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lockdown_offline_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST_F(OfflineTest, ExportedLogsExistAndParse) {
  const auto config = StudyConfig::Small(50, 5);
  ExportLogs(config, dir_);
  for (const char* name : {LogFiles::kConn, LogFiles::kDhcp, LogFiles::kDns,
                           LogFiles::kUa}) {
    EXPECT_TRUE(fs::exists(dir_ / name)) << name;
    EXPECT_GT(fs::file_size(dir_ / name), 100u) << name;
  }
}

TEST_F(OfflineTest, OfflineMatchesLiveCollection) {
  const auto config = StudyConfig::Small(50, 5);
  const auto live = MeasurementPipeline::Collect(config);

  ExportLogs(config, dir_);
  const auto offline = CollectFromLogs(dir_, config);

  ASSERT_EQ(offline.dataset.num_flows(), live.dataset.num_flows());
  ASSERT_EQ(offline.dataset.num_devices(), live.dataset.num_devices());
  EXPECT_EQ(offline.dataset.num_domains(), live.dataset.num_domains());
  EXPECT_EQ(offline.stats.unattributed, live.stats.unattributed);
  EXPECT_EQ(offline.stats.ua_sightings, live.stats.ua_sightings);

  // Flow-level equality (same sort order after Finalize).
  for (std::size_t i = 0; i < live.dataset.num_flows(); i += 503) {
    const Flow& a = live.dataset.flows()[i];
    const Flow& b = offline.dataset.flows()[i];
    EXPECT_EQ(a.start_offset_s, b.start_offset_s);
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.domain, b.domain);
    EXPECT_EQ(a.bytes_up, b.bytes_up);
    EXPECT_EQ(a.bytes_down, b.bytes_down);
  }
  // Device pseudonyms equal (same anonymizer key).
  for (DeviceIndex i = 0; i < live.dataset.num_devices(); ++i) {
    EXPECT_EQ(live.dataset.device(i).id, offline.dataset.device(i).id);
  }
}

TEST_F(OfflineTest, MissingFileThrows) {
  const auto config = StudyConfig::Small(50, 5);
  EXPECT_THROW((void)CollectFromLogs(dir_, config), std::runtime_error);
}

TEST_F(OfflineTest, MalformedLogThrows) {
  const auto config = StudyConfig::Small(50, 5);
  ExportLogs(config, dir_);
  std::ofstream(dir_ / LogFiles::kDns) << "garbage\n";
  EXPECT_THROW((void)CollectFromLogs(dir_, config), std::runtime_error);
}

TEST_F(OfflineTest, DifferentKeyUnlinksDevices) {
  // Re-processing the same logs under a different anonymization key must
  // yield different pseudonyms (same structure).
  const auto config = StudyConfig::Small(50, 5);
  ExportLogs(config, dir_);
  auto config2 = config;
  config2.generator.population.seed += 1;  // different key derivation
  const auto a = CollectFromLogs(dir_, config);
  const auto b = CollectFromLogs(dir_, config2);
  ASSERT_EQ(a.dataset.num_devices(), b.dataset.num_devices());
  std::size_t same = 0;
  for (DeviceIndex i = 0; i < a.dataset.num_devices(); ++i) {
    same += a.dataset.device(i).id == b.dataset.device(i).id;
  }
  EXPECT_EQ(same, 0u);
}

}  // namespace
}  // namespace lockdown::core
