#include "geo/intl.h"

#include <gtest/gtest.h>

namespace lockdown::geo {
namespace {

using privacy::DeviceId;

class IntlTest : public ::testing::Test {
 protected:
  IntlTest() : geo_(world::ServiceCatalog::Default()), classifier_(geo_) {}

  net::Ipv4Address ServiceIp(const char* name) const {
    const auto& cat = world::ServiceCatalog::Default();
    return cat.Get(*cat.FindByName(name)).block.At(7);
  }

  static util::Timestamp Feb(int day) {
    return util::TimestampOf(util::CivilDateTime{{2020, 2, day}, 12, 0, 0});
  }

  world::GeoDatabase geo_;
  InternationalClassifier classifier_;
};

TEST_F(IntlTest, UsOnlyTrafficIsDomestic) {
  const DeviceId dev{1};
  classifier_.Observe(dev, ServiceIp("netflix"), 1'000'000, Feb(5));
  classifier_.Observe(dev, ServiceIp("facebook"), 500'000, Feb(6));
  const auto result = classifier_.Classify(dev);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->international);
}

TEST_F(IntlTest, ChinaHeavyTrafficIsInternational) {
  const DeviceId dev{2};
  classifier_.Observe(dev, ServiceIp("bilibili"), 5'000'000, Feb(5));
  classifier_.Observe(dev, ServiceIp("baidu"), 2'000'000, Feb(6));
  classifier_.Observe(dev, ServiceIp("netflix"), 1'000'000, Feb(7));
  const auto result = classifier_.Classify(dev);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->international);
}

TEST_F(IntlTest, BalancedUsChinaMidpointIsInternational) {
  // Equal bytes to each side of the Pacific land the midpoint in the ocean:
  // outside the US, so international (§4.2's conservative direction works
  // the other way: a *mostly*-US mix stays domestic).
  const DeviceId dev{3};
  classifier_.Observe(dev, ServiceIp("bilibili"), 1'000'000, Feb(10));
  classifier_.Observe(dev, ServiceIp("netflix"), 1'000'000, Feb(11));
  const auto result = classifier_.Classify(dev);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->international);
}

TEST_F(IntlTest, MostlyUsMixStaysDomestic) {
  // A realistic device touches US services coast to coast; its midpoint sits
  // inland, so a small foreign fraction cannot drag it across the border.
  // (A device visiting ONLY west-coast services sits so close to the Pacific
  // that even 10% Chinese bytes pushes it offshore — the conservative
  // misclassification direction the paper acknowledges.)
  const DeviceId dev{4};
  classifier_.Observe(dev, ServiceIp("netflix"), 4'000'000, Feb(10));   // west
  classifier_.Observe(dev, ServiceIp("facebook"), 3'000'000, Feb(10));  // east
  classifier_.Observe(dev, ServiceIp("walmart"), 2'000'000, Feb(11));   // central
  classifier_.Observe(dev, ServiceIp("bilibili"), 1'000'000, Feb(11));
  const auto result = classifier_.Classify(dev);
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->international);
}

TEST_F(IntlTest, CdnTrafficExcluded) {
  // A device whose only February traffic hit CDNs has no usable geolocation
  // ("we exclude these CDNs because they give information about the user's
  //  device location", §4.2).
  const DeviceId dev{5};
  classifier_.Observe(dev, ServiceIp("akamai"), 50'000'000, Feb(3));
  classifier_.Observe(dev, ServiceIp("cloudfront"), 50'000'000, Feb(4));
  EXPECT_FALSE(classifier_.Classify(dev).has_value());
}

TEST_F(IntlTest, CdnBytesDoNotDragMidpointHome) {
  // CDN edges serve from next to campus; counting them would pull every
  // international student's midpoint into the US.
  const DeviceId dev{6};
  classifier_.Observe(dev, ServiceIp("akamai"), 100'000'000, Feb(3));
  classifier_.Observe(dev, ServiceIp("bilibili"), 2'000'000, Feb(4));
  const auto result = classifier_.Classify(dev);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->international);
}

TEST_F(IntlTest, TrafficOutsideFebruaryIgnored) {
  const DeviceId dev{7};
  const auto march = util::TimestampOf(util::CivilDate{2020, 3, 5});
  classifier_.Observe(dev, ServiceIp("bilibili"), 5'000'000, march);
  EXPECT_FALSE(classifier_.Classify(dev).has_value());
}

TEST_F(IntlTest, UnknownAddressesIgnored) {
  const DeviceId dev{8};
  classifier_.Observe(dev, net::Ipv4Address(203, 0, 113, 9), 1'000'000, Feb(2));
  EXPECT_FALSE(classifier_.Classify(dev).has_value());
}

TEST_F(IntlTest, UnseenDeviceHasNoResult) {
  EXPECT_FALSE(classifier_.Classify(DeviceId{999}).has_value());
  EXPECT_EQ(classifier_.num_devices(), 0u);
}

TEST_F(IntlTest, EuropeanTrafficInternational) {
  const DeviceId dev{10};
  classifier_.Observe(dev, ServiceIp("bbc"), 4'000'000, Feb(8));
  classifier_.Observe(dev, ServiceIp("spiegel"), 4'000'000, Feb(9));
  const auto result = classifier_.Classify(dev);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->international);
}

}  // namespace
}  // namespace lockdown::geo
