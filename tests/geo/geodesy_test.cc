#include "geo/geodesy.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lockdown::geo {
namespace {

constexpr world::GeoPoint kSanDiego{32.72, -117.16};
constexpr world::GeoPoint kShanghai{31.23, 121.47};
constexpr world::GeoPoint kLondon{51.51, -0.13};

TEST(Geodesy, UnitVectorRoundTrip) {
  for (const world::GeoPoint p : {kSanDiego, kShanghai, kLondon,
                                  world::GeoPoint{0, 0}, world::GeoPoint{-45, 170}}) {
    const world::GeoPoint back = ToGeoPoint(ToUnitVector(p));
    EXPECT_NEAR(back.lat, p.lat, 1e-9);
    EXPECT_NEAR(back.lon, p.lon, 1e-9);
  }
}

TEST(Geodesy, PolesAndAntimeridian) {
  const world::GeoPoint north{90, 0};
  EXPECT_NEAR(ToGeoPoint(ToUnitVector(north)).lat, 90.0, 1e-9);
  const world::GeoPoint anti{10, 180};
  EXPECT_NEAR(std::abs(ToGeoPoint(ToUnitVector(anti)).lon), 180.0, 1e-9);
}

TEST(Geodesy, ZeroVectorMapsToNullIsland) {
  const world::GeoPoint p = ToGeoPoint(Vec3{0, 0, 0});
  EXPECT_EQ(p.lat, 0.0);
  EXPECT_EQ(p.lon, 0.0);
}

TEST(Geodesy, GreatCircleKnownDistances) {
  // San Diego <-> Shanghai is ~10,800 km.
  EXPECT_NEAR(GreatCircleKm(kSanDiego, kShanghai), 10800, 250);
  // London <-> San Diego is ~8,750 km.
  EXPECT_NEAR(GreatCircleKm(kLondon, kSanDiego), 8750, 250);
  EXPECT_NEAR(GreatCircleKm(kSanDiego, kSanDiego), 0.0, 1e-6);
}

TEST(Midpoint, EqualWeightsSymmetric) {
  MidpointAccumulator acc;
  acc.Add({10, 20}, 1.0);
  acc.Add({-10, 20}, 1.0);
  const world::GeoPoint mid = acc.Midpoint();
  EXPECT_NEAR(mid.lat, 0.0, 1e-9);
  EXPECT_NEAR(mid.lon, 20.0, 1e-9);
}

TEST(Midpoint, WeightsPullTheMidpoint) {
  MidpointAccumulator heavy_us;
  heavy_us.Add(kSanDiego, 9.0);
  heavy_us.Add(kShanghai, 1.0);
  // 90% US bytes: midpoint stays near the US west coast.
  EXPECT_LT(GreatCircleKm(heavy_us.Midpoint(), kSanDiego), 2500);

  MidpointAccumulator heavy_cn;
  heavy_cn.Add(kSanDiego, 1.0);
  heavy_cn.Add(kShanghai, 9.0);
  EXPECT_LT(GreatCircleKm(heavy_cn.Midpoint(), kShanghai), 2500);
}

TEST(Midpoint, BalancedUsChinaLandsInThePacific) {
  // The key mechanism of §4.2: a student splitting traffic between the US
  // and China has a mid-Pacific midpoint — outside the US border.
  MidpointAccumulator acc;
  acc.Add(kSanDiego, 1.0);
  acc.Add(kShanghai, 1.0);
  const world::GeoPoint mid = acc.Midpoint();
  EXPECT_GT(GreatCircleKm(mid, kSanDiego), 3000);
  EXPECT_GT(GreatCircleKm(mid, kShanghai), 3000);
}

TEST(Midpoint, ZeroAndNegativeWeightsIgnored) {
  MidpointAccumulator acc;
  acc.Add(kShanghai, 0.0);
  acc.Add(kShanghai, -5.0);
  EXPECT_TRUE(acc.empty());
  acc.Add(kSanDiego, 1.0);
  EXPECT_FALSE(acc.empty());
  EXPECT_NEAR(acc.Midpoint().lat, kSanDiego.lat, 1e-9);
}

TEST(Midpoint, TotalWeightAccumulates) {
  MidpointAccumulator acc;
  acc.Add(kSanDiego, 100.0);
  acc.Add(kLondon, 200.0);
  EXPECT_DOUBLE_EQ(acc.total_weight(), 300.0);
}

}  // namespace
}  // namespace lockdown::geo
