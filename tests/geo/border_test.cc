#include "geo/border.h"

#include <gtest/gtest.h>

namespace lockdown::geo {
namespace {

struct BorderCase {
  const char* name;
  world::GeoPoint point;
  bool inside;
};

class UsBorderTest : public ::testing::TestWithParam<BorderCase> {};

TEST_P(UsBorderTest, Contains) {
  const BorderCase& c = GetParam();
  EXPECT_EQ(UsBorder::Contains(c.point), c.inside) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Cities, UsBorderTest,
    ::testing::Values(
        BorderCase{"san-diego", {32.72, -117.16}, true},
        BorderCase{"ucsd-campus", {32.88, -117.24}, true},
        BorderCase{"new-york", {40.71, -74.01}, true},
        BorderCase{"chicago", {41.88, -87.63}, true},
        BorderCase{"miami", {25.76, -80.19}, true},
        BorderCase{"seattle", {47.61, -122.33}, true},
        BorderCase{"denver", {39.74, -104.99}, true},
        BorderCase{"anchorage-alaska", {61.22, -149.90}, true},
        BorderCase{"honolulu-hawaii", {21.31, -157.86}, true},
        BorderCase{"tijuana-mexico", {32.51, -117.04}, false},
        BorderCase{"vancouver-canada", {49.28, -123.12}, false},
        BorderCase{"toronto-canada", {43.65, -79.38}, false},
        BorderCase{"mexico-city", {19.43, -99.13}, false},
        BorderCase{"london", {51.51, -0.13}, false},
        BorderCase{"shanghai", {31.23, 121.47}, false},
        BorderCase{"seoul", {37.57, 126.98}, false},
        BorderCase{"mid-pacific", {35.0, -160.0}, false},
        BorderCase{"mid-atlantic", {35.0, -50.0}, false},
        BorderCase{"null-island", {0.0, 0.0}, false}),
    [](const ::testing::TestParamInfo<BorderCase>& param_info) {
      std::string name = param_info.param.name;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name;
    });

TEST(PointInPolygon, Square) {
  const world::GeoPoint square[] = {{0, 0}, {0, 10}, {10, 10}, {10, 0}};
  EXPECT_TRUE(PointInPolygon({5, 5}, square));
  EXPECT_FALSE(PointInPolygon({15, 5}, square));
  EXPECT_FALSE(PointInPolygon({-1, 5}, square));
  EXPECT_FALSE(PointInPolygon({5, 11}, square));
}

TEST(PointInPolygon, Concave) {
  // A "U" shape: the notch is outside.
  const world::GeoPoint u[] = {{0, 0}, {10, 0}, {10, 3}, {3, 3},
                               {3, 7}, {10, 7}, {10, 10}, {0, 10}};
  EXPECT_TRUE(PointInPolygon({1, 5}, u));
  EXPECT_FALSE(PointInPolygon({8, 5}, u));
}

TEST(UsBorder, PolygonIsExposed) {
  EXPECT_GE(UsBorder::ConusPolygon().size(), 10u);
}

}  // namespace
}  // namespace lockdown::geo
