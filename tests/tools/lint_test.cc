// End-to-end tests for tools/lint/lockdown_lint: the fixture corpus under
// tests/tools/lint_fixtures/<RULE>/{good,bad} is the executable spec of each
// rule — every bad tree must be caught with the exact file:line/rule/message
// output frozen in its expected.txt, every good tree (which exercises the
// sanctioned idioms and suppression comments) must be clean — and the real
// source tree itself must lint clean.
//
// Build-time configuration (see tests/CMakeLists.txt):
//   LOCKDOWN_LINT_BIN       absolute path of the built lockdown_lint binary
//   LOCKDOWN_LINT_FIXTURES  absolute path of the fixture corpus
//   LOCKDOWN_SOURCE_ROOT    absolute path of the repository root

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <sys/wait.h>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string out;
};

// Runs the linter with `args`, capturing stdout; stderr (the violation-count
// summary) is dropped so assertions see only the findings stream.
RunResult RunLint(const std::string& args) {
  const std::string cmd =
      std::string(LOCKDOWN_LINT_BIN) + " " + args + " 2>/dev/null";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult r;
  char buf[4096];
  std::size_t n = 0;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) r.out.append(buf, n);
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::stringstream ss(text);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::string ReadFile(const fs::path& p) {
  std::ifstream in(p);
  EXPECT_TRUE(in.is_open()) << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::set<std::string> ListedRuleIds() {
  const RunResult r = RunLint("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  std::set<std::string> ids;
  for (const std::string& line : Lines(r.out)) {
    ids.insert(line.substr(0, line.find(' ')));
  }
  return ids;
}

std::set<std::string> FixtureRuleDirs() {
  std::set<std::string> dirs;
  for (const auto& entry : fs::directory_iterator(LOCKDOWN_LINT_FIXTURES)) {
    if (entry.is_directory()) dirs.insert(entry.path().filename().string());
  }
  return dirs;
}

// Every registered rule has a good+bad fixture pair (so a newly added rule
// cannot ship untested), and every fixture directory names a live rule (so a
// removed rule cannot leave a stale spec behind).
TEST(LockdownLint, FixtureCorpusCoversExactlyTheRegisteredRules) {
  const std::set<std::string> rules = ListedRuleIds();
  ASSERT_FALSE(rules.empty());
  EXPECT_EQ(rules, FixtureRuleDirs());
  for (const std::string& rule : rules) {
    const fs::path dir = fs::path(LOCKDOWN_LINT_FIXTURES) / rule;
    EXPECT_TRUE(fs::is_directory(dir / "good")) << rule;
    EXPECT_TRUE(fs::is_directory(dir / "bad")) << rule;
    EXPECT_TRUE(fs::is_regular_file(dir / "bad" / "expected.txt")) << rule;
  }
}

TEST(LockdownLint, BadFixturesProduceExactlyTheFrozenFindings) {
  const std::regex shape(R"(^[-\w./]+:\d+: LD\d{3}: .+$)");
  for (const std::string& rule : ListedRuleIds()) {
    const fs::path dir = fs::path(LOCKDOWN_LINT_FIXTURES) / rule / "bad";
    const RunResult r = RunLint("--root " + dir.string());
    EXPECT_EQ(r.exit_code, 1) << rule;
    EXPECT_EQ(r.out, ReadFile(dir / "expected.txt")) << rule;
    const std::vector<std::string> lines = Lines(r.out);
    ASSERT_FALSE(lines.empty()) << rule;
    bool rule_seen = false;
    for (const std::string& line : lines) {
      EXPECT_TRUE(std::regex_match(line, shape)) << rule << ": " << line;
      rule_seen = rule_seen || line.find(": " + rule + ": ") != std::string::npos;
    }
    EXPECT_TRUE(rule_seen) << rule << " bad fixture never triggers " << rule;
  }
}

TEST(LockdownLint, GoodFixturesAreClean) {
  for (const std::string& rule : ListedRuleIds()) {
    const fs::path dir = fs::path(LOCKDOWN_LINT_FIXTURES) / rule / "good";
    const RunResult r = RunLint("--root " + dir.string());
    EXPECT_EQ(r.exit_code, 0) << rule << ":\n" << r.out;
    EXPECT_EQ(r.out, "") << rule;
  }
}

TEST(LockdownLint, RuleFilterRestrictsFindings) {
  // The LD003 bad tree checked with only LD007 enabled must be clean, and
  // with LD003 enabled must reproduce its frozen findings.
  const fs::path dir = fs::path(LOCKDOWN_LINT_FIXTURES) / "LD003" / "bad";
  EXPECT_EQ(RunLint("--rules LD007 --root " + dir.string()).exit_code, 0);
  const RunResult r = RunLint("--rules LD003 --root " + dir.string());
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_EQ(r.out, ReadFile(dir / "expected.txt"));
}

// Proves the suppression comments actually suppress — the same violating
// line is written three times (bare, line-allow, file-disable) and only the
// bare variant may be reported.
TEST(LockdownLint, SuppressionCommentsSilenceFindings) {
  const fs::path root = fs::path(testing::TempDir()) / "lint_suppression_fx";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  const auto write = [&](const char* name, const char* body) {
    std::ofstream out(root / "src" / "core" / name);
    out << body;
  };
  write("bare.cc", "void F() { int x = rand(); }\n");
  write("line_allow.cc",
        "void F() { int x = rand(); }  // lockdown-lint: allow(LD003)\n");
  write("next_line_allow.cc",
        "// lockdown-lint: allow(LD003)\nvoid F() { int x = rand(); }\n");
  write("file_disable.cc",
        "// lockdown-lint: disable-file(LD003)\n"
        "void F() { int x = rand(); }\n"
        "void G() { int y = rand(); }\n");
  const RunResult r = RunLint("--root " + root.string());
  EXPECT_EQ(r.exit_code, 1);
  const std::vector<std::string> lines = Lines(r.out);
  ASSERT_EQ(lines.size(), 1u) << r.out;
  EXPECT_NE(lines[0].find("src/core/bare.cc:1: LD003:"), std::string::npos)
      << lines[0];
  fs::remove_all(root);
}

// An allow() for one rule must not leak onto another rule on the same line.
TEST(LockdownLint, SuppressionIsPerRule) {
  const fs::path root = fs::path(testing::TempDir()) / "lint_per_rule_fx";
  fs::remove_all(root);
  fs::create_directories(root / "src" / "core");
  {
    std::ofstream out(root / "src" / "core" / "mixed.cc");
    out << "std::mutex g;  // lockdown-lint: allow(LD003)\n";
  }
  const RunResult r = RunLint("--root " + root.string());
  EXPECT_EQ(r.exit_code, 1);
  const std::vector<std::string> lines = Lines(r.out);
  ASSERT_EQ(lines.size(), 1u) << r.out;
  EXPECT_NE(lines[0].find("LD007"), std::string::npos) << lines[0];
  fs::remove_all(root);
}

TEST(LockdownLint, UnknownArgumentsAndRulesExitTwo) {
  EXPECT_EQ(RunLint("--no-such-flag").exit_code, 2);
  EXPECT_EQ(RunLint("--rules LD999").exit_code, 2);
  EXPECT_EQ(RunLint("--root /no/such/dir/anywhere").exit_code, 2);
}

// The teeth: the actual source tree carries zero violations. Any new
// contract breach in src/ or tools/ fails this test, not just check.sh.
TEST(LockdownLint, RealSourceTreeIsClean) {
  const RunResult r = RunLint("--root " LOCKDOWN_SOURCE_ROOT);
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(r.out, "") << r.out;
}

}  // namespace
