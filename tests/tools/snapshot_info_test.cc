// Asserts the `snapshot info` output shape: the per-section table must list
// every section with its codec, stored and raw byte counts, and the
// stored/raw compression ratio — "1.00" for raw sections, below 1 for coded
// ones — so the CLI surface the compression work is judged by cannot drift
// silently.
#include "tools/snapshot_info.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "store/snapshot.h"

namespace lockdown::cli {
namespace {

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

class SnapshotInfoTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process suite directory: each TEST is its own ctest process.
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("lockdown_snapinfo_test_" + std::to_string(::getpid())));
    std::filesystem::remove_all(*dir_);
    std::filesystem::create_directories(*dir_);
    const auto result =
        core::MeasurementPipeline::Collect(core::StudyConfig::Small(4, 1));
    store::SaveSnapshot(*dir_ / "plain.lds", result,
                        {.num_students = 4, .seed = 1}, {.format_version = 2});
    store::SaveSnapshot(*dir_ / "comp.lds", result, {.num_students = 4, .seed = 1},
                        {.compress = true});
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }
  static std::filesystem::path* dir_;
};

std::filesystem::path* SnapshotInfoTest::dir_ = nullptr;

TEST_F(SnapshotInfoTest, HeaderTableListsProvenance) {
  const store::SnapshotInfo info = store::InspectSnapshot(*dir_ / "plain.lds");
  std::ostringstream out;
  RenderSnapshotHeader(info, out);
  const std::string text = out.str();
  for (const char* field :
       {"format version", "file size", "flows", "devices", "interned domains",
        "flow stride", "students (provenance)", "seed (provenance)"}) {
    EXPECT_NE(text.find(field), std::string::npos) << field;
  }
  EXPECT_NE(text.find("4"), std::string::npos);  // provenance student count
}

TEST_F(SnapshotInfoTest, SectionTableHasOneRowPerSectionWithRatios) {
  const store::SnapshotInfo info = store::InspectSnapshot(*dir_ / "comp.lds");
  std::ostringstream out;
  RenderSectionTable(info, out);
  const std::vector<std::string> lines = Lines(out.str());
  // Header + separator + one row per section.
  ASSERT_EQ(lines.size(), 2 + info.sections.size());
  for (const char* column :
       {"section", "codec", "offset", "stored", "raw", "ratio", "crc32c"}) {
    EXPECT_NE(lines[0].find(column), std::string::npos) << column;
  }
  for (std::size_t i = 0; i < info.sections.size(); ++i) {
    const store::SectionInfo& s = info.sections[i];
    const std::string& row = lines[2 + i];
    EXPECT_EQ(row.find(s.name), 0u) << row;  // first column is the name
    EXPECT_NE(row.find(s.codec_name), std::string::npos) << row;
    EXPECT_NE(row.find(std::to_string(s.size)), std::string::npos) << row;
    EXPECT_NE(row.find(std::to_string(s.raw_size)), std::string::npos) << row;
  }
  // Raw sections print ratio 1.00; every coded section compresses (< 1).
  const std::string text = out.str();
  EXPECT_NE(text.find("1.00"), std::string::npos);
  EXPECT_NE(text.find("dictionary"), std::string::npos);
  EXPECT_NE(text.find("delta-varint"), std::string::npos);
  EXPECT_NE(text.find("packed"), std::string::npos);
  EXPECT_NE(text.find("0."), std::string::npos);  // at least one ratio < 1
}

TEST_F(SnapshotInfoTest, V2SnapshotIsAllRaw) {
  const store::SnapshotInfo info = store::InspectSnapshot(*dir_ / "plain.lds");
  std::ostringstream out;
  RenderSectionTable(info, out);
  for (const std::string& line : Lines(out.str())) {
    EXPECT_EQ(line.find("dictionary"), std::string::npos) << line;
    EXPECT_EQ(line.find("delta-varint"), std::string::npos) << line;
  }
  for (const store::SectionInfo& s : info.sections) {
    EXPECT_EQ(s.codec, 0u) << s.name;
    EXPECT_EQ(s.raw_size, s.size) << s.name;
  }
}

}  // namespace
}  // namespace lockdown::cli
