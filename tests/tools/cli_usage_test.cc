// Guards the lockdown_cli help against drifting from its parser: every
// public flag must appear in the help text, the exit codes must all be
// documented, and the flag inventory itself must stay sorted and duplicate
// free. Flags are matched with a trailing delimiter so "--out" cannot be
// satisfied by "--output".
#include "tools/usage.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>

namespace lockdown::cli {
namespace {

bool MentionsFlag(std::string_view text, std::string_view flag) {
  std::size_t pos = 0;
  while ((pos = text.find(flag, pos)) != std::string_view::npos) {
    const std::size_t end = pos + flag.size();
    if (end == text.size() || !(std::isalnum(text[end]) || text[end] == '-')) {
      return true;
    }
    pos = end;
  }
  return false;
}

TEST(CliUsage, EveryPublicFlagIsDocumented) {
  for (const std::string_view flag : kPublicFlags) {
    EXPECT_TRUE(MentionsFlag(kUsageText, flag))
        << "help text does not mention " << flag;
  }
}

TEST(CliUsage, EveryExitCodeIsDocumented) {
  const std::size_t section = kUsageText.find("exit codes:");
  ASSERT_NE(section, std::string_view::npos);
  const std::string_view codes = kUsageText.substr(section);
  for (const int code : kDocumentedExitCodes) {
    const std::string label = "\n  " + std::to_string(code) + "  ";
    EXPECT_NE(codes.find(label), std::string_view::npos)
        << "exit code " << code << " missing from the help";
  }
  EXPECT_NE(codes.find("0  success"), std::string_view::npos);
}

TEST(CliUsage, FlagInventoryIsSortedAndUnique) {
  EXPECT_TRUE(std::is_sorted(kPublicFlags.begin(), kPublicFlags.end()));
  EXPECT_EQ(std::adjacent_find(kPublicFlags.begin(), kPublicFlags.end()),
            kPublicFlags.end());
}

TEST(CliUsage, DocumentsTheStreamingSurface) {
  EXPECT_TRUE(MentionsFlag(kUsageText, "--streaming"));
  EXPECT_TRUE(MentionsFlag(kUsageText, "--memory-budget"));
  EXPECT_NE(kUsageText.find("accuracy report"), std::string_view::npos);
}

}  // namespace
}  // namespace lockdown::cli
