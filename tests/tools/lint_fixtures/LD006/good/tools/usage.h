#pragma once

namespace fx {

inline const char* kPublicFlags[] = {
    "--out",
    "--seed",
};

inline const char* kUsageText = R"(usage: tool [options]
  --out PATH   write output
  --seed N     deterministic seed
)";

}  // namespace fx
