#include <string_view>

namespace fx {

int Parse(std::string_view arg) {
  if (arg == "--out") return 1;
  if (arg == "--seed") return 2;
  return 0;
}

}  // namespace fx
