#pragma once

namespace fx {

inline const char* kPublicFlags[] = {
    "--out",
    "--threads",
};

inline const char* kUsageText = R"(usage: tool [options]
  --out PATH   write output
)";

}  // namespace fx
