#include "obs/trace.h"

namespace fx {

void Run() {
  OBS_SPAN("core/pass");
  OBS_SPAN("core/typo");
}

}  // namespace fx
