#pragma once

namespace fx {

inline const char* kRegisteredSpanNames[] = {
    "core/pass",
    "core/dead",
};

}  // namespace fx
