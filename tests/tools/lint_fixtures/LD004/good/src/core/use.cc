#include "obs/trace.h"

namespace fx {

void Run() { OBS_SPAN("core/pass"); }

}  // namespace fx
