#pragma once

namespace fx {

inline const char* kRegisteredSpanNames[] = {
    "core/pass",
};

}  // namespace fx
