#include <cstdlib>
#include <ctime>
#include <random>

namespace fx {

unsigned Mix() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  std::random_device rd;
  return static_cast<unsigned>(std::rand()) ^ rd();
}

}  // namespace fx
