#include <cstdlib>
#include <ctime>

namespace fx {

// The sanctioned randomness source: exempt from LD003 by path.
unsigned SeedFromEnvironment() {
  return static_cast<unsigned>(std::time(nullptr)) ^
         static_cast<unsigned>(std::rand());
}

}  // namespace fx
