namespace fx {

// Member calls named time/clock belong to their own APIs, not libc.
long Sample(Stopwatch& watch, Scheduler* sched) {
  long t = watch.time();
  t += sched->clock();
  // Reviewed exception, e.g. logging-only wall-clock:
  t += std::time(nullptr);  // lockdown-lint: allow(LD003)
  return t;
}

}  // namespace fx
