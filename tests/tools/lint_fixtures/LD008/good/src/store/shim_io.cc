#include "io/io.h"

namespace fx {

void Save(const char* path) {
  lockdown::io::File f = lockdown::io::File::Create(path);
  f.WriteAll("x");
  f.Fsync();
  f.Close();
  lockdown::io::Rename(path, "final");
}

void Probe(const char* path) {
  // Reviewed bridge: a diagnostic that must not recurse into the shim.
  const int fd = ::open(path, 0);  // lockdown-lint: allow(LD008)
  ::close(fd);                     // lockdown-lint: allow(LD008)
}

}  // namespace fx
