#include <fcntl.h>

namespace fx {

// src/core is outside the LD008 crash-safe zone; raw syscalls are its own
// reviewers' problem, not this rule's.
int OpenRaw(const char* path) { return ::open(path, 0); }

}  // namespace fx
