#include <fcntl.h>
#include <fstream>

namespace fx {

int SaveRaw(const char* path) {
  const int fd = ::open(path, O_WRONLY);
  ::write(fd, "x", 1);
  ::fsync(fd);
  ::close(fd);
  ::rename(path, "final");
  std::ofstream log("save.log");
  return fd;
}

}  // namespace fx
