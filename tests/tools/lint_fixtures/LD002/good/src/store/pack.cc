#include <algorithm>
#include <unordered_set>
#include <vector>

namespace fx {

std::unordered_set<unsigned> live;

void Emit(int* out) {
  std::vector<unsigned> sorted(live.begin(), live.end());
  std::sort(sorted.begin(), sorted.end());
  int i = 0;
  for (const unsigned v : sorted) out[i++] = static_cast<int>(v);
}

}  // namespace fx
