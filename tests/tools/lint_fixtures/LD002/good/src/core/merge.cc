#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

namespace fx {

struct Shard {
  std::unordered_map<int, long> counts;
};

void MergeShards(Shard& dst, const Shard& src) {
  std::vector<std::pair<int, long>> sorted(src.counts.begin(),
                                           src.counts.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& kv : sorted) dst.counts[kv.first] += kv.second;
}

// Not a merge/serialization path: unordered iteration is allowed here.
long Total(const Shard& s) {
  long total = 0;
  for (const auto& kv : s.counts) total += kv.second;
  return total;
}

void MergeDirect(Shard& dst, const Shard& src) {
  // lockdown-lint: allow(LD002) keyed union, order-independent
  for (const auto& kv : src.counts) dst.counts[kv.first] += kv.second;
}

}  // namespace fx
