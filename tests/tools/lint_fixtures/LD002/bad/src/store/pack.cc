#include <unordered_set>

namespace fx {

std::unordered_set<unsigned> live;

void Emit(int* out) {
  int i = 0;
  for (const unsigned v : live) out[i++] = static_cast<int>(v);
}

}  // namespace fx
