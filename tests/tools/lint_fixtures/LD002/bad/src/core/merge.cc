#include <unordered_map>

namespace fx {

struct Shard {
  std::unordered_map<int, long> counts;
};

void MergeShards(Shard& dst, const Shard& src) {
  for (const auto& kv : src.counts) {
    dst.counts[kv.first] += kv.second;
  }
}

}  // namespace fx
