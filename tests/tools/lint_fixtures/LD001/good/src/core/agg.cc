#include <cstddef>

namespace fx {

// double in the signature is outside the lambda body: not a violation.
void Fill(Pool& pool, double* out, unsigned long long* sums) {
  pool.ParallelFor(8, 1, [&](std::size_t c, std::size_t b, std::size_t e) {
    unsigned long long sum = 0;
    for (std::size_t i = b; i < e; ++i) sum += i;
    sums[c] = sum;
  });
  pool.ParallelFor(8, 1, [&](std::size_t c, std::size_t, std::size_t) {
    // Reviewed figure-boundary statistic: one writer per slot.
    const double mean = Finalize(sums[c]);  // lockdown-lint: allow(LD001)
    out[c] = mean;
  });
}

}  // namespace fx
