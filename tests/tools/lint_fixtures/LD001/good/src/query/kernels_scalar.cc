#include <cstdint>

namespace fx {

// Integer-only kernel: a comment mentioning double is fine.
std::uint64_t SumU64(const std::uint64_t* v, std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

}  // namespace fx
