namespace fx {

float ScaleBy(float v) { return v * 2.0f; }

}  // namespace fx
