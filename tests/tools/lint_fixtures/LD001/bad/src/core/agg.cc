#include <cstddef>

namespace fx {

void Fill(Pool& pool, double* out) {
  pool.ParallelFor(8, 1, [&](std::size_t c, std::size_t b, std::size_t e) {
    double sum = 0.0;
    for (std::size_t i = b; i < e; ++i) sum += 1.0;
    out[c] = sum;
  });
}

}  // namespace fx
