#include <mutex>

namespace fx {

std::mutex g_mu;

void Touch(int* v) {
  const std::lock_guard<std::mutex> lock(g_mu);
  ++*v;
}

}  // namespace fx
