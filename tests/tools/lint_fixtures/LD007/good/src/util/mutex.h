#pragma once

#include <mutex>

namespace fx {

// The sanctioned wrapper file: exempt from LD007 by path.
class Mutex {
 public:
  void Lock() { impl_.lock(); }
  void Unlock() { impl_.unlock(); }

 private:
  std::mutex impl_;
};

}  // namespace fx
