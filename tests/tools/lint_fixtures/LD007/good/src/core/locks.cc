#include "util/mutex.h"

namespace fx {

util::Mutex g_mu;

void Touch(int* v) {
  const util::MutexLock lock(g_mu);
  ++*v;
}

void Adapter() {
  // Reviewed bridge to a third-party API wanting a std lock:
  std::unique_lock<std::mutex> raw;  // lockdown-lint: allow(LD007)
}

}  // namespace fx
