#include "store/format.h"

namespace fx {

void WriteAll(Out& out) {
  out.sections.push_back(Section{SectionKind::kMeta});
  out.sections.push_back(Section{SectionKind::kGhost});
}

}  // namespace fx
