#include "store/format.h"

namespace fx {

bool Accept(SectionKind k) { return k == SectionKind::kMeta; }

}  // namespace fx
