#include "store/format.h"

namespace fx {

void WriteAll(Out& out) {
  Section s{SectionKind::kMeta};
  s.crc = CrcOf(s.body);
  out.sections.push_back(s);
}

}  // namespace fx
