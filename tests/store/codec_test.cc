// Column-codec verification: varint property tests, encode/decode round
// trips over random flow tables (edge values included), decoder fuzz (random
// payload mutations must throw store::Error or return a validated value —
// never crash or read out of bounds; the ASan tier is the real judge), a
// byte-sweep over every compressed section of a real snapshot proving the
// reader rejects or salvages but never silently misreads, and format-matrix
// round trips (v2, v3, v3-compressed all reload to the identical dataset).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <span>
#include <vector>

#include "core/pipeline.h"
#include "store/codec.h"
#include "store/column_codec.h"
#include "store/format.h"
#include "store/snapshot.h"

namespace lockdown::store {
namespace {

using core::Flow;

// --- varint properties -------------------------------------------------------

TEST(VarintProperty, UvarintRoundTripsEdgeAndRandomValues) {
  std::mt19937_64 rng(1);
  std::vector<std::uint64_t> values = {0, 1, 127, 128, 16383, 16384,
                                       std::uint64_t{1} << 32,
                                       ~std::uint64_t{0}};
  for (int i = 0; i < 2000; ++i) {
    // Bias toward boundary magnitudes: random bit width, then random value.
    const int bits = static_cast<int>(rng() % 64) + 1;
    values.push_back(rng() & ((~std::uint64_t{0}) >> (64 - bits)));
  }
  detail::Encoder enc;
  for (const std::uint64_t v : values) enc.Uvarint(v);
  detail::Decoder dec(enc.bytes(), "test");
  for (const std::uint64_t v : values) ASSERT_EQ(dec.Uvarint(), v);
  dec.ExpectDone();
}

TEST(VarintProperty, SvarintRoundTripsBothSigns) {
  std::mt19937_64 rng(2);
  std::vector<std::int64_t> values = {0, -1, 1, -64, 63, -65, 64,
                                      std::numeric_limits<std::int64_t>::min(),
                                      std::numeric_limits<std::int64_t>::max()};
  for (int i = 0; i < 2000; ++i) {
    values.push_back(static_cast<std::int64_t>(rng()));
  }
  detail::Encoder enc;
  for (const std::int64_t v : values) enc.Svarint(v);
  detail::Decoder dec(enc.bytes(), "test");
  for (const std::int64_t v : values) ASSERT_EQ(dec.Svarint(), v);
  dec.ExpectDone();
}

TEST(VarintProperty, OverlongAndTruncatedEncodingsThrow) {
  // 11 continuation bytes: past the 10-byte LEB128 maximum for u64.
  const std::vector<std::byte> overlong(11, std::byte{0x80});
  detail::Decoder dec(overlong, "test");
  EXPECT_THROW((void)dec.Uvarint(), Error);
  // A continuation bit with nothing after it.
  const std::vector<std::byte> cut = {std::byte{0x80}};
  detail::Decoder dec2(cut, "test");
  EXPECT_THROW((void)dec2.Uvarint(), Error);
}

// --- column round trips ------------------------------------------------------

/// Random flow table in finalize order (sorted by device, then start) with
/// edge values mixed in — the encoder input contract.
std::vector<Flow> RandomFlows(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Flow> flows(n);
  std::uint32_t device = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Flow& f = flows[i];
    if (rng() % 5 == 0) device += static_cast<std::uint32_t>(rng() % 3);
    f.device = device;
    f.start_offset_s = static_cast<std::uint32_t>(rng());
    f.duration_s = static_cast<float>(rng() % 100000) / 7.0F;
    f.domain = rng() % 7 == 0 ? core::kNoDomain
                              : static_cast<std::uint32_t>(rng() % 50);
    f.server_ip = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
    f.server_port = static_cast<std::uint16_t>(rng());
    f.proto = rng() % 2 == 0 ? 6 : 17;
    f.bytes_up = rng();
    f.bytes_down = rng();
  }
  // Within-device start order, as Finalize guarantees.
  std::stable_sort(flows.begin(), flows.end(), [](const Flow& a, const Flow& b) {
    return a.device != b.device ? a.device < b.device
                                : a.start_offset_s < b.start_offset_s;
  });
  return flows;
}

TEST(ColumnCodec, TimestampColumnRoundTrips) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{257},
                              std::size_t{5000}}) {
    const auto flows = RandomFlows(n, 10 + n);
    const detail::Encoder enc = detail::EncodeTimestampColumn(flows);
    EXPECT_EQ(detail::PeekRawSize(enc.bytes()), n * 4);
    const auto decoded = detail::DecodeTimestampColumn(enc.bytes(), n);
    ASSERT_EQ(decoded.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(decoded[i], flows[i].start_offset_s) << i;
    }
  }
}

TEST(ColumnCodec, DomainColumnRoundTrips) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{257},
                              std::size_t{5000}}) {
    const auto flows = RandomFlows(n, 20 + n);
    const detail::Encoder enc = detail::EncodeDomainColumn(flows);
    const auto decoded = detail::DecodeDomainColumn(enc.bytes(), n);
    ASSERT_EQ(decoded.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(decoded[i], flows[i].domain) << i;
    }
  }
}

TEST(ColumnCodec, RestColumnRoundTrips) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{257},
                              std::size_t{5000}}) {
    const auto flows = RandomFlows(n, 30 + n);
    const detail::Encoder enc = detail::EncodeRestColumn(flows);
    const detail::RestColumns rest = detail::DecodeRestColumn(enc.bytes(), n);
    ASSERT_EQ(rest.device.size(), n);
    for (std::size_t i = 0; i < n; ++i) {
      const Flow& f = flows[i];
      ASSERT_EQ(rest.duration[i], f.duration_s) << i;
      ASSERT_EQ(rest.device[i], f.device) << i;
      ASSERT_EQ(rest.server_ip[i], f.server_ip.value()) << i;
      ASSERT_EQ(rest.server_port[i], f.server_port) << i;
      ASSERT_EQ(rest.proto[i], f.proto) << i;
      ASSERT_EQ(rest.bytes_up[i], f.bytes_up) << i;
      ASSERT_EQ(rest.bytes_down[i], f.bytes_down) << i;
    }
  }
}

// --- decoder fuzz ------------------------------------------------------------

/// Mutates coded payloads at random offsets; every decode must either throw
/// store::Error or return (validation may accept a flip that lands in value
/// bytes — the snapshot layer's CRC rejects those; here we only require
/// memory safety and bounded results).
TEST(ColumnCodecFuzz, MutatedPayloadsNeverCrash) {
  const auto flows = RandomFlows(600, 99);
  const detail::Encoder ts = detail::EncodeTimestampColumn(flows);
  const detail::Encoder dom = detail::EncodeDomainColumn(flows);
  const detail::Encoder rest = detail::EncodeRestColumn(flows);
  std::mt19937_64 rng(7);
  int threw = 0;
  int decoded = 0;
  for (int round = 0; round < 3000; ++round) {
    const detail::Encoder* src =
        round % 3 == 0 ? &ts : (round % 3 == 1 ? &dom : &rest);
    std::vector<std::byte> payload(src->bytes().begin(), src->bytes().end());
    // 1-4 random byte mutations (XOR, so round 0's identity flip is impossible).
    const int flips = 1 + static_cast<int>(rng() % 4);
    for (int f = 0; f < flips; ++f) {
      payload[rng() % payload.size()] ^=
          static_cast<std::byte>(1 + rng() % 255);
    }
    try {
      switch (round % 3) {
        case 0: {
          const auto v = detail::DecodeTimestampColumn(payload, flows.size());
          ASSERT_EQ(v.size(), flows.size());
          break;
        }
        case 1: {
          const auto v = detail::DecodeDomainColumn(payload, flows.size());
          ASSERT_EQ(v.size(), flows.size());
          break;
        }
        default: {
          const auto v = detail::DecodeRestColumn(payload, flows.size());
          ASSERT_EQ(v.device.size(), flows.size());
          break;
        }
      }
      ++decoded;
    } catch (const Error&) {
      ++threw;
    }
  }
  // Both outcomes must occur: most mutations break structure (throw), some
  // only perturb values (decode fine; CRC would catch them upstream).
  EXPECT_GT(threw, 0);
  EXPECT_GT(decoded, 0);
}

TEST(ColumnCodecFuzz, TruncatedPayloadsThrow) {
  const auto flows = RandomFlows(300, 5);
  const detail::Encoder ts = detail::EncodeTimestampColumn(flows);
  const detail::Encoder dom = detail::EncodeDomainColumn(flows);
  const detail::Encoder rest = detail::EncodeRestColumn(flows);
  for (const detail::Encoder* enc : {&ts, &dom, &rest}) {
    const auto payload = enc->bytes();
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{7}, payload.size() / 2,
          payload.size() - 1}) {
      const auto cut = payload.first(keep);
      if (enc == &ts) {
        EXPECT_THROW((void)detail::DecodeTimestampColumn(cut, flows.size()),
                     Error);
      } else if (enc == &dom) {
        EXPECT_THROW((void)detail::DecodeDomainColumn(cut, flows.size()),
                     Error);
      } else {
        EXPECT_THROW((void)detail::DecodeRestColumn(cut, flows.size()), Error);
      }
    }
  }
}

// --- snapshot-level: format matrix and compressed byte sweep -----------------

class CompressedSnapshotTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process suite directory: each TEST is its own ctest process.
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("lockdown_codec_test_" + std::to_string(::getpid())));
    std::filesystem::remove_all(*dir_);
    std::filesystem::create_directories(*dir_);
    result_ = new core::CollectionResult(core::MeasurementPipeline::Collect(
        core::StudyConfig::Small(4, 1)));
    SaveSnapshot(*dir_ / "v2.lds", *result_, {}, {.format_version = 2});
    SaveSnapshot(*dir_ / "v3.lds", *result_, {}, {.format_version = 3});
    SaveSnapshot(*dir_ / "v3c.lds", *result_, {},
                 {.format_version = 3, .compress = true});
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    delete result_;
    dir_ = nullptr;
    result_ = nullptr;
  }

  static void ExpectSameDataset(const core::Dataset& a, const core::Dataset& b) {
    ASSERT_EQ(a.num_flows(), b.num_flows());
    ASSERT_EQ(a.num_devices(), b.num_devices());
    ASSERT_EQ(a.num_domains(), b.num_domains());
    const auto fa = a.flows();
    const auto fb = b.flows();
    ASSERT_EQ(0, std::memcmp(fa.data(), fb.data(), fa.size() * sizeof(Flow)));
    ASSERT_TRUE(b.has_day_runs());
    ASSERT_EQ(a.day_runs().day_offsets, b.day_runs().day_offsets);
    ASSERT_EQ(a.day_runs().run_begin, b.day_runs().run_begin);
    ASSERT_EQ(a.day_runs().run_len, b.day_runs().run_len);
  }

  static std::filesystem::path* dir_;
  static core::CollectionResult* result_;
};

std::filesystem::path* CompressedSnapshotTest::dir_ = nullptr;
core::CollectionResult* CompressedSnapshotTest::result_ = nullptr;

TEST_F(CompressedSnapshotTest, AllFormatsReloadTheIdenticalDataset) {
  for (const char* file : {"v2.lds", "v3.lds", "v3c.lds"}) {
    const LoadedSnapshot snap = LoadSnapshot(*dir_ / file);
    EXPECT_TRUE(snap.warnings.empty()) << file;
    ExpectSameDataset(result_->dataset, snap.collection.dataset);
  }
}

TEST_F(CompressedSnapshotTest, CompressedFileIsSmallerAndDescribesCodecs) {
  const SnapshotInfo raw = InspectSnapshot(*dir_ / "v3.lds");
  const SnapshotInfo comp = InspectSnapshot(*dir_ / "v3c.lds");
  EXPECT_LT(comp.file_size, raw.file_size);
  int coded = 0;
  for (const SectionInfo& s : comp.sections) {
    if (s.codec != 0) {
      ++coded;
      EXPECT_LT(s.size, s.raw_size) << s.name;
    }
  }
  EXPECT_EQ(coded, 4);  // day-index + three flow columns
}

/// The salvage_test byte-sweep discipline applied to the compressed file:
/// flip every structure byte and a stride through the coded payloads. Every
/// load must succeed with the identical flow table, salvage with a warning,
/// or throw — a flip that silently changes decoded flows would be a CRC hole.
TEST_F(CompressedSnapshotTest, CompressedByteSweepNeverMisreads) {
  const auto path = *dir_ / "v3c.lds";
  std::ifstream in(path, std::ios::binary);
  const std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
  const std::uint64_t structure_end =
      kHeaderSize + InspectSnapshot(path).sections.size() * kSectionDescSize;

  std::vector<std::uint64_t> offsets;
  for (std::uint64_t i = 0; i < structure_end; ++i) offsets.push_back(i);
  for (std::uint64_t i = structure_end; i < bytes.size(); i += 97) {
    offsets.push_back(i);
  }
  offsets.push_back(bytes.size() - 1);

  const auto flows = result_->dataset.flows();
  const auto sweep_path = *dir_ / "sweep.lds";
  int intact = 0;
  int salvaged = 0;
  int rejected = 0;
  for (const std::uint64_t offset : offsets) {
    for (const unsigned mask : {0x01u, 0xFFu}) {
      auto mutated = bytes;
      mutated[offset] = static_cast<char>(
          static_cast<unsigned char>(mutated[offset]) ^ mask);
      std::ofstream out(sweep_path, std::ios::binary | std::ios::trunc);
      out.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
      out.close();
      try {
        const LoadedSnapshot snap = LoadSnapshot(sweep_path, {.salvage = true});
        // Silent misread check: a load that reports clean must reproduce the
        // original flow table bit-for-bit.
        const auto got = snap.collection.dataset.flows();
        ASSERT_EQ(got.size(), flows.size()) << "offset " << offset;
        ASSERT_EQ(0, std::memcmp(got.data(), flows.data(),
                                 flows.size() * sizeof(Flow)))
            << "silent flow misread at offset " << offset;
        snap.warnings.empty() ? ++intact : ++salvaged;
      } catch (const Error&) {
        ++rejected;
      }
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(intact + salvaged + rejected, 0);
}

TEST_F(CompressedSnapshotTest, CorruptDayIndexSalvagesByRebuild) {
  const auto path = *dir_ / "v3.lds";
  SectionInfo day_index;
  for (const SectionInfo& s : InspectSnapshot(path).sections) {
    if (s.name == "day-index") day_index = s;
  }
  ASSERT_GT(day_index.size, 0u);
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  bytes[day_index.offset + day_index.size / 2] ^= 0x40;
  const auto bad = *dir_ / "bad_day_index.lds";
  std::ofstream out(bad, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();

  EXPECT_THROW((void)LoadSnapshot(bad), Error);
  const LoadedSnapshot snap = LoadSnapshot(bad, {.salvage = true});
  ASSERT_EQ(snap.warnings.size(), 1u);
  EXPECT_NE(snap.warnings[0].find("day index"), std::string::npos)
      << snap.warnings[0];
  // The rebuilt index must equal the one Finalize computed.
  ExpectSameDataset(result_->dataset, snap.collection.dataset);
}

}  // namespace
}  // namespace lockdown::store
