// Snapshot salvage and corruption-robustness tests.
//
// Two layers: targeted section corruption (the advisory stats section
// degrades to zero-fill under LoadOptions::salvage, mandatory sections name
// their section and file offset), and a byte-sweep fuzz pass that bit-flips
// every byte of the header and section table (plus a stride through the
// payload) and asserts every load either succeeds, salvages with a warning,
// or throws store::Error — never undefined behavior. The sweep is the ASan
// tier's main course.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "store/format.h"
#include "store/snapshot.h"

namespace lockdown::store {
namespace {

class SalvageTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // Per-process suite directory: gtest_discover_tests runs each TEST as
    // its own process, and shared dirs race remove_all under parallel ctest.
    dir_ = new std::filesystem::path(
        std::filesystem::temp_directory_path() /
        ("lockdown_salvage_test_" + std::to_string(::getpid())));
    std::filesystem::remove_all(*dir_);
    std::filesystem::create_directories(*dir_);
    // Smallest campus the config allows: the sweep reloads this file often.
    const auto result =
        core::MeasurementPipeline::Collect(core::StudyConfig::Small(4, 1));
    SaveSnapshot(*dir_ / "clean.lds", result, {.num_students = 4, .seed = 1});
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
    dir_ = nullptr;
  }

  static std::filesystem::path CleanPath() { return *dir_ / "clean.lds"; }

  static std::vector<char> ReadAll(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>(std::istreambuf_iterator<char>(in),
                             std::istreambuf_iterator<char>());
  }

  static void WriteAll(const std::filesystem::path& path,
                       const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  /// Copies the clean snapshot with one byte XORed by `mask`.
  static std::filesystem::path Corrupt(std::uint64_t offset, unsigned mask,
                                       const char* name) {
    auto bytes = ReadAll(CleanPath());
    bytes.at(offset) = static_cast<char>(
        static_cast<unsigned char>(bytes.at(offset)) ^ mask);
    const auto path = *dir_ / name;
    WriteAll(path, bytes);
    return path;
  }

  static SectionInfo FindSection(const std::string& name) {
    for (const SectionInfo& s : InspectSnapshot(CleanPath()).sections) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "no section named " << name;
    return {};
  }

  static std::filesystem::path* dir_;
};

std::filesystem::path* SalvageTest::dir_ = nullptr;

TEST_F(SalvageTest, CleanLoadHasNoWarnings) {
  const LoadedSnapshot snap = LoadSnapshot(CleanPath(), {.salvage = true});
  EXPECT_TRUE(snap.warnings.empty());
  EXPECT_GT(snap.collection.dataset.num_flows(), 0u);
}

TEST_F(SalvageTest, CorruptStatsZeroFillsUnderSalvage) {
  const SectionInfo stats = FindSection("stats");
  ASSERT_GT(stats.size, 0u);
  const auto path = Corrupt(stats.offset, 0xFF, "bad_stats.lds");

  // Without salvage: a hard checksum error naming the section.
  try {
    (void)LoadSnapshot(path);
    FAIL() << "expected store::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch in stats"),
              std::string::npos)
        << e.what();
  }

  // With salvage: the load completes, stats are zeroed, and a warning says so.
  const LoadedSnapshot clean = LoadSnapshot(CleanPath());
  const LoadedSnapshot snap = LoadSnapshot(path, {.salvage = true});
  ASSERT_EQ(snap.warnings.size(), 1u);
  EXPECT_NE(snap.warnings[0].find("stats"), std::string::npos);
  EXPECT_EQ(snap.collection.stats.raw_flows, 0u);
  EXPECT_EQ(snap.collection.stats.devices_retained, 0u);
  // Everything else is intact.
  EXPECT_EQ(snap.collection.dataset.num_flows(),
            clean.collection.dataset.num_flows());
  EXPECT_EQ(snap.collection.dataset.num_devices(),
            clean.collection.dataset.num_devices());
}

TEST_F(SalvageTest, CorruptMandatorySectionThrowsEvenUnderSalvage) {
  const SectionInfo flows = FindSection("flows");
  ASSERT_GT(flows.size, 0u);
  const auto path = Corrupt(flows.offset + flows.size / 2, 0x10, "bad_flows.lds");
  try {
    (void)LoadSnapshot(path, {.salvage = true});
    FAIL() << "expected store::Error";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("flows"), std::string::npos) << what;
    EXPECT_NE(what.find("offset " + std::to_string(flows.offset)),
              std::string::npos)
        << what;
  }
}

TEST_F(SalvageTest, TruncatedFileThrows) {
  auto bytes = ReadAll(CleanPath());
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, bytes.size() / 2, bytes.size() - 1}) {
    std::vector<char> cut(bytes.begin(),
                          bytes.begin() + static_cast<std::ptrdiff_t>(keep));
    const auto path = *dir_ / "truncated.lds";
    WriteAll(path, cut);
    EXPECT_THROW((void)LoadSnapshot(path, {.salvage = true}), Error)
        << "kept " << keep << " bytes";
  }
}

// The byte-sweep fuzz: every header and section-table byte bit-flipped, plus
// a stride across payloads and the trailer. Each mutated file must load,
// salvage (warning recorded), or throw store::Error. Anything else — crash,
// hang, ASan report — fails the suite.
TEST_F(SalvageTest, ByteSweepNeverCrashes) {
  const auto bytes = ReadAll(CleanPath());
  const std::uint64_t structure_end =
      kHeaderSize +
      InspectSnapshot(CleanPath()).sections.size() * kSectionDescSize;
  ASSERT_GT(bytes.size(), structure_end);

  std::vector<std::uint64_t> offsets;
  // Header + section table, exhaustively.
  for (std::uint64_t i = 0; i < structure_end; ++i) {
    offsets.push_back(i);
  }
  // Payloads and trailer, strided (the per-section CRCs make every payload
  // byte equivalent to its neighbors; the structure bytes above are the
  // interesting ones).
  for (std::uint64_t i = structure_end; i < bytes.size(); i += 211) {
    offsets.push_back(i);
  }
  offsets.push_back(bytes.size() - 1);

  const auto path = *dir_ / "sweep.lds";
  int loaded = 0;
  int salvaged = 0;
  int rejected = 0;
  for (const std::uint64_t offset : offsets) {
    for (const unsigned mask : {0x01u, 0x80u, 0xFFu}) {
      auto mutated = bytes;
      mutated[offset] = static_cast<char>(
          static_cast<unsigned char>(mutated[offset]) ^ mask);
      WriteAll(path, mutated);
      try {
        const LoadedSnapshot snap = LoadSnapshot(path, {.salvage = true});
        // A load that "succeeds" must have produced a coherent dataset.
        EXPECT_EQ(snap.collection.dataset.num_flows(), snap.info.num_flows);
        snap.warnings.empty() ? ++loaded : ++salvaged;
      } catch (const Error&) {
        ++rejected;  // precise rejection is a pass
      }
    }
  }
  // The sweep must have exercised both outcomes: most flips are caught, and
  // some (e.g. inside the stats payload) salvage or land in slack space.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(loaded + salvaged + rejected, 0);
}

}  // namespace
}  // namespace lockdown::store
