// Store-level fault injection: the ENOSPC byte-budget sweep (fail the Nth
// write for a sweep of N — no torn snapshot may ever be loadable), fsync and
// rename failures at commit time, EINTR/short-write storms during a save
// (resulting file must be bit-identical to a clean save), and the orphan-tmp
// sweeper against hand-planted leftovers.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>
#include <vector>

#include "core/study.h"
#include "io/io.h"
#include "store/snapshot.h"

namespace lockdown::store {
namespace {

namespace fs = std::filesystem;

struct FaultCampus {
  fs::path dir;
  core::CollectionResult fresh;

  FaultCampus() {
    dir = fs::temp_directory_path() /
          ("lds_fault_test." + std::to_string(::getpid()));
    fs::create_directories(dir);
    fresh = core::MeasurementPipeline::Collect(core::StudyConfig::Small(40, 7));
  }
  ~FaultCampus() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

const FaultCampus& Campus() {
  static const FaultCampus campus;
  return campus;
}

class StoreIoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    io::ClearFaultPlan();
    io::SetRetryPolicy(io::RetryPolicy{});
  }
  void TearDown() override {
    io::ClearFaultPlan();
    io::SetRetryPolicy(io::RetryPolicy{});
  }
};

void InstallPlan(const std::string& spec) {
  std::string error;
  const auto plan = io::ParseFaultPlan(spec, &error);
  ASSERT_TRUE(plan.has_value()) << spec << ": " << error;
  io::SetFaultPlan(*plan);
}

std::string ReadBytes(const fs::path& path) {
  io::ClearFaultPlan();  // read the disk, not the injector
  return io::ReadFileToString(path);
}

std::vector<fs::path> TmpLeftovers(const fs::path& dir) {
  std::vector<fs::path> found;
  for (const fs::path& entry : fs::directory_iterator(dir)) {
    if (entry.filename().string().find(".tmp.") != std::string::npos) {
      found.push_back(entry);
    }
  }
  return found;
}

// --- ENOSPC byte-budget sweep ------------------------------------------------

TEST_F(StoreIoFaultTest, EnospcSweepNeverLeavesATornSnapshot) {
  const fs::path target = Campus().dir / "sweep.lds";
  SaveSnapshot(target, Campus().fresh, SnapshotMeta{40, 7});
  const std::string valid_bytes = ReadBytes(target);

  int failures = 0;
  int successes = 0;
  for (std::uint64_t n = 1; n <= 24; ++n) {
    InstallPlan(std::to_string(n) + ":enospc@write#" + std::to_string(n));
    try {
      SaveSnapshot(target, Campus().fresh, SnapshotMeta{40, 7});
      ++successes;
    } catch (const io::IoError& e) {
      ++failures;
      EXPECT_EQ(e.error_code(), ENOSPC) << "N=" << n;
    }
    io::ClearFaultPlan();
    // Torn-snapshot check: whatever happened, the target is the one valid
    // snapshot (a clean save of this dataset is byte-deterministic), it
    // verifies, and the failed attempt's tmp file was cleaned up.
    EXPECT_EQ(ReadBytes(target), valid_bytes) << "N=" << n;
    VerifySnapshot(target);
    EXPECT_TRUE(TmpLeftovers(Campus().dir).empty()) << "N=" << n;
  }
  // The sweep must actually cover both regimes: early-write failures and
  // N past the save's total write count (save succeeds).
  EXPECT_GT(failures, 0);
  EXPECT_GT(successes, 0);
}

TEST_F(StoreIoFaultTest, CommitFsyncAndRenameFailuresKeepTheOldSnapshot) {
  const fs::path target = Campus().dir / "commit.lds";
  SaveSnapshot(target, Campus().fresh, SnapshotMeta{40, 7});
  const std::string valid_bytes = ReadBytes(target);

  for (const char* spec : {"1:eio@fsync#1", "1:eio@rename#1"}) {
    InstallPlan(spec);
    EXPECT_THROW(SaveSnapshot(target, Campus().fresh, SnapshotMeta{40, 7}),
                 io::IoError)
        << spec;
    io::ClearFaultPlan();
    EXPECT_EQ(ReadBytes(target), valid_bytes) << spec;
    VerifySnapshot(target);
    EXPECT_TRUE(TmpLeftovers(Campus().dir).empty()) << spec;
  }
}

// --- Transient storms --------------------------------------------------------

TEST_F(StoreIoFaultTest, EintrAndShortWriteStormSavesBitIdentically) {
  const fs::path clean = Campus().dir / "clean.lds";
  const fs::path stormy = Campus().dir / "stormy.lds";
  SaveSnapshot(clean, Campus().fresh, SnapshotMeta{40, 7});

  io::SetRetryPolicy(io::RetryPolicy{.max_attempts = 16, .initial_backoff_us = 1});
  InstallPlan("13:eintr@write%0.3,short@write%0.3");
  SaveSnapshot(stormy, Campus().fresh, SnapshotMeta{40, 7});
  io::ClearFaultPlan();

  EXPECT_EQ(ReadBytes(stormy), ReadBytes(clean));
  VerifySnapshot(stormy);
}

// --- Orphan-tmp sweeping -----------------------------------------------------

/// A pid that existed a moment ago and is now certainly dead.
pid_t DeadPid() {
  const pid_t pid = ::fork();
  if (pid == 0) ::_exit(0);
  int status = 0;
  ::waitpid(pid, &status, 0);
  return pid;
}

void Plant(const fs::path& path) {
  io::File f = io::File::Create(path);
  f.WriteAll("torn snapshot fragment");
  f.Close();
}

TEST_F(StoreIoFaultTest, SweepRemovesDeadWritersTmpAndKeepsLiveOnes) {
  const fs::path target = Campus().dir / "orphans.lds";
  const fs::path dead_tmp =
      target.string() + ".tmp." + std::to_string(DeadPid());
  const fs::path garbage_tmp = target.string() + ".tmp.garbage";
  const fs::path live_tmp =
      target.string() + ".tmp." + std::to_string(::getpid());
  const fs::path unrelated = Campus().dir / "other.lds.tmp.123";
  Plant(dead_tmp);
  Plant(garbage_tmp);
  Plant(live_tmp);
  Plant(unrelated);

  const std::vector<fs::path> found = FindOrphanTmpFiles(target);
  EXPECT_EQ(found, (std::vector<fs::path>{dead_tmp, garbage_tmp}));

  const std::vector<fs::path> swept = SweepOrphanTmpFiles(target);
  EXPECT_EQ(swept, found);
  EXPECT_FALSE(fs::exists(dead_tmp));
  EXPECT_FALSE(fs::exists(garbage_tmp));
  EXPECT_TRUE(fs::exists(live_tmp));   // a live writer owns it
  EXPECT_TRUE(fs::exists(unrelated));  // different target's namespace

  fs::remove(live_tmp);
  fs::remove(unrelated);
}

TEST_F(StoreIoFaultTest, SaveSweepsAPredecessorsOrphans) {
  const fs::path target = Campus().dir / "recover.lds";
  const fs::path orphan =
      target.string() + ".tmp." + std::to_string(DeadPid());
  Plant(orphan);

  SaveSnapshot(target, Campus().fresh, SnapshotMeta{40, 7});
  EXPECT_FALSE(fs::exists(orphan));  // Writer's constructor swept it
  VerifySnapshot(target);
  EXPECT_TRUE(TmpLeftovers(Campus().dir).empty());
}

TEST_F(StoreIoFaultTest, MissingDirectoryMeansNoOrphans) {
  EXPECT_TRUE(
      FindOrphanTmpFiles(Campus().dir / "no-such-dir" / "x.lds").empty());
  EXPECT_TRUE(
      SweepOrphanTmpFiles(Campus().dir / "no-such-dir" / "x.lds").empty());
}

}  // namespace
}  // namespace lockdown::store
