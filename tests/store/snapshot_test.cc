// LDS snapshot store: round-trip property tests (Collect -> Save -> Load
// must reproduce the dataset and every downstream analysis exactly) and
// corruption tests (truncation, bit flips, bad magic/version all rejected
// with precise errors, never undefined behavior).
#include "store/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <unistd.h>

#include "core/study.h"
#include "store/format.h"

namespace lockdown::store {
namespace {

namespace fs = std::filesystem;

// --- Shared fixture: one small collected campus, snapshotted once -----------

struct SharedCampus {
  fs::path dir;
  fs::path file;
  core::CollectionResult fresh;

  SharedCampus() {
    dir = fs::temp_directory_path() /
          ("lds_test." + std::to_string(::getpid()));
    fs::create_directories(dir);
    file = dir / "campus.lds";
    fresh = core::MeasurementPipeline::Collect(core::StudyConfig::Small(60, 4));
    SaveSnapshot(file, fresh, SnapshotMeta{60, 4});
  }
  ~SharedCampus() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
};

const SharedCampus& Campus() {
  static const SharedCampus campus;
  return campus;
}

/// A scratch copy of the shared snapshot this test may corrupt freely.
fs::path ScratchCopy(const std::string& name) {
  const fs::path out = Campus().dir / name;
  fs::copy_file(Campus().file, out, fs::copy_options::overwrite_existing);
  return out;
}

void PatchByte(const fs::path& path, std::uint64_t offset, std::uint8_t value) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(reinterpret_cast<const char*>(&value), 1);
}

void ExpectLoadError(const fs::path& path, const std::string& message_part) {
  try {
    (void)LoadSnapshot(path);
    FAIL() << "expected store::Error containing '" << message_part << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(message_part), std::string::npos)
        << "actual message: " << e.what();
  }
}

void ExpectDatasetsEqual(const core::Dataset& a, const core::Dataset& b) {
  ASSERT_EQ(a.num_flows(), b.num_flows());
  ASSERT_EQ(a.num_devices(), b.num_devices());
  ASSERT_EQ(a.num_domains(), b.num_domains());

  for (std::size_t i = 0; i < a.num_flows(); ++i) {
    const core::Flow& fa = a.flows()[i];
    const core::Flow& fb = b.flows()[i];
    ASSERT_EQ(fa.start_offset_s, fb.start_offset_s) << "flow " << i;
    ASSERT_EQ(fa.duration_s, fb.duration_s) << "flow " << i;
    ASSERT_EQ(fa.device, fb.device) << "flow " << i;
    ASSERT_EQ(fa.domain, fb.domain) << "flow " << i;
    ASSERT_EQ(fa.server_ip.value(), fb.server_ip.value()) << "flow " << i;
    ASSERT_EQ(fa.server_port, fb.server_port) << "flow " << i;
    ASSERT_EQ(fa.proto, fb.proto) << "flow " << i;
    ASSERT_EQ(fa.bytes_up, fb.bytes_up) << "flow " << i;
    ASSERT_EQ(fa.bytes_down, fb.bytes_down) << "flow " << i;
  }
  for (core::DomainId d = 0; d < a.num_domains(); ++d) {
    ASSERT_EQ(a.DomainName(d), b.DomainName(d)) << "domain " << d;
  }
  for (core::DeviceIndex i = 0; i < a.num_devices(); ++i) {
    const core::DeviceEntry& da = a.device(i);
    const core::DeviceEntry& db = b.device(i);
    ASSERT_EQ(da.id.value, db.id.value) << "device " << i;
    ASSERT_EQ(da.observations.oui, db.observations.oui);
    ASSERT_EQ(da.observations.locally_administered,
              db.observations.locally_administered);
    ASSERT_EQ(da.observations.total_bytes, db.observations.total_bytes);
    ASSERT_EQ(da.observations.flow_count, db.observations.flow_count);
    ASSERT_EQ(da.observations.user_agents, db.observations.user_agents);
    ASSERT_EQ(da.observations.bytes_by_domain, db.observations.bytes_by_domain);
    ASSERT_EQ(a.FlowsOfDevice(i).size(), b.FlowsOfDevice(i).size());
  }
}

void ExpectStatsEqual(const core::CollectionStats& a,
                      const core::CollectionStats& b) {
  EXPECT_EQ(a.raw_flows, b.raw_flows);
  EXPECT_EQ(a.tap_excluded, b.tap_excluded);
  EXPECT_EQ(a.unattributed, b.unattributed);
  EXPECT_EQ(a.visitor_flows, b.visitor_flows);
  EXPECT_EQ(a.devices_observed, b.devices_observed);
  EXPECT_EQ(a.devices_retained, b.devices_retained);
  EXPECT_EQ(a.ua_sightings, b.ua_sightings);
}

// --- Round-trip properties ----------------------------------------------------

TEST(SnapshotRoundTrip, PreservesDatasetAndStats) {
  const LoadedSnapshot snap = LoadSnapshot(Campus().file);
  ExpectDatasetsEqual(Campus().fresh.dataset, snap.collection.dataset);
  ExpectStatsEqual(Campus().fresh.stats, snap.collection.stats);
  EXPECT_EQ(snap.info.meta.num_students, 60u);
  EXPECT_EQ(snap.info.meta.seed, 4u);
  EXPECT_EQ(snap.info.flow_stride, kFlowStride);
}

TEST(SnapshotRoundTrip, ZeroCopyAndPortablePathsAgree) {
  const LoadedSnapshot mmaped =
      LoadSnapshot(Campus().file, {LoadMode::kMmap, true});
  const LoadedSnapshot copied =
      LoadSnapshot(Campus().file, {LoadMode::kCopy, true});
  EXPECT_TRUE(mmaped.zero_copy);
  EXPECT_TRUE(mmaped.collection.dataset.flows_borrowed());
  EXPECT_FALSE(copied.zero_copy);
  EXPECT_FALSE(copied.collection.dataset.flows_borrowed());
  ExpectDatasetsEqual(mmaped.collection.dataset, copied.collection.dataset);
}

TEST(SnapshotRoundTrip, StudyOutputsIdentical) {
  // The paper-facing property: every figure computed from the loaded
  // snapshot must equal the figure computed from the fresh collection.
  const LoadedSnapshot snap = LoadSnapshot(Campus().file);
  const auto& catalog = world::ServiceCatalog::Default();
  const core::LockdownStudy fresh(Campus().fresh.dataset, catalog);
  const core::LockdownStudy loaded(snap.collection.dataset, catalog);

  const auto h1 = fresh.HeadlineStats();
  const auto h2 = loaded.HeadlineStats();
  EXPECT_EQ(h1.peak_active_devices, h2.peak_active_devices);
  EXPECT_EQ(h1.trough_active_devices, h2.trough_active_devices);
  EXPECT_EQ(h1.post_shutdown_users, h2.post_shutdown_users);
  EXPECT_EQ(h1.traffic_increase, h2.traffic_increase);
  EXPECT_EQ(h1.distinct_sites_increase, h2.distinct_sites_increase);
  EXPECT_EQ(h1.international_devices, h2.international_devices);
  EXPECT_EQ(h1.international_share, h2.international_share);

  const auto rows1 = fresh.ActiveDevicesPerDay();
  const auto rows2 = loaded.ActiveDevicesPerDay();
  ASSERT_EQ(rows1.size(), rows2.size());
  for (std::size_t i = 0; i < rows1.size(); ++i) {
    EXPECT_EQ(rows1[i].by_class, rows2[i].by_class) << "day " << i;
    EXPECT_EQ(rows1[i].total, rows2[i].total) << "day " << i;
  }

  const auto zoom1 = fresh.ZoomDailyBytes();
  const auto zoom2 = loaded.ZoomDailyBytes();
  ASSERT_EQ(zoom1.num_days(), zoom2.num_days());
  for (int i = 0; i < zoom1.num_days(); ++i) {
    EXPECT_EQ(zoom1.at(i), zoom2.at(i)) << "day " << i;
  }

  const auto sw1 = fresh.CountSwitches();
  const auto sw2 = loaded.CountSwitches();
  EXPECT_EQ(sw1.active_february, sw2.active_february);
  EXPECT_EQ(sw1.active_post_shutdown, sw2.active_post_shutdown);
  EXPECT_EQ(sw1.new_in_april_may, sw2.new_in_april_may);
}

TEST(SnapshotRoundTrip, SecondSaveOfLoadedSnapshotIsValid) {
  const LoadedSnapshot snap = LoadSnapshot(Campus().file);
  const fs::path resaved = Campus().dir / "resaved.lds";
  SaveSnapshot(resaved, snap.collection, snap.info.meta);
  VerifySnapshot(resaved);
  const LoadedSnapshot again = LoadSnapshot(resaved);
  ExpectDatasetsEqual(snap.collection.dataset, again.collection.dataset);
  fs::remove(resaved);
}

TEST(SnapshotRoundTrip, WriterIsDeterministic) {
  const fs::path a = Campus().dir / "det_a.lds";
  const fs::path b = Campus().dir / "det_b.lds";
  SaveSnapshot(a, Campus().fresh, SnapshotMeta{60, 4});
  SaveSnapshot(b, Campus().fresh, SnapshotMeta{60, 4});
  std::ifstream fa(a, std::ios::binary), fb(b, std::ios::binary);
  const std::string ca((std::istreambuf_iterator<char>(fa)), {});
  const std::string cb((std::istreambuf_iterator<char>(fb)), {});
  EXPECT_EQ(ca, cb);
  fs::remove(a);
  fs::remove(b);
}

TEST(SnapshotRoundTrip, OverwritesExistingFileAtomically) {
  const fs::path target = Campus().dir / "overwrite.lds";
  {
    std::ofstream junk(target, std::ios::binary);
    junk << "not a snapshot at all";
  }
  SaveSnapshot(target, Campus().fresh, {});
  VerifySnapshot(target);
  // No temporary files may remain next to the target.
  for (const auto& entry : fs::directory_iterator(Campus().dir)) {
    EXPECT_EQ(entry.path().string().find(".tmp."), std::string::npos)
        << "stray temp file: " << entry.path();
  }
  fs::remove(target);
}

TEST(SnapshotWriter, RejectsNonFinalizedDataset) {
  core::CollectionResult unfinalized;
  EXPECT_THROW(SaveSnapshot(Campus().dir / "nope.lds", unfinalized, {}), Error);
}

// --- Corruption and truncation ------------------------------------------------

TEST(SnapshotCorruption, BadMagicRejected) {
  const fs::path p = Campus().dir / "magic.lds";
  {
    std::ofstream f(p, std::ios::binary);
    f << std::string(4096, 'x');
  }
  ExpectLoadError(p, "bad magic");
  fs::remove(p);
}

TEST(SnapshotCorruption, EmptyAndTinyFilesRejected) {
  const fs::path p = Campus().dir / "tiny.lds";
  { std::ofstream f(p, std::ios::binary); }
  ExpectLoadError(p, "empty file");
  {
    std::ofstream f(p, std::ios::binary);
    f << "LDSNAP01";
  }
  ExpectLoadError(p, "too small");
  fs::remove(p);
}

TEST(SnapshotCorruption, UnsupportedVersionRejected) {
  const fs::path p = ScratchCopy("version.lds");
  // Version lives at offset 12 (magic 8 + endian marker 4).
  PatchByte(p, 12, 99);
  ExpectLoadError(p, "unsupported format version 99");
  fs::remove(p);
}

TEST(SnapshotCorruption, TruncationRejectedAtEveryBoundary) {
  const std::uintmax_t full = fs::file_size(Campus().file);
  for (const std::uintmax_t size :
       {full - 1, full / 2, full / 4, std::uintmax_t{300}}) {
    const fs::path p = ScratchCopy("trunc.lds");
    fs::resize_file(p, size);
    EXPECT_THROW((void)LoadSnapshot(p), Error) << "truncated to " << size;
    fs::remove(p);
  }
}

TEST(SnapshotCorruption, FlippedByteInEverySectionRejected) {
  const SnapshotInfo info = InspectSnapshot(Campus().file);
  ASSERT_EQ(info.sections.size(), 7u);  // six classic sections + day-index
  for (const SectionInfo& section : info.sections) {
    if (section.size == 0) continue;
    const fs::path p = ScratchCopy("flip_" + section.name + ".lds");
    const std::uint64_t target = section.offset + section.size / 2;
    std::ifstream in(p, std::ios::binary);
    in.seekg(static_cast<std::streamoff>(target));
    char original = 0;
    in.read(&original, 1);
    in.close();
    PatchByte(p, target, static_cast<std::uint8_t>(original) ^ 0x20);
    if (section.name == "meta") {
      // A flip inside meta may hit a structurally validated field (e.g. the
      // flow stride) and be rejected before checksumming — either way it
      // must surface as a store::Error, never UB.
      EXPECT_THROW((void)LoadSnapshot(p), Error);
    } else {
      ExpectLoadError(p, "checksum mismatch in " + section.name);
    }
    fs::remove(p);
  }
}

TEST(SnapshotCorruption, HeaderTableTamperRejected) {
  // Flip a byte inside the section table (after the header's own fields):
  // the trailer CRC over header+table must catch it.
  const fs::path p = ScratchCopy("table.lds");
  PatchByte(p, kHeaderSize + 20, 0xAB);
  ExpectLoadError(p, "checksum");
  fs::remove(p);
}

TEST(SnapshotCorruption, VerifySnapshotAcceptsCleanFile) {
  EXPECT_NO_THROW(VerifySnapshot(Campus().file));
}

TEST(SnapshotInspect, ReportsSectionsAndCounts) {
  const SnapshotInfo info = InspectSnapshot(Campus().file);
  EXPECT_EQ(info.version, kFormatVersion);
  EXPECT_EQ(info.num_flows, Campus().fresh.dataset.num_flows());
  EXPECT_EQ(info.num_devices, Campus().fresh.dataset.num_devices());
  EXPECT_EQ(info.num_domains, Campus().fresh.dataset.num_domains());
  EXPECT_EQ(info.file_size, fs::file_size(Campus().file));
  for (const SectionInfo& s : info.sections) {
    EXPECT_EQ(s.offset % kSectionAlign, 0u) << s.name;
  }
}

}  // namespace
}  // namespace lockdown::store
