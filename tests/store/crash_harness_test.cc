// The kill-at-every-crash-point harness (DESIGN.md §12).
//
// For every crash point registered in src/io/crash_points.h, across several
// seeds, this test fork/execs the real lockdown_cli `snapshot save` with
// --io-crash-at so the child dies (_exit(125)) at precisely that operation,
// then proves the atomic-rename contract from the parent:
//
//   * the target file is bit-identical to either the previous valid
//     snapshot (crash before the rename) or the new one (crash after) —
//     never a torn in-between;
//   * store::VerifySnapshot passes on whatever the target holds;
//   * a crash before the rename leaves exactly one orphaned *.tmp file,
//     which FindOrphanTmpFiles attributes to the dead child;
//   * the next save sweeps the orphan, succeeds, and reproduces the new
//     snapshot bit-identically.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "io/crash_points.h"
#include "io/io.h"
#include "store/snapshot.h"

namespace lockdown::store {
namespace {

namespace fs = std::filesystem;

constexpr int kStudents = 36;

struct RunResult {
  int exit_code = -1;
  std::string out;
};

/// Runs the CLI via the shell, merging stderr into the captured output.
RunResult RunCli(const std::string& args) {
  RunResult r;
  FILE* pipe = ::popen((std::string(LOCKDOWN_CLI_BIN) + " " + args + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = ::fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.out.append(buf.data(), n);
  }
  const int status = ::pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

std::string SaveArgs(const fs::path& target, std::uint64_t seed) {
  return "snapshot save --out " + target.string() +
         " --students " + std::to_string(kStudents) +
         " --seed " + std::to_string(seed);
}

std::string ReadBytes(const fs::path& path) {
  return io::ReadFileToString(path);
}

std::vector<fs::path> TmpLeftovers(const fs::path& dir) {
  std::vector<fs::path> found;
  for (const fs::path& entry : fs::directory_iterator(dir)) {
    if (entry.filename().string().find(".tmp.") != std::string::npos) {
      found.push_back(entry);
    }
  }
  return found;
}

class CrashHarness : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("lds_crash_harness." + std::to_string(::getpid()));
    fs::create_directories(dir_);
    target_ = dir_ / "campus.lds";
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  fs::path dir_;
  fs::path target_;
};

TEST_F(CrashHarness, EveryCrashPointLeavesOldValidOrNewValidNeverTorn) {
  for (const std::uint64_t seed : {11u, 12u, 13u}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));

    // The previous valid snapshot (seed) and, via a reference save to a
    // separate path, the exact bytes the interrupted save (seed+1) would
    // have produced — saves are byte-deterministic, so recovery can be
    // checked bit-for-bit.
    ASSERT_EQ(RunCli(SaveArgs(target_, seed)).exit_code, 0);
    const std::string old_bytes = ReadBytes(target_);
    const fs::path ref = dir_ / "reference.lds";
    ASSERT_EQ(RunCli(SaveArgs(ref, seed + 1)).exit_code, 0);
    const std::string new_bytes = ReadBytes(ref);
    ASSERT_NE(old_bytes, new_bytes);
    fs::remove(ref);

    for (const std::string_view point : io::kCrashPoints) {
      SCOPED_TRACE(std::string(point));
      // Restore the "previous valid snapshot" state for this point.
      {
        io::File f = io::File::Create(target_);
        f.WriteAll(old_bytes);
        f.Close();
      }

      const RunResult crashed = RunCli(SaveArgs(target_, seed + 1) +
                                       " --io-crash-at " + std::string(point));
      ASSERT_EQ(crashed.exit_code, io::kCrashExitCode) << crashed.out;

      const bool past_rename = point == "store.writer.post_rename";
      EXPECT_EQ(ReadBytes(target_), past_rename ? new_bytes : old_bytes);
      VerifySnapshot(target_);  // whatever survived must be a valid snapshot

      const std::vector<fs::path> orphans = FindOrphanTmpFiles(target_);
      if (past_rename) {
        // The tmp became the target; nothing to sweep.
        EXPECT_TRUE(orphans.empty());
      } else {
        // The dead child's tmp is attributable and swept-eligible.
        ASSERT_EQ(orphans.size(), 1u);
        EXPECT_NE(orphans[0].string().find(".tmp."), std::string::npos);
      }

      // Recovery: the next save sweeps the orphan and lands the new bytes.
      const RunResult recovered = RunCli(SaveArgs(target_, seed + 1));
      ASSERT_EQ(recovered.exit_code, 0) << recovered.out;
      if (!orphans.empty()) {
        EXPECT_NE(recovered.out.find("swept stale tmp file"), std::string::npos)
            << recovered.out;
      }
      EXPECT_EQ(ReadBytes(target_), new_bytes);
      VerifySnapshot(target_);
      EXPECT_TRUE(TmpLeftovers(dir_).empty());
    }
  }
}

TEST_F(CrashHarness, UnknownCrashPointIsAUsageError) {
  const RunResult r =
      RunCli(SaveArgs(target_, 11) + " --io-crash-at no.such.point");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.out.find("no.such.point"), std::string::npos);
  EXPECT_FALSE(fs::exists(target_));
}

TEST_F(CrashHarness, VerifyWarnsAboutStaleTmpFiles) {
  ASSERT_EQ(RunCli(SaveArgs(target_, 11)).exit_code, 0);
  {
    io::File f = io::File::Create(fs::path(target_.string() + ".tmp.garbage"));
    f.WriteAll("leftover");
    f.Close();
  }
  const RunResult r = RunCli("snapshot verify " + target_.string());
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("warning: stale tmp file:"), std::string::npos) << r.out;
}

}  // namespace
}  // namespace lockdown::store
