#include "sketch/reservoir.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

namespace lockdown::sketch {
namespace {

std::vector<ReservoirSample::Entry> Entries(const ReservoirSample& sample) {
  return sample.SortedEntries();
}

void ExpectSameEntries(const ReservoirSample& a, const ReservoirSample& b) {
  const auto ea = Entries(a);
  const auto eb = Entries(b);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].priority, eb[i].priority);
    EXPECT_EQ(ea[i].key, eb[i].key);
    EXPECT_DOUBLE_EQ(ea[i].value, eb[i].value);
  }
}

TEST(ReservoirSample, RejectsZeroCapacity) {
  EXPECT_THROW(ReservoirSample::Seeded(0, 1), std::invalid_argument);
}

TEST(ReservoirSample, ExactBelowCapacity) {
  auto sample = ReservoirSample::Seeded(100, 1);
  for (std::uint64_t i = 0; i < 60; ++i) {
    sample.Add(i, static_cast<double>(i) * 1.5);
  }
  EXPECT_TRUE(sample.exact());
  EXPECT_EQ(sample.seen(), 60u);
  const auto values = sample.Values();
  ASSERT_EQ(values.size(), 60u);
  // Values() sorts by item key, so the population comes back in key order.
  for (std::uint64_t i = 0; i < 60; ++i) {
    EXPECT_DOUBLE_EQ(values[i], static_cast<double>(i) * 1.5);
  }
}

TEST(ReservoirSample, CapsAtCapacity) {
  auto sample = ReservoirSample::Seeded(32, 2);
  for (std::uint64_t i = 0; i < 10000; ++i) sample.Add(i, 1.0);
  EXPECT_FALSE(sample.exact());
  EXPECT_EQ(sample.size(), 32u);
  EXPECT_EQ(sample.seen(), 10000u);
}

TEST(ReservoirSample, OrderIndependent) {
  // The kept set is a function of the key set — feeding the same items in
  // forward, reverse, and interleaved order must give identical entries.
  const auto key = DeriveKey(77, 0);
  ReservoirSample forward(50, key);
  ReservoirSample reverse(50, key);
  ReservoirSample strided(50, key);
  const std::uint64_t n = 5000;
  for (std::uint64_t i = 0; i < n; ++i) {
    forward.Add(i, static_cast<double>(i));
    reverse.Add(n - 1 - i, static_cast<double>(n - 1 - i));
  }
  for (std::uint64_t phase = 0; phase < 7; ++phase) {
    for (std::uint64_t i = phase; i < n; i += 7) {
      strided.Add(i, static_cast<double>(i));
    }
  }
  ExpectSameEntries(forward, reverse);
  ExpectSameEntries(forward, strided);
}

TEST(ReservoirSample, MergeEqualsCombinedStream) {
  const auto key = DeriveKey(13, 4);
  ReservoirSample whole(40, key);
  ReservoirSample left(40, key);
  ReservoirSample right(40, key);
  for (std::uint64_t i = 0; i < 3000; ++i) {
    whole.Add(i, static_cast<double>(i % 17));
    (i % 2 == 0 ? left : right).Add(i, static_cast<double>(i % 17));
  }
  left.Merge(right);
  EXPECT_EQ(left.seen(), whole.seen());
  ExpectSameEntries(left, whole);
}

TEST(ReservoirSample, MergeAssociativeAndCommutative) {
  const auto key = DeriveKey(21, 0);
  const auto make = [&key](std::uint64_t lo, std::uint64_t hi) {
    ReservoirSample sample(25, key);
    for (std::uint64_t i = lo; i < hi; ++i) {
      sample.Add(i, static_cast<double>(i) * 0.25);
    }
    return sample;
  };
  const auto a = make(0, 1000);
  const auto b = make(1000, 2500);
  const auto c = make(2500, 4000);

  auto ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  auto bc = b;
  bc.Merge(c);
  auto a_bc = a;
  a_bc.Merge(bc);
  auto cba = c;
  cba.Merge(b);
  cba.Merge(a);

  ExpectSameEntries(ab_c, a_bc);
  ExpectSameEntries(ab_c, cba);
}

TEST(ReservoirSample, MergeRejectsMismatch) {
  auto a = ReservoirSample::Seeded(10, 1);
  EXPECT_THROW(a.Merge(ReservoirSample::Seeded(11, 1)), MergeError);
  EXPECT_THROW(a.Merge(ReservoirSample::Seeded(10, 2)), MergeError);
}

TEST(ReservoirSample, UniformityChiSquaredAcrossSeeds) {
  // Sample k=200 of n=2000 keys, repeating over independent seeds, and
  // count how often each key bucket is selected. Under uniformity the
  // bucket counts follow a multinomial whose chi-squared statistic (with
  // 9 degrees of freedom over 10 buckets) should stay far below extreme
  // quantiles. Threshold 33.7 is the 99.99th percentile of chi2(9): a
  // biased selector (e.g. favouring low keys) blows past it immediately.
  constexpr std::uint64_t kKeys = 2000;
  constexpr std::size_t kCapacity = 200;
  constexpr int kSeeds = 64;
  constexpr std::size_t kBuckets = 10;
  std::vector<double> bucket_counts(kBuckets, 0.0);
  for (int seed = 1; seed <= kSeeds; ++seed) {
    auto sample = ReservoirSample::Seeded(kCapacity, seed);
    for (std::uint64_t i = 0; i < kKeys; ++i) {
      sample.Add(i, 0.0);
    }
    for (const auto& entry : sample.SortedEntries()) {
      bucket_counts[entry.key / (kKeys / kBuckets)] += 1.0;
    }
  }
  const double expected =
      static_cast<double>(kSeeds) * kCapacity / kBuckets;
  double chi2 = 0.0;
  for (const double observed : bucket_counts) {
    const double diff = observed - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 33.7) << "selection is not uniform over keys";
}

TEST(ReservoirSample, DuplicateKeysRetainedOrderIndependently) {
  const auto key = DeriveKey(31, 0);
  ReservoirSample ab(8, key);
  ReservoirSample ba(8, key);
  ab.Add(5, 1.0);
  ab.Add(5, 2.0);
  ba.Add(5, 2.0);
  ba.Add(5, 1.0);
  ExpectSameEntries(ab, ba);
  ASSERT_EQ(ab.size(), 2u);
  // Under eviction pressure the duplicates still resolve identically in
  // either order: value bits break the tie in the total order.
  ReservoirSample tight_ab(1, key);
  ReservoirSample tight_ba(1, key);
  tight_ab.Add(5, 1.0);
  tight_ab.Add(5, 2.0);
  tight_ba.Add(5, 2.0);
  tight_ba.Add(5, 1.0);
  ExpectSameEntries(tight_ab, tight_ba);
  ASSERT_EQ(tight_ab.size(), 1u);
  EXPECT_DOUBLE_EQ(tight_ab.Values()[0], 1.0);
}

TEST(ReservoirSample, MemoryBytesCoversEntries) {
  auto sample = ReservoirSample::Seeded(64, 1);
  for (std::uint64_t i = 0; i < 64; ++i) sample.Add(i, 0.0);
  EXPECT_GE(sample.MemoryBytes(), 64 * sizeof(ReservoirSample::Entry));
}

}  // namespace
}  // namespace lockdown::sketch
