#include "sketch/windowed.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lockdown::sketch {
namespace {

TEST(WindowedAggregator, RejectsZeroBins) {
  EXPECT_THROW(WindowedAggregator(0), std::invalid_argument);
}

TEST(WindowedAggregator, AccumulatesPerBin) {
  WindowedAggregator w(24);
  w.Add(0, 1.5);
  w.Add(0, 2.5);
  w.Add(23, 7.0);
  EXPECT_DOUBLE_EQ(w.at(0), 4.0);
  EXPECT_DOUBLE_EQ(w.at(23), 7.0);
  EXPECT_DOUBLE_EQ(w.at(12), 0.0);
}

TEST(WindowedAggregator, IgnoresOutOfRangeBins) {
  WindowedAggregator w(4);
  w.Add(4, 100.0);
  w.Add(std::size_t{1} << 40, 100.0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(w.at(i), 0.0);
}

TEST(WindowedAggregator, IntegerSumsExactInAnyOrder) {
  // Byte counts are integers; double addition over integers below 2^53 is
  // exact, so bin totals must match bit-for-bit no matter how the adds are
  // ordered or split across instances.
  util::Pcg32 rng(8, 8);
  std::vector<std::pair<std::size_t, double>> adds;
  for (int i = 0; i < 10000; ++i) {
    adds.emplace_back(rng.Next() % 168,
                      static_cast<double>(rng.Next()));  // integer-valued
  }
  WindowedAggregator forward(168);
  WindowedAggregator reverse(168);
  for (const auto& [bin, v] : adds) forward.Add(bin, v);
  for (auto it = adds.rbegin(); it != adds.rend(); ++it) {
    reverse.Add(it->first, it->second);
  }
  for (std::size_t i = 0; i < 168; ++i) {
    EXPECT_EQ(forward.at(i), reverse.at(i)) << "bin " << i;
  }
}

TEST(WindowedAggregator, MergeEqualsCombinedStreamForIntegerAdds) {
  util::Pcg32 rng(3, 1);
  WindowedAggregator whole(121);
  WindowedAggregator left(121);
  WindowedAggregator right(121);
  for (int i = 0; i < 5000; ++i) {
    const std::size_t bin = rng.Next() % 121;
    const double v = static_cast<double>(rng.Next() % 1000000);
    whole.Add(bin, v);
    (i % 2 == 0 ? left : right).Add(bin, v);
  }
  left.Merge(right);
  for (std::size_t i = 0; i < 121; ++i) {
    EXPECT_EQ(left.at(i), whole.at(i)) << "bin " << i;
  }
}

TEST(WindowedAggregator, MergeAssociativeAndCommutativeForIntegerAdds) {
  const auto make = [](std::uint64_t salt) {
    WindowedAggregator w(24);
    util::Pcg32 rng(salt, 0);
    for (int i = 0; i < 2000; ++i) {
      w.Add(rng.Next() % 24, static_cast<double>(rng.Next() % 4096));
    }
    return w;
  };
  const auto a = make(1);
  const auto b = make(2);
  const auto c = make(3);

  auto ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  auto bc = b;
  bc.Merge(c);
  auto a_bc = a;
  a_bc.Merge(bc);
  auto cba = c;
  cba.Merge(b);
  cba.Merge(a);

  for (std::size_t i = 0; i < 24; ++i) {
    EXPECT_EQ(ab_c.at(i), a_bc.at(i));
    EXPECT_EQ(ab_c.at(i), cba.at(i));
  }
}

TEST(WindowedAggregator, MergeRejectsMismatch) {
  WindowedAggregator a(24);
  EXPECT_THROW(a.Merge(WindowedAggregator(25)), MergeError);
}

TEST(WindowedAggregator, MemoryBytesCoversBins) {
  EXPECT_GE(WindowedAggregator(168).MemoryBytes(), 168 * sizeof(double));
}

}  // namespace
}  // namespace lockdown::sketch
