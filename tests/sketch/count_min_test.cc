#include "sketch/count_min.h"

#include <cstdint>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lockdown::sketch {
namespace {

TEST(CountMinSketch, RejectsDegenerateShapes) {
  EXPECT_THROW(CountMinSketch(0, 4, 1), std::invalid_argument);
  EXPECT_THROW(CountMinSketch(16, 0, 1), std::invalid_argument);
  EXPECT_THROW(CountMinSketch::FromErrorBound(0.0, 0.01, 1),
               std::invalid_argument);
  EXPECT_THROW(CountMinSketch::FromErrorBound(0.01, 1.5, 1),
               std::invalid_argument);
}

TEST(CountMinSketch, FromErrorBoundSizesClassically) {
  const auto cms = CountMinSketch::FromErrorBound(0.01, 0.01, 1);
  EXPECT_EQ(cms.width(), 272u);  // ceil(e / 0.01)
  EXPECT_EQ(cms.depth(), 5u);    // ceil(ln 100)
  EXPECT_LE(cms.epsilon(), 0.01);
  EXPECT_LE(cms.delta(), 0.01);
}

TEST(CountMinSketch, NeverUnderestimates) {
  // One-sided error is the defining property: check it for every key under
  // heavy collision pressure (tiny sketch, many keys, several seeds).
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    CountMinSketch cms(32, 4, seed);
    std::map<std::uint64_t, std::uint64_t> exact;
    util::Pcg32 rng(seed, 99);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t key = rng.Next() % 500;
      const std::uint64_t count = 1 + rng.Next() % 1000;
      cms.Add(key, count);
      exact[key] += count;
    }
    for (const auto& [key, count] : exact) {
      EXPECT_GE(cms.Estimate(key), count) << "seed=" << seed;
    }
  }
}

TEST(CountMinSketch, OverestimateWithinEpsilonTotal) {
  // With width sized for epsilon = 0.01, at most a delta fraction of keys
  // may overshoot by more than epsilon * total. Count violations over a
  // sizeable key population and require far fewer than delta would allow.
  auto cms = CountMinSketch::FromErrorBound(0.01, 0.01, 7);
  std::map<std::uint64_t, std::uint64_t> exact;
  util::Pcg32 rng(7, 1);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.Next() % 3000;
    cms.Add(key, 1 + rng.Next() % 100);
  }
  // Replay the same stream to build the exact counts.
  util::Pcg32 replay(7, 1);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = replay.Next() % 3000;
    exact[key] += 1 + replay.Next() % 100;
  }
  const double bound =
      cms.epsilon() * static_cast<double>(cms.total());
  std::size_t violations = 0;
  for (const auto& [key, count] : exact) {
    if (static_cast<double>(cms.Estimate(key) - count) > bound) ++violations;
  }
  EXPECT_LE(static_cast<double>(violations),
            cms.delta() * static_cast<double>(exact.size()));
}

TEST(CountMinSketch, ExactWhenCollisionFree) {
  // A wide sketch over few keys should be collision-free in at least one
  // row, making every estimate exact.
  CountMinSketch cms(1 << 16, 4, 11);
  for (std::uint64_t key = 0; key < 50; ++key) {
    cms.Add(key, key * 17 + 1);
  }
  for (std::uint64_t key = 0; key < 50; ++key) {
    EXPECT_EQ(cms.Estimate(key), key * 17 + 1);
  }
}

TEST(CountMinSketch, MergeEqualsCombinedStream) {
  CountMinSketch whole(64, 4, 5);
  CountMinSketch left(64, 4, 5);
  CountMinSketch right(64, 4, 5);
  util::Pcg32 rng(5, 2);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t key = rng.Next() % 900;
    const std::uint64_t count = 1 + rng.Next() % 50;
    whole.Add(key, count);
    (i % 3 == 0 ? left : right).Add(key, count);
  }
  left.Merge(right);
  EXPECT_EQ(left.total(), whole.total());
  for (std::uint64_t key = 0; key < 900; ++key) {
    EXPECT_EQ(left.Estimate(key), whole.Estimate(key));
  }
}

TEST(CountMinSketch, MergeAssociativeAndCommutative) {
  const auto make = [](std::uint64_t salt) {
    CountMinSketch cms(48, 3, 9);
    util::Pcg32 rng(salt, 0);
    for (int i = 0; i < 1000; ++i) cms.Add(rng.Next() % 300, 1 + rng.Next() % 9);
    return cms;
  };
  const auto a = make(1);
  const auto b = make(2);
  const auto c = make(3);

  auto ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  auto bc = b;
  bc.Merge(c);
  auto a_bc = a;
  a_bc.Merge(bc);
  auto cba = c;
  cba.Merge(b);
  cba.Merge(a);

  EXPECT_EQ(ab_c.total(), a_bc.total());
  EXPECT_EQ(ab_c.total(), cba.total());
  for (std::uint64_t key = 0; key < 300; ++key) {
    EXPECT_EQ(ab_c.Estimate(key), a_bc.Estimate(key));
    EXPECT_EQ(ab_c.Estimate(key), cba.Estimate(key));
  }
}

TEST(CountMinSketch, MergeRejectsMismatch) {
  CountMinSketch a(64, 4, 5);
  EXPECT_THROW(a.Merge(CountMinSketch(32, 4, 5)), MergeError);
  EXPECT_THROW(a.Merge(CountMinSketch(64, 3, 5)), MergeError);
  EXPECT_THROW(a.Merge(CountMinSketch(64, 4, 6)), MergeError);
}

TEST(CountMinSketch, MemoryBytesCoversCells) {
  CountMinSketch cms(1024, 4, 1);
  EXPECT_GE(cms.MemoryBytes(), 1024u * 4u * sizeof(std::uint64_t));
}

}  // namespace
}  // namespace lockdown::sketch
