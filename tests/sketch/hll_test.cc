#include "sketch/hll.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace lockdown::sketch {
namespace {

TEST(HyperLogLog, RejectsBadPrecision) {
  EXPECT_THROW(HyperLogLog::Seeded(3, 1), std::invalid_argument);
  EXPECT_THROW(HyperLogLog::Seeded(17, 1), std::invalid_argument);
  EXPECT_NO_THROW(HyperLogLog::Seeded(4, 1));
  EXPECT_NO_THROW(HyperLogLog::Seeded(16, 1));
}

TEST(HyperLogLog, EmptyEstimatesZero) {
  EXPECT_DOUBLE_EQ(HyperLogLog::Seeded(12, 7).Estimate(), 0.0);
}

TEST(HyperLogLog, SmallCardinalityIsNearExact) {
  // Linear counting regime: tiny sets should be estimated almost exactly.
  auto hll = HyperLogLog::Seeded(12, 42);
  for (std::uint64_t i = 0; i < 100; ++i) hll.Add(i);
  EXPECT_NEAR(hll.Estimate(), 100.0, 3.0);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  auto hll = HyperLogLog::Seeded(12, 42);
  for (int round = 0; round < 50; ++round) {
    for (std::uint64_t i = 0; i < 200; ++i) hll.Add(i);
  }
  EXPECT_NEAR(hll.Estimate(), 200.0, 6.0);
}

TEST(HyperLogLog, RelativeErrorWithinFourSigmaAcrossSeeds) {
  // Property: for each of several seeds and cardinalities, the estimate
  // lands within 4 standard errors of the truth. 4 sigma per trial keeps
  // the aggregate false-failure probability negligible.
  const std::vector<std::uint64_t> cardinalities = {1000, 10000, 100000};
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (const std::uint64_t n : cardinalities) {
      auto hll = HyperLogLog::Seeded(12, seed);
      // Distinct per-(seed, n) universes so trials are independent.
      for (std::uint64_t i = 0; i < n; ++i) {
        hll.Add((seed << 40) ^ (n << 20) ^ i);
      }
      const double err =
          std::abs(hll.Estimate() - static_cast<double>(n)) /
          static_cast<double>(n);
      EXPECT_LT(err, 4.0 * hll.RelativeStandardError())
          << "seed=" << seed << " n=" << n
          << " estimate=" << hll.Estimate();
    }
  }
}

TEST(HyperLogLog, DeterministicAcrossInstances) {
  auto a = HyperLogLog::Seeded(10, 9);
  auto b = HyperLogLog::Seeded(10, 9);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    a.Add(i * 2654435761u);
    b.Add(i * 2654435761u);
  }
  ASSERT_EQ(a.registers().size(), b.registers().size());
  for (std::size_t i = 0; i < a.registers().size(); ++i) {
    EXPECT_EQ(a.registers()[i], b.registers()[i]);
  }
}

TEST(HyperLogLog, MergeEqualsUnion) {
  auto whole = HyperLogLog::Seeded(12, 3);
  auto left = HyperLogLog::Seeded(12, 3);
  auto right = HyperLogLog::Seeded(12, 3);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    whole.Add(i);
    (i % 2 == 0 ? left : right).Add(i);
  }
  left.Merge(right);
  EXPECT_DOUBLE_EQ(left.Estimate(), whole.Estimate());
}

TEST(HyperLogLog, MergeAssociativeAndCommutative) {
  const auto make = [](std::uint64_t lo, std::uint64_t hi) {
    auto hll = HyperLogLog::Seeded(10, 5);
    for (std::uint64_t i = lo; i < hi; ++i) hll.Add(i);
    return hll;
  };
  const auto a = make(0, 3000);
  const auto b = make(2000, 6000);
  const auto c = make(5000, 9000);

  auto ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  auto bc = b;
  bc.Merge(c);
  auto a_bc = a;
  a_bc.Merge(bc);
  auto cba = c;
  cba.Merge(b);
  cba.Merge(a);

  for (std::size_t i = 0; i < ab_c.registers().size(); ++i) {
    EXPECT_EQ(ab_c.registers()[i], a_bc.registers()[i]);
    EXPECT_EQ(ab_c.registers()[i], cba.registers()[i]);
  }
}

TEST(HyperLogLog, MergeRejectsMismatch) {
  auto a = HyperLogLog::Seeded(10, 1);
  EXPECT_THROW(a.Merge(HyperLogLog::Seeded(11, 1)), MergeError);
  EXPECT_THROW(a.Merge(HyperLogLog::Seeded(10, 2)), MergeError);
}

TEST(HyperLogLog, MemoryBytesScalesWithPrecision) {
  EXPECT_GE(HyperLogLog::Seeded(12, 1).MemoryBytes(), std::size_t{4096});
  EXPECT_LT(HyperLogLog::Seeded(6, 1).MemoryBytes(), std::size_t{4096});
}

}  // namespace
}  // namespace lockdown::sketch
