#include "world/catalog.h"

#include <gtest/gtest.h>

#include <set>

namespace lockdown::world {
namespace {

const ServiceCatalog& Catalog() { return ServiceCatalog::Default(); }

TEST(ServiceCatalog, HasPaperNamedServices) {
  for (const char* name :
       {"zoom", "zoom-media", "zoom-media-legacy", "facebook", "instagram",
        "tiktok", "steam", "nintendo-gameplay", "nintendo-services"}) {
    EXPECT_TRUE(Catalog().FindByName(name).has_value()) << name;
  }
}

TEST(ServiceCatalog, HasTapExclusionList) {
  // §3: "parts of UC San Diego, Google Cloud, Amazon, Microsoft Azure, Riot
  // Games, Twitch, Qualys, and Apple".
  for (const char* name : {"ucsd-internal", "google-cloud", "amazon-retail",
                           "azure", "riot", "twitch", "qualys", "apple"}) {
    const auto id = Catalog().FindByName(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_TRUE(Catalog().Get(*id).tap_excluded) << name;
  }
}

TEST(ServiceCatalog, CdnFlagsMatchPaper) {
  // §4.2 excludes exactly Akamai, AWS, Cloudfront, Optimizely from midpoints.
  for (const char* name : {"akamai", "aws", "cloudfront", "optimizely"}) {
    const auto id = Catalog().FindByName(name);
    ASSERT_TRUE(id.has_value()) << name;
    EXPECT_TRUE(Catalog().Get(*id).is_cdn) << name;
  }
  EXPECT_FALSE(Catalog().Get(*Catalog().FindByName("netflix")).is_cdn);
}

TEST(ServiceCatalog, FindByHostExactAndSubdomain) {
  const auto zoom = Catalog().FindByName("zoom");
  EXPECT_EQ(Catalog().FindByHost("zoom.us"), zoom);
  EXPECT_EQ(Catalog().FindByHost("us04web.zoom.us"), zoom);
  EXPECT_EQ(Catalog().FindByHost("deep.sub.domain.zoom.us"), zoom);
  EXPECT_FALSE(Catalog().FindByHost("notzoom.us").has_value());
  EXPECT_FALSE(Catalog().FindByHost("unknown.example").has_value());
}

TEST(ServiceCatalog, MoreSpecificHostWins) {
  // weixin.qq.com belongs to wechat even though qq.com belongs to qq.
  EXPECT_EQ(Catalog().FindByHost("weixin.qq.com"), Catalog().FindByName("wechat"));
  EXPECT_EQ(Catalog().FindByHost("qq.com"), Catalog().FindByName("qq"));
  EXPECT_EQ(Catalog().FindByHost("gcloud.qq.com"),
            Catalog().FindByName("tencent-games"));
}

TEST(ServiceCatalog, BlocksAreDisjoint) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  for (const Service& svc : Catalog().services()) {
    const std::uint32_t lo = svc.block.base().value();
    const std::uint32_t hi =
        lo + static_cast<std::uint32_t>(svc.block.size()) - 1;
    ranges.emplace_back(lo, hi);
  }
  std::sort(ranges.begin(), ranges.end());
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_GT(ranges[i].first, ranges[i - 1].second);
  }
}

TEST(ServiceCatalog, FindByIpRoundTrip) {
  for (const char* name : {"zoom", "steam", "bilibili", "akamai"}) {
    const auto id = Catalog().FindByName(name);
    ASSERT_TRUE(id.has_value());
    const net::Cidr block = Catalog().Get(*id).block;
    EXPECT_EQ(Catalog().FindByIp(block.At(1)), id) << name;
    EXPECT_EQ(Catalog().FindByIp(block.At(block.size() - 1)), id) << name;
  }
  EXPECT_FALSE(Catalog().FindByIp(net::Ipv4Address(10, 0, 0, 1)).has_value());
}

TEST(ServiceCatalog, ResolveHostStableAndInBlock) {
  const auto ips1 = Catalog().ResolveHost("steampowered.com");
  const auto ips2 = Catalog().ResolveHost("steampowered.com");
  ASSERT_FALSE(ips1.empty());
  EXPECT_EQ(ips1, ips2);  // deterministic
  const net::Cidr block = Catalog().Get(*Catalog().FindByName("steam")).block;
  for (net::Ipv4Address ip : ips1) EXPECT_TRUE(block.Contains(ip));
}

TEST(ServiceCatalog, DnsLessServicesDoNotResolve) {
  EXPECT_TRUE(Catalog().ResolveHost("zoom-media-whatever").empty());
  const auto media = Catalog().FindByName("zoom-media");
  EXPECT_TRUE(Catalog().Get(*media).dns_less);
}

TEST(ServiceCatalog, DifferentHostsUsuallyDifferentAddresses) {
  const auto a = Catalog().ResolveHost("facebook.com");
  const auto b = Catalog().ResolveHost("fbcdn.net");
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a, b);
}

TEST(ServiceCatalog, LongTailPresent) {
  // The long tail backs the §4.1 "34% more distinct sites" growth.
  EXPECT_GE(Catalog().size(), 250u);
  EXPECT_TRUE(Catalog().FindByName("web-us-000").has_value());
  EXPECT_TRUE(Catalog().FindByName("web-cn-000").has_value());
  const auto id = Catalog().FindByHost("www.us-site-017.net");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(Catalog().Get(*id).name, "web-us-017");
}

TEST(ServiceCatalog, ForeignServicesCarryCountry) {
  EXPECT_EQ(Catalog().Get(*Catalog().FindByName("bilibili")).country, "CN");
  EXPECT_EQ(Catalog().Get(*Catalog().FindByName("naver")).country, "KR");
  EXPECT_EQ(Catalog().Get(*Catalog().FindByName("hotstar")).country, "IN");
  EXPECT_EQ(Catalog().Get(*Catalog().FindByName("facebook")).country, "US");
}

TEST(ServiceCatalog, CustomCatalogRejectsDuplicateNames) {
  const std::vector<ServiceSpec> specs = {
      {.name = "a", .category = Category::kWeb, .country = "US", .location = {},
       .hosts = {"a.example"}},
      {.name = "a", .category = Category::kWeb, .country = "US", .location = {},
       .hosts = {"b.example"}},
  };
  EXPECT_THROW(ServiceCatalog catalog(specs), std::invalid_argument);
}

TEST(ServiceCatalog, CustomCatalogRejectsDuplicateHosts) {
  const std::vector<ServiceSpec> specs = {
      {.name = "a", .category = Category::kWeb, .country = "US", .location = {},
       .hosts = {"x.example"}},
      {.name = "b", .category = Category::kWeb, .country = "US", .location = {},
       .hosts = {"x.example"}},
  };
  EXPECT_THROW(ServiceCatalog catalog(specs), std::invalid_argument);
}

}  // namespace
}  // namespace lockdown::world
