#include "world/oui_db.h"

#include <gtest/gtest.h>

namespace lockdown::world {
namespace {

TEST(OuiDatabase, KnownVendors) {
  const OuiDatabase& db = OuiDatabase::Default();
  const auto apple = db.Lookup(net::MacAddress::FromOui(0xA483E7, 1));
  ASSERT_TRUE(apple.has_value());
  EXPECT_EQ(apple->vendor, "Apple");
  EXPECT_EQ(apple->hint, VendorHint::kComputerOrPhone);

  const auto nintendo = db.Lookup(net::MacAddress::FromOui(0x98B6E9, 1));
  ASSERT_TRUE(nintendo.has_value());
  EXPECT_EQ(nintendo->hint, VendorHint::kNintendo);

  const auto roku = db.Lookup(net::MacAddress::FromOui(0xB0A737, 1));
  ASSERT_TRUE(roku.has_value());
  EXPECT_EQ(roku->hint, VendorHint::kIot);
}

TEST(OuiDatabase, UnknownOui) {
  EXPECT_FALSE(OuiDatabase::Default()
                   .Lookup(net::MacAddress::FromOui(0x00E099, 1))
                   .has_value());
}

TEST(OuiDatabase, RandomizedMacNeverMatches) {
  // Set the locally-administered bit on an otherwise-Apple prefix: MAC
  // randomization must defeat OUI lookup.
  const net::MacAddress randomized(
      (std::uint64_t{0xA483E7 | 0x020000} << 24) | 0x123456);
  EXPECT_TRUE(OuiDatabase::IsLocallyAdministered(randomized));
  EXPECT_FALSE(OuiDatabase::Default().Lookup(randomized).has_value());
}

TEST(OuiDatabase, UniversallyAdministeredBitClear) {
  const net::MacAddress normal = net::MacAddress::FromOui(0xA483E7, 1);
  EXPECT_FALSE(OuiDatabase::IsLocallyAdministered(normal));
}

TEST(OuiDatabase, OuisForHintDeterministic) {
  const OuiDatabase& db = OuiDatabase::Default();
  const auto a = db.OuisFor(VendorHint::kNintendo);
  const auto b = db.OuisFor(VendorHint::kNintendo);
  EXPECT_EQ(a, b);
  EXPECT_GE(a.size(), 2u);
  for (std::uint32_t oui : a) {
    const auto info = db.Lookup(net::MacAddress::FromOui(oui, 1));
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->hint, VendorHint::kNintendo);
  }
}

TEST(OuiDatabase, AllHintCategoriesPopulated) {
  const OuiDatabase& db = OuiDatabase::Default();
  for (VendorHint hint :
       {VendorHint::kComputer, VendorHint::kPhone, VendorHint::kComputerOrPhone,
        VendorHint::kIot, VendorHint::kNintendo, VendorHint::kConsoleOther,
        VendorHint::kGeneric}) {
    EXPECT_FALSE(db.OuisFor(hint).empty()) << ToString(hint);
  }
}

}  // namespace
}  // namespace lockdown::world
