#include "world/user_agents.h"

#include <gtest/gtest.h>

namespace lockdown::world {
namespace {

TEST(UserAgents, EveryPlatformHasStrings) {
  for (UaPlatform p :
       {UaPlatform::kWindowsDesktop, UaPlatform::kMacDesktop,
        UaPlatform::kLinuxDesktop, UaPlatform::kIphone, UaPlatform::kIpad,
        UaPlatform::kAndroidPhone, UaPlatform::kSmartTv, UaPlatform::kGameConsole}) {
    const auto corpus = UserAgentsFor(p);
    EXPECT_FALSE(corpus.empty());
    for (std::string_view ua : corpus) EXPECT_FALSE(ua.empty());
  }
}

TEST(UserAgents, PlatformTokensPresent) {
  EXPECT_NE(UserAgentsFor(UaPlatform::kIphone)[0].find("iPhone"),
            std::string_view::npos);
  EXPECT_NE(UserAgentsFor(UaPlatform::kWindowsDesktop)[0].find("Windows NT"),
            std::string_view::npos);
  EXPECT_NE(UserAgentsFor(UaPlatform::kMacDesktop)[0].find("Macintosh"),
            std::string_view::npos);
  EXPECT_NE(UserAgentsFor(UaPlatform::kGameConsole)[0].find("Nintendo Switch"),
            std::string_view::npos);
}

}  // namespace
}  // namespace lockdown::world
