#include "world/geo_db.h"

#include <gtest/gtest.h>

namespace lockdown::world {
namespace {

TEST(GeoDatabase, ServiceBlocksGeolocate) {
  const ServiceCatalog& cat = ServiceCatalog::Default();
  GeoDatabase geo(cat);
  const auto bilibili = cat.Get(*cat.FindByName("bilibili"));
  const auto info = geo.Lookup(bilibili.block.At(5));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->country, "CN");
  EXPECT_NEAR(info->location.lat, 31.23, 0.01);
  EXPECT_FALSE(info->is_cdn);
}

TEST(GeoDatabase, CdnFlagPropagates) {
  const ServiceCatalog& cat = ServiceCatalog::Default();
  GeoDatabase geo(cat);
  const auto akamai = cat.Get(*cat.FindByName("akamai"));
  const auto info = geo.Lookup(akamai.block.At(1));
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->is_cdn);
  EXPECT_EQ(info->country, "US");
}

TEST(GeoDatabase, UnknownAddress) {
  GeoDatabase geo(ServiceCatalog::Default());
  EXPECT_FALSE(geo.Lookup(net::Ipv4Address(1, 2, 3, 4)).has_value());
}

TEST(GeoDatabase, ExtraBlocksIncluded) {
  const net::Cidr campus(net::Ipv4Address(10, 0, 0, 0), 12);
  GeoDatabase geo(ServiceCatalog::Default(),
                  {{campus, GeoInfo{"US", {32.88, -117.24}, false}}});
  const auto info = geo.Lookup(net::Ipv4Address(10, 3, 4, 5));
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->country, "US");
  EXPECT_NEAR(info->location.lat, 32.88, 0.01);
}

TEST(GeoDatabase, BoundariesExact) {
  const ServiceCatalog& cat = ServiceCatalog::Default();
  GeoDatabase geo(cat);
  const auto svc = cat.Get(*cat.FindByName("zoom"));
  EXPECT_TRUE(geo.Lookup(svc.block.At(0)).has_value());
  EXPECT_TRUE(geo.Lookup(svc.block.At(svc.block.size() - 1)).has_value());
}

}  // namespace
}  // namespace lockdown::world
