// Unit tests for the crash-safe IO layer (src/io): the deterministic fault
// injector and its spec grammar, the retry policy's exact backoff schedule
// (via the virtual-clock sleep hook), io::File's completion loops under
// injected short/transient/permanent faults, crash-point arming semantics,
// and the io/* observability counters.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "io/crash_points.h"
#include "io/io.h"
#include "obs/metrics.h"

namespace lockdown::io {
namespace {

namespace fs = std::filesystem;

std::vector<std::uint64_t>& CapturedSleeps() {
  static std::vector<std::uint64_t> sleeps;
  return sleeps;
}

void CaptureSleep(std::uint64_t micros) { CapturedSleeps().push_back(micros); }

std::uint64_t CounterValueOf(const obs::MetricsSnapshot& snap,
                             std::string_view name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

FaultPlan MustParse(std::string_view spec) {
  std::string error;
  const auto plan = ParseFaultPlan(spec, &error);
  EXPECT_TRUE(plan.has_value()) << spec << ": " << error;
  return plan.value_or(FaultPlan{});
}

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClearFaultPlan();
    DisarmCrashPoints();
    SetRetryPolicy(RetryPolicy{});
    SetSleepFnForTest(nullptr);
    CapturedSleeps().clear();
    char tmpl[] = "/tmp/lockdown_io_test.XXXXXX";
    const char* dir = ::mkdtemp(tmpl);
    ASSERT_NE(dir, nullptr);
    dir_ = dir;
  }

  void TearDown() override {
    ClearFaultPlan();
    DisarmCrashPoints();
    SetRetryPolicy(RetryPolicy{});
    SetSleepFnForTest(nullptr);
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] fs::path Path(const char* name) const { return dir_ / name; }

  fs::path dir_;
};

// --- RetryPolicy -------------------------------------------------------------

TEST_F(IoTest, BackoffDoublesFromInitialAndCaps) {
  const RetryPolicy p;  // 100us initial, 50ms cap
  EXPECT_EQ(p.BackoffUs(1), 100u);
  EXPECT_EQ(p.BackoffUs(2), 200u);
  EXPECT_EQ(p.BackoffUs(3), 400u);
  EXPECT_EQ(p.BackoffUs(5), 1600u);
  EXPECT_EQ(p.BackoffUs(10), 50'000u);  // 100 * 2^9 = 51200 -> capped
  EXPECT_EQ(p.BackoffUs(63), 50'000u);  // far past any overflow hazard
}

TEST_F(IoTest, BackoffWithZeroInitialStaysZero) {
  const RetryPolicy p{.initial_backoff_us = 0};
  EXPECT_EQ(p.BackoffUs(1), 0u);
  EXPECT_EQ(p.BackoffUs(7), 0u);
}

TEST_F(IoTest, AlwaysTransientIsExactlyTheInterruptErrnos) {
  EXPECT_TRUE(RetryPolicy::AlwaysTransient(EINTR));
  EXPECT_TRUE(RetryPolicy::AlwaysTransient(EAGAIN));
  EXPECT_FALSE(RetryPolicy::AlwaysTransient(ENOSPC));
  EXPECT_FALSE(RetryPolicy::AlwaysTransient(EIO));
  EXPECT_FALSE(RetryPolicy::AlwaysTransient(ENOENT));
  EXPECT_FALSE(RetryPolicy::AlwaysTransient(0));
}

// --- Spec grammar ------------------------------------------------------------

TEST_F(IoTest, ParsesSingleIndexedClause) {
  const FaultPlan plan = MustParse("7:enospc@write#12");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.clauses.size(), 1u);
  EXPECT_EQ(plan.clauses[0].kind, FaultKind::kEnospc);
  EXPECT_EQ(plan.clauses[0].op, Op::kWrite);
  EXPECT_FALSE(plan.clauses[0].all_ops);
  EXPECT_EQ(plan.clauses[0].at_index, 12u);
  EXPECT_EQ(plan.clauses[0].probability, 0.0);
}

TEST_F(IoTest, ParsesProbabilityAndMultiClauseSpecs) {
  const FaultPlan plan = MustParse("42:eintr@read%0.5,short@all,eio@fsync#1");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.clauses.size(), 3u);
  EXPECT_EQ(plan.clauses[0].kind, FaultKind::kEintr);
  EXPECT_DOUBLE_EQ(plan.clauses[0].probability, 0.5);
  EXPECT_TRUE(plan.clauses[1].all_ops);
  EXPECT_EQ(plan.clauses[1].kind, FaultKind::kShort);
  EXPECT_EQ(plan.clauses[2].op, Op::kFsync);
}

TEST_F(IoTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "no-colon",            // missing seed separator
      "x:eio@write",         // non-numeric seed
      ":eio@write",          // empty seed
      "1:",                  // no clauses
      "1:eio",               // missing @op
      "1:frob@write",        // unknown kind
      "1:eio@frobnicate",    // unknown op
      "1:short@fsync",       // short needs a byte count
      "1:eio@write#0",       // indices are 1-based
      "1:eio@write#x",       // non-numeric index
      "1:eio@write%0",       // probability must be > 0
      "1:eio@write%1.5",     // probability must be <= 1
  };
  for (const char* spec : bad) {
    std::string error;
    EXPECT_FALSE(ParseFaultPlan(spec, &error).has_value()) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// --- Injector ----------------------------------------------------------------

TEST_F(IoTest, IndexedClauseFiresAtExactlyThatAttempt) {
  SetFaultPlan(MustParse("1:enospc@write#3"));
  EXPECT_FALSE(NextFault(Op::kWrite).has_value());
  EXPECT_FALSE(NextFault(Op::kWrite).has_value());
  const auto third = NextFault(Op::kWrite);
  ASSERT_TRUE(third.has_value());
  EXPECT_EQ(third->err, ENOSPC);
  EXPECT_FALSE(NextFault(Op::kWrite).has_value());
  // Other op kinds keep their own attempt counters.
  EXPECT_FALSE(NextFault(Op::kRead).has_value());
}

TEST_F(IoTest, ProbabilityDrawsAreDeterministicPerSeed) {
  const auto draw = [](std::uint64_t seed) {
    FaultPlan plan = MustParse("1:eintr@read%0.5");
    plan.seed = seed;
    SetFaultPlan(plan);
    std::vector<bool> fired;
    for (int i = 0; i < 50; ++i) fired.push_back(NextFault(Op::kRead).has_value());
    return fired;
  };
  const std::vector<bool> a = draw(42);
  const std::vector<bool> b = draw(42);
  EXPECT_EQ(a, b);  // SetFaultPlan fully resets counters and streams
  // A fair coin over 50 deterministic draws fires some but not all.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), true), 50);
}

TEST_F(IoTest, InjectionDisabledIsInert) {
  EXPECT_FALSE(FaultInjectionEnabled());
  EXPECT_FALSE(NextFault(Op::kWrite).has_value());
  SetFaultPlan(MustParse("1:eio@write#1"));
  EXPECT_TRUE(FaultInjectionEnabled());
  ClearFaultPlan();
  EXPECT_FALSE(FaultInjectionEnabled());
}

TEST_F(IoTest, ShortDegradesToNoFaultOnNonByteOps) {
  SetFaultPlan(MustParse("1:short@all"));
  EXPECT_FALSE(NextFault(Op::kFsync).has_value());
  EXPECT_FALSE(NextFault(Op::kRename).has_value());
  const auto w = NextFault(Op::kWrite);
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->short_io);
  EXPECT_EQ(w->err, 0);
}

// --- File: faults through the shim ------------------------------------------

TEST_F(IoTest, TransientWriteFaultIsAbsorbed) {
  SetFaultPlan(MustParse("1:eintr@write#1"));
  File f = File::Create(Path("t.bin"));
  f.WriteAll("hello");
  f.Close();
  EXPECT_EQ(ReadFileToString(Path("t.bin")), "hello");
}

TEST_F(IoTest, PermanentWriteFaultSurfacesWithTaxonomy) {
  SetFaultPlan(MustParse("1:enospc@write#1"));
  File f = File::Create(Path("t.bin"));
  try {
    f.WriteAll("hello");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.error_code(), ENOSPC);
    EXPECT_EQ(e.op(), "write");
    EXPECT_EQ(e.path(), Path("t.bin"));
    EXPECT_NE(std::string(e.what()).find("write"), std::string::npos);
  }
}

TEST_F(IoTest, ShortWritesAreCompletedBitIdentically) {
  const std::string payload(100'000, '\0');
  std::string varied = payload;
  for (std::size_t i = 0; i < varied.size(); ++i) {
    varied[i] = static_cast<char>(i * 131 % 251);
  }
  SetFaultPlan(MustParse("1:short@write%1"));  // every attempt halved
  File f = File::Create(Path("t.bin"));
  f.WriteAll(varied);
  f.Close();
  ClearFaultPlan();
  EXPECT_EQ(ReadFileToString(Path("t.bin")), varied);
}

TEST_F(IoTest, EintrReadStormReturnsIdenticalBytes) {
  std::string body;
  for (int i = 0; i < 90'000; ++i) body += static_cast<char>('a' + i % 23);
  {
    File f = File::Create(Path("t.bin"));
    f.WriteAll(body);
    f.Close();
  }
  // A fair-coin EINTR on every read attempt; a deeper retry budget keeps
  // even a long deterministic run of heads transient.
  SetRetryPolicy(RetryPolicy{.max_attempts = 16, .initial_backoff_us = 1});
  SetFaultPlan(MustParse("9:eintr@read%0.5"));
  EXPECT_EQ(ReadFileToString(Path("t.bin")), body);
}

TEST_F(IoTest, EioRespectsTheBudget) {
  SetFaultPlan(MustParse("1:eio@write#1"));
  File f = File::Create(Path("t.bin"));
  EXPECT_THROW(f.WriteAll("x"), IoError);  // default budget: EIO is permanent

  SetRetryPolicy(RetryPolicy{.eio_budget = 2});
  SetFaultPlan(MustParse("1:eio@write#1"));
  File g = File::Create(Path("u.bin"));
  g.WriteAll("x");  // absorbed: one EIO within a budget of two
  g.Close();
  EXPECT_EQ(ReadFileToString(Path("u.bin")), "x");
}

TEST_F(IoTest, ExhaustedRetriesFollowTheExactBackoffSchedule) {
  SetSleepFnForTest(&CaptureSleep);
  SetFaultPlan(MustParse("1:eintr@write"));  // fires on every attempt
  File f = File::Create(Path("t.bin"));
  try {
    f.WriteAll("x");
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.error_code(), EINTR);
  }
  const std::vector<std::uint64_t> want = {100, 200, 400, 800, 1600};
  EXPECT_EQ(CapturedSleeps(), want);  // max_attempts=6 -> 5 backoffs
}

TEST_F(IoTest, OpenAndRenameFaultsCarryTheirOpNames) {
  SetFaultPlan(MustParse("1:enospc@open#1"));
  try {
    (void)File::Create(Path("t.bin"));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), "open");
  }
  ClearFaultPlan();
  {
    File f = File::Create(Path("t.bin"));
    f.WriteAll("x");
    f.Close();
  }
  SetFaultPlan(MustParse("1:eio@rename#1"));
  try {
    Rename(Path("t.bin"), Path("u.bin"));
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.op(), "rename");
    EXPECT_EQ(e.path(), Path("u.bin"));  // errors name the destination
  }
  ClearFaultPlan();
  EXPECT_TRUE(fs::exists(Path("t.bin")));  // injected before the syscall ran
}

TEST_F(IoTest, FsyncDirSurfacesRealFailuresAbsorbsTransients) {
  SetFaultPlan(MustParse("1:eintr@fsync#1"));
  FsyncDir(dir_);  // transient absorbed
  SetFaultPlan(MustParse("1:eio@fsync#1"));
  EXPECT_THROW(FsyncDir(dir_), IoError);  // EIO on a dir sync is real
}

TEST_F(IoTest, TryRemoveNeverThrows) {
  {
    File f = File::Create(Path("t.bin"));
    f.Close();
  }
  SetFaultPlan(MustParse("1:enospc@all"));  // TryRemove bypasses injection
  EXPECT_TRUE(TryRemove(Path("t.bin")));
  EXPECT_FALSE(TryRemove(Path("t.bin")));  // already gone
}

TEST_F(IoTest, CloseIsCheckedAndIdempotent) {
  File f = File::Create(Path("t.bin"));
  SetFaultPlan(MustParse("1:eio@close#1"));
  EXPECT_THROW(f.Close(), IoError);
  EXPECT_FALSE(f.valid());  // the fd is gone either way
  f.Close();                // idempotent once closed
}

// --- FileStreamBuf -----------------------------------------------------------

TEST_F(IoTest, StreamBufRoundTripsThroughTheShim) {
  {
    FileStreamBuf buf(File::Create(Path("log.tsv")), 8);  // tiny: forces spills
    std::ostream out(&buf);
    out.exceptions(std::ios::badbit);
    out << "alpha\t" << 12345 << "\nbeta\t" << 67890 << "\n";
    out.flush();
    buf.file().Close();
  }
  EXPECT_EQ(ReadFileToString(Path("log.tsv")),
            "alpha\t12345\nbeta\t67890\n");
}

TEST_F(IoTest, StreamBufPropagatesIoErrorOutOfInsertion) {
  FileStreamBuf buf(File::Create(Path("log.tsv")), 4);
  std::ostream out(&buf);
  out.exceptions(std::ios::badbit);
  SetFaultPlan(MustParse("1:enospc@write"));
  EXPECT_THROW(out << "a line long enough to overflow the buffer", IoError);
  EXPECT_TRUE(out.bad());
}

// --- Crash points ------------------------------------------------------------

TEST_F(IoTest, ArmRejectsUnregisteredNames) {
  EXPECT_FALSE(ArmCrashPoint("no.such.point"));
  EXPECT_FALSE(CrashPointArmed("no.such.point"));
  ASSERT_TRUE(ArmCrashPoint("store.writer.pre_rename"));
  EXPECT_TRUE(CrashPointArmed("store.writer.pre_rename"));
  EXPECT_FALSE(CrashPointArmed("store.writer.pre_fsync"));
  DisarmCrashPoints();
  EXPECT_FALSE(CrashPointArmed("store.writer.pre_rename"));
}

TEST_F(IoTest, CrashPointExitsWithTheHarnessCodeOnlyWhenArmed) {
  CrashPoint("store.writer.pre_rename");  // unarmed: returns
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    if (!ArmCrashPoint("store.writer.pre_rename")) ::_exit(10);
    CrashPoint("store.writer.mid_write");   // different point: no-op
    CrashPoint("store.writer.pre_rename");  // dies here
    ::_exit(11);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), kCrashExitCode);
}

TEST_F(IoTest, RegistryIsSortedUnique) {
  for (std::size_t i = 1; i < kCrashPoints.size(); ++i) {
    EXPECT_LT(kCrashPoints[i - 1], kCrashPoints[i]);
  }
}

// --- Env configuration -------------------------------------------------------

TEST_F(IoTest, ConfigureFromEnvInstallsPlanAndCrashPoint) {
  ASSERT_EQ(::setenv("LOCKDOWN_IO_FAULT", "5:enospc@write#1", 1), 0);
  ASSERT_EQ(::setenv("LOCKDOWN_IO_CRASH_AT", "store.writer.pre_fsync", 1), 0);
  EXPECT_EQ(ConfigureFromEnv(), "");
  EXPECT_TRUE(FaultInjectionEnabled());
  EXPECT_TRUE(CrashPointArmed("store.writer.pre_fsync"));
  ::unsetenv("LOCKDOWN_IO_FAULT");
  ::unsetenv("LOCKDOWN_IO_CRASH_AT");
}

TEST_F(IoTest, ConfigureFromEnvNamesTheBadVariable) {
  ASSERT_EQ(::setenv("LOCKDOWN_IO_FAULT", "not-a-spec", 1), 0);
  EXPECT_NE(ConfigureFromEnv().find("LOCKDOWN_IO_FAULT"), std::string::npos);
  ::unsetenv("LOCKDOWN_IO_FAULT");

  ASSERT_EQ(::setenv("LOCKDOWN_IO_CRASH_AT", "bogus.point", 1), 0);
  EXPECT_NE(ConfigureFromEnv().find("LOCKDOWN_IO_CRASH_AT"), std::string::npos);
  ::unsetenv("LOCKDOWN_IO_CRASH_AT");

  ::unsetenv("LOCKDOWN_IO_FAULT");
  EXPECT_EQ(ConfigureFromEnv(), "");
}

// --- Observability -----------------------------------------------------------

TEST_F(IoTest, RetryAndInjectionCountersAdvance) {
  obs::SetMetricsEnabled(true);
  const auto before = obs::SnapshotMetrics();
  SetFaultPlan(MustParse("1:eintr@write#1"));
  File f = File::Create(Path("t.bin"));
  f.WriteAll("x");  // one injected EINTR, one retry
  f.Close();
  const auto after = obs::SnapshotMetrics();
  obs::SetMetricsEnabled(false);
  EXPECT_EQ(CounterValueOf(after, "io/faults_injected") -
                CounterValueOf(before, "io/faults_injected"),
            1u);
  EXPECT_EQ(CounterValueOf(after, "io/retries") -
                CounterValueOf(before, "io/retries"),
            1u);
}

}  // namespace
}  // namespace lockdown::io
