#include "net/allocator.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lockdown::net {
namespace {

TEST(BlockAllocator, SkipsNetworkAddress) {
  BlockAllocator a(Cidr(Ipv4Address(10, 0, 0, 0), 24));
  EXPECT_EQ(a.Allocate(), Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(a.Allocate(), Ipv4Address(10, 0, 0, 2));
}

TEST(BlockAllocator, NoDuplicates) {
  BlockAllocator a(Cidr(Ipv4Address(10, 0, 0, 0), 24));
  std::unordered_set<std::uint32_t> seen;
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(seen.insert(a.Allocate().value()).second);
  }
}

TEST(BlockAllocator, ExhaustionThrows) {
  // /30 has 4 addresses; network and broadcast reserved -> 2 usable.
  BlockAllocator a(Cidr(Ipv4Address(10, 0, 0, 0), 30));
  EXPECT_EQ(a.Remaining(), 2u);
  (void)a.Allocate();
  (void)a.Allocate();
  EXPECT_EQ(a.Remaining(), 0u);
  EXPECT_THROW((void)a.Allocate(), std::length_error);
}

TEST(BlockAllocator, AllInsideBlock) {
  const Cidr block(Ipv4Address(172, 16, 4, 0), 22);
  BlockAllocator a(block);
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(block.Contains(a.Allocate()));
}

TEST(SubnetCarver, CarvesDisjointBlocks) {
  SubnetCarver carver(Cidr(Ipv4Address(52, 0, 0, 0), 8));
  const Cidr a = carver.Carve(24);
  const Cidr b = carver.Carve(24);
  EXPECT_EQ(a.base(), Ipv4Address(52, 0, 0, 0));
  EXPECT_EQ(b.base(), Ipv4Address(52, 0, 1, 0));
  EXPECT_FALSE(a.Contains(b.base()));
  EXPECT_FALSE(b.Contains(a.base()));
}

TEST(SubnetCarver, MixedSizes) {
  SubnetCarver carver(Cidr(Ipv4Address(52, 0, 0, 0), 16));
  const Cidr big = carver.Carve(20);   // 4096 addresses
  const Cidr small = carver.Carve(28); // 16 addresses
  EXPECT_EQ(big.base(), Ipv4Address(52, 0, 0, 0));
  EXPECT_EQ(small.base(), Ipv4Address(52, 0, 16, 0));
}

TEST(SubnetCarver, RejectsLargerThanSuper) {
  SubnetCarver carver(Cidr(Ipv4Address(52, 0, 0, 0), 16));
  EXPECT_THROW((void)carver.Carve(8), std::invalid_argument);
  EXPECT_THROW((void)carver.Carve(33), std::invalid_argument);
}

TEST(SubnetCarver, ExhaustionThrows) {
  SubnetCarver carver(Cidr(Ipv4Address(10, 0, 0, 0), 30));
  (void)carver.Carve(31);
  (void)carver.Carve(31);
  EXPECT_THROW((void)carver.Carve(31), std::length_error);
}

}  // namespace
}  // namespace lockdown::net
