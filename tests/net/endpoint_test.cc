#include "net/endpoint.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace lockdown::net {
namespace {

FiveTuple MakeTuple(std::uint32_t src, std::uint32_t dst, Port sp, Port dp,
                    Protocol proto = Protocol::kTcp) {
  return FiveTuple{Ipv4Address(src), Ipv4Address(dst), sp, dp, proto};
}

TEST(FiveTuple, EqualityAndOrdering) {
  const FiveTuple a = MakeTuple(1, 2, 3, 4);
  const FiveTuple b = MakeTuple(1, 2, 3, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, MakeTuple(1, 2, 3, 5));
  EXPECT_NE(a, MakeTuple(1, 2, 3, 4, Protocol::kUdp));
}

TEST(FiveTuple, HashDistinguishesFields) {
  FiveTupleHash h;
  const FiveTuple base = MakeTuple(1, 2, 3, 4);
  EXPECT_EQ(h(base), h(MakeTuple(1, 2, 3, 4)));
  EXPECT_NE(h(base), h(MakeTuple(2, 1, 3, 4)));
  EXPECT_NE(h(base), h(MakeTuple(1, 2, 4, 3)));
  EXPECT_NE(h(base), h(MakeTuple(1, 2, 3, 4, Protocol::kUdp)));
}

TEST(FiveTuple, HashQualityOnSequentialTuples) {
  // The flow table holds many near-identical tuples (same server, sequential
  // client ports); the hash must not collapse them.
  FiveTupleHash h;
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t ip = 0; ip < 100; ++ip) {
    for (Port p = 40000; p < 40100; ++p) {
      hashes.insert(h(MakeTuple(0x0A000000 + ip, 0x08080808, p, 443)));
    }
  }
  // Allow a handful of collisions out of 10,000.
  EXPECT_GT(hashes.size(), 9990u);
}

TEST(FiveTuple, ToStringFormat) {
  const FiveTuple t = MakeTuple(0x0A000001, 0x08080808, 40000, 443);
  EXPECT_EQ(t.ToString(), "10.0.0.1:40000 -> 8.8.8.8:443/tcp");
}

TEST(Protocol, Names) {
  EXPECT_STREQ(ToString(Protocol::kTcp), "tcp");
  EXPECT_STREQ(ToString(Protocol::kUdp), "udp");
}

}  // namespace
}  // namespace lockdown::net
