#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace lockdown::net {
namespace {

TEST(Ipv4Address, ParseAndFormat) {
  const auto ip = Ipv4Address::Parse("192.168.1.42");
  ASSERT_TRUE(ip.has_value());
  EXPECT_EQ(ip->ToString(), "192.168.1.42");
  EXPECT_EQ(ip->value(), 0xC0A8012Au);
}

TEST(Ipv4Address, ParseEdges) {
  EXPECT_EQ(Ipv4Address::Parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Address::Parse(""));
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::Parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Address::Parse("1..2.3"));
  EXPECT_FALSE(Ipv4Address::Parse("1.2.3.4 "));
}

TEST(Ipv4Address, OctetConstructorMatchesParse) {
  EXPECT_EQ(Ipv4Address(10, 16, 0, 1), *Ipv4Address::Parse("10.16.0.1"));
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_LT(Ipv4Address(9, 255, 255, 255), Ipv4Address(10, 0, 0, 0));
}

TEST(Cidr, ContainsAndMasking) {
  const Cidr c(Ipv4Address(10, 16, 3, 99), 14);  // base masked to 10.16.0.0
  EXPECT_EQ(c.base(), Ipv4Address(10, 16, 0, 0));
  EXPECT_TRUE(c.Contains(Ipv4Address(10, 16, 0, 1)));
  EXPECT_TRUE(c.Contains(Ipv4Address(10, 19, 255, 255)));
  EXPECT_FALSE(c.Contains(Ipv4Address(10, 20, 0, 0)));
  EXPECT_FALSE(c.Contains(Ipv4Address(10, 15, 255, 255)));
}

TEST(Cidr, ParseAndFormat) {
  const auto c = Cidr::Parse("172.16.0.0/12");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->ToString(), "172.16.0.0/12");
  EXPECT_EQ(c->size(), 1u << 20);
}

TEST(Cidr, ParseRejectsMalformed) {
  EXPECT_FALSE(Cidr::Parse("10.0.0.0"));
  EXPECT_FALSE(Cidr::Parse("10.0.0.0/33"));
  EXPECT_FALSE(Cidr::Parse("10.0.0.0/"));
  EXPECT_FALSE(Cidr::Parse("bad/8"));
}

TEST(Cidr, SlashZeroCoversEverything) {
  const Cidr all(Ipv4Address(0), 0);
  EXPECT_TRUE(all.Contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(all.Contains(Ipv4Address(0)));
}

TEST(Cidr, Slash32IsSingleHost) {
  const Cidr host(Ipv4Address(8, 8, 8, 8), 32);
  EXPECT_EQ(host.size(), 1u);
  EXPECT_TRUE(host.Contains(Ipv4Address(8, 8, 8, 8)));
  EXPECT_FALSE(host.Contains(Ipv4Address(8, 8, 8, 9)));
}

TEST(Cidr, AtIndexing) {
  const Cidr c(Ipv4Address(10, 0, 0, 0), 24);
  EXPECT_EQ(c.At(0), Ipv4Address(10, 0, 0, 0));
  EXPECT_EQ(c.At(255), Ipv4Address(10, 0, 0, 255));
}

}  // namespace
}  // namespace lockdown::net
