#include "net/mac.h"

#include <gtest/gtest.h>

namespace lockdown::net {
namespace {

TEST(MacAddress, ParseAndFormat) {
  const auto mac = MacAddress::Parse("a4:83:e7:12:34:56");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->ToString(), "a4:83:e7:12:34:56");
}

TEST(MacAddress, ParseUppercase) {
  const auto mac = MacAddress::Parse("A4:83:E7:12:34:56");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->ToString(), "a4:83:e7:12:34:56");
}

TEST(MacAddress, ParseRejectsMalformed) {
  EXPECT_FALSE(MacAddress::Parse(""));
  EXPECT_FALSE(MacAddress::Parse("a4:83:e7:12:34"));
  EXPECT_FALSE(MacAddress::Parse("a4:83:e7:12:34:5"));
  EXPECT_FALSE(MacAddress::Parse("a4-83-e7-12-34-56"));
  EXPECT_FALSE(MacAddress::Parse("g4:83:e7:12:34:56"));
  EXPECT_FALSE(MacAddress::Parse("a4:83:e7:12:34:56:78"));
}

TEST(MacAddress, OuiExtraction) {
  // a4:83:e7 is an Apple OUI.
  const auto mac = MacAddress::Parse("a4:83:e7:00:00:01");
  ASSERT_TRUE(mac.has_value());
  EXPECT_EQ(mac->oui(), 0xA483E7u);
}

TEST(MacAddress, FromOuiRoundTrip) {
  const MacAddress mac = MacAddress::FromOui(0xA483E7, 0x123456);
  EXPECT_EQ(mac.oui(), 0xA483E7u);
  EXPECT_EQ(mac.ToString(), "a4:83:e7:12:34:56");
}

TEST(MacAddress, FromOuiMasksOverflow) {
  // Bits above 24 in either argument must not leak into the other half.
  const MacAddress mac = MacAddress::FromOui(0xFF000001, 0xFF000002);
  EXPECT_EQ(mac.oui(), 0x000001u);
  EXPECT_EQ(mac.value() & 0xFFFFFF, 0x000002u);
}

TEST(MacAddress, Ordering) {
  EXPECT_LT(MacAddress(1), MacAddress(2));
  EXPECT_EQ(MacAddress(7), MacAddress(7));
}

}  // namespace
}  // namespace lockdown::net
