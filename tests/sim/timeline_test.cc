#include "sim/timeline.h"

#include <gtest/gtest.h>

namespace lockdown::sim {
namespace {

using util::StudyCalendar;

int Day(int month, int day) {
  return StudyCalendar::DayIndex(util::CivilDate{2020, month, day});
}

TEST(PandemicTimeline, PhaseBoundaries) {
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(2, 1)), Phase::kPrePandemic);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 3)), Phase::kPrePandemic);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 4)), Phase::kStateOfEmergency);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 10)), Phase::kStateOfEmergency);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 11)), Phase::kPandemicDeclared);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 18)), Phase::kPandemicDeclared);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 19)), Phase::kStayAtHome);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 21)), Phase::kStayAtHome);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 22)), Phase::kAcademicBreak);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 29)), Phase::kAcademicBreak);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(3, 30)), Phase::kOnlineTerm);
  EXPECT_EQ(PandemicTimeline::PhaseOf(Day(5, 31)), Phase::kOnlineTerm);
}

TEST(PandemicTimeline, ClampsOutsideStudy) {
  EXPECT_EQ(PandemicTimeline::PhaseOf(-10), Phase::kPrePandemic);
  EXPECT_EQ(PandemicTimeline::PhaseOf(10000), Phase::kOnlineTerm);
}

TEST(PandemicTimeline, ShutdownFlag) {
  EXPECT_FALSE(PandemicTimeline::IsShutdown(Day(3, 18)));
  EXPECT_TRUE(PandemicTimeline::IsShutdown(Day(3, 19)));
  EXPECT_TRUE(PandemicTimeline::IsShutdown(Day(4, 15)));
}

TEST(PandemicTimeline, ClassesInSession) {
  EXPECT_TRUE(PandemicTimeline::ClassesInSession(Day(2, 10)));
  EXPECT_FALSE(PandemicTimeline::ClassesInSession(Day(3, 25)));  // break
  EXPECT_TRUE(PandemicTimeline::ClassesInSession(Day(4, 10)));
}

TEST(PandemicTimeline, MonthOf) {
  EXPECT_EQ(PandemicTimeline::MonthOf(0), 2);
  EXPECT_EQ(PandemicTimeline::MonthOf(Day(3, 1)), 3);
  EXPECT_EQ(PandemicTimeline::MonthOf(Day(5, 31)), 5);
}

TEST(PandemicTimeline, TimestampOverload) {
  const auto ts = util::TimestampOf(util::CivilDateTime{{2020, 3, 25}, 14, 0, 0});
  EXPECT_EQ(PandemicTimeline::PhaseOf(ts), Phase::kAcademicBreak);
}

TEST(PandemicTimeline, PhaseNames) {
  EXPECT_STREQ(ToString(Phase::kPrePandemic), "pre-pandemic");
  EXPECT_STREQ(ToString(Phase::kOnlineTerm), "online-term");
}

}  // namespace
}  // namespace lockdown::sim
