#include "sim/generator.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "sim/timeline.h"

namespace lockdown::sim {
namespace {

using util::StudyCalendar;

GeneratorConfig SmallConfig(int students = 60, std::uint64_t seed = 2020) {
  GeneratorConfig cfg;
  cfg.population.num_students = students;
  cfg.population.seed = seed;
  return cfg;
}

TEST(TrafficGenerator, EventsNonDecreasingWithinTolerance) {
  TrafficGenerator gen(SmallConfig());
  util::Timestamp last = 0;
  std::uint64_t regressions = 0;
  gen.Run([&](const flow::TapEvent& ev) {
    // Sessions spanning midnight may deliver up to a few hours late relative
    // to the next day's first events; anything larger is an ordering bug.
    if (ev.ts + 12 * util::kSecondsPerHour < last) ++regressions;
    last = std::max(last, ev.ts);
  });
  EXPECT_EQ(regressions, 0u);
}

TEST(TrafficGenerator, DeterministicAcrossRuns) {
  std::vector<flow::TapEvent> a, b;
  TrafficGenerator g1(SmallConfig());
  g1.Run([&a](const flow::TapEvent& ev) { a.push_back(ev); });
  TrafficGenerator g2(SmallConfig());
  g2.Run([&b](const flow::TapEvent& ev) { b.push_back(ev); });
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].tuple, b[i].tuple);
    EXPECT_EQ(a[i].bytes_down, b[i].bytes_down);
  }
  EXPECT_EQ(g1.dhcp_log().size(), g2.dhcp_log().size());
  EXPECT_EQ(g1.dns_log().size(), g2.dns_log().size());
}

TEST(TrafficGenerator, ClientsComeFromCampusPool) {
  GeneratorConfig cfg = SmallConfig(40);
  cfg.last_day = 20;  // keep it quick
  TrafficGenerator gen(cfg);
  gen.Run([&cfg](const flow::TapEvent& ev) {
    EXPECT_TRUE(cfg.client_pool.Contains(ev.tuple.src_ip));
    EXPECT_FALSE(cfg.client_pool.Contains(ev.tuple.dst_ip));
  });
}

TEST(TrafficGenerator, ServersBelongToCatalog) {
  GeneratorConfig cfg = SmallConfig(40);
  cfg.last_day = 10;
  TrafficGenerator gen(cfg);
  const auto& catalog = gen.catalog();
  gen.Run([&catalog](const flow::TapEvent& ev) {
    EXPECT_TRUE(catalog.FindByIp(ev.tuple.dst_ip).has_value())
        << ev.tuple.dst_ip.ToString();
  });
}

TEST(TrafficGenerator, DepartedStudentsGoSilent) {
  GeneratorConfig cfg = SmallConfig(120);
  TrafficGenerator gen(cfg);
  // Track last activity day per client IP owner via DHCP (MAC-level).
  gen.Run([](const flow::TapEvent&) {});
  const Population& pop = gen.population();
  // Find a departing student's devices and assert no lease activity after
  // departure (leases are acquired only when traffic is generated).
  std::unordered_set<std::uint64_t> departed_macs;
  std::unordered_map<std::uint64_t, int> departure_by_mac;
  for (const SimDevice& d : pop.devices()) {
    const StudentPersona& s = pop.student_of(d);
    if (s.leaves_campus) {
      departed_macs.insert(d.mac.value());
      departure_by_mac[d.mac.value()] = s.departure_day;
    }
  }
  ASSERT_FALSE(departed_macs.empty());
  for (const dhcp::Lease& lease : gen.dhcp_log()) {
    const auto it = departure_by_mac.find(lease.mac.value());
    if (it == departure_by_mac.end()) continue;
    EXPECT_LT(StudyCalendar::DayIndex(lease.start), it->second)
        << lease.mac.ToString();
  }
}

TEST(TrafficGenerator, NewDevicesSilentBeforeFirstActiveDay) {
  TrafficGenerator gen(SmallConfig(200));
  gen.Run([](const flow::TapEvent&) {});
  const Population& pop = gen.population();
  std::unordered_map<std::uint64_t, int> first_day_by_mac;
  for (const SimDevice& d : pop.devices()) {
    if (d.first_active_day > 0) first_day_by_mac[d.mac.value()] = d.first_active_day;
  }
  for (const dhcp::Lease& lease : gen.dhcp_log()) {
    const auto it = first_day_by_mac.find(lease.mac.value());
    if (it == first_day_by_mac.end()) continue;
    EXPECT_GE(StudyCalendar::DayIndex(lease.start), it->second);
  }
}

TEST(TrafficGenerator, DnsLogCoversNamedTraffic) {
  GeneratorConfig cfg = SmallConfig(40);
  cfg.last_day = 10;
  TrafficGenerator gen(cfg);
  gen.Run([](const flow::TapEvent&) {});
  EXPECT_FALSE(gen.dns_log().empty());
  // Every logged resolution answers with an address of the owning service.
  const auto& catalog = gen.catalog();
  for (const dns::Resolution& r : gen.dns_log()) {
    const auto svc = catalog.FindByHost(r.qname);
    ASSERT_TRUE(svc.has_value()) << r.qname;
    EXPECT_TRUE(catalog.Get(*svc).block.Contains(r.answer));
  }
}

TEST(TrafficGenerator, UaSightingsReferenceRealCorpus) {
  TrafficGenerator gen(SmallConfig(80));
  gen.Run([](const flow::TapEvent&) {});
  ASSERT_FALSE(gen.ua_sightings().empty());
  for (const UaSighting& ua : gen.ua_sightings()) {
    EXPECT_FALSE(ua.user_agent.empty());
    EXPECT_TRUE(gen.config().client_pool.Contains(ua.client_ip));
  }
}

TEST(TrafficGenerator, DayWindowRestrictsOutput) {
  GeneratorConfig cfg = SmallConfig(40);
  cfg.first_day = 10;
  cfg.last_day = 12;
  TrafficGenerator gen(cfg);
  util::Timestamp lo = StudyCalendar::StartTs() + 10 * util::kSecondsPerDay;
  util::Timestamp hi = StudyCalendar::StartTs() + 13 * util::kSecondsPerDay;
  std::uint64_t n = 0;
  gen.Run([&](const flow::TapEvent& ev) {
    ++n;
    EXPECT_GE(ev.ts, lo);
    EXPECT_LT(ev.ts, hi);  // sessions can spill a little past midnight
  });
  EXPECT_GT(n, 0u);
}

TEST(TrafficGenerator, ActiveDeviceCountCollapsesMidMarch) {
  TrafficGenerator gen(SmallConfig(150));
  // Active MACs per day via DHCP acquisitions.
  gen.Run([](const flow::TapEvent&) {});
  std::vector<std::unordered_set<std::uint64_t>> daily(
      static_cast<std::size_t>(StudyCalendar::NumDays()));
  for (const dhcp::Lease& lease : gen.dhcp_log()) {
    const int day = StudyCalendar::DayIndex(lease.start);
    if (day >= 0 && day < StudyCalendar::NumDays()) {
      daily[static_cast<std::size_t>(day)].insert(lease.mac.value());
    }
  }
  const std::size_t feb_peak = daily[12].size();   // mid-February
  const std::size_t may = daily[100].size();       // mid-May
  EXPECT_GT(feb_peak, 2 * may);
}

}  // namespace
}  // namespace lockdown::sim
