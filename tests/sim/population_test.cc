#include "sim/population.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/parameters.h"
#include "world/oui_db.h"

namespace lockdown::sim {
namespace {

PopulationConfig Config(int n = 800, std::uint64_t seed = 2020) {
  return PopulationConfig{n, seed};
}

TEST(Population, Deterministic) {
  Population a(Config());
  Population b(Config());
  ASSERT_EQ(a.devices().size(), b.devices().size());
  for (std::size_t i = 0; i < a.devices().size(); ++i) {
    EXPECT_EQ(a.devices()[i].mac, b.devices()[i].mac);
    EXPECT_EQ(a.devices()[i].kind, b.devices()[i].kind);
  }
  for (std::size_t i = 0; i < a.students().size(); ++i) {
    EXPECT_EQ(a.students()[i].residency, b.students()[i].residency);
    EXPECT_EQ(a.students()[i].departure_day, b.students()[i].departure_day);
  }
}

TEST(Population, DifferentSeedsDiffer) {
  Population a(Config(800, 1));
  Population b(Config(800, 2));
  int same_mac = 0;
  const std::size_t n = std::min(a.devices().size(), b.devices().size());
  for (std::size_t i = 0; i < n; ++i) {
    same_mac += (a.devices()[i].mac == b.devices()[i].mac);
  }
  EXPECT_LT(static_cast<double>(same_mac), 0.7 * static_cast<double>(n));
}

TEST(Population, InternationalShareNearConfig) {
  Population pop(Config(2000));
  std::size_t intl = 0;
  for (const auto& s : pop.students()) {
    intl += s.residency == Residency::kInternational;
  }
  EXPECT_NEAR(static_cast<double>(intl) / 2000.0, params::kInternationalShare, 0.03);
}

TEST(Population, InternationalsStayMoreOften) {
  Population pop(Config(3000));
  double intl_stay = 0, intl_n = 0, dom_stay = 0, dom_n = 0;
  for (const auto& s : pop.students()) {
    if (s.residency == Residency::kInternational) {
      ++intl_n;
      intl_stay += !s.leaves_campus;
    } else {
      ++dom_n;
      dom_stay += !s.leaves_campus;
    }
  }
  EXPECT_GT(intl_stay / intl_n, dom_stay / dom_n);
  EXPECT_NEAR(dom_stay / dom_n, 1.0 - params::kDomesticLeaveProb, 0.03);
}

TEST(Population, DepartureDaysInWindows) {
  Population pop(Config(2000));
  for (const auto& s : pop.students()) {
    if (!s.leaves_campus) {
      EXPECT_EQ(s.departure_day, -1);
      continue;
    }
    EXPECT_GE(s.departure_day, params::kDepartureWindows.front().first_day);
    EXPECT_LE(s.departure_day, params::kDepartureWindows.back().last_day);
  }
}

TEST(Population, DepartureBulkDuringExodus) {
  Population pop(Config(3000));
  int exodus = 0, total = 0;
  for (const auto& s : pop.students()) {
    if (!s.leaves_campus) continue;
    ++total;
    if (s.departure_day >= 40 && s.departure_day <= 50) ++exodus;
  }
  // The 3/12-3/22 window carries weight 5 of ~7.5: most departures land there.
  EXPECT_GT(static_cast<double>(exodus) / total, 0.55);
}

TEST(Population, MacsUnique) {
  Population pop(Config(2000));
  std::set<std::uint64_t> macs;
  for (const auto& d : pop.devices()) {
    EXPECT_TRUE(macs.insert(d.mac.value()).second) << d.mac.ToString();
  }
}

TEST(Population, DeviceOwnershipRatesPlausible) {
  Population pop(Config(3000));
  const double n = 3000.0;
  EXPECT_NEAR(pop.CountKind(DeviceKind::kPhone) / n, params::kOwnsPhone, 0.03);
  EXPECT_NEAR(pop.CountKind(DeviceKind::kLaptop) / n, params::kOwnsLaptop, 0.03);
  EXPECT_NEAR(pop.CountKind(DeviceKind::kSwitch) / n, params::kOwnsSwitch, 0.03);
  // ~2.5-3 devices per student overall (paper: 32k devices, "several
  // thousand" students).
  const double per_student = static_cast<double>(pop.devices().size()) / n;
  EXPECT_GT(per_student, 2.6);
  EXPECT_LT(per_student, 4.2);
}

TEST(Population, RandomizedMacsAreLocallyAdministered) {
  Population pop(Config(2000));
  int randomized = 0;
  for (const auto& d : pop.devices()) {
    if (d.randomized_mac) {
      ++randomized;
      EXPECT_TRUE(world::OuiDatabase::IsLocallyAdministered(d.mac));
    }
  }
  EXPECT_GT(randomized, 0);
}

TEST(Population, VendorOuisMatchDeviceKind) {
  Population pop(Config(1500));
  const world::OuiDatabase& ouis = world::OuiDatabase::Default();
  for (const auto& d : pop.devices()) {
    if (d.randomized_mac || d.kind != DeviceKind::kSwitch) continue;
    const auto info = ouis.Lookup(d.mac);
    ASSERT_TRUE(info.has_value());
    EXPECT_EQ(info->hint, world::VendorHint::kNintendo);
  }
}

TEST(Population, NewDevicesOnlyForStayers) {
  Population pop(Config(3000));
  int new_devices = 0;
  for (const auto& d : pop.devices()) {
    if (d.first_active_day == 0) continue;
    ++new_devices;
    EXPECT_FALSE(pop.student_of(d).leaves_campus);
    EXPECT_GE(d.first_active_day, 60);   // April onward
    EXPECT_LE(d.first_active_day, 104);  // leaves >= 14 days of term
  }
  EXPECT_GT(new_devices, 0);
}

TEST(Population, ForeignShareOnlyForInternationals) {
  Population pop(Config(1500));
  for (const auto& s : pop.students()) {
    if (s.residency == Residency::kDomestic) {
      EXPECT_EQ(s.foreign_share, 0.0);
      EXPECT_EQ(s.home_country, "US");
    } else {
      EXPECT_GT(s.foreign_share, 0.0);
      EXPECT_NE(s.home_country, "US");
    }
  }
}

TEST(Population, TrueClassConsistentWithKind) {
  Population pop(Config(1000));
  for (const auto& d : pop.devices()) {
    switch (d.kind) {
      case DeviceKind::kPhone:
      case DeviceKind::kTablet:
        EXPECT_EQ(d.true_class, TrueClass::kMobile);
        break;
      case DeviceKind::kLaptop:
      case DeviceKind::kDesktop:
        EXPECT_EQ(d.true_class, TrueClass::kLaptopDesktop);
        break;
      case DeviceKind::kIotSmall:
      case DeviceKind::kIotTv:
        EXPECT_EQ(d.true_class, TrueClass::kIot);
        break;
      case DeviceKind::kSwitch:
      case DeviceKind::kConsoleOther:
        EXPECT_EQ(d.true_class, TrueClass::kGameConsole);
        break;
      case DeviceKind::kMiscGadget:
        EXPECT_TRUE(d.true_class == TrueClass::kMobile ||
                    d.true_class == TrueClass::kIot);
        break;
    }
  }
}

}  // namespace
}  // namespace lockdown::sim
