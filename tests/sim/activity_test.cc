#include "sim/activity.h"

#include <gtest/gtest.h>

#include "sim/parameters.h"
#include "sim/timeline.h"
#include "util/time.h"

namespace lockdown::sim {
namespace {

using util::StudyCalendar;

class ActivityTest : public ::testing::Test {
 protected:
  ActivityTest()
      : pop_(PopulationConfig{400, 7}),
        model_(world::ServiceCatalog::Default()) {}

  const SimDevice* FindDevice(DeviceKind kind,
                              Residency residency = Residency::kDomestic) const {
    for (const SimDevice& d : pop_.devices()) {
      if (d.kind == kind && pop_.student_of(d).residency == residency) return &d;
    }
    return nullptr;
  }

  std::vector<SessionPlan> Plan(const SimDevice& dev, int day,
                                std::uint64_t seed = 1) const {
    util::Pcg32 rng(seed);
    std::vector<SessionPlan> out;
    model_.PlanDay(pop_, dev, day, rng, out);
    return out;
  }

  Population pop_;
  ActivityModel model_;
};

int Day(int month, int day) {
  return StudyCalendar::DayIndex(util::CivilDate{2020, month, day});
}

TEST_F(ActivityTest, SessionsFallOnTheRequestedDay) {
  const SimDevice* phone = FindDevice(DeviceKind::kPhone);
  ASSERT_NE(phone, nullptr);
  const int day = Day(2, 10);
  for (const SessionPlan& p : Plan(*phone, day)) {
    EXPECT_EQ(StudyCalendar::DayIndex(p.start), day);
    EXPECT_GT(p.minutes, 0.0);
    EXPECT_FALSE(p.flows.empty());
  }
}

TEST_F(ActivityTest, FlowFractionsValid) {
  const SimDevice* laptop = FindDevice(DeviceKind::kLaptop);
  ASSERT_NE(laptop, nullptr);
  for (const SessionPlan& p : Plan(*laptop, Day(4, 15))) {
    for (const FlowPlan& f : p.flows) {
      EXPECT_GE(f.start_frac, 0.0);
      EXPECT_LE(f.end_frac, 1.0);
      EXPECT_LT(f.start_frac, f.end_frac);
      EXPECT_NE(f.service, world::kInvalidService);
      if (!f.raw_ip) {
        EXPECT_FALSE(f.host.empty());
      }
    }
  }
}

TEST_F(ActivityTest, ZoomAppearsOnlineTermWeekdays) {
  const SimDevice* laptop = FindDevice(DeviceKind::kLaptop);
  ASSERT_NE(laptop, nullptr);
  const auto& cat = world::ServiceCatalog::Default();
  const auto zoom_ids = {*cat.FindByName("zoom"), *cat.FindByName("zoom-media"),
                         *cat.FindByName("zoom-media-legacy")};
  auto count_zoom = [&](int day) {
    int n = 0;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      for (const SessionPlan& p : Plan(*laptop, day, seed)) {
        for (const FlowPlan& f : p.flows) {
          for (auto id : zoom_ids) {
            if (f.service == id) {
              ++n;
              goto next_plan;
            }
          }
        }
      next_plan:;
      }
    }
    return n;
  };
  const int pre = count_zoom(Day(2, 11));       // Tuesday pre-pandemic
  const int online = count_zoom(Day(4, 14));    // Tuesday online term
  const int weekend = count_zoom(Day(4, 18));   // Saturday online term
  const int break_day = count_zoom(Day(3, 25)); // Wednesday of break
  EXPECT_GT(online, pre * 4);
  EXPECT_GT(online, weekend * 2);
  EXPECT_GT(online, break_day * 4);
}

TEST_F(ActivityTest, ZoomSessionsDuringClassHours) {
  const SimDevice* laptop = FindDevice(DeviceKind::kLaptop);
  ASSERT_NE(laptop, nullptr);
  const auto& cat = world::ServiceCatalog::Default();
  const auto zoom = *cat.FindByName("zoom");
  const auto media = *cat.FindByName("zoom-media");
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (const SessionPlan& p : Plan(*laptop, Day(4, 15), seed)) {
      bool is_zoom = false;
      for (const FlowPlan& f : p.flows) {
        is_zoom |= (f.service == zoom || f.service == media);
      }
      if (!is_zoom) continue;
      const int hour = util::HourOf(p.start);
      EXPECT_GE(hour, 8);
      EXPECT_LE(hour, 18);
    }
  }
}

TEST_F(ActivityTest, ZoomMediaRidesRawIpUdp) {
  const SimDevice* laptop = FindDevice(DeviceKind::kLaptop);
  ASSERT_NE(laptop, nullptr);
  const auto& cat = world::ServiceCatalog::Default();
  const auto media = *cat.FindByName("zoom-media");
  const auto legacy = *cat.FindByName("zoom-media-legacy");
  bool saw_media = false;
  for (std::uint64_t seed = 0; seed < 40 && !saw_media; ++seed) {
    for (const SessionPlan& p : Plan(*laptop, Day(4, 15), seed)) {
      for (const FlowPlan& f : p.flows) {
        if (f.service == media || f.service == legacy) {
          saw_media = true;
          EXPECT_TRUE(f.raw_ip);
          EXPECT_TRUE(f.host.empty());
          EXPECT_EQ(f.proto, net::Protocol::kUdp);
          EXPECT_EQ(f.port, 8801);
        }
      }
    }
  }
  EXPECT_TRUE(saw_media);
}

TEST_F(ActivityTest, IotSmallTalksOnlyToItsBackend) {
  const SimDevice* iot = FindDevice(DeviceKind::kIotSmall);
  ASSERT_NE(iot, nullptr);
  const auto& cat = world::ServiceCatalog::Default();
  std::set<world::ServiceId> services;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    for (const SessionPlan& p : Plan(*iot, Day(3, 10), seed)) {
      for (const FlowPlan& f : p.flows) services.insert(f.service);
    }
  }
  ASSERT_FALSE(services.empty());
  for (auto id : services) {
    EXPECT_EQ(cat.Get(id).category, world::Category::kIotBackend);
  }
  // Backend choice is stable across days.
  std::set<world::ServiceId> services2;
  for (const SessionPlan& p : Plan(*iot, Day(4, 20))) {
    for (const FlowPlan& f : p.flows) services2.insert(f.service);
  }
  for (auto id : services2) EXPECT_TRUE(services.count(id));
}

TEST_F(ActivityTest, SwitchDailyConnectivityTest) {
  const SimDevice* sw = FindDevice(DeviceKind::kSwitch);
  ASSERT_NE(sw, nullptr);
  const auto plans = Plan(*sw, Day(2, 5));
  bool saw_conntest = false;
  for (const SessionPlan& p : plans) {
    for (const FlowPlan& f : p.flows) {
      if (f.host == "conntest.nintendowifi.net") saw_conntest = true;
    }
  }
  EXPECT_TRUE(saw_conntest);
}

TEST_F(ActivityTest, SwitchGameplayPeaksDuringBreak) {
  const SimDevice* sw = FindDevice(DeviceKind::kSwitch);
  ASSERT_NE(sw, nullptr);
  const auto& cat = world::ServiceCatalog::Default();
  const auto gameplay = *cat.FindByName("nintendo-gameplay");
  auto gameplay_minutes = [&](int day) {
    double total = 0;
    for (std::uint64_t seed = 0; seed < 60; ++seed) {
      for (const SessionPlan& p : Plan(*sw, day, seed)) {
        for (const FlowPlan& f : p.flows) {
          if (f.service == gameplay) {
            total += p.minutes;
            break;
          }
        }
      }
    }
    return total;
  };
  const double pre = gameplay_minutes(Day(2, 12));
  const double brk = gameplay_minutes(Day(3, 25));
  EXPECT_GT(brk, pre * 1.5);
}

TEST_F(ActivityTest, SwitchUsesOnlyNintendoServices) {
  const SimDevice* sw = FindDevice(DeviceKind::kSwitch);
  ASSERT_NE(sw, nullptr);
  const auto& cat = world::ServiceCatalog::Default();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    for (const SessionPlan& p : Plan(*sw, Day(4, 10), seed)) {
      for (const FlowPlan& f : p.flows) {
        EXPECT_EQ(cat.Get(f.service).category, world::Category::kGamingConsole);
      }
    }
  }
}

TEST_F(ActivityTest, InternationalPhoneVisitsForeignServices) {
  const SimDevice* phone = FindDevice(DeviceKind::kPhone, Residency::kInternational);
  ASSERT_NE(phone, nullptr);
  const auto& cat = world::ServiceCatalog::Default();
  int foreign = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (const SessionPlan& p : Plan(*phone, Day(2, 10), seed)) {
      for (const FlowPlan& f : p.flows) {
        ++total;
        const auto& svc = cat.Get(f.service);
        if (svc.country != "US" && svc.country != "NL") ++foreign;
      }
    }
  }
  EXPECT_GT(total, 0);
  EXPECT_GT(foreign, 0);
}

TEST_F(ActivityTest, DomesticPhoneMostlyUsServices) {
  const SimDevice* phone = FindDevice(DeviceKind::kPhone, Residency::kDomestic);
  ASSERT_NE(phone, nullptr);
  const auto& cat = world::ServiceCatalog::Default();
  int foreign = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    for (const SessionPlan& p : Plan(*phone, Day(2, 10), seed)) {
      for (const FlowPlan& f : p.flows) {
        ++total;
        const auto& svc = cat.Get(f.service);
        if (svc.country != "US" && svc.country != "NL") ++foreign;
      }
    }
  }
  EXPECT_GT(total, 0);
  EXPECT_LT(static_cast<double>(foreign) / total, 0.1);
}

TEST_F(ActivityTest, InstagramSessionsIncludeSharedFacebookCdn) {
  // The structural property forcing the paper's disambiguation heuristic.
  const auto& cat = world::ServiceCatalog::Default();
  const auto ig = *cat.FindByName("instagram");
  const auto fb = *cat.FindByName("facebook");
  const SimDevice* phone = nullptr;
  for (const SimDevice& d : pop_.devices()) {
    if (d.kind == DeviceKind::kPhone && pop_.student_of(d).uses_instagram) {
      phone = &d;
      break;
    }
  }
  ASSERT_NE(phone, nullptr);
  bool found_ig_with_fbcdn = false;
  for (std::uint64_t seed = 0; seed < 40 && !found_ig_with_fbcdn; ++seed) {
    for (const SessionPlan& p : Plan(*phone, Day(2, 12), seed)) {
      bool has_ig = false, has_fb_domain = false;
      for (const FlowPlan& f : p.flows) {
        has_ig |= f.service == ig;
        has_fb_domain |= (f.service == fb && f.host == "fbcdn.net");
      }
      found_ig_with_fbcdn |= (has_ig && has_fb_domain);
    }
  }
  EXPECT_TRUE(found_ig_with_fbcdn);
}

TEST_F(ActivityTest, ThrowsOnCatalogWithoutRequiredServices) {
  const std::vector<world::ServiceSpec> specs = {
      {.name = "only", .category = world::Category::kWeb, .country = "US",
       .location = {}, .hosts = {"only.example"}}};
  world::ServiceCatalog tiny(specs);
  EXPECT_THROW(ActivityModel model(tiny), std::invalid_argument);
}

}  // namespace
}  // namespace lockdown::sim
