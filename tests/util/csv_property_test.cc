// Property tests for util/csv: randomized writer->reader round-trips over
// adversarial field content (delimiters, quotes, spaces, empty fields) for
// both TSV and CSV delimiters, serialization idempotence, and the parser's
// behavior on malformed documents (unbalanced quotes, CRLF, stray quotes).
//
// Known format limit, pinned below: ParseAll splits on physical newlines, so
// a quoted field containing '\n' does not survive a document round-trip —
// the generators therefore exclude '\n' from field content.
#include "util/csv.h"

#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>
#include <vector>

namespace lockdown::util {
namespace {

using Rows = std::vector<std::vector<std::string>>;

std::string RandomField(std::mt19937_64& rng, char delimiter) {
  // Heavy on the characters that exercise escaping.
  const std::string alphabet =
      std::string("abcXYZ019 _-.\"\"\"") + delimiter + delimiter;
  std::string s;
  const std::size_t len = rng() % 12;
  for (std::size_t i = 0; i < len; ++i) {
    s += alphabet[rng() % alphabet.size()];
  }
  return s;
}

Rows RandomRows(std::mt19937_64& rng, char delimiter) {
  Rows rows(1 + rng() % 8);
  for (auto& row : rows) {
    // >= 2 fields: a lone empty field renders as an empty line, which the
    // reader's trailing-blank-row trimming makes ambiguous (pinned in
    // TrailingEmptyRowsAreTrimmed below).
    row.resize(2 + rng() % 6);
    for (auto& f : row) f = RandomField(rng, delimiter);
  }
  return rows;
}

std::string Serialize(const Rows& rows, char delimiter) {
  std::ostringstream out;
  DelimitedWriter w(out, delimiter);
  for (const auto& row : rows) w.WriteRow(row);
  return out.str();
}

TEST(CsvProperty, RandomRowsRoundTrip) {
  for (const char delimiter : {'\t', ','}) {
    for (int trial = 0; trial < 50; ++trial) {
      std::mt19937_64 rng(100 * delimiter + trial);
      const Rows rows = RandomRows(rng, delimiter);
      const std::string doc = Serialize(rows, delimiter);
      const Rows back = DelimitedReader(delimiter).ParseAll(doc);
      ASSERT_EQ(back, rows) << "delimiter '" << delimiter << "' trial "
                            << trial << "\ndoc:\n" << doc;
    }
  }
}

TEST(CsvProperty, SerializationIsIdempotent) {
  // parse(write(parse(write(rows)))) adds nothing: one round trip is a fixed
  // point of the escaping.
  for (int trial = 0; trial < 50; ++trial) {
    std::mt19937_64 rng(7000 + trial);
    const Rows rows = RandomRows(rng, ',');
    const std::string once = Serialize(rows, ',');
    const Rows parsed = DelimitedReader(',').ParseAll(once);
    EXPECT_EQ(Serialize(parsed, ','), once) << "trial " << trial;
  }
}

TEST(CsvProperty, SingleRowRoundTripsThroughParseLine) {
  for (int trial = 0; trial < 50; ++trial) {
    std::mt19937_64 rng(8000 + trial);
    std::vector<std::string> row(1 + rng() % 8);
    for (auto& f : row) f = RandomField(rng, ',');
    std::ostringstream out;
    DelimitedWriter(out, ',').WriteRow(row);
    std::string line = out.str();
    ASSERT_FALSE(line.empty());
    line.pop_back();  // WriteRow's trailing '\n'
    EXPECT_EQ(DelimitedReader(',').ParseLine(line), row) << "trial " << trial;
  }
}

TEST(CsvProperty, AllEmptyFieldsRoundTrip) {
  const Rows rows = {{"", "", ""}, {"", ""}};
  const std::string doc = Serialize(rows, ',');
  EXPECT_EQ(doc, ",,\n,\n");
  EXPECT_EQ(DelimitedReader(',').ParseAll(doc), rows);
}

// --- Pinned parser behavior on inputs the writer never produces --------------

TEST(CsvProperty, TrailingEmptyRowsAreTrimmed) {
  // A document ending in blank lines loses them (and any [""] row): callers
  // relying on positional rows must not emit single-empty-field tails.
  const Rows back = DelimitedReader(',').ParseAll("a,b\n\n\n");
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0], (std::vector<std::string>{"a", "b"}));
}

TEST(CsvProperty, CrlfLinesAreAccepted) {
  const Rows back = DelimitedReader(',').ParseAll("a,b\r\nc,d\r\n");
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(back[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvProperty, UnterminatedQuoteConsumesRestOfLine) {
  // Malformed input: opening quote never closed. The parser treats the rest
  // of the line (including delimiters) as one field rather than crashing.
  const auto fields = DelimitedReader(',').ParseLine("\"abc,def");
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc,def");
}

TEST(CsvProperty, QuoteAfterFieldStartIsLiteral) {
  // A quote that does not open the field is field content, per the reader's
  // cur.empty() gate.
  const auto fields = DelimitedReader(',').ParseLine("ab\"cd,x");
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], "ab\"cd");
  EXPECT_EQ(fields[1], "x");
}

TEST(CsvProperty, RandomGarbageNeverCrashesParser) {
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    std::string doc;
    const std::size_t len = rng() % 64;
    for (std::size_t i = 0; i < len; ++i) {
      doc += static_cast<char>(rng() % 256);
    }
    const Rows rows = DelimitedReader(trial % 2 == 0 ? ',' : '\t').ParseAll(doc);
    // Weak sanity bound: no parse can invent more rows than input newlines+1.
    std::size_t newlines = 0;
    for (const char c : doc) newlines += c == '\n';
    EXPECT_LE(rows.size(), newlines + 1) << "trial " << trial;
  }
}

}  // namespace
}  // namespace lockdown::util
