#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numeric>
#include <vector>

namespace lockdown::util {
namespace {

TEST(Pcg32, DeterministicAcrossInstances) {
  Pcg32 a(42, 7);
  Pcg32 b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Pcg32, DifferentSeedsDiffer) {
  Pcg32 a(1);
  Pcg32 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 1);
  Pcg32 b(42, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(Pcg32, BoundedStaysInRange) {
  Pcg32 rng(3);
  for (std::uint32_t bound : {1u, 2u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.NextBounded(bound), bound);
  }
}

TEST(Pcg32, BoundedIsRoughlyUniform) {
  Pcg32 rng(11);
  std::array<int, 10> counts{};
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 10, kTrials / 10 * 0.1);
  }
}

TEST(Pcg32, DoubleInUnitInterval) {
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Pcg32, UniformIntInclusiveBounds) {
  Pcg32 rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, NormalMoments) {
  Pcg32 rng(17);
  constexpr int kTrials = 200000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < kTrials; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kTrials;
  const double var = sq / kTrials - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Pcg32, ExponentialMean) {
  Pcg32 rng(23);
  constexpr int kTrials = 200000;
  double sum = 0;
  for (int i = 0; i < kTrials; ++i) sum += rng.Exponential(5.0);
  EXPECT_NEAR(sum / kTrials, 5.0, 0.1);
}

TEST(Pcg32, PoissonMeanSmallAndLargeLambda) {
  Pcg32 rng(29);
  for (double lambda : {0.5, 3.0, 20.0, 100.0}) {
    constexpr int kTrials = 50000;
    double sum = 0;
    for (int i = 0; i < kTrials; ++i) sum += rng.Poisson(lambda);
    EXPECT_NEAR(sum / kTrials, lambda, lambda * 0.05 + 0.05) << "lambda=" << lambda;
  }
}

TEST(Pcg32, PoissonZeroLambda) {
  Pcg32 rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(Pcg32, LogNormalMedian) {
  Pcg32 rng(37);
  constexpr int kTrials = 100001;
  std::vector<double> xs(kTrials);
  for (double& x : xs) x = rng.LogNormal(2.0, 0.7);
  std::nth_element(xs.begin(), xs.begin() + kTrials / 2, xs.end());
  // Median of LogNormal(mu, sigma) is exp(mu).
  EXPECT_NEAR(xs[kTrials / 2], std::exp(2.0), std::exp(2.0) * 0.05);
}

TEST(Pcg32, BernoulliEdges) {
  Pcg32 rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(Pcg32, ForkIndependence) {
  Pcg32 parent(42);
  Pcg32 f1 = parent.Fork(1);
  Pcg32 f2 = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (f1.Next() == f2.Next());
  EXPECT_LT(same, 3);
}

TEST(SampleIndex, RespectsWeights) {
  Pcg32 rng(43);
  const std::array<double, 3> weights = {0.0, 1.0, 3.0};
  std::array<int, 3> counts{};
  constexpr int kTrials = 40000;
  for (int i = 0; i < kTrials; ++i) ++counts[SampleIndex(rng, weights)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.2);
}

TEST(Zipf, RankOneDominates) {
  Pcg32 rng(47);
  ZipfDistribution zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) ++counts[zipf.Sample(rng)];
  // With s = 1 and n = 1000, rank 1 carries ~1/H_1000 ~ 13.4% of mass.
  EXPECT_GT(counts[0], kTrials / 10);
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
}

TEST(Zipf, SingleElement) {
  Pcg32 rng(53);
  ZipfDistribution zipf(1, 1.2);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace lockdown::util
