#include "util/strings.h"

#include <gtest/gtest.h>

#include <array>
#include <cerrno>
#include <thread>
#include <vector>

namespace lockdown::util {
namespace {

TEST(Split, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = Split(",x,", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
}

TEST(Split, EmptyString) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Join, RoundTrip) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(Trim("  hello\t\n"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(ToLower, Ascii) {
  EXPECT_EQ(ToLower("Zoom.US"), "zoom.us");
  EXPECT_EQ(ToLower("already"), "already");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(StartsWith("facebook.com", "face"));
  EXPECT_FALSE(StartsWith("face", "facebook"));
  EXPECT_TRUE(EndsWith("cdn.tiktokv.com", ".com"));
  EXPECT_FALSE(EndsWith(".com", "cdn.com"));
}

TEST(DomainMatches, ExactAndSubdomain) {
  EXPECT_TRUE(DomainMatches("zoom.us", "zoom.us"));
  EXPECT_TRUE(DomainMatches("us04web.zoom.us", "zoom.us"));
  EXPECT_TRUE(DomainMatches("a.b.c.zoom.us", "zoom.us"));
}

TEST(DomainMatches, RejectsSuffixWithoutLabelBoundary) {
  // The classic signature pitfall the paper's method must avoid.
  EXPECT_FALSE(DomainMatches("notzoom.us", "zoom.us"));
  EXPECT_FALSE(DomainMatches("zoom.us.evil.com", "zoom.us"));
  EXPECT_FALSE(DomainMatches("us", "zoom.us"));
}

TEST(LastLabels, Extraction) {
  EXPECT_EQ(LastLabels("a.b.facebook.com", 2), "facebook.com");
  EXPECT_EQ(LastLabels("facebook.com", 2), "facebook.com");
  EXPECT_EQ(LastLabels("com", 2), "com");
  EXPECT_EQ(LastLabels("x.y.z", 1), "z");
  EXPECT_EQ(LastLabels("x.y.z", 0), "");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(FormatBytes(512), "512.00 B");
  EXPECT_EQ(FormatBytes(1500), "1.50 KB");
  EXPECT_EQ(FormatBytes(2.5e9), "2.50 GB");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(10.0, 0), "10");
}

TEST(ErrnoString, KnownErrnosAreNonEmptyAndDistinct) {
  const std::string enoent = ErrnoString(ENOENT);
  const std::string eacces = ErrnoString(EACCES);
  EXPECT_FALSE(enoent.empty());
  EXPECT_FALSE(eacces.empty());
  EXPECT_NE(enoent, eacces);
}

// std::strerror shares one static buffer, so concurrent formatting from
// ParallelFor worker threads (where IoError / store::Error messages are
// built) could interleave messages. ErrnoString must return each thread its
// own errno's text regardless of what the other threads are formatting.
TEST(ErrnoString, ConcurrentCallsDoNotInterleave) {
  static constexpr int kErrnos[] = {ENOENT, EACCES, EINVAL, ENOMEM};
  std::array<std::string, std::size(kErrnos)> expected;
  for (std::size_t i = 0; i < std::size(kErrnos); ++i) {
    expected[i] = ErrnoString(kErrnos[i]);
  }
  std::array<int, std::size(kErrnos)> mismatches{};
  {
    std::vector<std::thread> threads;
    threads.reserve(std::size(kErrnos));
    for (std::size_t i = 0; i < std::size(kErrnos); ++i) {
      threads.emplace_back([i, &expected, &mismatches] {
        for (int round = 0; round < 1000; ++round) {
          if (ErrnoString(kErrnos[i]) != expected[i]) ++mismatches[i];
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  for (std::size_t i = 0; i < std::size(kErrnos); ++i) {
    EXPECT_EQ(mismatches[i], 0) << "errno " << kErrnos[i];
  }
}

}  // namespace
}  // namespace lockdown::util
