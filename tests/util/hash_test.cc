#include "util/hash.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace lockdown::util {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a64(std::string_view("")), 0xcbf29ce484222325ULL);
  EXPECT_EQ(Fnv1a64(std::string_view("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(Fnv1a64(std::string_view("foobar")), 0x85944171f73967e8ULL);
}

TEST(SipHash, ReferenceVector) {
  // The reference test vector from the SipHash paper: key 0x00..0x0f,
  // message 0x00..0x3e (63 bytes) -- expected output for the full-length
  // message with len 15 prefix: we verify the canonical 8-byte and 15-byte
  // prefixes against the published vectors.
  SipHashKey key{0x0706050403020100ULL, 0x0f0e0d0c0b0a0908ULL};
  std::vector<std::byte> msg;
  for (int i = 0; i < 15; ++i) msg.push_back(static_cast<std::byte>(i));
  // vectors_sip64[15] from the SipHash reference implementation.
  EXPECT_EQ(SipHash24(key, std::span<const std::byte>(msg.data(), 15)),
            0xa129ca6149be45e5ULL);
  EXPECT_EQ(SipHash24(key, std::span<const std::byte>(msg.data(), 8)),
            0x93f5f5799a932462ULL);
  EXPECT_EQ(SipHash24(key, std::span<const std::byte>(msg.data(), 0)),
            0x726fdb47dd0e0e31ULL);
}

TEST(SipHash, KeyChangesOutput) {
  SipHashKey k1{1, 2};
  SipHashKey k2{1, 3};
  EXPECT_NE(SipHash24(k1, 42ULL), SipHash24(k2, 42ULL));
}

TEST(SipHash, ConsistentForSameInput) {
  SipHashKey k{0xdeadbeef, 0xfeedface};
  EXPECT_EQ(SipHash24(k, 1234567ULL), SipHash24(k, 1234567ULL));
}

TEST(SipHash, Uint64MatchesByteSpan) {
  SipHashKey k{7, 9};
  const std::uint64_t v = 0x1122334455667788ULL;
  std::byte buf[8];
  std::memcpy(buf, &v, 8);  // test runs on little-endian CI
  EXPECT_EQ(SipHash24(k, v), SipHash24(k, std::span<const std::byte>(buf, 8)));
}

TEST(SipHash, NoTrivialCollisionsOnSequentialInputs) {
  SipHashKey k{123, 456};
  std::vector<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.push_back(SipHash24(k, i));
  std::sort(outs.begin(), outs.end());
  EXPECT_EQ(std::adjacent_find(outs.begin(), outs.end()), outs.end());
}

}  // namespace
}  // namespace lockdown::util
