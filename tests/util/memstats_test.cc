#include "util/memstats.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "obs/metrics.h"

namespace lockdown::util {
namespace {

TEST(Memstats, PeakRssIsReported) {
  const std::size_t peak = PeakRssBytes();
  // A running test binary has at least a megabyte resident.
  EXPECT_GT(peak, 1U << 20);
}

TEST(Memstats, CurrentRssIsReported) {
  const std::size_t current = CurrentRssBytes();
  EXPECT_GT(current, 1U << 20);
  // current <= peak is not a strict kernel invariant: ru_maxrss is sampled
  // at scheduling points while statm is live, so allow slack of a few pages.
  EXPECT_LE(current, PeakRssBytes() + (1U << 20));
}

TEST(Memstats, PeakTracksLargeAllocations) {
  const std::size_t before = PeakRssBytes();
  constexpr std::size_t kBytes = 64U << 20;
  std::vector<char> block(kBytes);
  // Touch every page so the kernel actually maps it.
  std::memset(block.data(), 0x5a, block.size());
  const std::size_t after = PeakRssBytes();
  EXPECT_GE(after, before);
  EXPECT_GT(after, kBytes / 2);
}

TEST(Memstats, PublishRssGaugesSetsBothGauges) {
  obs::SetMetricsEnabled(true);
  PublishRssGauges();
  obs::SetMetricsEnabled(false);
  const obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  double peak = -1.0;
  double current = -1.0;
  for (const auto& g : snap.gauges) {
    if (g.name == "process/peak_rss_bytes") peak = g.value;
    if (g.name == "process/current_rss_bytes") current = g.value;
  }
  EXPECT_GT(peak, double{1U << 20});
  EXPECT_GT(current, double{1U << 20});
  obs::ResetMetrics();
}

TEST(Memstats, PublishRssGaugesIsInertWhenMetricsOff) {
  obs::SetMetricsEnabled(false);
  PublishRssGauges();  // must not register or set anything
  const obs::MetricsSnapshot snap = obs::SnapshotMetrics();
  for (const auto& g : snap.gauges) {
    if (g.name == "process/peak_rss_bytes" ||
        g.name == "process/current_rss_bytes") {
      EXPECT_EQ(g.value, 0.0);
    }
  }
}

TEST(Memstats, FormatByteSize) {
  EXPECT_EQ(FormatByteSize(0), "0 B");
  EXPECT_EQ(FormatByteSize(1023), "1023 B");
  EXPECT_EQ(FormatByteSize(1024), "1.0 KiB");
  EXPECT_EQ(FormatByteSize(1536), "1.5 KiB");
  EXPECT_EQ(FormatByteSize(32U << 20), "32.0 MiB");
  EXPECT_EQ(FormatByteSize(3ULL << 30), "3.0 GiB");
}

TEST(Memstats, ParseByteSizeAcceptsSuffixes) {
  EXPECT_EQ(ParseByteSize("65536"), 65536U);
  EXPECT_EQ(ParseByteSize("64K"), 64U << 10);
  EXPECT_EQ(ParseByteSize("64k"), 64U << 10);
  EXPECT_EQ(ParseByteSize("64KB"), 64U << 10);
  EXPECT_EQ(ParseByteSize("64KiB"), 64U << 10);
  EXPECT_EQ(ParseByteSize("32M"), 32U << 20);
  EXPECT_EQ(ParseByteSize("32MiB"), 32U << 20);
  EXPECT_EQ(ParseByteSize("2G"), 2ULL << 30);
  EXPECT_EQ(ParseByteSize("100B"), 100U);
  EXPECT_EQ(ParseByteSize("0"), 0U);
}

TEST(Memstats, ParseByteSizeRejectsGarbage) {
  EXPECT_FALSE(ParseByteSize(""));
  EXPECT_FALSE(ParseByteSize("abc"));
  EXPECT_FALSE(ParseByteSize("-1"));
  EXPECT_FALSE(ParseByteSize("12X"));
  EXPECT_FALSE(ParseByteSize("12MBs"));
  EXPECT_FALSE(ParseByteSize("12Mi"));
  EXPECT_FALSE(ParseByteSize("  12"));
  // Overflow: 2^60 KiB does not fit in 64 bits.
  EXPECT_FALSE(ParseByteSize("1152921504606846976K"));
}

TEST(Memstats, ParseFormatRoundTrip) {
  for (const std::size_t v : {std::size_t{1} << 10, std::size_t{7} << 20,
                              std::size_t{3} << 30}) {
    const auto parsed = ParseByteSize(std::to_string(v));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, v);
  }
}

}  // namespace
}  // namespace lockdown::util
