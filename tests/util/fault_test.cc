// FaultInjector unit tests: determinism, rate-0 identity, and the
// characteristic effect of each fault kind.
#include "util/fault.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

namespace lockdown::util {
namespace {

std::string SampleDoc(int rows = 200) {
  std::string doc = "ts\tclient\tqname\tanswer\tttl\n";
  for (int i = 0; i < rows; ++i) {
    doc += std::to_string(1000 + i) +
           "\taa:bb:cc:dd:ee:ff\tzoom.us\t1.2.3.4\t60\n";
  }
  return doc;
}

std::size_t CountLines(const std::string& text) {
  return static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n'));
}

TEST(FaultInjector, SameSeedSameBytes) {
  const std::string doc = SampleDoc();
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    const FaultInjector a({42, 0.05});
    const FaultInjector b({42, 0.05});
    EXPECT_EQ(a.Apply(doc, kind), b.Apply(doc, kind)) << ToString(kind);
  }
}

TEST(FaultInjector, DifferentSeedsDiverge) {
  const std::string doc = SampleDoc();
  const FaultInjector a({1, 0.05});
  const FaultInjector b({2, 0.05});
  EXPECT_NE(a.Apply(doc, FaultKind::kBitFlip), b.Apply(doc, FaultKind::kBitFlip));
}

TEST(FaultInjector, RateZeroIsIdentity) {
  const std::string doc = SampleDoc();
  const FaultInjector injector({7, 0.0});
  for (int k = 0; k < kNumFaultKinds; ++k) {
    EXPECT_EQ(injector.Apply(doc, static_cast<FaultKind>(k)), doc)
        << ToString(static_cast<FaultKind>(k));
  }
}

TEST(FaultInjector, TruncateTailShortensButNeverEmpties) {
  const std::string doc = SampleDoc();
  const FaultInjector injector({3, 0.1});
  const std::string out = injector.Apply(doc, FaultKind::kTruncateTail);
  EXPECT_LT(out.size(), doc.size());
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(doc.substr(0, out.size()), out);  // a prefix, nothing rewritten
}

TEST(FaultInjector, BitFlipPreservesSizeAndLineCount) {
  const std::string doc = SampleDoc();
  const FaultInjector injector({3, 0.05});
  const std::string out = injector.Apply(doc, FaultKind::kBitFlip);
  EXPECT_EQ(out.size(), doc.size());
  EXPECT_NE(out, doc);
  EXPECT_EQ(CountLines(out), CountLines(doc));
}

TEST(FaultInjector, DropAndDuplicateChangeLineCount) {
  const std::string doc = SampleDoc();
  const FaultInjector injector({5, 0.1});
  EXPECT_LT(CountLines(injector.Apply(doc, FaultKind::kDropLine)),
            CountLines(doc));
  EXPECT_GT(CountLines(injector.Apply(doc, FaultKind::kDuplicateLine)),
            CountLines(doc));
}

TEST(FaultInjector, SpliceGarbageAddsLines) {
  const std::string doc = SampleDoc();
  const FaultInjector injector({5, 0.1});
  const std::string out = injector.Apply(doc, FaultKind::kSpliceGarbage);
  EXPECT_GT(CountLines(out), CountLines(doc));
}

TEST(FaultInjector, MixedAlwaysDirtiesTheDocument) {
  // The check.sh fault tier needs strict ingest to fail on every kMixed
  // output, so even a tiny rate must splice at least one garbage line.
  const std::string doc = SampleDoc(20);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const FaultInjector injector({seed, 0.001});
    EXPECT_NE(injector.Apply(doc, FaultKind::kMixed), doc) << "seed " << seed;
  }
}

TEST(FaultInjector, ToStringNamesAreDistinct) {
  for (int a = 0; a < kNumFaultKinds; ++a) {
    for (int b = a + 1; b < kNumFaultKinds; ++b) {
      EXPECT_STRNE(ToString(static_cast<FaultKind>(a)),
                   ToString(static_cast<FaultKind>(b)));
    }
  }
}

}  // namespace
}  // namespace lockdown::util
