#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string_view>
#include <vector>

namespace lockdown::util {
namespace {

std::uint32_t CrcOf(std::string_view s) {
  return Crc32c(std::as_bytes(std::span<const char>(s.data(), s.size())));
}

TEST(Crc32c, EmptyInput) { EXPECT_EQ(CrcOf(""), 0x00000000u); }

TEST(Crc32c, RfcCheckValue) {
  // The canonical CRC32C check vector (RFC 3720 appendix / zlib, snappy).
  EXPECT_EQ(CrcOf("123456789"), 0xE3069283u);
}

TEST(Crc32c, IscsiTestPatterns) {
  // RFC 3720 B.4 test patterns.
  std::array<std::byte, 32> buf{};
  EXPECT_EQ(Crc32c(buf), 0x8A9136AAu);
  buf.fill(std::byte{0xFF});
  EXPECT_EQ(Crc32c(buf), 0x62A8AB43u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::byte>(i);
  }
  EXPECT_EQ(Crc32c(buf), 0x46DD794Eu);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
  const std::string_view text =
      "Locked-in during lock-down: undergraduate life on the internet";
  const auto bytes = std::as_bytes(std::span<const char>(text.data(), text.size()));
  for (std::size_t split = 0; split <= text.size(); ++split) {
    Crc32cAccumulator acc;
    acc.Update(bytes.subspan(0, split));
    acc.Update(bytes.subspan(split));
    EXPECT_EQ(acc.value(), Crc32c(bytes)) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::vector<std::byte> data(1024);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 31 + 7);
  }
  const std::uint32_t clean = Crc32c(data);
  for (std::size_t i = 0; i < data.size(); i += 97) {
    data[i] ^= std::byte{0x10};
    EXPECT_NE(Crc32c(data), clean) << "flip at byte " << i;
    data[i] ^= std::byte{0x10};
  }
}

}  // namespace
}  // namespace lockdown::util
