#include "util/time.h"

#include <gtest/gtest.h>

namespace lockdown::util {
namespace {

TEST(CivilDate, EpochRoundTrip) {
  EXPECT_EQ(DaysFromCivil({1970, 1, 1}), 0);
  EXPECT_EQ(FormatDate(CivilFromDays(0)), "1970-01-01");
}

TEST(CivilDate, KnownDates) {
  // 2020-02-01 is 18293 days after the epoch.
  EXPECT_EQ(DaysFromCivil({2020, 2, 1}), 18293);
  EXPECT_EQ(DaysFromCivil({2020, 3, 1}), 18322);  // 2020 is a leap year
  EXPECT_EQ(DaysFromCivil({2020, 6, 1}), 18414);
}

TEST(CivilDate, RoundTripStudyPeriod) {
  for (std::int64_t d = DaysFromCivil({2020, 1, 1}); d < DaysFromCivil({2020, 12, 31});
       ++d) {
    EXPECT_EQ(DaysFromCivil(CivilFromDays(d)), d);
  }
}

TEST(CivilDate, LeapDay) {
  const CivilDate leap{2020, 2, 29};
  EXPECT_EQ(CivilFromDays(DaysFromCivil(leap)), leap);
  EXPECT_EQ(DaysFromCivil({2020, 3, 1}) - DaysFromCivil({2020, 2, 28}), 2);
}

TEST(Weekday, PaperEventDates) {
  // Checked against a 2020 calendar.
  EXPECT_EQ(WeekdayOf(CivilDate{2020, 2, 1}), Weekday::kSaturday);
  EXPECT_EQ(WeekdayOf(StudyCalendar::kStateOfEmergency), Weekday::kWednesday);
  EXPECT_EQ(WeekdayOf(StudyCalendar::kWhoPandemic), Weekday::kWednesday);
  EXPECT_EQ(WeekdayOf(StudyCalendar::kStayAtHome), Weekday::kThursday);
  EXPECT_EQ(WeekdayOf(StudyCalendar::kBreakStart), Weekday::kSunday);
  EXPECT_EQ(WeekdayOf(StudyCalendar::kBreakEnd), Weekday::kMonday);
}

TEST(Weekday, Fig3WeeksAreThursdays) {
  // Figure 3's x axis starts on Thursday; the paper identifies each week by
  // its Thursday (2/20, 3/19, 4/9, 5/14).
  for (const CivilDate d : StudyCalendar::kFig3Weeks) {
    EXPECT_EQ(WeekdayOf(d), Weekday::kThursday) << FormatDate(d);
  }
}

TEST(Weekday, WeekendDetection) {
  EXPECT_TRUE(IsWeekend(Weekday::kSaturday));
  EXPECT_TRUE(IsWeekend(Weekday::kSunday));
  EXPECT_FALSE(IsWeekend(Weekday::kMonday));
  EXPECT_FALSE(IsWeekend(Weekday::kFriday));
}

TEST(Timestamp, CivilRoundTrip) {
  const CivilDateTime dt{{2020, 3, 19}, 13, 45, 7};
  const Timestamp ts = TimestampOf(dt);
  EXPECT_EQ(CivilOf(ts), dt);
  EXPECT_EQ(FormatDateTime(ts), "2020-03-19 13:45:07");
}

TEST(Timestamp, HourAndDayExtraction) {
  const Timestamp midnight = TimestampOf(CivilDate{2020, 4, 9});
  EXPECT_EQ(HourOf(midnight), 0);
  EXPECT_EQ(HourOf(midnight + 5 * kSecondsPerHour + 59), 5);
  EXPECT_EQ(DayIndexOf(midnight + kSecondsPerDay - 1), DayIndexOf(midnight));
  EXPECT_EQ(DayIndexOf(midnight + kSecondsPerDay), DayIndexOf(midnight) + 1);
}

TEST(Timestamp, NegativeTimestampsFloor) {
  // Pre-epoch timestamps must floor toward earlier days, not truncate.
  EXPECT_EQ(DayIndexOf(-1), -1);
  EXPECT_EQ(DateOf(-1), (CivilDate{1969, 12, 31}));
}

TEST(StudyCalendar, PeriodLength) {
  // Feb (29) + Mar (31) + Apr (30) + May (31) = 121 days.
  EXPECT_EQ(StudyCalendar::NumDays(), 121);
  EXPECT_EQ(StudyCalendar::DayIndex(StudyCalendar::kStart), 0);
  EXPECT_EQ(StudyCalendar::DayIndex(CivilDate{2020, 5, 31}), 120);
  EXPECT_EQ(StudyCalendar::DateAt(120), (CivilDate{2020, 5, 31}));
}

TEST(StudyCalendar, DayIndexOfTimestampMatchesDate) {
  const Timestamp ts = TimestampOf(CivilDateTime{{2020, 4, 15}, 23, 59, 59});
  EXPECT_EQ(StudyCalendar::DayIndex(ts), StudyCalendar::DayIndex(CivilDate{2020, 4, 15}));
}

TEST(ParseDate, RoundTrip) {
  EXPECT_EQ(ParseDate("2020-03-19"), (CivilDate{2020, 3, 19}));
  EXPECT_EQ(FormatDate(ParseDate("2020-12-01")), "2020-12-01");
}

TEST(ParseDate, RejectsMalformed) {
  EXPECT_THROW((void)ParseDate("not-a-date"), std::invalid_argument);
  EXPECT_THROW((void)ParseDate("2020-13-01"), std::invalid_argument);
  EXPECT_THROW((void)ParseDate("2020-00-10"), std::invalid_argument);
  EXPECT_THROW((void)ParseDate("2020-01-32"), std::invalid_argument);
}

}  // namespace
}  // namespace lockdown::util
