#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace lockdown::util {
namespace {

TEST(ThreadPool, NumChunksDecomposition) {
  EXPECT_EQ(ThreadPool::NumChunks(0, 10), 0u);
  EXPECT_EQ(ThreadPool::NumChunks(1, 10), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(10, 10), 1u);
  EXPECT_EQ(ThreadPool::NumChunks(11, 10), 2u);
  EXPECT_EQ(ThreadPool::NumChunks(100, 7), 15u);
  EXPECT_EQ(ThreadPool::NumChunks(5, 0), 1u);  // grain 0 => one chunk
}

TEST(ThreadPool, SerialFallbackRunsChunksInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<std::size_t> order;
  pool.ParallelFor(25, 10, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    order.push_back(chunk);
    EXPECT_EQ(begin, chunk * 10);
    EXPECT_EQ(end, std::min<std::size_t>(begin + 10, 25));
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ThreadPool, EveryIndexCoveredExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 4099;  // prime => ragged last chunk
    std::vector<std::atomic<int>> hits(kN);
    pool.ParallelFor(kN, 64, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ChunkDecompositionIndependentOfThreadCount) {
  // The determinism contract: per-chunk results merged in chunk order are
  // identical for any pool size.
  auto run = [](int threads) {
    ThreadPool pool(threads);
    const std::size_t chunks = ThreadPool::NumChunks(1000, 37);
    std::vector<std::uint64_t> shard(chunks, 0);
    pool.ParallelFor(1000, 37, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        shard[chunk] = shard[chunk] * 31 + i;  // order-sensitive fold
      }
    });
    std::uint64_t merged = 0;
    for (const std::uint64_t s : shard) merged = merged * 131 + s;
    return merged;
  };
  const std::uint64_t serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(3), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPool, ReusableAcrossManyParallelFors) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.ParallelFor(100, 9, [&](std::size_t, std::size_t begin, std::size_t end) {
      std::uint64_t local = 0;
      for (std::size_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100, 10,
                       [](std::size_t chunk, std::size_t, std::size_t) {
                         if (chunk == 3) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // And the pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.ParallelFor(10, 1, [&](std::size_t, std::size_t, std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 16, [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ResolveThreadCount, ExplicitRequestWins) {
  EXPECT_EQ(ResolveThreadCount(5), 5);
  EXPECT_EQ(ResolveThreadCount(1), 1);
}

TEST(ResolveThreadCount, EnvOverride) {
  ASSERT_EQ(setenv("LOCKDOWN_THREADS", "3", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), 3);
  ASSERT_EQ(setenv("LOCKDOWN_THREADS", "0", 1), 0);
  EXPECT_EQ(ResolveThreadCount(0), 1);  // 0 => serial fallback
  ASSERT_EQ(setenv("LOCKDOWN_THREADS", "garbage", 1), 0);
  EXPECT_GE(ResolveThreadCount(0), 1);  // malformed => hardware default
  ASSERT_EQ(unsetenv("LOCKDOWN_THREADS"), 0);
  EXPECT_GE(ResolveThreadCount(0), 1);
}

}  // namespace
}  // namespace lockdown::util
