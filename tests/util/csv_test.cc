#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.h"

namespace lockdown::util {
namespace {

TEST(DelimitedWriter, PlainRow) {
  std::ostringstream out;
  DelimitedWriter w(out, '\t');
  w.WriteRow({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a\tb\tc\n");
}

TEST(DelimitedWriter, QuotesFieldsWithDelimiter) {
  std::ostringstream out;
  DelimitedWriter w(out, ',');
  w.WriteRow({"x,y", "plain"});
  EXPECT_EQ(out.str(), "\"x,y\",plain\n");
}

TEST(DelimitedWriter, EscapesQuotes) {
  std::ostringstream out;
  DelimitedWriter w(out, ',');
  w.WriteRow({"say \"hi\""});
  EXPECT_EQ(out.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(DelimitedRoundTrip, WriterThenReader) {
  std::ostringstream out;
  DelimitedWriter w(out, ',');
  const std::vector<std::string> row1 = {"a,b", "c\"d", "plain", ""};
  const std::vector<std::string> row2 = {"1", "2", "3", "4"};
  w.WriteRow(row1);
  w.WriteRow(row2);

  DelimitedReader r(',');
  const auto rows = r.ParseAll(out.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], row1);
  EXPECT_EQ(rows[1], row2);
}

TEST(DelimitedReader, HandlesCrLf) {
  DelimitedReader r('\t');
  const auto rows = r.ParseAll("a\tb\r\nc\td\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], "b");
  EXPECT_EQ(rows[1][0], "c");
}

TEST(DelimitedReader, SingleLineNoNewline) {
  DelimitedReader r(',');
  const auto rows = r.ParseAll("x,y");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "y"}));
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"short", "1"});
  t.AddRow({"much-longer-name", "22"});
  std::ostringstream out;
  t.Print(out);
  const std::string s = out.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("much-longer-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(TablePrinter, ShortRowsPadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only-one"});
  std::ostringstream out;
  t.Print(out);
  EXPECT_NE(out.str().find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace lockdown::util
