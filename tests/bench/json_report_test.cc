// Regression tests for the bench JSON reporter (bench/common.h): non-finite
// metric values must render as null (printf %.17g spells them nan/inf, which
// no JSON parser accepts — this corrupted machine-read baselines), and metric
// names/units must be string-escaped.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "bench/common.h"

namespace lockdown::bench {
namespace {

TEST(BenchJsonReport, NonFiniteValuesRenderAsNull) {
  JsonReport report;
  report.SetBenchName("json_report_test");
  report.Metric("nan_metric", std::numeric_limits<double>::quiet_NaN(), "ms");
  report.Metric("pos_inf_metric", std::numeric_limits<double>::infinity(), "x");
  report.Metric("neg_inf_metric", -std::numeric_limits<double>::infinity(), "x");
  report.Metric("finite_metric", 1.5, "ms");

  const std::string doc = report.Render();
  EXPECT_NE(doc.find("{\"name\": \"nan_metric\", \"value\": null"),
            std::string::npos);
  EXPECT_NE(doc.find("{\"name\": \"pos_inf_metric\", \"value\": null"),
            std::string::npos);
  EXPECT_NE(doc.find("{\"name\": \"neg_inf_metric\", \"value\": null"),
            std::string::npos);
  EXPECT_NE(doc.find("{\"name\": \"finite_metric\", \"value\": 1.5"),
            std::string::npos);
  EXPECT_EQ(doc.find("nan,"), std::string::npos);
  EXPECT_EQ(doc.find("inf,"), std::string::npos);
}

TEST(BenchJsonReport, NumberFormattingRoundTrips) {
  EXPECT_EQ(JsonReport::JsonNumber(0.0), "0");
  EXPECT_EQ(JsonReport::JsonNumber(4354167.0), "4354167");
  // %.17g preserves all 53 mantissa bits.
  EXPECT_EQ(JsonReport::JsonNumber(1074.5840459999999), "1074.5840459999999");
  EXPECT_EQ(JsonReport::JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonReport::JsonNumber(HUGE_VAL), "null");
}

TEST(BenchJsonReport, NamesAndUnitsAreEscaped) {
  JsonReport report;
  report.SetBenchName("quote\"in\\name");
  report.Metric("metric\twith\ncontrol", 1.0, "unit\"x");
  const std::string doc = report.Render();
  EXPECT_NE(doc.find("\"bench\": \"quote\\\"in\\\\name\""), std::string::npos);
  EXPECT_NE(doc.find("metric\\twith\\ncontrol"), std::string::npos);
  EXPECT_NE(doc.find("\"unit\\\"x\""), std::string::npos);
  // No raw control characters may survive inside the document.
  EXPECT_EQ(doc.find("metric\twith"), std::string::npos);
}

TEST(BenchJsonReport, EscapeHandlesControlCharacters) {
  EXPECT_EQ(JsonReport::JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonReport::JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonReport::JsonEscape("a\\b"), "a\\\\b");
  // \1 (octal) not \x01: a hex escape would swallow the following 'b'.
  EXPECT_EQ(JsonReport::JsonEscape(std::string("a\1b", 3)), "a\\u0001b");
}

}  // namespace
}  // namespace lockdown::bench
