// The zero-perturbation proof (DESIGN.md §10): the entire pipeline — collect,
// process, batch study, streaming study — renders bit-identical figures with
// observability fully enabled (metrics + tracing) and fully disabled, at one
// thread and at several. Doubles print with %.17g, which round-trips IEEE
// binary64, so a single-ulp perturbation anywhere fails the comparison.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/pipeline.h"
#include "core/study.h"
#include "obs/obs.h"
#include "stream/streaming_study.h"
#include "world/catalog.h"

namespace lockdown::obs {
namespace {

constexpr int kStudents = 40;
constexpr std::uint64_t kSeed = 2020;

std::string Num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

template <typename Study>
void RenderBatchFigures(std::ostringstream& out, const Study& study) {
  for (const auto& row : study.ActiveDevicesPerDay()) {
    out << "fig1\t" << row.day << '\t' << row.total << '\n';
  }
  for (const auto& row : study.BytesPerDevicePerDay()) {
    out << "fig2\t" << row.day;
    for (const double v : row.mean) out << '\t' << Num(v);
    for (const double v : row.median) out << '\t' << Num(v);
    out << '\n';
  }
  const auto f3 = study.HourOfWeekVolume();
  out << "fig3\t" << Num(f3.normalization);
  for (const auto& week : f3.weeks) {
    for (int h = 0; h < week.kHours; ++h) out << '\t' << Num(week.at(h));
  }
  out << '\n';
  for (const auto& row : study.MedianBytesExcludingZoom()) {
    out << "fig4\t" << row.day << '\t' << Num(row.intl_mobile_desktop) << '\t'
        << Num(row.dom_mobile_desktop) << '\t' << Num(row.intl_unclassified)
        << '\t' << Num(row.dom_unclassified) << '\n';
  }
  const auto f5 = study.ZoomDailyBytes();
  out << "fig5";
  for (int d = 0; d < f5.num_days(); ++d) out << '\t' << Num(f5.at(d));
  out << '\n';
  for (int month = 2; month <= 5; ++month) {
    const auto social = study.SocialDurations(apps::SocialApp::kFacebook, month);
    out << "fig6.m" << month << '\t' << social.domestic.n << '\t'
        << Num(social.domestic.median) << '\t' << social.international.n
        << '\t' << Num(social.international.median) << '\n';
    const auto steam = study.SteamUsage(month);
    out << "fig7.m" << month << '\t' << Num(steam.dom_bytes.median) << '\t'
        << Num(steam.intl_bytes.median) << '\t' << Num(steam.dom_conns.mean)
        << '\t' << Num(steam.intl_conns.mean) << '\n';
  }
  const auto f8 = study.SwitchGameplayDaily();
  out << "fig8";
  for (int d = 0; d < f8.num_days(); ++d) out << '\t' << Num(f8.at(d));
  out << '\n';
  const auto sw = study.CountSwitches();
  out << "fig8.counts\t" << sw.active_february << '\t'
      << sw.active_post_shutdown << '\t' << sw.new_in_april_may << '\n';
  for (const auto& row : study.CategoryVolumes()) {
    out << "categories\t" << row.day << '\t' << Num(row.education) << '\t'
        << Num(row.video_conferencing) << '\t' << Num(row.streaming) << '\t'
        << Num(row.social_media) << '\t' << Num(row.gaming) << '\t'
        << Num(row.messaging) << '\t' << Num(row.other) << '\n';
  }
  const auto diurnal =
      study.DiurnalShape(0, util::StudyCalendar::NumDays() - 1);
  out << "diurnal";
  for (const double v : diurnal.weekday) out << '\t' << Num(v);
  for (const double v : diurnal.weekend) out << '\t' << Num(v);
  out << '\n';
  const auto h = study.HeadlineStats();
  out << "headline\t" << h.peak_active_devices << '\t'
      << h.trough_active_devices << '\t' << h.post_shutdown_users << '\t'
      << Num(h.traffic_increase) << '\t' << Num(h.distinct_sites_increase)
      << '\t' << h.international_devices << '\t' << Num(h.international_share)
      << '\n';
}

/// Full end-to-end rendering: simulate + process + batch study + streaming
/// study, all under whatever observability state is currently set.
std::string RenderEverything(int threads) {
  core::StudyConfig cfg = core::StudyConfig::Small(kStudents, kSeed);
  cfg.threads = threads;
  const core::CollectionResult collection =
      core::MeasurementPipeline::Collect(cfg);

  std::ostringstream out;
  const auto& st = collection.stats;
  out << "stats\t" << st.raw_flows << '\t' << st.unattributed << '\t'
      << st.visitor_flows << '\t' << st.devices_observed << '\t'
      << st.devices_retained << '\t' << st.ua_sightings << '\n';

  const core::LockdownStudy batch(collection.dataset,
                                  world::ServiceCatalog::Default(), threads);
  RenderBatchFigures(out, batch);

  stream::StreamingOptions options;
  options.threads = threads;
  const stream::StreamingStudy streaming(
      collection.dataset, world::ServiceCatalog::Default(), options);
  RenderBatchFigures(out, streaming);
  return out.str();
}

TEST(ObsDifferential, FiguresBitIdenticalWithObsOnAndOff) {
  for (const int threads : {1, 4}) {
    SetMetricsEnabled(false);
    SetTracingEnabled(false);
    const std::string off = RenderEverything(threads);

    SetMetricsEnabled(true);
    SetTracingEnabled(true);
    const std::string on = RenderEverything(threads);

    SetMetricsEnabled(false);
    SetTracingEnabled(false);
    ResetMetrics();
    ResetTrace();

    EXPECT_EQ(off, on) << "observability perturbed figure output at threads="
                       << threads;
  }
}

}  // namespace
}  // namespace lockdown::obs
