// Unit tests for the zero-perturbation metrics registry (src/obs/metrics.h):
// handle dedup, the disabled-is-no-op gate, exact shard-merged totals,
// histogram bucket placement, gauge semantics (including the non-finite ->
// null JSON contract), reset, and — the load-bearing one for the tsan tier —
// concurrent updates from ParallelFor lanes merging to exact totals.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <string>

#include "util/thread_pool.h"

namespace lockdown::obs {
namespace {

/// Scoped enable/disable so a failing test cannot leak the global gate.
class MetricsOn {
 public:
  MetricsOn() { SetMetricsEnabled(true); }
  ~MetricsOn() {
    SetMetricsEnabled(false);
    ResetMetrics();
  }
};

const MetricsSnapshot::CounterValue* FindCounter(const MetricsSnapshot& snap,
                                                 std::string_view name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* FindGauge(const MetricsSnapshot& snap,
                                             std::string_view name) {
  for (const auto& g : snap.gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* FindHistogram(
    const MetricsSnapshot& snap, std::string_view name) {
  for (const auto& h : snap.histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

TEST(MetricsRegistry, RegistrationReturnsSameHandle) {
  Counter& a = GetCounter("test/dedup_counter", "items");
  Counter& b = GetCounter("test/dedup_counter", "ignored_second_unit");
  EXPECT_EQ(&a, &b);

  Gauge& ga = GetGauge("test/dedup_gauge", "bytes");
  Gauge& gb = GetGauge("test/dedup_gauge");
  EXPECT_EQ(&ga, &gb);

  Histogram& ha = GetHistogram("test/dedup_hist", Buckets::kDurationUs, "us");
  Histogram& hb = GetHistogram("test/dedup_hist", Buckets::kDurationUs, "us");
  EXPECT_EQ(&ha, &hb);

  // The unit is recorded on first registration and later calls don't change it.
  const MetricsSnapshot snap = SnapshotMetrics();
  const auto* c = FindCounter(snap, "test/dedup_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->unit, "items");
}

TEST(MetricsRegistry, DisabledUpdatesAreDropped) {
  SetMetricsEnabled(false);
  Counter& c = GetCounter("test/disabled_counter", "items");
  Histogram& h = GetHistogram("test/disabled_hist", Buckets::kSizeBytes, "bytes");
  c.Add(41);
  h.Observe(1024);

  const MetricsSnapshot snap = SnapshotMetrics();
  const auto* cv = FindCounter(snap, "test/disabled_counter");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->value, 0u);
  const auto* hv = FindHistogram(snap, "test/disabled_hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, 0u);
}

TEST(MetricsRegistry, CounterTotalsAreExact) {
  MetricsOn on;
  Counter& c = GetCounter("test/exact_counter", "items");
  for (int i = 0; i < 1000; ++i) c.Add(3);
  c.Increment();
  const MetricsSnapshot snap = SnapshotMetrics();
  const auto* cv = FindCounter(snap, "test/exact_counter");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->value, 3001u);
}

TEST(MetricsRegistry, HistogramBucketPlacement) {
  MetricsOn on;
  Histogram& h = GetHistogram("test/buckets", Buckets::kDurationUs, "us");
  h.Observe(0);   // first bucket (le 1)
  h.Observe(1);   // still first bucket (bounds are upper-inclusive)
  h.Observe(2);   // second bucket
  h.Observe(std::numeric_limits<std::uint64_t>::max() / 2);  // overflow bucket

  const MetricsSnapshot snap = SnapshotMetrics();
  const auto* hv = FindHistogram(snap, "test/buckets");
  ASSERT_NE(hv, nullptr);
  ASSERT_EQ(hv->bucket_counts.size(), hv->bounds.size() + 1);
  EXPECT_EQ(hv->count, 4u);
  EXPECT_EQ(hv->bounds.front(), 1u);
  EXPECT_EQ(hv->bucket_counts.front(), 2u);
  EXPECT_EQ(hv->bucket_counts[1], 1u);
  EXPECT_EQ(hv->bucket_counts.back(), 1u);  // overflow
  // The sum saturates long before uint64 overflow matters here.
  EXPECT_EQ(hv->sum, 0u + 1 + 2 + std::numeric_limits<std::uint64_t>::max() / 2);
}

TEST(MetricsRegistry, GaugeLastWriteWins) {
  MetricsOn on;
  Gauge& g = GetGauge("test/gauge", "bytes");
  g.Set(10.0);
  g.Set(42.5);
  const MetricsSnapshot snap = SnapshotMetrics();
  const auto* gv = FindGauge(snap, "test/gauge");
  ASSERT_NE(gv, nullptr);
  EXPECT_EQ(gv->value, 42.5);
}

TEST(MetricsRegistry, NonFiniteGaugeRendersAsJsonNull) {
  MetricsOn on;
  GetGauge("test/nonfinite_gauge", "ratio")
      .Set(std::numeric_limits<double>::quiet_NaN());
  std::ostringstream out;
  WriteMetricsJson(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("\"test/nonfinite_gauge\""), std::string::npos);
  EXPECT_NE(doc.find("\"value\": null"), std::string::npos);
  EXPECT_EQ(doc.find("nan"), std::string::npos);
  EXPECT_EQ(doc.find("inf"), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsOn on;
  Counter& c = GetCounter("test/reset_counter", "items");
  c.Add(7);
  ResetMetrics();
  c.Add(2);  // the old handle must stay live across Reset
  const MetricsSnapshot snap = SnapshotMetrics();
  const auto* cv = FindCounter(snap, "test/reset_counter");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->value, 2u);
}

// The concurrency contract: lanes update through per-thread shards with no
// synchronization between them, and the snapshot merge still sees every
// update exactly once. Run under tsan by tools/check.sh (LOCKDOWN_THREADS=8).
TEST(MetricsRegistry, ConcurrentUpdatesMergeExactly) {
  MetricsOn on;
  Counter& c = GetCounter("test/concurrent_counter", "items");
  Histogram& h = GetHistogram("test/concurrent_hist", Buckets::kSizeBytes,
                              "bytes");
  Gauge& g = GetGauge("test/concurrent_gauge", "items");

  constexpr std::size_t kItems = 100'000;
  util::ThreadPool pool(/*threads=*/0);  // 0 = LOCKDOWN_THREADS / hardware
  pool.ParallelFor(kItems, /*grain=*/1024,
                   [&](std::size_t, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       c.Add(2);
                       h.Observe(i % 128);
                       g.Set(static_cast<double>(i));
                     }
                   });

  const MetricsSnapshot snap = SnapshotMetrics();
  const auto* cv = FindCounter(snap, "test/concurrent_counter");
  ASSERT_NE(cv, nullptr);
  EXPECT_EQ(cv->value, 2 * kItems);

  const auto* hv = FindHistogram(snap, "test/concurrent_hist");
  ASSERT_NE(hv, nullptr);
  EXPECT_EQ(hv->count, kItems);
  std::uint64_t expected_sum = 0;
  for (std::size_t i = 0; i < kItems; ++i) expected_sum += i % 128;
  EXPECT_EQ(hv->sum, expected_sum);
  // Values 0..63 land in the first bucket (le 64, upper-inclusive).
  std::uint64_t first_bucket = 0;
  for (std::size_t i = 0; i < kItems; ++i) first_bucket += (i % 128) <= 64;
  ASSERT_FALSE(hv->bucket_counts.empty());
  EXPECT_EQ(hv->bucket_counts.front(), first_bucket);

  const auto* gv = FindGauge(snap, "test/concurrent_gauge");
  ASSERT_NE(gv, nullptr);
  // Last write wins, but "last" is racy across lanes — any observed index is
  // a valid final value.
  EXPECT_GE(gv->value, 0.0);
  EXPECT_LT(gv->value, static_cast<double>(kItems));
}

}  // namespace
}  // namespace lockdown::obs
