// Unit tests for scoped-span tracing (src/obs/trace.h): the disabled gate,
// nesting depth and lane ids, the Chrome trace-event JSON shape, and the
// span -> duration-histogram bridge that feeds per-stage breakdowns.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/metrics.h"

namespace lockdown::obs {
namespace {

/// Scoped tracing gate; also resets the buffer so tests start clean.
class TracingOn {
 public:
  TracingOn() {
    ResetTrace();
    SetTracingEnabled(true);
  }
  ~TracingOn() {
    SetTracingEnabled(false);
    ResetTrace();
  }
};

TEST(ObsTrace, DisabledSpansRecordNothing) {
  ResetTrace();
  SetTracingEnabled(false);
  SetMetricsEnabled(false);
  {
    OBS_SPAN("test/inert");
    OBS_SPAN("test/inert_nested");
  }
  EXPECT_EQ(TraceEventCount(), 0u);
  EXPECT_EQ(TraceDroppedCount(), 0u);
}

TEST(ObsTrace, RecordsNestedSpansWithDepth) {
  TracingOn on;
  {
    OBS_SPAN("test/outer");
    {
      OBS_SPAN("test/inner");
    }
  }
  EXPECT_EQ(TraceEventCount(), 2u);

  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string doc = out.str();
  // Spans land at scope exit, so the inner one serializes first.
  const auto inner = doc.find("\"test/inner\"");
  const auto outer = doc.find("\"test/outer\"");
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(outer, std::string::npos);
  EXPECT_LT(inner, outer);
  // The inner span nests one level below the outer one.
  EXPECT_NE(doc.find("\"args\": {\"depth\": 1}", inner), std::string::npos);
  EXPECT_NE(doc.find("\"args\": {\"depth\": 0}", outer), std::string::npos);
}

TEST(ObsTrace, ChromeTraceShape) {
  TracingOn on;
  {
    OBS_SPAN("test/shape");
  }
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string doc = out.str();
  EXPECT_EQ(doc.find("{\"traceEvents\": ["), 0u);
  EXPECT_NE(doc.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(doc.find("\"ts\": "), std::string::npos);
  EXPECT_NE(doc.find("\"dur\": "), std::string::npos);
  // Lane metadata so Perfetto names the thread tracks.
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("lane 1"), std::string::npos);
}

TEST(ObsTrace, SpanNamesAreJsonEscaped) {
  TracingOn on;
  { ScopedSpan span("test/\"quoted\"\\name"); }
  std::ostringstream out;
  WriteChromeTrace(out);
  const std::string doc = out.str();
  EXPECT_NE(doc.find("test/\\\"quoted\\\"\\\\name"), std::string::npos);
}

TEST(ObsTrace, ResetDiscardsBufferedSpans) {
  TracingOn on;
  {
    OBS_SPAN("test/reset_me");
  }
  EXPECT_EQ(TraceEventCount(), 1u);
  ResetTrace();
  EXPECT_EQ(TraceEventCount(), 0u);
}

// Closing a span with metrics enabled observes its duration into a
// kDurationUs histogram of the same name — the bridge that gives
// --metrics-out and BENCH_components.json their per-stage timings.
TEST(ObsTrace, SpanFeedsDurationHistogramWhenMetricsOn) {
  ResetTrace();
  SetTracingEnabled(false);
  SetMetricsEnabled(true);
  {
    OBS_SPAN("test/span_to_hist");
  }
  SetMetricsEnabled(false);
  const MetricsSnapshot snap = SnapshotMetrics();
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "test/span_to_hist") {
      found = true;
      EXPECT_EQ(h.count, 1u);
      EXPECT_EQ(h.unit, "us");
    }
  }
  EXPECT_TRUE(found);
  // Metrics-only spans must not reach the trace buffer.
  EXPECT_EQ(TraceEventCount(), 0u);
  ResetMetrics();
}

}  // namespace
}  // namespace lockdown::obs
