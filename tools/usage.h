// The lockdown_cli help text and the machine-checkable flag inventory.
//
// kUsageText is the single source of truth printed by `lockdown_cli --help`
// (and on usage errors). kPublicFlags lists every public flag; a test
// asserts each one appears in kUsageText so the help cannot drift from the
// parser again. Update both when adding a flag.
#pragma once

#include <array>
#include <string_view>

namespace lockdown::cli {

inline constexpr std::string_view kUsageText =
    R"(usage: lockdown_cli <command> [flags]
       lockdown_cli --help | help

commands:
  simulate --out DIR [--students N] [--seed S]
      Simulate the campus and write the four collection logs
      (conn/dhcp/dns/ua) into DIR.
  analyze --logs DIR [--students N] [--seed S] [--threads T]
          [--ingest-mode strict|tolerant] [--max-error-rate R]
          [--quarantine-dir DIR]
      Ingest previously exported logs (or a dataset.lds snapshot in DIR)
      and print the headline statistics.
  study [--students N] [--seed S] [--threads T]
        [--streaming] [--memory-budget BYTES]
      One-shot: simulate + process + print the figure summaries.
      --streaming runs the bounded-memory sketch engine instead of the
      batch study and appends its accuracy report; --memory-budget caps
      the engine's analysis state (binary suffixes accepted: 64M, 2G;
      default 32M, implies --streaming).
  snapshot save --out FILE [--logs DIR] [--students N] [--seed S] [--threads T]
                [--compress]
      Persist the processed dataset as an LDS snapshot. --compress stores
      the flows as dictionary/delta-varint coded columns (smaller file, no
      zero-copy load).
  snapshot info FILE
      Print snapshot header, provenance and per-section table (codec,
      stored vs raw bytes, compression ratio).
  snapshot verify FILE
      Full integrity check; exits non-zero on any corruption.
  fault --logs DIR --out DIR [--seed S] [--rate R] [--kind K]
      Copy the collection logs through the deterministic fault injector
      (--kind truncate_tail|bit_flip|drop_line|duplicate_line|
      splice_garbage|mixed).
  catalog
      Dump the synthetic service catalog.

flags:
  --compress            snapshot save: columnar-coded sections instead of the
                        raw flow array (smaller file, no zero-copy load)
  --out DIR|FILE        output directory (simulate, fault) or file (snapshot save)
  --logs DIR            input directory holding the collection logs
  --students N          simulated student count (default 400)
  --seed S              simulation / anonymization / fault seed (default 2020)
  --threads T           worker threads; 0 (default) defers to LOCKDOWN_THREADS,
                        then the hardware. Results are identical at any count.
  --ingest-mode M       strict (default) rejects a log on the first malformed
                        row; tolerant skips and accounts malformed rows
  --max-error-rate R    tolerant-mode rejection budget in [0,1] (default 0.01)
  --quarantine-dir DIR  write rejected lines to DIR/<log>.rej
  --rate R              fault injection rate in [0,1] (default 0.01)
  --kind K              fault kind (default mixed)
  --streaming           use the one-pass bounded-memory study engine
  --memory-budget BYTES streaming analysis-state budget (default 32M)
  --metrics-out FILE    write the obs metrics snapshot (counters, gauges,
                        histograms) as JSON to FILE at exit
  --trace-out FILE      write scoped-span timing as Chrome trace-event JSON
                        to FILE at exit (load in chrome://tracing or Perfetto)
  --io-crash-at POINT   crash-harness hook: _exit(125) at the named IO crash
                        point (registry: src/io/crash_points.h; DESIGN.md §12)
  --help                print this help and exit 0

exit codes:
  0  success
  1  usage error (unknown command/flag, bad flag value)
  2  I/O error (missing file, failed read/write)
  3  malformed input beyond the tolerant-mode error budget
  4  corrupt dataset.lds snapshot with no TSV fallback available
)";

/// Every public flag, for the help-drift test. Keep sorted.
inline constexpr std::array<std::string_view, 17> kPublicFlags = {
    "--compress",      "--help",        "--ingest-mode",
    "--io-crash-at",   "--kind",        "--logs",
    "--max-error-rate", "--memory-budget", "--metrics-out",
    "--out",           "--quarantine-dir", "--rate",
    "--seed",          "--streaming",   "--students",
    "--threads",       "--trace-out",
};

/// The exit codes kUsageText must document, matching lockdown_cli.cc.
inline constexpr std::array<int, 4> kDocumentedExitCodes = {1, 2, 3, 4};

}  // namespace lockdown::cli
