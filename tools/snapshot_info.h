// Render helpers for `lockdown_cli snapshot info`, split out of the CLI so
// the output shape is unit-testable (tests/tools/snapshot_info_test.cc).
#pragma once

#include <cstdio>
#include <ostream>
#include <string>

#include "store/snapshot.h"
#include "util/strings.h"
#include "util/table.h"

namespace lockdown::cli {

/// The header/provenance table of `snapshot info`.
inline void RenderSnapshotHeader(const store::SnapshotInfo& info,
                                 std::ostream& out) {
  util::TablePrinter header({"field", "value"});
  header.AddRow({"format version", std::to_string(info.version)});
  header.AddRow({"file size", std::to_string(info.file_size) + " bytes"});
  header.AddRow({"flows", std::to_string(info.num_flows)});
  header.AddRow({"devices", std::to_string(info.num_devices)});
  header.AddRow({"interned domains", std::to_string(info.num_domains)});
  header.AddRow({"flow stride", std::to_string(info.flow_stride) + " bytes"});
  header.AddRow({"students (provenance)",
                 info.meta.num_students == 0
                     ? std::string("unknown")
                     : std::to_string(info.meta.num_students)});
  header.AddRow({"seed (provenance)", info.meta.num_students == 0
                                          ? std::string("unknown")
                                          : std::to_string(info.meta.seed)});
  header.Print(out);
}

/// The per-section table: one row per section with the codec, the stored
/// (on-disk) and raw (decoded) byte counts, and the stored/raw compression
/// ratio ("1.00" for raw sections, "-" when the raw size is unknown).
inline void RenderSectionTable(const store::SnapshotInfo& info,
                               std::ostream& out) {
  util::TablePrinter sections(
      {"section", "codec", "offset", "stored", "raw", "ratio", "crc32c"});
  for (const store::SectionInfo& s : info.sections) {
    char crc[16];
    std::snprintf(crc, sizeof(crc), "%08x", s.crc32c);
    const std::string ratio =
        s.raw_size == 0
            ? std::string("-")
            : util::FormatDouble(static_cast<double>(s.size) /
                                     static_cast<double>(s.raw_size),
                                 2);
    sections.AddRow({s.name, s.codec_name, std::to_string(s.offset),
                     std::to_string(s.size), std::to_string(s.raw_size), ratio,
                     crc});
  }
  sections.Print(out);
}

}  // namespace lockdown::cli
