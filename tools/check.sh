#!/usr/bin/env bash
# Tier-1 verification, run in three configurations: the default toolchain
# flags, AddressSanitizer + UndefinedBehaviorSanitizer, and ThreadSanitizer.
# The asan pass exists chiefly for src/store — mmap'd zero-copy pointer casts
# and the binary decoder must be provably clean, not just test-green. The
# tsan pass covers the parallel pipeline/study: it forces LOCKDOWN_THREADS=8
# so the sharded passes actually run multi-threaded (this box may be
# single-core, where the pool would otherwise fall back to serial) and runs
# the thread-pool, pipeline, and differential parallel-equivalence tests.
#
# A fourth, CLI-level fault tier exercises the ingest robustness surface
# end-to-end: it exports a small campus, corrupts the snapshot and the TSV
# logs with the deterministic FaultInjector (seeds {1,2,3} x rates
# {0.1%, 1%}), and asserts tolerant ingest completes (exit 0) where strict
# ingest fails with the documented exit codes (3 = over error budget,
# 4 = corrupt snapshot without fallback).
#
# The stream tier runs the streaming-vs-batch differential convergence suite
# (tests/stream) under ASan+UBSan — including its FaultInjector leg, which
# re-ingests a deterministically corrupted export before differencing — so
# the sketch memory claims hold with the allocator instrumented. The tsan
# pass additionally runs the streaming bit-identity test at LOCKDOWN_THREADS=8
# to cover the parallel sketch merges.
#
# Usage: tools/check.sh [--default-only | --asan-only | --tsan-only |
#                        --fault-only | --stream-only]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)
mode="${1:-all}"

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "=== ${label}: configure (${dir}) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== ${label}: build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== ${label}: ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${jobs}")
  echo "=== ${label}: OK ==="
}

if [[ "${mode}" == "all" || "${mode}" == "--default-only" ]]; then
  run_pass "default" build
fi

if [[ "${mode}" == "all" || "${mode}" == "--asan-only" ]]; then
  run_pass "asan+ubsan" build-asan \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    -DLOCKDOWN_BUILD_BENCH=OFF
fi

if [[ "${mode}" == "all" || "${mode}" == "--stream-only" ]]; then
  # Streaming differential convergence under asan+ubsan (reuses / creates the
  # asan tree). The suite's fault leg injects one deterministic FaultInjector
  # seed into an exported conn.log and re-differences the tolerant re-ingest.
  dir=build-asan
  echo "=== stream: configure (${dir}) ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    -DLOCKDOWN_BUILD_BENCH=OFF >/dev/null
  echo "=== stream: build ==="
  cmake --build "${dir}" -j "${jobs}" --target stream_test
  echo "=== stream: differential suite (asan+ubsan) ==="
  "${dir}/tests/stream_test"
  echo "=== stream: OK ==="
fi

if [[ "${mode}" == "all" || "${mode}" == "--tsan-only" ]]; then
  # Only the concurrency-bearing binaries: a full-suite tsan run costs ~10x
  # and the serial subsystems have nothing for tsan to find.
  dir=build-tsan
  echo "=== tsan: configure (${dir}) ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
    -DLOCKDOWN_BUILD_BENCH=OFF
  echo "=== tsan: build ==="
  cmake --build "${dir}" -j "${jobs}" --target util_test core_test stream_test
  echo "=== tsan: parallel tests (LOCKDOWN_THREADS=8) ==="
  LOCKDOWN_THREADS=8 "${dir}/tests/util_test" --gtest_filter='ThreadPool*'
  LOCKDOWN_THREADS=8 "${dir}/tests/core_test" \
    --gtest_filter='ParallelEquivalence.*:Pipeline*:GoldenFigures.*'
  # Parallel sketch merges: per-device scratch flushed into shared sketches
  # must be race-free, not just deterministic.
  LOCKDOWN_THREADS=8 "${dir}/tests/stream_test" \
    --gtest_filter='StreamingStudy.BitIdenticalAcrossThreadCounts'
  echo "=== tsan: OK ==="
fi

if [[ "${mode}" == "all" || "${mode}" == "--fault-only" ]]; then
  echo "=== fault: build lockdown_cli ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${jobs}" --target lockdown_cli >/dev/null
  cli=build/tools/lockdown_cli
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' EXIT

  # expect_exit CODE cmd...: run cmd, require the documented exit code.
  expect_exit() {
    local want="$1"
    shift
    local got=0
    "$@" >/dev/null 2>&1 || got=$?
    if [[ "${got}" != "${want}" ]]; then
      echo "FAIL: expected exit ${want}, got ${got}: $*" >&2
      exit 1
    fi
  }

  echo "=== fault: clean export + snapshot ==="
  "${cli}" simulate --out "${work}/clean" --students 60 --seed 11 >/dev/null
  "${cli}" snapshot save --out "${work}/clean/dataset.lds" \
    --logs "${work}/clean" --students 60 --seed 11 >/dev/null

  echo "=== fault: corrupt snapshot -> tolerant falls back, strict exits 4 ==="
  cp -r "${work}/clean" "${work}/badsnap"
  # Flip one byte in the middle of the snapshot payload.
  size=$(stat -c %s "${work}/badsnap/dataset.lds")
  printf '\xff' | dd of="${work}/badsnap/dataset.lds" bs=1 \
    seek=$((size / 2)) conv=notrunc status=none
  expect_exit 4 "${cli}" analyze --logs "${work}/badsnap" --students 60 --seed 11
  expect_exit 0 "${cli}" analyze --logs "${work}/badsnap" --students 60 --seed 11 \
    --ingest-mode tolerant
  rm "${work}/badsnap/dataset.lds"
  rm "${work}/clean/dataset.lds"

  echo "=== fault: dirty TSV logs, seeds {1,2,3} x rates {0.001,0.01} ==="
  for seed in 1 2 3; do
    for rate in 0.001 0.01; do
      dirty="${work}/dirty-${seed}-${rate}"
      "${cli}" fault --logs "${work}/clean" --out "${dirty}" \
        --seed "${seed}" --rate "${rate}" --kind mixed >/dev/null
      expect_exit 0 "${cli}" analyze --logs "${dirty}" --students 60 --seed 11 \
        --ingest-mode tolerant --max-error-rate 0.05 \
        --quarantine-dir "${dirty}/quarantine"
      expect_exit 3 "${cli}" analyze --logs "${dirty}" --students 60 --seed 11
      test -s "${dirty}/quarantine/conn.log.rej" || {
        echo "FAIL: no quarantined lines for seed ${seed} rate ${rate}" >&2
        exit 1
      }
    done
  done
  echo "=== fault: OK ==="
fi

echo "all requested passes green"
