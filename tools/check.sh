#!/usr/bin/env bash
# Tier-1 verification, run in three configurations: the default toolchain
# flags, AddressSanitizer + UndefinedBehaviorSanitizer, and ThreadSanitizer.
# The asan pass exists chiefly for src/store — mmap'd zero-copy pointer casts
# and the binary decoder must be provably clean, not just test-green. The
# tsan pass covers the parallel pipeline/study: it forces LOCKDOWN_THREADS=8
# so the sharded passes actually run multi-threaded (this box may be
# single-core, where the pool would otherwise fall back to serial) and runs
# the thread-pool, pipeline, and differential parallel-equivalence tests.
#
# A fourth, CLI-level fault tier exercises the ingest robustness surface
# end-to-end: it exports a small campus, corrupts the snapshot and the TSV
# logs with the deterministic FaultInjector (seeds {1,2,3} x rates
# {0.1%, 1%}), and asserts tolerant ingest completes (exit 0) where strict
# ingest fails with the documented exit codes (3 = over error budget,
# 4 = corrupt snapshot without fallback).
#
# The stream tier runs the streaming-vs-batch differential convergence suite
# (tests/stream) under ASan+UBSan — including its FaultInjector leg, which
# re-ingests a deterministically corrupted export before differencing — so
# the sketch memory claims hold with the allocator instrumented. The tsan
# pass additionally runs the streaming bit-identity test at LOCKDOWN_THREADS=8
# to cover the parallel sketch merges.
#
# The obs tier exercises the observability surface end-to-end: it runs the
# CLI with --metrics-out/--trace-out plus an analyze/snapshot flow (so the
# ingest and store instrumentation actually fires), validates both JSON
# documents' shapes with python3, and regenerates BENCH_components.json (the
# per-stage perf breakdown emitted by bench/perf_components through the obs
# registry).
#
# The scalar tier reruns tier-1 with LOCKDOWN_NO_SIMD=1 so every figure and
# differential test exercises the scalar kernel reference — the fallback
# path for CPUs without AVX2 must stay exactly as green (and bit-identical)
# as the SIMD path. The asan tier automatically covers the column-codec
# fuzz and compressed byte-sweep tests (tests/store/codec_test.cc) since it
# runs the full suite.
#
# The crash tier is the kill-at-every-crash-point harness (DESIGN.md §12)
# run with the allocator instrumented: it builds lockdown_cli and
# crash_harness_test under ASan+UBSan (reusing build-asan) and executes the
# harness, which forks the real CLI at every registered IO crash point
# (src/io/crash_points.h) across several seeds and proves the snapshot
# target is never torn — bit-identical to the old valid snapshot before the
# rename, to the new one after — with the orphaned tmp file attributed,
# swept, and the next save recovering bit-exactly.
#
# The lint tier is the static-analysis gate (DESIGN.md §11): it runs
# lockdown_lint (the project contract checker) over src/ + tools/ and proves
# the fixture corpus still catches every registered rule, then — when a clang
# toolchain is present — builds the tree under clang -Wthread-safety (the
# util/mutex.h annotations) and runs clang-tidy with the curated .clang-tidy
# set over the compilation database. The clang passes degrade to a loud
# warning when clang/clang-tidy are not installed; the lockdown_lint passes
# always run.
#
# Usage: tools/check.sh [--default-only | --asan-only | --tsan-only |
#                        --fault-only | --stream-only | --obs-only |
#                        --scalar-only | --crash-only | --lint-only | lint]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)
mode="${1:-all}"

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "=== ${label}: configure (${dir}) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== ${label}: build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== ${label}: ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${jobs}")
  echo "=== ${label}: OK ==="
}

if [[ "${mode}" == "all" || "${mode}" == "--default-only" ]]; then
  run_pass "default" build
fi

if [[ "${mode}" == "all" || "${mode}" == "--scalar-only" ]]; then
  # Tier-1 with the SIMD kernels disabled: the dispatch test proves the env
  # var selects the scalar table; this proves everything else stays green
  # (and the golden/differential figure tests: bit-identical) on it.
  echo "=== scalar: configure (build) ==="
  cmake -B build -S . >/dev/null
  echo "=== scalar: build ==="
  cmake --build build -j "${jobs}"
  echo "=== scalar: ctest (LOCKDOWN_NO_SIMD=1) ==="
  (cd build && LOCKDOWN_NO_SIMD=1 ctest --output-on-failure -j "${jobs}")
  echo "=== scalar: OK ==="
fi

if [[ "${mode}" == "all" || "${mode}" == "--asan-only" ]]; then
  run_pass "asan+ubsan" build-asan \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    -DLOCKDOWN_BUILD_BENCH=OFF
fi

if [[ "${mode}" == "all" || "${mode}" == "--stream-only" ]]; then
  # Streaming differential convergence under asan+ubsan (reuses / creates the
  # asan tree). The suite's fault leg injects one deterministic FaultInjector
  # seed into an exported conn.log and re-differences the tolerant re-ingest.
  dir=build-asan
  echo "=== stream: configure (${dir}) ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    -DLOCKDOWN_BUILD_BENCH=OFF >/dev/null
  echo "=== stream: build ==="
  cmake --build "${dir}" -j "${jobs}" --target stream_test
  echo "=== stream: differential suite (asan+ubsan) ==="
  "${dir}/tests/stream_test"
  echo "=== stream: OK ==="
fi

if [[ "${mode}" == "all" || "${mode}" == "--tsan-only" ]]; then
  # Only the concurrency-bearing binaries: a full-suite tsan run costs ~10x
  # and the serial subsystems have nothing for tsan to find.
  dir=build-tsan
  echo "=== tsan: configure (${dir}) ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
    -DLOCKDOWN_BUILD_BENCH=OFF
  echo "=== tsan: build ==="
  cmake --build "${dir}" -j "${jobs}" --target util_test core_test stream_test obs_test
  echo "=== tsan: parallel tests (LOCKDOWN_THREADS=8) ==="
  LOCKDOWN_THREADS=8 "${dir}/tests/util_test" --gtest_filter='ThreadPool*'
  # Lock-free metric shards: concurrent counter/histogram updates from
  # ParallelFor lanes must merge to exact totals without races.
  LOCKDOWN_THREADS=8 "${dir}/tests/obs_test" --gtest_filter='MetricsRegistry.*'
  LOCKDOWN_THREADS=8 "${dir}/tests/core_test" \
    --gtest_filter='ParallelEquivalence.*:Pipeline*:GoldenFigures.*'
  # Parallel sketch merges: per-device scratch flushed into shared sketches
  # must be race-free, not just deterministic.
  LOCKDOWN_THREADS=8 "${dir}/tests/stream_test" \
    --gtest_filter='StreamingStudy.BitIdenticalAcrossThreadCounts'
  echo "=== tsan: OK ==="
fi

if [[ "${mode}" == "all" || "${mode}" == "--fault-only" ]]; then
  echo "=== fault: build lockdown_cli ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${jobs}" --target lockdown_cli >/dev/null
  cli=build/tools/lockdown_cli
  work=$(mktemp -d)
  trap 'rm -rf "${work}"' EXIT

  # expect_exit CODE cmd...: run cmd, require the documented exit code.
  expect_exit() {
    local want="$1"
    shift
    local got=0
    "$@" >/dev/null 2>&1 || got=$?
    if [[ "${got}" != "${want}" ]]; then
      echo "FAIL: expected exit ${want}, got ${got}: $*" >&2
      exit 1
    fi
  }

  echo "=== fault: clean export + snapshot ==="
  "${cli}" simulate --out "${work}/clean" --students 60 --seed 11 >/dev/null
  "${cli}" snapshot save --out "${work}/clean/dataset.lds" \
    --logs "${work}/clean" --students 60 --seed 11 >/dev/null

  echo "=== fault: corrupt snapshot -> tolerant falls back, strict exits 4 ==="
  cp -r "${work}/clean" "${work}/badsnap"
  # Flip one byte in the middle of the snapshot payload.
  size=$(stat -c %s "${work}/badsnap/dataset.lds")
  printf '\xff' | dd of="${work}/badsnap/dataset.lds" bs=1 \
    seek=$((size / 2)) conv=notrunc status=none
  expect_exit 4 "${cli}" analyze --logs "${work}/badsnap" --students 60 --seed 11
  expect_exit 0 "${cli}" analyze --logs "${work}/badsnap" --students 60 --seed 11 \
    --ingest-mode tolerant
  rm "${work}/badsnap/dataset.lds"
  rm "${work}/clean/dataset.lds"

  echo "=== fault: dirty TSV logs, seeds {1,2,3} x rates {0.001,0.01} ==="
  for seed in 1 2 3; do
    for rate in 0.001 0.01; do
      dirty="${work}/dirty-${seed}-${rate}"
      "${cli}" fault --logs "${work}/clean" --out "${dirty}" \
        --seed "${seed}" --rate "${rate}" --kind mixed >/dev/null
      expect_exit 0 "${cli}" analyze --logs "${dirty}" --students 60 --seed 11 \
        --ingest-mode tolerant --max-error-rate 0.05 \
        --quarantine-dir "${dirty}/quarantine"
      expect_exit 3 "${cli}" analyze --logs "${dirty}" --students 60 --seed 11
      test -s "${dirty}/quarantine/conn.log.rej" || {
        echo "FAIL: no quarantined lines for seed ${seed} rate ${rate}" >&2
        exit 1
      }
    done
  done
  echo "=== fault: OK ==="
fi

if [[ "${mode}" == "all" || "${mode}" == "--obs-only" ]]; then
  echo "=== obs: build lockdown_cli + perf_components ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${jobs}" --target lockdown_cli perf_components >/dev/null
  cli=build/tools/lockdown_cli
  obs_work=$(mktemp -d)
  # ${work:-} also covers the fault tier's directory when both tiers run.
  trap 'rm -rf "${work:-}" "${obs_work}"' EXIT

  echo "=== obs: study with --metrics-out/--trace-out ==="
  "${cli}" study --students 60 --seed 11 --streaming \
    --metrics-out "${obs_work}/m.json" --trace-out "${obs_work}/t.json" >/dev/null

  echo "=== obs: analyze + snapshot flow (ingest/store coverage) ==="
  "${cli}" simulate --out "${obs_work}/logs" --students 60 --seed 11 >/dev/null
  "${cli}" snapshot save --out "${obs_work}/logs/dataset.lds" \
    --logs "${obs_work}/logs" --students 60 --seed 11 \
    --metrics-out "${obs_work}/m_ingest.json" >/dev/null
  LOCKDOWN_METRICS="${obs_work}/m_store.json" \
    "${cli}" analyze --logs "${obs_work}/logs" --students 60 --seed 11 >/dev/null

  echo "=== obs: validate JSON shapes ==="
  python3 - "${obs_work}/m.json" "${obs_work}/t.json" "${obs_work}/m_ingest.json" \
    "${obs_work}/m_store.json" <<'PY'
import json, sys
m_path, t_path, ingest_path, store_path = sys.argv[1:5]

def names(doc):
    return {entry["name"]
            for section in ("counters", "gauges", "histograms")
            for entry in doc[section]}

m = json.load(open(m_path))
for section in ("counters", "gauges", "histograms"):
    assert isinstance(m[section], list), f"missing {section}"
for h in m["histograms"]:
    assert len(h["buckets"]) >= 2, f"{h['name']}: too few buckets"
    assert h["buckets"][-1]["le"] is None, f"{h['name']}: no overflow bucket"
    assert sum(b["count"] for b in h["buckets"]) == h["count"], h["name"]
subsystems = {n.split("/")[0] for n in names(m)}
want = {"pipeline", "study", "stream", "sketch", "thread_pool", "process"}
missing = want - subsystems
assert not missing, f"metrics missing subsystems: {missing} (got {subsystems})"

ing = json.load(open(ingest_path))
assert any(n.startswith("ingest/") for n in names(ing)), "no ingest metrics"
st = json.load(open(store_path))
assert any(n.startswith("store/") for n in names(st)), "no store metrics"

t = json.load(open(t_path))
events = [e for e in t["traceEvents"] if e["ph"] == "X"]
assert len(events) >= 10, f"only {len(events)} trace events"
for e in events:
    for key in ("name", "pid", "tid", "ts", "dur"):
        assert key in e, f"trace event missing {key}"
assert max(e["args"]["depth"] for e in events) >= 1, "no nested spans"
print(f"ok: {len(names(m))} metrics across {sorted(subsystems)}, "
      f"{len(events)} trace events")
PY

  echo "=== obs: regenerate BENCH_components.json ==="
  LOCKDOWN_STUDENTS=400 LOCKDOWN_BENCH_JSON=BENCH_components.json \
    ./build/bench/perf_components --benchmark_filter='NONE' >/dev/null
  python3 -c "
import json
doc = json.load(open('BENCH_components.json'))
assert doc['bench'] == 'perf_components'
assert any(m['name'].endswith('_total_ms') for m in doc['metrics'])
print(f\"ok: {len(doc['metrics'])} component metrics\")"
  echo "=== obs: OK ==="
fi

if [[ "${mode}" == "all" || "${mode}" == "--crash-only" ]]; then
  # Kill-at-every-crash-point harness under ASan+UBSan (reuses / creates the
  # asan tree). The harness fork/execs the instrumented CLI with
  # --io-crash-at for every point in src/io/crash_points.h x seeds {11,12,13}
  # and proves the atomic-rename contract from the parent.
  dir=build-asan
  echo "=== crash: configure (${dir}) ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    -DLOCKDOWN_BUILD_BENCH=OFF >/dev/null
  echo "=== crash: build ==="
  cmake --build "${dir}" -j "${jobs}" --target lockdown_cli crash_harness_test
  echo "=== crash: kill-at-every-crash-point harness (asan+ubsan) ==="
  "${dir}/tests/crash_harness_test"
  echo "=== crash: OK ==="
fi

if [[ "${mode}" == "all" || "${mode}" == "--lint-only" || "${mode}" == "lint" ]]; then
  echo "=== lint: build lockdown_lint ==="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${jobs}" --target lockdown_lint >/dev/null
  lint=build/tools/lint/lockdown_lint

  echo "=== lint: lockdown_lint over src/ + tools/ ==="
  "${lint}" --root .

  echo "=== lint: fixture corpus covers every registered rule ==="
  fixtures=tests/tools/lint_fixtures
  while read -r rule _; do
    if [[ ! -f "${fixtures}/${rule}/bad/expected.txt" ]]; then
      echo "FAIL: rule ${rule} has no bad fixture under ${fixtures}/${rule}" >&2
      exit 1
    fi
    if "${lint}" --root "${fixtures}/${rule}/bad" >/dev/null 2>&1; then
      echo "FAIL: ${rule} bad fixture is not caught" >&2
      exit 1
    fi
    if ! "${lint}" --root "${fixtures}/${rule}/good" >/dev/null 2>&1; then
      echo "FAIL: ${rule} good fixture is not clean" >&2
      exit 1
    fi
  done < <("${lint}" --list-rules)
  for dir in "${fixtures}"/*/; do
    rule=$(basename "${dir}")
    if ! "${lint}" --list-rules | grep -q "^${rule} "; then
      echo "FAIL: fixture directory ${dir} names no registered rule" >&2
      exit 1
    fi
  done

  if command -v clang++ >/dev/null 2>&1; then
    echo "=== lint: clang -Wthread-safety build (build-tsa) ==="
    cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DLOCKDOWN_BUILD_BENCH=OFF >/dev/null
    cmake --build build-tsa -j "${jobs}"
  else
    echo "=== lint: WARNING: clang++ not found; skipping the" \
         "-Wthread-safety annotation proof (install clang to run it) ==="
  fi

  if command -v clang-tidy >/dev/null 2>&1; then
    echo "=== lint: clang-tidy (curated .clang-tidy set) ==="
    cmake -B build -S . >/dev/null  # refresh compile_commands.json
    find src tools -name '*.cc' -print0 |
      xargs -0 -n 4 -P "${jobs}" clang-tidy -p build --quiet --warnings-as-errors=''
  else
    echo "=== lint: WARNING: clang-tidy not found; skipping the" \
         "bugprone/concurrency/performance pass (install clang-tidy to run it) ==="
  fi
  echo "=== lint: OK ==="
fi

echo "all requested passes green"
