#!/usr/bin/env bash
# Tier-1 verification, run in three configurations: the default toolchain
# flags, AddressSanitizer + UndefinedBehaviorSanitizer, and ThreadSanitizer.
# The asan pass exists chiefly for src/store — mmap'd zero-copy pointer casts
# and the binary decoder must be provably clean, not just test-green. The
# tsan pass covers the parallel pipeline/study: it forces LOCKDOWN_THREADS=8
# so the sharded passes actually run multi-threaded (this box may be
# single-core, where the pool would otherwise fall back to serial) and runs
# the thread-pool, pipeline, and differential parallel-equivalence tests.
#
# Usage: tools/check.sh [--default-only | --asan-only | --tsan-only]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)
mode="${1:-all}"

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "=== ${label}: configure (${dir}) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== ${label}: build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== ${label}: ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${jobs}")
  echo "=== ${label}: OK ==="
}

if [[ "${mode}" != "--asan-only" && "${mode}" != "--tsan-only" ]]; then
  run_pass "default" build
fi

if [[ "${mode}" != "--default-only" && "${mode}" != "--tsan-only" ]]; then
  run_pass "asan+ubsan" build-asan \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    -DLOCKDOWN_BUILD_BENCH=OFF
fi

if [[ "${mode}" != "--default-only" && "${mode}" != "--asan-only" ]]; then
  # Only the concurrency-bearing binaries: a full-suite tsan run costs ~10x
  # and the serial subsystems have nothing for tsan to find.
  dir=build-tsan
  echo "=== tsan: configure (${dir}) ==="
  cmake -B "${dir}" -S . \
    -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread" \
    -DLOCKDOWN_BUILD_BENCH=OFF
  echo "=== tsan: build ==="
  cmake --build "${dir}" -j "${jobs}" --target util_test core_test
  echo "=== tsan: parallel tests (LOCKDOWN_THREADS=8) ==="
  LOCKDOWN_THREADS=8 "${dir}/tests/util_test" --gtest_filter='ThreadPool*'
  LOCKDOWN_THREADS=8 "${dir}/tests/core_test" \
    --gtest_filter='ParallelEquivalence.*:Pipeline*:GoldenFigures.*'
  echo "=== tsan: OK ==="
fi

echo "all requested passes green"
