#!/usr/bin/env bash
# Tier-1 verification, run twice: once with the default toolchain flags and
# once under AddressSanitizer + UndefinedBehaviorSanitizer. The sanitizer
# pass exists chiefly for src/store — mmap'd zero-copy pointer casts and the
# binary decoder must be provably clean, not just test-green.
#
# Usage: tools/check.sh [--default-only | --asan-only]
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc)
mode="${1:-all}"

run_pass() {
  local label="$1" dir="$2"
  shift 2
  echo "=== ${label}: configure (${dir}) ==="
  cmake -B "${dir}" -S . "$@"
  echo "=== ${label}: build ==="
  cmake --build "${dir}" -j "${jobs}"
  echo "=== ${label}: ctest ==="
  (cd "${dir}" && ctest --output-on-failure -j "${jobs}")
  echo "=== ${label}: OK ==="
}

if [[ "${mode}" != "--asan-only" ]]; then
  run_pass "default" build
fi

if [[ "${mode}" != "--default-only" ]]; then
  run_pass "asan+ubsan" build-asan \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" \
    -DLOCKDOWN_BUILD_BENCH=OFF
fi

echo "all requested passes green"
