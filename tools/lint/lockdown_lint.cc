// lockdown_lint — the project's determinism & lock-discipline contract
// checker (DESIGN.md §11).
//
// Clang Thread Safety Analysis proves lock/field pairings; this tool checks
// the contracts clang has no vocabulary for: the DESIGN §5 determinism
// invariants (integer-only accumulation in parallel merges, no
// unordered-container iteration on serialization paths, one sanctioned
// randomness source), the observability span registry, the LDS writer/reader
// CRC pairing, and the CLI flag inventory. It is a *lexical* checker: files
// are stripped of comments and string-literal contents, then each rule
// pattern-matches the remaining code. The rules are deliberately
// conservative approximations — a construct that defeats the lexer defeats
// the rule — and every rule supports explicit, per-line suppression so a
// reviewed exception is visible in the diff instead of silently exempted.
//
// Rules (run `lockdown_lint --list-rules`):
//   LD001 float-in-parallel-merge   float/double inside a ParallelFor lambda
//                                   body, or anywhere in a kernel TU
//                                   (src/query/kernels*) — integers only
//                                   until figure boundaries.
//   LD002 unordered-iteration       range-for over a std::unordered_map/set
//                                   inside a merge/serialization function
//                                   (name contains Merge/Flush/Encode/
//                                   Serialize/Write/Save/Snapshot) or
//                                   anywhere in src/store/.
//   LD003 nondeterministic-source   rand()/srand()/time()/random_device/
//                                   system_clock outside src/util/rng.
//   LD004 unregistered-obs-span     OBS_SPAN("name") literal missing from
//                                   src/obs/span_names.h, or a registry
//                                   entry no OBS_SPAN uses (dead name).
//   LD005 section-crc-pairing       SectionKind written by store/writer.cc
//                                   but never referenced by store/reader.cc,
//                                   or a section push in a writer TU with no
//                                   CRC computation anywhere in that TU.
//   LD006 usage-flag-drift          flags parsed by tools/lockdown_cli.cc vs
//                                   the tools/usage.h kPublicFlags inventory
//                                   and kUsageText help body, as three-way
//                                   set equality.
//   LD007 raw-mutex-primitive       std::mutex/lock_guard/unique_lock/
//                                   condition_variable/... outside
//                                   src/util/mutex.h — use the annotated
//                                   util::Mutex wrappers.
//   LD008 raw-io-outside-shim       global-scope file syscalls (::open/
//                                   ::read/::write/::fsync/::rename/...) or
//                                   iostream file types (std::ofstream/
//                                   fopen/...) in src/store or src/ingest —
//                                   all file IO there routes through
//                                   io::File (src/io/io.h) so fault
//                                   injection, retry and crash points see
//                                   every byte.
//
// Suppressions:
//   // lockdown-lint: allow(LD002)          this line (or, when the comment
//                                           stands alone, the next line)
//   // lockdown-lint: allow(LD002, LD007)   several rules at once
//   // lockdown-lint: disable-file(LD003)   whole file, any line
//
// Output: one `path:line: LDxxx: message` per violation on stdout, sorted;
// exit 0 when clean, 1 with violations, 2 on usage/IO errors.
//
// Scanned set: *.cc / *.h under <root>/src and <root>/tools.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

struct RuleInfo {
  std::string_view id;
  std::string_view name;
};

constexpr RuleInfo kRules[] = {
    {"LD001", "float-in-parallel-merge"},
    {"LD002", "unordered-iteration"},
    {"LD003", "nondeterministic-source"},
    {"LD004", "unregistered-obs-span"},
    {"LD005", "section-crc-pairing"},
    {"LD006", "usage-flag-drift"},
    {"LD007", "raw-mutex-primitive"},
    {"LD008", "raw-io-outside-shim"},
};

// ---------------------------------------------------------------------------
// Source model: raw text, stripped code (comments and literal contents
// blanked, layout preserved), extracted string literals, suppressions.
// ---------------------------------------------------------------------------

struct StringLiteral {
  std::size_t offset = 0;  // offset of the opening quote in the file
  int line = 0;
  std::string text;
};

struct SourceFile {
  std::string rel;   // path relative to the scan root, '/'-separated
  std::string code;  // same length as raw: comments/literals blanked
  std::vector<std::size_t> line_starts;
  std::vector<StringLiteral> strings;
  std::set<std::string> disabled_rules;            // disable-file()
  std::map<int, std::set<std::string>> line_allow;  // line -> allowed rules
};

struct Finding {
  std::string rel;
  int line = 0;
  std::string rule;
  std::string message;
};

bool IsWord(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

int LineOf(const SourceFile& f, std::size_t offset) {
  const auto it = std::upper_bound(f.line_starts.begin(), f.line_starts.end(),
                                   offset);
  return static_cast<int>(it - f.line_starts.begin());
}

// Parses "lockdown-lint: allow(LD001, LD002)" / "disable-file(LD003)" out of
// one comment's text and applies it to the file.
void ApplySuppressionComment(SourceFile& f, const std::string& comment,
                             int line, bool comment_owns_line) {
  const auto apply = [&](std::string_view directive, bool file_level) {
    std::size_t pos = 0;
    while ((pos = comment.find(directive, pos)) != std::string::npos) {
      pos += directive.size();
      const std::size_t open = comment.find('(', pos);
      if (open == std::string::npos) return;
      const std::size_t close = comment.find(')', open);
      if (close == std::string::npos) return;
      std::string ids = comment.substr(open + 1, close - open - 1);
      std::stringstream ss(ids);
      std::string id;
      while (std::getline(ss, id, ',')) {
        id.erase(std::remove_if(id.begin(), id.end(),
                                [](char c) { return std::isspace(
                                    static_cast<unsigned char>(c)) != 0; }),
                 id.end());
        if (id.empty()) continue;
        if (file_level) {
          f.disabled_rules.insert(id);
        } else {
          f.line_allow[line].insert(id);
          // A comment standing on its own line covers the next line too.
          if (comment_owns_line) f.line_allow[line + 1].insert(id);
        }
      }
      pos = close;
    }
  };
  apply("lockdown-lint: disable-file", /*file_level=*/true);
  apply("lockdown-lint: allow", /*file_level=*/false);
}

// One-pass scanner: blanks comments and string/char contents (newlines kept
// so offsets and line numbers survive), extracts string literals, and feeds
// suppression comments to the file.
SourceFile StripSource(std::string raw, std::string rel) {
  SourceFile f;
  f.rel = std::move(rel);
  f.code.assign(raw.size(), ' ');
  f.line_starts.push_back(0);

  enum class State { kCode, kLine, kBlock, kString, kChar, kRaw };
  State state = State::kCode;
  std::string raw_delim;        // raw-string closing delimiter: ")<delim>\""
  std::string comment_text;     // accumulated text of the current comment
  int comment_line = 0;
  bool line_has_code = false;   // any code before the comment on this line
  StringLiteral cur_lit;

  const auto finish_comment = [&](int line) {
    if (comment_text.find("lockdown-lint:") != std::string::npos) {
      ApplySuppressionComment(f, comment_text, line, !line_has_code);
    }
    comment_text.clear();
  };

  int line = 1;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    const char next = i + 1 < raw.size() ? raw[i + 1] : '\0';
    if (c == '\n') {
      f.code[i] = '\n';
      if (state == State::kLine) {
        finish_comment(comment_line);
        state = State::kCode;
      }
      ++line;
      f.line_starts.push_back(i + 1);
      line_has_code = false;
      if (state == State::kBlock) comment_text += ' ';
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          comment_line = line;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          comment_line = line;
          ++i;
        } else if (c == '"') {
          // Raw string? look back for R / u8R / LR etc. ending in R.
          bool is_raw = i > 0 && raw[i - 1] == 'R' &&
                        (i < 2 || !IsWord(raw[i - 2]) || raw[i - 2] == '8' ||
                         raw[i - 2] == 'u' || raw[i - 2] == 'U' ||
                         raw[i - 2] == 'L');
          if (is_raw) {
            std::size_t p = i + 1;
            std::string delim;
            while (p < raw.size() && raw[p] != '(') delim += raw[p++];
            raw_delim = ")" + delim + "\"";
            cur_lit = {i, line, ""};
            state = State::kRaw;
            f.code[i] = '"';
            i = p;  // skip past '('
          } else {
            cur_lit = {i, line, ""};
            state = State::kString;
            f.code[i] = '"';
            line_has_code = true;
          }
        } else if (c == '\'') {
          state = State::kChar;
          f.code[i] = '\'';
          line_has_code = true;
        } else {
          f.code[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) {
            line_has_code = true;
          }
        }
        break;
      case State::kLine:
        comment_text += c;
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          finish_comment(comment_line);
          state = State::kCode;
          ++i;
        } else {
          comment_text += c;
        }
        break;
      case State::kString:
        if (c == '\\') {
          cur_lit.text += c;
          if (next != '\0') cur_lit.text += next;
          ++i;
        } else if (c == '"') {
          f.code[i] = '"';
          f.strings.push_back(cur_lit);
          state = State::kCode;
        } else {
          cur_lit.text += c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          ++i;
        } else if (c == '\'') {
          f.code[i] = '\'';
          state = State::kCode;
        }
        break;
      case State::kRaw:
        if (raw.compare(i, raw_delim.size(), raw_delim) == 0) {
          f.strings.push_back(cur_lit);
          i += raw_delim.size() - 1;
          // Recount lines consumed by the delimiter (it has none, but the
          // loop's '\n' handling was bypassed for the literal body — lines
          // inside the raw string were already counted by the top of loop).
          f.code[i] = '"';
          state = State::kCode;
        } else {
          cur_lit.text += c;
        }
        break;
    }
  }
  if (state == State::kLine || state == State::kBlock) finish_comment(comment_line);
  return f;
}

// ---------------------------------------------------------------------------
// Small matching helpers over stripped code
// ---------------------------------------------------------------------------

// Finds the next whole-word occurrence of `word` at or after `from`.
std::size_t FindWord(const std::string& code, std::string_view word,
                     std::size_t from) {
  std::size_t pos = from;
  while ((pos = code.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !IsWord(code[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= code.size() || !IsWord(code[end]);
    if (left_ok && right_ok) return pos;
    pos += 1;
  }
  return std::string::npos;
}

// Given the offset of an opening bracket, returns the offset one past its
// matching closer, or npos.
std::size_t MatchBracket(const std::string& code, std::size_t open,
                         char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    if (code[i] == open_ch) ++depth;
    if (code[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

// ---------------------------------------------------------------------------
// Findings sink with suppression handling
// ---------------------------------------------------------------------------

class Sink {
 public:
  void Report(const SourceFile& f, int line, std::string_view rule,
              std::string message) {
    if (f.disabled_rules.count(std::string(rule)) != 0) return;
    const auto it = f.line_allow.find(line);
    if (it != f.line_allow.end() && it->second.count(std::string(rule)) != 0) {
      return;
    }
    findings_.push_back({f.rel, line, std::string(rule), std::move(message)});
  }

  // For cross-file rules that anchor to a file but no suppressible line.
  void ReportFileLevel(const SourceFile& f, int line, std::string_view rule,
                       std::string message) {
    Report(f, line, rule, std::move(message));
  }

  [[nodiscard]] std::vector<Finding> Sorted() {
    std::sort(findings_.begin(), findings_.end(),
              [](const Finding& a, const Finding& b) {
                if (a.rel != b.rel) return a.rel < b.rel;
                if (a.line != b.line) return a.line < b.line;
                if (a.rule != b.rule) return a.rule < b.rule;
                return a.message < b.message;
              });
    return findings_;
  }

 private:
  std::vector<Finding> findings_;
};

// ---------------------------------------------------------------------------
// LD001 — float/double in ParallelFor merge lambdas and kernel TUs
// ---------------------------------------------------------------------------

void CheckFloatToken(const SourceFile& f, std::size_t begin, std::size_t end,
                     std::string_view context, Sink& sink) {
  for (const char* word : {"float", "double"}) {
    std::size_t pos = begin;
    while ((pos = FindWord(f.code, word, pos)) != std::string::npos &&
           pos < end) {
      sink.Report(f, LineOf(f, pos), "LD001",
                  std::string(word) + " " + std::string(context) +
                      " — keep accumulation integral until figure boundaries "
                      "(DESIGN §5)");
      pos += 1;
    }
  }
}

void RunLd001(const SourceFile& f, Sink& sink) {
  if (StartsWith(f.rel, "src/query/kernels")) {
    CheckFloatToken(f, 0, f.code.size(), "in an integer-only kernel TU", sink);
    return;
  }
  std::size_t pos = 0;
  while ((pos = FindWord(f.code, "ParallelFor", pos)) != std::string::npos) {
    const std::size_t call_open = f.code.find('(', pos);
    pos += 1;
    if (call_open == std::string::npos) continue;
    const std::size_t call_end =
        MatchBracket(f.code, call_open, '(', ')');
    if (call_end == std::string::npos) continue;
    // Every brace block inside the call's argument list is a lambda body.
    std::size_t scan = call_open;
    while (scan < call_end) {
      const std::size_t body_open = f.code.find('{', scan);
      if (body_open == std::string::npos || body_open >= call_end) break;
      const std::size_t body_end = MatchBracket(f.code, body_open, '{', '}');
      if (body_end == std::string::npos || body_end > call_end) break;
      CheckFloatToken(f, body_open, body_end,
                      "inside a ParallelFor lambda", sink);
      scan = body_end;
    }
    pos = call_end;
  }
}

// ---------------------------------------------------------------------------
// LD002 — unordered-container iteration in merge/serialization paths
// ---------------------------------------------------------------------------

// Collects names declared with std::unordered_map/set/... anywhere in the
// corpus (members, locals, parameters).
std::set<std::string> CollectUnorderedNames(
    const std::vector<SourceFile>& files) {
  std::set<std::string> names;
  constexpr std::string_view kTypes[] = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  for (const SourceFile& f : files) {
    for (const std::string_view type : kTypes) {
      std::size_t pos = 0;
      while ((pos = FindWord(f.code, type, pos)) != std::string::npos) {
        std::size_t p = pos + type.size();
        pos += 1;
        while (p < f.code.size() &&
               std::isspace(static_cast<unsigned char>(f.code[p]))) {
          ++p;
        }
        if (p >= f.code.size() || f.code[p] != '<') continue;
        const std::size_t after_args = MatchBracket(f.code, p, '<', '>');
        if (after_args == std::string::npos) continue;
        p = after_args;
        while (p < f.code.size() &&
               (std::isspace(static_cast<unsigned char>(f.code[p])) ||
                f.code[p] == '&' || f.code[p] == '*')) {
          ++p;
        }
        std::string name;
        while (p < f.code.size() && IsWord(f.code[p])) name += f.code[p++];
        if (!name.empty() && std::isdigit(static_cast<unsigned char>(name[0])) == 0) {
          names.insert(name);
        }
      }
    }
  }
  return names;
}

bool NameIsOrderedPath(std::string_view fn_name) {
  constexpr std::string_view kMarkers[] = {"Merge",     "Flush", "Encode",
                                           "Serialize", "Write", "Save",
                                           "Snapshot"};
  for (const std::string_view m : kMarkers) {
    if (fn_name.find(m) != std::string_view::npos) return true;
  }
  return false;
}

// Scans [begin, end) for range-based fors whose range expression mentions a
// known unordered container name.
void CheckRangeFors(const SourceFile& f, std::size_t begin, std::size_t end,
                    const std::set<std::string>& unordered,
                    std::string_view context, Sink& sink) {
  std::size_t pos = begin;
  while ((pos = FindWord(f.code, "for", pos)) != std::string::npos &&
         pos < end) {
    const std::size_t open = f.code.find('(', pos);
    pos += 1;
    if (open == std::string::npos || open >= end) continue;
    const std::size_t close = MatchBracket(f.code, open, '(', ')');
    if (close == std::string::npos) continue;
    // Find a ':' at paren depth 1 that is not part of '::'.
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = open; i < close; ++i) {
      const char c = f.code[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == ':' && depth == 1) {
        const bool dbl = (i + 1 < close && f.code[i + 1] == ':') ||
                         (i > open && f.code[i - 1] == ':');
        if (!dbl) {
          colon = i;
          break;
        }
      }
    }
    if (colon == std::string::npos) continue;
    const std::string range_expr =
        f.code.substr(colon + 1, close - colon - 2);
    for (const std::string& name : unordered) {
      if (FindWord(range_expr, name, 0) != std::string::npos) {
        sink.Report(f, LineOf(f, colon), "LD002",
                    "iteration over unordered container '" + name + "' " +
                        std::string(context) +
                        " — hash order is not deterministic; sort first or "
                        "use an ordered structure (DESIGN §5)");
        break;
      }
    }
  }
}

void RunLd002(const std::vector<SourceFile>& files, Sink& sink) {
  const std::set<std::string> unordered = CollectUnorderedNames(files);
  if (unordered.empty()) return;
  for (const SourceFile& f : files) {
    if (StartsWith(f.rel, "src/store/")) {
      CheckRangeFors(f, 0, f.code.size(), unordered,
                     "in a serialization TU (src/store)", sink);
      continue;
    }
    // Function definitions whose name marks a merge/serialization path.
    std::size_t pos = 0;
    while (pos < f.code.size()) {
      // Find an identifier followed by '('.
      while (pos < f.code.size() && !IsWord(f.code[pos])) ++pos;
      std::size_t word_end = pos;
      while (word_end < f.code.size() && IsWord(f.code[word_end])) ++word_end;
      if (word_end == pos) break;
      const std::string name = f.code.substr(pos, word_end - pos);
      std::size_t p = word_end;
      while (p < f.code.size() &&
             std::isspace(static_cast<unsigned char>(f.code[p]))) {
        ++p;
      }
      if (p < f.code.size() && f.code[p] == '(' && NameIsOrderedPath(name)) {
        const std::size_t params_end = MatchBracket(f.code, p, '(', ')');
        if (params_end != std::string::npos) {
          // A definition if a '{' appears before the next ';'.
          const std::size_t semi = f.code.find(';', params_end);
          const std::size_t brace = f.code.find('{', params_end);
          if (brace != std::string::npos &&
              (semi == std::string::npos || brace < semi)) {
            const std::size_t body_end = MatchBracket(f.code, brace, '{', '}');
            if (body_end != std::string::npos) {
              CheckRangeFors(f, brace, body_end, unordered,
                             "in merge/serialization function '" + name + "'",
                             sink);
              pos = brace + 1;  // allow nested definitions to be re-found
              continue;
            }
          }
        }
      }
      pos = word_end;
    }
  }
}

// ---------------------------------------------------------------------------
// LD003 — nondeterministic sources outside util/rng
// ---------------------------------------------------------------------------

void RunLd003(const SourceFile& f, Sink& sink) {
  if (StartsWith(f.rel, "src/util/rng")) return;
  // Banned as a call: name immediately applied.
  constexpr std::string_view kCalls[] = {"rand", "srand", "rand_r", "drand48",
                                         "time", "clock"};
  for (const std::string_view word : kCalls) {
    std::size_t pos = 0;
    while ((pos = FindWord(f.code, word, pos)) != std::string::npos) {
      std::size_t p = pos + word.size();
      const std::size_t hit = pos;
      pos += 1;
      while (p < f.code.size() &&
             std::isspace(static_cast<unsigned char>(f.code[p]))) {
        ++p;
      }
      if (p >= f.code.size() || f.code[p] != '(') continue;
      // Member calls (x.time(), x->clock()) are someone else's API; only
      // free/std calls are the libc randomness/wall-clock surface.
      std::size_t q = hit;
      while (q > 0 && std::isspace(static_cast<unsigned char>(f.code[q - 1]))) {
        --q;
      }
      if (q > 0 && (f.code[q - 1] == '.' ||
                    (q > 1 && f.code[q - 2] == '-' && f.code[q - 1] == '>'))) {
        continue;
      }
      sink.Report(f, LineOf(f, hit), "LD003",
                  "call to '" + std::string(word) +
                      "' — all randomness/wall-clock reads go through "
                      "util/rng (DESIGN §5)");
    }
  }
  // Banned as any mention: types whose construction is the hazard.
  constexpr std::string_view kTypes[] = {"random_device", "system_clock",
                                         "random_shuffle", "getrandom"};
  for (const std::string_view word : kTypes) {
    std::size_t pos = 0;
    while ((pos = FindWord(f.code, word, pos)) != std::string::npos) {
      sink.Report(f, LineOf(f, pos), "LD003",
                  "use of '" + std::string(word) +
                      "' — all randomness/wall-clock reads go through "
                      "util/rng (DESIGN §5)");
      pos += 1;
    }
  }
}

// ---------------------------------------------------------------------------
// LD008 — raw file IO outside the io::File shim (src/store, src/ingest)
// ---------------------------------------------------------------------------

void RunLd008(const SourceFile& f, Sink& sink) {
  if (!StartsWith(f.rel, "src/store/") && !StartsWith(f.rel, "src/ingest/")) {
    return;
  }
  // File syscalls, banned when called at global scope (`::name(...)`) —
  // that spelling is how this tree invokes the raw kernel surface. mmap/
  // munmap stay legal: mapping is a memory operation the shim hands off
  // after opening through io::File.
  constexpr std::string_view kSyscalls[] = {
      "open",   "openat",   "creat",     "read",     "pread",
      "readv",  "write",    "pwrite",    "writev",   "fsync",
      "fdatasync", "sync_file_range",    "rename",   "renameat",
      "ftruncate", "truncate", "close",  "unlink",   "unlinkat"};
  for (const std::string_view word : kSyscalls) {
    std::size_t pos = 0;
    while ((pos = FindWord(f.code, word, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += 1;
      // Global-scope qualifier only: `::open(` but not `io::...` or `File::`.
      if (hit < 2 || f.code.compare(hit - 2, 2, "::") != 0) continue;
      if (hit >= 3 && (IsWord(f.code[hit - 3]) || f.code[hit - 3] == ':')) {
        continue;
      }
      std::size_t p = hit + word.size();
      while (p < f.code.size() &&
             std::isspace(static_cast<unsigned char>(f.code[p]))) {
        ++p;
      }
      if (p >= f.code.size() || f.code[p] != '(') continue;
      sink.Report(f, LineOf(f, hit), "LD008",
                  "raw ::" + std::string(word) +
                      " in the crash-safe zone — route file IO through "
                      "io::File (src/io/io.h) so fault injection, retry and "
                      "crash points cover it (DESIGN §12)");
    }
  }
  // iostream file types and C stdio openers: banned on any mention (an
  // #include <fstream> counts — there is nothing legitimate to do with it
  // here).
  constexpr std::string_view kStreamTokens[] = {"ofstream", "ifstream",
                                                "fstream", "fopen", "freopen"};
  for (const std::string_view word : kStreamTokens) {
    std::size_t pos = 0;
    while ((pos = FindWord(f.code, word, pos)) != std::string::npos) {
      sink.Report(f, LineOf(f, pos), "LD008",
                  "use of '" + std::string(word) +
                      "' in the crash-safe zone — route file IO through "
                      "io::File (src/io/io.h) so fault injection, retry and "
                      "crash points cover it (DESIGN §12)");
      pos += 1;
    }
  }
}

// ---------------------------------------------------------------------------
// LD004 — OBS_SPAN names vs src/obs/span_names.h registry
// ---------------------------------------------------------------------------

void RunLd004(const std::vector<SourceFile>& files, Sink& sink) {
  const SourceFile* registry = nullptr;
  for (const SourceFile& f : files) {
    if (f.rel == "src/obs/span_names.h") registry = &f;
  }
  // Collect every OBS_SPAN("literal") use with its site.
  struct Use {
    const SourceFile* file;
    int line;
    std::string name;
  };
  std::vector<Use> uses;
  for (const SourceFile& f : files) {
    if (f.rel == "src/obs/trace.h") continue;  // the macro's own definition
    std::size_t pos = 0;
    while ((pos = FindWord(f.code, "OBS_SPAN", pos)) != std::string::npos) {
      const std::size_t site = pos;
      pos += 1;
      // The argument literal is the first string starting after the macro
      // name and within the call parens.
      const std::size_t open = f.code.find('(', site);
      if (open == std::string::npos) continue;
      const std::size_t close = MatchBracket(f.code, open, '(', ')');
      if (close == std::string::npos) continue;
      for (const StringLiteral& lit : f.strings) {
        if (lit.offset > open && lit.offset < close) {
          uses.push_back({&f, lit.line, lit.text});
          break;
        }
      }
    }
  }
  if (registry == nullptr) {
    for (const Use& u : uses) {
      sink.Report(*u.file, u.line, "LD004",
                  "OBS_SPAN(\"" + u.name +
                      "\") but no span registry (src/obs/span_names.h) in "
                      "the tree");
    }
    return;
  }
  std::set<std::string> registered;
  std::map<std::string, int> registry_lines;
  for (const StringLiteral& lit : registry->strings) {
    registered.insert(lit.text);
    registry_lines.emplace(lit.text, lit.line);
  }
  std::set<std::string> used;
  for (const Use& u : uses) {
    used.insert(u.name);
    if (registered.count(u.name) == 0) {
      sink.Report(*u.file, u.line, "LD004",
                  "OBS_SPAN(\"" + u.name +
                      "\") is not registered in src/obs/span_names.h");
    }
  }
  for (const auto& [name, line] : registry_lines) {
    if (used.count(name) == 0) {
      sink.Report(*registry, line, "LD004",
                  "registered span name \"" + name +
                      "\" has no OBS_SPAN use — remove the dead entry");
    }
  }
}

// ---------------------------------------------------------------------------
// LD005 — LDS section write / CRC + reader pairing
// ---------------------------------------------------------------------------

void CollectSectionKinds(const SourceFile& f,
                         std::map<std::string, int>& kinds) {
  std::size_t pos = 0;
  while ((pos = f.code.find("SectionKind", pos)) != std::string::npos) {
    std::size_t p = pos + std::string_view("SectionKind").size();
    pos += 1;
    if (f.code.compare(p, 2, "::") != 0) continue;
    p += 2;
    std::string name;
    while (p < f.code.size() && IsWord(f.code[p])) name += f.code[p++];
    if (!name.empty()) kinds.emplace(name, LineOf(f, p - 1));
  }
}

void RunLd005(const std::vector<SourceFile>& files, Sink& sink) {
  const SourceFile* writer = nullptr;
  const SourceFile* reader = nullptr;
  for (const SourceFile& f : files) {
    if (f.rel == "src/store/writer.cc") writer = &f;
    if (f.rel == "src/store/reader.cc") reader = &f;
  }
  if (writer == nullptr) return;
  std::map<std::string, int> written;
  CollectSectionKinds(*writer, written);
  if (reader != nullptr) {
    std::map<std::string, int> read;
    CollectSectionKinds(*reader, read);
    for (const auto& [kind, line] : written) {
      if (read.count(kind) == 0) {
        sink.Report(*writer, line, "LD005",
                    "section " + kind +
                        " is written but src/store/reader.cc never references "
                        "it — the verify path would skip its CRC");
      }
    }
  }
  // Every section push in a TU that never computes a CRC is unchecksummed.
  const bool has_crc =
      writer->code.find("Crc") != std::string::npos ||
      writer->code.find("crc32") != std::string::npos;
  if (!has_crc) {
    std::size_t pos = 0;
    while ((pos = writer->code.find("push_back", pos)) != std::string::npos) {
      const std::size_t site = pos;
      pos += 1;
      const std::size_t open = writer->code.find('(', site);
      if (open == std::string::npos) continue;
      const std::size_t close = MatchBracket(writer->code, open, '(', ')');
      if (close == std::string::npos) continue;
      if (writer->code.find("SectionKind", open) < close) {
        sink.Report(*writer, LineOf(*writer, site), "LD005",
                    "section pushed in a TU with no CRC computation — every "
                    "LDS section write must be checksummed");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// LD006 — usage.h flag inventory vs lockdown_cli.cc parser
// ---------------------------------------------------------------------------

bool LooksLikeFlag(const std::string& s) {
  if (s.size() < 3 || s[0] != '-' || s[1] != '-') return false;
  if (std::isalpha(static_cast<unsigned char>(s[2])) == 0) return false;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '-') {
      return false;
    }
  }
  return true;
}

void RunLd006(const std::vector<SourceFile>& files, Sink& sink) {
  const SourceFile* usage = nullptr;
  const SourceFile* cli = nullptr;
  for (const SourceFile& f : files) {
    if (f.rel == "tools/usage.h") usage = &f;
    if (f.rel == "tools/lockdown_cli.cc") cli = &f;
  }
  if (usage == nullptr || cli == nullptr) return;

  // Inventory: exact-flag literals in usage.h outside the usage text; the
  // usage text itself is the (multi-line) literal mentioning "usage:".
  std::map<std::string, int> inventory;
  std::set<std::string> documented;
  for (const StringLiteral& lit : usage->strings) {
    if (lit.text.find("usage:") != std::string::npos) {
      // Tokenize the help body for --flag mentions.
      for (std::size_t i = 0; i + 2 < lit.text.size(); ++i) {
        if (lit.text[i] == '-' && lit.text[i + 1] == '-' &&
            std::isalpha(static_cast<unsigned char>(lit.text[i + 2])) != 0 &&
            (i == 0 || !IsWord(lit.text[i - 1]))) {
          std::size_t e = i + 2;
          while (e < lit.text.size() &&
                 (IsWord(lit.text[e]) || lit.text[e] == '-')) {
            ++e;
          }
          documented.insert(lit.text.substr(i, e - i));
          i = e;
        }
      }
    } else if (LooksLikeFlag(lit.text)) {
      inventory.emplace(lit.text, lit.line);
    }
  }
  std::map<std::string, int> parsed;
  for (const StringLiteral& lit : cli->strings) {
    if (LooksLikeFlag(lit.text)) parsed.emplace(lit.text, lit.line);
  }
  for (const auto& [flag, line] : parsed) {
    if (inventory.count(flag) == 0) {
      sink.Report(*cli, line, "LD006",
                  "flag " + flag +
                      " is parsed but missing from the tools/usage.h "
                      "kPublicFlags inventory");
    }
  }
  for (const auto& [flag, line] : inventory) {
    if (parsed.count(flag) == 0) {
      sink.Report(*usage, line, "LD006",
                  "flag " + flag +
                      " is in the kPublicFlags inventory but "
                      "tools/lockdown_cli.cc never parses it");
    }
    if (documented.count(flag) == 0) {
      sink.Report(*usage, line, "LD006",
                  "flag " + flag + " is not documented in kUsageText");
    }
  }
}

// ---------------------------------------------------------------------------
// LD007 — raw lock primitives outside util/mutex.h
// ---------------------------------------------------------------------------

void RunLd007(const SourceFile& f, Sink& sink) {
  if (f.rel == "src/util/mutex.h") return;  // the one sanctioned wrapper
  constexpr std::string_view kBanned[] = {
      "mutex",          "recursive_mutex", "shared_mutex", "timed_mutex",
      "lock_guard",     "unique_lock",     "scoped_lock",  "shared_lock",
      "condition_variable", "condition_variable_any"};
  for (const std::string_view word : kBanned) {
    std::size_t pos = 0;
    while ((pos = FindWord(f.code, word, pos)) != std::string::npos) {
      const std::size_t hit = pos;
      pos += 1;
      // Only the std:: spellings: the qualifier must immediately precede.
      if (hit < 5 || f.code.compare(hit - 5, 5, "std::") != 0) continue;
      sink.Report(f, LineOf(f, hit), "LD007",
                  "raw std::" + std::string(word) +
                      " — use the annotated util::Mutex/MutexLock/CondVar "
                      "(src/util/mutex.h) so thread-safety analysis sees it");
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool ShouldScan(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h";
}

int Run(const fs::path& root, const std::set<std::string>& only_rules) {
  std::vector<SourceFile> files;
  for (const char* top : {"src", "tools"}) {
    const fs::path dir = root / top;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file() || !ShouldScan(entry.path())) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "lockdown_lint: cannot read %s\n",
                     entry.path().c_str());
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      std::string rel = fs::relative(entry.path(), root).generic_string();
      files.push_back(StripSource(ss.str(), std::move(rel)));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) { return a.rel < b.rel; });

  const auto enabled = [&](std::string_view id) {
    return only_rules.empty() || only_rules.count(std::string(id)) != 0;
  };

  Sink sink;
  for (const SourceFile& f : files) {
    if (enabled("LD001")) RunLd001(f, sink);
    if (enabled("LD003")) RunLd003(f, sink);
    if (enabled("LD007")) RunLd007(f, sink);
    if (enabled("LD008")) RunLd008(f, sink);
  }
  if (enabled("LD002")) RunLd002(files, sink);
  if (enabled("LD004")) RunLd004(files, sink);
  if (enabled("LD005")) RunLd005(files, sink);
  if (enabled("LD006")) RunLd006(files, sink);

  const std::vector<Finding> findings = sink.Sorted();
  for (const Finding& v : findings) {
    std::printf("%s:%d: %s: %s\n", v.rel.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  if (!findings.empty()) {
    std::fprintf(stderr, "lockdown_lint: %zu violation(s)\n", findings.size());
    return 1;
  }
  return 0;
}

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: lockdown_lint [--root DIR] [--rules LD001,LD002,...]\n"
               "       lockdown_lint --list-rules\n"
               "\n"
               "Checks the lockdown determinism & lock-discipline contracts\n"
               "over DIR/src and DIR/tools (default DIR: .). Exit 0 clean,\n"
               "1 with violations, 2 on usage/IO error.\n");
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  std::set<std::string> only_rules;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        PrintUsage(stderr);
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--rules") {
      if (i + 1 >= argc) {
        PrintUsage(stderr);
        return 2;
      }
      std::stringstream ss(argv[++i]);
      std::string id;
      while (std::getline(ss, id, ',')) {
        if (!id.empty()) only_rules.insert(id);
      }
    } else if (arg == "--list-rules") {
      for (const RuleInfo& r : kRules) {
        std::printf("%s %s\n", std::string(r.id).c_str(),
                    std::string(r.name).c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "lockdown_lint: unknown argument: %s\n",
                   std::string(arg).c_str());
      PrintUsage(stderr);
      return 2;
    }
  }
  for (const std::string& id : only_rules) {
    const bool known =
        std::any_of(std::begin(kRules), std::end(kRules),
                    [&](const RuleInfo& r) { return r.id == id; });
    if (!known) {
      std::fprintf(stderr, "lockdown_lint: unknown rule id: %s\n", id.c_str());
      return 2;
    }
  }
  if (!fs::exists(root)) {
    std::fprintf(stderr, "lockdown_lint: no such root: %s\n", root.c_str());
    return 2;
  }
  return Run(root, only_rules);
}
