// lockdown_cli — command-line front end for the measurement pipeline.
//
//   lockdown_cli simulate --out DIR [--students N] [--seed S]
//       Simulate the campus and write the four collection logs
//       (conn/dhcp/dns/ua) into DIR — the "collection box" phase.
//
//   lockdown_cli analyze --logs DIR [--students N] [--seed S]
//       Ingest previously exported logs, run the processing pipeline, and
//       print the headline statistics. --seed must match the export (it
//       derives the anonymization key; mismatched keys still process but
//       produce unlinkable pseudonyms).
//
//   lockdown_cli study [--students N] [--seed S]
//       One-shot: simulate + process + print every figure's summary.
//
//   lockdown_cli catalog
//       Dump the synthetic service catalog (name, category, country, block).
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/offline.h"
#include "core/study.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace lockdown;

struct Options {
  std::string command;
  std::string dir;
  int students = 400;
  std::uint64_t seed = 2020;
};

void Usage() {
  std::cerr << "usage: lockdown_cli <simulate|analyze|study|catalog> "
               "[--out DIR] [--logs DIR] [--students N] [--seed S]\n";
}

bool ParseArgs(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out" || arg == "--logs") {
      const char* v = next();
      if (!v) return false;
      opts.dir = v;
    } else if (arg == "--students") {
      const char* v = next();
      if (!v) return false;
      opts.students = std::atoi(v);
      if (opts.students <= 0) return false;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opts.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

core::StudyConfig ConfigFrom(const Options& opts) {
  return core::StudyConfig::Small(opts.students, opts.seed);
}

void PrintHeadline(const core::CollectionResult& collection) {
  const core::LockdownStudy study(collection.dataset,
                                  world::ServiceCatalog::Default());
  const auto h = study.HeadlineStats();
  const auto sw = study.CountSwitches();
  util::TablePrinter table({"statistic", "value"});
  table.AddRow({"flows", std::to_string(collection.dataset.num_flows())});
  table.AddRow({"devices", std::to_string(collection.dataset.num_devices())});
  table.AddRow({"peak active devices", std::to_string(h.peak_active_devices)});
  table.AddRow({"trough active devices", std::to_string(h.trough_active_devices)});
  table.AddRow({"post-shutdown users", std::to_string(h.post_shutdown_users)});
  table.AddRow({"traffic increase Feb->Apr/May",
                util::FormatDouble(100 * h.traffic_increase, 0) + "%"});
  table.AddRow({"distinct-site increase",
                util::FormatDouble(100 * h.distinct_sites_increase, 0) + "%"});
  table.AddRow({"international devices",
                std::to_string(h.international_devices) + " (" +
                    util::FormatDouble(100 * h.international_share, 1) + "%)"});
  table.AddRow({"switches feb / post / new",
                std::to_string(sw.active_february) + " / " +
                    std::to_string(sw.active_post_shutdown) + " / " +
                    std::to_string(sw.new_in_april_may)});
  table.Print(std::cout);
}

int RunSimulate(const Options& opts) {
  if (opts.dir.empty()) {
    std::cerr << "simulate requires --out DIR\n";
    return 2;
  }
  std::cout << "simulating " << opts.students << " students (seed " << opts.seed
            << ") -> " << opts.dir << "\n";
  core::ExportLogs(ConfigFrom(opts), opts.dir);
  for (const char* name : {core::LogFiles::kConn, core::LogFiles::kDhcp,
                           core::LogFiles::kDns, core::LogFiles::kUa}) {
    const auto path = std::filesystem::path(opts.dir) / name;
    std::cout << "  " << path.string() << "  ("
              << std::filesystem::file_size(path) / 1024 << " KiB)\n";
  }
  return 0;
}

int RunAnalyze(const Options& opts) {
  if (opts.dir.empty()) {
    std::cerr << "analyze requires --logs DIR\n";
    return 2;
  }
  std::cout << "processing logs from " << opts.dir << "\n";
  const auto collection = core::CollectFromLogs(opts.dir, ConfigFrom(opts));
  PrintHeadline(collection);
  return 0;
}

int RunStudy(const Options& opts) {
  std::cout << "simulating " << opts.students << " students (seed " << opts.seed
            << ")\n";
  const auto collection = core::MeasurementPipeline::Collect(ConfigFrom(opts));
  PrintHeadline(collection);
  return 0;
}

int RunCatalog() {
  util::TablePrinter table({"service", "category", "country", "block", "flags"});
  for (const world::Service& svc : world::ServiceCatalog::Default().services()) {
    std::string flags;
    if (svc.is_cdn) flags += "cdn ";
    if (svc.tap_excluded) flags += "tap-excluded ";
    if (svc.dns_less) flags += "dns-less ";
    table.AddRow({svc.name, world::ToString(svc.category), svc.country,
                  svc.block.ToString(), flags});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, opts)) {
    Usage();
    return 2;
  }
  try {
    if (opts.command == "simulate") return RunSimulate(opts);
    if (opts.command == "analyze") return RunAnalyze(opts);
    if (opts.command == "study") return RunStudy(opts);
    if (opts.command == "catalog") return RunCatalog();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  Usage();
  return 2;
}
