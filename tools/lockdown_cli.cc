// lockdown_cli — command-line front end for the measurement pipeline.
//
//   lockdown_cli simulate --out DIR [--students N] [--seed S]
//       Simulate the campus and write the four collection logs
//       (conn/dhcp/dns/ua) into DIR — the "collection box" phase.
//
//   lockdown_cli analyze --logs DIR [--students N] [--seed S]
//       Ingest previously exported logs, run the processing pipeline, and
//       print the headline statistics. --seed must match the export (it
//       derives the anonymization key; mismatched keys still process but
//       produce unlinkable pseudonyms). If DIR holds a dataset.lds snapshot
//       it is loaded directly (the LDS fast path) instead of re-processing
//       the TSV logs.
//
//   lockdown_cli study [--students N] [--seed S] [--streaming]
//                      [--memory-budget BYTES]
//       One-shot: simulate + process + print every figure's summary.
//       --streaming swaps the batch study for the one-pass bounded-memory
//       sketch engine (src/stream) and appends its accuracy report;
//       --memory-budget sizes the engine's analysis state (default 32M,
//       implies --streaming). Both modes report the process peak RSS.
//
//   lockdown_cli snapshot save --out FILE [--logs DIR] [--students N] [--seed S]
//                              [--compress]
//       Write an LDS snapshot of the processed dataset: simulate + process
//       (or re-process exported logs with --logs) and persist the result.
//       --compress stores the flows as dictionary/delta-varint coded columns
//       (smaller file, no zero-copy load). Analyses and benches then start
//       from FILE in milliseconds.
//
//   lockdown_cli snapshot info FILE
//       Print snapshot header, provenance and section table.
//
//   lockdown_cli snapshot verify FILE
//       Full integrity check (structure, CRC32C checksums, invariants);
//       exits non-zero on any corruption.
//
//   lockdown_cli fault --logs DIR --out DIR [--seed S] [--rate R] [--kind K]
//       Copy the four collection logs from --logs to --out, passing each
//       through the deterministic FaultInjector (seeded, so a given
//       seed/rate/kind reproduces byte-identical dirty logs). The ingest
//       robustness tier of tools/check.sh is built on this.
//
//   lockdown_cli catalog
//       Dump the synthetic service catalog (name, category, country, block).
//
// Ingest options (analyze, and snapshot save --logs):
//   --ingest-mode strict|tolerant   strict (default) rejects a log on the
//                                   first malformed row; tolerant skips and
//                                   accounts malformed rows per the budget
//   --max-error-rate R              tolerant-mode rejection budget (default 0.01)
//   --quarantine-dir DIR            write rejected lines to DIR/<log>.rej
//
// Observability (every command):
//   --metrics-out FILE              write the obs metrics snapshot as JSON at exit
//   --trace-out FILE                write scoped-span timing as Chrome
//                                   trace-event JSON at exit
//   LOCKDOWN_METRICS / LOCKDOWN_TRACE env vars bind the same outputs; the
//   explicit flags win when both are given.
//
// Exit codes: 0 success; 1 usage error; 2 I/O error (missing file, failed
// read/write); 3 malformed input beyond the error budget; 4 corrupt
// dataset.lds with no TSV fallback available.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/offline.h"
#include "core/study.h"
#include "io/io.h"
#include "obs/obs.h"
#include "snapshot_info.h"
#include "store/format.h"
#include "store/snapshot.h"
#include "stream/streaming_study.h"
#include "usage.h"
#include "util/fault.h"
#include "util/memstats.h"
#include "util/strings.h"
#include "util/table.h"

namespace {

using namespace lockdown;

// Exit codes, kept in sync with the comment above and the README.
constexpr int kExitOk = 0;
constexpr int kExitUsage = 1;
constexpr int kExitIo = 2;
constexpr int kExitBudget = 3;
constexpr int kExitCorruptSnapshot = 4;

struct Options {
  std::string command;
  std::string subcommand;  // for `snapshot <save|info|verify>`
  std::string dir;
  std::string out;   // snapshot target file / fault output dir
  std::string file;  // snapshot input file (positional)
  int students = 400;
  std::uint64_t seed = 2020;
  int threads = 0;  // 0 = LOCKDOWN_THREADS / hardware; 1 = serial
  ingest::IngestOptions ingest;
  double fault_rate = 0.01;
  std::string fault_kind = "mixed";
  bool streaming = false;
  bool compress = false;  // snapshot save: columnar-coded v3 sections
  std::size_t memory_budget = stream::StreamingOptions{}.memory_budget_bytes;
  std::string metrics_out;  // --metrics-out FILE (obs metrics JSON at exit)
  std::string trace_out;    // --trace-out FILE (Chrome trace JSON at exit)
  std::string io_crash_at;  // --io-crash-at POINT (crash-harness hook)
  bool help = false;
};

void Usage() { std::cerr << cli::kUsageText; }

bool ParseArgs(int argc, char** argv, Options& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  if (opts.command == "--help" || opts.command == "-h" ||
      opts.command == "help") {
    opts.help = true;
    return true;
  }
  int first_flag = 2;
  if (opts.command == "snapshot") {
    if (argc < 3) return false;
    opts.subcommand = argv[2];
    first_flag = 3;
  }
  for (int i = first_flag; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      opts.out = v;
      // simulate's --out names the directory everything else calls --logs.
      if (opts.command == "simulate") opts.dir = v;
    } else if (arg == "--logs") {
      const char* v = next();
      if (!v) return false;
      opts.dir = v;
    } else if (arg == "--students") {
      const char* v = next();
      if (!v) return false;
      opts.students = std::atoi(v);
      if (opts.students <= 0) return false;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opts.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      opts.threads = std::atoi(v);
      if (opts.threads < 0) return false;
    } else if (arg == "--ingest-mode") {
      const char* v = next();
      if (!v) return false;
      const auto mode = ingest::ParseMode(v);
      if (!mode) {
        std::cerr << "--ingest-mode must be strict or tolerant, got: " << v << "\n";
        return false;
      }
      opts.ingest.mode = *mode;
    } else if (arg == "--max-error-rate") {
      const char* v = next();
      if (!v) return false;
      opts.ingest.max_error_rate = std::atof(v);
      if (opts.ingest.max_error_rate < 0 || opts.ingest.max_error_rate > 1) {
        return false;
      }
    } else if (arg == "--quarantine-dir") {
      const char* v = next();
      if (!v) return false;
      opts.ingest.quarantine_dir = v;
    } else if (arg == "--rate") {
      const char* v = next();
      if (!v) return false;
      opts.fault_rate = std::atof(v);
      if (opts.fault_rate < 0 || opts.fault_rate > 1) return false;
    } else if (arg == "--kind") {
      const char* v = next();
      if (!v) return false;
      opts.fault_kind = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      opts.metrics_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      opts.trace_out = v;
    } else if (arg == "--io-crash-at") {
      const char* v = next();
      if (!v) return false;
      opts.io_crash_at = v;
    } else if (arg == "--streaming") {
      opts.streaming = true;
    } else if (arg == "--compress") {
      opts.compress = true;
    } else if (arg == "--memory-budget") {
      const char* v = next();
      if (!v) return false;
      const auto bytes = util::ParseByteSize(v);
      if (!bytes) {
        std::cerr << "--memory-budget wants a byte size like 33554432, 64M or "
                     "2G, got: " << v << "\n";
        return false;
      }
      opts.memory_budget = *bytes;
      opts.streaming = true;  // a budget only means anything when streaming
    } else if (arg == "--help" || arg == "-h") {
      opts.help = true;
      return true;
    } else if (!arg.starts_with("--") && opts.command == "snapshot" &&
               opts.file.empty()) {
      opts.file = arg;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      return false;
    }
  }
  return true;
}

core::StudyConfig ConfigFrom(const Options& opts) {
  core::StudyConfig cfg = core::StudyConfig::Small(opts.students, opts.seed);
  cfg.threads = opts.threads;
  return cfg;
}

void PrintHeadlineTable(const core::Dataset& dataset,
                        const core::LockdownStudy::Headline& h,
                        const core::LockdownStudy::SwitchCounts& sw) {
  util::TablePrinter table({"statistic", "value"});
  table.AddRow({"flows", std::to_string(dataset.num_flows())});
  table.AddRow({"devices", std::to_string(dataset.num_devices())});
  table.AddRow({"peak active devices", std::to_string(h.peak_active_devices)});
  table.AddRow({"trough active devices", std::to_string(h.trough_active_devices)});
  table.AddRow({"post-shutdown users", std::to_string(h.post_shutdown_users)});
  table.AddRow({"traffic increase Feb->Apr/May",
                util::FormatDouble(100 * h.traffic_increase, 0) + "%"});
  table.AddRow({"distinct-site increase",
                util::FormatDouble(100 * h.distinct_sites_increase, 0) + "%"});
  table.AddRow({"international devices",
                std::to_string(h.international_devices) + " (" +
                    util::FormatDouble(100 * h.international_share, 1) + "%)"});
  table.AddRow({"switches feb / post / new",
                std::to_string(sw.active_february) + " / " +
                    std::to_string(sw.active_post_shutdown) + " / " +
                    std::to_string(sw.new_in_april_may)});
  table.Print(std::cout);
}

void PrintPeakRss() {
  std::cout << "peak RSS: " << util::FormatByteSize(util::PeakRssBytes())
            << "\n";
}

void PrintHeadline(const core::CollectionResult& collection, int threads) {
  const core::LockdownStudy study(collection.dataset,
                                  world::ServiceCatalog::Default(), threads);
  PrintHeadlineTable(collection.dataset, study.HeadlineStats(),
                     study.CountSwitches());
}

/// The streaming counterpart of PrintHeadline: same figure table, produced
/// by the bounded-memory engine, followed by its accuracy report.
void PrintStreamingStudy(const core::CollectionResult& collection,
                         const Options& opts) {
  stream::StreamingOptions streaming;
  streaming.memory_budget_bytes = opts.memory_budget;
  streaming.threads = opts.threads;
  const stream::StreamingStudy study(collection.dataset,
                                     world::ServiceCatalog::Default(),
                                     streaming);
  PrintHeadlineTable(collection.dataset, study.HeadlineStats(),
                     study.CountSwitches());
  const stream::StreamingStudy::AccuracyReport report = study.Accuracy();
  std::cout << "\n";
  util::TablePrinter table({"accuracy", "value"});
  table.AddRow({"sketch state",
                util::FormatByteSize(report.state_bytes) + " of " +
                    util::FormatByteSize(report.budget_bytes) + " budget"});
  table.AddRow({"HLL precision",
                "p=" + std::to_string(report.hll_precision) + " (rse " +
                    util::FormatDouble(
                        100 * report.hll_relative_standard_error, 2) +
                    "%)"});
  table.AddRow({"count-min",
                "eps " + util::FormatDouble(100 * report.cms_epsilon, 4) +
                    "% of " + util::FormatByteSize(report.cms_total_bytes) +
                    ", delta " + util::FormatDouble(report.cms_delta, 3)});
  table.AddRow({"reservoirs",
                "k=" + std::to_string(report.reservoir_capacity) +
                    (report.reservoirs_exact ? " (exact: nothing evicted)"
                                             : " (sampled)")});
  table.Print(std::cout);
}

/// Prints per-file ingest accounting after a TSV-path collect/analyze run.
void PrintIngestSummary(const core::IngestSummary& summary,
                        const ingest::IngestOptions& options) {
  const ingest::IngestReport total = summary.Total();
  std::cout << "ingest (" << ingest::ToString(options.mode) << " mode";
  if (options.mode == ingest::Mode::kTolerant) {
    std::cout << ", budget " << util::FormatDouble(100 * options.max_error_rate, 2)
              << "%";
  }
  std::cout << "):\n";
  for (const ingest::IngestReport* r :
       {&summary.conn, &summary.dhcp, &summary.dns, &summary.ua}) {
    std::cout << "  " << r->Summary() << "\n";
    if (!r->quarantine_file.empty()) {
      std::cout << "    quarantined -> " << r->quarantine_file.string() << "\n";
    }
  }
  if (total.rejected > 0) {
    std::cout << "  total rejected: " << total.rejected << " of "
              << total.lines_total << " lines ("
              << util::FormatDouble(100 * total.error_rate(), 2) << "%)\n";
  }
}

int RunSimulate(const Options& opts) {
  if (opts.dir.empty()) {
    std::cerr << "simulate requires --out DIR\n";
    return kExitUsage;
  }
  std::cout << "simulating " << opts.students << " students (seed " << opts.seed
            << ") -> " << opts.dir << "\n";
  core::ExportLogs(ConfigFrom(opts), opts.dir);
  for (const char* name : {core::LogFiles::kConn, core::LogFiles::kDhcp,
                           core::LogFiles::kDns, core::LogFiles::kUa}) {
    const auto path = std::filesystem::path(opts.dir) / name;
    std::cout << "  " << path.string() << "  ("
              << std::filesystem::file_size(path) / 1024 << " KiB)\n";
  }
  return 0;
}

int RunAnalyze(const Options& opts) {
  if (opts.dir.empty()) {
    std::cerr << "analyze requires --logs DIR\n";
    return kExitUsage;
  }
  const bool tolerant = opts.ingest.mode == ingest::Mode::kTolerant;
  const auto snapshot =
      std::filesystem::path(opts.dir) / core::LogFiles::kSnapshot;
  if (std::filesystem::exists(snapshot)) {
    std::cout << "loading snapshot " << snapshot.string() << " (LDS fast path)\n";
    try {
      store::LoadOptions load;
      load.salvage = tolerant;
      auto snap = store::LoadSnapshot(snapshot, load);
      for (const std::string& w : snap.warnings) {
        std::cerr << "salvage: " << w << "\n";
      }
      // The day-run index (LDS v3, rebuilt on older files) makes day-windowed
      // scans touch only their runs; surface its shape so users see what the
      // figure queries iterate.
      const core::Dataset& ds = snap.collection.dataset;
      if (ds.has_day_runs()) {
        const core::DayRunIndex& runs = ds.day_runs();
        int active_days = 0;
        for (int d = 0; d < runs.num_days(); ++d) {
          active_days +=
              runs.day_offsets[static_cast<std::size_t>(d)] !=
              runs.day_offsets[static_cast<std::size_t>(d) + 1];
        }
        std::cout << "day index: " << runs.num_runs() << " device-day runs over "
                  << active_days << " active days\n";
      }
      PrintHeadline(snap.collection, opts.threads);
      return kExitOk;
    } catch (const store::Error& e) {
      // Fallback order: LDS fast path -> TSV re-processing. Only tolerant
      // mode may fall back, and only when the TSV logs are actually there.
      const bool tsv_available = std::filesystem::exists(
          std::filesystem::path(opts.dir) / core::LogFiles::kConn);
      if (!tolerant || !tsv_available) {
        std::cerr << "error: corrupt snapshot: " << e.what() << "\n";
        if (!tolerant && tsv_available) {
          std::cerr << "hint: rerun with --ingest-mode tolerant to fall back "
                       "to the TSV logs\n";
        }
        return kExitCorruptSnapshot;
      }
      std::cerr << "salvage: corrupt snapshot (" << e.what()
                << "): falling back to the TSV logs\n";
    }
  }
  std::cout << "processing logs from " << opts.dir << "\n";
  core::IngestSummary summary;
  const auto collection =
      core::CollectFromLogs(opts.dir, ConfigFrom(opts), opts.ingest, &summary);
  PrintIngestSummary(summary, opts.ingest);
  PrintHeadline(collection, opts.threads);
  return kExitOk;
}

// --- fault -------------------------------------------------------------------

int RunFault(const Options& opts) {
  if (opts.dir.empty() || opts.out.empty()) {
    std::cerr << "fault requires --logs DIR and --out DIR\n";
    return kExitUsage;
  }
  util::FaultKind kind = util::FaultKind::kMixed;
  bool known = false;
  for (int k = 0; k < util::kNumFaultKinds; ++k) {
    if (opts.fault_kind == util::ToString(static_cast<util::FaultKind>(k))) {
      kind = static_cast<util::FaultKind>(k);
      known = true;
    }
  }
  if (!known) {
    std::cerr << "unknown --kind " << opts.fault_kind
              << " (want truncate_tail|bit_flip|drop_line|duplicate_line|"
                 "splice_garbage|mixed)\n";
    return kExitUsage;
  }
  const util::FaultInjector injector({opts.seed, opts.fault_rate});
  std::filesystem::create_directories(opts.out);
  for (const char* name : {core::LogFiles::kConn, core::LogFiles::kDhcp,
                           core::LogFiles::kDns, core::LogFiles::kUa}) {
    const auto src = std::filesystem::path(opts.dir) / name;
    const auto dst = std::filesystem::path(opts.out) / name;
    std::ifstream in(src, std::ios::binary);
    if (!in) throw ingest::IoError(src, "open", errno);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) throw ingest::IoError(src, "read", errno);
    const std::string faulted = injector.Apply(buf.str(), kind);
    std::ofstream out(dst, std::ios::binary);
    out << faulted;
    out.flush();
    if (!out) throw ingest::IoError(dst, "write", errno);
    std::cout << "  " << dst.string() << "  (" << util::ToString(kind)
              << ", seed " << opts.seed << ", rate " << opts.fault_rate << ", "
              << buf.str().size() << " -> " << faulted.size() << " bytes)\n";
  }
  return kExitOk;
}

// --- snapshot save | info | verify -------------------------------------------

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

int RunSnapshotSave(const Options& opts) {
  if (opts.out.empty()) {
    std::cerr << "snapshot save requires --out FILE\n";
    return kExitUsage;
  }
  for (const std::filesystem::path& stale : store::SweepOrphanTmpFiles(opts.out)) {
    std::cout << "swept stale tmp file " << stale.string() << "\n";
  }
  core::CollectionResult collection;
  store::SnapshotMeta meta;
  if (!opts.dir.empty()) {
    std::cout << "processing logs from " << opts.dir << "\n";
    core::IngestSummary summary;
    collection =
        core::CollectFromLogs(opts.dir, ConfigFrom(opts), opts.ingest, &summary);
    PrintIngestSummary(summary, opts.ingest);
  } else {
    std::cout << "simulating " << opts.students << " students (seed "
              << opts.seed << ")\n";
    collection = core::MeasurementPipeline::Collect(ConfigFrom(opts));
    meta.num_students = static_cast<std::uint64_t>(opts.students);
    meta.seed = opts.seed;
  }
  const auto t0 = std::chrono::steady_clock::now();
  store::SaveSnapshot(opts.out, collection, meta,
                      {.format_version = store::kFormatVersion,
                       .compress = opts.compress});
  std::cout << "wrote " << opts.out << (opts.compress ? " (compressed)" : "")
            << "  ("
            << std::filesystem::file_size(opts.out) / 1024 << " KiB, "
            << collection.dataset.num_flows() << " flows, "
            << collection.dataset.num_devices() << " devices, "
            << util::FormatDouble(MsSince(t0), 1) << " ms)\n";
  return 0;
}

int RunSnapshotInfo(const Options& opts) {
  if (opts.file.empty()) {
    std::cerr << "snapshot info requires a FILE argument\n";
    return kExitUsage;
  }
  const store::SnapshotInfo info = store::InspectSnapshot(opts.file);
  cli::RenderSnapshotHeader(info, std::cout);
  std::cout << "\n";
  cli::RenderSectionTable(info, std::cout);
  return 0;
}

int RunSnapshotVerify(const Options& opts) {
  if (opts.file.empty()) {
    std::cerr << "snapshot verify requires a FILE argument\n";
    return kExitUsage;
  }
  for (const std::filesystem::path& stale : store::FindOrphanTmpFiles(opts.file)) {
    std::cerr << "warning: stale tmp file: " << stale.string() << "\n";
  }
  const auto t0 = std::chrono::steady_clock::now();
  store::VerifySnapshot(opts.file);  // throws on any problem -> exit 1 in main
  const store::SnapshotInfo info = store::InspectSnapshot(opts.file);
  std::cout << opts.file << ": OK (" << info.num_flows << " flows, "
            << info.num_devices << " devices, all checksums valid, "
            << util::FormatDouble(MsSince(t0), 1) << " ms)\n";
  return 0;
}

int RunSnapshot(const Options& opts) {
  if (opts.subcommand == "save") return RunSnapshotSave(opts);
  if (opts.subcommand == "info") return RunSnapshotInfo(opts);
  if (opts.subcommand == "verify") return RunSnapshotVerify(opts);
  Usage();
  return kExitUsage;
}

int RunStudy(const Options& opts) {
  std::cout << "simulating " << opts.students << " students (seed " << opts.seed
            << ")\n";
  const auto collection = core::MeasurementPipeline::Collect(ConfigFrom(opts));
  if (opts.streaming) {
    std::cout << "streaming study (memory budget "
              << util::FormatByteSize(opts.memory_budget) << ")\n";
    PrintStreamingStudy(collection, opts);
  } else {
    PrintHeadline(collection, opts.threads);
  }
  PrintPeakRss();
  return 0;
}

int RunCatalog() {
  util::TablePrinter table({"service", "category", "country", "block", "flags"});
  for (const world::Service& svc : world::ServiceCatalog::Default().services()) {
    std::string flags;
    if (svc.is_cdn) flags += "cdn ";
    if (svc.tap_excluded) flags += "tap-excluded ";
    if (svc.dns_less) flags += "dns-less ";
    table.AddRow({svc.name, world::ToString(svc.category), svc.country,
                  svc.block.ToString(), flags});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, opts)) {
    Usage();
    return kExitUsage;
  }
  if (opts.help) {
    std::cout << cli::kUsageText;
    return kExitOk;
  }
  // Env first, explicit flags after, so --metrics-out/--trace-out win over
  // LOCKDOWN_METRICS/LOCKDOWN_TRACE. Output files are written at exit.
  obs::ConfigureFromEnv();
  if (!opts.metrics_out.empty()) obs::EnableMetricsOutput(opts.metrics_out);
  if (!opts.trace_out.empty()) obs::EnableTraceOutput(opts.trace_out);
  if (const std::string io_err = io::ConfigureFromEnv(); !io_err.empty()) {
    std::cerr << "error: " << io_err << "\n";
    return kExitUsage;
  }
  if (!opts.io_crash_at.empty() && !io::ArmCrashPoint(opts.io_crash_at)) {
    std::cerr << "error: --io-crash-at: unknown crash point '"
              << opts.io_crash_at << "' (see src/io/crash_points.h)\n";
    return kExitUsage;
  }
  try {
    int rc = kExitUsage;
    bool handled = true;
    if (opts.command == "simulate") rc = RunSimulate(opts);
    else if (opts.command == "analyze") rc = RunAnalyze(opts);
    else if (opts.command == "study") rc = RunStudy(opts);
    else if (opts.command == "snapshot") rc = RunSnapshot(opts);
    else if (opts.command == "fault") rc = RunFault(opts);
    else if (opts.command == "catalog") rc = RunCatalog();
    else handled = false;
    if (handled) {
      util::PublishRssGauges();
      return rc;
    }
  } catch (const ingest::BudgetError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitBudget;
  } catch (const ingest::IoError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitIo;
  } catch (const io::IoError& e) {
    // The shim already retried what was transient; what reaches here is a
    // permanent IO failure (injected or real).
    std::cerr << "error: " << e.what() << "\n";
    return kExitIo;
  } catch (const std::filesystem::filesystem_error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitIo;
  } catch (const store::Error& e) {
    // Snapshot commands (info/verify/save) on a corrupt file; analyze maps
    // its own fallback-aware case to kExitCorruptSnapshot before this.
    std::cerr << "error: " << e.what() << "\n";
    return kExitCorruptSnapshot;
  } catch (const std::invalid_argument& e) {
    // e.g. a --memory-budget below the streaming engine's floor.
    std::cerr << "error: " << e.what() << "\n";
    return kExitUsage;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return kExitIo;
  }
  Usage();
  return kExitUsage;
}
