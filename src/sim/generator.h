// The traffic generator: walks the study period day by day, decides which
// devices are active, plans their sessions, acquires DHCP leases, resolves
// hostnames through the campus resolver, and emits time-ordered tap events.
//
// The generator produces exactly the three inputs the paper's pipeline
// consumes (§3): 1) raw bidirectional traffic (tap events), 2) DHCP logs,
// 3) DNS logs — plus User-Agent sightings, which in reality ride inside the
// raw traffic.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "dhcp/server.h"
#include "dns/resolver.h"
#include "flow/event.h"
#include "sim/activity.h"
#include "sim/population.h"
#include "world/catalog.h"

namespace lockdown::sim {

struct GeneratorConfig {
  PopulationConfig population;
  /// Campus residential client pool.
  net::Cidr client_pool = net::Cidr(net::Ipv4Address(10, 0, 0, 0), 12);
  dhcp::ServerConfig dhcp;
  std::int32_t dns_ttl = 3600;
  /// Study-day window [first_day, last_day); defaults to the whole period.
  int first_day = 0;
  int last_day = util::StudyCalendar::NumDays();
};

/// A cleartext User-Agent observation at the tap.
struct UaSighting {
  util::Timestamp ts = 0;
  net::Ipv4Address client_ip;
  std::string_view user_agent;
};

class TrafficGenerator {
 public:
  using TapSink = std::function<void(const flow::TapEvent&)>;

  TrafficGenerator(GeneratorConfig config,
                   const world::ServiceCatalog& catalog =
                       world::ServiceCatalog::Default());

  /// Runs the simulation, delivering tap events in non-decreasing time order.
  void Run(const TapSink& sink);

  [[nodiscard]] const Population& population() const noexcept { return population_; }
  [[nodiscard]] const std::vector<dhcp::Lease>& dhcp_log() const noexcept {
    return dhcp_.log();
  }
  [[nodiscard]] const std::vector<dns::Resolution>& dns_log() const noexcept {
    return resolver_.log();
  }
  [[nodiscard]] const std::vector<UaSighting>& ua_sightings() const noexcept {
    return ua_sightings_;
  }
  [[nodiscard]] const world::ServiceCatalog& catalog() const noexcept {
    return *catalog_;
  }
  [[nodiscard]] const GeneratorConfig& config() const noexcept { return config_; }

  /// Whether the device generates any traffic on the given day (presence on
  /// campus + powered on). Exposed for tests of the departure model.
  [[nodiscard]] bool DeviceActiveToday(const SimDevice& dev, int day,
                                       util::Pcg32& rng) const;

 private:
  void EmitSession(const SimDevice& dev, const SessionPlan& plan,
                   bool expose_ua, util::Pcg32& rng,
                   std::vector<flow::TapEvent>& events);

  GeneratorConfig config_;
  const world::ServiceCatalog* catalog_;
  Population population_;
  ActivityModel activity_;
  dhcp::Server dhcp_;
  dns::Resolver resolver_;
  util::Pcg32 master_rng_;
  std::vector<UaSighting> ua_sightings_;
  std::vector<std::uint16_t> port_counter_;
};

}  // namespace lockdown::sim
