#include "sim/population.h"

#include <array>
#include <cmath>

#include "sim/parameters.h"
#include "sim/timeline.h"
#include "util/time.h"

namespace lockdown::sim {

namespace {

namespace p = params;

const char* PickHomeCountry(util::Pcg32& rng) {
  // Rough international-enrolment mix at a large UC campus circa 2020.
  static constexpr std::array<std::pair<const char*, double>, 14> kMix = {{
      {"CN", 0.55}, {"KR", 0.10}, {"IN", 0.09}, {"JP", 0.05}, {"GB", 0.04},
      {"DE", 0.03}, {"RU", 0.03}, {"FR", 0.02}, {"BR", 0.02}, {"MX", 0.02},
      {"SG", 0.02}, {"VN", 0.01}, {"QA", 0.01}, {"CA", 0.01},
  }};
  double r = rng.NextDouble();
  for (const auto& [country, w] : kMix) {
    r -= w;
    if (r < 0.0) return country;
  }
  return "CN";
}

int PickDepartureDay(util::Pcg32& rng) {
  double total = 0.0;
  for (const auto& w : p::kDepartureWindows) {
    total += w.weight * static_cast<double>(w.last_day - w.first_day + 1);
  }
  double r = rng.NextDouble() * total;
  for (const auto& w : p::kDepartureWindows) {
    const double span = w.weight * static_cast<double>(w.last_day - w.first_day + 1);
    if (r < span) {
      return w.first_day + static_cast<int>(r / w.weight);
    }
    r -= span;
  }
  return p::kDepartureWindows.back().last_day;
}

}  // namespace

const char* ToString(DeviceKind k) noexcept {
  switch (k) {
    case DeviceKind::kPhone: return "phone";
    case DeviceKind::kLaptop: return "laptop";
    case DeviceKind::kDesktop: return "desktop";
    case DeviceKind::kTablet: return "tablet";
    case DeviceKind::kIotSmall: return "iot-small";
    case DeviceKind::kIotTv: return "iot-tv";
    case DeviceKind::kSwitch: return "nintendo-switch";
    case DeviceKind::kConsoleOther: return "console-other";
    case DeviceKind::kMiscGadget: return "misc-gadget";
  }
  return "???";
}

const char* ToString(TrueClass c) noexcept {
  switch (c) {
    case TrueClass::kMobile: return "mobile";
    case TrueClass::kLaptopDesktop: return "laptop-desktop";
    case TrueClass::kIot: return "iot";
    case TrueClass::kGameConsole: return "game-console";
  }
  return "???";
}

Population::Population(const PopulationConfig& config)
    : ouis_(world::OuiDatabase::Default()) {
  util::Pcg32 rng(config.seed, /*stream=*/0xBEEF);
  students_.reserve(static_cast<std::size_t>(config.num_students));
  for (int i = 0; i < config.num_students; ++i) {
    BuildStudent(static_cast<std::uint32_t>(i), rng);
  }
}

void Population::BuildStudent(std::uint32_t index, util::Pcg32& rng) {
  namespace pp = params;
  StudentPersona s;
  s.index = index;
  s.residency = rng.Bernoulli(pp::kInternationalShare) ? Residency::kInternational
                                                       : Residency::kDomestic;
  s.home_country = s.residency == Residency::kInternational ? PickHomeCountry(rng) : "US";
  const double leave_prob = s.residency == Residency::kInternational
                                ? pp::kInternationalLeaveProb
                                : pp::kDomesticLeaveProb;
  s.leaves_campus = rng.Bernoulli(leave_prob);
  s.departure_day = s.leaves_campus ? PickDepartureDay(rng) : -1;
  s.activity_scale = rng.LogNormal(0.0, 0.45);
  if (s.residency == Residency::kInternational) {
    // Mix of home-country vs. US services; deliberately wide so the paper's
    // "conservative" geolocation labelling (§4.2) misses the US-leaning tail.
    s.foreign_share = rng.Uniform(0.45, 0.85);
  }
  const bool intl = s.residency == Residency::kInternational;
  s.uses_facebook = rng.Bernoulli(intl ? pp::kFacebook.penetration_intl
                                       : pp::kFacebook.penetration_dom);
  s.uses_instagram = rng.Bernoulli(intl ? pp::kInstagram.penetration_intl
                                        : pp::kInstagram.penetration_dom);
  s.uses_tiktok = rng.Bernoulli(intl ? pp::kTikTok.penetration_intl
                                     : pp::kTikTok.penetration_dom);
  s.uses_steam =
      rng.Bernoulli(intl ? pp::kSteamPenetrationIntl : pp::kSteamPenetrationDom);
  s.tiktok_adoption_rank = rng.NextDouble();
  s.tiktok_heavy_rank = rng.NextDouble();
  students_.push_back(s);

  // Devices. The per-kind probabilities produce ~2.7 devices per student,
  // matching the paper's ~32k device peak over "several thousand" students.
  if (rng.Bernoulli(pp::kOwnsPhone)) AddDevice(index, DeviceKind::kPhone, rng);
  if (rng.Bernoulli(pp::kOwnsLaptop)) AddDevice(index, DeviceKind::kLaptop, rng);
  if (rng.Bernoulli(pp::kOwnsDesktop)) AddDevice(index, DeviceKind::kDesktop, rng);
  if (rng.Bernoulli(pp::kOwnsTablet)) AddDevice(index, DeviceKind::kTablet, rng);
  if (rng.Bernoulli(pp::kOwnsIotSmall)) {
    AddDevice(index, DeviceKind::kIotSmall, rng);
    if (rng.Bernoulli(pp::kOwnsSecondIotSmall / pp::kOwnsIotSmall)) {
      AddDevice(index, DeviceKind::kIotSmall, rng);
    }
  }
  if (rng.Bernoulli(pp::kOwnsIotTv)) AddDevice(index, DeviceKind::kIotTv, rng);
  if (rng.Bernoulli(pp::kOwnsSwitch)) AddDevice(index, DeviceKind::kSwitch, rng);
  if (rng.Bernoulli(pp::kOwnsConsoleOther)) {
    AddDevice(index, DeviceKind::kConsoleOther, rng);
  }
  if (rng.Bernoulli(pp::kOwnsMiscGadget)) AddDevice(index, DeviceKind::kMiscGadget, rng);

  // Newly-activated devices for staying students (Switch sales "soared",
  // §5.3.2): they first appear during April/May.
  if (!s.leaves_campus && rng.Bernoulli(pp::kNewDeviceProb)) {
    const DeviceKind kind = rng.Bernoulli(pp::kNewDeviceIsSwitch)
                                ? DeviceKind::kSwitch
                                : (rng.Bernoulli(0.5) ? DeviceKind::kIotTv
                                                      : DeviceKind::kMiscGadget);
    // First appearance over April and early May (study days 60..104), leaving
    // enough remaining days to clear the 14-distinct-day visitor filter.
    const int first_day = static_cast<int>(rng.UniformInt(60, 104));
    AddDevice(index, kind, rng, first_day);
  }
}

void Population::AddDevice(std::uint32_t owner, DeviceKind kind, util::Pcg32& rng,
                           int first_active_day) {
  namespace pp = params;
  using world::UaPlatform;
  using world::VendorHint;

  SimDevice d;
  d.index = static_cast<std::uint32_t>(devices_.size());
  d.owner = owner;
  d.kind = kind;
  d.first_active_day = first_active_day;

  // ua_visibility is the per-active-day probability of leaking a cleartext
  // User-Agent. Most traffic is TLS, and many devices never produce an
  // observable UA at all — the dominant cause of the paper's "unclassified"
  // devices alongside randomized MACs (§4 fn. 2).
  VendorHint oui_hint = VendorHint::kGeneric;
  double random_mac_prob = 0.0;
  switch (kind) {
    case DeviceKind::kPhone:
      d.true_class = TrueClass::kMobile;
      if (rng.Bernoulli(pp::kPhoneIsIphone)) {
        d.ua_platform = UaPlatform::kIphone;
        oui_hint = VendorHint::kComputerOrPhone;  // Apple
      } else {
        d.ua_platform = UaPlatform::kAndroidPhone;
        oui_hint = rng.Bernoulli(0.85) ? VendorHint::kPhone : VendorHint::kGeneric;
      }
      random_mac_prob = pp::kPhoneRandomMac;
      d.ua_visibility = rng.Bernoulli(0.48) ? 0.0 : 0.12;
      break;
    case DeviceKind::kLaptop:
    case DeviceKind::kDesktop:
      d.true_class = TrueClass::kLaptopDesktop;
      if (kind == DeviceKind::kLaptop && rng.Bernoulli(pp::kLaptopIsMac)) {
        d.ua_platform = UaPlatform::kMacDesktop;
        oui_hint = VendorHint::kComputerOrPhone;  // Apple
      } else if (rng.Bernoulli(pp::kLaptopIsLinux)) {
        d.ua_platform = UaPlatform::kLinuxDesktop;
        oui_hint = VendorHint::kComputer;
      } else {
        d.ua_platform = UaPlatform::kWindowsDesktop;
        oui_hint = rng.Bernoulli(0.8) ? VendorHint::kComputer : VendorHint::kGeneric;
      }
      random_mac_prob = pp::kLaptopRandomMac;
      d.ua_visibility = rng.Bernoulli(0.30) ? 0.0 : 0.25;
      break;
    case DeviceKind::kTablet:
      d.true_class = TrueClass::kMobile;
      d.ua_platform = UaPlatform::kIpad;
      oui_hint = VendorHint::kComputerOrPhone;
      random_mac_prob = pp::kTabletRandomMac;
      d.ua_visibility = rng.Bernoulli(0.60) ? 0.0 : 0.10;
      break;
    case DeviceKind::kIotSmall:
      d.true_class = TrueClass::kIot;
      d.ua_platform = UaPlatform::kSmartTv;  // never emitted (visibility 0)
      oui_hint = VendorHint::kIot;
      d.ua_visibility = 0.0;
      break;
    case DeviceKind::kIotTv:
      d.true_class = TrueClass::kIot;
      d.ua_platform = UaPlatform::kSmartTv;
      // Samsung reuses MAC prefixes across phones and TVs; a TV with a
      // phone-line OUI and no observed UA becomes an affirmative
      // misclassification — the rare error mode of the paper's review (2 of
      // 100 devices).
      oui_hint = rng.Bernoulli(0.35) ? VendorHint::kPhone : VendorHint::kIot;
      d.ua_visibility = rng.Bernoulli(0.30) ? 0.0 : 0.30;
      break;
    case DeviceKind::kSwitch:
      d.true_class = TrueClass::kGameConsole;
      d.ua_platform = UaPlatform::kGameConsole;
      oui_hint = VendorHint::kNintendo;
      d.ua_visibility = rng.Bernoulli(0.80) ? 0.0 : 0.08;
      break;
    case DeviceKind::kConsoleOther:
      d.true_class = TrueClass::kGameConsole;
      d.ua_platform = UaPlatform::kGameConsole;
      oui_hint = VendorHint::kConsoleOther;
      d.ua_visibility = rng.Bernoulli(0.80) ? 0.0 : 0.10;
      break;
    case DeviceKind::kMiscGadget:
      // Ground truth is itself mixed: forgotten tablets, e-readers, hobby
      // boards. Half behave like mobile devices, half like IoT.
      d.true_class = rng.Bernoulli(0.5) ? TrueClass::kMobile : TrueClass::kIot;
      d.ua_platform = d.true_class == TrueClass::kMobile ? UaPlatform::kIpad
                                                         : UaPlatform::kSmartTv;
      oui_hint = VendorHint::kGeneric;
      random_mac_prob = pp::kMiscRandomMac;
      d.ua_visibility = rng.Bernoulli(0.80) ? 0.0 : 0.05;
      break;
  }

  d.randomized_mac = rng.Bernoulli(random_mac_prob);
  if (d.randomized_mac) {
    // Random 46 bits with the locally-administered bit set and the multicast
    // bit clear — exactly what phone MAC randomization produces.
    const std::uint64_t r =
        (static_cast<std::uint64_t>(rng.Next()) << 32) | rng.Next();
    d.mac = net::MacAddress((r & 0xFCFFFFFFFFFFULL) | (0x02ULL << 40));
  } else {
    std::vector<std::uint32_t> ouis = ouis_.OuisFor(oui_hint);
    std::uint32_t oui;
    if (ouis.empty() || (oui_hint == VendorHint::kGeneric && rng.Bernoulli(0.4))) {
      // A vendor absent from our registry (unknown OUI). Universally
      // administered, unicast, deterministic-unique per device.
      oui = 0x00E000u + (d.index % 0xFF);
    } else {
      oui = ouis[rng.NextBounded(static_cast<std::uint32_t>(ouis.size()))];
    }
    d.mac = net::MacAddress::FromOui(oui, d.index + 1);
  }
  devices_.push_back(d);
}

std::vector<std::uint32_t> Population::DevicesOf(std::uint32_t student) const {
  std::vector<std::uint32_t> out;
  for (const SimDevice& d : devices_) {
    if (d.owner == student) out.push_back(d.index);
  }
  return out;
}

std::size_t Population::CountKind(DeviceKind k) const noexcept {
  std::size_t n = 0;
  for (const SimDevice& d : devices_) n += (d.kind == k);
  return n;
}

std::size_t Population::CountStaying() const noexcept {
  std::size_t n = 0;
  for (const StudentPersona& s : students_) n += !s.leaves_campus;
  return n;
}

}  // namespace lockdown::sim
