// Builds the synthetic student body and its devices.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/persona.h"
#include "util/rng.h"
#include "world/oui_db.h"

namespace lockdown::sim {

struct PopulationConfig {
  int num_students = 1200;
  std::uint64_t seed = 2020;
};

/// Deterministic population: same config, same students and MACs.
class Population {
 public:
  explicit Population(const PopulationConfig& config);

  [[nodiscard]] const std::vector<StudentPersona>& students() const noexcept {
    return students_;
  }
  [[nodiscard]] const std::vector<SimDevice>& devices() const noexcept {
    return devices_;
  }
  [[nodiscard]] const StudentPersona& student_of(const SimDevice& d) const {
    return students_[d.owner];
  }

  /// Devices owned by one student.
  [[nodiscard]] std::vector<std::uint32_t> DevicesOf(std::uint32_t student) const;

  /// Ground-truth counts, for tests and the classifier-accuracy bench.
  [[nodiscard]] std::size_t CountKind(DeviceKind k) const noexcept;
  [[nodiscard]] std::size_t CountStaying() const noexcept;

 private:
  void BuildStudent(std::uint32_t index, util::Pcg32& rng);
  void AddDevice(std::uint32_t owner, DeviceKind kind, util::Pcg32& rng,
                 int first_active_day = 0);

  std::vector<StudentPersona> students_;
  std::vector<SimDevice> devices_;
  const world::OuiDatabase& ouis_;
};

}  // namespace lockdown::sim
