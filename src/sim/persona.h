// Student personas and their devices — the ground truth of the synthetic
// campus. The measurement pipeline never reads these directly; analyses must
// recover population structure (device classes, residency) from traffic, as
// the paper does. Ground truth is used only to *drive* behaviour and to
// score classifier accuracy (paper §3's manual-review estimate).
#pragma once

#include <cstdint>
#include <string_view>

#include "net/mac.h"
#include "world/user_agents.h"

namespace lockdown::sim {

/// Whether the student's home is in the US.
enum class Residency : std::uint8_t { kDomestic, kInternational };

[[nodiscard]] constexpr const char* ToString(Residency r) noexcept {
  return r == Residency::kDomestic ? "domestic" : "international";
}

/// Ground-truth device kind (what the device actually is).
enum class DeviceKind : std::uint8_t {
  kPhone,
  kLaptop,
  kDesktop,
  kTablet,
  kIotSmall,      ///< plug / bulb / speaker / camera
  kIotTv,         ///< smart TV or streaming stick
  kSwitch,        ///< Nintendo Switch
  kConsoleOther,  ///< PS4 / Xbox
  kMiscGadget,    ///< e-reader / secondary tablet / hobby board
};

[[nodiscard]] const char* ToString(DeviceKind k) noexcept;

/// The coarse classes the paper reports (Fig. 1/2); consoles fold into IoT
/// there, but we keep them distinct and group at reporting time.
enum class TrueClass : std::uint8_t { kMobile, kLaptopDesktop, kIot, kGameConsole };

[[nodiscard]] const char* ToString(TrueClass c) noexcept;

struct StudentPersona {
  std::uint32_t index = 0;
  Residency residency = Residency::kDomestic;
  std::string_view home_country = "US";  ///< ISO code; "US" for domestic
  bool leaves_campus = false;
  int departure_day = -1;  ///< study-day index; -1 if staying
  /// Per-student overall appetite multiplier (log-normal around 1).
  double activity_scale = 1.0;
  /// Fraction of leisure traffic an international student sends to
  /// home-country services (0 for domestic students).
  double foreign_share = 0.0;
  // App membership.
  bool uses_facebook = false;
  bool uses_instagram = false;
  bool uses_tiktok = false;
  bool uses_steam = false;
  /// Percentile ranks in [0,1) driving TikTok adoption/escalation cohorts.
  double tiktok_adoption_rank = 1.0;
  double tiktok_heavy_rank = 1.0;
};

struct SimDevice {
  std::uint32_t index = 0;
  std::uint32_t owner = 0;  ///< student index
  DeviceKind kind = DeviceKind::kPhone;
  TrueClass true_class = TrueClass::kMobile;
  net::MacAddress mac;
  bool randomized_mac = false;
  world::UaPlatform ua_platform = world::UaPlatform::kIphone;
  /// Probability that a given day of use exposes a User-Agent string in
  /// cleartext (most traffic is TLS; only some apps leak a UA the tap sees).
  double ua_visibility = 0.0;
  /// First study day the device can appear (newly-acquired devices, §5.3.2's
  /// "40 new Switches that first appeared in April and May").
  int first_active_day = 0;
};

}  // namespace lockdown::sim
