// The pandemic timeline: maps every study day to a phase of the lock-down.
// Phase boundaries are the event dates the paper marks in its figures (§4).
#pragma once

#include "util/time.h"

namespace lockdown::sim {

enum class Phase {
  kPrePandemic,       ///< 2/1 .. 3/3
  kStateOfEmergency,  ///< 3/4 .. 3/10 (regional state of emergency)
  kPandemicDeclared,  ///< 3/11 .. 3/18 (WHO declaration; classes/finals go remote)
  kStayAtHome,        ///< 3/19 .. 3/21 (stay-at-home order)
  kAcademicBreak,     ///< 3/22 .. 3/29
  kOnlineTerm,        ///< 3/30 .. end (spring term fully online)
};

[[nodiscard]] const char* ToString(Phase p) noexcept;

class PandemicTimeline {
 public:
  /// Phase of a 0-based study day index (days before the study clamp to
  /// kPrePandemic, after to kOnlineTerm).
  [[nodiscard]] static Phase PhaseOf(int study_day) noexcept;

  [[nodiscard]] static Phase PhaseOf(util::Timestamp ts) noexcept {
    return PhaseOf(util::StudyCalendar::DayIndex(ts));
  }

  /// True once the campus shut down (stay-at-home order onward). The paper's
  /// "post-shutdown users" are the devices active after this point.
  [[nodiscard]] static bool IsShutdown(int study_day) noexcept {
    const Phase p = PhaseOf(study_day);
    return p == Phase::kStayAtHome || p == Phase::kAcademicBreak ||
           p == Phase::kOnlineTerm;
  }

  /// True while classes meet (online or not): everything except break.
  [[nodiscard]] static bool ClassesInSession(int study_day) noexcept {
    return PhaseOf(study_day) != Phase::kAcademicBreak;
  }

  /// Calendar month (2..5) of a study day; the unit of Figures 6 and 7.
  [[nodiscard]] static int MonthOf(int study_day) noexcept {
    return util::StudyCalendar::DateAt(study_day).month;
  }
};

}  // namespace lockdown::sim
