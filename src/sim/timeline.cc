#include "sim/timeline.h"

namespace lockdown::sim {

const char* ToString(Phase p) noexcept {
  switch (p) {
    case Phase::kPrePandemic: return "pre-pandemic";
    case Phase::kStateOfEmergency: return "state-of-emergency";
    case Phase::kPandemicDeclared: return "pandemic-declared";
    case Phase::kStayAtHome: return "stay-at-home";
    case Phase::kAcademicBreak: return "academic-break";
    case Phase::kOnlineTerm: return "online-term";
  }
  return "???";
}

Phase PandemicTimeline::PhaseOf(int study_day) noexcept {
  using SC = util::StudyCalendar;
  static const int kEmergency = SC::DayIndex(SC::kStateOfEmergency);
  static const int kDeclared = SC::DayIndex(SC::kWhoPandemic);
  static const int kStayHome = SC::DayIndex(SC::kStayAtHome);
  static const int kBreakStart = SC::DayIndex(SC::kBreakStart);
  static const int kBreakEnd = SC::DayIndex(SC::kBreakEnd);

  if (study_day < kEmergency) return Phase::kPrePandemic;
  if (study_day < kDeclared) return Phase::kStateOfEmergency;
  if (study_day < kStayHome) return Phase::kPandemicDeclared;
  if (study_day < kBreakStart) return Phase::kStayAtHome;
  if (study_day < kBreakEnd) return Phase::kAcademicBreak;
  return Phase::kOnlineTerm;
}

}  // namespace lockdown::sim
