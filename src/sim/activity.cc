#include "sim/activity.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "sim/parameters.h"
#include "sim/timeline.h"

namespace lockdown::sim {

namespace p = params;
using util::StudyCalendar;
using util::Timestamp;
using world::Category;
using world::ServiceId;

namespace {

/// Month index for the parameter tables: 0=Feb .. 3=May.
int MonthIndex(int day) {
  return std::clamp(PandemicTimeline::MonthOf(day) - 2, 0, 3);
}

double ClampMinutes(double m, double lo, double hi) { return std::clamp(m, lo, hi); }

Timestamp DayStart(int day) {
  return StudyCalendar::StartTs() + static_cast<Timestamp>(day) * util::kSecondsPerDay;
}

}  // namespace

ActivityModel::ActivityModel(const world::ServiceCatalog& catalog)
    : catalog_(&catalog) {
  const auto need = [&](std::string_view name) -> ServiceId {
    const auto id = catalog.FindByName(name);
    if (!id) throw std::invalid_argument("ActivityModel: catalog lacks service " +
                                         std::string(name));
    return *id;
  };
  zoom_ = need("zoom");
  zoom_media_ = need("zoom-media");
  zoom_media_legacy_ = need("zoom-media-legacy");
  facebook_ = need("facebook");
  instagram_ = need("instagram");
  tiktok_ = need("tiktok");
  steam_ = need("steam");
  nintendo_gameplay_ = need("nintendo-gameplay");
  nintendo_services_ = need("nintendo-services");
  playstation_ = need("playstation");
  spotify_ = need("spotify");
  youtube_ = need("youtube");
  netflix_ = need("netflix");
  whatsapp_ = need("whatsapp");
  discord_ = need("discord");
  apple_ = need("apple");
  canvas_ = need("canvas");
  gradescope_ = need("gradescope");
  piazza_ = need("piazza");
  gworkspace_ = need("google-workspace");
  github_ = need("github");
  stackoverflow_ = need("stackoverflow");

  for (ServiceId id = 0; id < catalog.size(); ++id) {
    const world::Service& svc = catalog.Get(id);
    const bool foreign = svc.country != "US" && svc.country != "NL";
    switch (svc.category) {
      case Category::kSocialMedia:
        if (svc.country == "US" && id != facebook_ && id != instagram_ &&
            id != tiktok_) {
          us_social_light_.push_back(id);
        }
        if (foreign) foreign_[svc.country].social.push_back(id);
        break;
      case Category::kMessaging:
        if (foreign) foreign_[svc.country].messaging.push_back(id);
        break;
      case Category::kStreaming:
        if (svc.country == "US") {
          us_stream_.push_back(id);
        } else {
          foreign_[svc.country].stream.push_back(id);
        }
        break;
      case Category::kWeb:
      case Category::kNews:
      case Category::kShopping:
      case Category::kSearch:
      case Category::kEmailCloud:
      case Category::kMusic:
        if (svc.country == "US") {
          us_browse_.push_back(id);
        } else {
          foreign_[svc.country].browse.push_back(id);
        }
        break;
      case Category::kCdn:
        cdn_pool_.push_back(id);
        break;
      case Category::kIotBackend:
        // TV platforms vs. small-gadget clouds, split by name.
        if (svc.name == "roku" || svc.name == "samsung-tv" || svc.name == "lg-tv") {
          iot_tv_backends_.push_back(id);
        } else {
          iot_small_backends_.push_back(id);
        }
        break;
      case Category::kExcluded:
        // Excluded networks still get browsed (the tap drops them later).
        if (svc.name == "amazon-retail" || svc.name == "twitch") {
          us_browse_.push_back(id);
        }
        break;
      default:
        break;
    }
  }
  us_browse_zipf_.emplace(us_browse_.size(), 0.9);
  for (auto& [cc, pools] : foreign_) {
    if (!pools.browse.empty()) pools.browse_zipf.emplace(pools.browse.size(), 0.9);
  }
}

double ActivityModel::LeisureVolume(const StudentPersona& s, int day) {
  const int m = MonthIndex(day);
  const bool intl = s.residency == Residency::kInternational;
  double vol = intl ? p::kIntlMonthVolume[m] : p::kDomesticMonthVolume[m];
  if (PandemicTimeline::PhaseOf(day) == Phase::kAcademicBreak) {
    // "the volume of traffic increases for international students but remains
    //  stable for domestic students" during break (§4.2, Fig. 4).
    vol *= intl ? 1.6 : 1.05;
  }
  // The lock-down surge is a weekday phenomenon: displaced class-day hours
  // moved online while weekends stayed "relatively unchanged" (§4.1, Fig. 3).
  if (PandemicTimeline::IsShutdown(day) &&
      util::IsWeekend(util::WeekdayOf(StudyCalendar::DateAt(day)))) {
    vol = 1.0 + (vol - 1.0) * 0.35;
  }
  return vol * s.activity_scale;
}

Timestamp ActivityModel::SampleStart(int day, util::Pcg32& rng) const {
  const util::Weekday wd = util::WeekdayOf(StudyCalendar::DateAt(day));
  const p::DiurnalProfile& prof =
      util::IsWeekend(wd)
          ? p::kWeekend
          : (PandemicTimeline::IsShutdown(day) ? p::kWeekdayShutdown
                                               : p::kWeekdayPre);
  const auto hour = util::SampleIndex(rng, prof);
  return DayStart(day) + static_cast<Timestamp>(hour) * util::kSecondsPerHour +
         rng.UniformInt(0, util::kSecondsPerHour - 1);
}

Timestamp ActivityModel::SampleSocialStart(int day, util::Pcg32& rng) const {
  const util::Weekday wd = util::WeekdayOf(StudyCalendar::DateAt(day));
  const p::DiurnalProfile& prof =
      util::IsWeekend(wd)
          ? p::kWeekend
          : (PandemicTimeline::IsShutdown(day) ? p::kWeekdayShutdown
                                               : p::kWeekdayPre);
  std::array<double, 24> damped;
  for (std::size_t h = 0; h < damped.size(); ++h) damped[h] = std::sqrt(prof[h]);
  const auto hour = util::SampleIndex(rng, damped);
  return DayStart(day) + static_cast<Timestamp>(hour) * util::kSecondsPerHour +
         rng.UniformInt(0, util::kSecondsPerHour - 1);
}

Timestamp ActivityModel::SampleStartInWindow(int day, int first_hour, int last_hour,
                                             util::Pcg32& rng) {
  const Timestamp lo = DayStart(day) + first_hour * util::kSecondsPerHour;
  const Timestamp hi = DayStart(day) + last_hour * util::kSecondsPerHour - 1;
  return rng.UniformInt(lo, hi);
}

Timestamp ActivityModel::SampleEveningStart(int day, util::Pcg32& rng) {
  // Peak 18:00-23:00 with a tail into the afternoon.
  const int hour = rng.Bernoulli(0.7) ? static_cast<int>(rng.UniformInt(18, 23))
                                      : static_cast<int>(rng.UniformInt(12, 17));
  return DayStart(day) + hour * util::kSecondsPerHour +
         rng.UniformInt(0, util::kSecondsPerHour - 1);
}

SessionPlan ActivityModel::MakeSession(ServiceId svc, int nhosts, Timestamp start,
                                       double minutes, std::uint64_t bytes_down,
                                       util::Pcg32& rng, bool cdn_assets) const {
  static constexpr double kSplit[4] = {0.60, 0.25, 0.10, 0.05};
  const world::Service& service = catalog_->Get(svc);
  const int n = std::clamp<int>(nhosts, 1, static_cast<int>(service.hosts.size()));
  SessionPlan plan;
  plan.start = start;
  plan.minutes = minutes;
  double total_w = 0.0;
  for (int i = 0; i < n; ++i) total_w += kSplit[std::min(i, 3)];
  for (int i = 0; i < n; ++i) {
    FlowPlan f;
    f.host = service.hosts[static_cast<std::size_t>(i)];
    f.service = svc;
    f.bytes_down =
        static_cast<std::uint64_t>(bytes_down * kSplit[std::min(i, 3)] / total_w);
    f.bytes_up = f.bytes_down / 20 + 200;
    if (i == 0) {
      f.start_frac = 0.0;
      f.end_frac = 1.0;
    } else {
      f.start_frac = rng.Uniform(0.0, 0.3);
      f.end_frac = rng.Uniform(0.7, 1.0);
    }
    plan.flows.push_back(f);
  }
  // Real sessions pull static assets from CDN edges near campus. These bytes
  // are why the paper excludes Akamai/AWS/Cloudfront/Optimizely from the
  // geolocation midpoints (§4.2): they reveal the device's location, not the
  // visited site's.
  if (cdn_assets && !cdn_pool_.empty() && rng.Bernoulli(0.5)) {
    const world::ServiceId cdn =
        cdn_pool_[rng.NextBounded(static_cast<std::uint32_t>(cdn_pool_.size()))];
    FlowPlan f;
    f.host = catalog_->Get(cdn).hosts[0];
    f.service = cdn;
    f.bytes_down = plan.flows[0].bytes_down / 2;
    f.bytes_up = f.bytes_down / 50 + 100;
    plan.flows[0].bytes_down -= f.bytes_down;
    f.start_frac = rng.Uniform(0.0, 0.3);
    f.end_frac = rng.Uniform(0.6, 1.0);
    plan.flows.push_back(f);
  }
  return plan;
}

void ActivityModel::PlanSocialApp(const StudentPersona& s, int day, ServiceId app,
                                  util::Pcg32& rng,
                                  std::vector<SessionPlan>& out) const {
  const int m = MonthIndex(day);
  const bool intl = s.residency == Residency::kInternational;
  const p::SocialParams* sp = nullptr;
  double bytes_per_minute = 2.0e6;
  double heavy_mult = 1.0;
  if (app == facebook_) {
    sp = &p::kFacebook;
  } else if (app == instagram_) {
    sp = &p::kInstagram;
    bytes_per_minute = 3.0e6;
  } else {
    sp = &p::kTikTok;
    bytes_per_minute = 5.0e6;
    // Monthly adoption cohort (n= in Fig. 6c grows every month).
    if (s.tiktok_adoption_rank >= p::kTikTokAdoption[m]) return;
    if (s.tiktok_heavy_rank < p::kTikTokHeavyUserShare[m]) {
      heavy_mult = p::kTikTokHeavyMultiplier;
    }
  }
  const double rate = (intl ? sp->rate_intl : sp->rate_dom)[m] * s.activity_scale;
  const int n = rng.Poisson(rate);
  for (int i = 0; i < n; ++i) {
    const double minutes = ClampMinutes(
        rng.LogNormal(sp->dur_mu, sp->dur_sigma) * heavy_mult, 0.3, 480.0);
    const auto bytes = static_cast<std::uint64_t>(
        minutes * bytes_per_minute * rng.Uniform(0.5, 1.6));
    SessionPlan plan =
        MakeSession(app, app == tiktok_ ? 3 : 2, SampleSocialStart(day, rng),
                    minutes, bytes, rng);
    if (app == instagram_) {
      // Instagram also pulls from the shared Facebook CDN — the ambiguity the
      // paper's disambiguation heuristic exists for (§5.2).
      FlowPlan f;
      f.host = catalog_->Get(facebook_).hosts[2];  // fbcdn.net
      f.service = facebook_;
      f.bytes_down = bytes / 4;
      f.bytes_up = f.bytes_down / 20 + 200;
      f.start_frac = rng.Uniform(0.0, 0.3);
      f.end_frac = rng.Uniform(0.7, 1.0);
      plan.flows.push_back(f);
    }
    out.push_back(std::move(plan));
  }
}

void ActivityModel::PlanZoomDay(const StudentPersona& s, int day, util::Pcg32& rng,
                                std::vector<SessionPlan>& out) const {
  // Class attendance does not scale with leisure appetite — Zoom usage is
  // "not significantly different between populations" (§4.2).
  (void)s;
  const util::Weekday wd = util::WeekdayOf(StudyCalendar::DateAt(day));
  const bool weekend = util::IsWeekend(wd);
  double rate = 0.0;
  switch (PandemicTimeline::PhaseOf(day)) {
    case Phase::kPrePandemic: rate = 0.04; break;
    case Phase::kStateOfEmergency: rate = 0.12; break;
    case Phase::kPandemicDeclared:  // winter finals went remote
      rate = weekend ? 0.20 : p::kZoomWeekdaySessionsFinals;
      break;
    case Phase::kStayAtHome: rate = weekend ? 0.20 : 0.6; break;
    case Phase::kAcademicBreak: rate = 0.08; break;
    case Phase::kOnlineTerm:
      rate = weekend ? p::kZoomWeekendSessions : p::kZoomWeekdaySessionsOnline;
      break;
  }
  const int n = rng.Poisson(rate);
  for (int i = 0; i < n; ++i) {
    // Classes run 8am-6pm on weekdays; weekend calls happen in the afternoon
    // ("a small spike in traffic in the afternoon", §5.1).
    const Timestamp start = weekend ? SampleStartInWindow(day, 12, 17, rng)
                                    : SampleStartInWindow(day, 8, 17, rng);
    const double minutes =
        ClampMinutes(rng.Normal(p::kZoomClassMinutesMean, 16.0), 10.0, 180.0);
    const auto total_bytes = static_cast<std::uint64_t>(
        minutes * p::kZoomBytesPerMinute * rng.Uniform(0.6, 1.5));

    SessionPlan plan;
    plan.start = start;
    plan.minutes = minutes;
    // Media rides raw-IP UDP to a relay; only the published IP list can
    // attribute it (§5.1).
    FlowPlan media;
    media.service = rng.Bernoulli(p::kZoomLegacyRelayShare) ? zoom_media_legacy_
                                                            : zoom_media_;
    media.raw_ip = true;
    media.proto = net::Protocol::kUdp;
    media.port = 8801;
    media.bytes_down =
        static_cast<std::uint64_t>(total_bytes * p::kZoomMediaShare);
    media.bytes_up = media.bytes_down / 3;  // two-way video
    plan.flows.push_back(media);
    // Signalling and web assets via zoom.us domains.
    const world::Service& zoom = catalog_->Get(zoom_);
    for (int h = 0; h < 2; ++h) {
      FlowPlan f;
      f.host = zoom.hosts[static_cast<std::size_t>(h)];
      f.service = zoom_;
      f.bytes_down = static_cast<std::uint64_t>(
          total_bytes * (1.0 - p::kZoomMediaShare) * (h == 0 ? 0.7 : 0.3));
      f.bytes_up = f.bytes_down / 10 + 500;
      f.start_frac = h == 0 ? 0.0 : rng.Uniform(0.0, 0.2);
      f.end_frac = h == 0 ? 1.0 : rng.Uniform(0.8, 1.0);
      plan.flows.push_back(f);
    }
    out.push_back(std::move(plan));
  }
}

void ActivityModel::AddBrowsing(const StudentPersona& s, int day,
                                double mean_sessions, double bytes_per_minute,
                                util::Pcg32& rng,
                                std::vector<SessionPlan>& out) const {
  const int m = MonthIndex(day);
  const double vol = LeisureVolume(s, day);
  const int n =
      rng.Poisson(mean_sessions * p::kSiteBreadth[m] * std::sqrt(vol));
  for (int i = 0; i < n; ++i) {
    ServiceId svc;
    const auto it = foreign_.find(std::string(s.home_country));
    if (it != foreign_.end() && !it->second.browse.empty() &&
        rng.Bernoulli(s.foreign_share)) {
      const auto& pools = it->second;
      svc = pools.browse[pools.browse_zipf->Sample(rng)];
    } else {
      svc = us_browse_[us_browse_zipf_->Sample(rng)];
    }
    const double minutes = ClampMinutes(rng.LogNormal(0.7, 0.9), 0.2, 60.0);
    const auto bytes = static_cast<std::uint64_t>(
        minutes * bytes_per_minute * rng.Uniform(0.4, 2.0) * std::sqrt(vol));
    out.push_back(MakeSession(svc, 2, SampleStart(day, rng), minutes, bytes, rng));
  }
}

void ActivityModel::AddStreaming(const StudentPersona& s, int day,
                                 double mean_sessions, double bytes_per_minute,
                                 util::Pcg32& rng,
                                 std::vector<SessionPlan>& out) const {
  const double vol = LeisureVolume(s, day);
  const int n = rng.Poisson(mean_sessions * vol);
  for (int i = 0; i < n; ++i) {
    ServiceId svc;
    const auto it = foreign_.find(std::string(s.home_country));
    // Home-country video weighs even more than general browsing for
    // international students (it is what keeps their geolocation midpoint
    // abroad despite US-hosted gaming and coursework).
    if (it != foreign_.end() && !it->second.stream.empty() &&
        rng.Bernoulli(std::min(1.0, s.foreign_share + 0.15))) {
      const auto& pool = it->second.stream;
      svc = pool[rng.NextBounded(static_cast<std::uint32_t>(pool.size()))];
    } else {
      svc = us_stream_[rng.NextBounded(static_cast<std::uint32_t>(us_stream_.size()))];
    }
    const double minutes = ClampMinutes(rng.LogNormal(3.55, 0.7), 5.0, 300.0);
    const auto bytes = static_cast<std::uint64_t>(
        minutes * bytes_per_minute * rng.Uniform(0.6, 1.5));
    out.push_back(
        MakeSession(svc, 2, SampleEveningStart(day, rng), minutes, bytes, rng));
  }
}

void ActivityModel::PlanSteamDay(const StudentPersona& s, int day, util::Pcg32& rng,
                                 std::vector<SessionPlan>& out) const {
  const int m = MonthIndex(day);
  const bool intl = s.residency == Residency::kInternational;
  if (!s.uses_steam) {
    // Casual store visits drive Fig. 7's growing n= without moving medians up.
    const double monthly = p::kSteamCasualVisitProb[m];
    const double p_day = -std::log(1.0 - monthly) / 30.0;
    if (rng.Bernoulli(p_day)) {
      const double minutes = rng.Uniform(2.0, 8.0);
      out.push_back(MakeSession(steam_, 2, SampleEveningStart(day, rng), minutes,
                                static_cast<std::uint64_t>(rng.Uniform(2e6, 1e7)),
                                rng));
    }
    return;
  }
  const double hours_mult =
      (intl ? p::kSteamHoursIntl : p::kSteamHoursDom)[m];
  const double conns_mult =
      (intl ? p::kSteamConnsIntl : p::kSteamConnsDom)[m];
  if (!rng.Bernoulli(std::min(0.9, 0.45 * std::sqrt(hours_mult)))) return;
  const int n_sessions = 1 + rng.Poisson(0.5 * hours_mult);
  for (int i = 0; i < n_sessions; ++i) {
    const double minutes = ClampMinutes(
        rng.LogNormal(std::log(55.0 * std::sqrt(hours_mult)), 0.7), 10.0, 420.0);
    const auto bytes = static_cast<std::uint64_t>(
        minutes * 2.0e5 * rng.Uniform(0.5, 1.6));
    const int nflows = 1 + rng.Poisson(2.2 * conns_mult);
    SessionPlan plan = MakeSession(steam_, std::min(nflows, 5),
                                   SampleEveningStart(day, rng), minutes, bytes, rng);
    // Extra coordinator connections beyond distinct hosts (games reconnect).
    for (int f = 5; f < nflows; ++f) {
      FlowPlan extra = plan.flows[static_cast<std::size_t>(f % 3)];
      extra.bytes_down = 20000 + rng.NextBounded(200000);
      extra.bytes_up = extra.bytes_down / 10;
      extra.start_frac = rng.Uniform(0.0, 0.8);
      extra.end_frac = std::min(1.0, extra.start_frac + rng.Uniform(0.05, 0.2));
      plan.flows.push_back(extra);
    }
    out.push_back(std::move(plan));
  }
  if (rng.Bernoulli(p::kSteamDownloadProb[m])) {
    // Game download: huge bytes, few connections — the bytes-vs-connections
    // divergence the paper remarks on (§5.3.1).
    const auto bytes = static_cast<std::uint64_t>(
        std::min(rng.LogNormal(std::log(1.5e9), 0.9), 2e10));
    const double minutes = static_cast<double>(bytes) / 1.5e9;  // ~25 MB/s
    SessionPlan plan;
    plan.start = SampleEveningStart(day, rng);
    plan.minutes = std::max(minutes, 2.0);
    FlowPlan f;
    f.host = catalog_->Get(steam_).hosts[2];  // steamcontent.com
    f.service = steam_;
    f.bytes_down = bytes;
    f.bytes_up = bytes / 100;
    plan.flows.push_back(f);
    out.push_back(std::move(plan));
  }
}

void ActivityModel::PlanPhone(const StudentPersona& s, const SimDevice& d, int day,
                              util::Pcg32& rng,
                              std::vector<SessionPlan>& out) const {
  if (s.uses_facebook) PlanSocialApp(s, day, facebook_, rng, out);
  if (s.uses_instagram) PlanSocialApp(s, day, instagram_, rng, out);
  if (s.uses_tiktok) PlanSocialApp(s, day, tiktok_, rng, out);

  const double vol = LeisureVolume(s, day);
  // Light US social (snapchat/twitter/reddit/...).
  const int n_social = rng.Poisson(1.3 * std::sqrt(vol));
  for (int i = 0; i < n_social; ++i) {
    const ServiceId svc = us_social_light_[rng.NextBounded(
        static_cast<std::uint32_t>(us_social_light_.size()))];
    const double minutes = ClampMinutes(rng.LogNormal(1.2, 0.9), 0.3, 120.0);
    out.push_back(MakeSession(svc, 2, SampleStart(day, rng), minutes,
                              static_cast<std::uint64_t>(minutes * 1.5e6), rng));
  }
  // Foreign social for international students (weibo/douyin/... §1's
  // "less time on US-based social media" is the flip side of this).
  const auto it = foreign_.find(std::string(s.home_country));
  if (it != foreign_.end() && !it->second.social.empty()) {
    const int n = rng.Poisson(2.2 * s.foreign_share * std::sqrt(vol));
    for (int i = 0; i < n; ++i) {
      const auto& pool = it->second.social;
      const ServiceId svc =
          pool[rng.NextBounded(static_cast<std::uint32_t>(pool.size()))];
      const double minutes = ClampMinutes(rng.LogNormal(1.6, 1.0), 0.3, 240.0);
      out.push_back(MakeSession(svc, 2, SampleStart(day, rng), minutes,
                                static_cast<std::uint64_t>(minutes * 3e6), rng));
    }
  }
  // Messaging.
  const int n_msg = rng.Poisson(2.2);
  for (int i = 0; i < n_msg; ++i) {
    ServiceId svc = rng.Bernoulli(0.5) ? whatsapp_ : discord_;
    if (it != foreign_.end() && !it->second.messaging.empty() &&
        rng.Bernoulli(s.foreign_share)) {
      const auto& pool = it->second.messaging;
      svc = pool[rng.NextBounded(static_cast<std::uint32_t>(pool.size()))];
    }
    const double minutes = ClampMinutes(rng.LogNormal(0.9, 0.8), 0.2, 60.0);
    out.push_back(MakeSession(svc, 1, SampleStart(day, rng), minutes,
                              static_cast<std::uint64_t>(minutes * 2e5), rng));
  }
  // Music + mobile video + browsing.
  if (rng.Bernoulli(0.55)) {
    const double minutes = ClampMinutes(rng.LogNormal(3.2, 0.6), 5.0, 240.0);
    out.push_back(MakeSession(spotify_, 2, SampleStart(day, rng), minutes,
                              static_cast<std::uint64_t>(minutes * 1.0e6), rng));
  }
  AddStreaming(s, day, 0.6, 1.2e7, rng, out);
  AddBrowsing(s, day, 3.0, 1.0e6, rng, out);
  // iPhones sync to iCloud daily — traffic the tap excludes (§3).
  if (d.ua_platform == world::UaPlatform::kIphone && rng.Bernoulli(0.8)) {
    out.push_back(MakeSession(apple_, 2, SampleStart(day, rng), 2.0,
                              static_cast<std::uint64_t>(rng.Uniform(1e6, 2e8)),
                              rng));
  }
}

void ActivityModel::PlanComputer(const StudentPersona& s, const SimDevice& d,
                                 int day, util::Pcg32& rng,
                                 std::vector<SessionPlan>& out) const {
  (void)d;
  PlanZoomDay(s, day, rng, out);
  // Coursework on class days.
  if (PandemicTimeline::ClassesInSession(day) &&
      !util::IsWeekend(util::WeekdayOf(StudyCalendar::DateAt(day)))) {
    const bool online = PandemicTimeline::PhaseOf(day) == Phase::kOnlineTerm;
    const int n = rng.Poisson(online ? 3.2 : 2.0);
    static constexpr int kEduCount = 4;
    const ServiceId edu[kEduCount] = {canvas_, gradescope_, piazza_, gworkspace_};
    for (int i = 0; i < n; ++i) {
      const ServiceId svc = edu[rng.NextBounded(kEduCount)];
      const double minutes = ClampMinutes(rng.LogNormal(1.8, 0.8), 1.0, 120.0);
      out.push_back(MakeSession(svc, 1, SampleStartInWindow(day, 8, 22, rng),
                                minutes,
                                static_cast<std::uint64_t>(minutes * 1.5e6), rng));
    }
    if (s.index % 3 == 0) {  // the CS-student third of campus
      const int dev_n = rng.Poisson(1.2);
      for (int i = 0; i < dev_n; ++i) {
        const ServiceId svc = rng.Bernoulli(0.5) ? github_ : stackoverflow_;
        const double minutes = ClampMinutes(rng.LogNormal(1.5, 0.9), 0.5, 90.0);
        out.push_back(MakeSession(svc, 2, SampleStart(day, rng), minutes,
                                  static_cast<std::uint64_t>(minutes * 8e5), rng));
      }
    }
  }
  AddBrowsing(s, day, 5.0, 2.0e6, rng, out);
  AddStreaming(s, day, 0.8, 2.2e7, rng, out);
  PlanSteamDay(s, day, rng, out);
}

void ActivityModel::PlanTablet(const StudentPersona& s, const SimDevice& d, int day,
                               util::Pcg32& rng,
                               std::vector<SessionPlan>& out) const {
  (void)d;
  AddStreaming(s, day, 0.6, 2.0e7, rng, out);
  AddBrowsing(s, day, 2.0, 1.2e6, rng, out);
  if (s.uses_instagram && rng.Bernoulli(0.3)) {
    PlanSocialApp(s, day, instagram_, rng, out);
  }
}

void ActivityModel::PlanIotSmall(const SimDevice& d, int day, util::Pcg32& rng,
                                 std::vector<SessionPlan>& out) const {
  const auto& pool = iot_small_backends_;
  const ServiceId backend =
      pool[static_cast<std::size_t>(d.mac.value() % pool.size())];
  const int heartbeats = 10 + static_cast<int>(rng.NextBounded(14));
  for (int i = 0; i < heartbeats; ++i) {
    SessionPlan plan = MakeSession(
        backend, 1,
        DayStart(day) + rng.UniformInt(0, util::kSecondsPerDay - 120),
        rng.Uniform(0.1, 0.5),
        static_cast<std::uint64_t>(rng.Uniform(2e3, 2e4)), rng,
        /*cdn_assets=*/false);
    plan.flows[0].bytes_up = plan.flows[0].bytes_down * 2;  // telemetry is upload
    out.push_back(std::move(plan));
  }
  if (rng.Bernoulli(0.008)) {  // firmware update
    out.push_back(MakeSession(backend, 2, SampleStart(day, rng), 3.0,
                              static_cast<std::uint64_t>(rng.Uniform(5e6, 8e7)),
                              rng, /*cdn_assets=*/false));
  }
}

void ActivityModel::PlanIotTv(const StudentPersona& s, const SimDevice& d, int day,
                              util::Pcg32& rng,
                              std::vector<SessionPlan>& out) const {
  const auto& pool = iot_tv_backends_;
  const ServiceId backend =
      pool[static_cast<std::size_t>(d.mac.value() % pool.size())];
  for (int i = 0; i < 4; ++i) {
    out.push_back(MakeSession(
        backend, 2, DayStart(day) + rng.UniformInt(0, util::kSecondsPerDay - 120),
        rng.Uniform(0.2, 1.0), static_cast<std::uint64_t>(rng.Uniform(5e3, 5e4)),
        rng, /*cdn_assets=*/false));
  }
  const int m = MonthIndex(day);
  AddStreaming(s, day, 0.7 * p::kStreamingMonth[m] / p::kStreamingMonth[0],
               p::kStreamBytesPerMinute, rng, out);
}

void ActivityModel::PlanSwitch(const SimDevice& d, int day, util::Pcg32& rng,
                               std::vector<SessionPlan>& out) const {
  (void)d;
  const world::Service& services = catalog_->Get(nintendo_services_);
  // Daily connectivity test + telemetry (non-gameplay, filtered out of Fig. 8).
  {
    SessionPlan plan;
    plan.start = DayStart(day) + rng.UniformInt(0, util::kSecondsPerDay - 120);
    plan.minutes = 0.2;
    FlowPlan f;
    f.host = services.hosts[5];  // conntest.nintendowifi.net
    f.service = nintendo_services_;
    f.bytes_down = 2000;
    f.bytes_up = 1000;
    plan.flows.push_back(f);
    out.push_back(std::move(plan));
  }
  if (rng.Bernoulli(0.8)) {
    SessionPlan plan;
    plan.start = DayStart(day) + rng.UniformInt(0, util::kSecondsPerDay - 120);
    plan.minutes = 0.3;
    FlowPlan f;
    f.host = services.hosts[4];  // receive-lp1 telemetry
    f.service = nintendo_services_;
    f.bytes_down = 1500;
    f.bytes_up = 15000;
    plan.flows.push_back(f);
    out.push_back(std::move(plan));
  }

  // Gameplay intensity over the term (§5.3.2, Fig. 8).
  double mult = p::kSwitchPreHours;
  switch (PandemicTimeline::PhaseOf(day)) {
    case Phase::kPrePandemic:
    case Phase::kStateOfEmergency: mult = p::kSwitchPreHours; break;
    case Phase::kPandemicDeclared: mult = 1.2; break;
    case Phase::kStayAtHome: mult = 1.6; break;
    case Phase::kAcademicBreak: mult = p::kSwitchBreakMultiplier; break;
    case Phase::kOnlineTerm: {
      if (day <= 77) {
        mult = p::kSwitchEarlyTermMultiplier;  // 3/30 .. ~4/17
      } else if (day <= 98) {
        mult = p::kSwitchMidTermMultiplier;  // late-April lull
      } else {
        mult = p::kSwitchLateMayMultiplier;  // "rises as boredom kicks in"
      }
      break;
    }
  }
  const int n = rng.Poisson(0.9 * mult);
  for (int i = 0; i < n; ++i) {
    const double minutes = ClampMinutes(rng.LogNormal(std::log(50.0), 0.6), 10.0, 360.0);
    SessionPlan plan = MakeSession(
        nintendo_gameplay_, 2, SampleEveningStart(day, rng), minutes,
        static_cast<std::uint64_t>(minutes * p::kSwitchGameplayBytesPerMinute *
                                   rng.Uniform(0.5, 1.8)),
        rng, /*cdn_assets=*/false);
    for (FlowPlan& f : plan.flows) {
      f.proto = net::Protocol::kUdp;
      f.port = 45000;
      f.bytes_up = f.bytes_down;  // p2p gameplay is symmetric
    }
    out.push_back(std::move(plan));
  }
  // Game/system downloads (non-gameplay). Elevated around the Animal
  // Crossing: New Horizons release on 3/20 (§5.3.2).
  double dl_prob = p::kSwitchDownloadProb;
  if (day >= 47 && day <= 52) dl_prob = 0.35;
  if (rng.Bernoulli(dl_prob)) {
    const auto bytes = static_cast<std::uint64_t>(std::min(
        rng.LogNormal(std::log(p::kSwitchDownloadBytesMean), 0.7), 2e10));
    SessionPlan plan;
    plan.start = SampleEveningStart(day, rng);
    plan.minutes = std::max(static_cast<double>(bytes) / 1.0e9, 2.0);
    FlowPlan f;
    f.host = services.hosts[0];  // atum download CDN
    f.service = nintendo_services_;
    f.bytes_down = bytes;
    f.bytes_up = bytes / 200;
    plan.flows.push_back(f);
    out.push_back(std::move(plan));
  }
}

void ActivityModel::PlanConsoleOther(const SimDevice& d, int day, util::Pcg32& rng,
                                     std::vector<SessionPlan>& out) const {
  (void)d;
  const double mult = PandemicTimeline::IsShutdown(day) ? 1.8 : 1.0;
  const int n = rng.Poisson(0.8 * mult);
  for (int i = 0; i < n; ++i) {
    const double minutes = ClampMinutes(rng.LogNormal(std::log(60.0), 0.6), 10.0, 360.0);
    SessionPlan plan = MakeSession(
        playstation_, 2, SampleEveningStart(day, rng), minutes,
        static_cast<std::uint64_t>(minutes * 2e5 * rng.Uniform(0.5, 1.8)), rng,
        /*cdn_assets=*/false);
    plan.flows[0].proto = net::Protocol::kUdp;
    out.push_back(std::move(plan));
  }
  if (rng.Bernoulli(0.05)) {
    out.push_back(MakeSession(
        playstation_, 1, SampleEveningStart(day, rng), 20.0,
        static_cast<std::uint64_t>(std::min(rng.LogNormal(std::log(8e9), 0.8), 5e10)),
        rng, /*cdn_assets=*/false));
  }
}

void ActivityModel::PlanMiscGadget(const StudentPersona& s, const SimDevice& d,
                                   int day, util::Pcg32& rng,
                                   std::vector<SessionPlan>& out) const {
  if (d.true_class == TrueClass::kMobile) {
    AddBrowsing(s, day, 1.2, 1.0e6, rng, out);
    if (rng.Bernoulli(0.25)) AddStreaming(s, day, 0.5, 1.5e7, rng, out);
  } else {
    // Cloud-sync style chatter with an occasional enormous backup — the
    // mean-vs-median gap Fig. 2 shows for unclassified devices.
    const ServiceId svc = rng.Bernoulli(0.5) ? gworkspace_ : catalog_->FindByName("dropbox").value_or(gworkspace_);
    const int n = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < n; ++i) {
      out.push_back(MakeSession(
          svc, 1, DayStart(day) + rng.UniformInt(0, util::kSecondsPerDay - 120),
          rng.Uniform(0.2, 2.0), static_cast<std::uint64_t>(rng.Uniform(1e4, 2e6)),
          rng));
    }
    if (rng.Bernoulli(0.03)) {
      // The occasional enormous backup/sync: the outliers behind Fig. 2's
      // orders-of-magnitude mean-vs-median gap for unclassified devices.
      out.push_back(MakeSession(
          svc, 1, SampleStart(day, rng), 30.0,
          static_cast<std::uint64_t>(std::min(rng.LogNormal(std::log(8e9), 1.2), 8e10)),
          rng));
    }
  }
}

void ActivityModel::PlanDay(const Population& pop, const SimDevice& dev,
                            int study_day, util::Pcg32& rng,
                            std::vector<SessionPlan>& out) const {
  const StudentPersona& s = pop.student_of(dev);
  switch (dev.kind) {
    case DeviceKind::kPhone: PlanPhone(s, dev, study_day, rng, out); break;
    case DeviceKind::kLaptop:
    case DeviceKind::kDesktop: PlanComputer(s, dev, study_day, rng, out); break;
    case DeviceKind::kTablet: PlanTablet(s, dev, study_day, rng, out); break;
    case DeviceKind::kIotSmall: PlanIotSmall(dev, study_day, rng, out); break;
    case DeviceKind::kIotTv: PlanIotTv(s, dev, study_day, rng, out); break;
    case DeviceKind::kSwitch: PlanSwitch(dev, study_day, rng, out); break;
    case DeviceKind::kConsoleOther: PlanConsoleOther(dev, study_day, rng, out); break;
    case DeviceKind::kMiscGadget: PlanMiscGadget(s, dev, study_day, rng, out); break;
  }
}

}  // namespace lockdown::sim
