// Per-device daily activity planning.
//
// Given a device, its owner's persona, and the study day, the activity model
// emits the day's session plans: which services, when, for how long, how many
// bytes, and across which hostnames. All of the paper's behavioural findings
// are generated here, driven by the constants in parameters.h.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/endpoint.h"
#include "sim/persona.h"
#include "sim/population.h"
#include "util/rng.h"
#include "util/time.h"
#include "world/catalog.h"

namespace lockdown::sim {

/// One planned connection within a session.
struct FlowPlan {
  std::string_view host;  ///< empty for raw-IP connections
  world::ServiceId service = world::kInvalidService;
  std::uint64_t bytes_down = 0;
  std::uint64_t bytes_up = 0;
  /// Fractions of the session interval this flow spans (flows overlap, which
  /// is what the analysis-side sessionizer has to undo).
  double start_frac = 0.0;
  double end_frac = 1.0;
  bool raw_ip = false;  ///< connect to an arbitrary address in the service block
  net::Protocol proto = net::Protocol::kTcp;
  net::Port port = 443;
};

/// One planned application session (a burst of overlapping flows).
struct SessionPlan {
  util::Timestamp start = 0;
  double minutes = 0.0;
  bool expose_ua = false;  ///< one flow carries a cleartext User-Agent
  std::vector<FlowPlan> flows;
};

class ActivityModel {
 public:
  explicit ActivityModel(const world::ServiceCatalog& catalog);

  /// Plans all sessions for `dev` on `study_day`, appending to `out`. The
  /// caller has already decided the device is active today.
  void PlanDay(const Population& pop, const SimDevice& dev, int study_day,
               util::Pcg32& rng, std::vector<SessionPlan>& out) const;

  [[nodiscard]] const world::ServiceCatalog& catalog() const noexcept {
    return *catalog_;
  }

 private:
  struct ServicePools;

  // Per-device-kind planners.
  void PlanPhone(const StudentPersona& s, const SimDevice& d, int day,
                 util::Pcg32& rng, std::vector<SessionPlan>& out) const;
  void PlanComputer(const StudentPersona& s, const SimDevice& d, int day,
                    util::Pcg32& rng, std::vector<SessionPlan>& out) const;
  void PlanTablet(const StudentPersona& s, const SimDevice& d, int day,
                  util::Pcg32& rng, std::vector<SessionPlan>& out) const;
  void PlanIotSmall(const SimDevice& d, int day, util::Pcg32& rng,
                    std::vector<SessionPlan>& out) const;
  void PlanIotTv(const StudentPersona& s, const SimDevice& d, int day,
                 util::Pcg32& rng, std::vector<SessionPlan>& out) const;
  void PlanSwitch(const SimDevice& d, int day, util::Pcg32& rng,
                  std::vector<SessionPlan>& out) const;
  void PlanConsoleOther(const SimDevice& d, int day, util::Pcg32& rng,
                        std::vector<SessionPlan>& out) const;
  void PlanMiscGadget(const StudentPersona& s, const SimDevice& d, int day,
                      util::Pcg32& rng, std::vector<SessionPlan>& out) const;

  // Shared building blocks.
  void PlanSocialApp(const StudentPersona& s, int day, world::ServiceId app,
                     util::Pcg32& rng, std::vector<SessionPlan>& out) const;
  void PlanZoomDay(const StudentPersona& s, int day, util::Pcg32& rng,
                   std::vector<SessionPlan>& out) const;
  void AddBrowsing(const StudentPersona& s, int day, double mean_sessions,
                   double bytes_per_minute, util::Pcg32& rng,
                   std::vector<SessionPlan>& out) const;
  void AddStreaming(const StudentPersona& s, int day, double mean_sessions,
                    double bytes_per_minute, util::Pcg32& rng,
                    std::vector<SessionPlan>& out) const;
  void PlanSteamDay(const StudentPersona& s, int day, util::Pcg32& rng,
                    std::vector<SessionPlan>& out) const;

  /// Builds a session whose flows span the first `nhosts` hostnames of a
  /// service, with a 60/25/15 byte split. When `cdn_assets` is true the
  /// session may pull part of its bytes from a CDN edge (browsers and
  /// streaming apps do; appliances and consoles talk only to their own
  /// backends).
  SessionPlan MakeSession(world::ServiceId svc, int nhosts, util::Timestamp start,
                          double minutes, std::uint64_t bytes_down,
                          util::Pcg32& rng, bool cdn_assets = true) const;

  /// Session start time sampled from the diurnal profile for this day/phase.
  [[nodiscard]] util::Timestamp SampleStart(int day, util::Pcg32& rng) const;
  /// Social check-ins spread across waking hours far more evenly than bulk
  /// traffic: sampled from the square-root-dampened profile. Without this,
  /// the pre-pandemic evening peak makes February sessions overlap (and
  /// merge) far more than lock-down sessions, distorting Fig. 6's monthly
  /// duration comparison.
  [[nodiscard]] util::Timestamp SampleSocialStart(int day, util::Pcg32& rng) const;
  /// Start time restricted to an hour window (e.g. Zoom class hours).
  [[nodiscard]] static util::Timestamp SampleStartInWindow(int day, int first_hour,
                                                           int last_hour,
                                                           util::Pcg32& rng);
  /// Evening-weighted start (gaming, TV).
  [[nodiscard]] static util::Timestamp SampleEveningStart(int day, util::Pcg32& rng);

  /// Leisure volume multiplier for this student and day (month trend ×
  /// academic-break boost × per-student scale).
  [[nodiscard]] static double LeisureVolume(const StudentPersona& s, int day);

  const world::ServiceCatalog* catalog_;

  // Cached service ids.
  world::ServiceId zoom_, zoom_media_, zoom_media_legacy_;
  world::ServiceId facebook_, instagram_, tiktok_;
  world::ServiceId steam_, nintendo_gameplay_, nintendo_services_, playstation_;
  world::ServiceId spotify_, youtube_, netflix_;
  world::ServiceId whatsapp_, discord_, apple_;
  world::ServiceId canvas_, gradescope_, piazza_, gworkspace_, github_, stackoverflow_;

  // Pools (vectors of service ids).
  std::vector<world::ServiceId> us_social_light_;   // snapchat/twitter/reddit/...
  std::vector<world::ServiceId> cdn_pool_;          // akamai/aws/cloudfront/...
  std::vector<world::ServiceId> us_browse_;
  std::vector<world::ServiceId> us_stream_;
  std::vector<world::ServiceId> iot_small_backends_;
  std::vector<world::ServiceId> iot_tv_backends_;
  // Foreign pools keyed by country code.
  struct CountryPools {
    std::vector<world::ServiceId> browse;
    std::vector<world::ServiceId> stream;
    std::vector<world::ServiceId> social;
    std::vector<world::ServiceId> messaging;
    std::optional<util::ZipfDistribution> browse_zipf;
  };
  std::unordered_map<std::string, CountryPools> foreign_;

  // Zipf-ranked popularity over the browsing pools: the head carries the
  // big-brand sites, the tail the web-us-### long tail.
  std::optional<util::ZipfDistribution> us_browse_zipf_;
};

}  // namespace lockdown::sim
