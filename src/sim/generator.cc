#include "sim/generator.h"

#include <algorithm>
#include <cmath>

#include "sim/parameters.h"
#include "sim/timeline.h"

namespace lockdown::sim {

namespace p = params;
using flow::EventKind;
using flow::TapEvent;
using util::StudyCalendar;
using util::Timestamp;

TrafficGenerator::TrafficGenerator(GeneratorConfig config,
                                   const world::ServiceCatalog& catalog)
    : config_(config),
      catalog_(&catalog),
      population_(config.population),
      activity_(catalog),
      dhcp_({config.client_pool}, config.dhcp,
            util::Pcg32(config.population.seed, 0xD4C9)),
      resolver_(
          [&catalog](std::string_view qname) { return catalog.ResolveHost(qname); },
          dns::ResolverConfig{config.dns_ttl, 0},
          util::Pcg32(config.population.seed, 0xD45)),
      master_rng_(config.population.seed, 0x7AFF1C),
      port_counter_(population_.devices().size(), 0) {}

bool TrafficGenerator::DeviceActiveToday(const SimDevice& dev, int day,
                                         util::Pcg32& rng) const {
  const StudentPersona& s = population_.student_of(dev);
  if (s.leaves_campus && day >= s.departure_day) return false;
  if (day < dev.first_active_day) return false;

  const bool weekend =
      util::IsWeekend(util::WeekdayOf(StudyCalendar::DateAt(day)));
  const bool shutdown = PandemicTimeline::IsShutdown(day);
  double prob = 0.0;
  switch (dev.kind) {
    case DeviceKind::kPhone:
    case DeviceKind::kLaptop:
    case DeviceKind::kDesktop:
      prob = shutdown ? (weekend ? p::kWeekendActiveShutdown : p::kWeekdayActiveShutdown)
                      : (weekend ? p::kWeekendActive : p::kWeekdayActive);
      break;
    case DeviceKind::kTablet:
      prob = shutdown ? 0.80 : 0.55;
      break;
    case DeviceKind::kIotSmall:
    case DeviceKind::kIotTv:
      prob = 0.97;  // always-on while the owner is on campus
      break;
    case DeviceKind::kSwitch:
    case DeviceKind::kConsoleOther:
      prob = shutdown ? p::kConsoleActiveShutdown : p::kConsoleActivePre;
      break;
    case DeviceKind::kMiscGadget:
      prob = shutdown ? p::kSecondaryActiveShutdown : p::kSecondaryActivePre;
      break;
  }
  return rng.Bernoulli(prob);
}

void TrafficGenerator::EmitSession(const SimDevice& dev, const SessionPlan& plan,
                                   bool expose_ua, util::Pcg32& rng,
                                   std::vector<TapEvent>& events) {
  const Timestamp duration_s =
      std::max<Timestamp>(static_cast<Timestamp>(plan.minutes * 60.0), 10);
  const net::Ipv4Address client_ip = dhcp_.Acquire(dev.mac, plan.start);

  bool ua_pending = expose_ua;
  for (const FlowPlan& f : plan.flows) {
    const auto fstart =
        plan.start + static_cast<Timestamp>(f.start_frac * static_cast<double>(duration_s));
    auto fend =
        plan.start + static_cast<Timestamp>(f.end_frac * static_cast<double>(duration_s));
    if (fend <= fstart) fend = fstart + 1;

    net::Ipv4Address server_ip;
    if (f.raw_ip) {
      const net::Cidr block = catalog_->Get(f.service).block;
      server_ip = block.At(1 + rng.UniformInt(0, static_cast<std::int64_t>(
                                                     block.size()) - 3));
    } else {
      const auto resolved = resolver_.Resolve(dev.mac, f.host, fstart);
      if (!resolved) continue;  // NXDOMAIN: nothing to connect to
      server_ip = *resolved;
    }

    net::FiveTuple tuple;
    tuple.src_ip = client_ip;
    tuple.dst_ip = server_ip;
    tuple.src_port =
        static_cast<net::Port>(32768 + (port_counter_[dev.index]++ % 28000));
    tuple.dst_port = f.port;
    tuple.proto = f.proto;

    if (ua_pending && !f.raw_ip) {
      const auto corpus = world::UserAgentsFor(dev.ua_platform);
      if (!corpus.empty()) {
        ua_sightings_.push_back(
            UaSighting{fstart, client_ip,
                       corpus[dev.index % corpus.size()]});
      }
      ua_pending = false;
    }

    // Long flows must show periodic activity or Zeek-style inactivity
    // timeouts would split them: chunk bytes into <=5-minute data events.
    const Timestamp flow_dur = fend - fstart;
    const int chunks =
        std::max(1, static_cast<int>(flow_dur / (5 * util::kSecondsPerMinute)));
    events.push_back(TapEvent{fstart, EventKind::kOpen, tuple, 0, 0});
    std::uint64_t up_left = f.bytes_up;
    std::uint64_t down_left = f.bytes_down;
    for (int c = 0; c < chunks - 1; ++c) {
      const Timestamp ts =
          fstart + flow_dur * (c + 1) / chunks;
      const std::uint64_t up = up_left / static_cast<std::uint64_t>(chunks - c);
      const std::uint64_t down = down_left / static_cast<std::uint64_t>(chunks - c);
      up_left -= up;
      down_left -= down;
      events.push_back(TapEvent{ts, EventKind::kData, tuple, up, down});
    }
    events.push_back(TapEvent{fend, EventKind::kClose, tuple, up_left, down_left});
  }
}

void TrafficGenerator::Run(const TapSink& sink) {
  struct PendingSession {
    std::uint32_t device;
    std::uint32_t rng_slot;
    bool expose_ua;
    SessionPlan plan;
  };
  std::vector<TapEvent> day_events;
  std::vector<SessionPlan> plans;
  std::vector<PendingSession> day_sessions;
  std::vector<util::Pcg32> day_rngs;

  for (int day = config_.first_day; day < config_.last_day; ++day) {
    day_events.clear();
    day_sessions.clear();
    day_rngs.clear();
    for (const SimDevice& dev : population_.devices()) {
      // Per-(device, day) stream: identical configs replay identical days.
      util::Pcg32 rng = master_rng_.Fork(
          static_cast<std::uint64_t>(dev.index) * 131071ULL +
          static_cast<std::uint64_t>(day));
      if (!DeviceActiveToday(dev, day, rng)) continue;
      plans.clear();
      activity_.PlanDay(population_, dev, day, rng, plans);
      if (plans.empty()) continue;
      std::sort(plans.begin(), plans.end(),
                [](const SessionPlan& a, const SessionPlan& b) {
                  return a.start < b.start;
                });
      // At most one session a day leaks a cleartext UA, scaled by how chatty
      // the device's apps are in plaintext.
      const std::size_t ua_session =
          rng.Bernoulli(dev.ua_visibility)
              ? rng.NextBounded(static_cast<std::uint32_t>(plans.size()))
              : plans.size();
      const auto rng_slot = static_cast<std::uint32_t>(day_rngs.size());
      day_rngs.push_back(rng);
      for (std::size_t i = 0; i < plans.size(); ++i) {
        day_sessions.push_back(PendingSession{dev.index, rng_slot,
                                              i == ua_session,
                                              std::move(plans[i])});
      }
    }
    // Sessions must reach the DHCP server and resolver in global time order
    // — feeding them per-device would let one device's evening resolutions
    // poison the shared DNS cache (and log) for every other device's morning.
    // stable_sort preserves the per-device ordering the DHCP lease logic
    // relies on.
    std::stable_sort(day_sessions.begin(), day_sessions.end(),
                     [](const PendingSession& a, const PendingSession& b) {
                       return a.plan.start < b.plan.start;
                     });
    for (PendingSession& ps : day_sessions) {
      EmitSession(population_.devices()[ps.device], ps.plan, ps.expose_ua,
                  day_rngs[ps.rng_slot], day_events);
    }
    std::sort(day_events.begin(), day_events.end(),
              [](const TapEvent& a, const TapEvent& b) { return a.ts < b.ts; });
    for (const TapEvent& ev : day_events) sink(ev);
  }
}

}  // namespace lockdown::sim
