// Behavioural tuning constants for the synthetic campus.
//
// Every constant that shapes a figure cites the paper sentence it supports.
// Month indices throughout are 0=February, 1=March, 2=April, 3=May (the
// months of Figures 6 and 7).
#pragma once

#include <array>

namespace lockdown::sim::params {

// ---------------------------------------------------------------------------
// Population & departure
// ---------------------------------------------------------------------------

/// "about 25% of the entire student body population at UC San Diego was
/// comprised of International students" (§4.2).
inline constexpr double kInternationalShare = 0.25;

/// Probability a student leaves campus during March. International students
/// leave less often ("it would have been more difficult for these students to
/// find flights to return home", §4.2), producing the paper's shrunken but
/// internationally-skewed post-shutdown population.
inline constexpr double kDomesticLeaveProb = 0.80;
inline constexpr double kInternationalLeaveProb = 0.70;

/// Departure-day weights: "students started leaving campus even before
/// classes became fully remote" (§4), with the bulk leaving between the WHO
/// declaration (3/11) and the start of break (3/22).
struct DepartureWindow {
  int first_day;  ///< study-day index
  int last_day;   ///< inclusive
  double weight;
};
inline constexpr std::array<DepartureWindow, 3> kDepartureWindows = {{
    {33, 39, 1.0},   // 3/5 .. 3/11: early movers
    {40, 50, 5.0},   // 3/12 .. 3/22: the exodus
    {51, 58, 1.5},   // 3/23 .. 3/29: stragglers during break
}};

/// Per-student device ownership probabilities.
inline constexpr double kOwnsPhone = 0.97;
inline constexpr double kPhoneIsIphone = 0.55;
inline constexpr double kOwnsLaptop = 0.93;
inline constexpr double kLaptopIsMac = 0.45;
inline constexpr double kLaptopIsLinux = 0.05;
inline constexpr double kOwnsDesktop = 0.07;
inline constexpr double kOwnsTablet = 0.22;
inline constexpr double kOwnsIotSmall = 0.30;   // plug/bulb/speaker
inline constexpr double kOwnsSecondIotSmall = 0.08;
inline constexpr double kOwnsIotTv = 0.18;      // TV or streaming stick
inline constexpr double kOwnsSwitch = 0.14;     // scaled: paper saw 1,097 Switches
inline constexpr double kOwnsConsoleOther = 0.09;
inline constexpr double kOwnsMiscGadget = 0.60; // e-reader/old tablet/printer

/// Randomized (locally administered) MAC probabilities per device family —
/// the main driver of "unclassified" devices (§4 fn. 2 suspects unclassified
/// devices are really mobile/desktop devices).
inline constexpr double kPhoneRandomMac = 0.45;
inline constexpr double kLaptopRandomMac = 0.12;
inline constexpr double kTabletRandomMac = 0.40;
inline constexpr double kMiscRandomMac = 0.55;

/// Probability a staying student powers on a device they had not used
/// before, per the paper's "40 new Switches that first appeared in April and
/// May" (§5.3.2).
inline constexpr double kNewDeviceProb = 0.12;
inline constexpr double kNewDeviceIsSwitch = 0.40;

// ---------------------------------------------------------------------------
// Presence / daily activation
// ---------------------------------------------------------------------------

/// Probability a present student's primary devices are active on a given day.
/// "devices are more likely to have network activity on weekdays than
/// weekends, creating regular dips and spikes" (§4, Fig. 1).
inline constexpr double kWeekdayActive = 0.93;
inline constexpr double kWeekendActive = 0.77;
/// Post-shutdown the dips shrink but persist ("the weekend dips in traffic
/// persist", §4.1).
inline constexpr double kWeekdayActiveShutdown = 0.95;
inline constexpr double kWeekendActiveShutdown = 0.87;
/// Secondary gadgets are used sporadically pre-lockdown and much more during
/// it (boredom: everything gets powered on). This is what flips Fig. 1's
/// post-shutdown composition toward unclassified devices.
inline constexpr double kSecondaryActivePre = 0.18;
inline constexpr double kSecondaryActiveShutdown = 0.55;
inline constexpr double kConsoleActivePre = 0.30;
inline constexpr double kConsoleActiveShutdown = 0.52;

// ---------------------------------------------------------------------------
// Diurnal shape
// ---------------------------------------------------------------------------

/// Hour-of-day weights (24 entries summing to anything; normalized at use).
/// Pre-pandemic weekdays peak in the evening; during the shutdown "traffic
/// spikes earlier in the day and peaks at higher volumes than in February.
/// In contrast, weekends are relatively unchanged" (§4.1, Fig. 3).
using DiurnalProfile = std::array<double, 24>;

inline constexpr DiurnalProfile kWeekdayPre = {
    1.2, 0.7, 0.4, 0.25, 0.2, 0.25, 0.5, 1.0, 1.6, 1.9, 2.0, 2.2,
    2.4, 2.3, 2.2, 2.3, 2.6, 3.0, 3.4, 3.8, 4.2, 4.0, 3.2, 2.0};
inline constexpr DiurnalProfile kWeekdayShutdown = {
    1.4, 0.9, 0.5, 0.3, 0.25, 0.3, 0.7, 1.8, 3.2, 3.8, 4.0, 4.1,
    4.0, 3.9, 3.8, 3.7, 3.8, 3.9, 4.1, 4.3, 4.4, 4.1, 3.2, 2.1};
inline constexpr DiurnalProfile kWeekend = {
    1.6, 1.1, 0.7, 0.4, 0.3, 0.3, 0.4, 0.6, 1.0, 1.5, 2.0, 2.4,
    2.6, 2.7, 2.8, 2.8, 2.9, 3.0, 3.2, 3.4, 3.6, 3.4, 2.8, 2.0};

// ---------------------------------------------------------------------------
// Overall volume by month
// ---------------------------------------------------------------------------

/// Per-month general activity multiplier for post-shutdown users.
/// "the total volume of traffic ... increases by 58% from February to April
///  and May 2020" and "per-device traffic increased dramatically in April of
///  2020, [but] returned to pre-pandemic levels in May" (§4.1, §6). The
/// international series stays elevated longer (Fig. 4).
inline constexpr std::array<double, 4> kDomesticMonthVolume = {1.00, 1.12, 1.35, 1.10};
inline constexpr std::array<double, 4> kIntlMonthVolume = {1.00, 1.25, 1.50, 1.35};

/// Extra browsing breadth during lock-down: "users visited 34% more distinct
/// sites in April and May 2020 than in February" (§4.1).
inline constexpr std::array<double, 4> kSiteBreadth = {1.0, 1.25, 1.60, 1.60};

// ---------------------------------------------------------------------------
// Zoom (§5.1, Fig. 5)
// ---------------------------------------------------------------------------

/// Mean Zoom class-hours per weekday per student once "classes resume
/// online" (3/30). Small remote activity appears with the WHO declaration
/// (winter finals went remote) and weekend leisure calls are a trickle
/// ("On weekends, there is a small spike in traffic in the afternoon").
inline constexpr double kZoomWeekdaySessionsOnline = 2.4;
inline constexpr double kZoomWeekdaySessionsFinals = 0.9;
inline constexpr double kZoomWeekendSessions = 0.35;
inline constexpr double kZoomClassMinutesMean = 55.0;
/// Mixed audio/video/screen-share => ~2 MB/min downstream on average.
inline constexpr double kZoomBytesPerMinute = 2.0e6;
/// Fraction of a Zoom session's bytes carried by raw-IP media relays (the
/// traffic only the published IP list can attribute).
inline constexpr double kZoomMediaShare = 0.85;
/// Fraction of media sessions still hitting the retired (wayback) relay block.
inline constexpr double kZoomLegacyRelayShare = 0.06;

// ---------------------------------------------------------------------------
// Social media (§5.2, Fig. 6) — mobile sessions/day for users of each app
// ---------------------------------------------------------------------------

struct SocialParams {
  /// Probability a student uses the app at all, by residency.
  double penetration_dom;
  double penetration_intl;
  /// Mean sessions/day by month, by residency.
  std::array<double, 4> rate_dom;
  std::array<double, 4> rate_intl;
  /// Log-normal session duration (minutes).
  double dur_mu;
  double dur_sigma;
};

/// Facebook: "For domestic users, Facebook usage was relatively unchanged
/// from February through March, but decreased in May. However, the median
/// duration for international students increased during the campus shutdown."
inline constexpr SocialParams kFacebook = {
    .penetration_dom = 0.62, .penetration_intl = 0.58,
    .rate_dom = {3.0, 2.7, 2.4, 1.7},
    .rate_intl = {1.7, 2.3, 2.7, 2.6},
    .dur_mu = 1.61, .dur_sigma = 1.05};  // median session ~5 min

/// Instagram: "the median is relatively unchanged from February through
/// April, but decreases in May... the median for international students
/// increases in May."
inline constexpr SocialParams kInstagram = {
    .penetration_dom = 0.56, .penetration_intl = 0.47,
    .rate_dom = {3.2, 3.2, 3.0, 2.2},
    .rate_intl = {2.0, 2.6, 2.6, 3.1},
    .dur_mu = 1.50, .dur_sigma = 1.00};

/// TikTok: domestic median up in March, down in April, back to February's
/// level in May, with the upper tail growing all term; international users
/// much less active but with steadily growing variance (§5.2, Fig. 6c).
inline constexpr SocialParams kTikTok = {
    .penetration_dom = 0.34, .penetration_intl = 0.26,
    .rate_dom = {2.2, 3.3, 2.4, 2.2},
    .rate_intl = {0.7, 1.0, 1.1, 0.9},
    .dur_mu = 1.80, .dur_sigma = 1.15};

/// TikTok's heavy-tail growth: each month a slice of users escalates,
/// stretching Q3/p99 while the median recovers ("the third quartile and 99th
/// percentile both increase steadily over the months").
inline constexpr std::array<double, 4> kTikTokHeavyUserShare = {0.06, 0.10, 0.15, 0.18};
inline constexpr double kTikTokHeavyMultiplier = 4.0;
/// Monthly TikTok adoption growth (Fig. 6c's n= rises from 504 to 715 for
/// domestic users; "TikTok's popularity increased by 75%...").
inline constexpr std::array<double, 4> kTikTokAdoption = {0.70, 0.82, 0.92, 1.00};

// ---------------------------------------------------------------------------
// Steam (§5.3.1, Fig. 7)
// ---------------------------------------------------------------------------

/// Share of students who are Steam users; international students play more
/// ("international students ... spend more time on Steam", §1).
inline constexpr double kSteamPenetrationDom = 0.30;
inline constexpr double kSteamPenetrationIntl = 0.42;
/// Casual visitors per month (store browsing only) — Fig. 7's n grows from
/// 681 to 1,243 domestic devices while medians stay low.
inline constexpr std::array<double, 4> kSteamCasualVisitProb = {0.20, 0.26, 0.30, 0.38};
/// Play-hours multiplier by month: "domestic students increase their Steam
/// usage in March, but this usage falls in April and May. International
/// students increase their usage even more during March and April, but again
/// this usage falls in May."
inline constexpr std::array<double, 4> kSteamHoursDom = {1.0, 1.9, 1.25, 0.9};
inline constexpr std::array<double, 4> kSteamHoursIntl = {1.3, 2.6, 2.4, 1.35};
/// Connections per month trend differs from bytes: "Domestic students'
/// median [connections] drops over time, while international students'
/// median increases in March and then drops again."
inline constexpr std::array<double, 4> kSteamConnsDom = {1.0, 0.30, 0.28, 0.30};
inline constexpr std::array<double, 4> kSteamConnsIntl = {1.0, 1.5, 1.1, 0.8};
/// Game download probability per play-day (drives the byte-vs-connection
/// divergence the paper attributes to "game releases or ... the way each
/// game operates").
inline constexpr std::array<double, 4> kSteamDownloadProb = {0.010, 0.022, 0.014, 0.010};

// ---------------------------------------------------------------------------
// Nintendo Switch (§5.3.2, Fig. 8)
// ---------------------------------------------------------------------------

/// Gameplay hours/day multiplier by phase: "heavy spikes of usage during
/// academic break and the early part of the Spring academic term, usage
/// returned to almost pre-pandemic levels in late April and early May before
/// increasing again."
inline constexpr double kSwitchPreHours = 0.9;
inline constexpr double kSwitchBreakMultiplier = 2.3;    // Animal Crossing, 3/20
inline constexpr double kSwitchEarlyTermMultiplier = 1.8; // 3/30 .. ~4/17
inline constexpr double kSwitchMidTermMultiplier = 1.0;   // late April lull
inline constexpr double kSwitchLateMayMultiplier = 1.55;  // "boredom kicks in"
/// Online gameplay is light (~20 kbps p2p/relay); downloads are far larger.
inline constexpr double kSwitchGameplayBytesPerMinute = 1.6e5;
inline constexpr double kSwitchDownloadProb = 0.04;
inline constexpr double kSwitchDownloadBytesMean = 2.5e9;

// ---------------------------------------------------------------------------
// Everything else
// ---------------------------------------------------------------------------

/// Streaming (Netflix/YouTube/bilibili/...) hours multiplier by month —
/// "entertainment usage increased" (§6).
inline constexpr std::array<double, 4> kStreamingMonth = {1.0, 1.5, 1.9, 1.5};

/// Mean bytes/minute for a TV-quality video stream (~4 Mbps).
inline constexpr double kStreamBytesPerMinute = 3.0e7;

/// International students' preference for home-country services when
/// browsing/streaming ("international students spend less time on US-based
/// social media applications than their domestic counterparts", §1).
inline constexpr double kIntlForeignShare = 0.55;

}  // namespace lockdown::sim::params
