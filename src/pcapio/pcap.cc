#include "pcapio/pcap.h"

#include <cstring>

namespace lockdown::pcapio {

namespace {

std::uint32_t Read32(std::span<const std::byte> b, std::size_t off, bool swap) {
  std::uint32_t v;
  std::memcpy(&v, b.data() + off, 4);
  return swap ? __builtin_bswap32(v) : v;
}

std::uint16_t Read16(std::span<const std::byte> b, std::size_t off, bool swap) {
  std::uint16_t v;
  std::memcpy(&v, b.data() + off, 2);
  return swap ? __builtin_bswap16(v) : v;
}

}  // namespace

PcapWriter::PcapWriter(std::uint32_t snaplen) : snaplen_(snaplen) {
  // Global header: magic, version 2.4, thiszone 0, sigfigs 0, snaplen,
  // linktype.
  Put32(kPcapMagic);
  Put16(2);
  Put16(4);
  Put32(0);
  Put32(0);
  Put32(snaplen_);
  Put32(kLinkTypeEthernet);
}

void PcapWriter::Put32(std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buffer_.insert(buffer_.end(), p, p + 4);
}

void PcapWriter::Put16(std::uint16_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  buffer_.insert(buffer_.end(), p, p + 2);
}

void PcapWriter::Write(std::int64_t ts_us, std::span<const std::byte> packet) {
  const auto captured =
      static_cast<std::uint32_t>(std::min<std::size_t>(packet.size(), snaplen_));
  Put32(static_cast<std::uint32_t>(ts_us / 1000000));
  Put32(static_cast<std::uint32_t>(ts_us % 1000000));
  Put32(captured);
  Put32(static_cast<std::uint32_t>(packet.size()));
  buffer_.insert(buffer_.end(), packet.begin(), packet.begin() + captured);
  ++count_;
}

std::optional<std::vector<Packet>> ReadPcap(std::span<const std::byte> document) {
  if (document.size() < 24) return std::nullopt;
  const std::uint32_t magic = Read32(document, 0, false);
  bool swap = false;
  if (magic == kPcapMagicSwapped) {
    swap = true;
  } else if (magic != kPcapMagic) {
    return std::nullopt;
  }
  if (Read16(document, 4, swap) != 2) return std::nullopt;  // major version
  if (Read32(document, 20, swap) != kLinkTypeEthernet) return std::nullopt;

  std::vector<Packet> packets;
  std::size_t off = 24;
  while (off < document.size()) {
    if (off + 16 > document.size()) return std::nullopt;  // truncated header
    const std::uint32_t sec = Read32(document, off, swap);
    const std::uint32_t usec = Read32(document, off + 4, swap);
    const std::uint32_t caplen = Read32(document, off + 8, swap);
    off += 16;
    if (off + caplen > document.size()) return std::nullopt;  // truncated body
    Packet pkt;
    pkt.ts_us = static_cast<std::int64_t>(sec) * 1000000 + usec;
    pkt.data.assign(document.begin() + static_cast<std::ptrdiff_t>(off),
                    document.begin() + static_cast<std::ptrdiff_t>(off + caplen));
    packets.push_back(std::move(pkt));
    off += caplen;
  }
  return packets;
}

}  // namespace lockdown::pcapio
