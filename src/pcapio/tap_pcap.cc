#include "pcapio/tap_pcap.h"

#include <algorithm>

namespace lockdown::pcapio {

namespace {

/// Deterministic pseudo-MACs for packet synthesis: the tap's unit of
/// identity is the IP (MAC attribution happens via DHCP logs), so any
/// consistent mapping works.
net::MacAddress MacFor(net::Ipv4Address ip) {
  return net::MacAddress(0x020000000000ULL | ip.value());
}

}  // namespace

std::vector<std::byte> SynthesizePcap(std::span<const flow::TapEvent> events,
                                      SynthesizeOptions options) {
  PcapWriter writer;
  for (const flow::TapEvent& ev : events) {
    const std::int64_t ts_us = ev.ts * 1000000;
    PacketInfo fwd;
    fwd.src_mac = MacFor(ev.tuple.src_ip);
    fwd.dst_mac = MacFor(ev.tuple.dst_ip);
    fwd.tuple = ev.tuple;
    PacketInfo rev = fwd;
    std::swap(rev.src_mac, rev.dst_mac);
    std::swap(rev.tuple.src_ip, rev.tuple.dst_ip);
    std::swap(rev.tuple.src_port, rev.tuple.dst_port);

    // Byte counts become MTU-sized packets, capped per event.
    const auto emit = [&](PacketInfo info, std::uint64_t bytes,
                          std::int64_t base_us) {
      std::size_t packets = static_cast<std::size_t>(
          (bytes + options.mtu_payload - 1) / options.mtu_payload);
      packets = std::clamp<std::size_t>(packets, bytes > 0 ? 1 : 0,
                                        options.max_packets_per_event);
      std::uint64_t left = bytes;
      for (std::size_t i = 0; i < packets; ++i) {
        info.payload_len = static_cast<std::uint16_t>(
            std::min<std::uint64_t>(left, options.mtu_payload));
        if (ev.tuple.proto == net::Protocol::kTcp) info.flags.ack = true;
        writer.Write(base_us + static_cast<std::int64_t>(i),
                     SynthesizePacket(info));
        left -= std::min<std::uint64_t>(left, options.mtu_payload);
      }
    };

    switch (ev.kind) {
      case flow::EventKind::kOpen: {
        if (ev.tuple.proto == net::Protocol::kTcp) {
          fwd.flags.syn = true;
          writer.Write(ts_us, SynthesizePacket(fwd));
          rev.flags.syn = true;
          rev.flags.ack = true;
          writer.Write(ts_us + 1, SynthesizePacket(rev));
          fwd.flags.syn = false;
          rev.flags.syn = false;
          rev.flags.ack = false;
        } else {
          // UDP has no handshake: an empty first datagram opens the flow.
          writer.Write(ts_us, SynthesizePacket(fwd));
        }
        // Opens may carry bytes too (aggregated event streams do this).
        emit(fwd, ev.bytes_up, ts_us + 10);
        emit(rev, ev.bytes_down, ts_us + 100);
        break;
      }
      case flow::EventKind::kData:
      case flow::EventKind::kClose: {
        emit(fwd, ev.bytes_up, ts_us);
        emit(rev, ev.bytes_down, ts_us + 100);
        if (ev.kind == flow::EventKind::kClose &&
            ev.tuple.proto == net::Protocol::kTcp) {
          PacketInfo fin = fwd;
          fin.payload_len = 0;
          fin.flags = TcpFlags{.syn = false, .ack = true, .fin = true, .rst = false};
          writer.Write(ts_us + 1000, SynthesizePacket(fin));
        }
        break;
      }
    }
  }
  return writer.buffer();
}

std::optional<IngestStats> IngestPcap(
    std::span<const std::byte> document,
    const std::function<bool(net::Ipv4Address)>& client_side,
    const std::function<void(const flow::TapEvent&)>& sink) {
  const auto packets = ReadPcap(document);
  if (!packets) return std::nullopt;

  IngestStats stats;
  for (const Packet& pkt : *packets) {
    ++stats.packets;
    const auto info = ParsePacket(pkt.data);
    if (!info) {
      ++stats.ignored;
      continue;
    }
    // Orient the tuple so the monitored client is the source.
    net::FiveTuple tuple = info->tuple;
    bool from_client = client_side(tuple.src_ip);
    if (!from_client && !client_side(tuple.dst_ip)) {
      ++stats.ignored;  // transit traffic: neither side is monitored
      continue;
    }
    if (!from_client) {
      std::swap(tuple.src_ip, tuple.dst_ip);
      std::swap(tuple.src_port, tuple.dst_port);
    }

    flow::TapEvent ev;
    ev.ts = pkt.ts_us / 1000000;
    ev.tuple = tuple;
    if (from_client) {
      ev.bytes_up = info->payload_len;
    } else {
      ev.bytes_down = info->payload_len;
    }
    if (info->tuple.proto == net::Protocol::kTcp && info->flags.syn &&
        !info->flags.ack) {
      ev.kind = flow::EventKind::kOpen;
    } else if (info->flags.fin || info->flags.rst) {
      ev.kind = flow::EventKind::kClose;
    } else {
      ev.kind = flow::EventKind::kData;
    }
    sink(ev);
    ++stats.events;
  }
  return stats;
}

}  // namespace lockdown::pcapio
