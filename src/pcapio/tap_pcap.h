// Bridging packets and the tap-event model.
//
// IngestPcap is the adoption path for real captures: parse a pcap, lift each
// IPv4 TCP/UDP packet into the tap-event stream (SYN -> open, FIN/RST ->
// close, everything else -> data), and feed the flow assembler. The inverse,
// SynthesizePcap, materializes tap events as real packet bytes — useful for
// tests, demos, and interoperating with external tooling; large data events
// are emitted as a run of MTU-sized packets, capped per event so exports
// stay bounded (the cap loses payload bytes, never packets' existence).
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "flow/event.h"
#include "pcapio/pcap.h"
#include "pcapio/packets.h"

namespace lockdown::pcapio {

struct SynthesizeOptions {
  std::size_t mtu_payload = 1448;      ///< payload bytes per emitted packet
  std::size_t max_packets_per_event = 16;  ///< cap for very large data events
};

/// Renders tap events as an in-memory pcap document. Direction is encoded
/// naturally: downstream bytes become server->client packets.
[[nodiscard]] std::vector<std::byte> SynthesizePcap(
    std::span<const flow::TapEvent> events, SynthesizeOptions options = {});

struct IngestStats {
  std::size_t packets = 0;
  std::size_t ignored = 0;  ///< non-IPv4 / non-TCP-UDP / malformed
  std::size_t events = 0;
};

/// Parses a pcap document and converts packets into tap events, delivered in
/// capture order. `client_side` decides which endpoint is the monitored
/// client (src of the 5-tuple): any address for which it returns true.
/// Returns nullopt if the document itself is not valid pcap.
[[nodiscard]] std::optional<IngestStats> IngestPcap(
    std::span<const std::byte> document,
    const std::function<bool(net::Ipv4Address)>& client_side,
    const std::function<void(const flow::TapEvent&)>& sink);

}  // namespace lockdown::pcapio
