// Classic libpcap file format (the .pcap files tcpdump writes): global
// header magic 0xa1b2c3d4, version 2.4, per-packet record headers. The
// reader accepts both byte orders; the writer emits native order with
// microsecond timestamps and LINKTYPE_ETHERNET.
//
// This is the on-ramp for running the pipeline over real captures: parse a
// pcap, lift packets into tap events (tap_pcap.h), and feed the assembler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace lockdown::pcapio {

inline constexpr std::uint32_t kPcapMagic = 0xA1B2C3D4;
inline constexpr std::uint32_t kPcapMagicSwapped = 0xD4C3B2A1;
inline constexpr std::uint32_t kLinkTypeEthernet = 1;

/// One captured packet: timestamp plus the captured bytes.
struct Packet {
  std::int64_t ts_us = 0;  ///< microseconds since the epoch
  std::vector<std::byte> data;
};

/// Serializes packets into an in-memory pcap document.
class PcapWriter {
 public:
  /// snaplen: maximum captured bytes per packet (longer packets are
  /// truncated with the original length preserved in the record header).
  explicit PcapWriter(std::uint32_t snaplen = 65535);

  void Write(std::int64_t ts_us, std::span<const std::byte> packet);

  /// The complete pcap document (header + records written so far).
  [[nodiscard]] const std::vector<std::byte>& buffer() const noexcept {
    return buffer_;
  }
  [[nodiscard]] std::size_t packets_written() const noexcept { return count_; }

 private:
  void Put32(std::uint32_t v);
  void Put16(std::uint16_t v);

  std::vector<std::byte> buffer_;
  std::uint32_t snaplen_;
  std::size_t count_ = 0;
};

/// Parses a pcap document. Returns nullopt if the magic/version is wrong or
/// a record is truncated. Packets keep their captured (possibly snapped)
/// bytes.
[[nodiscard]] std::optional<std::vector<Packet>> ReadPcap(
    std::span<const std::byte> document);

}  // namespace lockdown::pcapio
