#include "pcapio/packets.h"

#include <algorithm>
#include <cstring>

namespace lockdown::pcapio {

namespace {

void PutBe16(std::vector<std::byte>& out, std::uint16_t v) {
  out.push_back(static_cast<std::byte>(v >> 8));
  out.push_back(static_cast<std::byte>(v & 0xFF));
}

void PutBe32(std::vector<std::byte>& out, std::uint32_t v) {
  out.push_back(static_cast<std::byte>(v >> 24));
  out.push_back(static_cast<std::byte>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::byte>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::byte>(v & 0xFF));
}

void PutMac(std::vector<std::byte>& out, net::MacAddress mac) {
  for (int shift = 40; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::byte>((mac.value() >> shift) & 0xFF));
  }
}

std::uint16_t GetBe16(std::span<const std::byte> b, std::size_t off) {
  return static_cast<std::uint16_t>(
      (std::to_integer<std::uint16_t>(b[off]) << 8) |
      std::to_integer<std::uint16_t>(b[off + 1]));
}

std::uint32_t GetBe32(std::span<const std::byte> b, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v = (v << 8) | std::to_integer<std::uint32_t>(b[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

std::uint64_t GetMac(std::span<const std::byte> b, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 6; ++i) {
    v = (v << 8) | std::to_integer<std::uint64_t>(b[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace

std::uint16_t InternetChecksum(std::span<const std::byte> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += GetBe16(data, i);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(std::to_integer<std::uint16_t>(data[i]) << 8);
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::vector<std::byte> SynthesizePacket(const PacketInfo& info) {
  const bool tcp = info.tuple.proto == net::Protocol::kTcp;
  const std::size_t l4_len = tcp ? kTcpHeaderLen : kUdpHeaderLen;
  const std::uint16_t payload = std::min<std::uint32_t>(
      info.payload_len,
      static_cast<std::uint32_t>(65535 - kIpv4HeaderLen - l4_len));

  std::vector<std::byte> out;
  out.reserve(kEthernetHeaderLen + kIpv4HeaderLen + l4_len + payload);

  // Ethernet.
  PutMac(out, info.dst_mac);
  PutMac(out, info.src_mac);
  PutBe16(out, 0x0800);  // IPv4

  // IPv4 header (no options).
  const std::size_t ip_off = out.size();
  out.push_back(static_cast<std::byte>(0x45));  // version 4, IHL 5
  out.push_back(static_cast<std::byte>(0));     // DSCP/ECN
  PutBe16(out, static_cast<std::uint16_t>(kIpv4HeaderLen + l4_len + payload));
  PutBe16(out, 0);       // identification
  PutBe16(out, 0x4000);  // don't fragment
  out.push_back(static_cast<std::byte>(64));  // TTL
  out.push_back(static_cast<std::byte>(tcp ? 6 : 17));
  PutBe16(out, 0);  // checksum placeholder
  PutBe32(out, info.tuple.src_ip.value());
  PutBe32(out, info.tuple.dst_ip.value());
  const std::uint16_t checksum = InternetChecksum(
      std::span<const std::byte>(out.data() + ip_off, kIpv4HeaderLen));
  out[ip_off + 10] = static_cast<std::byte>(checksum >> 8);
  out[ip_off + 11] = static_cast<std::byte>(checksum & 0xFF);

  // Transport header.
  if (tcp) {
    PutBe16(out, info.tuple.src_port);
    PutBe16(out, info.tuple.dst_port);
    PutBe32(out, 0);  // seq
    PutBe32(out, 0);  // ack
    std::uint8_t flags = 0;
    if (info.flags.fin) flags |= 0x01;
    if (info.flags.syn) flags |= 0x02;
    if (info.flags.rst) flags |= 0x04;
    if (info.flags.ack) flags |= 0x10;
    out.push_back(static_cast<std::byte>(0x50));  // data offset 5
    out.push_back(static_cast<std::byte>(flags));
    PutBe16(out, 65535);  // window
    PutBe16(out, 0);      // checksum (not computed: no pseudo-header here)
    PutBe16(out, 0);      // urgent
  } else {
    PutBe16(out, info.tuple.src_port);
    PutBe16(out, info.tuple.dst_port);
    PutBe16(out, static_cast<std::uint16_t>(kUdpHeaderLen + payload));
    PutBe16(out, 0);  // checksum optional in IPv4
  }

  out.resize(out.size() + payload);  // zero payload
  return out;
}

std::optional<PacketInfo> ParsePacket(std::span<const std::byte> packet) {
  if (packet.size() < kEthernetHeaderLen + kIpv4HeaderLen) return std::nullopt;
  if (GetBe16(packet, 12) != 0x0800) return std::nullopt;  // not IPv4

  const std::size_t ip = kEthernetHeaderLen;
  const auto version_ihl = std::to_integer<std::uint8_t>(packet[ip]);
  if ((version_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(version_ihl & 0x0F) * 4;
  if (ihl < kIpv4HeaderLen || packet.size() < ip + ihl) return std::nullopt;
  if (InternetChecksum(packet.subspan(ip, ihl)) != 0) return std::nullopt;

  PacketInfo info;
  info.dst_mac = net::MacAddress(GetMac(packet, 0));
  info.src_mac = net::MacAddress(GetMac(packet, 6));
  const std::uint16_t total_len = GetBe16(packet, ip + 2);
  const auto proto = std::to_integer<std::uint8_t>(packet[ip + 9]);
  info.tuple.src_ip = net::Ipv4Address(GetBe32(packet, ip + 12));
  info.tuple.dst_ip = net::Ipv4Address(GetBe32(packet, ip + 16));

  const std::size_t l4 = ip + ihl;
  if (proto == 6) {
    if (packet.size() < l4 + kTcpHeaderLen) return std::nullopt;
    info.tuple.proto = net::Protocol::kTcp;
    info.tuple.src_port = GetBe16(packet, l4);
    info.tuple.dst_port = GetBe16(packet, l4 + 2);
    const std::size_t data_off =
        static_cast<std::size_t>(std::to_integer<std::uint8_t>(packet[l4 + 12]) >> 4) * 4;
    const auto flags = std::to_integer<std::uint8_t>(packet[l4 + 13]);
    info.flags.fin = flags & 0x01;
    info.flags.syn = flags & 0x02;
    info.flags.rst = flags & 0x04;
    info.flags.ack = flags & 0x10;
    if (total_len < ihl + data_off) return std::nullopt;
    info.payload_len = static_cast<std::uint16_t>(total_len - ihl - data_off);
  } else if (proto == 17) {
    if (packet.size() < l4 + kUdpHeaderLen) return std::nullopt;
    info.tuple.proto = net::Protocol::kUdp;
    info.tuple.src_port = GetBe16(packet, l4);
    info.tuple.dst_port = GetBe16(packet, l4 + 2);
    const std::uint16_t udp_len = GetBe16(packet, l4 + 4);
    if (udp_len < kUdpHeaderLen) return std::nullopt;
    info.payload_len = static_cast<std::uint16_t>(udp_len - kUdpHeaderLen);
  } else {
    return std::nullopt;
  }
  return info;
}

}  // namespace lockdown::pcapio
