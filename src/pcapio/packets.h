// Ethernet / IPv4 / TCP / UDP header synthesis and parsing.
//
// Enough of the wire format to round-trip the pipeline's unit of analysis —
// the 5-tuple plus payload size plus TCP SYN/FIN flags — through real packet
// bytes, with a correct IPv4 header checksum.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/endpoint.h"
#include "net/mac.h"

namespace lockdown::pcapio {

inline constexpr std::size_t kEthernetHeaderLen = 14;
inline constexpr std::size_t kIpv4HeaderLen = 20;
inline constexpr std::size_t kTcpHeaderLen = 20;
inline constexpr std::size_t kUdpHeaderLen = 8;

/// TCP flags relevant to connection tracking.
struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  bool rst = false;
};

/// What a synthesized/parsed packet carries.
struct PacketInfo {
  net::MacAddress src_mac;
  net::MacAddress dst_mac;
  net::FiveTuple tuple;
  std::uint16_t payload_len = 0;
  TcpFlags flags;  ///< meaningful for TCP only
};

/// Internet (one's-complement) checksum over a byte range.
[[nodiscard]] std::uint16_t InternetChecksum(std::span<const std::byte> data) noexcept;

/// Builds a full Ethernet+IPv4+TCP/UDP packet with `payload_len` zero bytes
/// of payload and a valid IPv4 header checksum. payload_len is clamped so
/// the IP total length fits in 16 bits.
[[nodiscard]] std::vector<std::byte> SynthesizePacket(const PacketInfo& info);

/// Parses a packet produced by SynthesizePacket (or any Ethernet+IPv4
/// TCP/UDP packet). Returns nullopt for non-IPv4 ethertypes, other IP
/// protocols, truncated headers, or an IPv4 checksum mismatch.
[[nodiscard]] std::optional<PacketInfo> ParsePacket(std::span<const std::byte> packet);

}  // namespace lockdown::pcapio
