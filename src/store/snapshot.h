// LDS snapshot store: persist a processed core::CollectionResult once, load
// it many times. See store/format.h for the on-disk layout.
//
//   store::SaveSnapshot("campus.lds", result, {.num_students = 1200, .seed = 2020});
//   ...
//   store::LoadedSnapshot snap = store::LoadSnapshot("campus.lds");
//   core::LockdownStudy study(snap.collection.dataset, catalog);
//
// Loading memory-maps the file and, on little-endian hosts, hands the fixed
// stride flow array to the Dataset zero-copy (the mapping stays alive inside
// the Dataset); variable-length sections (devices, string pool) are decoded
// portably. Every load validates magic, version, endianness, section bounds
// and per-section CRC32C checksums and throws store::Error with a precise
// message on truncation or corruption — never undefined behavior.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/pipeline.h"

namespace lockdown::store {

/// All store failures (I/O, truncation, corruption, format mismatch).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message)
      : std::runtime_error("lds: " + message) {}
};

/// Optional provenance recorded in the snapshot (0 = unknown): lets tools
/// and the bench cache detect which simulated campus a file came from.
struct SnapshotMeta {
  std::uint64_t num_students = 0;
  std::uint64_t seed = 0;
};

enum class LoadMode {
  kAuto,  ///< zero-copy when eligible, else portable copy
  kMmap,  ///< require the zero-copy fast path; Error if ineligible
  kCopy,  ///< force the portable field-by-field path
};

struct LoadOptions {
  LoadMode mode = LoadMode::kAuto;
  /// CRC32C-check every section before decoding. Leave on except when the
  /// file was verified out-of-band and load latency matters.
  bool verify_checksums = true;
  /// Per-section salvage: a corrupt *optional* section (currently kStats)
  /// degrades to zero-fill with a note in LoadedSnapshot::warnings instead
  /// of failing the load. Corrupt mandatory sections still throw Error,
  /// naming the section and its file offset.
  bool salvage = false;
};

/// How a snapshot should be written. Defaults produce the current format;
/// `format_version = 2` reproduces the previous layout byte-for-byte (the
/// differential suite reads figures off all three).
struct SaveOptions {
  /// 2 or 3. Version 2 is the fixed six-section layout; version 3 adds the
  /// day index and may compress.
  std::uint32_t format_version = 3;
  /// Store flows as dictionary/delta-varint coded columns instead of the
  /// raw (zero-copy eligible) record array. Requires format_version >= 3.
  bool compress = false;
};

struct SectionInfo {
  std::uint32_t kind = 0;
  std::string name;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;      ///< stored (on-disk) bytes
  std::uint32_t crc32c = 0;
  std::uint32_t codec = 0;     ///< store::SectionCodec as written in flags
  std::string codec_name;
  /// Decoded size: equals `size` for raw sections, the payload's recorded
  /// raw size for coded ones — so stored/raw is the compression ratio.
  std::uint64_t raw_size = 0;
};

struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint64_t file_size = 0;
  std::uint64_t num_flows = 0;
  std::uint64_t num_devices = 0;
  std::uint64_t num_domains = 0;
  std::uint32_t flow_stride = 0;
  SnapshotMeta meta;
  std::vector<SectionInfo> sections;
};

struct LoadedSnapshot {
  core::CollectionResult collection;
  SnapshotInfo info;
  /// True when collection.dataset.flows() views the file mapping.
  bool zero_copy = false;
  /// One entry per section salvaged under LoadOptions::salvage (e.g. a
  /// stats section that failed its CRC and was zero-filled). Empty on a
  /// fully clean load.
  std::vector<std::string> warnings;
};

class MmapFile;

/// Streaming snapshot writer. Sections are encoded and appended to a
/// temporary file in the target directory (the multi-megabyte flow section
/// in bounded chunks, never fully buffered); Commit() fsyncs and atomically
/// renames into place, so readers only ever observe complete snapshots.
class Writer {
 public:
  explicit Writer(std::filesystem::path path);
  ~Writer();  ///< unlinks the temporary file if not committed
  Writer(const Writer&) = delete;
  Writer& operator=(const Writer&) = delete;

  /// Encodes and writes all sections of `result`. The dataset must be
  /// finalized. Call once per Writer.
  void WriteCollection(const core::CollectionResult& result,
                       const SnapshotMeta& meta = {},
                       const SaveOptions& options = {});
  /// fsync + rename over the target path (+ directory fsync).
  void Commit();

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

/// Validating snapshot reader over a memory-mapped file. Construction
/// validates the header, trailer and section table (magic, version,
/// endianness, bounds, alignment, table CRC); Load()/VerifyChecksums()
/// additionally CRC-check section payloads.
class Reader {
 public:
  explicit Reader(std::filesystem::path path);
  ~Reader();
  Reader(const Reader&) = delete;
  Reader& operator=(const Reader&) = delete;

  [[nodiscard]] const SnapshotInfo& info() const noexcept;
  /// CRC32C-checks every section payload; throws Error on any mismatch.
  void VerifyChecksums() const;
  /// Full decode plus deep invariants (flow ordering, CSR agreement) that
  /// analyses silently depend on; throws Error on the first violation.
  void VerifyInvariants() const;
  /// Full decode into a CollectionResult. May be called multiple times.
  [[nodiscard]] LoadedSnapshot Load(const LoadOptions& options = {}) const;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

// --- One-shot conveniences ---------------------------------------------------

/// Collect -> disk: write `result` to `path` atomically.
void SaveSnapshot(const std::filesystem::path& path,
                  const core::CollectionResult& result,
                  const SnapshotMeta& meta = {},
                  const SaveOptions& options = {});

/// Disk -> analysis: validate and load a snapshot.
[[nodiscard]] LoadedSnapshot LoadSnapshot(const std::filesystem::path& path,
                                          const LoadOptions& options = {});

/// Header/section-table metadata only (no payload CRC pass, no decode).
[[nodiscard]] SnapshotInfo InspectSnapshot(const std::filesystem::path& path);

/// Full integrity check: structure, checksums, and a complete decode.
/// Throws Error describing the first problem found.
void VerifySnapshot(const std::filesystem::path& path);

/// Tmp files a crashed writer left next to `target` (the naming scheme is
/// `<target>.tmp.<pid>`): every sibling matching the scheme whose writing
/// process is no longer alive, sorted. Never lists a live writer's tmp.
[[nodiscard]] std::vector<std::filesystem::path> FindOrphanTmpFiles(
    const std::filesystem::path& target);

/// Removes the orphans FindOrphanTmpFiles reports; returns the paths
/// actually removed. Writer's constructor and the CLI's `snapshot save` run
/// this, so a crashed save cannot strand disk space past the next save.
std::vector<std::filesystem::path> SweepOrphanTmpFiles(
    const std::filesystem::path& target);

}  // namespace lockdown::store
