// Column codecs for LDS v3: the optional compressed flow representation
// (`snapshot save --compress`) and the day-run index section.
//
// Layouts (every payload begins with a u64 raw/decoded byte size, so tools
// report compression ratios without decoding):
//
//   kColTimestamps  raw | u64 count | zigzag-varint deltas of start_offset_s
//                   (small within a device's sorted run; the sign absorbs
//                   the reset at device boundaries)
//   kColDomains     raw | u64 count | u32 dict_size | dict entries (uvarint
//                   DomainIds, first-appearance order) | uvarint dict refs
//   kColRest        raw | u64 count | duration f32[] | uvarint device deltas
//                   (non-decreasing in finalize order) | server_ip u32[] |
//                   server_port u16[] | proto u8[] | uvarint bytes_up |
//                   uvarint bytes_down
//   kDayIndex       raw | u32 num_days | u64 num_runs | per-day uvarint run
//                   counts | per-run zigzag-varint begin delta + uvarint len
//
// Every decoder is bounds-checked through detail::Decoder and cross-checks
// its element count against the caller's expectation (the meta section), so
// a corrupt-but-CRC-valid payload throws store::Error — it never silently
// misreads. tests/store/codec_test.cc round-trips these on random inputs and
// byte-sweeps a compressed snapshot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dataset.h"
#include "store/codec.h"

namespace lockdown::store::detail {

[[nodiscard]] Encoder EncodeTimestampColumn(std::span<const core::Flow> flows);
[[nodiscard]] Encoder EncodeDomainColumn(std::span<const core::Flow> flows);
[[nodiscard]] Encoder EncodeRestColumn(std::span<const core::Flow> flows);
[[nodiscard]] Encoder EncodeDayIndex(const core::DayRunIndex& runs);

/// Reads the leading u64 raw-size field of a coded payload (0 when the
/// payload is too short even for that).
[[nodiscard]] std::uint64_t PeekRawSize(std::span<const std::byte> payload) noexcept;

[[nodiscard]] std::vector<std::uint32_t> DecodeTimestampColumn(
    std::span<const std::byte> payload, std::uint64_t expected_count);
[[nodiscard]] std::vector<std::uint32_t> DecodeDomainColumn(
    std::span<const std::byte> payload, std::uint64_t expected_count);

/// The non-timestamp, non-domain flow fields.
struct RestColumns {
  std::vector<float> duration;
  std::vector<std::uint32_t> device;
  std::vector<std::uint32_t> server_ip;
  std::vector<std::uint16_t> server_port;
  std::vector<std::uint8_t> proto;
  std::vector<std::uint64_t> bytes_up;
  std::vector<std::uint64_t> bytes_down;
};
[[nodiscard]] RestColumns DecodeRestColumn(std::span<const std::byte> payload,
                                           std::uint64_t expected_count);

[[nodiscard]] core::DayRunIndex DecodeDayIndex(std::span<const std::byte> payload,
                                               std::uint64_t num_flows);

}  // namespace lockdown::store::detail
