// Read-only memory mapping with RAII unmap; the substrate for the reader's
// zero-copy fast path. The mapping is shared_ptr-owned so a loaded Dataset
// can keep it alive past the Reader (core::Dataset::BorrowFlows).
#pragma once

#include <cstddef>
#include <filesystem>
#include <memory>
#include <span>

namespace lockdown::store {

class MmapFile {
 public:
  /// Maps `path` read-only. Throws store::Error on open/stat/map failure.
  [[nodiscard]] static std::shared_ptr<const MmapFile> Open(
      const std::filesystem::path& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return {static_cast<const std::byte*>(base_), size_};
  }

 private:
  MmapFile(void* base, std::size_t size) noexcept : base_(base), size_(size) {}
  void* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace lockdown::store
