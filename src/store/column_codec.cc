#include "store/column_codec.h"

#include <cstddef>
#include <limits>
#include <string>
#include <unordered_map>

#include "store/format.h"

namespace lockdown::store::detail {

namespace {

/// Decoded sizes the codecs advertise in their raw-size prefix: what the
/// equivalent raw section would occupy (per-flow field bytes; for the day
/// index, the begin/len arrays plus the CSR offsets).
constexpr std::uint64_t kTimestampRawBytes = 4;
constexpr std::uint64_t kDomainRawBytes = 4;
constexpr std::uint64_t kRestRawBytes = 31;  // 40B flow minus start/domain/pad

[[noreturn]] void Corrupt(const char* section, const std::string& what) {
  throw Error(std::string(section) + " section: " + what);
}

}  // namespace

Encoder EncodeTimestampColumn(std::span<const core::Flow> flows) {
  Encoder enc;
  enc.Reserve(16 + flows.size() * 2);
  enc.U64(flows.size() * kTimestampRawBytes);
  enc.U64(flows.size());
  std::int64_t prev = 0;
  for (const core::Flow& f : flows) {
    const auto ts = static_cast<std::int64_t>(f.start_offset_s);
    enc.Svarint(ts - prev);
    prev = ts;
  }
  return enc;
}

std::vector<std::uint32_t> DecodeTimestampColumn(
    std::span<const std::byte> payload, std::uint64_t expected_count) {
  Decoder dec(payload, "col-timestamps");
  const std::uint64_t raw = dec.U64();
  const std::uint64_t count = dec.U64();
  if (count != expected_count || raw != count * kTimestampRawBytes) {
    Corrupt("col-timestamps", "count disagrees with meta section");
  }
  std::vector<std::uint32_t> out(count);
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t ts = prev + dec.Svarint();
    if (ts < 0 || ts > std::numeric_limits<std::uint32_t>::max()) {
      Corrupt("col-timestamps", "timestamp out of u32 range");
    }
    out[i] = static_cast<std::uint32_t>(ts);
    prev = ts;
  }
  dec.ExpectDone();
  return out;
}

Encoder EncodeDomainColumn(std::span<const core::Flow> flows) {
  // First-appearance dictionary: campus traffic concentrates on a few
  // thousand domains, so refs are short varints.
  std::unordered_map<core::DomainId, std::uint32_t> index;
  std::vector<core::DomainId> dict;
  std::vector<std::uint32_t> refs;
  refs.reserve(flows.size());
  for (const core::Flow& f : flows) {
    const auto [it, inserted] =
        index.emplace(f.domain, static_cast<std::uint32_t>(dict.size()));
    if (inserted) dict.push_back(f.domain);
    refs.push_back(it->second);
  }
  Encoder enc;
  enc.Reserve(24 + dict.size() * 3 + refs.size() * 2);
  enc.U64(flows.size() * kDomainRawBytes);
  enc.U64(flows.size());
  enc.U32(static_cast<std::uint32_t>(dict.size()));
  for (const core::DomainId id : dict) enc.Uvarint(id);
  for (const std::uint32_t r : refs) enc.Uvarint(r);
  return enc;
}

std::vector<std::uint32_t> DecodeDomainColumn(
    std::span<const std::byte> payload, std::uint64_t expected_count) {
  Decoder dec(payload, "col-domains");
  const std::uint64_t raw = dec.U64();
  const std::uint64_t count = dec.U64();
  if (count != expected_count || raw != count * kDomainRawBytes) {
    Corrupt("col-domains", "count disagrees with meta section");
  }
  const std::uint32_t dict_size = dec.U32();
  if (count > 0 && dict_size == 0) {
    Corrupt("col-domains", "empty dictionary with nonzero flow count");
  }
  if (dict_size > count) {
    Corrupt("col-domains", "dictionary larger than the flow count");
  }
  std::vector<std::uint32_t> dict(dict_size);
  for (std::uint32_t i = 0; i < dict_size; ++i) {
    const std::uint64_t id = dec.Uvarint();
    if (id > std::numeric_limits<std::uint32_t>::max()) {
      Corrupt("col-domains", "dictionary entry out of u32 range");
    }
    dict[i] = static_cast<std::uint32_t>(id);
  }
  std::vector<std::uint32_t> out(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t ref = dec.Uvarint();
    if (ref >= dict_size) Corrupt("col-domains", "dictionary ref out of range");
    out[i] = dict[ref];
  }
  dec.ExpectDone();
  return out;
}

Encoder EncodeRestColumn(std::span<const core::Flow> flows) {
  Encoder enc;
  enc.Reserve(16 + flows.size() * 16);
  enc.U64(flows.size() * kRestRawBytes);
  enc.U64(flows.size());
  for (const core::Flow& f : flows) enc.F32(f.duration_s);
  std::uint64_t prev_device = 0;
  for (const core::Flow& f : flows) {
    // Non-decreasing in Finalize() order, so plain (unsigned) deltas.
    enc.Uvarint(f.device - prev_device);
    prev_device = f.device;
  }
  for (const core::Flow& f : flows) enc.U32(f.server_ip.value());
  for (const core::Flow& f : flows) enc.U16(f.server_port);
  for (const core::Flow& f : flows) enc.U8(f.proto);
  for (const core::Flow& f : flows) enc.Uvarint(f.bytes_up);
  for (const core::Flow& f : flows) enc.Uvarint(f.bytes_down);
  return enc;
}

RestColumns DecodeRestColumn(std::span<const std::byte> payload,
                             std::uint64_t expected_count) {
  Decoder dec(payload, "col-rest");
  const std::uint64_t raw = dec.U64();
  const std::uint64_t count = dec.U64();
  if (count != expected_count || raw != count * kRestRawBytes) {
    Corrupt("col-rest", "count disagrees with meta section");
  }
  RestColumns out;
  out.duration.resize(count);
  out.device.resize(count);
  out.server_ip.resize(count);
  out.server_port.resize(count);
  out.proto.resize(count);
  out.bytes_up.resize(count);
  out.bytes_down.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) out.duration[i] = dec.F32();
  std::uint64_t device = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    device += dec.Uvarint();
    if (device > std::numeric_limits<std::uint32_t>::max()) {
      Corrupt("col-rest", "device index out of u32 range");
    }
    out.device[i] = static_cast<std::uint32_t>(device);
  }
  for (std::uint64_t i = 0; i < count; ++i) out.server_ip[i] = dec.U32();
  for (std::uint64_t i = 0; i < count; ++i) out.server_port[i] = dec.U16();
  for (std::uint64_t i = 0; i < count; ++i) out.proto[i] = dec.U8();
  for (std::uint64_t i = 0; i < count; ++i) out.bytes_up[i] = dec.Uvarint();
  for (std::uint64_t i = 0; i < count; ++i) out.bytes_down[i] = dec.Uvarint();
  dec.ExpectDone();
  return out;
}

Encoder EncodeDayIndex(const core::DayRunIndex& runs) {
  Encoder enc;
  enc.Reserve(32 + runs.num_runs() * 4);
  const auto num_days = static_cast<std::uint64_t>(runs.num_days());
  enc.U64((num_days + 1) * 8 + runs.num_runs() * 16);
  enc.U32(static_cast<std::uint32_t>(num_days));
  enc.U64(runs.num_runs());
  for (std::uint64_t d = 0; d < num_days; ++d) {
    enc.Uvarint(runs.day_offsets[d + 1] - runs.day_offsets[d]);
  }
  std::int64_t prev_begin = 0;
  for (std::size_t r = 0; r < runs.num_runs(); ++r) {
    const auto begin = static_cast<std::int64_t>(runs.run_begin[r]);
    enc.Svarint(begin - prev_begin);
    prev_begin = begin;
    enc.Uvarint(runs.run_len[r]);
  }
  return enc;
}

core::DayRunIndex DecodeDayIndex(std::span<const std::byte> payload,
                                 std::uint64_t num_flows) {
  Decoder dec(payload, "day-index");
  const std::uint64_t raw = dec.U64();
  const std::uint64_t num_days = dec.U32();
  const std::uint64_t num_runs = dec.U64();
  if (raw != (num_days + 1) * 8 + num_runs * 16) {
    Corrupt("day-index", "raw size disagrees with day/run counts");
  }
  if (num_runs > num_flows) {
    Corrupt("day-index", "more runs than flows");
  }
  core::DayRunIndex runs;
  runs.day_offsets.resize(num_days + 1);
  runs.day_offsets[0] = 0;
  for (std::uint64_t d = 0; d < num_days; ++d) {
    const std::uint64_t count = dec.Uvarint();
    if (count > num_runs - runs.day_offsets[d]) {
      Corrupt("day-index", "per-day run counts exceed the run total");
    }
    runs.day_offsets[d + 1] = runs.day_offsets[d] + count;
  }
  if (runs.day_offsets.back() != num_runs) {
    Corrupt("day-index", "per-day run counts disagree with the run total");
  }
  runs.run_begin.resize(num_runs);
  runs.run_len.resize(num_runs);
  std::int64_t prev_begin = 0;
  for (std::uint64_t r = 0; r < num_runs; ++r) {
    const std::int64_t begin = prev_begin + dec.Svarint();
    if (begin < 0 || static_cast<std::uint64_t>(begin) > num_flows) {
      Corrupt("day-index", "run begin out of range");
    }
    runs.run_begin[r] = static_cast<std::uint64_t>(begin);
    prev_begin = begin;
    const std::uint64_t len = dec.Uvarint();
    if (len == 0 || len > num_flows - static_cast<std::uint64_t>(begin)) {
      Corrupt("day-index", "run length out of range");
    }
    runs.run_len[r] = len;
  }
  dec.ExpectDone();
  return runs;
}

std::uint64_t PeekRawSize(std::span<const std::byte> payload) noexcept {
  if (payload.size() < 8) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(payload[static_cast<std::size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace lockdown::store::detail
