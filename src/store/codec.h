// Bounds-checked little-endian encode/decode helpers for the LDS metadata
// sections. Bulk payloads (the flow array, the CSR index) take memcpy fast
// paths on little-endian hosts in reader.cc/writer.cc; everything else goes
// through these so the format is host-endianness-independent.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "store/snapshot.h"

namespace lockdown::store::detail {

class Encoder {
 public:
  void U8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void U16(std::uint16_t v) { Le(v, 2); }
  void U32(std::uint32_t v) { Le(v, 4); }
  void U64(std::uint64_t v) { Le(v, 8); }
  void F32(float v) { U32(std::bit_cast<std::uint32_t>(v)); }
  void Bytes(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void Str(std::string_view s) {
    Bytes(std::as_bytes(std::span<const char>(s.data(), s.size())));
  }
  /// LEB128 unsigned varint (1..10 bytes).
  void Uvarint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::byte>((v & 0x7F) | 0x80));
      v >>= 7;
    }
    buf_.push_back(static_cast<std::byte>(v));
  }
  /// Zigzag-mapped signed varint (small magnitudes of either sign stay
  /// short; the delta codecs use this for timestamp/run-begin deltas).
  void Svarint(std::int64_t v) {
    Uvarint((static_cast<std::uint64_t>(v) << 1) ^
            static_cast<std::uint64_t>(v >> 63));
  }

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  void Reserve(std::size_t n) { buf_.reserve(n); }

 private:
  void Le(std::uint64_t v, int width) {
    for (int i = 0; i < width; ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
    }
  }
  std::vector<std::byte> buf_;
};

/// Cursor over a section's bytes; every read is bounds-checked and overruns
/// throw store::Error naming the section.
class Decoder {
 public:
  Decoder(std::span<const std::byte> data, const char* section) noexcept
      : data_(data), section_(section) {}

  [[nodiscard]] std::uint8_t U8() { return static_cast<std::uint8_t>(Take(1)[0]); }
  [[nodiscard]] std::uint16_t U16() { return static_cast<std::uint16_t>(Le(2)); }
  [[nodiscard]] std::uint32_t U32() { return static_cast<std::uint32_t>(Le(4)); }
  [[nodiscard]] std::uint64_t U64() { return Le(8); }
  [[nodiscard]] float F32() { return std::bit_cast<float>(U32()); }
  [[nodiscard]] std::span<const std::byte> Bytes(std::size_t n) { return Take(n); }
  /// LEB128 unsigned varint; throws on truncation and on non-canonical
  /// encodings that overflow 64 bits or run past 10 bytes.
  [[nodiscard]] std::uint64_t Uvarint() {
    std::uint64_t v = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      const auto b = static_cast<std::uint8_t>(Take(1)[0]);
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        // The 10th byte has room for only one payload bit.
        if (shift == 63 && b > 1) break;
        return v;
      }
    }
    throw Error(std::string("overlong varint in ") + section_ + " section");
  }
  [[nodiscard]] std::int64_t Svarint() {
    const std::uint64_t z = Uvarint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }
  [[nodiscard]] std::string_view Str(std::size_t n) {
    const auto b = Take(n);
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  void ExpectDone() const {
    if (pos_ != data_.size()) {
      throw Error(std::string("trailing bytes in ") + section_ + " section");
    }
  }

 private:
  std::span<const std::byte> Take(std::size_t n) {
    if (n > remaining()) {
      throw Error(std::string("truncated ") + section_ + " section");
    }
    const auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  std::uint64_t Le(int width) {
    const auto b = Take(static_cast<std::size_t>(width));
    std::uint64_t v = 0;
    for (int i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(b[static_cast<std::size_t>(i)]) << (8 * i);
    }
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  const char* section_;
};

}  // namespace lockdown::store::detail
