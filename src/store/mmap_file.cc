#include "store/mmap_file.h"

#include <sys/mman.h>

#include <cerrno>

#include "io/io.h"
#include "store/snapshot.h"

namespace lockdown::store {

std::shared_ptr<const MmapFile> MmapFile::Open(const std::filesystem::path& path) {
  try {
    io::File file = io::File::OpenRead(path);
    const auto size = static_cast<std::size_t>(file.Size());
    if (size == 0) throw Error(path.string() + ": empty file");

    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, file.fd(), 0);
    if (base == MAP_FAILED) throw io::IoError(path, "mmap", errno);
    try {
      file.Close();  // the mapping holds its own reference
    } catch (...) {
      ::munmap(base, size);
      throw;
    }
    return std::shared_ptr<const MmapFile>(new MmapFile(base, size));
  } catch (const io::IoError& e) {
    // Reader-side failures stay store::Error: callers (and the CLI's
    // tolerant analyze fallback) classify them as corrupt-snapshot, not IO.
    throw Error(e.what());
  }
}

MmapFile::~MmapFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

}  // namespace lockdown::store
