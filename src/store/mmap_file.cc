#include "store/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>

#include "store/snapshot.h"
#include "util/strings.h"

namespace lockdown::store {

namespace {

[[noreturn]] void ThrowErrno(const std::filesystem::path& path, const char* op) {
  throw Error(path.string() + ": " + op + ": " + util::ErrnoString(errno));
}

}  // namespace

std::shared_ptr<const MmapFile> MmapFile::Open(const std::filesystem::path& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) ThrowErrno(path, "open");

  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    ThrowErrno(path, "fstat");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw Error(path.string() + ": empty file");
  }

  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (base == MAP_FAILED) ThrowErrno(path, "mmap");

  return std::shared_ptr<const MmapFile>(new MmapFile(base, size));
}

MmapFile::~MmapFile() {
  if (base_ != nullptr) ::munmap(base_, size_);
}

}  // namespace lockdown::store
