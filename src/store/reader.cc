#include <array>
#include <bit>
#include <chrono>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "store/codec.h"
#include "store/column_codec.h"
#include "store/format.h"
#include "store/mmap_file.h"
#include "store/snapshot.h"
#include "util/crc32c.h"

namespace lockdown::store {

namespace {

constexpr bool kHostIsLittleEndian = std::endian::native == std::endian::little;

struct ParsedSection {
  std::uint64_t offset = 0;
  std::uint32_t crc32c = 0;
  std::span<const std::byte> payload;
};

// CRC with its cost recorded per call; checksum time is the dominant
// non-mmap cost of opening a snapshot, so it gets its own histogram.
std::uint32_t TimedCrc32c(std::span<const std::byte> bytes) {
  if (!obs::MetricsEnabled()) return util::Crc32c(bytes);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint32_t crc = util::Crc32c(bytes);
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  static obs::Histogram& crc_us =
      obs::GetHistogram("store/crc_us", obs::Buckets::kDurationUs, "us");
  crc_us.Observe(static_cast<std::uint64_t>(us));
  return crc;
}

}  // namespace

class Reader::Impl {
 public:
  explicit Impl(std::filesystem::path path) : path_(std::move(path)) {
    OBS_SPAN("store/open");
    map_ = MmapFile::Open(path_);
    if (obs::MetricsEnabled()) {
      obs::GetCounter("store/bytes_read", "bytes").Add(map_->bytes().size());
    }
    ParseStructure();
  }

  [[nodiscard]] const SnapshotInfo& info() const noexcept { return info_; }

  [[nodiscard]] bool SectionChecksumOk(std::size_t i) const {
    const ParsedSection& s = sections_[i];
    return TimedCrc32c(s.payload) == s.crc32c;
  }

  [[nodiscard]] std::string ChecksumMessage(std::size_t i) const {
    return "checksum mismatch in " + std::string(SectionName(KindAt(i))) +
           " section at offset " + std::to_string(sections_[i].offset) +
           " (corrupt file)";
  }

  void VerifyChecksums() const {
    OBS_SPAN("store/verify_checksums");
    for (std::size_t i = 0; i < sections_.size(); ++i) {
      if (!SectionChecksumOk(i)) Fail(ChecksumMessage(i));
    }
  }

  [[nodiscard]] LoadedSnapshot Load(const LoadOptions& options) const {
    OBS_SPAN("store/load");
    LoadedSnapshot out;
    // Mandatory sections fail the load on corruption, naming the section
    // and offset; the stats section is advisory and may be salvaged
    // (zero-filled), and the day index is derivable and may be salvaged by
    // rebuilding it from the flows — so months of flow data survive one bad
    // section.
    bool stats_salvaged = false;
    bool day_index_salvaged = false;
    if (options.verify_checksums) {
      for (std::size_t i = 0; i < sections_.size(); ++i) {
        if (SectionChecksumOk(i)) continue;
        if (options.salvage && KindAt(i) == SectionKind::kStats) {
          stats_salvaged = true;
          out.warnings.push_back(ChecksumMessage(i) + ": stats zero-filled");
          continue;
        }
        if (options.salvage && KindAt(i) == SectionKind::kDayIndex) {
          day_index_salvaged = true;
          out.warnings.push_back(ChecksumMessage(i) +
                                 ": day index rebuilt from flows");
          continue;
        }
        Fail(ChecksumMessage(i));
      }
    }

    out.info = info_;
    core::Dataset& ds = out.collection.dataset;

    // --- String pool ---------------------------------------------------------
    const std::vector<std::string_view> strings = DecodeStringPool();
    for (std::size_t i = 1; i < info_.num_domains; ++i) {
      const core::DomainId id = ds.InternDomain(strings[i]);
      if (id != i) Fail("duplicate domain in string pool");
    }

    // --- Devices -------------------------------------------------------------
    detail::Decoder dev(Section(SectionKind::kDevices), "devices");
    for (std::uint64_t i = 0; i < info_.num_devices; ++i) {
      const core::DeviceIndex idx = ds.AddDevice(privacy::DeviceId{dev.U64()});
      classify::DeviceObservations& obs = ds.device_mutable(idx).observations;
      obs.oui = dev.U32();
      const std::uint8_t flags = dev.U8();
      if (flags > 1) Fail("corrupt device flags");
      obs.locally_administered = flags != 0;
      obs.total_bytes = dev.U64();
      obs.flow_count = dev.U64();
      const std::uint32_t num_uas = dev.U32();
      obs.user_agents.reserve(num_uas);
      for (std::uint32_t u = 0; u < num_uas; ++u) {
        obs.user_agents.emplace_back(StringAt(strings, dev.U32()));
      }
      const std::uint32_t num_domains = dev.U32();
      obs.bytes_by_domain.reserve(num_domains);
      for (std::uint32_t d = 0; d < num_domains; ++d) {
        const std::string_view domain = StringAt(strings, dev.U32());
        obs.bytes_by_domain[std::string(domain)] = dev.U64();
      }
    }
    dev.ExpectDone();

    // --- Flows ---------------------------------------------------------------
    if (HasSection(SectionKind::kFlows)) {
      const std::span<const std::byte> flow_bytes = Section(SectionKind::kFlows);
      const bool zero_copy_eligible = kHostIsLittleEndian;
      if (options.mode == LoadMode::kMmap && !zero_copy_eligible) {
        Fail("zero-copy load unavailable on a big-endian host");
      }
      if (options.mode != LoadMode::kCopy && zero_copy_eligible) {
        const std::span<const core::Flow> flows{
            reinterpret_cast<const core::Flow*>(flow_bytes.data()),
            static_cast<std::size_t>(info_.num_flows)};
        ds.BorrowFlows(flows, map_);
        out.zero_copy = true;
        if (lockdown::obs::MetricsEnabled()) {
          lockdown::obs::GetCounter("store/load_zero_copy", "loads").Increment();
        }
      } else {
        detail::Decoder dec(flow_bytes, "flows");
        for (std::uint64_t i = 0; i < info_.num_flows; ++i) {
          core::Flow f;
          f.start_offset_s = dec.U32();
          f.duration_s = dec.F32();
          f.device = dec.U32();
          f.domain = dec.U32();
          f.server_ip = net::Ipv4Address(dec.U32());
          f.server_port = dec.U16();
          f.proto = dec.U8();
          (void)dec.U8();  // padding byte
          f.bytes_up = dec.U64();
          f.bytes_down = dec.U64();
          ds.AddFlow(f);
        }
        dec.ExpectDone();
        if (lockdown::obs::MetricsEnabled()) {
          lockdown::obs::GetCounter("store/load_copy", "loads").Increment();
        }
      }
    } else {
      // Columnar (compressed) flow storage: always decoded into an owned
      // array; the varint streams cannot back a zero-copy view.
      if (options.mode == LoadMode::kMmap) {
        Fail("zero-copy load unavailable: flows are stored compressed");
      }
      const std::vector<std::uint32_t> ts = detail::DecodeTimestampColumn(
          Section(SectionKind::kColTimestamps), info_.num_flows);
      const std::vector<std::uint32_t> dom = detail::DecodeDomainColumn(
          Section(SectionKind::kColDomains), info_.num_flows);
      const detail::RestColumns rest = detail::DecodeRestColumn(
          Section(SectionKind::kColRest), info_.num_flows);
      for (std::uint64_t i = 0; i < info_.num_flows; ++i) {
        core::Flow f;
        f.start_offset_s = ts[i];
        f.duration_s = rest.duration[i];
        f.device = rest.device[i];
        f.domain = dom[i];
        f.server_ip = net::Ipv4Address(rest.server_ip[i]);
        f.server_port = rest.server_port[i];
        f.proto = rest.proto[i];
        f.bytes_up = rest.bytes_up[i];
        f.bytes_down = rest.bytes_down[i];
        ds.AddFlow(f);
      }
      if (lockdown::obs::MetricsEnabled()) {
        lockdown::obs::GetCounter("store/load_columnar", "loads").Increment();
      }
    }

    // Per-flow references must be in range and the array must be in
    // Finalize() order before any analysis indexes by them — a CRC-valid but
    // ill-formed file must fail here, not as UB (or a silently wrong figure)
    // in a consumer. The query kernels binary-search timestamps per device,
    // so the sort order is part of the format contract.
    const std::span<const core::Flow> loaded = ds.flows();
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      const core::Flow& f = loaded[i];
      if (f.device >= info_.num_devices) Fail("flow references invalid device");
      if (f.domain >= info_.num_domains) Fail("flow references invalid domain");
      if (i > 0) {
        const core::Flow& p = loaded[i - 1];
        if (p.device > f.device ||
            (p.device == f.device && p.start_offset_s > f.start_offset_s)) {
          Fail("flows not in finalize order");
        }
      }
    }

    // --- CSR device index ----------------------------------------------------
    const std::span<const std::byte> csr = Section(SectionKind::kDeviceOffsets);
    std::vector<std::uint64_t> offsets(info_.num_devices + 1);
    if constexpr (kHostIsLittleEndian) {
      std::memcpy(offsets.data(), csr.data(), csr.size());
    } else {
      detail::Decoder dec(csr, "device-offsets");
      for (std::uint64_t& v : offsets) v = dec.U64();
    }
    try {
      ds.RestoreDeviceIndex(std::move(offsets));
    } catch (const std::invalid_argument&) {
      Fail("inconsistent device index section");
    }

    // --- Day-run index -------------------------------------------------------
    // v3 files persist it; pre-v3 files (and salvaged v3 loads) rebuild it
    // from the flow order, which is always possible — the section is an
    // accelerator, never the only source of truth.
    if (HasSection(SectionKind::kDayIndex) && !day_index_salvaged) {
      try {
        ds.RestoreDayRuns(detail::DecodeDayIndex(
            Section(SectionKind::kDayIndex), info_.num_flows));
      } catch (const std::exception& e) {
        if (!options.salvage) {
          Fail(std::string("corrupt day-index section: ") + e.what());
        }
        out.warnings.push_back(path_.string() +
                               ": undecodable day index: rebuilt from flows");
        ds.RebuildDayRuns();
      }
    } else {
      ds.RebuildDayRuns();
    }

    // --- Stats ---------------------------------------------------------------
    // Decode errors here are salvageable like a bad checksum: the stats are
    // reporting counters, not data the analyses index into.
    if (!stats_salvaged) {
      try {
        detail::Decoder stats(Section(SectionKind::kStats), "stats");
        core::CollectionStats& st = out.collection.stats;
        st.raw_flows = stats.U64();
        st.tap_excluded = stats.U64();
        st.unattributed = stats.U64();
        st.visitor_flows = stats.U64();
        st.devices_observed = stats.U64();
        st.devices_retained = stats.U64();
        st.ua_sightings = stats.U64();
        if (info_.version >= 2) {
          st.ua_unattributed = stats.U64();
          st.ua_visitor_dropped = stats.U64();
        }
        stats.ExpectDone();
      } catch (const Error&) {
        if (!options.salvage) throw;
        out.collection.stats = core::CollectionStats{};
        out.warnings.push_back(path_.string() +
                               ": undecodable stats section: zero-filled");
      }
    }

    return out;
  }

  /// Deep invariant check beyond checksums: flow ordering and CSR agreement.
  void VerifyInvariants() const {
    const LoadedSnapshot snap = Load({LoadMode::kAuto, false});
    const core::Dataset& ds = snap.collection.dataset;
    const auto flows = ds.flows();
    for (std::size_t i = 1; i < flows.size(); ++i) {
      const bool ordered =
          flows[i - 1].device < flows[i].device ||
          (flows[i - 1].device == flows[i].device &&
           flows[i - 1].start_offset_s <= flows[i].start_offset_s);
      if (!ordered) Fail("flows not in finalize order");
    }
    const auto offsets = ds.device_offsets();
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const core::DeviceIndex d = flows[i].device;
      if (i < offsets[d] || i >= offsets[d + 1]) {
        Fail("device index disagrees with flow ordering");
      }
    }
    // Full interior check of every day run (RestoreDayRuns only spot-checks
    // each run's endpoints; a run spanning a device boundary could hide a
    // day dip in its interior).
    const core::DayRunIndex& runs = ds.day_runs();
    std::uint64_t covered = 0;
    for (int d = 0; d < runs.num_days(); ++d) {
      bool bad = false;
      runs.ForEachRun(d, d, [&](std::uint64_t begin, std::uint64_t len) {
        for (std::uint64_t k = begin; k < begin + len; ++k) {
          if (core::Dataset::DayOf(flows[static_cast<std::size_t>(k)]) != d) {
            bad = true;
          }
        }
        covered += len;
      });
      if (bad) Fail("day index interior disagrees with flows");
    }
    if (covered != flows.size()) Fail("day index does not cover the flow array");
  }

 private:
  [[noreturn]] void Fail(const std::string& message) const {
    throw Error(path_.string() + ": " + message);
  }

  [[nodiscard]] SectionKind KindAt(std::size_t i) const noexcept {
    return static_cast<SectionKind>(info_.sections[i].kind);
  }

  [[nodiscard]] bool HasSection(SectionKind kind) const noexcept {
    return kind_slot_[static_cast<std::size_t>(kind) - 1] >= 0;
  }

  [[nodiscard]] std::span<const std::byte> Section(SectionKind kind) const {
    const int slot = kind_slot_[static_cast<std::size_t>(kind) - 1];
    if (slot < 0) Fail(std::string(SectionName(kind)) + " section missing");
    return sections_[static_cast<std::size_t>(slot)].payload;
  }

  [[nodiscard]] std::string_view StringAt(
      const std::vector<std::string_view>& strings, std::uint32_t ref) const {
    if (ref >= strings.size()) Fail("string reference out of range");
    return strings[ref];
  }

  [[nodiscard]] std::vector<std::string_view> DecodeStringPool() const {
    const std::span<const std::byte> payload = Section(SectionKind::kStringPool);
    detail::Decoder dec(payload, "string-pool");
    const std::uint32_t num_strings = dec.U32();
    const std::uint32_t num_domains = dec.U32();
    if (num_domains != info_.num_domains || num_domains > num_strings ||
        num_domains == 0) {
      Fail("string pool domain count mismatch");
    }
    if (dec.remaining() < (static_cast<std::uint64_t>(num_strings) + 1) * 8) {
      Fail("truncated string-pool section");
    }
    std::vector<std::uint64_t> offsets(static_cast<std::size_t>(num_strings) + 1);
    for (std::uint64_t& v : offsets) v = dec.U64();
    const std::uint64_t blob_size = dec.remaining();
    if (offsets.front() != 0 || offsets.back() != blob_size ||
        !std::is_sorted(offsets.begin(), offsets.end())) {
      Fail("corrupt string pool offsets");
    }
    const std::string_view blob = dec.Str(static_cast<std::size_t>(blob_size));
    std::vector<std::string_view> strings(num_strings);
    for (std::uint32_t i = 0; i < num_strings; ++i) {
      strings[i] = blob.substr(static_cast<std::size_t>(offsets[i]),
                               static_cast<std::size_t>(offsets[i + 1] - offsets[i]));
    }
    if (!strings.empty() && !strings[0].empty()) {
      Fail("string pool entry 0 must be the empty domain");
    }
    return strings;
  }

  /// The codec each section kind is allowed to carry. v1/v2 writers put 0
  /// in flags, so raw-everywhere is always acceptable.
  [[nodiscard]] static bool CodecAllowed(SectionKind kind, SectionCodec codec) {
    if (codec == SectionCodec::kRaw) {
      return kind != SectionKind::kDayIndex &&
             kind != SectionKind::kColTimestamps &&
             kind != SectionKind::kColDomains && kind != SectionKind::kColRest;
    }
    switch (kind) {
      case SectionKind::kDayIndex:
      case SectionKind::kColTimestamps:
        return codec == SectionCodec::kDeltaVarint;
      case SectionKind::kColDomains:
        return codec == SectionCodec::kDictionary;
      case SectionKind::kColRest:
        return codec == SectionCodec::kPacked;
      default:
        return false;
    }
  }

  void ParseStructure() {
    const std::span<const std::byte> file = map_->bytes();
    info_.file_size = file.size();
    if (file.size() < kHeaderSize + kSectionDescSize + kTrailerSize) {
      Fail("file too small to be an LDS snapshot (" +
           std::to_string(file.size()) + " bytes)");
    }

    detail::Decoder hdr(file.subspan(0, kHeaderSize), "header");
    for (const char expected : kMagic) {
      if (static_cast<char>(hdr.U8()) != expected) {
        Fail("bad magic (not an LDS snapshot)");
      }
    }
    if (hdr.U32() != kEndianMarker) Fail("endianness marker mismatch");
    info_.version = hdr.U32();
    if (info_.version < kMinReadVersion || info_.version > kFormatVersion) {
      Fail("unsupported format version " + std::to_string(info_.version) +
           " (this build reads versions " + std::to_string(kMinReadVersion) +
           ".." + std::to_string(kFormatVersion) + ")");
    }
    if (hdr.U32() != kHeaderSize) Fail("bad header size");
    // v1/v2 files have exactly the six classic sections; from v3 on the
    // header's count is authoritative (bounded by the known kinds, each at
    // most once).
    const std::uint32_t section_count = hdr.U32();
    if (info_.version < 3 ? section_count != kNumSectionsV2
                          : (section_count < 1 || section_count > kMaxSections)) {
      Fail("unexpected section count " + std::to_string(section_count));
    }
    const std::uint64_t recorded_size = hdr.U64();
    if (recorded_size != file.size()) {
      Fail("file size mismatch (header says " + std::to_string(recorded_size) +
           ", file has " + std::to_string(file.size()) + " bytes — truncated?)");
    }
    const std::uint64_t table_offset = hdr.U64();
    if (table_offset != kHeaderSize) Fail("bad section table offset");

    const std::uint64_t table_end =
        kHeaderSize + static_cast<std::uint64_t>(section_count) * kSectionDescSize;
    if (file.size() < table_end + kTrailerSize) {
      Fail("file too small for its section table");
    }
    const std::uint64_t trailer_offset = file.size() - kTrailerSize;

    detail::Decoder trailer(file.subspan(trailer_offset, kTrailerSize), "trailer");
    for (const char expected : kTrailerMagic) {
      if (static_cast<char>(trailer.U8()) != expected) {
        Fail("bad trailer magic (truncated or corrupt file)");
      }
    }
    const std::uint32_t table_crc = trailer.U32();
    if (table_crc != util::Crc32c(file.subspan(0, table_end))) {
      Fail("header/section table checksum mismatch");
    }

    detail::Decoder table(file.subspan(kHeaderSize, table_end - kHeaderSize),
                          "section table");
    kind_slot_.fill(-1);
    const std::uint32_t max_kind =
        info_.version < 3 ? kNumSectionsV2 : kMaxSectionKind;
    for (std::uint32_t i = 0; i < section_count; ++i) {
      const std::uint32_t kind = table.U32();
      const std::uint32_t flags = table.U32();
      const std::uint64_t offset = table.U64();
      const std::uint64_t size = table.U64();
      const std::uint32_t crc = table.U32();
      (void)table.U32();  // reserved
      if (kind < 1 || kind > max_kind) {
        Fail("unknown section kind " + std::to_string(kind));
      }
      const auto k = static_cast<SectionKind>(kind);
      if (kind_slot_[kind - 1] >= 0) {
        Fail("duplicate " + std::string(SectionName(k)) + " section");
      }
      if (offset % kSectionAlign != 0) Fail("misaligned section");
      if (offset < table_end || size > trailer_offset ||
          offset > trailer_offset - size) {
        Fail("section out of bounds");
      }
      if (flags > static_cast<std::uint32_t>(SectionCodec::kPacked) ||
          !CodecAllowed(k, static_cast<SectionCodec>(flags))) {
        Fail("unsupported codec " + std::to_string(flags) + " for " +
             std::string(SectionName(k)) + " section");
      }
      const auto codec = static_cast<SectionCodec>(flags);
      const std::span<const std::byte> payload =
          file.subspan(static_cast<std::size_t>(offset),
                       static_cast<std::size_t>(size));
      kind_slot_[kind - 1] = static_cast<int>(sections_.size());
      sections_.push_back(ParsedSection{offset, crc, payload});
      info_.sections.push_back(SectionInfo{
          kind, SectionName(k), offset, size, crc, flags, CodecName(codec),
          codec == SectionCodec::kRaw ? size : detail::PeekRawSize(payload)});
    }

    // --- Required sections ---------------------------------------------------
    for (const SectionKind k :
         {SectionKind::kMeta, SectionKind::kDeviceOffsets,
          SectionKind::kStringPool, SectionKind::kDevices, SectionKind::kStats}) {
      if (!HasSection(k)) {
        Fail("missing " + std::string(SectionName(k)) + " section");
      }
    }
    const bool has_flows = HasSection(SectionKind::kFlows);
    const bool has_columns = HasSection(SectionKind::kColTimestamps) ||
                             HasSection(SectionKind::kColDomains) ||
                             HasSection(SectionKind::kColRest);
    if (has_flows == has_columns) {
      Fail(has_flows ? "both raw and columnar flow sections present"
                     : "no flow storage (neither raw nor columnar sections)");
    }
    if (has_columns && (!HasSection(SectionKind::kColTimestamps) ||
                        !HasSection(SectionKind::kColDomains) ||
                        !HasSection(SectionKind::kColRest))) {
      Fail("incomplete columnar flow storage");
    }
    if (info_.version >= 3 && !HasSection(SectionKind::kDayIndex)) {
      Fail("missing day-index section");
    }

    // --- Meta + cross-section size consistency -------------------------------
    const std::span<const std::byte> meta = Section(SectionKind::kMeta);
    if (meta.size() != kMetaSectionSize) Fail("bad meta section size");
    detail::Decoder m(meta, "meta");
    info_.num_flows = m.U64();
    info_.num_devices = m.U64();
    info_.num_domains = m.U64();
    info_.flow_stride = m.U32();
    (void)m.U32();
    info_.meta.num_students = m.U64();
    info_.meta.seed = m.U64();
    if (info_.flow_stride != kFlowStride) {
      Fail("incompatible flow stride " + std::to_string(info_.flow_stride) +
           " (this build uses " + std::to_string(kFlowStride) + ")");
    }
    if (has_flows &&
        Section(SectionKind::kFlows).size() != info_.num_flows * kFlowStride) {
      Fail("flows section size disagrees with flow count");
    }
    if (Section(SectionKind::kDeviceOffsets).size() !=
        (info_.num_devices + 1) * sizeof(std::uint64_t)) {
      Fail("device-offsets section size disagrees with device count");
    }
    const std::size_t want_stats =
        info_.version >= 2 ? kStatsSectionSize : kStatsSectionSizeV1;
    if (Section(SectionKind::kStats).size() != want_stats) {
      Fail("bad stats section size");
    }
  }

  std::filesystem::path path_;
  std::shared_ptr<const MmapFile> map_;
  SnapshotInfo info_;
  std::vector<ParsedSection> sections_;  ///< in section-table order
  std::array<int, kMaxSectionKind> kind_slot_{};  ///< kind-1 -> sections_ slot
};

Reader::Reader(std::filesystem::path path)
    : impl_(std::make_unique<Impl>(std::move(path))) {}
Reader::~Reader() = default;

const SnapshotInfo& Reader::info() const noexcept { return impl_->info(); }
void Reader::VerifyChecksums() const { impl_->VerifyChecksums(); }
LoadedSnapshot Reader::Load(const LoadOptions& options) const {
  return impl_->Load(options);
}

LoadedSnapshot LoadSnapshot(const std::filesystem::path& path,
                            const LoadOptions& options) {
  return Reader(path).Load(options);
}

SnapshotInfo InspectSnapshot(const std::filesystem::path& path) {
  return Reader(path).info();
}

void Reader::VerifyInvariants() const { impl_->VerifyInvariants(); }

void VerifySnapshot(const std::filesystem::path& path) {
  const Reader reader(path);
  reader.VerifyChecksums();
  reader.VerifyInvariants();
}

}  // namespace lockdown::store
