// LDS ("Lockdown Dataset Snapshot") on-disk format, version 3.
//
// The write-once/analyze-many layer: the processed dataset the paper keeps
// after discarding raw data (§3), serialized so every downstream analysis
// starts in milliseconds instead of a full campus re-simulation. The file is
// columnar and sectioned:
//
//   [FileHeader 64B] [SectionDesc x N] [pad] [section]... [pad] [FileTrailer 16B]
//
// All integers are little-endian. Every section begins at a 64-byte-aligned
// offset and carries a CRC32C in its descriptor; the trailer carries a
// CRC32C over the header + section table. Version-1 and version-2 files
// contain exactly the six section kinds below, each once:
//
//   kMeta          fixed 48B: counts, flow stride, provenance (students/seed)
//   kFlows         num_flows x 40B fixed-stride core::Flow records, in
//                  Dataset::Finalize() order — the mmap zero-copy target
//   kDeviceOffsets CSR index, (num_devices+1) x u64
//   kStringPool    interned strings; the first num_domains entries are the
//                  dataset's domain pool in DomainId order (entry 0 = "")
//   kDevices       variable-length device records (see reader/writer)
//   kStats         core::CollectionStats, 9 x u64 (7 x u64 in version 1;
//                  the reader zero-fills the UA-accounting fields there)
//
// Version 3 makes the section set variable (the header's section count is
// authoritative) and adds the columnar query layout:
//
//   kDayIndex      per-day section groups: for every study day, the list of
//                  contiguous [begin, end) runs of the flow array whose
//                  flows start on that day (flows are (device, start)-sorted,
//                  so every (device, day) pair is one run). Figure queries
//                  with a time range walk only these runs instead of the
//                  whole flow array. Delta-varint coded.
//   kColTimestamps start_offset_s column, zigzag delta-varint coded
//                  (deltas are small within a device run; the sign absorbs
//                  the reset at device boundaries).
//   kColDomains    domain column, dictionary coded (first-appearance
//                  dictionary of distinct DomainIds + per-flow varint ref).
//   kColRest       the remaining flow fields as packed plain columns:
//                  duration f32 | device delta-varint | server_ip u32 |
//                  server_port u16 | proto u8 | bytes_up varint |
//                  bytes_down varint.
//
// A v3 file stores flows either as kFlows (raw, zero-copy eligible) or as
// the three kCol* sections (`snapshot save --compress`; decoded into an
// owned array on load), never both. Every non-raw section's payload begins
// with a u64 raw (decoded) byte size, and its descriptor's flags word
// carries the codec id, so `snapshot info` can report per-section
// compression ratios without decoding.
//
// The flow record layout is frozen against core::Flow below; any change to
// that struct is a format break and must bump kFormatVersion.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/dataset.h"
#include "core/pipeline.h"

namespace lockdown::store {

inline constexpr std::array<char, 8> kMagic = {'L', 'D', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr std::array<char, 8> kTrailerMagic = {'L', 'D', 'S', 'F', 'I', 'N', 'I', '1'};
// Version 2 widened kStats from 7 to 9 u64 fields (ua_unattributed,
// ua_visitor_dropped). Version 3 made the section count variable, added the
// kDayIndex section group and the optional columnar flow sections
// (kColTimestamps/kColDomains/kColRest), and started recording codec ids in
// the descriptor flags. Version-1 and version-2 files remain readable.
inline constexpr std::uint32_t kFormatVersion = 3;
inline constexpr std::uint32_t kMinReadVersion = 1;
/// Written as a u32; reads back as something else on a mixed-endian copy.
inline constexpr std::uint32_t kEndianMarker = 0x0A0B0C0Du;
inline constexpr std::uint64_t kSectionAlign = 64;

inline constexpr std::size_t kHeaderSize = 64;
inline constexpr std::size_t kSectionDescSize = 32;
inline constexpr std::size_t kTrailerSize = 16;
inline constexpr std::size_t kMetaSectionSize = 48;
inline constexpr std::size_t kStatsSectionSize = 9 * sizeof(std::uint64_t);
inline constexpr std::size_t kStatsSectionSizeV1 = 7 * sizeof(std::uint64_t);

enum class SectionKind : std::uint32_t {
  kMeta = 1,
  kFlows = 2,
  kDeviceOffsets = 3,
  kStringPool = 4,
  kDevices = 5,
  kStats = 6,
  // Version 3:
  kDayIndex = 7,       ///< per-day [begin, len) flow runs, delta-varint
  kColTimestamps = 8,  ///< start_offset_s column, zigzag delta-varint
  kColDomains = 9,     ///< domain column, dictionary + varint refs
  kColRest = 10,       ///< remaining flow fields, packed columns
};
/// The fixed section count of version 1/2 files (also the mandatory core of
/// every version-3 file, minus kFlows when the flow columns replace it).
inline constexpr int kNumSectionsV2 = 6;
/// Highest section kind this build understands.
inline constexpr std::uint32_t kMaxSectionKind = 10;
/// Upper bound on the section count a v3 header may claim (all distinct
/// kinds at most once).
inline constexpr std::uint32_t kMaxSections = kMaxSectionKind;

/// Per-section codec, recorded in the descriptor's flags word. Every coded
/// (non-raw) payload begins with a u64 raw (decoded) size so tools can
/// report compression ratios without decoding.
enum class SectionCodec : std::uint32_t {
  kRaw = 0,
  kDeltaVarint = 1,  ///< zigzag delta-varint streams (timestamps, day index)
  kDictionary = 2,   ///< first-appearance dictionary + varint refs (domains)
  kPacked = 3,       ///< per-field packed columns, varint where it pays
};

[[nodiscard]] constexpr const char* SectionName(SectionKind kind) noexcept {
  switch (kind) {
    case SectionKind::kMeta: return "meta";
    case SectionKind::kFlows: return "flows";
    case SectionKind::kDeviceOffsets: return "device-offsets";
    case SectionKind::kStringPool: return "string-pool";
    case SectionKind::kDevices: return "devices";
    case SectionKind::kStats: return "stats";
    case SectionKind::kDayIndex: return "day-index";
    case SectionKind::kColTimestamps: return "col-timestamps";
    case SectionKind::kColDomains: return "col-domains";
    case SectionKind::kColRest: return "col-rest";
  }
  return "unknown";
}

[[nodiscard]] constexpr const char* CodecName(SectionCodec codec) noexcept {
  switch (codec) {
    case SectionCodec::kRaw: return "raw";
    case SectionCodec::kDeltaVarint: return "delta-varint";
    case SectionCodec::kDictionary: return "dictionary";
    case SectionCodec::kPacked: return "packed";
  }
  return "unknown";
}

// --- Frozen core::Flow layout (the zero-copy contract) -----------------------
// The kFlows section stores exactly this layout with the padding byte at
// offset 23 written as zero; an mmap'd section can be reinterpreted as a
// core::Flow array on little-endian hosts.
inline constexpr std::size_t kFlowStride = 40;

static_assert(std::is_trivially_copyable_v<core::Flow>);
static_assert(std::is_standard_layout_v<core::Flow>);
static_assert(sizeof(core::Flow) == kFlowStride);
static_assert(alignof(core::Flow) == 8);
static_assert(offsetof(core::Flow, start_offset_s) == 0);
static_assert(offsetof(core::Flow, duration_s) == 4);
static_assert(offsetof(core::Flow, device) == 8);
static_assert(offsetof(core::Flow, domain) == 12);
static_assert(offsetof(core::Flow, server_ip) == 16);
static_assert(offsetof(core::Flow, server_port) == 20);
static_assert(offsetof(core::Flow, proto) == 22);
static_assert(offsetof(core::Flow, bytes_up) == 24);
static_assert(offsetof(core::Flow, bytes_down) == 32);

// kStats serializes CollectionStats field-by-field; catch new fields here.
static_assert(sizeof(core::CollectionStats) == kStatsSectionSize,
              "CollectionStats changed: extend the kStats codec and bump "
              "kFormatVersion");
static_assert(kStatsSectionSize > kStatsSectionSizeV1,
              "new CollectionStats fields must be appended so version-1 "
              "files stay a prefix of the version-2 stats section");

/// Aligns a file offset up to the section alignment.
[[nodiscard]] constexpr std::uint64_t AlignUp(std::uint64_t offset) noexcept {
  return (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

}  // namespace lockdown::store
