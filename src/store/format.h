// LDS ("Lockdown Dataset Snapshot") on-disk format, version 2.
//
// The write-once/analyze-many layer: the processed dataset the paper keeps
// after discarding raw data (§3), serialized so every downstream analysis
// starts in milliseconds instead of a full campus re-simulation. The file is
// columnar and sectioned:
//
//   [FileHeader 64B] [SectionDesc x N] [pad] [section]... [pad] [FileTrailer 16B]
//
// All integers are little-endian. Every section begins at a 64-byte-aligned
// offset and carries a CRC32C in its descriptor; the trailer carries a
// CRC32C over the header + section table. Version-1 files contain exactly
// the six section kinds below, each once:
//
//   kMeta          fixed 48B: counts, flow stride, provenance (students/seed)
//   kFlows         num_flows x 40B fixed-stride core::Flow records, in
//                  Dataset::Finalize() order — the mmap zero-copy target
//   kDeviceOffsets CSR index, (num_devices+1) x u64
//   kStringPool    interned strings; the first num_domains entries are the
//                  dataset's domain pool in DomainId order (entry 0 = "")
//   kDevices       variable-length device records (see reader/writer)
//   kStats         core::CollectionStats, 9 x u64 (7 x u64 in version 1;
//                  the reader zero-fills the UA-accounting fields there)
//
// The flow record layout is frozen against core::Flow below; any change to
// that struct is a format break and must bump kFormatVersion.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

#include "core/dataset.h"
#include "core/pipeline.h"

namespace lockdown::store {

inline constexpr std::array<char, 8> kMagic = {'L', 'D', 'S', 'N', 'A', 'P', '0', '1'};
inline constexpr std::array<char, 8> kTrailerMagic = {'L', 'D', 'S', 'F', 'I', 'N', 'I', '1'};
// Version 2 widened kStats from 7 to 9 u64 fields (ua_unattributed,
// ua_visitor_dropped); everything else is unchanged and version-1 files
// remain readable.
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::uint32_t kMinReadVersion = 1;
/// Written as a u32; reads back as something else on a mixed-endian copy.
inline constexpr std::uint32_t kEndianMarker = 0x0A0B0C0Du;
inline constexpr std::uint64_t kSectionAlign = 64;

inline constexpr std::size_t kHeaderSize = 64;
inline constexpr std::size_t kSectionDescSize = 32;
inline constexpr std::size_t kTrailerSize = 16;
inline constexpr std::size_t kMetaSectionSize = 48;
inline constexpr std::size_t kStatsSectionSize = 9 * sizeof(std::uint64_t);
inline constexpr std::size_t kStatsSectionSizeV1 = 7 * sizeof(std::uint64_t);

enum class SectionKind : std::uint32_t {
  kMeta = 1,
  kFlows = 2,
  kDeviceOffsets = 3,
  kStringPool = 4,
  kDevices = 5,
  kStats = 6,
};
inline constexpr int kNumSections = 6;

[[nodiscard]] constexpr const char* SectionName(SectionKind kind) noexcept {
  switch (kind) {
    case SectionKind::kMeta: return "meta";
    case SectionKind::kFlows: return "flows";
    case SectionKind::kDeviceOffsets: return "device-offsets";
    case SectionKind::kStringPool: return "string-pool";
    case SectionKind::kDevices: return "devices";
    case SectionKind::kStats: return "stats";
  }
  return "unknown";
}

// --- Frozen core::Flow layout (the zero-copy contract) -----------------------
// The kFlows section stores exactly this layout with the padding byte at
// offset 23 written as zero; an mmap'd section can be reinterpreted as a
// core::Flow array on little-endian hosts.
inline constexpr std::size_t kFlowStride = 40;

static_assert(std::is_trivially_copyable_v<core::Flow>);
static_assert(std::is_standard_layout_v<core::Flow>);
static_assert(sizeof(core::Flow) == kFlowStride);
static_assert(alignof(core::Flow) == 8);
static_assert(offsetof(core::Flow, start_offset_s) == 0);
static_assert(offsetof(core::Flow, duration_s) == 4);
static_assert(offsetof(core::Flow, device) == 8);
static_assert(offsetof(core::Flow, domain) == 12);
static_assert(offsetof(core::Flow, server_ip) == 16);
static_assert(offsetof(core::Flow, server_port) == 20);
static_assert(offsetof(core::Flow, proto) == 22);
static_assert(offsetof(core::Flow, bytes_up) == 24);
static_assert(offsetof(core::Flow, bytes_down) == 32);

// kStats serializes CollectionStats field-by-field; catch new fields here.
static_assert(sizeof(core::CollectionStats) == kStatsSectionSize,
              "CollectionStats changed: extend the kStats codec and bump "
              "kFormatVersion");
static_assert(kStatsSectionSize > kStatsSectionSizeV1,
              "new CollectionStats fields must be appended so version-1 "
              "files stay a prefix of the version-2 stats section");

/// Aligns a file offset up to the section alignment.
[[nodiscard]] constexpr std::uint64_t AlignUp(std::uint64_t offset) noexcept {
  return (offset + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

}  // namespace lockdown::store
