#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <string_view>
#include <system_error>
#include <unordered_map>
#include <utility>
#include <vector>

#include "io/io.h"
#include "obs/obs.h"
#include "store/codec.h"
#include "store/column_codec.h"
#include "store/format.h"
#include "store/snapshot.h"
#include "util/crc32c.h"

namespace lockdown::store {

namespace {

constexpr std::size_t kFlowsPerChunk = 16384;  // 640 KiB encode buffer

// Accumulates checksum time across a save; one histogram observation per
// WriteCollection, not per chunk, so the sample means "CRC cost of a save".
class CrcTimer {
 public:
  CrcTimer() : on_(obs::MetricsEnabled()) {}

  std::uint32_t Crc(std::span<const std::byte> bytes,
                    util::Crc32cAccumulator* acc = nullptr) {
    if (!on_) {
      if (acc != nullptr) {
        acc->Update(bytes);
        return acc->value();
      }
      return util::Crc32c(bytes);
    }
    const auto t0 = std::chrono::steady_clock::now();
    std::uint32_t crc;
    if (acc != nullptr) {
      acc->Update(bytes);
      crc = acc->value();
    } else {
      crc = util::Crc32c(bytes);
    }
    total_ns_ += std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    return crc;
  }

  void Record() const {
    if (!on_) return;
    static obs::Histogram& crc_us =
        obs::GetHistogram("store/crc_us", obs::Buckets::kDurationUs, "us");
    crc_us.Observe(static_cast<std::uint64_t>(total_ns_ / 1000));
  }

 private:
  bool on_;
  std::int64_t total_ns_ = 0;
};

void EncodeFlow(detail::Encoder& enc, const core::Flow& f) {
  enc.U32(f.start_offset_s);
  enc.F32(f.duration_s);
  enc.U32(f.device);
  enc.U32(f.domain);
  enc.U32(f.server_ip.value());
  enc.U16(f.server_port);
  enc.U8(f.proto);
  enc.U8(0);  // the struct's padding byte, pinned to zero on disk
  enc.U64(f.bytes_up);
  enc.U64(f.bytes_down);
}

/// String pool under construction: dataset domains first (in DomainId
/// order), then any extra strings the device records reference.
class PoolBuilder {
 public:
  explicit PoolBuilder(std::span<const std::string> domains) {
    strings_.reserve(domains.size());
    for (const std::string& d : domains) {
      index_.emplace(d, static_cast<std::uint32_t>(strings_.size()));
      strings_.push_back(d);
    }
  }

  [[nodiscard]] std::uint32_t Ref(std::string_view s) {
    const auto it = index_.find(s);
    if (it != index_.end()) return it->second;
    const auto ref = static_cast<std::uint32_t>(strings_.size());
    strings_.emplace_back(s);
    // Key views the stored string, which lives as long as the builder.
    index_.emplace(strings_.back(), ref);
    return ref;
  }

  [[nodiscard]] detail::Encoder Encode(std::size_t num_domains) const {
    detail::Encoder enc;
    enc.U32(static_cast<std::uint32_t>(strings_.size()));
    enc.U32(static_cast<std::uint32_t>(num_domains));
    std::uint64_t offset = 0;
    enc.U64(offset);
    for (const std::string& s : strings_) {
      offset += s.size();
      enc.U64(offset);
    }
    for (const std::string& s : strings_) enc.Str(s);
    return enc;
  }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string_view, std::uint32_t> index_;
};

detail::Encoder EncodeDevices(const core::Dataset& ds, PoolBuilder& pool) {
  detail::Encoder enc;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> by_domain;
  for (core::DeviceIndex i = 0; i < ds.num_devices(); ++i) {
    const core::DeviceEntry& dev = ds.device(i);
    const classify::DeviceObservations& obs = dev.observations;
    enc.U64(dev.id.value);
    enc.U32(obs.oui);
    enc.U8(obs.locally_administered ? 1 : 0);
    enc.U64(obs.total_bytes);
    enc.U64(obs.flow_count);
    enc.U32(static_cast<std::uint32_t>(obs.user_agents.size()));
    for (const std::string& ua : obs.user_agents) enc.U32(pool.Ref(ua));
    // Sorted by pool ref so identical datasets serialize identically no
    // matter what order the unordered_map happens to iterate in.
    by_domain.clear();
    // lockdown-lint: allow(LD002) collected then sorted before encoding
    for (const auto& [domain, bytes] : obs.bytes_by_domain) {
      by_domain.emplace_back(pool.Ref(domain), bytes);
    }
    std::sort(by_domain.begin(), by_domain.end());
    enc.U32(static_cast<std::uint32_t>(by_domain.size()));
    for (const auto& [ref, bytes] : by_domain) {
      enc.U32(ref);
      enc.U64(bytes);
    }
  }
  return enc;
}

detail::Encoder EncodeMeta(const core::Dataset& ds, const SnapshotMeta& meta) {
  detail::Encoder enc;
  enc.U64(ds.num_flows());
  enc.U64(ds.num_devices());
  enc.U64(ds.num_domains());
  enc.U32(kFlowStride);
  enc.U32(0);
  enc.U64(meta.num_students);
  enc.U64(meta.seed);
  return enc;
}

detail::Encoder EncodeStats(const core::CollectionStats& stats) {
  detail::Encoder enc;
  enc.U64(stats.raw_flows);
  enc.U64(stats.tap_excluded);
  enc.U64(stats.unattributed);
  enc.U64(stats.visitor_flows);
  enc.U64(stats.devices_observed);
  enc.U64(stats.devices_retained);
  enc.U64(stats.ua_sightings);
  enc.U64(stats.ua_unattributed);
  enc.U64(stats.ua_visitor_dropped);
  return enc;
}

detail::Encoder EncodeDeviceOffsets(std::span<const std::uint64_t> offsets) {
  detail::Encoder enc;
  enc.Reserve(offsets.size() * sizeof(std::uint64_t));
  if constexpr (std::endian::native == std::endian::little) {
    enc.Bytes(std::as_bytes(offsets));
  } else {
    for (const std::uint64_t v : offsets) enc.U64(v);
  }
  return enc;
}

}  // namespace

class Writer::Impl {
 public:
  explicit Impl(std::filesystem::path path)
      : target_(std::move(path)),
        tmp_(target_.string() + ".tmp." + std::to_string(::getpid())) {
    // A crashed predecessor may have left its tmp file behind; reclaim the
    // space before laying down ours (the sweep never touches a live
    // writer's tmp — see FindOrphanTmpFiles).
    SweepOrphanTmpFiles(target_);
    file_ = io::File::Create(tmp_);
  }

  ~Impl() {
    if (!committed_) {
      file_ = io::File();  // close (best-effort) before unlinking
      io::TryRemove(tmp_);
    }
  }

  void WriteCollection(const core::CollectionResult& result,
                       const SnapshotMeta& meta, const SaveOptions& options) {
    if (written_) throw Error("WriteCollection called twice");
    if (options.format_version < 2 || options.format_version > kFormatVersion) {
      throw Error("unsupported save format version " +
                  std::to_string(options.format_version));
    }
    if (options.compress && options.format_version < 3) {
      throw Error("compressed snapshots require format version 3");
    }
    const core::Dataset& ds = result.dataset;
    if (!ds.finalized()) throw Error("cannot snapshot a non-finalized dataset");
    const bool v3 = options.format_version >= 3;
    if (v3 && !ds.has_day_runs()) {
      throw Error("dataset has no day-run index (Finalize was bypassed)");
    }
    written_ = true;
    OBS_SPAN("store/save");
    CrcTimer crc_timer;

    // Variable-length sections are encoded up front so every section size —
    // and with it the header and section table — is known before the first
    // byte hits the file; the (uncompressed) flow section streams afterwards
    // in chunks.
    PoolBuilder pool(ds.domains());
    const detail::Encoder devices = EncodeDevices(ds, pool);
    const detail::Encoder pool_enc = pool.Encode(ds.num_domains());
    const detail::Encoder meta_enc = EncodeMeta(ds, meta);
    const detail::Encoder stats_enc = EncodeStats(result.stats);
    const detail::Encoder csr = EncodeDeviceOffsets(ds.device_offsets());
    const auto flows = ds.flows();
    const std::uint64_t flows_size = ds.num_flows() * kFlowStride;

    struct Section {
      SectionKind kind;
      SectionCodec codec;
      std::uint64_t size;
      std::uint64_t offset = 0;
      std::uint32_t crc = 0;
      const detail::Encoder* body = nullptr;  // null for the streamed flows
    };
    // Version-2 files contain exactly the first six kinds in this order;
    // version 3 appends the day index and, when compressing, swaps the raw
    // flow array for the three column sections.
    std::vector<Section> sections;
    sections.push_back(
        {SectionKind::kMeta, SectionCodec::kRaw, meta_enc.size(), 0, 0, &meta_enc});
    if (!options.compress) {
      sections.push_back(
          {SectionKind::kFlows, SectionCodec::kRaw, flows_size, 0, 0, nullptr});
    }
    sections.push_back({SectionKind::kDeviceOffsets, SectionCodec::kRaw,
                        csr.size(), 0, 0, &csr});
    sections.push_back({SectionKind::kStringPool, SectionCodec::kRaw,
                        pool_enc.size(), 0, 0, &pool_enc});
    sections.push_back({SectionKind::kDevices, SectionCodec::kRaw,
                        devices.size(), 0, 0, &devices});
    sections.push_back({SectionKind::kStats, SectionCodec::kRaw,
                        stats_enc.size(), 0, 0, &stats_enc});
    detail::Encoder day_index;
    detail::Encoder col_ts;
    detail::Encoder col_dom;
    detail::Encoder col_rest;
    if (v3) {
      day_index = detail::EncodeDayIndex(ds.day_runs());
      sections.push_back({SectionKind::kDayIndex, SectionCodec::kDeltaVarint,
                          day_index.size(), 0, 0, &day_index});
    }
    if (options.compress) {
      col_ts = detail::EncodeTimestampColumn(flows);
      col_dom = detail::EncodeDomainColumn(flows);
      col_rest = detail::EncodeRestColumn(flows);
      sections.push_back({SectionKind::kColTimestamps,
                          SectionCodec::kDeltaVarint, col_ts.size(), 0, 0,
                          &col_ts});
      sections.push_back({SectionKind::kColDomains, SectionCodec::kDictionary,
                          col_dom.size(), 0, 0, &col_dom});
      sections.push_back({SectionKind::kColRest, SectionCodec::kPacked,
                          col_rest.size(), 0, 0, &col_rest});
    }

    std::uint64_t cursor =
        AlignUp(kHeaderSize + sections.size() * kSectionDescSize);
    for (Section& s : sections) {
      s.offset = cursor;
      cursor = AlignUp(s.offset + s.size);
    }
    const std::uint64_t trailer_offset = cursor;
    const std::uint64_t file_size = trailer_offset + kTrailerSize;

    for (Section& s : sections) {
      if (s.body != nullptr) s.crc = crc_timer.Crc(s.body->bytes());
    }

    // The raw flow section is not buffered: the file is sized up front
    // (holes read back as the zero padding the format wants), flows stream
    // through a bounded chunk while accumulating their CRC, and the header +
    // table go in last, once every section CRC is known.
    io::CrashPoint("store.writer.pre_write");
    file_.Truncate(file_size);

    Section* flow_section = nullptr;
    for (Section& s : sections) {
      if (s.kind == SectionKind::kFlows) flow_section = &s;
    }
    if (flow_section != nullptr) {
      util::Crc32cAccumulator flow_crc;
      for (std::size_t begin = 0; begin < flows.size(); begin += kFlowsPerChunk) {
        const std::size_t end = std::min(begin + kFlowsPerChunk, flows.size());
        detail::Encoder chunk;
        chunk.Reserve((end - begin) * kFlowStride);
        for (std::size_t i = begin; i < end; ++i) EncodeFlow(chunk, flows[i]);
        crc_timer.Crc(chunk.bytes(), &flow_crc);
        file_.PWriteAll(chunk.bytes(),
                        flow_section->offset +
                            static_cast<std::uint64_t>(begin) * kFlowStride);
      }
      flow_section->crc = flow_crc.value();
    }
    io::CrashPoint("store.writer.mid_write");

    detail::Encoder table;
    for (const char c : kMagic) table.U8(static_cast<std::uint8_t>(c));
    table.U32(kEndianMarker);
    table.U32(options.format_version);
    table.U32(kHeaderSize);
    table.U32(static_cast<std::uint32_t>(sections.size()));
    table.U64(file_size);
    table.U64(kHeaderSize);  // section table offset
    for (int i = 0; i < 24; ++i) table.U8(0);
    for (const Section& s : sections) {
      table.U32(static_cast<std::uint32_t>(s.kind));
      table.U32(static_cast<std::uint32_t>(s.codec));  // flags
      table.U64(s.offset);
      table.U64(s.size);
      table.U32(s.crc);
      table.U32(0);  // reserved
    }
    file_.PWriteAll(table.bytes(), 0);
    for (const Section& s : sections) {
      if (s.body != nullptr) file_.PWriteAll(s.body->bytes(), s.offset);
    }

    detail::Encoder trailer;
    for (const char c : kTrailerMagic) trailer.U8(static_cast<std::uint8_t>(c));
    trailer.U32(crc_timer.Crc(table.bytes()));
    trailer.U32(0);
    file_.PWriteAll(trailer.bytes(), trailer_offset);

    crc_timer.Record();
    if (obs::MetricsEnabled()) {
      obs::GetCounter("store/bytes_written", "bytes").Add(file_size);
      obs::GetHistogram("store/snapshot_bytes", obs::Buckets::kSizeBytes,
                        "bytes")
          .Observe(file_size);
    }
  }

  void Commit() {
    if (!written_) throw Error("Commit before WriteCollection");
    if (committed_) throw Error("Commit called twice");
    io::CrashPoint("store.writer.pre_fsync");
    file_.Fsync();
    file_.Close();
    io::CrashPoint("store.writer.pre_rename");
    io::Rename(tmp_, target_);
    committed_ = true;
    io::CrashPoint("store.writer.post_rename");
    // Durability of the rename itself: fsync the containing directory.
    // Checked — an unsynced rename can vanish on power loss; only the
    // cannot-sync-a-directory carve-out (EINVAL/ENOTSUP, handled inside
    // FsyncDir) is tolerated.
    std::filesystem::path dir = target_.parent_path();
    if (dir.empty()) dir = ".";
    io::FsyncDir(dir);
  }

 private:
  std::filesystem::path target_;
  std::filesystem::path tmp_;
  io::File file_;
  bool written_ = false;
  bool committed_ = false;
};

Writer::Writer(std::filesystem::path path)
    : impl_(std::make_unique<Impl>(std::move(path))) {}
Writer::~Writer() = default;

void Writer::WriteCollection(const core::CollectionResult& result,
                             const SnapshotMeta& meta,
                             const SaveOptions& options) {
  impl_->WriteCollection(result, meta, options);
}

void Writer::Commit() { impl_->Commit(); }

namespace {

/// kill(pid, 0) probes existence without signalling; EPERM still means the
/// process exists (it just isn't ours).
bool PidAlive(pid_t pid) noexcept { return ::kill(pid, 0) == 0 || errno == EPERM; }

}  // namespace

std::vector<std::filesystem::path> FindOrphanTmpFiles(
    const std::filesystem::path& target) {
  std::vector<std::filesystem::path> orphans;
  std::filesystem::path dir = target.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = target.filename().string() + ".tmp.";
  std::error_code ec;
  std::filesystem::directory_iterator dir_it(dir, ec);
  if (ec) return orphans;  // no directory, no orphans
  for (const std::filesystem::directory_entry& entry : dir_it) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() ||
        name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    // The suffix is the writing process's pid. A tmp whose writer is still
    // alive is in-flight, not orphaned; an unparseable suffix was never ours
    // to begin with but matches our naming scheme, so sweep it too.
    const std::string_view suffix =
        std::string_view(name).substr(prefix.size());
    long pid = 0;
    const auto [p, pec] =
        std::from_chars(suffix.data(), suffix.data() + suffix.size(), pid);
    const bool parsed =
        pec == std::errc() && p == suffix.data() + suffix.size() && pid > 0;
    if (parsed && PidAlive(static_cast<pid_t>(pid))) continue;
    orphans.push_back(entry.path());
  }
  std::sort(orphans.begin(), orphans.end());
  return orphans;
}

std::vector<std::filesystem::path> SweepOrphanTmpFiles(
    const std::filesystem::path& target) {
  std::vector<std::filesystem::path> swept;
  for (const std::filesystem::path& orphan : FindOrphanTmpFiles(target)) {
    if (io::TryRemove(orphan)) swept.push_back(orphan);
  }
  return swept;
}

void SaveSnapshot(const std::filesystem::path& path,
                  const core::CollectionResult& result, const SnapshotMeta& meta,
                  const SaveOptions& options) {
  Writer writer(path);
  writer.WriteCollection(result, meta, options);
  writer.Commit();
}

}  // namespace lockdown::store
