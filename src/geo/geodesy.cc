#include "geo/geodesy.h"

#include <cmath>

namespace lockdown::geo {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kEarthRadiusKm = 6371.0;
double Deg2Rad(double d) noexcept { return d * kPi / 180.0; }
double Rad2Deg(double r) noexcept { return r * 180.0 / kPi; }
}  // namespace

Vec3 ToUnitVector(world::GeoPoint p) noexcept {
  const double lat = Deg2Rad(p.lat);
  const double lon = Deg2Rad(p.lon);
  return Vec3{std::cos(lat) * std::cos(lon), std::cos(lat) * std::sin(lon),
              std::sin(lat)};
}

world::GeoPoint ToGeoPoint(Vec3 v) noexcept {
  const double norm = std::sqrt(v.x * v.x + v.y * v.y + v.z * v.z);
  if (norm <= 0.0) return {0.0, 0.0};
  const double lat = std::asin(v.z / norm);
  const double lon = std::atan2(v.y, v.x);
  return {Rad2Deg(lat), Rad2Deg(lon)};
}

double GreatCircleKm(world::GeoPoint a, world::GeoPoint b) noexcept {
  const Vec3 va = ToUnitVector(a);
  const Vec3 vb = ToUnitVector(b);
  const double dot = va.x * vb.x + va.y * vb.y + va.z * vb.z;
  const double clamped = dot > 1.0 ? 1.0 : (dot < -1.0 ? -1.0 : dot);
  return kEarthRadiusKm * std::acos(clamped);
}

void MidpointAccumulator::Add(world::GeoPoint p, double weight) noexcept {
  if (weight <= 0.0) return;
  const Vec3 v = ToUnitVector(p);
  sum_.x += v.x * weight;
  sum_.y += v.y * weight;
  sum_.z += v.z * weight;
  total_weight_ += weight;
}

}  // namespace lockdown::geo
