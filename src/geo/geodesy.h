// Spherical geometry for the geolocation analysis (paper §4.2): the
// bytes-weighted geographic midpoint of a device's destinations.
#pragma once

#include <span>

#include "world/service.h"

namespace lockdown::geo {

/// A 3-D unit (or accumulated) vector on/inside the sphere.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
};

/// lat/lon (degrees) -> unit vector.
[[nodiscard]] Vec3 ToUnitVector(world::GeoPoint p) noexcept;

/// Accumulated vector -> lat/lon. Returns {0,0} ("null island") for the
/// zero vector.
[[nodiscard]] world::GeoPoint ToGeoPoint(Vec3 v) noexcept;

/// Great-circle distance in kilometres (mean Earth radius).
[[nodiscard]] double GreatCircleKm(world::GeoPoint a, world::GeoPoint b) noexcept;

/// Streaming weighted-midpoint accumulator: add destinations weighted by
/// bytes, read the midpoint at the end. "we calculate the geographic
/// midpoint of the destination of each of that device's connections... We
/// weight each connection by its number of bytes" (§4.2).
class MidpointAccumulator {
 public:
  void Add(world::GeoPoint p, double weight) noexcept;

  /// Folds another accumulator's component sums into this one; used when
  /// per-shard classifiers merge (see geo::InternationalClassifier::Merge).
  void Merge(const MidpointAccumulator& other) noexcept {
    sum_.x += other.sum_.x;
    sum_.y += other.sum_.y;
    sum_.z += other.sum_.z;
    total_weight_ += other.total_weight_;
  }

  [[nodiscard]] bool empty() const noexcept { return total_weight_ <= 0.0; }
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }
  [[nodiscard]] world::GeoPoint Midpoint() const noexcept { return ToGeoPoint(sum_); }

 private:
  Vec3 sum_;
  double total_weight_ = 0.0;
};

}  // namespace lockdown::geo
