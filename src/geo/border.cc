#include "geo/border.h"

#include <array>

namespace lockdown::geo {

bool PointInPolygon(world::GeoPoint p,
                    std::span<const world::GeoPoint> polygon) noexcept {
  bool inside = false;
  const std::size_t n = polygon.size();
  for (std::size_t i = 0, j = n - 1; i < n; j = i++) {
    const world::GeoPoint& a = polygon[i];
    const world::GeoPoint& b = polygon[j];
    // Cast a ray in +lon direction; count lat-crossings.
    const bool crosses = (a.lat > p.lat) != (b.lat > p.lat);
    if (crosses) {
      const double lon_at =
          a.lon + (p.lat - a.lat) / (b.lat - a.lat) * (b.lon - a.lon);
      if (p.lon < lon_at) inside = !inside;
    }
  }
  return inside;
}

namespace {

// Coarse continental US outline, counter-clockwise, (lat, lon). The Great
// Lakes dip matters: without it Toronto would land "inside" the US.
constexpr std::array<world::GeoPoint, 27> kConus = {{
    {48.9, -124.8},  // NW: Olympic peninsula
    {49.0, -95.0},   // northern border
    {47.3, -89.5},   // Lake Superior
    {45.0, -82.5},   // Lake Huron
    {42.0, -83.1},   // Detroit
    {41.7, -81.0},   // Lake Erie south shore
    {43.2, -79.0},   // Niagara
    {44.0, -76.5},   // eastern Lake Ontario
    {45.0, -74.7},   // St. Lawrence
    {47.3, -68.0},   // northern Maine
    {44.8, -66.9},   // eastern Maine coast
    {41.2, -69.9},   // Cape Cod
    {35.2, -75.4},   // Cape Hatteras
    {30.0, -80.8},   // north Florida Atlantic coast
    {25.0, -80.0},   // Miami / Keys
    {25.0, -81.3},   // Florida Bay
    {29.5, -83.5},   // Florida gulf coast
    {29.2, -89.0},   // Mississippi delta
    {26.0, -97.1},   // Brownsville
    {29.5, -101.5},  // Rio Grande
    {31.3, -106.5},  // El Paso
    {31.3, -111.0},  // southern Arizona
    {32.5, -114.8},  // Yuma
    {32.53, -117.13},// San Ysidro border crossing (south of San Diego)
    {34.0, -120.7},  // SoCal bight
    {37.0, -122.5},  // Monterey Bay
    {40.4, -124.4},  // Cape Mendocino
}};

constexpr world::GeoPoint kAlaskaMin{51.0, -170.0};
constexpr world::GeoPoint kAlaskaMax{71.5, -129.9};
constexpr world::GeoPoint kHawaiiMin{18.5, -160.5};
constexpr world::GeoPoint kHawaiiMax{22.5, -154.5};

bool InBox(world::GeoPoint p, world::GeoPoint lo, world::GeoPoint hi) noexcept {
  return p.lat >= lo.lat && p.lat <= hi.lat && p.lon >= lo.lon && p.lon <= hi.lon;
}

}  // namespace

bool UsBorder::Contains(world::GeoPoint p) noexcept {
  return PointInPolygon(p, kConus) || InBox(p, kAlaskaMin, kAlaskaMax) ||
         InBox(p, kHawaiiMin, kHawaiiMax);
}

std::span<const world::GeoPoint> UsBorder::ConusPolygon() noexcept { return kConus; }

}  // namespace lockdown::geo
