#include "geo/intl.h"

namespace lockdown::geo {

InternationalClassifier::InternationalClassifier(const world::GeoDatabase& geo,
                                                 util::Timestamp window_start,
                                                 util::Timestamp window_end)
    : geo_(&geo), window_start_(window_start), window_end_(window_end) {}

InternationalClassifier::InternationalClassifier(const world::GeoDatabase& geo)
    : InternationalClassifier(
          geo, util::TimestampOf(util::CivilDate{2020, 2, 1}),
          util::TimestampOf(util::CivilDate{2020, 3, 1})) {}

void InternationalClassifier::Observe(privacy::DeviceId device,
                                      net::Ipv4Address server, std::uint64_t bytes,
                                      util::Timestamp ts) {
  if (ts < window_start_ || ts >= window_end_ || bytes == 0) return;
  const auto info = geo_->Lookup(server);
  if (!info || info->is_cdn) return;  // CDNs say where the *user* is, not the site
  acc_[device].Add(info->location, static_cast<double>(bytes));
}

void InternationalClassifier::Merge(const InternationalClassifier& other) {
  // Keyed merge: each device appears once per shard, so visiting shard
  // entries in hash order never reorders any single device's accumulation.
  // lockdown-lint: allow(LD002)
  for (const auto& [device, acc] : other.acc_) {
    const auto [it, inserted] = acc_.try_emplace(device, acc);
    if (!inserted) it->second.Merge(acc);
  }
}

std::optional<DeviceGeoResult> InternationalClassifier::Classify(
    privacy::DeviceId device) const {
  const auto it = acc_.find(device);
  if (it == acc_.end() || it->second.empty()) return std::nullopt;
  DeviceGeoResult result;
  result.midpoint = it->second.Midpoint();
  result.total_weight = it->second.total_weight();
  result.international = !UsBorder::Contains(result.midpoint);
  return result;
}

}  // namespace lockdown::geo
