// International-student classification (paper §4.2):
//
//  "First we collect the geolocation data for every IP address that was
//   visited by a post-shutdown user during the month of February, excluding
//   CDNs... for each device, we calculate the geographic midpoint of the
//   destination of each of that device's connections during the month of
//   February. We weight each connection by its number of bytes... if a
//   user's midpoint falls outside the borders of the United States, we
//   classify them as an international student."
#pragma once

#include <optional>
#include <unordered_map>

#include "geo/border.h"
#include "geo/geodesy.h"
#include "privacy/anonymizer.h"
#include "util/time.h"
#include "world/geo_db.h"

namespace lockdown::geo {

struct DeviceGeoResult {
  world::GeoPoint midpoint;
  double total_weight = 0.0;
  bool international = false;
};

class InternationalClassifier {
 public:
  /// Observations outside [window_start, window_end) are ignored — callers
  /// pass February 2020 per the paper. CDN addresses are skipped.
  InternationalClassifier(const world::GeoDatabase& geo, util::Timestamp window_start,
                          util::Timestamp window_end);

  /// Convenience: window = February 2020.
  explicit InternationalClassifier(const world::GeoDatabase& geo);

  /// Feeds one flow (device, destination address, byte count, start time).
  void Observe(privacy::DeviceId device, net::Ipv4Address server,
               std::uint64_t bytes, util::Timestamp ts);

  /// Folds another classifier's accumulated observations into this one.
  /// The parallel study shards devices across chunks (key sets disjoint);
  /// a key present in both folds its component sums, which is commutative,
  /// so merge order does not matter even then.
  void Merge(const InternationalClassifier& other);

  /// Result for a device; nullopt if it had no usable February traffic
  /// (such devices are conservatively treated as domestic by callers).
  [[nodiscard]] std::optional<DeviceGeoResult> Classify(privacy::DeviceId device) const;

  /// Number of devices with at least one usable observation.
  [[nodiscard]] std::size_t num_devices() const noexcept { return acc_.size(); }

 private:
  const world::GeoDatabase* geo_;
  util::Timestamp window_start_;
  util::Timestamp window_end_;
  std::unordered_map<privacy::DeviceId, MidpointAccumulator, privacy::DeviceIdHash>
      acc_;
};

}  // namespace lockdown::geo
