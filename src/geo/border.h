// United States border test: "if a user's midpoint falls outside the borders
// of the United States, we classify them as an international student" (§4.2).
//
// The polygon is a coarse continental-US outline (sufficient for a midpoint
// test at sub-degree precision is not needed) plus bounding boxes for Alaska
// and Hawaii.
#pragma once

#include <span>

#include "world/service.h"

namespace lockdown::geo {

/// Ray-casting point-in-polygon over (lat, lon) vertices. The polygon is
/// implicitly closed. Points exactly on an edge may land on either side.
[[nodiscard]] bool PointInPolygon(world::GeoPoint p,
                                  std::span<const world::GeoPoint> polygon) noexcept;

class UsBorder {
 public:
  /// True if the point lies within the US (CONUS polygon, or the Alaska /
  /// Hawaii boxes).
  [[nodiscard]] static bool Contains(world::GeoPoint p) noexcept;

  /// The CONUS polygon itself (tests and documentation).
  [[nodiscard]] static std::span<const world::GeoPoint> ConusPolygon() noexcept;
};

}  // namespace lockdown::geo
