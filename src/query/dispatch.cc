// Runtime kernel dispatch: LOCKDOWN_NO_SIMD=1 forces the scalar reference,
// otherwise the SIMD table is used when the CPU supports it. The decision is
// published as the gauge "query/kernel_dispatch" (0 = scalar, 1 = simd) so
// the fallback path is observable — tests/query/dispatch_test.cc keeps it
// from silently rotting.
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "obs/obs.h"
#include "query/kernels.h"
#include "query/kernels_impl.h"

namespace lockdown::query {

namespace {

std::atomic<const KernelTable*> g_active{nullptr};
std::atomic<DispatchKind> g_kind{DispatchKind::kScalar};

void PublishDispatchGauge(DispatchKind kind) {
  if (!obs::MetricsEnabled()) return;
  static obs::Gauge& dispatch = obs::GetGauge("query/kernel_dispatch", "kind");
  dispatch.Set(kind == DispatchKind::kSimd ? 1.0 : 0.0);
}

bool SimdDisabledByEnv() {
  const char* v = std::getenv("LOCKDOWN_NO_SIMD");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

DispatchKind Resolve() {
  const KernelTable* simd =
      SimdDisabledByEnv() ? nullptr : detail::ResolveSimdTable();
  const DispatchKind kind =
      simd != nullptr ? DispatchKind::kSimd : DispatchKind::kScalar;
  g_active.store(simd != nullptr ? simd : &detail::kScalarTable,
                 std::memory_order_release);
  g_kind.store(kind, std::memory_order_release);
  PublishDispatchGauge(kind);
  return kind;
}

}  // namespace

const char* ToString(DispatchKind kind) noexcept {
  return kind == DispatchKind::kSimd ? "simd" : "scalar";
}

const KernelTable& Scalar() noexcept { return detail::kScalarTable; }

const KernelTable* Simd() noexcept { return detail::ResolveSimdTable(); }

const KernelTable& Active() noexcept {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    Resolve();
    table = g_active.load(std::memory_order_acquire);
  }
  return *table;
}

DispatchKind ActiveKind() noexcept {
  if (g_active.load(std::memory_order_acquire) == nullptr) Resolve();
  return g_kind.load(std::memory_order_acquire);
}

DispatchKind ReresolveDispatchForTest() { return Resolve(); }

void SetDispatchForTest(DispatchKind kind) {
  g_active.store(kind == DispatchKind::kSimd && detail::ResolveSimdTable() != nullptr
                     ? detail::ResolveSimdTable()
                     : &detail::kScalarTable,
                 std::memory_order_release);
  g_kind.store(kind == DispatchKind::kSimd && detail::ResolveSimdTable() != nullptr
                   ? DispatchKind::kSimd
                   : DispatchKind::kScalar,
               std::memory_order_release);
  PublishDispatchGauge(g_kind.load(std::memory_order_acquire));
}

}  // namespace lockdown::query
