// Scalar reference kernels: the executable specification every SIMD
// implementation is differentially tested against (tests/query). This
// translation unit is compiled with auto-vectorization disabled (see
// src/query/CMakeLists.txt) so the reference stays genuinely scalar — both
// for honest microbenchmark baselines and so a miscompiled vectorizer can
// never make the reference and the vector path wrong in the same way.
#include "query/kernels_impl.h"

namespace lockdown::query::detail {

std::size_t ScalarCountLessU32(const std::uint32_t* v, std::size_t n,
                               std::uint32_t bound) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += v[i] < bound ? 1 : 0;
  return count;
}

std::uint64_t ScalarSumU64(const std::uint64_t* v, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) sum += v[i];
  return sum;
}

std::uint64_t ScalarMaskedSumU64(const std::uint64_t* v,
                                 const std::uint8_t* mask, std::size_t n) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] != 0) sum += v[i];
  }
  return sum;
}

std::uint64_t ScalarMaskedRangeSumU64(const std::uint32_t* ts,
                                      const std::uint64_t* bytes,
                                      const std::uint8_t* mask, std::size_t n,
                                      std::uint32_t lo, std::uint32_t hi) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] != 0 && ts[i] >= lo && ts[i] < hi) sum += bytes[i];
  }
  return sum;
}

std::size_t ScalarCountNonZeroU8(const std::uint8_t* mask, std::size_t n) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += mask[i] != 0 ? 1 : 0;
  return count;
}

void ScalarFlagMaskU8(const std::uint32_t* ids, std::size_t n,
                      const std::uint8_t* lut, std::size_t lut_size,
                      std::uint8_t* out) {
  (void)lut_size;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lut[ids[i]] != 0 ? std::uint8_t{1} : std::uint8_t{0};
  }
}

void ScalarDaySumsU64(const std::uint32_t* ts, const std::uint64_t* bytes,
                      std::size_t n, std::uint32_t day_seconds,
                      std::uint64_t* sums, std::uint32_t num_days) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t day = ts[i] / day_seconds;
    if (day < num_days) sums[day] += bytes[i];
  }
}

void ScalarMaskedDaySumsU64(const std::uint32_t* ts, const std::uint64_t* bytes,
                            const std::uint8_t* mask, std::size_t n,
                            std::uint32_t day_seconds, std::uint64_t* sums,
                            std::uint32_t num_days) {
  for (std::size_t i = 0; i < n; ++i) {
    if (mask[i] == 0) continue;
    const std::uint32_t day = ts[i] / day_seconds;
    if (day < num_days) sums[day] += bytes[i];
  }
}

void ScalarMarkDaysU8(const std::uint32_t* ts, std::size_t n,
                      std::uint32_t day_seconds, std::uint8_t* days,
                      std::uint32_t num_days) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t day = ts[i] / day_seconds;
    if (day < num_days) days[day] = 1;
  }
}

const KernelTable kScalarTable = {
    &ScalarCountLessU32,     &ScalarSumU64,
    &ScalarMaskedSumU64,     &ScalarMaskedRangeSumU64,
    &ScalarCountNonZeroU8,   &ScalarFlagMaskU8,
    &ScalarDaySumsU64,       &ScalarMaskedDaySumsU64,
    &ScalarMarkDaysU8,
};

}  // namespace lockdown::query::detail
