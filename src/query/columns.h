// Columnar (SoA) projection of the flow array. The kernels are strided for
// dense columns, not the 40-byte Flow records, so the study materialises the
// three hot columns once — start offsets, domain ids, total bytes, plus the
// device column for flat scans — and every figure pass reads these.
//
// The projection preserves flow order exactly, so per-device CSR ranges from
// Dataset::device_offsets() index the columns directly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/dataset.h"

namespace lockdown::util {
class ThreadPool;
}

namespace lockdown::query {

struct FlowColumns {
  std::vector<std::uint32_t> start;   ///< Flow::start_offset_s
  std::vector<std::uint32_t> device;  ///< Flow::device
  std::vector<std::uint32_t> domain;  ///< Flow::domain
  std::vector<std::uint64_t> bytes;   ///< Flow::total_bytes()

  [[nodiscard]] std::size_t size() const noexcept { return start.size(); }
};

/// Builds the columns from a flow span, sharded over `pool` with
/// slot-disjoint writes (deterministic at any thread count).
[[nodiscard]] FlowColumns BuildFlowColumns(std::span<const core::Flow> flows,
                                           util::ThreadPool& pool);

}  // namespace lockdown::query
