#include "query/columns.h"

#include "obs/obs.h"
#include "util/thread_pool.h"

namespace lockdown::query {

namespace {
// Same grain as the study's flat flow scans (core/study_context.h); the
// value is duplicated here because query sits below core in the build graph.
constexpr std::size_t kColumnGrain = 16384;
}  // namespace

FlowColumns BuildFlowColumns(std::span<const core::Flow> flows,
                             util::ThreadPool& pool) {
  OBS_SPAN("query/build_columns");
  FlowColumns cols;
  const std::size_t n = flows.size();
  cols.start.resize(n);
  cols.device.resize(n);
  cols.domain.resize(n);
  cols.bytes.resize(n);
  pool.ParallelFor(n, kColumnGrain,
                   [&](std::size_t, std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       const core::Flow& f = flows[i];
                       cols.start[i] = f.start_offset_s;
                       cols.device[i] = f.device;
                       cols.domain[i] = f.domain;
                       cols.bytes[i] = f.total_bytes();
                     }
                   });
  if (obs::MetricsEnabled()) {
    obs::GetCounter("query/columns_built", "flows").Add(n);
  }
  return cols;
}

}  // namespace lockdown::query
