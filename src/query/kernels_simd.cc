// AVX2 kernel implementations (x86-64). Compiled into every x86-64 build via
// per-function target attributes — no global -mavx2, so the binary still runs
// on older CPUs — and selected at runtime only when __builtin_cpu_supports
// reports the extension. Non-x86 targets compile this TU to a null resolver
// and always dispatch scalar.
//
// Bit-identity with the scalar reference is by construction: every kernel
// accumulates in u64/size_t with the same wrap-around semantics, so lane
// order cannot perturb results. The differential suite (tests/query) checks
// this on random and adversarial inputs anyway.
#include "query/kernels_impl.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstring>

namespace lockdown::query::detail {

namespace {

#define LOCKDOWN_AVX2 __attribute__((target("avx2")))

LOCKDOWN_AVX2 inline std::uint64_t HorizontalSumU64(__m256i acc) {
  const __m128i lo = _mm256_castsi256_si128(acc);
  const __m128i hi = _mm256_extracti128_si256(acc, 1);
  const __m128i s = _mm_add_epi64(lo, hi);
  return static_cast<std::uint64_t>(_mm_cvtsi128_si64(s)) +
         static_cast<std::uint64_t>(_mm_extract_epi64(s, 1));
}

/// 4 mask bytes -> per-u64-lane all-ones where the byte is nonzero.
LOCKDOWN_AVX2 inline __m256i MaskLanes4(const std::uint8_t* mask) {
  std::uint32_t m4;
  std::memcpy(&m4, mask, 4);
  const __m256i bytes =
      _mm256_cvtepu8_epi64(_mm_cvtsi32_si128(static_cast<int>(m4)));
  return _mm256_cmpgt_epi64(bytes, _mm256_setzero_si256());
}

LOCKDOWN_AVX2 std::size_t SimdCountLessU32(const std::uint32_t* v,
                                           std::size_t n, std::uint32_t bound) {
  const __m256i bias = _mm256_set1_epi32(static_cast<int>(0x80000000U));
  const __m256i b =
      _mm256_xor_si256(_mm256_set1_epi32(static_cast<int>(bound)), bias);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i x = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)), bias);
    // Signed compare of bias-flipped values == unsigned v[i] < bound.
    const __m256i lt = _mm256_cmpgt_epi32(b, x);
    count += static_cast<std::size_t>(__builtin_popcount(static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(lt)))));
  }
  for (; i < n; ++i) count += v[i] < bound ? 1 : 0;
  return count;
}

LOCKDOWN_AVX2 std::uint64_t SimdSumU64(const std::uint64_t* v, std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_epi64(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i)));
  }
  std::uint64_t sum = HorizontalSumU64(acc);
  for (; i < n; ++i) sum += v[i];
  return sum;
}

LOCKDOWN_AVX2 std::uint64_t SimdMaskedSumU64(const std::uint64_t* v,
                                             const std::uint8_t* mask,
                                             std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i keep = MaskLanes4(mask + i);
    const __m256i vals =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(v + i));
    acc = _mm256_add_epi64(acc, _mm256_and_si256(keep, vals));
  }
  std::uint64_t sum = HorizontalSumU64(acc);
  for (; i < n; ++i) {
    if (mask[i] != 0) sum += v[i];
  }
  return sum;
}

LOCKDOWN_AVX2 std::uint64_t SimdMaskedRangeSumU64(
    const std::uint32_t* ts, const std::uint64_t* bytes,
    const std::uint8_t* mask, std::size_t n, std::uint32_t lo,
    std::uint32_t hi) {
  // Timestamps widen to u64 lanes, so the [lo, hi) compares are plain signed
  // 64-bit (every operand < 2^32).
  const __m256i lo64 = _mm256_set1_epi64x(static_cast<long long>(lo));
  const __m256i hi64 = _mm256_set1_epi64x(static_cast<long long>(hi));
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i t = _mm256_cvtepu32_epi64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ts + i)));
    const __m256i ge_lo = _mm256_or_si256(_mm256_cmpgt_epi64(t, lo64),
                                          _mm256_cmpeq_epi64(t, lo64));
    const __m256i lt_hi = _mm256_cmpgt_epi64(hi64, t);
    const __m256i sel = _mm256_and_si256(
        MaskLanes4(mask + i), _mm256_and_si256(ge_lo, lt_hi));
    const __m256i vals =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bytes + i));
    acc = _mm256_add_epi64(acc, _mm256_and_si256(sel, vals));
  }
  std::uint64_t sum = HorizontalSumU64(acc);
  for (; i < n; ++i) {
    if (mask[i] != 0 && ts[i] >= lo && ts[i] < hi) sum += bytes[i];
  }
  return sum;
}

LOCKDOWN_AVX2 std::size_t SimdCountNonZeroU8(const std::uint8_t* mask,
                                             std::size_t n) {
  const __m256i zero = _mm256_setzero_si256();
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i m =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    const auto zeros = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(m, zero)));
    count += 32U - static_cast<unsigned>(__builtin_popcount(zeros));
  }
  for (; i < n; ++i) count += mask[i] != 0 ? 1 : 0;
  return count;
}

LOCKDOWN_AVX2 void SimdFlagMaskU8(const std::uint32_t* ids, std::size_t n,
                                  const std::uint8_t* lut,
                                  std::size_t lut_size, std::uint8_t* out) {
  (void)lut_size;  // caller contract: ids < lut_size, lut padded by 3 bytes
  const __m256i byte_mask = _mm256_set1_epi32(0xFF);
  const __m256i one = _mm256_set1_epi32(1);
  // packus interleaves 128-bit lanes; this permutation restores id order.
  const __m256i unshuffle = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  const int* base = reinterpret_cast<const int*>(lut);
  std::size_t i = 0;
  // 32 ids per iteration: four scale-1 gathers (a 32-bit load at each byte
  // offset — the low byte is the lut entry, the 3 overread bytes come from
  // the lut's tail padding), each normalized to 0/1 per 32-bit lane, then
  // packed 32->16->8 bits wide into a single 32-byte store. Packing in bulk
  // is what pays: extracting gather lanes byte-by-byte loses to scalar.
  for (; i + 32 <= n; i += 32) {
    __m256i v[4];
    for (int j = 0; j < 4; ++j) {
      const __m256i id = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(ids + i + 8 * static_cast<unsigned>(j)));
      const __m256i g = _mm256_i32gather_epi32(base, id, 1);
      v[j] = _mm256_min_epu32(_mm256_and_si256(g, byte_mask), one);
    }
    const __m256i p01 = _mm256_packus_epi32(v[0], v[1]);
    const __m256i p23 = _mm256_packus_epi32(v[2], v[3]);
    const __m256i packed = _mm256_permutevar8x32_epi32(
        _mm256_packus_epi16(p01, p23), unshuffle);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), packed);
  }
  for (; i < n; ++i) {
    out[i] = lut[ids[i]] != 0 ? std::uint8_t{1} : std::uint8_t{0};
  }
}

#undef LOCKDOWN_AVX2

const KernelTable kSimdTable = {
    &SimdCountLessU32,     &SimdSumU64,
    &SimdMaskedSumU64,     &SimdMaskedRangeSumU64,
    &SimdCountNonZeroU8,   &SimdFlagMaskU8,
    // Scatter kernels have no profitable vector form; the SIMD table keeps
    // the scalar definitions (see kernels_impl.h).
    &ScalarDaySumsU64,     &ScalarMaskedDaySumsU64,
    &ScalarMarkDaysU8,
};

}  // namespace

const KernelTable* ResolveSimdTable() {
  return __builtin_cpu_supports("avx2") ? &kSimdTable : nullptr;
}

}  // namespace lockdown::query::detail

#else  // !x86-64

namespace lockdown::query::detail {

const KernelTable* ResolveSimdTable() { return nullptr; }

}  // namespace lockdown::query::detail

#endif
