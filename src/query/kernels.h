// Branch-light columnar query kernels for the hot figure loops: time-range
// selection over sorted timestamps, masked byte accumulation, and
// domain-signature matching. Every kernel exists twice — a scalar reference
// (kernels_scalar.cc, compiled with auto-vectorization disabled so it stays
// the readable specification) and a SIMD implementation (kernels_simd.cc,
// AVX2 on x86-64) — behind one function-pointer table selected at runtime.
//
// Dispatch: query::Active() returns the SIMD table when the CPU supports it
// and LOCKDOWN_NO_SIMD is unset/0; query::Scalar() always returns the
// reference. The selection is observable through the metrics registry as the
// gauge "query/kernel_dispatch" (0 = scalar, 1 = simd).
//
// Determinism contract: every kernel is a pure function of its operands with
// integer (u64) accumulation, so scalar and SIMD results are bit-identical —
// not merely close — and independent of chunking. Figure passes keep the
// PR 2 ParallelFor decomposition and feed each chunk/device slice through
// these kernels, converting exact integer sums to double only at the
// figure boundary (exact below 2^53, which campus-scale day/device sums
// never approach).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace lockdown::query {

/// The kernel function-pointer table. Pointer operands need no particular
/// alignment; `n == 0` is valid for every kernel.
struct KernelTable {
  /// Number of elements of sorted-or-not `v` with v[i] < bound. On a sorted
  /// array this is the lower-bound rank, i.e. the time-range selection
  /// primitive: a window [lo, hi) over sorted timestamps is
  /// [count_less(lo), count_less(hi)).
  std::size_t (*count_less_u32)(const std::uint32_t* v, std::size_t n,
                                std::uint32_t bound);

  /// Exact u64 sum (wrap-around on overflow, as in plain C++).
  std::uint64_t (*sum_u64)(const std::uint64_t* v, std::size_t n);

  /// Sum of v[i] where mask[i] != 0.
  std::uint64_t (*masked_sum_u64)(const std::uint64_t* v,
                                  const std::uint8_t* mask, std::size_t n);

  /// Sum of bytes[i] where mask[i] != 0 and lo <= ts[i] < hi. Fuses the
  /// time-range selection with the masked accumulation for flat (unsorted)
  /// flow scans.
  std::uint64_t (*masked_range_sum_u64)(const std::uint32_t* ts,
                                        const std::uint64_t* bytes,
                                        const std::uint8_t* mask, std::size_t n,
                                        std::uint32_t lo, std::uint32_t hi);

  /// Number of nonzero mask bytes (e.g. matching-flow connection counts).
  std::size_t (*count_nonzero_u8)(const std::uint8_t* mask, std::size_t n);

  /// Domain-signature matching: out[i] = lut[ids[i]] != 0 ? 1 : 0. Every id
  /// must be < lut_size; the lut must be readable 3 bytes past lut_size
  /// (ByteLut below guarantees both). The SIMD path gathers 32-bit loads.
  void (*flag_mask_u8)(const std::uint32_t* ids, std::size_t n,
                       const std::uint8_t* lut, std::size_t lut_size,
                       std::uint8_t* out);

  /// sums[ts[i] / day_seconds] += bytes[i] for days < num_days (out-of-range
  /// days are dropped, matching the figures' day-window guards). Scatter
  /// writes keep this scalar in both tables; it is in the table so callers
  /// stay dispatch-agnostic.
  void (*day_sums_u64)(const std::uint32_t* ts, const std::uint64_t* bytes,
                       std::size_t n, std::uint32_t day_seconds,
                       std::uint64_t* sums, std::uint32_t num_days);

  /// day_sums_u64 restricted to mask[i] != 0.
  void (*masked_day_sums_u64)(const std::uint32_t* ts,
                              const std::uint64_t* bytes,
                              const std::uint8_t* mask, std::size_t n,
                              std::uint32_t day_seconds, std::uint64_t* sums,
                              std::uint32_t num_days);

  /// days[ts[i] / day_seconds] = 1 for days < num_days (scatter; scalar in
  /// both tables).
  void (*mark_days_u8)(const std::uint32_t* ts, std::size_t n,
                       std::uint32_t day_seconds, std::uint8_t* days,
                       std::uint32_t num_days);
};

enum class DispatchKind : std::uint8_t { kScalar = 0, kSimd = 1 };

[[nodiscard]] const char* ToString(DispatchKind kind) noexcept;

/// The scalar reference table (always available).
[[nodiscard]] const KernelTable& Scalar() noexcept;

/// The SIMD table, or nullptr when this build/CPU has none. Exposed for the
/// differential suite; production callers go through Active().
[[nodiscard]] const KernelTable* Simd() noexcept;

/// The runtime-selected table: SIMD when supported and LOCKDOWN_NO_SIMD is
/// unset/0, else scalar. Resolved once on first use; publishes the
/// "query/kernel_dispatch" gauge when metrics are enabled.
[[nodiscard]] const KernelTable& Active() noexcept;

/// Which table Active() returns.
[[nodiscard]] DispatchKind ActiveKind() noexcept;

/// Re-runs the environment + CPU resolution (and republishes the dispatch
/// gauge). Test hook for exercising LOCKDOWN_NO_SIMD without process
/// restarts; returns the newly active kind.
DispatchKind ReresolveDispatchForTest();

/// Forces a specific table. Test hook; pair with ReresolveDispatchForTest()
/// to restore environment-driven selection.
void SetDispatchForTest(DispatchKind kind);

/// A 0/1 byte lookup table over dense ids (domain ids, device indices) with
/// the 3-byte tail padding the gather-based flag_mask_u8 requires.
class ByteLut {
 public:
  template <typename Pred>
  ByteLut(std::size_t size, Pred&& pred) : size_(size), bytes_(size + 3, 0) {
    for (std::size_t i = 0; i < size; ++i) {
      bytes_[i] = pred(i) ? std::uint8_t{1} : std::uint8_t{0};
    }
  }

  [[nodiscard]] const std::uint8_t* data() const noexcept { return bytes_.data(); }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

 private:
  std::size_t size_;
  std::vector<std::uint8_t> bytes_;
};

}  // namespace lockdown::query
