// Internal: the concrete kernel implementations behind the dispatch table.
// kernels_scalar.cc defines the reference set; kernels_simd.cc defines the
// vector set on targets that have one. The scatter kernels (day sums, day
// marks) are memory-bound scatter loops with nothing for SIMD to win, so the
// SIMD table reuses the scalar definitions.
#pragma once

#include "query/kernels.h"

namespace lockdown::query::detail {

extern const KernelTable kScalarTable;

std::size_t ScalarCountLessU32(const std::uint32_t* v, std::size_t n,
                               std::uint32_t bound);
std::uint64_t ScalarSumU64(const std::uint64_t* v, std::size_t n);
std::uint64_t ScalarMaskedSumU64(const std::uint64_t* v,
                                 const std::uint8_t* mask, std::size_t n);
std::uint64_t ScalarMaskedRangeSumU64(const std::uint32_t* ts,
                                      const std::uint64_t* bytes,
                                      const std::uint8_t* mask, std::size_t n,
                                      std::uint32_t lo, std::uint32_t hi);
std::size_t ScalarCountNonZeroU8(const std::uint8_t* mask, std::size_t n);
void ScalarFlagMaskU8(const std::uint32_t* ids, std::size_t n,
                      const std::uint8_t* lut, std::size_t lut_size,
                      std::uint8_t* out);
void ScalarDaySumsU64(const std::uint32_t* ts, const std::uint64_t* bytes,
                      std::size_t n, std::uint32_t day_seconds,
                      std::uint64_t* sums, std::uint32_t num_days);
void ScalarMaskedDaySumsU64(const std::uint32_t* ts, const std::uint64_t* bytes,
                            const std::uint8_t* mask, std::size_t n,
                            std::uint32_t day_seconds, std::uint64_t* sums,
                            std::uint32_t num_days);
void ScalarMarkDaysU8(const std::uint32_t* ts, std::size_t n,
                      std::uint32_t day_seconds, std::uint8_t* days,
                      std::uint32_t num_days);

/// The vector table for this build, or nullptr when the target has no SIMD
/// implementation or the CPU lacks the required extensions (checked at
/// runtime).
const KernelTable* ResolveSimdTable();

}  // namespace lockdown::query::detail
