#include "stream/budget.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

namespace lockdown::stream {

namespace {

// Accounting constants: a reservoir entry is {priority, key, value} = 24
// bytes, and std::vector growth can hold up to ~2x the live entries, so the
// plan charges 48 bytes per slot. Per-sketch object headers are charged flat.
constexpr std::size_t kBytesPerReservoirSlot = 48;
constexpr std::size_t kSketchHeaderBytes = 64;

}  // namespace

MemoryPlan MemoryPlan::ForBudget(std::size_t budget_bytes) {
  MemoryPlan plan;
  plan.budget_bytes = budget_bytes;

  const std::size_t hll_share = budget_bytes / 4;
  const std::size_t per_hll = hll_share / kNumHlls;
  const int p =
      per_hll < 2 ? kMinPrecision : std::bit_width(per_hll) - 1;  // floor(log2)
  plan.hll_precision = std::clamp(p, kMinPrecision, kMaxPrecision);

  const std::size_t res_share = budget_bytes / 2;
  plan.reservoir_capacity =
      std::clamp(res_share / (kNumReservoirs * kBytesPerReservoirSlot),
                 kMinReservoirCapacity, kMaxReservoirCapacity);

  plan.cms_depth = 4;
  const std::size_t cms_share = budget_bytes / 16;
  plan.cms_width = std::clamp(cms_share / (plan.cms_depth * sizeof(std::uint64_t)),
                              kMinCmsWidth, kMaxCmsWidth);

  if (plan.EstimatedSketchBytes() > budget_bytes) {
    throw std::invalid_argument(
        "memory budget too small for the streaming study: " +
        std::to_string(budget_bytes) + " bytes < " +
        std::to_string(plan.EstimatedSketchBytes()) +
        " needed at the floor configuration (use at least 2 MiB)");
  }
  return plan;
}

std::size_t MemoryPlan::EstimatedSketchBytes() const noexcept {
  const std::size_t hll_bytes =
      kNumHlls * ((std::size_t{1} << hll_precision) + kSketchHeaderBytes);
  const std::size_t res_bytes =
      kNumReservoirs *
      (reservoir_capacity * kBytesPerReservoirSlot + kSketchHeaderBytes);
  const std::size_t cms_bytes =
      cms_width * cms_depth * sizeof(std::uint64_t) + kSketchHeaderBytes;
  return hll_bytes + res_bytes + cms_bytes;
}

double MemoryPlan::HllRelativeStandardError() const noexcept {
  return 1.04 / std::sqrt(static_cast<double>(std::size_t{1} << hll_precision));
}

double MemoryPlan::CmsEpsilon() const noexcept {
  return std::exp(1.0) / static_cast<double>(cms_width);
}

double MemoryPlan::CmsDelta() const noexcept {
  return std::exp(-static_cast<double>(cms_depth));
}

}  // namespace lockdown::stream
