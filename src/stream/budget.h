// MemoryPlan: turns a byte budget into concrete sketch parameters.
//
// The streaming study keeps a fixed inventory of sketches (src/stream/
// streaming_study.h documents the full list): 487 HyperLogLogs (121 days x 4
// reporting classes for Figure 1 plus three distinct-site estimators), 1680
// reservoir samples (Figures 2, 3, 4, 6 and 7), one count-min sketch for
// per-domain byte volumes, and a handful of fixed dense grids. Given a
// budget, the plan splits it
//   ~1/4 to the HyperLogLogs      -> precision p (2^p bytes each)
//   ~1/2 to the reservoirs        -> capacity k (k entries, 24 bytes + slack)
//   ~1/16 to the count-min sketch -> width (depth fixed at 4)
// with the remainder absorbing the fixed grids and per-chunk scratch. Every
// dial has a floor (the sketches stop being useful below it), so budgets
// under ~1.5 MiB are rejected rather than silently degraded.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lockdown::stream {

struct MemoryPlan {
  std::size_t budget_bytes = 0;
  int hll_precision = 0;            ///< p; each HLL holds 2^p registers
  std::size_t reservoir_capacity = 0;  ///< k entries per reservoir
  std::size_t cms_width = 0;
  std::size_t cms_depth = 0;

  /// Sketch counts the plan is sized against (see streaming_study.h).
  static constexpr std::size_t kNumHlls = 487;
  static constexpr std::size_t kNumReservoirs = 1680;

  static constexpr int kMinPrecision = 6;
  static constexpr int kMaxPrecision = 14;
  static constexpr std::size_t kMinReservoirCapacity = 16;
  static constexpr std::size_t kMaxReservoirCapacity = 8192;
  static constexpr std::size_t kMinCmsWidth = 272;  ///< epsilon = e/272 ~ 1%
  static constexpr std::size_t kMaxCmsWidth = std::size_t{1} << 20;

  /// Sizes every sketch family for `budget_bytes`. Throws
  /// std::invalid_argument when the budget cannot hold even the floor
  /// configuration.
  [[nodiscard]] static MemoryPlan ForBudget(std::size_t budget_bytes);

  /// Worst-case bytes of sketch state under this plan (all reservoirs full,
  /// with vector-growth slack), excluding the fixed grids.
  [[nodiscard]] std::size_t EstimatedSketchBytes() const noexcept;

  /// The a-priori accuracy the plan buys.
  [[nodiscard]] double HllRelativeStandardError() const noexcept;
  [[nodiscard]] double CmsEpsilon() const noexcept;
  [[nodiscard]] double CmsDelta() const noexcept;
};

}  // namespace lockdown::stream
