// StreamingStudy: the paper's figures from one bounded-memory pass.
//
// The batch LockdownStudy materialises per-(day, device) matrices — O(days x
// devices) memory per figure. This engine answers the same questions from a
// single pass over the flows (TSV-ingested or mmap'd LDS, in the dataset's
// CSR order: device-clustered, time-sorted per device) while holding only
// sketch state sized by an explicit byte budget (stream/budget.h):
//
//   Figure 1  active devices/day/class   487 HyperLogLogs (121 days x 4 + 3
//                                        distinct-site estimators)
//   Figure 2  bytes/device/day           exact sum+count grids (means) + 484
//                                        reservoirs (medians)
//   Figure 3  hour-of-week medians       672 reservoirs (4 weeks x 168 hours)
//   Figure 4  non-Zoom medians           484 reservoirs
//   Figure 5  Zoom daily bytes           exact 121-bin series
//   Figure 6  social-media durations     24 reservoirs (3 apps x 4 months x 2)
//   Figure 7  Steam usage                16 reservoirs (4 months x 2 x 2)
//   Figure 8  Switch gameplay            exact 121-bin series + counters
//   categories / diurnal / headline      exact dense grids + the site HLLs
//   per-domain byte volume               one count-min sketch
//
// Accuracy taxonomy (proved by tests/stream/differential_test.cc):
//   * exact, bit-identical to batch: every integer-byte aggregate (Figures
//     2 means, 5, 7 inputs, 8, categories, headline byte sums) — integer
//     sums below 2^53 are exact in double, hence order-independent;
//   * exact while the population fits the reservoir capacity: the median/
//     box figures (2, 3, 4, 6, 7). Reservoirs are bottom-k by hashed
//     priority, so a non-evicting reservoir IS the population, emitted in
//     ascending device order — the batch summation order;
//   * within published bounds otherwise: HLL cardinalities carry a
//     1.04/sqrt(2^p) relative standard error; count-min point queries never
//     undercount and overshoot by more than epsilon*total with probability
//     at most delta; sampled reservoir quantiles converge as k grows;
//   * within float tolerance: the diurnal shape (fractional spreading sums
//     cross devices in a different order than the batch flow-order scan).
//
// Determinism: the device pass uses the fixed-chunk decomposition of
// util/thread_pool.h. All global sketch updates are order-independent
// (register max, bottom-k with a total order, integer adds), so they are
// applied eagerly under a mutex as each device completes; the only
// order-sensitive state — fractional diurnal spreading — is accumulated in
// per-chunk grids folded in chunk order after the pass. Result: bit-identical
// output at any thread count, for the same seed and budget.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/stats.h"
#include "analysis/timeseries.h"
#include "core/study.h"
#include "core/study_context.h"
#include "sketch/count_min.h"
#include "sketch/hll.h"
#include "sketch/reservoir.h"
#include "sketch/windowed.h"
#include "stream/budget.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace lockdown::stream {

struct StreamingOptions {
  /// Hard byte budget for the engine's sketch state; the plan derived from
  /// it is queryable via plan(). Throws at construction if below the floor.
  std::size_t memory_budget_bytes = std::size_t{32} << 20;
  /// Seed for all sketch hashing (HLL, count-min rows, reservoir
  /// priorities). Independent of the simulation seed.
  std::uint64_t sketch_seed = 2020;
  /// 0 = LOCKDOWN_THREADS / hardware (util::ResolveThreadCount).
  int threads = 0;
};

class StreamingStudy {
 public:
  /// Runs the census (shared StudyContext) and the single streaming pass.
  /// After construction every figure query is a cheap read of sketch state.
  StreamingStudy(const core::Dataset& dataset,
                 const world::ServiceCatalog& catalog,
                 const StreamingOptions& options = {});

  // --- Figure 1 (estimated: HLL per day x class) -----------------------------
  struct ActiveDevicesRow {
    int day = 0;
    std::array<double, core::kNumReportClasses> by_class{};
    double total = 0.0;  ///< sum of the class estimates
  };
  [[nodiscard]] std::vector<ActiveDevicesRow> ActiveDevicesPerDay() const;

  // --- Figure 2 (means exact; medians exact while reservoirs hold all) -------
  [[nodiscard]] std::vector<core::LockdownStudy::BytesPerDeviceRow>
  BytesPerDevicePerDay() const;

  // --- Figure 3 ---------------------------------------------------------------
  [[nodiscard]] core::LockdownStudy::HourOfWeekResult HourOfWeekVolume() const;

  // --- Figure 4 ---------------------------------------------------------------
  [[nodiscard]] std::vector<core::LockdownStudy::Fig4Row>
  MedianBytesExcludingZoom() const;

  // --- Figure 5 (exact) -------------------------------------------------------
  [[nodiscard]] analysis::DailySeries ZoomDailyBytes() const;

  // --- Figure 6 ---------------------------------------------------------------
  [[nodiscard]] core::LockdownStudy::SocialBox SocialDurations(
      apps::SocialApp app, int month) const;

  // --- Figure 7 ---------------------------------------------------------------
  [[nodiscard]] core::LockdownStudy::SteamBox SteamUsage(int month) const;

  // --- Figure 8 (exact) -------------------------------------------------------
  [[nodiscard]] analysis::DailySeries SwitchGameplayDaily(int ma_window = 3) const;
  [[nodiscard]] core::LockdownStudy::SwitchCounts CountSwitches() const;

  // --- Category volumes (exact) ----------------------------------------------
  [[nodiscard]] std::vector<core::LockdownStudy::CategoryVolumeRow>
  CategoryVolumes() const;

  // --- Diurnal shape (within float tolerance of batch) -----------------------
  [[nodiscard]] core::LockdownStudy::DiurnalShapeResult DiurnalShape(
      int first_day, int last_day) const;

  // --- Headline (byte sums exact; device counts HLL-estimated) ----------------
  [[nodiscard]] core::LockdownStudy::Headline HeadlineStats() const;

  // --- Per-domain byte volume (count-min; never undercounts) -----------------
  [[nodiscard]] std::uint64_t EstimateDomainBytes(core::DomainId domain) const;

  // --- Accuracy & accounting ---------------------------------------------------
  struct AccuracyReport {
    int hll_precision = 0;
    double hll_relative_standard_error = 0.0;
    double cms_epsilon = 0.0;
    double cms_delta = 0.0;
    std::uint64_t cms_total_bytes = 0;  ///< total weight the CMS absorbed
    std::size_t reservoir_capacity = 0;
    /// True when no reservoir ever evicted: every sampled figure is exact.
    bool reservoirs_exact = true;
    std::size_t state_bytes = 0;   ///< TrackedStateBytes() at report time
    std::size_t budget_bytes = 0;
  };
  [[nodiscard]] AccuracyReport Accuracy() const;

  /// Bytes of engine figure-state: all sketches (actual allocation), the
  /// fixed dense grids, and the per-chunk diurnal scratch high-water. The
  /// dataset itself (mmap'd or in-memory) and the O(devices+domains) census
  /// are excluded — the budget governs what the *streaming pass* accretes.
  [[nodiscard]] std::size_t TrackedStateBytes() const noexcept;

  [[nodiscard]] const MemoryPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const core::StudyContext& context() const noexcept { return ctx_; }

 private:
  struct DeviceScratch;

  void RunPass();
  /// Publishes post-pass sketch health (fill ratios, budget headroom,
  /// overflow pressure) to the obs registry; no-op unless metrics are on.
  void RecordObsGauges() const;
  void ProcessDevice(core::DeviceIndex dev, DeviceScratch& scratch,
                     sketch::WindowedAggregator& chunk_diurnal);
  void FlushDevice(core::DeviceIndex dev, const DeviceScratch& scratch);

  [[nodiscard]] std::size_t Fig1Index(int day, core::ReportClass c) const noexcept {
    return static_cast<std::size_t>(day) * core::kNumReportClasses +
           static_cast<std::size_t>(c);
  }

  util::ThreadPool pool_;
  core::StudyContext ctx_;
  MemoryPlan plan_;

  /// Guards every global sketch below during RunPass (FlushDevice drains a
  /// device's scratch under it). The sketch fields themselves carry no
  /// GUARDED_BY: after the pass the engine is immutable and every figure
  /// query reads them lock-free from the construction thread — a phase
  /// discipline the static analysis cannot express (DESIGN.md §11).
  util::Mutex mutex_;

  // Figure 1 + distinct sites.
  std::vector<sketch::HyperLogLog> fig1_hll_;        // 121 x 4
  std::vector<sketch::HyperLogLog> site_hll_;        // feb, apr, may

  // Figure 2.
  std::vector<double> fig2_sum_;                     // 121 x 4 (integer-valued)
  std::vector<std::uint64_t> fig2_count_;            // 121 x 4
  std::vector<sketch::ReservoirSample> fig2_res_;    // 121 x 4

  // Figure 3.
  std::vector<sketch::ReservoirSample> fig3_res_;    // 4 x 168

  // Figure 4.
  std::vector<sketch::ReservoirSample> fig4_res_;    // 121 x 4

  // Figure 5.
  analysis::DailySeries zoom_daily_;

  // Figure 6: app (FB, IG, TikTok) x month (2..5) x bucket (dom, intl).
  std::vector<sketch::ReservoirSample> fig6_res_;    // 3 x 4 x 2

  // Figure 7: month (2..5) x bucket x {bytes, conns}.
  std::vector<sketch::ReservoirSample> fig7_res_;    // 4 x 2 x 2

  // Figure 8.
  analysis::DailySeries switch_daily_;
  core::LockdownStudy::SwitchCounts switch_counts_;

  // Category volumes: 121 days x 7 categories (integer-valued).
  sketch::WindowedAggregator category_grid_;

  // Diurnal: (day, hour) fractional grid, folded from per-chunk shards in
  // chunk order; weekday/weekend split happens at query time.
  sketch::WindowedAggregator diurnal_grid_;          // 121 x 24
  std::size_t diurnal_scratch_high_water_ = 0;

  // Headline byte sums (integer-valued, exact).
  double feb_bytes_ = 0.0;
  double apr_may_bytes_ = 0.0;

  // Per-domain byte volume.
  sketch::CountMinSketch domain_bytes_;
};

}  // namespace lockdown::stream
