#include "stream/streaming_study.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "apps/sessionizer.h"
#include "obs/obs.h"
#include "world/catalog.h"

namespace lockdown::stream {

using core::Dataset;
using core::DeviceIndex;
using core::Flow;
using core::kNumReportClasses;
using core::ReportClass;
using core::StudyContext;
using util::StudyCalendar;
using util::Timestamp;

namespace {

// Every sketch instance hashes under its own stream id so no two share hash
// functions; bases are spaced far beyond any per-figure index.
constexpr std::uint64_t kFig1StreamBase = 0;
constexpr std::uint64_t kSiteStreamBase = 1000;
constexpr std::uint64_t kFig2StreamBase = 2000;
constexpr std::uint64_t kFig3StreamBase = 3000;
constexpr std::uint64_t kFig4StreamBase = 4000;
constexpr std::uint64_t kFig6StreamBase = 6000;
constexpr std::uint64_t kFig7StreamBase = 7000;
constexpr std::uint64_t kCmsStream = 8000;

constexpr std::size_t kNumCategories = 7;
constexpr std::size_t kNumMonths = 4;  // February..May
constexpr int kFebDays = 29;           // 2020 is a leap year

// The four fig-6/7 study months, as [start, end) timestamps.
struct MonthBounds {
  std::array<Timestamp, kNumMonths + 1> edges;
  [[nodiscard]] int MonthOf(Timestamp ts) const noexcept {
    for (int m = static_cast<int>(kNumMonths) - 1; m >= 0; --m) {
      if (ts >= edges[static_cast<std::size_t>(m)]) {
        return ts < edges[kNumMonths] ? m : -1;
      }
    }
    return -1;
  }
};

// Calendar day boundaries the flush conditions reuse (identical expressions
// to the batch figure methods).
struct CalendarDays {
  int feb_end = StudyCalendar::DayIndex(util::CivilDate{2020, 3, 1});
  int apr_start = StudyCalendar::DayIndex(util::CivilDate{2020, 4, 1});
  int may_start = StudyCalendar::DayIndex(util::CivilDate{2020, 5, 1});
  int num_days = StudyCalendar::NumDays();
};

const CalendarDays& Cal() {
  static const CalendarDays cal;
  return cal;
}

// Chunk grain for the streaming pass: at least the batch device grain, but
// never more than ~32 chunks total so the per-chunk diurnal scratch stays a
// bounded fraction of any realistic budget.
std::size_t StreamGrain(std::size_t num_devices) {
  return std::max(core::kDeviceGrain, (num_devices + 31) / 32);
}

// Appends `v` to the (day, value) run list, extending the last run when the
// day repeats. Valid because per-device flows are time-sorted, so days are
// non-decreasing; per-day sums accumulate in flow order — the batch order.
void AccumRun(std::vector<std::pair<int, double>>& runs, int day, double v) {
  if (!runs.empty() && runs.back().first == day) {
    runs.back().second += v;
  } else {
    runs.emplace_back(day, v);
  }
}

// Maps a flow's service onto the CategoryVolumeRow column, replicating the
// batch CategoryVolumes() switch.
int CategoryIndexOf(const world::ServiceCatalog& catalog, net::Ipv4Address ip) {
  const auto svc = catalog.FindByIp(ip);
  if (!svc) return 6;
  switch (catalog.Get(*svc).category) {
    case world::Category::kEducation:
    case world::Category::kEmailCloud:
      return 0;
    case world::Category::kVideoConferencing:
      return 1;
    case world::Category::kStreaming:
    case world::Category::kMusic:
      return 2;
    case world::Category::kSocialMedia:
      return 3;
    case world::Category::kGamingPc:
    case world::Category::kGamingConsole:
      return 4;
    case world::Category::kMessaging:
      return 5;
    default:
      return 6;
  }
}

}  // namespace

// Per-device accumulation filled by ProcessDevice (no locking) and drained
// into the global sketches by FlushDevice (under the mutex). Reused across
// the devices of a chunk; Reset() keeps the vector capacity.
struct StreamingStudy::DeviceScratch {
  bool has_flows = false;
  bool post_shutdown = false;
  bool mobile_cohort = false;
  bool is_switch = false;
  bool switch_in_feb = false;
  bool switch_in_may = false;
  bool switch_post = false;
  int first_day = 0;

  // Headline byte sums over raw (unclamped) days, matching the batch study's
  // period conditions exactly — including flows past the study window.
  double feb_bytes = 0.0;
  double apr_may_bytes = 0.0;

  // (day, value) runs over the study window; days strictly increasing.
  std::vector<std::pair<int, double>> day_bytes;    // all flows (figs 1, 2)
  std::vector<std::pair<int, double>> day_nonzoom;  // cohort, ex-Zoom (fig 4)
  std::vector<std::pair<int, double>> day_zoom;     // cohort Zoom (fig 5)
  std::vector<std::pair<int, double>> day_switch;   // gameplay bytes (fig 8)
  std::vector<std::pair<int, std::array<double, kNumCategories>>> day_category;

  // Fig 3: per-(week, hour-of-week) spread volume.
  std::array<std::array<double, analysis::HourOfWeekSeries::kHours>, 4>
      week_volume{};

  // Figs 6/7 per-month accumulation.
  std::array<std::vector<apps::FlowInterval>, kNumMonths> fb_intervals;
  std::array<std::vector<apps::FlowInterval>, kNumMonths> tiktok_intervals;
  std::array<double, kNumMonths> fb_hours{};
  std::array<double, kNumMonths> ig_hours{};
  std::array<double, kNumMonths> tiktok_hours{};
  std::array<double, kNumMonths> steam_bytes{};
  std::array<double, kNumMonths> steam_conns{};

  // Headline distinct-sites keys: (period 0=feb/1=apr/2=may, device<<32|domain).
  std::vector<std::pair<std::uint8_t, std::uint64_t>> site_keys;
  // Per-domain byte adds for the count-min sketch (adjacent runs merged).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> domain_adds;

  void Reset() {
    has_flows = post_shutdown = mobile_cohort = is_switch = false;
    switch_in_feb = switch_in_may = switch_post = false;
    first_day = 0;
    feb_bytes = apr_may_bytes = 0.0;
    day_bytes.clear();
    day_nonzoom.clear();
    day_zoom.clear();
    day_switch.clear();
    day_category.clear();
    for (auto& week : week_volume) week.fill(0.0);
    for (auto& v : fb_intervals) v.clear();
    for (auto& v : tiktok_intervals) v.clear();
    fb_hours.fill(0.0);
    ig_hours.fill(0.0);
    tiktok_hours.fill(0.0);
    steam_bytes.fill(0.0);
    steam_conns.fill(0.0);
    site_keys.clear();
    domain_adds.clear();
  }
};

StreamingStudy::StreamingStudy(const core::Dataset& dataset,
                               const world::ServiceCatalog& catalog,
                               const StreamingOptions& options)
    : pool_(util::ResolveThreadCount(options.threads)),
      ctx_(dataset, catalog, pool_),
      plan_(MemoryPlan::ForBudget(options.memory_budget_bytes)),
      category_grid_(static_cast<std::size_t>(StudyCalendar::NumDays()) *
                     kNumCategories),
      diurnal_grid_(static_cast<std::size_t>(StudyCalendar::NumDays()) * 24),
      domain_bytes_(plan_.cms_width, plan_.cms_depth, options.sketch_seed,
                    kCmsStream) {
  const auto seed = options.sketch_seed;
  const auto days = static_cast<std::size_t>(StudyCalendar::NumDays());
  const std::size_t day_class = days * kNumReportClasses;

  fig1_hll_.reserve(day_class);
  for (std::size_t i = 0; i < day_class; ++i) {
    fig1_hll_.push_back(sketch::HyperLogLog::Seeded(plan_.hll_precision, seed,
                                                    kFig1StreamBase + i));
  }
  site_hll_.reserve(3);
  for (std::size_t i = 0; i < 3; ++i) {
    site_hll_.push_back(sketch::HyperLogLog::Seeded(plan_.hll_precision, seed,
                                                    kSiteStreamBase + i));
  }

  fig2_sum_.assign(day_class, 0.0);
  fig2_count_.assign(day_class, 0);
  const std::size_t k = plan_.reservoir_capacity;
  fig2_res_.reserve(day_class);
  for (std::size_t i = 0; i < day_class; ++i) {
    fig2_res_.push_back(
        sketch::ReservoirSample::Seeded(k, seed, kFig2StreamBase + i));
  }
  constexpr std::size_t kFig3Count =
      4 * static_cast<std::size_t>(analysis::HourOfWeekSeries::kHours);
  fig3_res_.reserve(kFig3Count);
  for (std::size_t i = 0; i < kFig3Count; ++i) {
    fig3_res_.push_back(
        sketch::ReservoirSample::Seeded(k, seed, kFig3StreamBase + i));
  }
  fig4_res_.reserve(day_class);
  for (std::size_t i = 0; i < day_class; ++i) {
    fig4_res_.push_back(
        sketch::ReservoirSample::Seeded(k, seed, kFig4StreamBase + i));
  }
  constexpr std::size_t kFig6Count = 3 * kNumMonths * 2;
  fig6_res_.reserve(kFig6Count);
  for (std::size_t i = 0; i < kFig6Count; ++i) {
    fig6_res_.push_back(
        sketch::ReservoirSample::Seeded(k, seed, kFig6StreamBase + i));
  }
  constexpr std::size_t kFig7Count = kNumMonths * 2 * 2;
  fig7_res_.reserve(kFig7Count);
  for (std::size_t i = 0; i < kFig7Count; ++i) {
    fig7_res_.push_back(
        sketch::ReservoirSample::Seeded(k, seed, kFig7StreamBase + i));
  }

  RunPass();
  RecordObsGauges();
}

void StreamingStudy::RunPass() {
  OBS_SPAN("stream/pass");
  const Dataset& ds = ctx_.dataset();
  const std::size_t n = ds.num_devices();
  const auto days = static_cast<std::size_t>(Cal().num_days);
  const std::size_t grain = StreamGrain(n);
  const std::size_t num_chunks = util::ThreadPool::NumChunks(n, grain);
  // The only order-sensitive global state: fractional diurnal spreading.
  // Accumulated per chunk, folded in chunk order below.
  std::vector<sketch::WindowedAggregator> chunk_diurnal(
      num_chunks, sketch::WindowedAggregator(days * 24));
  pool_.ParallelFor(
      n, grain, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        DeviceScratch scratch;
        for (std::size_t dev = begin; dev < end; ++dev) {
          scratch.Reset();
          ProcessDevice(static_cast<DeviceIndex>(dev), scratch,
                        chunk_diurnal[chunk]);
          if (scratch.has_flows) {
            FlushDevice(static_cast<DeviceIndex>(dev), scratch);
          }
        }
      });
  for (const sketch::WindowedAggregator& grid : chunk_diurnal) {
    diurnal_grid_.Merge(grid);
  }
  if (obs::MetricsEnabled()) {
    obs::GetCounter("sketch/diurnal_merges", "merges").Add(num_chunks);
  }
  diurnal_scratch_high_water_ =
      num_chunks * (days * 24 * sizeof(double) +
                    sizeof(sketch::WindowedAggregator));
}

void StreamingStudy::RecordObsGauges() const {
  if (!obs::MetricsEnabled()) return;

  const auto state = static_cast<double>(TrackedStateBytes());
  const auto budget = static_cast<double>(plan_.budget_bytes);
  obs::GetGauge("stream/state_bytes", "bytes").Set(state);
  obs::GetGauge("stream/budget_bytes", "bytes").Set(budget);
  obs::GetGauge("stream/budget_headroom_bytes", "bytes")
      .Set(budget > state ? budget - state : 0.0);

  double hll_fill = 0.0;
  std::size_t hll_count = 0;
  for (const sketch::HyperLogLog& h : fig1_hll_) {
    hll_fill += h.FillRatio();
    ++hll_count;
  }
  for (const sketch::HyperLogLog& h : site_hll_) {
    hll_fill += h.FillRatio();
    ++hll_count;
  }
  if (hll_count != 0) {
    obs::GetGauge("sketch/hll_fill_ratio", "ratio")
        .Set(hll_fill / static_cast<double>(hll_count));
  }

  double res_fill = 0.0;
  std::size_t res_count = 0;
  std::uint64_t overflow_offers = 0;
  const auto fold = [&](const std::vector<sketch::ReservoirSample>& family) {
    for (const sketch::ReservoirSample& r : family) {
      res_fill += r.FillRatio();
      ++res_count;
      if (r.seen() > r.capacity()) overflow_offers += r.seen() - r.capacity();
    }
  };
  fold(fig2_res_);
  fold(fig3_res_);
  fold(fig4_res_);
  fold(fig6_res_);
  fold(fig7_res_);
  if (res_count != 0) {
    obs::GetGauge("sketch/reservoir_fill_ratio", "ratio")
        .Set(res_fill / static_cast<double>(res_count));
  }
  obs::GetCounter("sketch/reservoir_overflow_offers", "offers")
      .Add(overflow_offers);

  obs::GetGauge("sketch/cms_fill_ratio", "ratio")
      .Set(domain_bytes_.FillRatio());
}

void StreamingStudy::ProcessDevice(DeviceIndex dev, DeviceScratch& s,
                                   sketch::WindowedAggregator& chunk_diurnal) {
  const Dataset& ds = ctx_.dataset();
  const auto flows = ds.FlowsOfDevice(dev);
  if (flows.empty()) return;
  const CalendarDays& cal = Cal();
  s.has_flows = true;
  s.post_shutdown = ctx_.IsPostShutdown(dev);
  s.mobile_cohort =
      s.post_shutdown && ctx_.report_class(dev) == ReportClass::kMobile;
  s.is_switch = ctx_.IsSwitchDevice(dev);
  s.first_day = cal.num_days;

  std::array<Timestamp, 4> week_anchors;
  for (std::size_t w = 0; w < 4; ++w) {
    week_anchors[w] = util::TimestampOf(StudyCalendar::kFig3Weeks[w]);
  }
  MonthBounds months;
  for (std::size_t m = 0; m <= kNumMonths; ++m) {
    months.edges[m] =
        util::TimestampOf(util::CivilDate{2020, static_cast<int>(2 + m), 1});
  }

  for (const Flow& f : flows) {
    const int day = Dataset::DayOf(f);
    const Timestamp start = Dataset::StartOf(f);
    const double bytes = static_cast<double>(f.total_bytes());
    s.first_day = std::min(s.first_day, day);

    // Figure 3 + diurnal: spread the flow's bytes over the hours it spans.
    StudyContext::SpreadOverHours(f, [&](Timestamp t, double b) {
      for (std::size_t w = 0; w < 4; ++w) {
        const auto bin = analysis::HourOfWeekSeries::BinOf(t, week_anchors[w]);
        if (bin) s.week_volume[w][static_cast<std::size_t>(*bin)] += b;
      }
      if (day >= 0 && day < cal.num_days) {
        chunk_diurnal.Add(
            static_cast<std::size_t>(day) * 24 +
                static_cast<std::size_t>(util::HourOf(t)),
            b);
      }
    });

    if (s.post_shutdown) {
      if (day >= 0 && day < cal.feb_end) {
        s.feb_bytes += bytes;
      } else if (day >= cal.apr_start) {
        s.apr_may_bytes += bytes;
      }
    }

    if (day >= 0 && day < cal.num_days) {
      AccumRun(s.day_bytes, day, bytes);
      if (s.post_shutdown) {
        if (ctx_.IsZoomFlow(f)) {
          AccumRun(s.day_zoom, day, bytes);
        } else {
          AccumRun(s.day_nonzoom, day, bytes);
        }
        const int cat = CategoryIndexOf(ctx_.catalog(), f.server_ip);
        if (s.day_category.empty() || s.day_category.back().first != day) {
          s.day_category.emplace_back(day, std::array<double, kNumCategories>{});
        }
        s.day_category.back().second[static_cast<std::size_t>(cat)] += bytes;
      }
    }

    // Figure 8 activity spans use raw (unclamped) days, as the batch scans do.
    if (s.is_switch) {
      s.switch_in_feb |= day < cal.feb_end;
      s.switch_in_may |= day >= cal.may_start;
      s.switch_post |= day >= ctx_.post_shutdown_day();
      if (f.domain != core::kNoDomain &&
          ctx_.domain_flags(f.domain).nintendo_gameplay && day >= 0 &&
          day < cal.num_days) {
        AccumRun(s.day_switch, day, bytes);
      }
    }

    if (f.domain != core::kNoDomain) {
      // Headline distinct sites (post-shutdown cohort, raw-day periods).
      if (s.post_shutdown) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(dev) << 32) | f.domain;
        if (day < kFebDays) {
          s.site_keys.emplace_back(std::uint8_t{0}, key);
        } else if (day >= cal.may_start) {
          s.site_keys.emplace_back(std::uint8_t{2}, key);
        } else if (day >= cal.apr_start) {
          s.site_keys.emplace_back(std::uint8_t{1}, key);
        }
      }
      // Per-domain byte volume (all devices).
      if (!s.domain_adds.empty() && s.domain_adds.back().first == f.domain) {
        s.domain_adds.back().second += f.total_bytes();
      } else {
        s.domain_adds.emplace_back(f.domain, f.total_bytes());
      }
      // Figures 6/7: month-bucketed app traffic.
      const int m = months.MonthOf(start);
      if (m >= 0) {
        const auto mi = static_cast<std::size_t>(m);
        const StudyContext::DomainFlags& flags = ctx_.domain_flags(f.domain);
        if (s.post_shutdown && flags.steam) {
          s.steam_bytes[mi] += bytes;
          s.steam_conns[mi] += 1.0;
        }
        if (s.mobile_cohort && (flags.fb_family || flags.tiktok)) {
          const apps::FlowInterval iv{
              start,
              start + std::max<Timestamp>(
                          static_cast<Timestamp>(f.duration_s), 1),
              f.domain, f.total_bytes()};
          if (flags.fb_family) s.fb_intervals[mi].push_back(iv);
          if (flags.tiktok) s.tiktok_intervals[mi].push_back(iv);
        }
      }
    }
  }

  // Figure 6: merge sessions per month. One pass over the Facebook-family
  // sessions resolves each to FB or IG and accumulates both tallies in
  // session order — the same per-accumulator order as the batch study's
  // separate per-app passes.
  if (s.mobile_cohort) {
    const auto host_of = [&ds](std::uint32_t tag) { return ds.DomainName(tag); };
    for (std::size_t m = 0; m < kNumMonths; ++m) {
      for (const apps::Session& session : apps::MergeSessions(s.fb_intervals[m])) {
        const double hours = session.duration_s() / 3600.0;
        if (ctx_.social().ClassifySession(session, host_of) ==
            apps::SocialApp::kInstagram) {
          s.ig_hours[m] += hours;
        } else {
          s.fb_hours[m] += hours;
        }
      }
      for (const apps::Session& session :
           apps::MergeSessions(s.tiktok_intervals[m])) {
        s.tiktok_hours[m] += session.duration_s() / 3600.0;
      }
    }
  }
}

void StreamingStudy::FlushDevice(DeviceIndex dev, const DeviceScratch& s) {
  const CalendarDays& cal = Cal();
  const ReportClass rc = ctx_.report_class(dev);
  const auto rci = static_cast<std::size_t>(rc);
  const bool intl = ctx_.split().international[dev];
  const auto dkey = static_cast<std::uint64_t>(dev);
  constexpr auto kH =
      static_cast<std::size_t>(analysis::HourOfWeekSeries::kHours);

  const util::MutexLock lock(mutex_);

  for (const auto& [day, bytes] : s.day_bytes) {
    fig1_hll_[Fig1Index(day, rc)].Add(dkey);
    if (bytes > 0.0) {
      const std::size_t idx =
          static_cast<std::size_t>(day) * kNumReportClasses + rci;
      fig2_sum_[idx] += bytes;
      ++fig2_count_[idx];
      fig2_res_[idx].Add(dkey, bytes);
    }
  }
  feb_bytes_ += s.feb_bytes;
  apr_may_bytes_ += s.apr_may_bytes;

  for (std::size_t w = 0; w < 4; ++w) {
    for (std::size_t h = 0; h < kH; ++h) {
      const double v = s.week_volume[w][h];
      if (v >= core::kMinHourBytes) {
        fig3_res_[w * kH + h].Add(dkey, v);
      }
    }
  }

  if (s.post_shutdown) {
    int group = -1;
    if (rc == ReportClass::kMobile || rc == ReportClass::kLaptopDesktop) {
      group = intl ? 0 : 1;
    } else if (rc == ReportClass::kUnclassified) {
      group = intl ? 2 : 3;
    }
    if (group >= 0) {
      for (const auto& [day, bytes] : s.day_nonzoom) {
        if (bytes > 0.0) {
          fig4_res_[static_cast<std::size_t>(day) * 4 +
                    static_cast<std::size_t>(group)]
              .Add(dkey, bytes);
        }
      }
    }
    for (const auto& [day, bytes] : s.day_zoom) {
      zoom_daily_.AddDay(day, bytes);
    }
    for (const auto& [day, by_cat] : s.day_category) {
      for (std::size_t c = 0; c < kNumCategories; ++c) {
        if (by_cat[c] != 0.0) {
          category_grid_.Add(
              static_cast<std::size_t>(day) * kNumCategories + c, by_cat[c]);
        }
      }
    }
    for (const auto& [period, key] : s.site_keys) {
      site_hll_[period].Add(key);
    }
    for (std::size_t m = 0; m < kNumMonths; ++m) {
      if (s.steam_conns[m] > 0.0) {
        const std::size_t base = (m * 2 + (intl ? 1 : 0)) * 2;
        fig7_res_[base].Add(dkey, s.steam_bytes[m]);
        fig7_res_[base + 1].Add(dkey, s.steam_conns[m]);
      }
    }
  }

  if (s.mobile_cohort) {
    const std::size_t bucket = intl ? 1 : 0;
    for (std::size_t m = 0; m < kNumMonths; ++m) {
      const std::array<double, 3> hours = {s.fb_hours[m], s.ig_hours[m],
                                           s.tiktok_hours[m]};
      for (std::size_t app = 0; app < 3; ++app) {
        if (hours[app] > 0.0) {
          fig6_res_[(app * kNumMonths + m) * 2 + bucket].Add(dkey, hours[app]);
        }
      }
    }
  }

  if (s.is_switch) {
    switch_counts_.active_february += s.switch_in_feb ? 1 : 0;
    switch_counts_.active_post_shutdown += s.switch_post ? 1 : 0;
    switch_counts_.new_in_april_may += s.first_day >= cal.apr_start ? 1 : 0;
    if (s.switch_in_feb && s.switch_in_may) {
      for (const auto& [day, bytes] : s.day_switch) {
        switch_daily_.AddDay(day, bytes);
      }
    }
  }

  for (const auto& [domain, bytes] : s.domain_adds) {
    domain_bytes_.Add(domain, bytes);
  }
}

std::vector<StreamingStudy::ActiveDevicesRow>
StreamingStudy::ActiveDevicesPerDay() const {
  OBS_SPAN("stream/fig1_active_devices");
  const int days = Cal().num_days;
  std::vector<ActiveDevicesRow> rows(static_cast<std::size_t>(days));
  for (int day = 0; day < days; ++day) {
    ActiveDevicesRow& row = rows[static_cast<std::size_t>(day)];
    row.day = day;
    for (int c = 0; c < kNumReportClasses; ++c) {
      const double est =
          fig1_hll_[Fig1Index(day, static_cast<ReportClass>(c))].Estimate();
      row.by_class[static_cast<std::size_t>(c)] = est;
      row.total += est;
    }
  }
  return rows;
}

std::vector<core::LockdownStudy::BytesPerDeviceRow>
StreamingStudy::BytesPerDevicePerDay() const {
  OBS_SPAN("stream/fig2_bytes_per_device");
  const int days = Cal().num_days;
  std::vector<core::LockdownStudy::BytesPerDeviceRow> rows(
      static_cast<std::size_t>(days));
  for (int day = 0; day < days; ++day) {
    auto& row = rows[static_cast<std::size_t>(day)];
    row.day = day;
    for (std::size_t c = 0; c < static_cast<std::size_t>(kNumReportClasses);
         ++c) {
      const std::size_t idx =
          static_cast<std::size_t>(day) * kNumReportClasses + c;
      row.mean[c] = fig2_count_[idx] == 0
                        ? 0.0
                        : fig2_sum_[idx] /
                              static_cast<double>(fig2_count_[idx]);
      std::vector<double> values = fig2_res_[idx].Values();
      row.median[c] = analysis::PercentileInPlace(values, 50.0);
    }
  }
  return rows;
}

core::LockdownStudy::HourOfWeekResult StreamingStudy::HourOfWeekVolume() const {
  OBS_SPAN("stream/fig3_hour_of_week");
  core::LockdownStudy::HourOfWeekResult result;
  constexpr int kH = analysis::HourOfWeekSeries::kHours;
  for (std::size_t w = 0; w < 4; ++w) {
    for (int h = 0; h < kH; ++h) {
      std::vector<double> column =
          fig3_res_[w * kH + static_cast<std::size_t>(h)].Values();
      result.weeks[w].AddBin(h, analysis::PercentileInPlace(column, 50.0));
    }
  }
  double min_positive = 0.0;
  for (const auto& week : result.weeks) {
    const double m = week.MinPositive();
    if (m > 0.0 && (min_positive == 0.0 || m < min_positive)) min_positive = m;
  }
  result.normalization = min_positive;
  for (auto& week : result.weeks) week.Scale(min_positive);
  return result;
}

std::vector<core::LockdownStudy::Fig4Row>
StreamingStudy::MedianBytesExcludingZoom() const {
  OBS_SPAN("stream/fig4_population_split");
  const int days = Cal().num_days;
  std::vector<core::LockdownStudy::Fig4Row> rows(
      static_cast<std::size_t>(days));
  for (int day = 0; day < days; ++day) {
    auto& row = rows[static_cast<std::size_t>(day)];
    row.day = day;
    std::array<double, 4> medians{};
    for (std::size_t g = 0; g < 4; ++g) {
      std::vector<double> values =
          fig4_res_[static_cast<std::size_t>(day) * 4 + g].Values();
      medians[g] = analysis::PercentileInPlace(values, 50.0);
    }
    row.intl_mobile_desktop = medians[0];
    row.dom_mobile_desktop = medians[1];
    row.intl_unclassified = medians[2];
    row.dom_unclassified = medians[3];
  }
  return rows;
}

analysis::DailySeries StreamingStudy::ZoomDailyBytes() const {
  return zoom_daily_;
}

core::LockdownStudy::SocialBox StreamingStudy::SocialDurations(
    apps::SocialApp app, int month) const {
  OBS_SPAN("stream/fig6_social");
  const int m = month - 2;
  if (m < 0 || m >= static_cast<int>(kNumMonths)) return {};
  const auto base =
      (static_cast<std::size_t>(app) * kNumMonths + static_cast<std::size_t>(m)) *
      2;
  return core::LockdownStudy::SocialBox{
      analysis::ComputeBoxStats(fig6_res_[base].Values()),
      analysis::ComputeBoxStats(fig6_res_[base + 1].Values())};
}

core::LockdownStudy::SteamBox StreamingStudy::SteamUsage(int month) const {
  OBS_SPAN("stream/fig7_steam");
  const int m = month - 2;
  if (m < 0 || m >= static_cast<int>(kNumMonths)) return {};
  const auto dom = static_cast<std::size_t>(m) * 2 * 2;
  const std::size_t intl = dom + 2;
  return core::LockdownStudy::SteamBox{
      analysis::ComputeBoxStats(fig7_res_[dom].Values()),
      analysis::ComputeBoxStats(fig7_res_[intl].Values()),
      analysis::ComputeBoxStats(fig7_res_[dom + 1].Values()),
      analysis::ComputeBoxStats(fig7_res_[intl + 1].Values())};
}

analysis::DailySeries StreamingStudy::SwitchGameplayDaily(int ma_window) const {
  return switch_daily_.MovingAverage(ma_window);
}

core::LockdownStudy::SwitchCounts StreamingStudy::CountSwitches() const {
  OBS_SPAN("stream/fig8_switch_counts");
  return switch_counts_;
}

std::vector<core::LockdownStudy::CategoryVolumeRow>
StreamingStudy::CategoryVolumes() const {
  OBS_SPAN("stream/categories");
  const int days = Cal().num_days;
  std::vector<core::LockdownStudy::CategoryVolumeRow> rows(
      static_cast<std::size_t>(days));
  for (int day = 0; day < days; ++day) {
    auto& row = rows[static_cast<std::size_t>(day)];
    row.day = day;
    const std::size_t base = static_cast<std::size_t>(day) * kNumCategories;
    row.education = category_grid_.at(base + 0);
    row.video_conferencing = category_grid_.at(base + 1);
    row.streaming = category_grid_.at(base + 2);
    row.social_media = category_grid_.at(base + 3);
    row.gaming = category_grid_.at(base + 4);
    row.messaging = category_grid_.at(base + 5);
    row.other = category_grid_.at(base + 6);
  }
  return rows;
}

core::LockdownStudy::DiurnalShapeResult StreamingStudy::DiurnalShape(
    int first_day, int last_day) const {
  OBS_SPAN("stream/diurnal");
  core::LockdownStudy::DiurnalShapeResult result;
  const int days = Cal().num_days;
  const int lo = std::max(first_day, 0);
  const int hi = std::min(last_day, days - 1);
  for (int day = lo; day <= hi; ++day) {
    const bool weekend =
        util::IsWeekend(util::WeekdayOf(StudyCalendar::DateAt(day)));
    auto& profile = weekend ? result.weekend : result.weekday;
    const std::size_t base = static_cast<std::size_t>(day) * 24;
    for (std::size_t h = 0; h < 24; ++h) {
      profile[h] += diurnal_grid_.at(base + h);
    }
  }
  for (auto* profile : {&result.weekday, &result.weekend}) {
    double sum = 0.0;
    for (double v : *profile) sum += v;
    if (sum > 0.0) {
      for (double& v : *profile) v /= sum;
    }
  }
  return result;
}

core::LockdownStudy::Headline StreamingStudy::HeadlineStats() const {
  OBS_SPAN("stream/headline");
  core::LockdownStudy::Headline h;
  double peak = 0.0;
  double trough = 0.0;
  for (const ActiveDevicesRow& row : ActiveDevicesPerDay()) {
    peak = std::max(peak, row.total);
    if (row.day >= ctx_.shutdown_day() &&
        (trough == 0.0 || row.total < trough)) {
      trough = row.total;
    }
  }
  h.peak_active_devices = static_cast<int>(std::llround(peak));
  h.trough_active_devices = static_cast<int>(std::llround(trough));
  h.post_shutdown_users = ctx_.post_shutdown().size();
  h.international_devices = ctx_.split().num_international;
  h.international_share =
      ctx_.post_shutdown().empty()
          ? 0.0
          : static_cast<double>(ctx_.split().num_international) /
                static_cast<double>(ctx_.post_shutdown().size());

  const double feb_daily = feb_bytes_ / kFebDays;
  const double apr_may_daily = apr_may_bytes_ / 61.0;
  h.traffic_increase = feb_daily > 0.0 ? apr_may_daily / feb_daily - 1.0 : 0.0;

  const double sites_feb = site_hll_[0].Estimate();
  const double sites_apr_may =
      (site_hll_[1].Estimate() + site_hll_[2].Estimate()) / 2.0;
  h.distinct_sites_increase =
      sites_feb > 0.0 ? sites_apr_may / sites_feb - 1.0 : 0.0;
  return h;
}

std::uint64_t StreamingStudy::EstimateDomainBytes(core::DomainId domain) const {
  return domain_bytes_.Estimate(domain);
}

StreamingStudy::AccuracyReport StreamingStudy::Accuracy() const {
  AccuracyReport report;
  report.hll_precision = plan_.hll_precision;
  report.hll_relative_standard_error = plan_.HllRelativeStandardError();
  report.cms_epsilon = domain_bytes_.epsilon();
  report.cms_delta = domain_bytes_.delta();
  report.cms_total_bytes = domain_bytes_.total();
  report.reservoir_capacity = plan_.reservoir_capacity;
  for (const auto* family :
       {&fig2_res_, &fig3_res_, &fig4_res_, &fig6_res_, &fig7_res_}) {
    for (const sketch::ReservoirSample& res : *family) {
      report.reservoirs_exact = report.reservoirs_exact && res.exact();
    }
  }
  report.state_bytes = TrackedStateBytes();
  report.budget_bytes = plan_.budget_bytes;
  return report;
}

std::size_t StreamingStudy::TrackedStateBytes() const noexcept {
  std::size_t total = 0;
  for (const sketch::HyperLogLog& hll : fig1_hll_) total += hll.MemoryBytes();
  for (const sketch::HyperLogLog& hll : site_hll_) total += hll.MemoryBytes();
  for (const auto* family :
       {&fig2_res_, &fig3_res_, &fig4_res_, &fig6_res_, &fig7_res_}) {
    for (const sketch::ReservoirSample& res : *family) {
      total += res.MemoryBytes();
    }
  }
  total += fig2_sum_.capacity() * sizeof(double);
  total += fig2_count_.capacity() * sizeof(std::uint64_t);
  total += static_cast<std::size_t>(zoom_daily_.num_days()) * sizeof(double);
  total += static_cast<std::size_t>(switch_daily_.num_days()) * sizeof(double);
  total += category_grid_.MemoryBytes();
  total += diurnal_grid_.MemoryBytes();
  total += domain_bytes_.MemoryBytes();
  total += diurnal_scratch_high_water_;
  return total;
}

}  // namespace lockdown::stream
