// Sequential IP allocation out of CIDR blocks; used to lay out the synthetic
// Internet (server addresses per service) and the campus client pools.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/ipv4.h"

namespace lockdown::net {

/// Hands out addresses from a CIDR block in order, skipping the network and
/// broadcast addresses. Throws std::length_error when exhausted.
class BlockAllocator {
 public:
  explicit BlockAllocator(Cidr block) : block_(block), next_(1) {}

  /// Next unused address in the block.
  [[nodiscard]] Ipv4Address Allocate();

  /// Addresses still available.
  [[nodiscard]] std::uint64_t Remaining() const noexcept;

  [[nodiscard]] Cidr block() const noexcept { return block_; }

 private:
  Cidr block_;
  std::uint64_t next_;  // index of next address; 0 (network) is skipped
};

/// Allocates consecutive sub-blocks of a given prefix length out of one large
/// super-block; each synthetic service gets its own sub-block so that
/// signature IP-range matching is meaningful.
class SubnetCarver {
 public:
  explicit SubnetCarver(Cidr super_block) : super_(super_block), next_index_(0) {}

  /// Carves the next /prefix_len sub-block. prefix_len must be >= the super
  /// block's length. Throws std::length_error when exhausted.
  [[nodiscard]] Cidr Carve(int prefix_len);

 private:
  Cidr super_;
  std::uint64_t next_index_;  // measured in addresses from super_ base
};

}  // namespace lockdown::net
