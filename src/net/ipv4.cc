#include "net/ipv4.h"

#include <cstdio>

#include "util/strings.h"

namespace lockdown::net {

std::optional<Ipv4Address> Ipv4Address::Parse(std::string_view s) noexcept {
  std::uint32_t out = 0;
  int octet_count = 0;
  std::uint32_t octet = 0;
  bool have_digit = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      octet = octet * 10 + static_cast<std::uint32_t>(c - '0');
      if (octet > 255) return std::nullopt;
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || octet_count == 3) return std::nullopt;
      out = (out << 8) | octet;
      octet = 0;
      have_digit = false;
      ++octet_count;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || octet_count != 3) return std::nullopt;
  out = (out << 8) | octet;
  return Ipv4Address(out);
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr_ >> 24) & 0xFF,
                (addr_ >> 16) & 0xFF, (addr_ >> 8) & 0xFF, addr_ & 0xFF);
  return buf;
}

std::optional<Cidr> Cidr::Parse(std::string_view s) noexcept {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto base = Ipv4Address::Parse(s.substr(0, slash));
  if (!base) return std::nullopt;
  int len = 0;
  const std::string_view len_sv = s.substr(slash + 1);
  if (len_sv.empty() || len_sv.size() > 2) return std::nullopt;
  for (char c : len_sv) {
    if (c < '0' || c > '9') return std::nullopt;
    len = len * 10 + (c - '0');
  }
  if (len > 32) return std::nullopt;
  return Cidr(*base, len);
}

std::string Cidr::ToString() const {
  return base_.ToString() + "/" + std::to_string(prefix_len_);
}

}  // namespace lockdown::net
