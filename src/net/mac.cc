#include "net/mac.h"

#include <cctype>
#include <cstdio>

namespace lockdown::net {

std::optional<MacAddress> MacAddress::Parse(std::string_view s) noexcept {
  if (s.size() != 17) return std::nullopt;
  std::uint64_t value = 0;
  for (int group = 0; group < 6; ++group) {
    const std::size_t pos = static_cast<std::size_t>(group) * 3;
    if (group > 0 && s[pos - 1] != ':') return std::nullopt;
    std::uint64_t byte = 0;
    for (int k = 0; k < 2; ++k) {
      const char c = s[pos + static_cast<std::size_t>(k)];
      std::uint64_t nibble;
      if (c >= '0' && c <= '9') {
        nibble = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        nibble = static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        nibble = static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
      byte = (byte << 4) | nibble;
    }
    value = (value << 8) | byte;
  }
  return MacAddress(value);
}

std::string MacAddress::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                static_cast<unsigned>((value_ >> 40) & 0xFF),
                static_cast<unsigned>((value_ >> 32) & 0xFF),
                static_cast<unsigned>((value_ >> 24) & 0xFF),
                static_cast<unsigned>((value_ >> 16) & 0xFF),
                static_cast<unsigned>((value_ >> 8) & 0xFF),
                static_cast<unsigned>(value_ & 0xFF));
  return buf;
}

}  // namespace lockdown::net
