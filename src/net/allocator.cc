#include "net/allocator.h"

namespace lockdown::net {

Ipv4Address BlockAllocator::Allocate() {
  // Reserve the all-zeros (network) and all-ones (broadcast) addresses.
  if (next_ + 1 >= block_.size()) {
    throw std::length_error("BlockAllocator exhausted: " + block_.ToString());
  }
  return block_.At(next_++);
}

std::uint64_t BlockAllocator::Remaining() const noexcept {
  const std::uint64_t used = next_ + 1;  // + broadcast
  return block_.size() > used ? block_.size() - used : 0;
}

Cidr SubnetCarver::Carve(int prefix_len) {
  if (prefix_len < super_.prefix_len() || prefix_len > 32) {
    throw std::invalid_argument("SubnetCarver: bad prefix length");
  }
  const std::uint64_t sub_size = std::uint64_t{1} << (32 - prefix_len);
  // CIDR blocks must start on a multiple of their size; align up, or the
  // constructor's base masking would fold this block onto the previous one.
  const std::uint64_t aligned = (next_index_ + sub_size - 1) & ~(sub_size - 1);
  if (aligned + sub_size > super_.size()) {
    throw std::length_error("SubnetCarver exhausted: " + super_.ToString());
  }
  const Cidr out(super_.At(aligned), prefix_len);
  next_index_ = aligned + sub_size;
  return out;
}

}  // namespace lockdown::net
