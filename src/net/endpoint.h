// Transport-layer endpoint types: protocol, port, five-tuple. The flow
// assembler keys its connection table on FiveTuple.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

#include "net/ipv4.h"

namespace lockdown::net {

/// Transport protocol of a connection.
enum class Protocol : std::uint8_t {
  kTcp = 6,
  kUdp = 17,
};

[[nodiscard]] constexpr const char* ToString(Protocol p) noexcept {
  return p == Protocol::kTcp ? "tcp" : "udp";
}

using Port = std::uint16_t;

/// Classic connection 5-tuple (source/destination address and port plus
/// protocol).
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  Port src_port = 0;
  Port dst_port = 0;
  Protocol proto = Protocol::kTcp;

  friend constexpr auto operator<=>(const FiveTuple&, const FiveTuple&) noexcept = default;

  /// "10.1.2.3:4242 -> 8.8.8.8:443/tcp".
  [[nodiscard]] std::string ToString() const {
    return src_ip.ToString() + ":" + std::to_string(src_port) + " -> " +
           dst_ip.ToString() + ":" + std::to_string(dst_port) + "/" +
           lockdown::net::ToString(proto);
  }
};

/// Hash functor so FiveTuple can key unordered_map (the flow table).
struct FiveTupleHash {
  [[nodiscard]] std::size_t operator()(const FiveTuple& t) const noexcept {
    // Mix fields with splitmix-style constants; collision quality matters
    // because the flow table holds hundreds of thousands of live entries.
    std::uint64_t h = t.src_ip.value();
    h = h * 0x9E3779B97F4A7C15ULL + t.dst_ip.value();
    h = h * 0x9E3779B97F4A7C15ULL + ((std::uint64_t{t.src_port} << 24) |
                                     (std::uint64_t{t.dst_port} << 8) |
                                     static_cast<std::uint64_t>(t.proto));
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return static_cast<std::size_t>(h);
  }
};

}  // namespace lockdown::net
