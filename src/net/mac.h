// MAC addresses and OUI (organizationally unique identifier) handling.
//
// DHCP normalization keys every flow to a device MAC; the classifier then
// reads the OUI (top 24 bits) to infer the device vendor.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lockdown::net {

/// A 48-bit MAC address stored in the low bits of a uint64.
class MacAddress {
 public:
  constexpr MacAddress() noexcept = default;
  constexpr explicit MacAddress(std::uint64_t value) noexcept
      : value_(value & 0xFFFFFFFFFFFFULL) {}

  /// Parses "aa:bb:cc:dd:ee:ff" (case-insensitive); nullopt on malformed input.
  [[nodiscard]] static std::optional<MacAddress> Parse(std::string_view s) noexcept;

  /// Builds a MAC from a 24-bit OUI and a 24-bit device suffix.
  [[nodiscard]] static constexpr MacAddress FromOui(std::uint32_t oui,
                                                    std::uint32_t suffix) noexcept {
    return MacAddress((std::uint64_t{oui & 0xFFFFFF} << 24) | (suffix & 0xFFFFFF));
  }

  [[nodiscard]] constexpr std::uint64_t value() const noexcept { return value_; }

  /// The vendor OUI: top 24 bits.
  [[nodiscard]] constexpr std::uint32_t oui() const noexcept {
    return static_cast<std::uint32_t>(value_ >> 24);
  }

  /// "aa:bb:cc:dd:ee:ff".
  [[nodiscard]] std::string ToString() const;

  friend constexpr auto operator<=>(MacAddress, MacAddress) noexcept = default;

 private:
  std::uint64_t value_ = 0;
};

}  // namespace lockdown::net
