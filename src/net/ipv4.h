// IPv4 address and CIDR prefix value types.
//
// The pipeline keys flows by IPv4 addresses throughout (the campus residence
// network in the study period was IPv4). Addresses are a strong value type
// around a host-order uint32 so they sort naturally and pack tightly in the
// columnar dataset.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lockdown::net {

/// An IPv4 address; internally host byte order.
class Ipv4Address {
 public:
  constexpr Ipv4Address() noexcept = default;
  constexpr explicit Ipv4Address(std::uint32_t host_order) noexcept
      : addr_(host_order) {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d) noexcept
      : addr_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  /// Parses dotted-quad; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Ipv4Address> Parse(std::string_view s) noexcept;

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return addr_; }

  /// Dotted-quad representation.
  [[nodiscard]] std::string ToString() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) noexcept = default;

 private:
  std::uint32_t addr_ = 0;
};

/// A CIDR prefix, e.g. 10.16.0.0/14.
class Cidr {
 public:
  constexpr Cidr() noexcept = default;
  /// base is masked down to the prefix; prefix_len in [0, 32].
  constexpr Cidr(Ipv4Address base, int prefix_len) noexcept
      : base_(Ipv4Address(base.value() & MaskFor(prefix_len))),
        prefix_len_(prefix_len) {}

  /// Parses "a.b.c.d/len"; returns nullopt on malformed input.
  [[nodiscard]] static std::optional<Cidr> Parse(std::string_view s) noexcept;

  [[nodiscard]] constexpr bool Contains(Ipv4Address ip) const noexcept {
    return (ip.value() & MaskFor(prefix_len_)) == base_.value();
  }

  [[nodiscard]] constexpr Ipv4Address base() const noexcept { return base_; }
  [[nodiscard]] constexpr int prefix_len() const noexcept { return prefix_len_; }
  /// Number of addresses covered by the prefix.
  [[nodiscard]] constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - prefix_len_);
  }
  /// The i-th address inside the prefix (i < size()).
  [[nodiscard]] constexpr Ipv4Address At(std::uint64_t i) const noexcept {
    return Ipv4Address(base_.value() + static_cast<std::uint32_t>(i));
  }

  [[nodiscard]] std::string ToString() const;

  friend constexpr auto operator<=>(const Cidr&, const Cidr&) noexcept = default;

 private:
  static constexpr std::uint32_t MaskFor(int len) noexcept {
    return len == 0 ? 0u : ~std::uint32_t{0} << (32 - len);
  }
  Ipv4Address base_;
  int prefix_len_ = 0;
};

}  // namespace lockdown::net
