// Scoped-span tracing with Chrome trace-event JSON output.
//
// Usage at an instrumentation site:
//
//   void MeasurementPipeline::Process(...) {
//     OBS_SPAN("pipeline/process");
//     ...
//   }
//
// A span records thread id, start time, duration, and nesting depth. Spans
// are inert (two relaxed atomic loads, no clock read) unless tracing or
// metrics are enabled. When metrics are enabled, closing a span also
// observes its duration into a kDurationUs histogram named after the span —
// that is how per-stage breakdowns appear in --metrics-out JSON and in
// BENCH_components.json without a second layer of timers.
//
// WriteChromeTrace emits {"traceEvents": [...]} with complete ("ph":"X")
// events, loadable in chrome://tracing or https://ui.perfetto.dev.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

namespace lockdown::obs {

/// Global tracing gate; relaxed-atomic, safe from any thread.
[[nodiscard]] bool TracingEnabled() noexcept;
void SetTracingEnabled(bool on) noexcept;

/// RAII span. Prefer the OBS_SPAN macro; construct directly only for
/// dynamic names (e.g. "ingest/" + filename).
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  std::string name_;
  std::int64_t start_ns_ = 0;
  bool active_ = false;
};

/// Number of spans recorded in the trace buffer so far (for tests).
[[nodiscard]] std::size_t TraceEventCount() noexcept;

/// Number of spans dropped because the trace buffer hit its cap.
[[nodiscard]] std::uint64_t TraceDroppedCount() noexcept;

/// Serializes the buffered spans as Chrome trace-event JSON. Timestamps are
/// microseconds relative to the first enable, so traces start near t=0.
void WriteChromeTrace(std::ostream& out);

/// Discards all buffered spans (for tests and repeated runs).
void ResetTrace() noexcept;

#define OBS_CONCAT_INNER(a, b) a##b
#define OBS_CONCAT(a, b) OBS_CONCAT_INNER(a, b)

/// Opens a span covering the rest of the enclosing scope.
#define OBS_SPAN(name) \
  ::lockdown::obs::ScopedSpan OBS_CONCAT(obs_span_, __LINE__)(name)

}  // namespace lockdown::obs
